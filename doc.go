// Package mxmap is a full reproduction of "Who's Got Your Mail?
// Characterizing Mail Service Provider Usage" (IMC 2021): the
// priority-based MX-to-provider inference methodology, the DNS and SMTP
// measurement substrates it runs on, a calibrated synthetic Internet
// standing in for the paper's proprietary data sources, and a harness
// regenerating every table and figure of the paper's evaluation.
//
// See README.md for the layout, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-versus-measured results.
package mxmap
