module mxmap

go 1.22
