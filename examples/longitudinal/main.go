// Longitudinal: reproduce the paper's §5.2 trend analysis (Figure 6a) —
// measure the Alexa-like corpus at every semi-annual snapshot from
// 2017-06 to 2021-06, infer providers at each, and chart the market-share
// consolidation of the top companies against the decline of self-hosting.
//
// Run with:
//
//	go run ./examples/longitudinal
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"mxmap/internal/analysis"
	"mxmap/internal/experiments"
	"mxmap/internal/report"
	"mxmap/internal/world"
)

func main() {
	study, err := experiments.NewStudy(world.Config{Seed: 9, Scale: 0.005})
	if err != nil {
		log.Fatal(err)
	}
	defer study.Close()

	ctx := context.Background()
	dates := study.World.Corpus(world.CorpusAlexa).Dates
	track := []string{"Google", "Microsoft", "Yandex", "ProofPoint", "Mimecast"}

	l := analysis.NewLongitudinal(dates)
	for _, date := range dates {
		res, err := study.Result(ctx, world.CorpusAlexa, date)
		if err != nil {
			log.Fatal(err)
		}
		l.Add(date, res, study.World.Directory, track, 5)
		fmt.Fprintf(os.Stderr, "measured %s\n", date)
	}

	chart := report.NewChart("Top companies in the Alexa corpus, 2017-2021 (Figure 6a)", dates)
	for _, name := range track {
		chart.AddSeries(name, percents(l.Get(name)))
	}
	chart.AddSeries("Top5 Total", percents(l.Get("TopN Total")))
	chart.AddSeries("Self-Hosted", percents(l.Get(analysis.SelfHostedLabel)))
	if err := chart.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}

	first, last := l.Get("TopN Total")[0], l.Get("TopN Total")[len(dates)-1]
	sf, sl := l.Get(analysis.SelfHostedLabel)[0], l.Get(analysis.SelfHostedLabel)[len(dates)-1]
	fmt.Printf("\ntop-5 share: %.1f%% -> %.1f%%   self-hosted: %.1f%% -> %.1f%%\n",
		first.Percent, last.Percent, sf.Percent, sl.Percent)
	fmt.Println("(the paper reports 40.1% -> 49.0% and 11.7% -> 7.9%)")
}

func percents(points []analysis.SeriesPoint) []float64 {
	out := make([]float64, len(points))
	for i, p := range points {
		out[i] = p.Percent
	}
	return out
}
