// Mailflow: the paper's Figure 1 end to end, and why MX records decide
// "who's got your mail".
//
// A user at sender.example submits a message through their provider's
// authenticated submission agent (RFC 6409 + SMTP-AUTH). The co-located
// MTA resolves the recipient domain's MX records and relays the message.
// rcpt.example has outsourced its inbound mail: its MX points at
// bigmail.example — so that is where the message physically lands, which
// is exactly the provisioning decision the paper measures at scale.
//
// Run with:
//
//	go run ./examples/mailflow
package main

import (
	"context"
	"fmt"
	"log"
	"net/netip"

	"mxmap/internal/dns"
	"mxmap/internal/mta"
	"mxmap/internal/netsim"
	"mxmap/internal/psl"
	"mxmap/internal/smtp"
)

func main() {
	n := netsim.New()
	catalog := dns.NewCatalog()

	// --- The recipient's provider: bigmail.example runs the MX fleet.
	inbox := make(chan smtp.Envelope, 1)
	mustServe(n, "10.1.0.1:25", smtp.Config{
		Hostname:  "mx1.bigmail.example",
		OnMessage: func(e smtp.Envelope) { inbox <- e },
	})
	providerZone := dns.NewZone("bigmail.example")
	must(providerZone.Add(dns.RR{Name: "mx1.bigmail.example.", Type: dns.TypeA, TTL: 300,
		Data: dns.AData{Addr: netip.MustParseAddr("10.1.0.1")}}))
	catalog.AddZone(providerZone)

	// --- The recipient domain outsources: its MX names the provider.
	rcptZone := dns.NewZone("rcpt.example")
	must(rcptZone.Add(dns.RR{Name: "rcpt.example.", Type: dns.TypeMX, TTL: 300,
		Data: dns.MXData{Preference: 10, Exchange: "mx1.bigmail.example."}}))
	catalog.AddZone(rcptZone)

	// --- The sender's provider: an authenticated submission agent whose
	// message sink hands off to the relaying MTA (the MSA -> MTA step).
	agent := &mta.Agent{
		Resolver: dns.CatalogResolver{Catalog: catalog},
		Dialer:   n,
		HELOName: "out.sendermail.example",
	}
	relayed := make(chan []mta.Delivery, 1)
	mustServe(n, "10.2.0.1:587", smtp.Config{
		Hostname:           "submit.sendermail.example",
		Auth:               smtp.StaticAuth{"alice": "correct horse"},
		RequireAuthForMail: true,
		OnMessage: func(e smtp.Envelope) {
			ds, err := agent.Deliver(context.Background(), e.From, e.To, e.Data)
			if err != nil {
				log.Fatalf("relay failed: %v", err)
			}
			relayed <- ds
		},
	})

	// --- The user's MUA submits (Figure 1's first hop).
	fmt.Println("alice@sender.example submits a message via her provider's MSA...")
	err := smtp.Submit(context.Background(), n, "10.2.0.1:587", "laptop.sender.example",
		smtp.ClientAuth{Username: "alice", Password: "correct horse"},
		"alice@sender.example", []string{"bob@rcpt.example"},
		[]byte("Subject: provisioning matters\r\n\r\nsee Figure 1\r\n"), nil)
	if err != nil {
		log.Fatal(err)
	}

	deliveries := <-relayed
	for _, d := range deliveries {
		fmt.Printf("MTA relayed for %s via MX %s (%s)\n", d.Domain, d.Exchange, d.Addr)
		// The paper's inference in one line: the exchange's registered
		// domain names the operating provider.
		if reg, ok := psl.RegisteredDomain(d.Exchange); ok {
			fmt.Printf("  -> rcpt.example's mail is held by: %s\n", reg)
		}
	}
	e := <-inbox
	fmt.Printf("bigmail.example's server accepted: From=%s To=%v (%d bytes)\n",
		e.From, e.To, len(e.Data))
	fmt.Println("\nThe MX record decided who got the mail — the provisioning")
	fmt.Println("choice the paper measures across a million domains.")
}

func mustServe(n *netsim.Network, addr string, cfg smtp.Config) {
	srv, err := smtp.NewServer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := n.Listen(netip.MustParseAddrPort(addr))
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
