// Accuracy: reproduce the paper's §3.3 evaluation (Figure 4) — compare
// the MX-only, cert-based, banner-based and priority-based approaches on
// sampled domains with SMTP servers, in both the random and unique-MX
// variants, grading against the world's ground truth.
//
// Run with:
//
//	go run ./examples/accuracy
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"mxmap/internal/experiments"
	"mxmap/internal/world"
)

func main() {
	study, err := experiments.NewStudy(world.Config{Seed: 3, Scale: 0.01})
	if err != nil {
		log.Fatal(err)
	}
	defer study.Close()

	table, err := study.Fig4(context.Background(), 200, 3)
	if err != nil {
		log.Fatal(err)
	}
	if err := table.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nReading the table: the priority-based approach should dominate")
	fmt.Println("every row, and MX-only should collapse on the unique-MX .com")
	fmt.Println("sample — the paper's Figure 4 shape.")
}
