// Jurisdiction: reproduce the paper's §5.4 national-bias analysis
// (Figure 8) — for each studied country-code TLD, measure what share of
// its domains hand their mail to Google, Microsoft, Tencent or Yandex,
// and thereby to US, Chinese or Russian legal jurisdiction.
//
// Run with:
//
//	go run ./examples/jurisdiction
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"mxmap/internal/analysis"
	"mxmap/internal/core"
	"mxmap/internal/experiments"
	"mxmap/internal/world"
)

func main() {
	study, err := experiments.NewStudy(world.Config{Seed: 13, Scale: 0.02})
	if err != nil {
		log.Fatal(err)
	}
	defer study.Close()

	ctx := context.Background()
	date := study.LastDate(world.CorpusAlexa)
	snap, err := study.Snapshot(ctx, world.CorpusAlexa, date)
	if err != nil {
		log.Fatal(err)
	}
	res := core.Infer(snap, core.ApproachPriority, core.Config{Profiles: study.Profiles})

	track := []string{"Google", "Microsoft", "Tencent", "Yandex"}
	cells := analysis.CCTLDPreferences(res, study.World.Directory, track)

	fmt.Printf("Provider preferences by ccTLD (%s):\n\n", date)
	fmt.Printf("%-6s %9s %10s %8s %7s %12s\n", "ccTLD", "Google", "Microsoft", "Tencent", "Yandex", "US combined")
	byTLD := map[string]map[string]float64{}
	var order []string
	for _, c := range cells {
		if byTLD[c.TLD] == nil {
			byTLD[c.TLD] = map[string]float64{}
			order = append(order, c.TLD)
		}
		byTLD[c.TLD][c.Company] = c.Percent
	}
	for _, tld := range order {
		m := byTLD[tld]
		us := m["Google"] + m["Microsoft"]
		fmt.Printf(".%-5s %8.1f%% %9.1f%% %7.1f%% %6.1f%% %11.1f%%\n",
			tld, m["Google"], m["Microsoft"], m["Tencent"], m["Yandex"], us)
	}

	fmt.Println("\nExpected shape (paper Figure 8): US providers in wide use across")
	fmt.Println("Europe, the Americas and most of Asia; Yandex essentially only in")
	fmt.Println(".ru; Tencent essentially only in .cn.")
	if ru, cn := byTLD["ru"], byTLD["cn"]; ru != nil && cn != nil {
		if ru["Yandex"] > ru["Tencent"] && cn["Tencent"] > cn["Yandex"] {
			fmt.Println("Shape holds in this run.")
		} else {
			fmt.Fprintln(os.Stderr, "warning: home-market dominance did not hold in this run")
		}
	}
}
