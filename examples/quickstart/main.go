// Quickstart: build a tiny simulated Internet, measure it with real DNS
// and SMTP exchanges, infer each domain's mail provider with the
// priority-based methodology, and print what was found.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"mxmap/internal/analysis"
	"mxmap/internal/core"
	"mxmap/internal/experiments"
	"mxmap/internal/world"
)

func main() {
	// 1. Generate a small world: a provider roster with simulated server
	//    fleets plus three domain corpora assigned to them over time.
	study, err := experiments.NewStudy(world.Config{Seed: 7, Scale: 0.002})
	if err != nil {
		log.Fatal(err)
	}
	defer study.Close()

	// 2. Measure the Alexa-like corpus at the most recent snapshot. This
	//    resolves each domain's MX and A records against authoritative
	//    zone data and runs genuine SMTP+STARTTLS sessions against every
	//    distinct mail-server address.
	ctx := context.Background()
	date := study.LastDate(world.CorpusAlexa)
	snap, err := study.Snapshot(ctx, world.CorpusAlexa, date)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured %d domains and %d distinct mail-server IPs at %s\n\n",
		len(snap.Domains), len(snap.IPs), date)

	// 3. Infer each domain's provider with the paper's five-step
	//    priority-based methodology.
	res := core.Infer(snap, core.ApproachPriority, core.Config{Profiles: study.Profiles})
	fmt.Printf("inference: %d MX records examined in step 4, %d corrected\n\n",
		res.NumExamined, res.NumCorrected)

	// 4. Show a few attributions with the signal that produced them.
	fmt.Println("sample attributions:")
	shown := 0
	for _, att := range res.Domains {
		primary := att.Primary()
		if primary == "" {
			continue
		}
		company := analysis.CompanyOf(att.Domain, primary, study.World.Directory)
		fmt.Printf("  %-28s -> %-22s (%s)\n", att.Domain, primary, company)
		shown++
		if shown == 10 {
			break
		}
	}

	// 5. Aggregate into a market-share ranking.
	credits := analysis.CompanyCredits(res, study.World.Directory)
	fmt.Println("\ntop five companies:")
	for i, s := range analysis.TopShares(credits, len(res.Domains), 5) {
		fmt.Printf("  %d. %-18s %5.1f domains (%.1f%%)\n", i+1, s.Company, s.Domains, s.Percent)
	}
	selfN, selfPct := analysis.SelfHostedCount(res, study.World.Directory)
	fmt.Printf("  self-hosted: %.1f domains (%.1f%%)\n", selfN, selfPct)
}
