// Benchmarks regenerating every table and figure of the paper's
// evaluation (one benchmark per artifact), plus ablation benchmarks for
// the design choices called out in DESIGN.md. Ablations report an
// "accuracy%" metric alongside timing so the quality impact of each
// design choice is visible in benchmark output.
package mxmap_test

import (
	"context"
	"sync"
	"testing"

	"mxmap/internal/analysis"
	"mxmap/internal/asn"
	"mxmap/internal/benchdata"
	"mxmap/internal/core"
	"mxmap/internal/dataset"
	"mxmap/internal/experiments"
	"mxmap/internal/psl"
	"mxmap/internal/world"
)

// benchState shares one measured world across all benchmarks.
type benchState struct {
	study *experiments.Study
	snap  *dataset.Snapshot // alexa, most recent date
	truth map[string]string
}

var (
	benchOnce sync.Once
	bench     benchState
)

func benchSetup(b *testing.B) *benchState {
	b.Helper()
	benchOnce.Do(func() {
		study, err := experiments.NewStudy(world.Config{Seed: 17, Scale: 0.005})
		if err != nil {
			b.Fatal(err)
		}
		bench.study = study
		ctx := context.Background()
		snap, err := study.Snapshot(ctx, world.CorpusAlexa, study.LastDate(world.CorpusAlexa))
		if err != nil {
			b.Fatal(err)
		}
		bench.snap = snap
		corpus := study.World.Corpus(world.CorpusAlexa)
		dateIdx := corpus.DateIndex(study.LastDate(world.CorpusAlexa))
		bench.truth = make(map[string]string, len(corpus.Domains))
		for _, d := range corpus.Domains {
			t := study.World.TruthCompany(d, dateIdx)
			if t == d.Name {
				t = analysis.SelfHostedLabel
			}
			bench.truth[d.Name] = t
		}
	})
	if bench.study == nil {
		b.Fatal("bench setup failed")
	}
	return &bench
}

// BenchmarkFig4Accuracy regenerates the Figure 4 accuracy comparison.
func BenchmarkFig4Accuracy(b *testing.B) {
	s := benchSetup(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.study.Fig4(ctx, 100, uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4Breakdown regenerates the Table 4 availability
// breakdown across all corpora.
func BenchmarkTable4Breakdown(b *testing.B) {
	s := benchSetup(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.study.Table4(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5ProviderIDs regenerates the Table 5 inventory.
func BenchmarkTable5ProviderIDs(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.study.Table5()
	}
}

// BenchmarkFig5MarketShare regenerates the Figure 5 segment rankings.
func BenchmarkFig5MarketShare(b *testing.B) {
	s := benchSetup(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.study.Fig5(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6Longitudinal regenerates all nine Figure 6 panels
// (25 corpus-snapshots measured on first iteration, cached afterwards;
// the benchmark therefore reports steady-state recomputation cost).
func BenchmarkFig6Longitudinal(b *testing.B) {
	s := benchSetup(b)
	ctx := context.Background()
	if _, err := s.study.Fig6(ctx); err != nil { // warm the snapshot cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.study.Fig6(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7Churn regenerates the Figure 7 churn matrix.
func BenchmarkFig7Churn(b *testing.B) {
	s := benchSetup(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.study.Fig7(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8CCTLD regenerates the Figure 8 national-preference matrix.
func BenchmarkFig8CCTLD(b *testing.B) {
	s := benchSetup(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.study.Fig8(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable6Top15 regenerates the Table 6 company ranking.
func BenchmarkTable6Top15(b *testing.B) {
	s := benchSetup(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.study.Table6(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// accuracyOf grades one inference configuration against ground truth,
// over domains that really have mail service.
func accuracyOf(s *benchState, approach core.Approach, cfg core.Config) float64 {
	res := core.Infer(s.snap, approach, cfg)
	correct, total := 0, 0
	for _, att := range res.Domains {
		truth := s.truth[att.Domain]
		if truth == "" {
			continue
		}
		total++
		if analysis.CompanyOf(att.Domain, att.Primary(), s.study.World.Directory) == truth {
			correct++
		}
	}
	if total == 0 {
		return 0
	}
	return 100 * float64(correct) / float64(total)
}

// BenchmarkAblationFull is the reference point: the complete
// priority-based methodology.
func BenchmarkAblationFull(b *testing.B) {
	s := benchSetup(b)
	cfg := core.Config{Profiles: s.study.Profiles}
	var acc float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc = accuracyOf(s, core.ApproachPriority, cfg)
	}
	b.ReportMetric(acc, "accuracy%")
}

// BenchmarkAblationNoCertGrouping disables step 1's FQDN-overlap
// grouping (each certificate is its own identity).
func BenchmarkAblationNoCertGrouping(b *testing.B) {
	s := benchSetup(b)
	cfg := core.Config{Profiles: s.study.Profiles, DisableCertGrouping: true}
	var acc float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc = accuracyOf(s, core.ApproachPriority, cfg)
	}
	b.ReportMetric(acc, "accuracy%")
}

// BenchmarkAblationPriorityOrder swaps the cert-first priority for
// banner-first.
func BenchmarkAblationPriorityOrder(b *testing.B) {
	s := benchSetup(b)
	cfg := core.Config{Profiles: s.study.Profiles, PreferBannerOverCert: true}
	var acc float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc = accuracyOf(s, core.ApproachPriority, cfg)
	}
	b.ReportMetric(acc, "accuracy%")
}

// BenchmarkAblationNoStep4 disables the misidentification check.
func BenchmarkAblationNoStep4(b *testing.B) {
	s := benchSetup(b)
	cfg := core.Config{} // no profiles: step 4 cannot run
	var acc float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc = accuracyOf(s, core.ApproachPriority, cfg)
	}
	b.ReportMetric(acc, "accuracy%")
}

// BenchmarkAblationStrictBannerAgreement requires banner and EHLO to
// agree before deriving an identity (the strict Figure 3 reading).
func BenchmarkAblationStrictBannerAgreement(b *testing.B) {
	s := benchSetup(b)
	cfg := core.Config{Profiles: s.study.Profiles, RequireBannerEHLOAgreement: true}
	var acc float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc = accuracyOf(s, core.ApproachPriority, cfg)
	}
	b.ReportMetric(acc, "accuracy%")
}

// --- Inference pipeline benchmarks -----------------------------------
//
// BenchmarkInferSerial*/BenchmarkInferParallel* measure the five-step
// methodology end to end on a synthetic corpus (internal/benchdata) at
// two scales. The serial variants pin Parallelism to 1; the parallel
// variants use the GOMAXPROCS default, so comparing the pair on a
// multi-core machine shows the worker-pool speedup while single-core
// machines show the two are equivalent. Both report domains/sec.

func benchdataProfiles() []core.ProviderProfile {
	var out []core.ProviderProfile
	for _, id := range benchdata.ProfileIDs() {
		out = append(out, core.ProviderProfile{
			ID:   id,
			ASNs: []asn.ASN{asn.ASN(benchdata.ProfileASN(id))},
			VPSPatterns: []string{
				"vps*." + id, "s*-*-*." + id,
			},
			DedicatedPatterns: []string{
				"mx*." + id, "mailstore*." + id,
			},
		})
	}
	return out
}

func benchmarkInfer(b *testing.B, nDomains, parallelism int) {
	snap := benchdata.Snapshot(nDomains)
	cfg := core.Config{Profiles: benchdataProfiles(), Parallelism: parallelism}
	snap.Index() // steady-state: the derived index is cached across runs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Infer(snap, core.ApproachPriority, cfg)
	}
	b.ReportMetric(float64(nDomains)*float64(b.N)/b.Elapsed().Seconds(), "domains/sec")
}

func BenchmarkInferSerial2k(b *testing.B)    { benchmarkInfer(b, 2_000, 1) }
func BenchmarkInferParallel2k(b *testing.B)  { benchmarkInfer(b, 2_000, 0) }
func BenchmarkInferSerial20k(b *testing.B)   { benchmarkInfer(b, 20_000, 1) }
func BenchmarkInferParallel20k(b *testing.B) { benchmarkInfer(b, 20_000, 0) }

// BenchmarkPSLRegisteredDomain compares cold PSL suffix matching against
// the sharded memo that the inference pipeline threads through its hot
// paths. The host mix mirrors inference traffic: a handful of popular
// exchange names dominating a long tail of per-domain hosts.
func benchmarkPSL(b *testing.B, lookup func(host string) (string, bool)) {
	hosts := make([]string, 512)
	for i := range hosts {
		switch {
		case i%4 == 0:
			hosts[i] = "mx1.bigmail-0.com"
		case i%4 == 1:
			hosts[i] = "mx2.secure-0.net"
		default:
			hosts[i] = "mail.customer-" + string(rune('a'+i%26)) + ".example.co.uk"
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lookup(hosts[i%len(hosts)])
	}
}

func BenchmarkPSLRegisteredDomainCold(b *testing.B) {
	benchmarkPSL(b, psl.Default.RegisteredDomain)
}

func BenchmarkPSLRegisteredDomainMemoized(b *testing.B) {
	memo := psl.NewMemo(nil)
	benchmarkPSL(b, memo.RegisteredDomain)
}
