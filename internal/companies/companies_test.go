package companies

import (
	"testing"

	"mxmap/internal/asn"
)

func TestCuratedTable5Inventory(t *testing.T) {
	d := Curated()
	// The paper's Table 5: Microsoft and ProofPoint provider IDs.
	msIDs := []string{"outlook.com", "office365.us", "hotmail.com", "outlook.cn", "outlook.de"}
	for _, id := range msIDs {
		c, ok := d.CompanyFor(id)
		if !ok || c.Name != "Microsoft" {
			t.Errorf("CompanyFor(%q) = %v, want Microsoft", id, c)
		}
	}
	ppIDs := []string{"gpphosted.com", "ppops.net", "pphosted.com", "ppe-hosted.com"}
	for _, id := range ppIDs {
		c, ok := d.CompanyFor(id)
		if !ok || c.Name != "ProofPoint" {
			t.Errorf("CompanyFor(%q) = %v, want ProofPoint", id, c)
		}
	}
}

func TestCompanyNameFallsBackToID(t *testing.T) {
	d := Curated()
	if got := d.CompanyName("tiny-provider.example"); got != "tiny-provider.example" {
		t.Errorf("CompanyName fallback = %q", got)
	}
	if got := d.CompanyName("GOOGLE.COM"); got != "Google" {
		t.Errorf("CompanyName case folding = %q", got)
	}
}

func TestRegisterOverrides(t *testing.T) {
	d := NewDirectory()
	d.Register(Company{Name: "First", ProviderIDs: []string{"x.com"}})
	d.Register(Company{Name: "Second", ProviderIDs: []string{"x.com"}})
	if got := d.CompanyName("x.com"); got != "Second" {
		t.Errorf("override = %q", got)
	}
	if len(d.Companies()) != 2 {
		t.Errorf("Companies = %d", len(d.Companies()))
	}
}

func TestByKind(t *testing.T) {
	d := Curated()
	sec := d.ByKind(KindEmailSecurity)
	names := make(map[string]bool)
	for _, c := range sec {
		names[c.Name] = true
		if c.Kind != KindEmailSecurity {
			t.Errorf("%s has kind %v", c.Name, c.Kind)
		}
	}
	for _, want := range []string{"ProofPoint", "Mimecast", "Barracuda", "Cisco Ironport", "AppRiver"} {
		if !names[want] {
			t.Errorf("security companies missing %s", want)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindMailHosting.String() != "mail-hosting" || Kind(99).String() != "other" {
		t.Error("kind names changed")
	}
}

func TestCuratedCountries(t *testing.T) {
	d := Curated()
	cases := map[string]string{"Google": "US", "Yandex": "RU", "Tencent": "CN", "OVH": "FR"}
	for name, country := range cases {
		found := false
		for _, c := range d.Companies() {
			if c.Name == name {
				found = true
				if c.Country != country {
					t.Errorf("%s country = %s, want %s", name, c.Country, country)
				}
			}
		}
		if !found {
			t.Errorf("company %s missing", name)
		}
	}
}

func TestASNsPopulated(t *testing.T) {
	d := Curated()
	g, _ := d.CompanyFor("google.com")
	if len(g.ASNs) == 0 || g.ASNs[0] != asn.ASN(15169) {
		t.Errorf("Google ASNs = %v", g.ASNs)
	}
}
