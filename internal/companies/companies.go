// Package companies aggregates provider IDs (registered domains emitted by
// the inference methodology) into the companies that operate them — the
// manual mapping step the paper describes in §4.4 and documents in
// Table 5.
//
// A Directory is the lookup structure; Curated returns the directory used
// throughout the experiments, combining the associations published in the
// paper with the synthetic providers the world generator creates.
package companies

import (
	"sort"
	"strings"
	"sync"

	"mxmap/internal/asn"
)

// Kind classifies what a company sells, which drives which panel of
// Figure 6 it appears in.
type Kind int

// Company kinds.
const (
	// KindMailHosting providers run full mailbox services (Google,
	// Microsoft, Yandex, ...).
	KindMailHosting Kind = iota
	// KindEmailSecurity providers filter inbound mail and forward it to
	// the customer (ProofPoint, Mimecast, ...).
	KindEmailSecurity
	// KindWebHosting companies bundle mail service with web hosting
	// (GoDaddy, OVH, ...).
	KindWebHosting
	// KindGovAgency marks government departments that run mail for other
	// agencies (hhs.gov, treasury.gov).
	KindGovAgency
	// KindOther covers everything else.
	KindOther
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindMailHosting:
		return "mail-hosting"
	case KindEmailSecurity:
		return "email-security"
	case KindWebHosting:
		return "web-hosting"
	case KindGovAgency:
		return "gov-agency"
	default:
		return "other"
	}
}

// Company is one operating organization.
type Company struct {
	// Name is the display name used in tables and figures.
	Name string
	// Kind is the business classification.
	Kind Kind
	// Country is the ISO alpha-2 home jurisdiction.
	Country string
	// ProviderIDs lists registered domains the company operates mail
	// infrastructure under. Never exhaustive (per the paper's caveat).
	ProviderIDs []string
	// ASNs lists autonomous systems the company announces mail
	// infrastructure from.
	ASNs []asn.ASN
}

// Directory maps provider IDs to companies.
type Directory struct {
	mu        sync.RWMutex
	byID      map[string]*Company
	companies []*Company
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{byID: make(map[string]*Company)}
}

// Register adds a company and indexes its provider IDs. Later
// registrations win ID conflicts, enabling layered curation.
func (d *Directory) Register(c Company) *Company {
	d.mu.Lock()
	defer d.mu.Unlock()
	cp := c
	d.companies = append(d.companies, &cp)
	for _, id := range cp.ProviderIDs {
		d.byID[strings.ToLower(id)] = &cp
	}
	return &cp
}

// CompanyFor resolves a provider ID to its operating company.
func (d *Directory) CompanyFor(providerID string) (*Company, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	c, ok := d.byID[strings.ToLower(providerID)]
	return c, ok
}

// CompanyName returns the display name for a provider ID, or the ID
// itself when unmapped — matching how the paper reports long-tail
// providers by their registered domain.
func (d *Directory) CompanyName(providerID string) string {
	if c, ok := d.CompanyFor(providerID); ok {
		return c.Name
	}
	return providerID
}

// Companies returns all registered companies sorted by name.
func (d *Directory) Companies() []*Company {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]*Company, len(d.companies))
	copy(out, d.companies)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByKind returns companies of one kind sorted by name.
func (d *Directory) ByKind(k Kind) []*Company {
	var out []*Company
	for _, c := range d.Companies() {
		if c.Kind == k {
			out = append(out, c)
		}
	}
	return out
}

// Curated returns a directory seeded with the published associations the
// paper documents (Table 5 and the top-company discussion), expressed
// with the real provider IDs so the Table 5 reproduction prints the same
// inventory rows.
func Curated() *Directory {
	d := NewDirectory()
	for _, c := range curated {
		d.Register(c)
	}
	return d
}

// curated mirrors Table 5 plus the companies named across Figures 5-8 and
// Table 6. AS numbers follow the paper where published.
var curated = []Company{
	{Name: "Google", Kind: KindMailHosting, Country: "US",
		ProviderIDs: []string{"google.com", "googlemail.com", "smtp.goog"},
		ASNs:        []asn.ASN{15169}},
	{Name: "Microsoft", Kind: KindMailHosting, Country: "US",
		ProviderIDs: []string{"outlook.com", "office365.us", "hotmail.com", "outlook.cn", "outlook.de"},
		ASNs:        []asn.ASN{8075, 200517, 58593}},
	{Name: "ProofPoint", Kind: KindEmailSecurity, Country: "US",
		ProviderIDs: []string{"gpphosted.com", "ppops.net", "pphosted.com", "ppe-hosted.com"},
		ASNs:        []asn.ASN{52129, 26211, 22843, 13916, 15830}},
	{Name: "Mimecast", Kind: KindEmailSecurity, Country: "UK",
		ProviderIDs: []string{"mimecast.com", "mimecast.co.za"},
		ASNs:        []asn.ASN{30031}},
	{Name: "Barracuda", Kind: KindEmailSecurity, Country: "US",
		ProviderIDs: []string{"barracudanetworks.com", "ess.barracuda.com"},
		ASNs:        []asn.ASN{15324}},
	{Name: "Cisco Ironport", Kind: KindEmailSecurity, Country: "US",
		ProviderIDs: []string{"iphmx.com"},
		ASNs:        []asn.ASN{16417}},
	{Name: "AppRiver", Kind: KindEmailSecurity, Country: "US",
		ProviderIDs: []string{"arsmtp.com"},
		ASNs:        []asn.ASN{27357}},
	{Name: "MessageLabs", Kind: KindEmailSecurity, Country: "US",
		ProviderIDs: []string{"messagelabs.com"},
		ASNs:        []asn.ASN{21345}},
	{Name: "Sophos", Kind: KindEmailSecurity, Country: "UK",
		ProviderIDs: []string{"sophos.com", "reflexion.net"},
		ASNs:        []asn.ASN{14066}},
	{Name: "Solarwinds", Kind: KindEmailSecurity, Country: "US",
		ProviderIDs: []string{"spamexperts.com"},
		ASNs:        []asn.ASN{39572}},
	{Name: "TrendMicro", Kind: KindEmailSecurity, Country: "JP",
		ProviderIDs: []string{"trendmicro.com", "tmes.trendmicro.eu"},
		ASNs:        []asn.ASN{7588}},
	{Name: "Yandex", Kind: KindMailHosting, Country: "RU",
		ProviderIDs: []string{"yandex.ru", "yandex.net", "mx.yandex.net"},
		ASNs:        []asn.ASN{13238}},
	{Name: "Mail.Ru", Kind: KindMailHosting, Country: "RU",
		ProviderIDs: []string{"mail.ru"},
		ASNs:        []asn.ASN{47764}},
	{Name: "Tencent", Kind: KindMailHosting, Country: "CN",
		ProviderIDs: []string{"qq.com", "exmail.qq.com"},
		ASNs:        []asn.ASN{45090}},
	{Name: "Zoho", Kind: KindMailHosting, Country: "IN",
		ProviderIDs: []string{"zoho.com", "zoho.eu"},
		ASNs:        []asn.ASN{2639}},
	{Name: "Yahoo", Kind: KindMailHosting, Country: "US",
		ProviderIDs: []string{"yahoodns.net", "yahoo.com"},
		ASNs:        []asn.ASN{36647}},
	{Name: "Rackspace", Kind: KindMailHosting, Country: "US",
		ProviderIDs: []string{"emailsrvr.com", "rackspace.com"},
		ASNs:        []asn.ASN{33070}},
	{Name: "IntermediaCloud", Kind: KindMailHosting, Country: "US",
		ProviderIDs: []string{"intermedia.net"},
		ASNs:        []asn.ASN{16406}},
	{Name: "Beget", Kind: KindWebHosting, Country: "RU",
		ProviderIDs: []string{"beget.com", "beget.ru"},
		ASNs:        []asn.ASN{198610}},
	{Name: "GoDaddy", Kind: KindWebHosting, Country: "US",
		ProviderIDs: []string{"secureserver.net", "godaddy.com"},
		ASNs:        []asn.ASN{26496}},
	{Name: "OVH", Kind: KindWebHosting, Country: "FR",
		ProviderIDs: []string{"ovh.net", "ovh.com"},
		ASNs:        []asn.ASN{16276}},
	{Name: "UnitedInternet", Kind: KindWebHosting, Country: "DE",
		ProviderIDs: []string{"kundenserver.de", "1and1.com", "ui-dns.de", "ionos.com"},
		ASNs:        []asn.ASN{8560}},
	{Name: "EIG", Kind: KindWebHosting, Country: "US",
		ProviderIDs: []string{"websitewelcome.com", "bluehost.com", "hostgator.com"},
		ASNs:        []asn.ASN{46606}},
	{Name: "NameCheap", Kind: KindWebHosting, Country: "US",
		ProviderIDs: []string{"privateemail.com", "registrar-servers.com"},
		ASNs:        []asn.ASN{22612}},
	{Name: "Tucows", Kind: KindWebHosting, Country: "CA",
		ProviderIDs: []string{"hostedemail.com", "tucows.com"},
		ASNs:        []asn.ASN{15348}},
	{Name: "Strato", Kind: KindWebHosting, Country: "DE",
		ProviderIDs: []string{"rzone.de", "strato.de"},
		ASNs:        []asn.ASN{6724}},
	{Name: "Web.com Group", Kind: KindWebHosting, Country: "US",
		ProviderIDs: []string{"netsolmail.net", "web.com"},
		ASNs:        []asn.ASN{19871}},
	{Name: "Aruba", Kind: KindWebHosting, Country: "IT",
		ProviderIDs: []string{"aruba.it", "arubabusiness.it"},
		ASNs:        []asn.ASN{31034}},
	{Name: "SiteGround", Kind: KindWebHosting, Country: "BG",
		ProviderIDs: []string{"siteground.com", "mailspamprotection.com"},
		ASNs:        []asn.ASN{396982}},
	{Name: "NameCheap Registrar", Kind: KindOther, Country: "US",
		ProviderIDs: []string{"namecheaphosting.com"},
		ASNs:        nil},
	{Name: "Ukraine.ua", Kind: KindWebHosting, Country: "UA",
		ProviderIDs: []string{"ukraine.com.ua"},
		ASNs:        []asn.ASN{200000}},
	{Name: "hhs.gov", Kind: KindGovAgency, Country: "US",
		ProviderIDs: []string{"hhs.gov"},
		ASNs:        []asn.ASN{1999}},
	{Name: "treasury.gov", Kind: KindGovAgency, Country: "US",
		ProviderIDs: []string{"treasury.gov"},
		ASNs:        []asn.ASN{1998}},
}
