package mta

import (
	"context"
	"errors"
	"net/netip"
	"strings"
	"sync"
	"testing"

	"mxmap/internal/dns"
	"mxmap/internal/netsim"
	"mxmap/internal/smtp"
)

// rig is a small two-provider e-mail world: a submission server for the
// sender's provider and MX servers for recipient domains.
type rig struct {
	net     *netsim.Network
	catalog *dns.Catalog

	mu       sync.Mutex
	received map[string][]smtp.Envelope // server hostname -> envelopes
}

func newRig(t *testing.T) *rig {
	t.Helper()
	r := &rig{net: netsim.New(), catalog: dns.NewCatalog(), received: make(map[string][]smtp.Envelope)}
	return r
}

// addMailServer starts an SMTP server and records its envelopes.
func (r *rig) addMailServer(t *testing.T, hostname, ip string) {
	t.Helper()
	srv, err := smtp.NewServer(smtp.Config{
		Hostname: hostname,
		OnMessage: func(e smtp.Envelope) {
			r.mu.Lock()
			r.received[hostname] = append(r.received[hostname], e)
			r.mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := r.net.Listen(netip.MustParseAddrPort(ip + ":25"))
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
}

func (r *rig) envelopes(hostname string) []smtp.Envelope {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]smtp.Envelope(nil), r.received[hostname]...)
}

func (r *rig) addZone(t *testing.T, origin string, rrs ...dns.RR) {
	t.Helper()
	z := dns.NewZone(origin)
	for _, rr := range rrs {
		if err := z.Add(rr); err != nil {
			t.Fatal(err)
		}
	}
	r.catalog.AddZone(z)
}

func (r *rig) agent() *Agent {
	return &Agent{
		Resolver: dns.CatalogResolver{Catalog: r.catalog},
		Dialer:   r.net,
		HELOName: "out.sender.example",
	}
}

func a(s string) dns.AData { return dns.AData{Addr: netip.MustParseAddr(s)} }
func mx(p uint16, h string) dns.MXData {
	return dns.MXData{Preference: p, Exchange: h}
}

func TestDeliverSingleRecipient(t *testing.T) {
	r := newRig(t)
	r.addMailServer(t, "mx1.rcpt.net", "10.0.0.1")
	r.addZone(t, "rcpt.net",
		dns.RR{Name: "rcpt.net.", Type: dns.TypeMX, TTL: 1, Data: mx(10, "mx1.rcpt.net.")},
		dns.RR{Name: "mx1.rcpt.net.", Type: dns.TypeA, TTL: 1, Data: a("10.0.0.1")},
	)
	deliveries, err := r.agent().Deliver(context.Background(), "alice@sender.example",
		[]string{"bob@rcpt.net"}, []byte("Subject: hi\r\n\r\nhello\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(deliveries) != 1 || deliveries[0].Exchange != "mx1.rcpt.net" {
		t.Errorf("deliveries = %+v", deliveries)
	}
	envs := r.envelopes("mx1.rcpt.net")
	if len(envs) != 1 || envs[0].To[0] != "bob@rcpt.net" {
		t.Errorf("envelopes = %+v", envs)
	}
}

func TestDeliverGroupsByDomain(t *testing.T) {
	r := newRig(t)
	r.addMailServer(t, "mx.a.net", "10.0.1.1")
	r.addMailServer(t, "mx.b.org", "10.0.2.1")
	r.addZone(t, "a.net",
		dns.RR{Name: "a.net.", Type: dns.TypeMX, TTL: 1, Data: mx(10, "mx.a.net.")},
		dns.RR{Name: "mx.a.net.", Type: dns.TypeA, TTL: 1, Data: a("10.0.1.1")},
	)
	r.addZone(t, "b.org",
		dns.RR{Name: "b.org.", Type: dns.TypeMX, TTL: 1, Data: mx(10, "mx.b.org.")},
		dns.RR{Name: "mx.b.org.", Type: dns.TypeA, TTL: 1, Data: a("10.0.2.1")},
	)
	deliveries, err := r.agent().Deliver(context.Background(), "s@s.example",
		[]string{"x@a.net", "y@b.org", "z@a.net"}, []byte("m\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(deliveries) != 2 {
		t.Fatalf("deliveries = %+v", deliveries)
	}
	envsA := r.envelopes("mx.a.net")
	if len(envsA) != 1 || len(envsA[0].To) != 2 {
		t.Errorf("a.net should get one transaction with two recipients: %+v", envsA)
	}
	if len(r.envelopes("mx.b.org")) != 1 {
		t.Errorf("b.org envelopes = %+v", r.envelopes("mx.b.org"))
	}
}

func TestDeliverPreferenceFallback(t *testing.T) {
	r := newRig(t)
	// Primary MX is dead; secondary works.
	r.addMailServer(t, "backup.rcpt.net", "10.0.3.2")
	r.addZone(t, "rcpt.net",
		dns.RR{Name: "rcpt.net.", Type: dns.TypeMX, TTL: 1, Data: mx(10, "primary.rcpt.net.")},
		dns.RR{Name: "rcpt.net.", Type: dns.TypeMX, TTL: 1, Data: mx(20, "backup.rcpt.net.")},
		dns.RR{Name: "primary.rcpt.net.", Type: dns.TypeA, TTL: 1, Data: a("10.0.3.1")},
		dns.RR{Name: "backup.rcpt.net.", Type: dns.TypeA, TTL: 1, Data: a("10.0.3.2")},
	)
	deliveries, err := r.agent().Deliver(context.Background(), "s@s.example",
		[]string{"u@rcpt.net"}, []byte("m\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if deliveries[0].Exchange != "backup.rcpt.net" {
		t.Errorf("delivered via %s, want backup", deliveries[0].Exchange)
	}
}

func TestDeliverImplicitMX(t *testing.T) {
	r := newRig(t)
	// No MX record at all: RFC 5321 implicit MX uses the domain's A.
	r.addMailServer(t, "bare.example", "10.0.4.1")
	r.addZone(t, "bare.example",
		dns.RR{Name: "bare.example.", Type: dns.TypeA, TTL: 1, Data: a("10.0.4.1")},
	)
	deliveries, err := r.agent().Deliver(context.Background(), "s@s.example",
		[]string{"u@bare.example"}, []byte("m\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if deliveries[0].Exchange != "bare.example" {
		t.Errorf("implicit MX exchange = %s", deliveries[0].Exchange)
	}
	if len(r.envelopes("bare.example")) != 1 {
		t.Error("implicit-MX message not delivered")
	}
}

func TestDeliverNoRoute(t *testing.T) {
	r := newRig(t)
	// The domain exists (it has a TXT record) but has neither MX nor A:
	// no explicit route and no implicit-MX fallback.
	r.addZone(t, "noroute.example",
		dns.RR{Name: "noroute.example.", Type: dns.TypeTXT, TTL: 1, Data: dns.TXTData{Strings: []string{"x"}}},
	)
	deliveries, err := r.agent().Deliver(context.Background(), "s@s.example",
		[]string{"u@noroute.example"}, []byte("m\r\n"))
	if err == nil {
		t.Fatal("delivery to routeless domain succeeded")
	}
	if !errors.Is(deliveries[0].Err, ErrNoRoute) && !errors.Is(err, ErrNoRoute) {
		t.Errorf("err = %v", err)
	}
}

func TestDeliverAllExchangesDown(t *testing.T) {
	r := newRig(t)
	r.addZone(t, "down.example",
		dns.RR{Name: "down.example.", Type: dns.TypeMX, TTL: 1, Data: mx(10, "mx.down.example.")},
		dns.RR{Name: "mx.down.example.", Type: dns.TypeA, TTL: 1, Data: a("10.0.5.1")},
	)
	_, err := r.agent().Deliver(context.Background(), "s@s.example",
		[]string{"u@down.example"}, []byte("m\r\n"))
	if !errors.Is(err, ErrAllExchangesFailed) {
		t.Errorf("err = %v, want ErrAllExchangesFailed", err)
	}
}

func TestDeliverValidatesInput(t *testing.T) {
	r := newRig(t)
	ag := r.agent()
	if _, err := ag.Deliver(context.Background(), "s@s", nil, []byte("m")); !errors.Is(err, ErrNoRecipients) {
		t.Errorf("empty recipients: %v", err)
	}
	if _, err := ag.Deliver(context.Background(), "s@s", []string{"not-an-address"}, []byte("m")); err == nil {
		t.Error("malformed recipient accepted")
	}
}

// TestSubmissionToDeliveryLoop exercises the paper's Figure 1 end to
// end: an authenticated MUA submission to the provider's MSA, whose
// message sink relays onward through the MTA to the recipient's MX.
func TestSubmissionToDeliveryLoop(t *testing.T) {
	r := newRig(t)
	r.addMailServer(t, "mx.rcpt.net", "10.0.6.1")
	r.addZone(t, "rcpt.net",
		dns.RR{Name: "rcpt.net.", Type: dns.TypeMX, TTL: 1, Data: mx(10, "mx.rcpt.net.")},
		dns.RR{Name: "mx.rcpt.net.", Type: dns.TypeA, TTL: 1, Data: a("10.0.6.1")},
	)

	agent := r.agent()
	relayed := make(chan error, 1)
	msa, err := smtp.NewServer(smtp.Config{
		Hostname:           "submit.sender.example",
		Auth:               smtp.StaticAuth{"alice": "pw"},
		RequireAuthForMail: true,
		OnMessage: func(e smtp.Envelope) {
			// The MSA queues and the co-located MTA relays (Figure 1's
			// MSA -> MTA handoff).
			_, err := agent.Deliver(context.Background(), e.From, e.To, e.Data)
			relayed <- err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := r.net.Listen(netip.MustParseAddrPort("10.0.7.1:587"))
	if err != nil {
		t.Fatal(err)
	}
	go msa.Serve(ln)
	defer msa.Close()

	err = smtp.Submit(context.Background(), r.net, "10.0.7.1:587", "laptop.sender.example",
		smtp.ClientAuth{Username: "alice", Password: "pw"},
		"alice@sender.example", []string{"bob@rcpt.net"},
		[]byte("Subject: loop\r\n\r\nfull path\r\n"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-relayed; err != nil {
		t.Fatalf("relay failed: %v", err)
	}
	envs := r.envelopes("mx.rcpt.net")
	if len(envs) != 1 || !strings.Contains(string(envs[0].Data), "full path") {
		t.Errorf("recipient envelopes = %+v", envs)
	}
}
