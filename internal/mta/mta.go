// Package mta implements an outbound mail transfer agent: the component
// of the paper's Figure 1 that resolves each recipient domain's MX
// records and relays the message to the most preferred reachable
// exchange. It drives the same DNS and SMTP substrates the measurement
// pipeline observes, closing the loop between provisioning (MX records)
// and behaviour (where mail actually lands).
package mta

import (
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"mxmap/internal/dns"
	"mxmap/internal/smtp"
)

// Agent is an outbound MTA.
type Agent struct {
	// Resolver locates recipient MX hosts. Required.
	Resolver dns.Resolver
	// Dialer reaches them. Required.
	Dialer smtp.Dialer
	// HELOName is the identity presented to receiving MTAs (default
	// "mta.invalid").
	HELOName string
	// TLS configures STARTTLS verification for outbound sessions; nil
	// uses opportunistic (unverified) TLS, matching common MTA practice
	// noted in the paper's §2.3.
	TLS *tls.Config
}

// Delivery describes the outcome for one recipient domain.
type Delivery struct {
	// Domain is the recipient domain.
	Domain string
	// Recipients are the addresses delivered in this transaction.
	Recipients []string
	// Exchange is the MX host that accepted the message.
	Exchange string
	// Addr is the server address used.
	Addr netip.Addr
	// Err is non-nil when every exchange failed.
	Err error
}

// Errors.
var (
	// ErrNoRecipients reports an empty recipient list.
	ErrNoRecipients = errors.New("mta: no recipients")
	// ErrNoRoute reports a domain with neither MX records nor an
	// implicit-MX address.
	ErrNoRoute = errors.New("mta: no mail exchanger")
	// ErrAllExchangesFailed reports that every candidate server refused
	// or failed the transaction.
	ErrAllExchangesFailed = errors.New("mta: all exchanges failed")
)

// Deliver relays one message to every recipient, grouping recipients by
// domain as RFC 5321 §5 prescribes and trying each domain's exchanges in
// preference order. It returns one Delivery per recipient domain; the
// error aggregates any per-domain failures.
func (a *Agent) Deliver(ctx context.Context, from string, to []string, msg []byte) ([]Delivery, error) {
	if len(to) == 0 {
		return nil, ErrNoRecipients
	}
	if a.Resolver == nil || a.Dialer == nil {
		return nil, errors.New("mta: agent requires a resolver and a dialer")
	}
	byDomain := make(map[string][]string)
	var order []string
	for _, rcpt := range to {
		_, domain, ok := strings.Cut(rcpt, "@")
		if !ok || domain == "" {
			return nil, fmt.Errorf("mta: malformed recipient %q", rcpt)
		}
		domain = strings.ToLower(domain)
		if _, seen := byDomain[domain]; !seen {
			order = append(order, domain)
		}
		byDomain[domain] = append(byDomain[domain], rcpt)
	}
	var (
		out  []Delivery
		errs []error
	)
	for _, domain := range order {
		d := a.deliverDomain(ctx, from, domain, byDomain[domain], msg)
		if d.Err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", domain, d.Err))
		}
		out = append(out, d)
	}
	return out, errors.Join(errs...)
}

// route is one candidate (exchange, address) pair in preference order.
type route struct {
	exchange string
	addr     netip.Addr
}

// deliverDomain relays to one recipient domain.
func (a *Agent) deliverDomain(ctx context.Context, from, domain string, rcpts []string, msg []byte) Delivery {
	d := Delivery{Domain: domain, Recipients: rcpts}
	routes, err := a.routes(ctx, domain)
	if err != nil {
		d.Err = err
		return d
	}
	helo := a.HELOName
	if helo == "" {
		helo = "mta.invalid"
	}
	var lastErr error
	for _, r := range routes {
		addr := netip.AddrPortFrom(r.addr, 25).String()
		tcfg := a.TLS
		if tcfg != nil && tcfg.ServerName == "" {
			tcfg = tcfg.Clone()
			tcfg.ServerName = r.exchange
		}
		if err := smtp.SendMail(ctx, a.Dialer, addr, helo, from, rcpts, msg, tcfg); err != nil {
			lastErr = err
			continue
		}
		d.Exchange = r.exchange
		d.Addr = r.addr
		return d
	}
	if lastErr == nil {
		lastErr = ErrNoRoute
	}
	d.Err = fmt.Errorf("%w: %w", ErrAllExchangesFailed, lastErr)
	return d
}

// routes resolves the delivery candidates for a domain: its MX records
// in preference order, or — per RFC 5321 §5.1's implicit MX rule — the
// domain's own address when no MX exists.
func (a *Agent) routes(ctx context.Context, domain string) ([]route, error) {
	mxs, err := a.Resolver.LookupMX(ctx, domain)
	switch {
	case err == nil:
		sort.SliceStable(mxs, func(i, j int) bool { return mxs[i].Preference < mxs[j].Preference })
		var out []route
		for _, mx := range mxs {
			addrs, err := a.Resolver.LookupA(ctx, mx.Exchange)
			if err != nil {
				continue
			}
			for _, addr := range addrs {
				out = append(out, route{exchange: mx.Exchange, addr: addr})
			}
		}
		if len(out) == 0 {
			return nil, ErrNoRoute
		}
		return out, nil
	case errors.Is(err, dns.ErrNoData):
		// Implicit MX: fall back to the domain's own A record.
		addrs, aerr := a.Resolver.LookupA(ctx, domain)
		if aerr != nil || len(addrs) == 0 {
			return nil, ErrNoRoute
		}
		out := make([]route, len(addrs))
		for i, addr := range addrs {
			out[i] = route{exchange: domain, addr: addr}
		}
		return out, nil
	default:
		return nil, err
	}
}
