package serve

import (
	"context"
	"strconv"
)

// handle routes one admitted request: through Config.Handler when one
// is plugged in (the HA balancer front), otherwise through the built-in
// Service routes. Service handlers read from an acquired epoch — never
// from the Service's mutable state directly — so a concurrent hot-swap
// can only give them a fully-built store.
func (s *Server) handle(ctx context.Context, req *Request) Response {
	if gate := s.cfg.Gate; gate != nil {
		gate(req.Path)
	}
	if s.cfg.Handler != nil {
		return s.cfg.Handler(ctx, req)
	}
	if req.Method != "GET" && !(req.Method == "POST" && req.Path == "/v1/swap") {
		return ErrorResponse(405, "method not allowed")
	}
	switch req.Path {
	case "/healthz":
		return s.handleHealthz()
	case "/readyz":
		return s.handleReadyz()
	case "/v1/domain":
		return s.handleDomain(req)
	case "/v1/share":
		return s.handleShare(req)
	case "/v1/concentration":
		return s.handleConcentration()
	case "/v1/churn":
		return s.handleChurn()
	case "/v1/stats":
		return s.handleStats()
	case "/v1/swap":
		return s.handleSwap(ctx, req)
	}
	return ErrorResponse(404, "not found")
}

// dataStore pins the current epoch for a data endpoint, accounting
// stale serves. ok=false means no snapshot is loaded yet.
func (s *Server) dataStore() (e *epoch, store *Store, stale bool, ok bool) {
	e, store = s.cfg.Service.acquire()
	if store == nil {
		return nil, nil, false, false
	}
	stale = s.cfg.Service.Stale()
	if stale {
		s.stats.staleServes.Add(1)
	}
	return e, store, stale, true
}

// notLoaded carries Retry-After (via ErrorResponse's 503 rule): a
// loading or load-failed service is worth polling again shortly.
var notLoaded = ErrorResponse(503, "no snapshot loaded")

func (s *Server) handleDomain(req *Request) Response {
	name := req.Query.Get("name")
	if name == "" {
		return ErrorResponse(400, "missing name parameter")
	}
	e, store, stale, ok := s.dataStore()
	if !ok {
		return notLoaded
	}
	defer s.cfg.Service.release(e)
	att, found := store.domains[name]
	s.stats.lookups.Add(1)
	resp := LookupResponse{Domain: name, Found: found, Stale: stale, Snapshot: store.meta}
	if found {
		resp.Primary = att.Primary()
		resp.Credits = att.Credits
		resp.Rank = att.Rank
		resp.HasSMTP = att.HasSMTP
		resp.Untrusted = att.Untrusted
	} else {
		s.stats.lookupMisses.Add(1)
	}
	return JSONResponse(200, resp)
}

func (s *Server) handleShare(req *Request) Response {
	e, store, stale, ok := s.dataStore()
	if !ok {
		return notLoaded
	}
	defer s.cfg.Service.release(e)
	n := len(store.shares)
	if raw := req.Query.Get("top"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v <= 0 {
			return ErrorResponse(400, "top must be a positive integer")
		}
		if v < n {
			n = v
		}
	}
	return JSONResponse(200, ShareResponse{Top: store.shares[:n], Stale: stale, Snapshot: store.meta})
}

func (s *Server) handleConcentration() Response {
	e, store, stale, ok := s.dataStore()
	if !ok {
		return notLoaded
	}
	defer s.cfg.Service.release(e)
	c := store.conc
	return JSONResponse(200, ConcentrationResponse{
		HHI: c.HHI, CR1: c.CR1, CR4: c.CR4, CR8: c.CR8,
		EffectiveCompanies: c.EffectiveCompanies,
		Stale:              stale,
		Snapshot:           store.meta,
	})
}

func (s *Server) handleChurn() Response {
	svc := s.cfg.Service
	return JSONResponse(200, ChurnResponse{Swaps: svc.Stats().Swaps, Last: svc.Churn()})
}

func (s *Server) handleStats() Response {
	return JSONResponse(200, StatsResponse{
		Server:  s.Stats(),
		Service: s.cfg.Service.Stats(),
		Latency: s.LatencySnapshot(),
	})
}

func (s *Server) handleSwap(ctx context.Context, req *Request) Response {
	if !s.cfg.AllowSwap {
		return ErrorResponse(403, "swap endpoint disabled")
	}
	path := req.Query.Get("path")
	if path == "" {
		return ErrorResponse(400, "missing path parameter")
	}
	rep, err := s.cfg.Service.Swap(ctx, path)
	if err != nil {
		// The old epoch keeps serving, marked stale; tell the
		// operator what failed.
		return ErrorResponse(500, err.Error())
	}
	return JSONResponse(200, rep)
}

func (s *Server) handleHealthz() Response {
	svc := s.cfg.Service
	h := HealthResponse{State: svc.State().String(), Stale: svc.Stale()}
	if meta, ok := svc.Meta(); ok {
		h.Epoch = meta.Epoch
	}
	return JSONResponse(200, h)
}

func (s *Server) handleReadyz() Response {
	svc := s.cfg.Service
	r := ReadyResponse{Ready: svc.Ready(), State: svc.State().String(), Stale: svc.Stale()}
	resp := JSONResponse(200, r)
	if !r.Ready {
		// Loading and draining both answer 503 with a back-off hint so
		// balancers and clients know to come back, not give up.
		resp.Status = 503
		resp.RetryAfter = true
	}
	return resp
}
