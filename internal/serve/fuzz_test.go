package serve

import (
	"bufio"
	"io"
	"strings"
	"testing"
)

// FuzzParseRequest hammers the handwritten HTTP/1.1 parser with hostile
// wire bytes. The invariants: readRequest never panics, never buffers
// past its line/header bounds, returns io.EOF only for a cleanly empty
// stream, and any accepted request has a sane shape (non-empty method
// and path, parsed query, no CR/LF smuggled into either).
func FuzzParseRequest(f *testing.F) {
	seeds := []string{
		// Well-formed traffic, keep-alive and close.
		"GET /v1/domain?name=one.example HTTP/1.1\r\nHost: t\r\n\r\n",
		"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
		"POST /v1/swap?path=%2Ftmp%2Fs.jsonl HTTP/1.1\r\n\r\n",
		"GET / HTTP/1.0\r\n\r\n",
		"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n",
		// Bare-LF line endings and odd header shapes.
		"GET /readyz HTTP/1.1\nHost: t\n\n",
		"GET / HTTP/1.1\r\nX: a:b:c\r\n\r\n",
		"GET / HTTP/1.1\r\nCONNECTION:   Close  \r\n\r\n",
		// Malformed request lines.
		"",
		"\r\n",
		"GET\r\n\r\n",
		"GET  HTTP/1.1\r\n\r\n",
		"GET / HTTP/2\r\n\r\n",
		"GET /%zz HTTP/1.1\r\n\r\n",
		" / HTTP/1.1\r\n\r\n",
		"GET / HTTP/1.1\r\nnocolon\r\n\r\n",
		// Bodies and chunked encodings are rejected outright.
		"POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello",
		"GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
		// Truncations mid-line and mid-header-block.
		"GET / HTT",
		"GET / HTTP/1.1\r\nHost: t",
		"GET / HTTP/1.1\r\n",
		// Oversized request line and header, and header-count floods.
		"GET /" + strings.Repeat("a", maxLineBytes) + " HTTP/1.1\r\n\r\n",
		"GET / HTTP/1.1\r\nX: " + strings.Repeat("b", maxLineBytes) + "\r\n\r\n",
		"GET / HTTP/1.1\r\n" + strings.Repeat("A: b\r\n", maxHeaderLines+2) + "\r\n",
		// NULs and high bytes.
		"GET /\x00 HTTP/1.1\r\n\r\n",
		"\xff\xfe\xfd",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := readRequest(bufio.NewReaderSize(strings.NewReader(string(data)), 4096))
		if err != nil {
			if req != nil {
				t.Fatalf("error %v with non-nil request %+v", err, req)
			}
			if err == io.EOF && len(data) > 0 {
				// io.EOF is the clean between-requests close; with bytes
				// on the wire the parser must call it malformed instead.
				t.Fatalf("io.EOF leaked for non-empty input %q", data)
			}
			return
		}
		if req.Method == "" || req.Path == "" || req.Query == nil {
			t.Fatalf("accepted request with empty fields: %+v", req)
		}
		for _, s := range []string{req.Method, req.Path} {
			if strings.ContainsAny(s, " \r\n") {
				t.Fatalf("accepted request smuggles whitespace: %q", s)
			}
		}
	})
}
