package serve

import "sync/atomic"

// ServerStats is a point-in-time snapshot of the query server's serving
// counters. Every counter is exact — tests and benchmarks assert whole
// ServerStats values, so each request accounts for precisely one
// increment on each path it touches.
type ServerStats struct {
	// Accepted counts connections admitted to a serving goroutine;
	// Rejected counts connections shed at the door (MaxConns) with a
	// 429 before any request was read.
	Accepted uint64 `json:"accepted"`
	Rejected uint64 `json:"rejected"`
	// Requests counts request lines read off admitted connections
	// (malformed ones included); Responses counts responses written
	// back. After a clean drain the two are equal: no in-flight query
	// is ever dropped.
	Requests  uint64 `json:"requests"`
	Responses uint64 `json:"responses"`
	// Queued counts requests that waited for an inflight slot; Shed
	// counts requests answered 429 because the queue was full or the
	// wait expired.
	Queued uint64 `json:"queued"`
	Shed   uint64 `json:"shed"`
	// Timeouts counts requests answered 503 at the request deadline.
	Timeouts uint64 `json:"timeouts"`
	// BadRequests counts malformed requests answered 400;
	// ReadTimeouts counts connections closed by the slowloris read
	// deadline; BudgetCloses counts connections closed for exhausting
	// their per-connection request budget.
	BadRequests  uint64 `json:"bad_requests"`
	ReadTimeouts uint64 `json:"read_timeouts"`
	BudgetCloses uint64 `json:"budget_closes"`
	// Lookups counts /v1/domain queries served from an epoch;
	// LookupMisses counts the subset naming an unknown domain.
	// StaleServes counts data responses answered while the service was
	// in degraded stale mode.
	Lookups      uint64 `json:"lookups"`
	LookupMisses uint64 `json:"lookup_misses"`
	StaleServes  uint64 `json:"stale_serves"`
	// AcceptRetries counts transient accept errors absorbed with
	// backoff; Drains and DrainTimeouts count graceful shutdowns and
	// drains that fell back to a hard close.
	AcceptRetries uint64 `json:"accept_retries"`
	Drains        uint64 `json:"drains"`
	DrainTimeouts uint64 `json:"drain_timeouts"`
}

// Lost reports requests read but never answered. It is the zero-loss
// contract: after a drain completes it must be zero.
func (st ServerStats) Lost() uint64 { return st.Requests - st.Responses }

// serverCounters is the live atomic mirror of ServerStats.
type serverCounters struct {
	accepted, rejected        atomic.Uint64
	requests, responses       atomic.Uint64
	queued, shed, timeouts    atomic.Uint64
	badRequests, readTimeouts atomic.Uint64
	budgetCloses              atomic.Uint64
	lookups, lookupMisses     atomic.Uint64
	staleServes               atomic.Uint64
	acceptRetries             atomic.Uint64
	drains, drainTimeouts     atomic.Uint64
}

func (c *serverCounters) snapshot() ServerStats {
	return ServerStats{
		Accepted:      c.accepted.Load(),
		Rejected:      c.rejected.Load(),
		Requests:      c.requests.Load(),
		Responses:     c.responses.Load(),
		Queued:        c.queued.Load(),
		Shed:          c.shed.Load(),
		Timeouts:      c.timeouts.Load(),
		BadRequests:   c.badRequests.Load(),
		ReadTimeouts:  c.readTimeouts.Load(),
		BudgetCloses:  c.budgetCloses.Load(),
		Lookups:       c.lookups.Load(),
		LookupMisses:  c.lookupMisses.Load(),
		StaleServes:   c.staleServes.Load(),
		AcceptRetries: c.acceptRetries.Load(),
		Drains:        c.drains.Load(),
		DrainTimeouts: c.drainTimeouts.Load(),
	}
}
