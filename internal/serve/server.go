package serve

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"io"
	"log/slog"
	"net"
	"sync"
	"time"

	"mxmap/internal/overload"
)

// Admission-control defaults.
const (
	// DefaultMaxConns bounds concurrent connections per server.
	DefaultMaxConns = 256
	// DefaultMaxInflight bounds requests executing at once; arrivals
	// beyond it queue up to DefaultQueueDepth for DefaultQueueWait
	// before being shed with a 429.
	DefaultMaxInflight = 64
	// DefaultQueueDepth bounds requests waiting for an inflight slot.
	DefaultQueueDepth = 128
	// DefaultQueueWait bounds how long a queued request waits.
	DefaultQueueWait = 100 * time.Millisecond
	// DefaultRequestTimeout bounds one request's execution.
	DefaultRequestTimeout = 5 * time.Second
	// DefaultReadTimeout is the slowloris deadline for reading a
	// request off an idle connection.
	DefaultReadTimeout = 30 * time.Second
	// DefaultWriteTimeout bounds writing one response.
	DefaultWriteTimeout = 10 * time.Second
	// DefaultMaxRequests is the per-connection request budget.
	DefaultMaxRequests = 10000
	// DefaultRetryAfterSecs is advertised on 429 responses.
	DefaultRetryAfterSecs = 1
	// maxConsecutiveAcceptErrs matches the collection and SMTP serve
	// loops: that many back-to-back accept failures kill the loop.
	maxConsecutiveAcceptErrs = 16
)

// Handler answers one admitted request. The Server owns the sockets,
// admission control, deadlines, and drain bookkeeping; the handler owns
// routing. The HA balancer plugs in here to reuse the whole overload
// kit in front of a replica fleet.
type Handler func(ctx context.Context, req *Request) Response

// Config parameterizes a Server. One of Service or Handler is required;
// every other zero value takes the default above, and negative values
// disable the corresponding limit.
type Config struct {
	// Service answers the queries through the built-in routes. Ignored
	// when Handler is set (a Handler may still consult a Service of its
	// own).
	Service *Service
	// Handler, when set, replaces the built-in Service routing: every
	// admitted request is dispatched to it instead.
	Handler Handler
	// MaxConns caps concurrent connections; beyond it new connections
	// are answered 429 and closed before any request is read. Negative
	// disables the cap.
	MaxConns int
	// MaxInflight caps requests executing concurrently.
	MaxInflight int
	// QueueDepth caps requests waiting for an inflight slot; negative
	// sheds immediately when MaxInflight is reached.
	QueueDepth int
	// QueueWait bounds a queued request's wait before it is shed.
	QueueWait time.Duration
	// RequestTimeout bounds one request's execution; past it the
	// client gets a 503 while the abandoned handler finishes in the
	// background. Negative runs handlers inline with no deadline.
	RequestTimeout time.Duration
	// ReadTimeout is the slowloris deadline: a connection that does
	// not deliver a full request within it is closed.
	ReadTimeout time.Duration
	// WriteTimeout bounds each response write.
	WriteTimeout time.Duration
	// MaxRequests is the per-connection request budget; the final
	// response carries Connection: close.
	MaxRequests int
	// RetryAfterSecs is the Retry-After value advertised when
	// shedding (default DefaultRetryAfterSecs).
	RetryAfterSecs int
	// AllowSwap enables the POST /v1/swap endpoint. Off by default:
	// swapping loads files server-side and belongs behind an
	// operator-only listener.
	AllowSwap bool
	// Gate, when set, runs at the top of every handler with the
	// request path. Tests and benchmarks use it to hold requests at a
	// deterministic point; nil in production.
	Gate func(path string)
	// Clock, when set, turns on per-endpoint latency histograms: it is
	// read exactly twice per request (begin and end) and the measured
	// duration lands in the endpoint's log-scale buckets, exposed via
	// LatencySnapshot and /v1/stats. Nil disables observation, keeping
	// whole-struct counter assertions free of wall-clock buckets. A
	// stepped test clock makes every bucket count byte-reproducible.
	Clock func() time.Time
	// Logger receives connection-level debug records; nil disables.
	Logger *slog.Logger
}

// A Server accepts query connections on one or more listeners.
type Server struct {
	cfg      Config
	sem      chan struct{} // connection admission
	inflight chan struct{} // request execution slots
	stats    serverCounters
	lat      [NumEndpoints]LatencyHist

	mu       sync.Mutex
	lns      []net.Listener
	conns    map[*servConn]struct{}
	queueLen int
	draining bool
	closed   bool
	wg       sync.WaitGroup
}

// servConn is per-connection state. busy is guarded by Server.mu:
// Shutdown reads it to tell idle connections (safe to wake with an
// immediate read deadline) from ones mid-request.
type servConn struct {
	nc   net.Conn
	busy bool
}

// NewServer validates cfg and creates a server.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Service == nil && cfg.Handler == nil {
		return nil, errors.New("serve: config requires a Service or a Handler")
	}
	if cfg.MaxConns == 0 {
		cfg.MaxConns = DefaultMaxConns
	}
	if cfg.MaxInflight == 0 {
		cfg.MaxInflight = DefaultMaxInflight
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.QueueWait == 0 {
		cfg.QueueWait = DefaultQueueWait
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	if cfg.ReadTimeout == 0 {
		cfg.ReadTimeout = DefaultReadTimeout
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = DefaultWriteTimeout
	}
	if cfg.MaxRequests == 0 {
		cfg.MaxRequests = DefaultMaxRequests
	}
	if cfg.RetryAfterSecs == 0 {
		cfg.RetryAfterSecs = DefaultRetryAfterSecs
	}
	s := &Server{cfg: cfg, conns: make(map[*servConn]struct{})}
	if cfg.MaxConns > 0 {
		s.sem = make(chan struct{}, cfg.MaxConns)
	}
	if cfg.MaxInflight > 0 {
		s.inflight = make(chan struct{}, cfg.MaxInflight)
	}
	return s, nil
}

// Stats returns a snapshot of the server's serving counters.
func (s *Server) Stats() ServerStats { return s.stats.snapshot() }

// Serve accepts connections on ln until the server is closed. It
// blocks; run it in a goroutine. Transient accept errors are retried
// with jittered backoff, and connections beyond MaxConns are shed with
// a 429 so a connection storm cannot spawn unbounded goroutines.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.lns = append(s.lns, ln)
	s.wg.Add(1)
	s.mu.Unlock()
	defer s.wg.Done()
	consec := 0
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.stopping() {
				return nil
			}
			consec++
			if !overload.TransientNetErr(err) || consec > maxConsecutiveAcceptErrs {
				return err
			}
			s.stats.acceptRetries.Add(1)
			overload.Backoff(consec)
			continue
		}
		consec = 0
		if !s.admit() {
			s.stats.rejected.Add(1)
			conn.SetWriteDeadline(time.Now().Add(time.Second))
			var buf bytes.Buffer
			r := ErrorResponse(429, "server connection limit reached")
			r.RetryAfter, r.Close = true, true
			appendResponse(&buf, r, s.cfg.RetryAfterSecs)
			conn.Write(buf.Bytes())
			conn.Close()
			continue
		}
		s.stats.accepted.Add(1)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.releaseConn()
			s.serveConn(conn)
		}()
	}
}

// admit takes a connection slot, or reports the cap is hit.
func (s *Server) admit() bool {
	if s.sem == nil {
		return true
	}
	select {
	case s.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

func (s *Server) releaseConn() {
	if s.sem != nil {
		<-s.sem
	}
}

// stopping reports whether the server is draining or closed.
func (s *Server) stopping() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed || s.draining
}

func (s *Server) serveConn(nc net.Conn) {
	defer nc.Close()
	c := &servConn{nc: nc}
	if !s.trackConn(c) {
		// Raced with shutdown between accept and registration.
		return
	}
	defer s.untrackConn(c)
	br := bufio.NewReaderSize(nc, 4096)
	served := 0
	for {
		if !s.beginRead(c) {
			return
		}
		req, err := readRequest(br)
		if err != nil {
			switch {
			case err == io.EOF:
				// Clean close between requests.
			case s.stopping():
				// Woken by Shutdown's immediate read deadline.
			case isTimeout(err):
				s.stats.readTimeouts.Add(1)
			default:
				// Malformed request: account it and its 400 so the
				// books still balance to zero lost.
				s.stats.requests.Add(1)
				s.stats.badRequests.Add(1)
				s.writeResponse(c, ErrorResponse(400, "malformed request"))
				s.stats.responses.Add(1)
			}
			return
		}
		s.stats.requests.Add(1)
		s.setBusy(c, true)
		var begin time.Time
		if s.cfg.Clock != nil {
			begin = s.cfg.Clock()
		}
		resp := s.process(req)
		if s.cfg.Clock != nil {
			s.lat[EndpointIndex(req.Path)].Observe(s.cfg.Clock().Sub(begin))
		}
		served++
		closing := req.Close || s.stopping()
		if !closing && s.cfg.MaxRequests > 0 && served >= s.cfg.MaxRequests {
			s.stats.budgetCloses.Add(1)
			closing = true
		}
		resp.Close = resp.Close || closing
		werr := s.writeResponse(c, resp)
		s.stats.responses.Add(1)
		s.setBusy(c, false)
		if werr != nil || resp.Close {
			return
		}
	}
}

// process applies request-level admission control and executes the
// handler under the request deadline.
func (s *Server) process(req *Request) Response {
	if !s.acquireSlot() {
		s.stats.shed.Add(1)
		r := ErrorResponse(429, "overloaded, retry later")
		r.RetryAfter = true
		return r
	}
	if s.cfg.RequestTimeout < 0 {
		defer s.releaseSlot()
		return s.handle(context.Background(), req)
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.RequestTimeout)
	defer cancel()
	done := make(chan Response, 1)
	go func() {
		defer s.releaseSlot()
		done <- s.handle(ctx, req)
	}()
	select {
	case resp := <-done:
		return resp
	case <-ctx.Done():
		// The abandoned handler keeps its inflight slot until it
		// finishes; the client gets its answer now.
		s.stats.timeouts.Add(1)
		return ErrorResponse(503, "request deadline exceeded")
	}
}

// acquireSlot takes an inflight slot, queueing within the configured
// depth and wait. False means shed.
func (s *Server) acquireSlot() bool {
	if s.inflight == nil {
		return true
	}
	select {
	case s.inflight <- struct{}{}:
		return true
	default:
	}
	if s.cfg.QueueDepth < 0 {
		return false
	}
	s.mu.Lock()
	// Queue depth is tracked under mu so the shed decision is exact.
	if s.queueLen >= s.cfg.QueueDepth {
		s.mu.Unlock()
		return false
	}
	s.queueLen++
	s.mu.Unlock()
	s.stats.queued.Add(1)
	defer func() {
		s.mu.Lock()
		s.queueLen--
		s.mu.Unlock()
	}()
	t := time.NewTimer(s.cfg.QueueWait)
	defer t.Stop()
	select {
	case s.inflight <- struct{}{}:
		return true
	case <-t.C:
		return false
	}
}

func (s *Server) releaseSlot() {
	if s.inflight != nil {
		<-s.inflight
	}
}

func (s *Server) writeResponse(c *servConn, r Response) error {
	var buf bytes.Buffer
	appendResponse(&buf, r, s.cfg.RetryAfterSecs)
	if s.cfg.WriteTimeout > 0 {
		c.nc.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	}
	_, err := c.nc.Write(buf.Bytes())
	return err
}

// trackConn registers a connection for drain/close bookkeeping; it
// refuses when the server is already stopping.
func (s *Server) trackConn(c *servConn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.draining {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Server) untrackConn(c *servConn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

func (s *Server) setBusy(c *servConn, v bool) {
	s.mu.Lock()
	c.busy = v
	s.mu.Unlock()
}

// beginRead arms the slowloris read deadline. It runs under the server
// mutex so it cannot race Shutdown's wake-up: a drain that has started
// wins, and a connection cannot park itself in a fresh read afterward.
func (s *Server) beginRead(c *servConn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.draining {
		return false
	}
	if s.cfg.ReadTimeout <= 0 {
		return c.nc.SetReadDeadline(time.Time{}) == nil
	}
	return c.nc.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout)) == nil
}

// Shutdown gracefully drains the server: it stops accepting, lets every
// request that has been read finish and be answered, wakes idle
// connections, and then closes. It returns nil when the drain
// completed, or ctx.Err() after falling back to a hard Close at the
// context deadline. The paired Service moves to draining so probes
// steer traffic away first.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	first := !s.draining
	s.draining = true
	lns := append([]net.Listener(nil), s.lns...)
	now := time.Now()
	for c := range s.conns {
		if !c.busy {
			c.nc.SetReadDeadline(now)
		}
	}
	s.mu.Unlock()
	if first && s.cfg.Service != nil {
		s.cfg.Service.BeginDrain()
	}
	for _, ln := range lns {
		ln.Close()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		if first {
			s.stats.drains.Add(1)
		}
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		return nil
	case <-ctx.Done():
		if first {
			s.stats.drainTimeouts.Add(1)
		}
		s.Close()
		return ctx.Err()
	}
}

// Close stops all listeners and connections immediately and waits for
// their goroutines to exit. Shutdown is the graceful alternative.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	lns := s.lns
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c.nc)
	}
	s.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
