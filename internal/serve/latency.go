package serve

// Per-endpoint latency histograms. Buckets are log-scale (powers of two
// in microseconds) and bounded, so one histogram is a fixed, comparable
// array no matter how hostile the traffic. Observation is driven by the
// injectable Config.Clock — two reads per request, begin and end — so a
// stepped test clock makes every recorded latency, and therefore every
// bucket count, exactly reproducible. The HA balancer reads its hedging
// threshold from the same histogram via LatencyQuantile.

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// NumLatencyBuckets is the fixed bucket count: bucket i spans
// [2^(i-1), 2^i) microseconds (bucket 0 is <= 1µs), and the last bucket
// absorbs everything past ~4.2s.
const NumLatencyBuckets = 24

// endpointLabels enumerates the per-endpoint histograms. Unknown paths
// share the final "other" slot so hostile path churn cannot grow state.
var endpointLabels = [...]string{
	"/healthz",
	"/readyz",
	"/v1/domain",
	"/v1/share",
	"/v1/concentration",
	"/v1/churn",
	"/v1/stats",
	"/v1/swap",
	"other",
}

// NumEndpoints is how many endpoint histograms a server keeps.
const NumEndpoints = len(endpointLabels)

// EndpointIndex maps a request path to its histogram slot.
func EndpointIndex(path string) int {
	for i, l := range endpointLabels[:NumEndpoints-1] {
		if path == l {
			return i
		}
	}
	return NumEndpoints - 1
}

// EndpointLabel names histogram slot i.
func EndpointLabel(i int) string { return endpointLabels[i] }

// LatencyBuckets is one histogram's counts, comparable and exact.
type LatencyBuckets [NumLatencyBuckets]uint64

// latencyBucket places a duration: bits.Len of the floor-microsecond
// value, clamped to the final bucket.
func latencyBucket(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	i := bits.Len64(uint64(d / time.Microsecond))
	if i >= NumLatencyBuckets {
		return NumLatencyBuckets - 1
	}
	return i
}

// BucketBound is the exclusive upper bound of bucket i (the last bucket
// is unbounded and reports its lower bound).
func BucketBound(i int) time.Duration {
	if i <= 0 {
		return time.Microsecond
	}
	if i >= NumLatencyBuckets-1 {
		i = NumLatencyBuckets - 2
	}
	return time.Microsecond << i
}

// Count totals the observations in the histogram.
func (b LatencyBuckets) Count() uint64 {
	var n uint64
	for _, c := range b {
		n += c
	}
	return n
}

// Quantile returns the upper bound of the bucket where the q-quantile
// (0 < q <= 1) falls, and false when the histogram is empty.
func (b LatencyBuckets) Quantile(q float64) (time.Duration, bool) {
	total := b.Count()
	if total == 0 {
		return 0, false
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(total))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, c := range b {
		cum += c
		if cum >= target {
			return BucketBound(i), true
		}
	}
	return BucketBound(NumLatencyBuckets - 1), true
}

// LatencyHist is the live atomic histogram.
type LatencyHist struct {
	buckets [NumLatencyBuckets]atomic.Uint64
}

// Observe records one latency.
func (h *LatencyHist) Observe(d time.Duration) {
	h.buckets[latencyBucket(d)].Add(1)
}

// Snapshot copies the counts out.
func (h *LatencyHist) Snapshot() LatencyBuckets {
	var b LatencyBuckets
	for i := range h.buckets {
		b[i] = h.buckets[i].Load()
	}
	return b
}

// EndpointLatency is one endpoint's histogram as served by /v1/stats.
type EndpointLatency struct {
	Count   uint64         `json:"count"`
	P50NS   int64          `json:"p50_ns"`
	P99NS   int64          `json:"p99_ns"`
	Buckets LatencyBuckets `json:"buckets"`
}

// LatencySnapshot returns the per-endpoint histograms that have
// observations, keyed by endpoint label. Empty when no Clock was
// configured (observation is opt-in so whole-struct counter tests stay
// exact without pinning wall-clock buckets).
func (s *Server) LatencySnapshot() map[string]EndpointLatency {
	if s.cfg.Clock == nil {
		return nil
	}
	out := make(map[string]EndpointLatency)
	for i := range s.lat {
		b := s.lat[i].Snapshot()
		n := b.Count()
		if n == 0 {
			continue
		}
		p50, _ := b.Quantile(0.50)
		p99, _ := b.Quantile(0.99)
		out[EndpointLabel(i)] = EndpointLatency{
			Count: n, P50NS: p50.Nanoseconds(), P99NS: p99.Nanoseconds(), Buckets: b,
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// LatencyQuantile reports the q-quantile of path's endpoint histogram
// and how many observations back it. The HA balancer derives its
// hedging threshold from this.
func (s *Server) LatencyQuantile(path string, q float64) (time.Duration, uint64) {
	b := s.lat[EndpointIndex(path)].Snapshot()
	d, ok := b.Quantile(q)
	if !ok {
		return 0, 0
	}
	return d, b.Count()
}
