package serve

import (
	"mxmap/internal/core"
	"mxmap/internal/dataset"
)

// NoProviderLabel names the empty side of a provider flow: a domain
// that had (or has) no attributable mail provider.
const NoProviderLabel = "(none)"

// SnapshotMeta identifies the snapshot an answer was computed from.
// Epoch is the service-local load generation — it increments on every
// successful load or swap, so clients can detect flips.
type SnapshotMeta struct {
	Date    string `json:"date"`
	Corpus  string `json:"corpus"`
	Epoch   uint64 `json:"epoch"`
	Domains int    `json:"domains"`
}

// LookupResponse answers /v1/domain?name=X.
type LookupResponse struct {
	Domain    string             `json:"domain"`
	Found     bool               `json:"found"`
	Primary   string             `json:"primary,omitempty"`
	Credits   map[string]float64 `json:"credits,omitempty"`
	Rank      int                `json:"rank,omitempty"`
	HasSMTP   bool               `json:"has_smtp,omitempty"`
	Untrusted bool               `json:"untrusted,omitempty"`
	Stale     bool               `json:"stale,omitempty"`
	Snapshot  SnapshotMeta       `json:"snapshot"`
}

// ShareEntry is one company's market share.
type ShareEntry struct {
	Company string  `json:"company"`
	Domains float64 `json:"domains"`
	Percent float64 `json:"percent"`
}

// ShareResponse answers /v1/share?top=N.
type ShareResponse struct {
	Top      []ShareEntry `json:"top"`
	Stale    bool         `json:"stale,omitempty"`
	Snapshot SnapshotMeta `json:"snapshot"`
}

// ConcentrationResponse answers /v1/concentration.
type ConcentrationResponse struct {
	HHI                float64      `json:"hhi"`
	CR1                float64      `json:"cr1"`
	CR4                float64      `json:"cr4"`
	CR8                float64      `json:"cr8"`
	EffectiveCompanies float64      `json:"effective_companies"`
	Stale              bool         `json:"stale,omitempty"`
	Snapshot           SnapshotMeta `json:"snapshot"`
}

// ProviderFlow counts domains whose primary provider moved between two
// snapshots. Either side may be NoProviderLabel.
type ProviderFlow struct {
	From  string `json:"from"`
	To    string `json:"to"`
	Count int    `json:"count"`
}

// ChurnReport describes what the latest swap changed: the raw snapshot
// diff, how much inference work the incremental path reused, and the
// provider-to-provider migration flows among churned domains.
type ChurnReport struct {
	FromDate  string            `json:"from_date"`
	ToDate    string            `json:"to_date"`
	FromEpoch uint64            `json:"from_epoch"`
	ToEpoch   uint64            `json:"to_epoch"`
	Diff      dataset.DiffStats `json:"diff"`
	Delta     core.DeltaStats   `json:"delta"`
	Flows     []ProviderFlow    `json:"flows,omitempty"`
	// FullRecompute reports that the prior snapshot file was no longer
	// readable and the swap fell back to inferring from scratch (Diff
	// and Flows are empty in that case).
	FullRecompute bool `json:"full_recompute,omitempty"`
	// SwapLatencyNS is the wall time of the whole swap, build through
	// epoch drain, on the service clock.
	SwapLatencyNS int64 `json:"swap_latency_ns"`
}

// ChurnResponse answers /v1/churn.
type ChurnResponse struct {
	Swaps uint64       `json:"swaps"`
	Last  *ChurnReport `json:"last,omitempty"`
}

// HealthResponse answers /healthz (always 200: liveness plus state).
type HealthResponse struct {
	State string `json:"state"`
	Stale bool   `json:"stale,omitempty"`
	Epoch uint64 `json:"epoch"`
}

// ReadyResponse answers /readyz (200 only when queries can be served).
type ReadyResponse struct {
	Ready bool   `json:"ready"`
	State string `json:"state"`
	Stale bool   `json:"stale,omitempty"`
}

// StatsResponse answers /v1/stats. Latency carries the per-endpoint
// histograms when the server was built with an observation Clock.
type StatsResponse struct {
	Server  ServerStats                `json:"server"`
	Service ServiceStats               `json:"service"`
	Latency map[string]EndpointLatency `json:"latency,omitempty"`
}

type errorBody struct {
	Error string `json:"error"`
}
