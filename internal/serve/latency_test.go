package serve

import (
	"sync"
	"testing"
	"time"

	"mxmap/internal/netsim"
)

func TestLatencyBucketPlacement(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{-time.Second, 0},
		{0, 0},
		{time.Nanosecond, 0}, // sub-microsecond floors to 0
		{time.Microsecond, 1},
		{2 * time.Microsecond, 2},
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 3},
		{500 * time.Microsecond, 9},
		{time.Millisecond, 10},
		{time.Second, 20},
		{5 * time.Second, 23},
		{time.Hour, NumLatencyBuckets - 1}, // clamped to the last bucket
	}
	for _, tc := range cases {
		if got := latencyBucket(tc.d); got != tc.want {
			t.Errorf("latencyBucket(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

func TestBucketBound(t *testing.T) {
	if got := BucketBound(0); got != time.Microsecond {
		t.Errorf("BucketBound(0) = %v, want 1µs", got)
	}
	if got := BucketBound(-3); got != time.Microsecond {
		t.Errorf("BucketBound(-3) = %v, want 1µs", got)
	}
	if got := BucketBound(9); got != 512*time.Microsecond {
		t.Errorf("BucketBound(9) = %v, want 512µs", got)
	}
	// The unbounded final bucket reports the previous bucket's bound.
	if got, prev := BucketBound(NumLatencyBuckets-1), BucketBound(NumLatencyBuckets-2); got != prev {
		t.Errorf("final BucketBound = %v, want %v", got, prev)
	}
	// Every observable duration lands strictly below its bucket's bound
	// (except in the final catch-all bucket).
	for _, d := range []time.Duration{time.Nanosecond, time.Microsecond,
		17 * time.Microsecond, time.Millisecond, 800 * time.Millisecond} {
		b := latencyBucket(d)
		if d >= BucketBound(b) {
			t.Errorf("%v placed in bucket %d but bound is %v", d, b, BucketBound(b))
		}
	}
}

func TestLatencyQuantiles(t *testing.T) {
	var empty LatencyBuckets
	if _, ok := empty.Quantile(0.5); ok {
		t.Error("empty histogram produced a quantile")
	}

	var h LatencyHist
	// 90 fast observations (bucket 9: 256–512µs) and 10 slow ones
	// (bucket 10: 512µs–1.024ms): p50 is the fast bucket's bound, p99 the
	// slow one's.
	for i := 0; i < 90; i++ {
		h.Observe(300 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(600 * time.Microsecond)
	}
	b := h.Snapshot()
	if b.Count() != 100 || b[9] != 90 || b[10] != 10 {
		t.Fatalf("buckets = %+v, want 90 in #9 and 10 in #10", b)
	}
	if p50, _ := b.Quantile(0.50); p50 != 512*time.Microsecond {
		t.Errorf("p50 = %v, want 512µs", p50)
	}
	if p99, _ := b.Quantile(0.99); p99 != 1024*time.Microsecond {
		t.Errorf("p99 = %v, want 1024µs", p99)
	}
	// Quantiles are clamped, not rejected, outside (0, 1].
	if lo, _ := b.Quantile(-5); lo != 512*time.Microsecond {
		t.Errorf("clamped low quantile = %v, want first bucket bound", lo)
	}
	if hi, _ := b.Quantile(7); hi != 1024*time.Microsecond {
		t.Errorf("clamped high quantile = %v, want last bucket bound", hi)
	}
}

func TestEndpointIndex(t *testing.T) {
	for i := 0; i < NumEndpoints-1; i++ {
		if got := EndpointIndex(EndpointLabel(i)); got != i {
			t.Errorf("EndpointIndex(%s) = %d, want %d", EndpointLabel(i), got, i)
		}
	}
	other := NumEndpoints - 1
	for _, p := range []string{"/", "/v1/unknown", "", "/v1/domain/x"} {
		if got := EndpointIndex(p); got != other {
			t.Errorf("EndpointIndex(%q) = %d, want the shared %d slot", p, got, other)
		}
	}
}

// steppedClock advances a fixed amount per read so every request's
// begin/end pair observes exactly one step.
type steppedClock struct {
	mu   sync.Mutex
	t    time.Time
	step time.Duration
}

func (c *steppedClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(c.step)
	return c.t
}

// TestServerLatencyHistograms drives real requests under a stepped
// clock and asserts the exact per-endpoint histogram contents as
// exposed through LatencySnapshot, LatencyQuantile, and /v1/stats.
func TestServerLatencyHistograms(t *testing.T) {
	oldPath, _ := writeServeWorlds(t)
	svc := servingService(t, oldPath)
	n := netsim.New()
	const addr = "203.0.113.40:80"
	clk := &steppedClock{t: time.Unix(1700000000, 0), step: 500 * time.Microsecond}
	srv := startTestServer(t, n, addr, Config{Service: svc, Clock: clk.Now})
	c := dialClient(t, n, addr)

	// Three lookups and one health check, each measured at exactly one
	// 500µs clock step: bucket 9 (256–512µs) on their endpoints.
	for i := 0; i < 3; i++ {
		c.get("GET", "/v1/domain?name=one.example", 200, nil)
	}
	c.get("GET", "/healthz", 200, nil)

	wantDomain := LatencyBuckets{9: 3}
	snap := srv.LatencySnapshot()
	if got := snap["/v1/domain"]; got.Count != 3 || got.Buckets != wantDomain ||
		got.P50NS != 512000 || got.P99NS != 512000 {
		t.Fatalf("/v1/domain latency = %+v, want exactly 3 in bucket 9", got)
	}
	if got := snap["/healthz"]; got.Count != 1 || got.Buckets != (LatencyBuckets{9: 1}) {
		t.Fatalf("/healthz latency = %+v, want exactly 1 in bucket 9", got)
	}
	if _, ok := snap["/v1/share"]; ok {
		t.Fatal("endpoint with no traffic has a histogram")
	}

	if q, cnt := srv.LatencyQuantile("/v1/domain", 0.99); q != 512*time.Microsecond || cnt != 3 {
		t.Fatalf("LatencyQuantile = %v over %d, want 512µs over 3", q, cnt)
	}
	if q, cnt := srv.LatencyQuantile("/v1/share", 0.99); q != 0 || cnt != 0 {
		t.Fatalf("untouched endpoint quantile = %v over %d, want zeros", q, cnt)
	}

	// The same numbers ride /v1/stats for operators; the stats request
	// itself is measured too, so its own endpoint appears.
	var stats StatsResponse
	c.get("GET", "/v1/stats", 200, &stats)
	if got := stats.Latency["/v1/domain"]; got.Count != 3 || got.Buckets != wantDomain {
		t.Fatalf("stats latency = %+v, want the domain histogram", got)
	}
}

// TestLatencyDisabledWithoutClock pins the opt-in contract: no Clock,
// no measurement, and /v1/stats omits the latency map entirely.
func TestLatencyDisabledWithoutClock(t *testing.T) {
	oldPath, _ := writeServeWorlds(t)
	svc := servingService(t, oldPath)
	n := netsim.New()
	const addr = "203.0.113.41:80"
	srv := startTestServer(t, n, addr, Config{Service: svc})
	c := dialClient(t, n, addr)
	c.get("GET", "/v1/domain?name=one.example", 200, nil)
	if snap := srv.LatencySnapshot(); snap != nil {
		t.Fatalf("clockless snapshot = %+v, want nil", snap)
	}
	var stats StatsResponse
	c.get("GET", "/v1/stats", 200, &stats)
	if stats.Latency != nil {
		t.Fatalf("clockless stats latency = %+v, want omitted", stats.Latency)
	}
}
