// Package serve is the online face of the pipeline: an overload-hardened
// HTTP/JSON query service over one loaded snapshot and its inference
// result. Its robustness headline is versioned snapshot hot-swap — a new
// snapshot is loaded and incrementally re-inferred next to the serving
// one, an epoch-counted pointer flips atomically, readers of the old
// epoch drain, and the old state is freed — with zero queries lost or
// answered from a half-built state. When a swap's load fails mid-flight
// the service degrades to stale serving (in the spirit of RFC 8767):
// the old epoch keeps answering, marked Stale, until a later swap
// succeeds.
package serve

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mxmap/internal/analysis"
	"mxmap/internal/companies"
	"mxmap/internal/core"
	"mxmap/internal/dataset"
)

// DefaultTopShares is how many company shares a store precomputes.
const DefaultTopShares = 15

// State is the service lifecycle phase the probes report.
type State int32

const (
	// StateLoading: no epoch is live yet (initial load pending or
	// failed); queries are refused with 503.
	StateLoading State = iota
	// StateServing: an epoch is live and answering.
	StateServing
	// StateDraining: shutdown has begun; in-flight queries finish,
	// new ones should go elsewhere.
	StateDraining
)

func (s State) String() string {
	switch s {
	case StateLoading:
		return "loading"
	case StateServing:
		return "serving"
	case StateDraining:
		return "draining"
	}
	return "unknown"
}

// ServiceConfig parameterizes a Service. The zero value works: priority
// approach defaults come from core.Config, providers stay unbucketed
// without a Directory, and the real clock is used.
type ServiceConfig struct {
	// Infer is the inference configuration (profiles, thresholds,
	// parallelism) applied to every load and swap.
	Infer core.Config
	// Directory buckets provider IDs into companies for the share and
	// concentration endpoints; nil keeps raw provider IDs.
	Directory *companies.Directory
	// TopShares is how many company shares each store precomputes
	// (default DefaultTopShares; negative keeps all).
	TopShares int
	// Now supplies the service clock for swap latency measurement;
	// nil means time.Now. Load and Swap each read it exactly twice
	// (begin and end), which keeps stepped test clocks deterministic.
	Now func() time.Time
}

// Store is one immutable, fully-built serving state: a snapshot's
// per-domain attributions plus the precomputed aggregate answers.
type Store struct {
	path    string
	meta    SnapshotMeta
	res     *core.Result
	domains map[string]core.DomainAttribution
	shares  []ShareEntry
	conc    analysis.Concentration
}

// lookup resolves a domain's attribution; it is the priorAtt resolver
// handed to core.InferStreamDelta on the next swap.
func (st *Store) lookup(domain string) (core.DomainAttribution, bool) {
	att, ok := st.domains[domain]
	return att, ok
}

// free drops the store's bulk state once no reader can hold it. meta
// stays readable.
func (st *Store) free() {
	st.res = nil
	st.domains = nil
	st.shares = nil
}

// epoch pairs a store with the count of readers currently inside it.
type epoch struct {
	store *Store
	refs  atomic.Int64
}

// ServiceStats is a point-in-time snapshot of the swap machinery.
type ServiceStats struct {
	State             string `json:"state"`
	Stale             bool   `json:"stale"`
	Epoch             uint64 `json:"epoch"`
	Domains           int    `json:"domains"`
	Swaps             uint64 `json:"swaps"`
	SwapFails         uint64 `json:"swap_fails"`
	SwapDrainWaits    uint64 `json:"swap_drain_waits"`
	SwapDrainTimeouts uint64 `json:"swap_drain_timeouts"`
	DomainsReused     uint64 `json:"domains_reused"`
	DomainsReinferred uint64 `json:"domains_reinferred"`
	LastSwapNS        int64  `json:"last_swap_ns"`
}

type serviceCounters struct {
	swaps, swapFails                  atomic.Uint64
	swapDrainWaits, swapDrainTimeouts atomic.Uint64
	reused, reinferred                atomic.Uint64
	lastSwapNS                        atomic.Int64
}

// A Service owns the current epoch and the machinery that replaces it.
// Reads are lock-free (an atomic pointer load plus a refcount); swaps
// serialize on a mutex and never block readers.
type Service struct {
	approach core.Approach
	cfg      ServiceConfig

	state atomic.Int32
	stale atomic.Bool

	cur      atomic.Pointer[epoch]
	epochSeq atomic.Uint64
	swapMu   sync.Mutex

	churn atomic.Pointer[ChurnReport]
	c     serviceCounters
}

// NewService creates a service that infers with the given approach. No
// snapshot is loaded yet; the service reports StateLoading until Load
// succeeds.
func NewService(approach core.Approach, cfg ServiceConfig) *Service {
	return &Service{approach: approach, cfg: cfg}
}

func (s *Service) now() time.Time {
	if s.cfg.Now != nil {
		return s.cfg.Now()
	}
	return time.Now()
}

func (s *Service) topShares() int {
	switch {
	case s.cfg.TopShares < 0:
		return 0 // all
	case s.cfg.TopShares == 0:
		return DefaultTopShares
	}
	return s.cfg.TopShares
}

// State reports the lifecycle phase.
func (s *Service) State() State { return State(s.state.Load()) }

// Stale reports degraded stale-serving mode: the last swap failed and
// answers still come from the previous epoch.
func (s *Service) Stale() bool { return s.stale.Load() }

// Ready reports whether queries can be answered right now.
func (s *Service) Ready() bool {
	return s.State() == StateServing && s.cur.Load() != nil
}

// BeginDrain moves the probes to draining; the server calls it when a
// graceful shutdown starts so load balancers stop sending new work.
func (s *Service) BeginDrain() { s.state.Store(int32(StateDraining)) }

// Meta identifies the serving snapshot, when one is live.
func (s *Service) Meta() (SnapshotMeta, bool) {
	if e := s.cur.Load(); e != nil {
		return e.store.meta, true
	}
	return SnapshotMeta{}, false
}

// Churn returns the latest swap's report, nil before the first swap.
func (s *Service) Churn() *ChurnReport { return s.churn.Load() }

// Stats snapshots the swap machinery counters.
func (s *Service) Stats() ServiceStats {
	st := ServiceStats{
		State:             s.State().String(),
		Stale:             s.stale.Load(),
		Swaps:             s.c.swaps.Load(),
		SwapFails:         s.c.swapFails.Load(),
		SwapDrainWaits:    s.c.swapDrainWaits.Load(),
		SwapDrainTimeouts: s.c.swapDrainTimeouts.Load(),
		DomainsReused:     s.c.reused.Load(),
		DomainsReinferred: s.c.reinferred.Load(),
		LastSwapNS:        s.c.lastSwapNS.Load(),
	}
	if e := s.cur.Load(); e != nil {
		st.Epoch = e.store.meta.Epoch
		st.Domains = e.store.meta.Domains
	}
	return st
}

// acquire pins the current epoch for reading. The retry loop closes the
// race with a concurrent swap: a reader that incremented the refcount
// of an epoch that was flipped out (and possibly freed) in between
// backs off and takes the new one. release must be called when done.
func (s *Service) acquire() (*epoch, *Store) {
	for {
		e := s.cur.Load()
		if e == nil {
			return nil, nil
		}
		e.refs.Add(1)
		if s.cur.Load() == e {
			return e, e.store
		}
		e.refs.Add(-1)
	}
}

func (s *Service) release(e *epoch) { e.refs.Add(-1) }

// Load performs the initial full inference over the snapshot at path
// and publishes the first epoch. It fails without side effects; the
// service stays in StateLoading and Load may be retried.
func (s *Service) Load(path string) (SnapshotMeta, error) {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	if s.cur.Load() != nil {
		return SnapshotMeta{}, errors.New("serve: snapshot already loaded; use Swap")
	}
	begin := s.now()
	store, _, err := s.build(path, nil)
	if err != nil {
		_ = s.now() // keep the two-reads-per-operation clock contract
		return SnapshotMeta{}, err
	}
	store.meta.Epoch = s.epochSeq.Add(1)
	s.cur.Store(&epoch{store: store})
	s.state.Store(int32(StateServing))
	s.c.lastSwapNS.Store(s.now().Sub(begin).Nanoseconds())
	return store.meta, nil
}

// Swap loads the snapshot at path next to the serving epoch,
// re-inferring incrementally on the churn delta, then atomically flips
// the epoch pointer, drains readers of the old epoch and frees it.
// Queries are answered throughout — from the old epoch until the flip,
// from the new one after — and none are lost.
//
// On failure the serving epoch is untouched and the service enters
// degraded stale mode: answers keep flowing, marked Stale, until a
// later Swap succeeds. ctx bounds only the old-epoch drain wait; a
// reader pinned past it leaks the old store to the garbage collector
// instead of blocking the swap.
func (s *Service) Swap(ctx context.Context, path string) (*ChurnReport, error) {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	old := s.cur.Load()
	if old == nil {
		return nil, errors.New("serve: no snapshot loaded")
	}
	begin := s.now()
	store, rep, err := s.build(path, old.store)
	if err != nil {
		_ = s.now()
		s.stale.Store(true)
		s.c.swapFails.Add(1)
		return nil, err
	}
	store.meta.Epoch = s.epochSeq.Add(1)
	rep.FromEpoch = old.store.meta.Epoch
	rep.ToEpoch = store.meta.Epoch
	s.cur.Store(&epoch{store: store})
	s.stale.Store(false)
	if s.drainEpoch(ctx, old) {
		old.store.free()
	}
	rep.SwapLatencyNS = s.now().Sub(begin).Nanoseconds()
	s.c.lastSwapNS.Store(rep.SwapLatencyNS)
	s.c.swaps.Add(1)
	s.c.reused.Add(uint64(rep.Delta.Reused))
	s.c.reinferred.Add(uint64(rep.Delta.Reinferred))
	s.churn.Store(rep)
	return rep, nil
}

// drainEpoch waits for e's readers to leave and reports whether the
// store is safe to free. Readers hold epochs only across one in-memory
// lookup, so the wait is microseconds; ctx caps it anyway.
func (s *Service) drainEpoch(ctx context.Context, e *epoch) bool {
	if e.refs.Load() == 0 {
		return true
	}
	s.c.swapDrainWaits.Add(1)
	for e.refs.Load() != 0 {
		select {
		case <-ctx.Done():
			s.c.swapDrainTimeouts.Add(1)
			return false
		default:
			time.Sleep(20 * time.Microsecond)
		}
	}
	return true
}

// build streams the snapshot at path into a fresh store. With a prior
// store it diffs the two snapshot files first and reuses the prior
// attribution for every domain the delta contract proves unchanged
// (see core.InferDelta); the result is byte-identical to a full
// recompute. A prior whose file is no longer readable degrades to a
// full recompute rather than failing the swap.
func (s *Service) build(path string, prior *Store) (*Store, *ChurnReport, error) {
	newSt, err := dataset.OpenStream(path)
	if err != nil {
		return nil, nil, err
	}

	var (
		changed map[string]bool
		changes []dataset.Change
		dstats  dataset.DiffStats
	)
	useDelta := false
	if prior != nil {
		if oldSt, oerr := dataset.OpenStream(prior.path); oerr == nil {
			changed = make(map[string]bool)
			dstats, oerr = dataset.DiffStream(oldSt, newSt, func(c dataset.Change) error {
				if c.Kind != dataset.DiffRemoved {
					changed[c.Domain] = true
				}
				changes = append(changes, c)
				return nil
			})
			useDelta = oerr == nil
		}
	}

	store := &Store{path: path}
	acc := analysis.NewShareAccumulator(s.cfg.Directory)
	domains := make(map[string]core.DomainAttribution)
	emit := func(att core.DomainAttribution) {
		domains[att.Domain] = att
		acc.Add(att)
	}

	var (
		res *core.Result
		ds  core.DeltaStats
	)
	if useDelta {
		res, ds, err = core.InferStreamDelta(newSt, s.approach, s.cfg.Infer, prior.res, prior.lookup, changed, emit)
	} else {
		res, err = core.InferStream(newSt, s.approach, s.cfg.Infer, emit)
		if res != nil {
			ds = core.DeltaStats{Reinferred: res.NumDomains}
		}
	}
	if err != nil {
		return nil, nil, err
	}

	store.res = res
	store.domains = domains
	store.meta = SnapshotMeta{Date: newSt.Date, Corpus: newSt.Corpus, Domains: res.NumDomains}
	store.shares = shareEntries(acc.TopShares(s.topShares()))
	store.conc = acc.Concentration()

	if prior == nil {
		return store, nil, nil
	}
	rep := &ChurnReport{
		FromDate:      prior.meta.Date,
		ToDate:        store.meta.Date,
		Diff:          dstats,
		Delta:         ds,
		FullRecompute: !useDelta,
	}
	if useDelta {
		rep.Flows = providerFlows(changes, prior, store)
	}
	return store, rep, nil
}

func shareEntries(shares []analysis.Share) []ShareEntry {
	out := make([]ShareEntry, len(shares))
	for i, sh := range shares {
		out[i] = ShareEntry{Company: sh.Company, Domains: sh.Domains, Percent: sh.Percent}
	}
	return out
}

// providerFlows folds the diff's churned domains into
// provider-to-provider migration counts, deterministically ordered.
func providerFlows(changes []dataset.Change, prior, next *Store) []ProviderFlow {
	counts := make(map[[2]string]int)
	for _, c := range changes {
		var oldP, newP string
		if att, ok := prior.domains[c.Domain]; ok {
			oldP = att.Primary()
		}
		if att, ok := next.domains[c.Domain]; ok {
			newP = att.Primary()
		}
		if oldP == newP {
			continue
		}
		counts[[2]string{flowLabel(oldP), flowLabel(newP)}]++
	}
	keys := make([][2]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	flows := make([]ProviderFlow, len(keys))
	for i, k := range keys {
		flows[i] = ProviderFlow{From: k[0], To: k[1], Count: counts[k]}
	}
	return flows
}

func flowLabel(p string) string {
	if p == "" {
		return NoProviderLabel
	}
	return p
}
