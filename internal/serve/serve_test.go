package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"math"
	"net"
	"net/netip"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"mxmap/internal/core"
	"mxmap/internal/dataset"
	"mxmap/internal/netsim"
)

// serveWorldOld is the serving fixture: two managed providers plus one
// self-hosted domain.
func serveWorldOld() *dataset.Snapshot {
	s := dataset.NewSnapshot("2021-01", "test")
	s.AddDomain(dataset.DomainRecord{Domain: "one.example", Rank: 1,
		MX: []dataset.MXObs{{Preference: 10, Exchange: "mx.prov-a.net"}}})
	s.AddDomain(dataset.DomainRecord{Domain: "two.example", Rank: 2,
		MX: []dataset.MXObs{{Preference: 10, Exchange: "mx.prov-a.net"}}})
	s.AddDomain(dataset.DomainRecord{Domain: "three.example", Rank: 3,
		MX: []dataset.MXObs{{Preference: 10, Exchange: "mx.prov-b.net"}}})
	s.AddDomain(dataset.DomainRecord{Domain: "four.example", Rank: 4,
		MX: []dataset.MXObs{{Preference: 10, Exchange: "mx.four.example"}}})
	return s
}

// serveWorldNew is one churn step later: two.example migrated to
// prov-b, three.example disappeared, five.example arrived on prov-b.
func serveWorldNew() *dataset.Snapshot {
	s := dataset.NewSnapshot("2021-02", "test")
	s.AddDomain(dataset.DomainRecord{Domain: "one.example", Rank: 1,
		MX: []dataset.MXObs{{Preference: 10, Exchange: "mx.prov-a.net"}}})
	s.AddDomain(dataset.DomainRecord{Domain: "two.example", Rank: 2,
		MX: []dataset.MXObs{{Preference: 10, Exchange: "mx.prov-b.net"}}})
	s.AddDomain(dataset.DomainRecord{Domain: "four.example", Rank: 4,
		MX: []dataset.MXObs{{Preference: 10, Exchange: "mx.four.example"}}})
	s.AddDomain(dataset.DomainRecord{Domain: "five.example", Rank: 5,
		MX: []dataset.MXObs{{Preference: 10, Exchange: "mx.prov-b.net"}}})
	return s
}

// writeServeWorlds materializes both fixture snapshots as files.
func writeServeWorlds(t *testing.T) (oldPath, newPath string) {
	t.Helper()
	dir := t.TempDir()
	oldPath = filepath.Join(dir, "old.jsonl")
	newPath = filepath.Join(dir, "new.jsonl")
	for path, snap := range map[string]*dataset.Snapshot{oldPath: serveWorldOld(), newPath: serveWorldNew()} {
		snap.SortDomains()
		if err := dataset.WriteFile(path, snap); err != nil {
			t.Fatal(err)
		}
	}
	return oldPath, newPath
}

// servingService builds a Service already serving the old world.
func servingService(t *testing.T, path string) *Service {
	t.Helper()
	svc := NewService(core.ApproachMXOnly, ServiceConfig{})
	if _, err := svc.Load(path); err != nil {
		t.Fatal(err)
	}
	return svc
}

// startTestServer runs a server on the fabric at addr and registers
// cleanup that verifies the serve loop exited nil.
func startTestServer(t *testing.T, n *netsim.Network, addr string, cfg Config) *Server {
	t.Helper()
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := n.Listen(netip.MustParseAddrPort(addr))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	for {
		srv.mu.Lock()
		ready := len(srv.lns) == 1
		srv.mu.Unlock()
		if ready {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	t.Cleanup(func() {
		srv.Close()
		if err := <-errc; err != nil {
			t.Errorf("serve loop: %v", err)
		}
	})
	return srv
}

// tClient is a minimal keep-alive HTTP/1.1 test client over the fabric.
type tClient struct {
	t    *testing.T
	conn net.Conn
	br   *bufio.Reader
}

func dialClient(t *testing.T, n *netsim.Network, addr string) *tClient {
	t.Helper()
	conn, err := n.Dial(context.Background(), netip.MustParseAddrPort(addr))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &tClient{t: t, conn: conn, br: bufio.NewReader(conn)}
}

func (c *tClient) send(method, target string) {
	c.t.Helper()
	c.conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	req := method + " " + target + " HTTP/1.1\r\nHost: test\r\n\r\n"
	if _, err := c.conn.Write([]byte(req)); err != nil {
		c.t.Fatalf("write %s %s: %v", method, target, err)
	}
}

func (c *tClient) readResponse() (status int, hdr map[string]string, body []byte) {
	c.t.Helper()
	c.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := c.br.ReadString('\n')
	if err != nil {
		c.t.Fatalf("read status line: %v", err)
	}
	parts := strings.SplitN(strings.TrimRight(line, "\r\n"), " ", 3)
	if len(parts) < 2 {
		c.t.Fatalf("malformed status line %q", line)
	}
	status, err = strconv.Atoi(parts[1])
	if err != nil {
		c.t.Fatalf("malformed status %q", line)
	}
	hdr = make(map[string]string)
	for {
		h, err := c.br.ReadString('\n')
		if err != nil {
			c.t.Fatalf("read header: %v", err)
		}
		h = strings.TrimRight(h, "\r\n")
		if h == "" {
			break
		}
		if key, value, ok := strings.Cut(h, ":"); ok {
			hdr[strings.ToLower(key)] = strings.TrimSpace(value)
		}
	}
	n, err := strconv.Atoi(hdr["content-length"])
	if err != nil {
		c.t.Fatalf("missing content-length: %v", hdr)
	}
	body = make([]byte, n)
	if _, err := io.ReadFull(c.br, body); err != nil {
		c.t.Fatalf("read body: %v", err)
	}
	return status, hdr, body
}

// get performs one request and decodes the JSON answer into out.
func (c *tClient) get(method, target string, wantStatus int, out any) map[string]string {
	c.t.Helper()
	c.send(method, target)
	status, hdr, body := c.readResponse()
	if status != wantStatus {
		c.t.Fatalf("%s %s = %d (%s), want %d", method, target, status, body, wantStatus)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			c.t.Fatalf("%s %s: decode %q: %v", method, target, body, err)
		}
	}
	return hdr
}

// awaitServerStats polls until the server's counters equal want.
func awaitServerStats(t *testing.T, srv *Server, want ServerStats) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if srv.Stats() == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats never converged:\ngot  %+v\nwant %+v", srv.Stats(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestServeEndpoints(t *testing.T) {
	oldPath, _ := writeServeWorlds(t)
	svc := servingService(t, oldPath)
	n := netsim.New()
	const addr = "203.0.113.10:80"
	srv := startTestServer(t, n, addr, Config{Service: svc})
	c := dialClient(t, n, addr)

	var ready ReadyResponse
	c.get("GET", "/readyz", 200, &ready)
	if !ready.Ready || ready.State != "serving" {
		t.Errorf("readyz = %+v, want ready/serving", ready)
	}
	var health HealthResponse
	c.get("GET", "/healthz", 200, &health)
	if health.State != "serving" || health.Stale || health.Epoch != 1 {
		t.Errorf("healthz = %+v, want serving epoch 1", health)
	}

	var look LookupResponse
	c.get("GET", "/v1/domain?name=one.example", 200, &look)
	want := LookupResponse{
		Domain: "one.example", Found: true, Primary: "prov-a.net",
		Credits: map[string]float64{"prov-a.net": 1}, Rank: 1,
		Snapshot: SnapshotMeta{Date: "2021-01", Corpus: "test", Epoch: 1, Domains: 4},
	}
	if !reflect.DeepEqual(look, want) {
		t.Errorf("lookup = %+v, want %+v", look, want)
	}
	look = LookupResponse{}
	c.get("GET", "/v1/domain?name=missing.example", 200, &look)
	if look.Found || look.Primary != "" {
		t.Errorf("missing domain = %+v, want not found", look)
	}

	var share ShareResponse
	c.get("GET", "/v1/share?top=1", 200, &share)
	if len(share.Top) != 1 || share.Top[0].Company != "prov-a.net" || share.Top[0].Percent != 50 {
		t.Errorf("share top 1 = %+v, want prov-a.net at 50%%", share.Top)
	}
	c.get("GET", "/v1/share", 200, &share)
	if len(share.Top) != 2 {
		t.Errorf("share = %+v, want 2 companies (self-hosted excluded)", share.Top)
	}

	var conc ConcentrationResponse
	c.get("GET", "/v1/concentration", 200, &conc)
	// prov-a 2 of 3 managed credits, prov-b 1 of 3.
	if math.Abs(conc.CR1-200.0/3) > 1e-9 || conc.Snapshot.Epoch != 1 {
		t.Errorf("concentration = %+v, want CR1 %.4f", conc, 200.0/3)
	}

	var churn ChurnResponse
	c.get("GET", "/v1/churn", 200, &churn)
	if churn.Swaps != 0 || churn.Last != nil {
		t.Errorf("churn before any swap = %+v, want empty", churn)
	}

	c.get("GET", "/v1/swap?path=/nope", 403, nil)
	c.get("GET", "/missing", 404, nil)
	c.get("POST", "/v1/domain", 405, nil)
	// A parameterless lookup is a 400, which closes the connection.
	hdr := c.get("GET", "/v1/domain", 400, nil)
	if hdr["connection"] != "close" {
		t.Errorf("400 headers = %v, want Connection: close", hdr)
	}
	c2 := dialClient(t, n, addr)
	c2.get("GET", "/v1/share?top=0", 400, nil)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	awaitServerStats(t, srv, ServerStats{
		Accepted: 2, Requests: 13, Responses: 13,
		Lookups: 2, LookupMisses: 1,
		Drains: 1,
	})
	if svc.State() != StateDraining {
		t.Errorf("service state after drain = %v, want draining", svc.State())
	}
}

func TestServeHotSwapAndStaleMode(t *testing.T) {
	oldPath, newPath := writeServeWorlds(t)
	svc := servingService(t, oldPath)
	n := netsim.New()
	const addr = "203.0.113.11:80"
	srv := startTestServer(t, n, addr, Config{Service: svc, AllowSwap: true})
	c := dialClient(t, n, addr)

	// A swap whose load fails leaves the old epoch serving, stale.
	c.get("POST", "/v1/swap?path="+filepath.Join(t.TempDir(), "gone.jsonl"), 500, nil)
	var look LookupResponse
	c.get("GET", "/v1/domain?name=one.example", 200, &look)
	if !look.Stale || !look.Found || look.Snapshot.Epoch != 1 {
		t.Errorf("lookup after failed swap = %+v, want stale epoch-1 answer", look)
	}
	var health HealthResponse
	c.get("GET", "/healthz", 200, &health)
	if !health.Stale || health.State != "serving" {
		t.Errorf("healthz after failed swap = %+v, want stale serving", health)
	}
	var ready ReadyResponse
	c.get("GET", "/readyz", 200, &ready)
	if !ready.Ready || !ready.Stale {
		t.Errorf("readyz after failed swap = %+v, want ready but stale", ready)
	}

	// A successful swap flips the epoch, clears stale, and reports the
	// churn exactly.
	var rep ChurnReport
	c.get("POST", "/v1/swap?path="+newPath, 200, &rep)
	wantDiff := dataset.DiffStats{OldDomains: 4, NewDomains: 4, Added: 1, Removed: 1, Changed: 1, Unchanged: 2}
	wantDelta := core.DeltaStats{Reused: 2, Reinferred: 2}
	if rep.FromEpoch != 1 || rep.ToEpoch != 2 || rep.FromDate != "2021-01" || rep.ToDate != "2021-02" {
		t.Errorf("report identity = %+v, want epoch 1->2, 2021-01 -> 2021-02", rep)
	}
	if rep.Diff != wantDiff || rep.Delta != wantDelta || rep.FullRecompute {
		t.Errorf("report = %+v, want diff %+v delta %+v", rep, wantDiff, wantDelta)
	}
	wantFlows := []ProviderFlow{
		{From: NoProviderLabel, To: "prov-b.net", Count: 1},
		{From: "prov-a.net", To: "prov-b.net", Count: 1},
		{From: "prov-b.net", To: NoProviderLabel, Count: 1},
	}
	if !reflect.DeepEqual(rep.Flows, wantFlows) {
		t.Errorf("flows = %+v, want %+v", rep.Flows, wantFlows)
	}

	look = LookupResponse{}
	c.get("GET", "/v1/domain?name=two.example", 200, &look)
	if look.Primary != "prov-b.net" || look.Stale || look.Snapshot.Epoch != 2 || look.Snapshot.Date != "2021-02" {
		t.Errorf("lookup after swap = %+v, want prov-b.net at epoch 2", look)
	}
	look = LookupResponse{}
	c.get("GET", "/v1/domain?name=three.example", 200, &look)
	if look.Found {
		t.Errorf("removed domain still found: %+v", look)
	}

	var churn ChurnResponse
	c.get("GET", "/v1/churn", 200, &churn)
	if churn.Swaps != 1 || churn.Last == nil || churn.Last.ToEpoch != 2 {
		t.Errorf("churn = %+v, want one swap to epoch 2", churn)
	}
	var stats StatsResponse
	c.get("GET", "/v1/stats", 200, &stats)
	ss := stats.Service
	if ss.State != "serving" || ss.Stale || ss.Epoch != 2 || ss.Domains != 4 ||
		ss.Swaps != 1 || ss.SwapFails != 1 ||
		ss.DomainsReused != 2 || ss.DomainsReinferred != 2 {
		t.Errorf("service stats = %+v", ss)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	awaitServerStats(t, srv, ServerStats{
		Accepted: 1, Requests: 9, Responses: 9,
		Lookups: 3, LookupMisses: 1, StaleServes: 1,
		Drains: 1,
	})
}

func TestServeProbesBeforeLoad(t *testing.T) {
	oldPath, _ := writeServeWorlds(t)
	svc := NewService(core.ApproachMXOnly, ServiceConfig{})
	n := netsim.New()
	const addr = "203.0.113.12:80"
	startTestServer(t, n, addr, Config{Service: svc})
	c := dialClient(t, n, addr)

	var ready ReadyResponse
	c.get("GET", "/readyz", 503, &ready)
	if ready.Ready || ready.State != "loading" {
		t.Errorf("readyz before load = %+v, want loading", ready)
	}
	var health HealthResponse
	c.get("GET", "/healthz", 200, &health)
	if health.State != "loading" || health.Epoch != 0 {
		t.Errorf("healthz before load = %+v, want loading epoch 0", health)
	}
	c.get("GET", "/v1/domain?name=one.example", 503, nil)
	c.get("GET", "/v1/share", 503, nil)
	c.get("GET", "/v1/concentration", 503, nil)

	// A failed initial load keeps the service loading and retryable.
	if _, err := svc.Load(filepath.Join(t.TempDir(), "gone.jsonl")); err == nil {
		t.Fatal("load of a missing snapshot succeeded")
	}
	c.get("GET", "/readyz", 503, &ready)
	if ready.Ready {
		t.Errorf("ready after failed load: %+v", ready)
	}
	meta, err := svc.Load(oldPath)
	if err != nil {
		t.Fatalf("retried load: %v", err)
	}
	if meta.Epoch != 1 || meta.Domains != 4 {
		t.Errorf("meta = %+v, want epoch 1 with 4 domains", meta)
	}
	c.get("GET", "/readyz", 200, &ready)
	if !ready.Ready {
		t.Errorf("readyz after load = %+v, want ready", ready)
	}
}

func TestServeAdmissionControl(t *testing.T) {
	oldPath, _ := writeServeWorlds(t)

	t.Run("conn cap", func(t *testing.T) {
		svc := servingService(t, oldPath)
		n := netsim.New()
		const addr = "203.0.113.13:80"
		srv := startTestServer(t, n, addr, Config{Service: svc, MaxConns: 1})
		c1 := dialClient(t, n, addr)
		c1.get("GET", "/healthz", 200, nil)
		// The second connection is shed at the door.
		c2 := dialClient(t, n, addr)
		status, hdr, _ := c2.readResponse()
		if status != 429 || hdr["retry-after"] != "1" || hdr["connection"] != "close" {
			t.Errorf("over-cap conn got %d %v, want 429 + Retry-After", status, hdr)
		}
		if st := srv.Stats(); st.Rejected != 1 || st.Accepted != 1 {
			t.Errorf("stats = %+v, want Accepted 1 Rejected 1", st)
		}
	})

	t.Run("inflight shed", func(t *testing.T) {
		svc := servingService(t, oldPath)
		n := netsim.New()
		const addr = "203.0.113.14:80"
		entered := make(chan struct{}, 1)
		release := make(chan struct{})
		srv := startTestServer(t, n, addr, Config{
			Service: svc, MaxInflight: 1, QueueDepth: -1, RequestTimeout: -1,
			Gate: func(path string) {
				if path == "/v1/domain" {
					entered <- struct{}{}
					<-release
				}
			},
		})
		c1 := dialClient(t, n, addr)
		c1.send("GET", "/v1/domain?name=one.example")
		<-entered // c1 now owns the only inflight slot
		c2 := dialClient(t, n, addr)
		c2.get("GET", "/v1/domain?name=one.example", 429, nil)
		close(release)
		if status, _, _ := c1.readResponse(); status != 200 {
			t.Errorf("gated request finished %d, want 200", status)
		}
		awaitServerStats(t, srv, ServerStats{
			Accepted: 2, Requests: 2, Responses: 2, Shed: 1, Lookups: 1,
		})
	})

	t.Run("queue then serve", func(t *testing.T) {
		svc := servingService(t, oldPath)
		n := netsim.New()
		const addr = "203.0.113.15:80"
		entered := make(chan struct{}, 2)
		release := make(chan struct{}, 2)
		srv := startTestServer(t, n, addr, Config{
			Service: svc, MaxInflight: 1, QueueDepth: 1, QueueWait: 5 * time.Second,
			RequestTimeout: -1,
			Gate: func(path string) {
				if path == "/v1/domain" {
					entered <- struct{}{}
					<-release
				}
			},
		})
		c1 := dialClient(t, n, addr)
		c1.send("GET", "/v1/domain?name=one.example")
		<-entered
		c2 := dialClient(t, n, addr)
		c2.send("GET", "/v1/domain?name=two.example")
		// c2 is queued behind c1's slot.
		deadline := time.Now().Add(5 * time.Second)
		for srv.Stats().Queued != 1 {
			if time.Now().After(deadline) {
				t.Fatalf("second request never queued: %+v", srv.Stats())
			}
			time.Sleep(time.Millisecond)
		}
		release <- struct{}{}
		release <- struct{}{}
		if status, _, _ := c1.readResponse(); status != 200 {
			t.Errorf("first request finished %d", status)
		}
		<-entered // c2 took over the slot
		if status, _, _ := c2.readResponse(); status != 200 {
			t.Errorf("queued request finished %d", status)
		}
		awaitServerStats(t, srv, ServerStats{
			Accepted: 2, Requests: 2, Responses: 2, Queued: 1, Lookups: 2,
		})
	})

	t.Run("queue timeout", func(t *testing.T) {
		svc := servingService(t, oldPath)
		n := netsim.New()
		const addr = "203.0.113.16:80"
		entered := make(chan struct{}, 1)
		release := make(chan struct{})
		srv := startTestServer(t, n, addr, Config{
			Service: svc, MaxInflight: 1, QueueDepth: 1, QueueWait: 30 * time.Millisecond,
			RequestTimeout: -1,
			Gate: func(path string) {
				if path == "/v1/domain" {
					entered <- struct{}{}
					<-release
				}
			},
		})
		c1 := dialClient(t, n, addr)
		c1.send("GET", "/v1/domain?name=one.example")
		<-entered
		c2 := dialClient(t, n, addr)
		c2.get("GET", "/v1/domain?name=two.example", 429, nil)
		close(release)
		if status, _, _ := c1.readResponse(); status != 200 {
			t.Errorf("gated request finished %d", status)
		}
		awaitServerStats(t, srv, ServerStats{
			Accepted: 2, Requests: 2, Responses: 2, Queued: 1, Shed: 1, Lookups: 1,
		})
	})

	t.Run("request deadline", func(t *testing.T) {
		svc := servingService(t, oldPath)
		n := netsim.New()
		const addr = "203.0.113.17:80"
		release := make(chan struct{})
		srv := startTestServer(t, n, addr, Config{
			Service: svc, RequestTimeout: 30 * time.Millisecond,
			Gate: func(path string) {
				if path == "/v1/domain" {
					<-release
				}
			},
		})
		c := dialClient(t, n, addr)
		c.get("GET", "/v1/domain?name=one.example", 503, nil)
		close(release) // let the abandoned handler finish
		awaitServerStats(t, srv, ServerStats{
			Accepted: 1, Requests: 1, Responses: 1, Timeouts: 1, Lookups: 1,
		})
	})
}

func TestServeConnHygiene(t *testing.T) {
	oldPath, _ := writeServeWorlds(t)

	t.Run("slowloris", func(t *testing.T) {
		svc := servingService(t, oldPath)
		n := netsim.New()
		const addr = "203.0.113.18:80"
		srv := startTestServer(t, n, addr, Config{Service: svc, ReadTimeout: 30 * time.Millisecond})
		c := dialClient(t, n, addr)
		// Half a request line, then silence: the read deadline reaps it.
		if _, err := c.conn.Write([]byte("GET /v1/dom")); err != nil {
			t.Fatal(err)
		}
		c.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, err := c.br.ReadByte(); err == nil {
			t.Fatal("slowloris connection was answered")
		}
		awaitServerStats(t, srv, ServerStats{Accepted: 1, ReadTimeouts: 1})
	})

	t.Run("malformed", func(t *testing.T) {
		svc := servingService(t, oldPath)
		n := netsim.New()
		const addr = "203.0.113.19:80"
		srv := startTestServer(t, n, addr, Config{Service: svc})
		c := dialClient(t, n, addr)
		if _, err := c.conn.Write([]byte("NOT A REQUEST\r\n\r\n")); err != nil {
			t.Fatal(err)
		}
		status, hdr, _ := c.readResponse()
		if status != 400 || hdr["connection"] != "close" {
			t.Errorf("malformed request got %d %v, want 400 close", status, hdr)
		}
		awaitServerStats(t, srv, ServerStats{
			Accepted: 1, Requests: 1, Responses: 1, BadRequests: 1,
		})
	})

	t.Run("request budget", func(t *testing.T) {
		svc := servingService(t, oldPath)
		n := netsim.New()
		const addr = "203.0.113.20:80"
		srv := startTestServer(t, n, addr, Config{Service: svc, MaxRequests: 2})
		c := dialClient(t, n, addr)
		hdr := c.get("GET", "/healthz", 200, nil)
		if hdr["connection"] == "close" {
			t.Error("first request already closing")
		}
		hdr = c.get("GET", "/healthz", 200, nil)
		if hdr["connection"] != "close" {
			t.Error("budget-exhausting response not marked close")
		}
		c.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, err := c.br.ReadByte(); err != io.EOF {
			t.Errorf("connection still open after budget: %v", err)
		}
		awaitServerStats(t, srv, ServerStats{
			Accepted: 1, Requests: 2, Responses: 2, BudgetCloses: 1,
		})
	})
}

// TestServeSwapEquivalence proves the serving store built through the
// incremental swap path answers identically to one built by a fresh
// full load of the same snapshot.
func TestServeSwapEquivalence(t *testing.T) {
	oldPath, newPath := writeServeWorlds(t)
	swapped := servingService(t, oldPath)
	if _, err := swapped.Swap(context.Background(), newPath); err != nil {
		t.Fatal(err)
	}
	fresh := servingService(t, newPath)

	se, ss := swapped.acquire()
	defer swapped.release(se)
	fe, fs := fresh.acquire()
	defer fresh.release(fe)
	if len(ss.domains) != len(fs.domains) {
		t.Fatalf("store sizes differ: %d vs %d", len(ss.domains), len(fs.domains))
	}
	for name, att := range fs.domains {
		got, ok := ss.domains[name]
		if !ok || !reflect.DeepEqual(got, att) {
			t.Errorf("domain %s: swapped %+v, fresh %+v", name, got, att)
		}
	}
	if !reflect.DeepEqual(ss.shares, fs.shares) {
		t.Errorf("shares differ: %+v vs %+v", ss.shares, fs.shares)
	}
	if ss.conc != fs.conc {
		t.Errorf("concentration differs: %+v vs %+v", ss.conc, fs.conc)
	}
	mustJSON := func(v any) string {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if a, b := mustJSON(ss.res), mustJSON(fs.res); a != b {
		t.Errorf("results differ:\nswapped: %s\nfresh:   %s", a, b)
	}
}

// TestServeSwapFallbackFullRecompute pins the degraded path: when the
// prior snapshot file has vanished, the swap silently recomputes from
// scratch and says so.
func TestServeSwapFallbackFullRecompute(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.jsonl")
	newPath := filepath.Join(dir, "new.jsonl")
	for path, snap := range map[string]*dataset.Snapshot{oldPath: serveWorldOld(), newPath: serveWorldNew()} {
		snap.SortDomains()
		if err := dataset.WriteFile(path, snap); err != nil {
			t.Fatal(err)
		}
	}
	svc := servingService(t, oldPath)
	if err := os.Remove(oldPath); err != nil {
		t.Fatal(err)
	}
	rep, err := svc.Swap(context.Background(), newPath)
	if err != nil {
		t.Fatalf("swap after prior vanished: %v", err)
	}
	if !rep.FullRecompute || rep.Delta.Reused != 0 || rep.Delta.Reinferred != 4 {
		t.Errorf("report = %+v, want full recompute of 4 domains", rep)
	}
	if svc.Stale() {
		t.Error("service stale after successful fallback swap")
	}
}
