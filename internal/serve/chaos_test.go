package serve

// Hot-swap chaos tests. These run in the race tier (go test -race -run
// Chaos) and assert exact counters: the fabric is lossless and the
// drain is graceful, so every request the server read must produce a
// response the client received — the books balance to the last query.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/netip"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mxmap/internal/core"
	"mxmap/internal/netsim"
)

// chaosClient hammers one keep-alive connection with lookups until
// stopped, checking every answer for epoch monotonicity and snapshot
// consistency. It tallies what it observed so the test can reconstruct
// the server's exact counters from the client side.
type chaosClient struct {
	sent      int64 // requests fully answered
	misses    int64 // answered with found=false
	lastEpoch uint64
	err       error
}

// run loops lookups until stop or until the drain closes the
// connection. Connection errors are a clean exit, not a failure: the
// graceful drain tears keep-alive connections down underneath clients,
// and any genuinely lost request would surface in the final exact
// counter assertion instead.
func (cc *chaosClient) run(n *netsim.Network, addr string, worker int, stop *atomic.Bool) {
	conn, err := n.Dial(context.Background(), netip.MustParseAddrPort(addr))
	if err != nil {
		cc.err = err
		return
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	names := []string{"one.example", "two.example", "four.example", "no-such.example"}
	for i := 0; ; i++ {
		name := names[(worker+i)%len(names)]
		req := "GET /v1/domain?name=" + name + " HTTP/1.1\r\nHost: chaos\r\n\r\n"
		conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
		if _, err := conn.Write([]byte(req)); err != nil {
			return
		}
		status, body, err := readChaosResponse(br, conn)
		if err != nil {
			return
		}
		if status != 200 {
			cc.err = fmt.Errorf("lookup %s: status %d (%s)", name, status, body)
			return
		}
		var resp LookupResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			cc.err = fmt.Errorf("decode %q: %w", body, err)
			return
		}
		// Consistency across the flip: an answer comes from exactly one
		// fully-built epoch, and epochs never move backward on a
		// connection.
		if resp.Snapshot.Epoch < cc.lastEpoch {
			cc.err = fmt.Errorf("epoch went backward: %d after %d", resp.Snapshot.Epoch, cc.lastEpoch)
			return
		}
		cc.lastEpoch = resp.Snapshot.Epoch
		wantDate := "2021-01"
		if resp.Snapshot.Epoch%2 == 0 {
			wantDate = "2021-02"
		}
		if resp.Snapshot.Date != wantDate {
			cc.err = fmt.Errorf("epoch %d served date %s, want %s (torn epoch)", resp.Snapshot.Epoch, resp.Snapshot.Date, wantDate)
			return
		}
		if name == "no-such.example" {
			if resp.Found {
				cc.err = fmt.Errorf("phantom domain found at epoch %d", resp.Snapshot.Epoch)
				return
			}
			cc.misses++
		} else if name != "two.example" && !resp.Found {
			// one.example and four.example exist in both snapshots;
			// two.example exists in both as well, but its provider
			// moves — checked below.
			cc.err = fmt.Errorf("stable domain %s missing at epoch %d", name, resp.Snapshot.Epoch)
			return
		}
		if name == "two.example" && resp.Found {
			wantPrimary := "prov-a.net"
			if resp.Snapshot.Epoch%2 == 0 {
				wantPrimary = "prov-b.net"
			}
			if resp.Primary != wantPrimary {
				cc.err = fmt.Errorf("epoch %d attributes two.example to %s, want %s", resp.Snapshot.Epoch, resp.Primary, wantPrimary)
				return
			}
		}
		cc.sent++
		if stop.Load() {
			return
		}
	}
}

func readChaosResponse(br *bufio.Reader, conn net.Conn) (int, []byte, error) {
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := br.ReadString('\n')
	if err != nil {
		return 0, nil, err
	}
	parts := strings.SplitN(strings.TrimRight(line, "\r\n"), " ", 3)
	if len(parts) < 2 {
		return 0, nil, fmt.Errorf("bad status line %q", line)
	}
	status, err := strconv.Atoi(parts[1])
	if err != nil {
		return 0, nil, fmt.Errorf("bad status line %q", line)
	}
	length := -1
	for {
		h, err := br.ReadString('\n')
		if err != nil {
			return 0, nil, err
		}
		h = strings.TrimRight(h, "\r\n")
		if h == "" {
			break
		}
		if key, value, ok := strings.Cut(h, ":"); ok && strings.EqualFold(key, "Content-Length") {
			if length, err = strconv.Atoi(strings.TrimSpace(value)); err != nil {
				return 0, nil, err
			}
		}
	}
	if length < 0 {
		return 0, nil, fmt.Errorf("response without content length")
	}
	body := make([]byte, length)
	if _, err := io.ReadFull(br, body); err != nil {
		return 0, nil, err
	}
	return status, body, nil
}

// TestChaosHotSwapFloodZeroLoss hammers the service with concurrent
// lookups while the snapshot is hot-swapped back and forth, then drains
// gracefully and balances the books: every request the server read was
// answered (Lost() == 0, asserted as a whole ServerStats struct built
// from client-side tallies), no answer ever came from a torn epoch, and
// epochs never moved backward on a connection.
func TestChaosHotSwapFloodZeroLoss(t *testing.T) {
	oldPath, newPath := writeServeWorlds(t)
	svc := servingService(t, oldPath)
	n := netsim.New()
	const addr = "203.0.113.30:80"
	const workers = 4
	const swaps = 6
	srv := startTestServer(t, n, addr, Config{
		Service: svc,
		// Unlimited request concurrency, no deadlines, and no
		// per-connection request budget: admission shedding is tested
		// elsewhere; here every read request must be answered so the
		// final struct equality is exact. (A slow box can push a single
		// flood connection past the default budget, which would close
		// it and break the Accepted/BudgetCloses bookkeeping.)
		MaxInflight: -1, QueueDepth: -1, RequestTimeout: -1, MaxRequests: -1,
	})

	var stop atomic.Bool
	var wg sync.WaitGroup
	clients := make([]chaosClient, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			clients[w].run(n, addr, w, &stop)
		}(w)
	}

	// Let real load build, then flip the epoch back and forth under it.
	deadline := time.Now().Add(10 * time.Second)
	for srv.Stats().Requests < 20 {
		if time.Now().After(deadline) {
			t.Fatalf("load never built: %+v", srv.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	paths := [2]string{newPath, oldPath}
	for i := 0; i < swaps; i++ {
		rep, err := svc.Swap(context.Background(), paths[i%2])
		if err != nil {
			t.Fatalf("swap %d: %v", i, err)
		}
		if rep.ToEpoch != uint64(i+2) {
			t.Fatalf("swap %d produced epoch %d, want %d", i, rep.ToEpoch, i+2)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	stop.Store(true)
	wg.Wait()

	var answered, misses int64
	for w := range clients {
		if clients[w].err != nil {
			t.Fatalf("client %d: %v", w, clients[w].err)
		}
		answered += clients[w].sent
		misses += clients[w].misses
	}
	if answered == 0 {
		t.Fatal("no lookups completed; the flood exercised nothing")
	}

	// Exact accounting, reconstructed entirely from the client side:
	// the fabric is lossless and the drain graceful, so the server read
	// exactly the requests the clients got answers for — zero lost.
	want := ServerStats{
		Accepted:     workers,
		Requests:     uint64(answered),
		Responses:    uint64(answered),
		Lookups:      uint64(answered),
		LookupMisses: uint64(misses),
		Drains:       1,
	}
	awaitServerStats(t, srv, want)
	if lost := srv.Stats().Lost(); lost != 0 {
		t.Errorf("Lost() = %d after drain, want 0", lost)
	}

	// The swap machinery reused work on every flip: only the churned
	// domains were re-inferred.
	ss := svc.Stats()
	if ss.Swaps != swaps || ss.SwapFails != 0 {
		t.Errorf("service stats = %+v, want %d clean swaps", ss, swaps)
	}
	if ss.DomainsReused != uint64(swaps*2) || ss.DomainsReinferred != uint64(swaps*2) {
		t.Errorf("delta accounting = reused %d reinferred %d, want %d each", ss.DomainsReused, ss.DomainsReinferred, swaps*2)
	}

	// Draining twice is idempotent and still nil.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Errorf("second Shutdown: %v", err)
	}
}

// TestChaosSwapFailureUnderLoad floods lookups while a swap fails
// mid-flight: the old epoch must keep answering every query, marked
// stale, and a later good swap must clear the degradation — no query
// is ever refused or lost across the failure.
func TestChaosSwapFailureUnderLoad(t *testing.T) {
	oldPath, newPath := writeServeWorlds(t)
	svc := servingService(t, oldPath)
	n := netsim.New()
	const addr = "203.0.113.31:80"
	const workers = 2
	srv := startTestServer(t, n, addr, Config{
		Service:     svc,
		MaxInflight: -1, QueueDepth: -1, RequestTimeout: -1,
	})

	var stop atomic.Bool
	var wg sync.WaitGroup
	clients := make([]chaosClient, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			clients[w].run(n, addr, w, &stop)
		}(w)
	}
	deadline := time.Now().Add(10 * time.Second)
	for srv.Stats().Requests < 10 {
		if time.Now().After(deadline) {
			t.Fatalf("load never built: %+v", srv.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	if _, err := svc.Swap(context.Background(), oldPath+".does-not-exist"); err == nil {
		t.Fatal("swap to a missing snapshot succeeded")
	}
	if !svc.Stale() {
		t.Fatal("service not stale after failed swap")
	}
	// Queries keep flowing from the old epoch while stale.
	before := srv.Stats().Responses
	deadline = time.Now().Add(10 * time.Second)
	for srv.Stats().Responses < before+10 {
		if time.Now().After(deadline) {
			t.Fatalf("stale epoch stopped answering: %+v", srv.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if srv.Stats().StaleServes == 0 {
		t.Error("no responses were accounted as stale serves")
	}

	rep, err := svc.Swap(context.Background(), newPath)
	if err != nil {
		t.Fatalf("recovery swap: %v", err)
	}
	if rep.Delta != (core.DeltaStats{Reused: 2, Reinferred: 2}) {
		t.Errorf("recovery delta = %+v, want {2 2}", rep.Delta)
	}
	if svc.Stale() {
		t.Error("service still stale after recovery swap")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	stop.Store(true)
	wg.Wait()
	for w := range clients {
		if clients[w].err != nil {
			t.Fatalf("client %d: %v", w, clients[w].err)
		}
	}
	if st := srv.Stats(); st.Lost() != 0 || st.Drains != 1 || st.DrainTimeouts != 0 {
		t.Errorf("stats after drain = %+v, want zero loss and one clean drain", st)
	}
}
