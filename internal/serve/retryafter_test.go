package serve

import (
	"testing"
	"time"

	"mxmap/internal/core"
	"mxmap/internal/netsim"
)

// TestNotLoaded503RetryAfter pins the shed-class header contract on the
// data plane: a service with no snapshot answers 503 with Retry-After,
// exactly like the 429 admission sheds, so balancers and clients back
// off instead of hammering a server that is still loading.
func TestNotLoaded503RetryAfter(t *testing.T) {
	svc := NewService(core.ApproachMXOnly, ServiceConfig{})
	n := netsim.New()
	const addr = "203.0.113.42:80"
	startTestServer(t, n, addr, Config{Service: svc})
	c := dialClient(t, n, addr)

	for _, target := range []string{
		"/v1/domain?name=one.example", "/v1/share", "/v1/concentration",
	} {
		hdr := c.get("GET", target, 503, nil)
		if hdr["retry-after"] != "1" {
			t.Errorf("%s headers = %v, want Retry-After: 1", target, hdr)
		}
	}
}

// TestReadyz503RetryAfter covers the probe plane: a not-ready service
// (loading here, draining below) answers readyz 503 with the same
// back-off hint.
func TestReadyz503RetryAfter(t *testing.T) {
	oldPath, _ := writeServeWorlds(t)
	svc := NewService(core.ApproachMXOnly, ServiceConfig{})
	n := netsim.New()
	const addr = "203.0.113.43:80"
	srv := startTestServer(t, n, addr, Config{Service: svc, RetryAfterSecs: 7})
	c := dialClient(t, n, addr)

	var ready ReadyResponse
	hdr := c.get("GET", "/readyz", 503, &ready)
	if ready.Ready || hdr["retry-after"] != "7" {
		t.Fatalf("loading readyz = %+v %v, want 503 + Retry-After: 7", ready, hdr)
	}

	// Load, verify the hint disappears on the 200, then drain and watch
	// it come back.
	if _, err := svc.Load(oldPath); err != nil {
		t.Fatal(err)
	}
	hdr = c.get("GET", "/readyz", 200, &ready)
	if !ready.Ready || hdr["retry-after"] != "" {
		t.Fatalf("serving readyz = %+v %v, want 200 without Retry-After", ready, hdr)
	}

	svc.BeginDrain()
	hdr = c.get("GET", "/readyz", 503, &ready)
	if ready.Ready || ready.State != "draining" || hdr["retry-after"] != "7" {
		t.Fatalf("draining readyz = %+v %v, want 503 + Retry-After: 7", ready, hdr)
	}
	// The books settle to zero lost (the final response's accounting may
	// trail the client's read by a beat).
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Lost() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("server lost %d requests", srv.Stats().Lost())
		}
		time.Sleep(time.Millisecond)
	}
}
