package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/url"
	"strings"
)

// Wire limits: one request line or header may not exceed maxLineBytes,
// and a request may carry at most maxHeaderLines headers. Both bound
// what a hostile client can make the server buffer.
const (
	maxLineBytes   = 8192
	maxHeaderLines = 64
)

var (
	errMalformed   = errors.New("serve: malformed request")
	errLineTooLong = errors.New("serve: request line too long")
)

// request is one parsed HTTP/1.1 GET/POST request. The service is
// read-only over small query strings, so bodies are rejected outright.
type request struct {
	method string
	path   string
	query  url.Values
	// close records a Connection: close header (or HTTP/1.0 without
	// keep-alive): the connection ends after this response.
	close bool
}

// response is one answer ready to write.
type response struct {
	status     int
	body       []byte
	retryAfter bool
	close      bool
}

// readRequest parses one request off the wire. It returns io.EOF only
// for a clean close between requests; an EOF mid-request surfaces as a
// malformed-request error. Timeout errors pass through for the caller
// to classify against the slowloris deadline.
func readRequest(br *bufio.Reader) (*request, error) {
	line, err := readLine(br)
	if err != nil {
		return nil, err
	}
	method, rest, ok := strings.Cut(line, " ")
	target, proto, ok2 := strings.Cut(rest, " ")
	if !ok || !ok2 || method == "" || target == "" ||
		(proto != "HTTP/1.1" && proto != "HTTP/1.0") {
		return nil, errMalformed
	}
	req := &request{method: method, close: proto == "HTTP/1.0"}
	path, rawQuery, _ := strings.Cut(target, "?")
	req.path = path
	req.query = url.Values{}
	if rawQuery != "" {
		q, err := url.ParseQuery(rawQuery)
		if err != nil {
			return nil, errMalformed
		}
		req.query = q
	}
	for i := 0; ; i++ {
		if i > maxHeaderLines {
			return nil, errMalformed
		}
		h, err := readLine(br)
		if err != nil {
			if err == io.EOF {
				return nil, errMalformed // EOF inside the header block
			}
			return nil, err
		}
		if h == "" {
			return req, nil
		}
		key, value, ok := strings.Cut(h, ":")
		if !ok {
			return nil, errMalformed
		}
		value = strings.TrimSpace(value)
		switch strings.ToLower(key) {
		case "connection":
			switch strings.ToLower(value) {
			case "close":
				req.close = true
			case "keep-alive":
				req.close = false
			}
		case "content-length":
			if value != "" && value != "0" {
				return nil, errMalformed // bodies are not accepted
			}
		case "transfer-encoding":
			return nil, errMalformed
		}
	}
}

// readLine reads one CRLF- (or LF-) terminated line, bounded by
// maxLineBytes regardless of how much the client pushes.
func readLine(br *bufio.Reader) (string, error) {
	var buf []byte
	for {
		frag, err := br.ReadSlice('\n')
		buf = append(buf, frag...)
		if err == nil {
			break
		}
		if err == bufio.ErrBufferFull {
			if len(buf) > maxLineBytes {
				return "", errLineTooLong
			}
			continue
		}
		if err == io.EOF && len(buf) > 0 {
			return "", errMalformed // line cut off mid-flight
		}
		return "", err
	}
	if len(buf) > maxLineBytes {
		return "", errLineTooLong
	}
	return strings.TrimRight(string(buf), "\r\n"), nil
}

func statusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 400:
		return "Bad Request"
	case 403:
		return "Forbidden"
	case 404:
		return "Not Found"
	case 405:
		return "Method Not Allowed"
	case 409:
		return "Conflict"
	case 429:
		return "Too Many Requests"
	case 500:
		return "Internal Server Error"
	case 503:
		return "Service Unavailable"
	}
	return "Status"
}

// appendResponse serializes r into buf. No Date header: responses are
// byte-reproducible for the determinism contracts the repo keeps.
func appendResponse(buf *bytes.Buffer, r response, retryAfterSecs int) {
	fmt.Fprintf(buf, "HTTP/1.1 %d %s\r\n", r.status, statusText(r.status))
	buf.WriteString("Content-Type: application/json\r\n")
	fmt.Fprintf(buf, "Content-Length: %d\r\n", len(r.body))
	if r.retryAfter {
		fmt.Fprintf(buf, "Retry-After: %d\r\n", retryAfterSecs)
	}
	if r.close {
		buf.WriteString("Connection: close\r\n")
	}
	buf.WriteString("\r\n")
	buf.Write(r.body)
}

// jsonResponse marshals v as the response body.
func jsonResponse(status int, v any) response {
	b, err := json.Marshal(v)
	if err != nil {
		return errorResponse(500, "response encoding failure")
	}
	return response{status: status, body: b}
}

// errorResponse is a JSON error envelope. 400s close the connection:
// after a malformed request the read position is untrustworthy.
func errorResponse(status int, msg string) response {
	b, _ := json.Marshal(errorBody{Error: msg})
	return response{status: status, body: b, close: status == 400}
}
