package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/url"
	"strings"
)

// Wire limits: one request line or header may not exceed maxLineBytes,
// and a request may carry at most maxHeaderLines headers. Both bound
// what a hostile client can make the server buffer.
const (
	maxLineBytes   = 8192
	maxHeaderLines = 64
)

var (
	errMalformed   = errors.New("serve: malformed request")
	errLineTooLong = errors.New("serve: request line too long")
)

// Request is one parsed HTTP/1.1 GET/POST request. The service is
// read-only over small query strings, so bodies are rejected outright.
// It is exported so alternative front-ends (the HA balancer) can plug
// into the Server through Config.Handler.
type Request struct {
	Method string
	Path   string
	Query  url.Values
	// Close records a Connection: close header (or HTTP/1.0 without
	// keep-alive): the connection ends after this response.
	Close bool
}

// Response is one answer ready to write.
type Response struct {
	Status     int
	Body       []byte
	RetryAfter bool
	Close      bool
}

// readRequest parses one request off the wire. It returns io.EOF only
// for a clean close between requests; an EOF mid-request surfaces as a
// malformed-request error. Timeout errors pass through for the caller
// to classify against the slowloris deadline.
func readRequest(br *bufio.Reader) (*Request, error) {
	line, err := readLine(br)
	if err != nil {
		return nil, err
	}
	method, rest, ok := strings.Cut(line, " ")
	target, proto, ok2 := strings.Cut(rest, " ")
	if !ok || !ok2 || method == "" || target == "" ||
		(proto != "HTTP/1.1" && proto != "HTTP/1.0") {
		return nil, errMalformed
	}
	// Control bytes never belong in a request line. The space Cuts above
	// only split on SP, so a bare CR (or NUL, tab, DEL...) would otherwise
	// ride straight into Path — and from there into anything that
	// re-serializes the request, a classic request-splitting vector. And
	// only origin-form targets are served, which also guarantees Path is
	// never empty (a target of just "?query" would otherwise slip by).
	if hasCTL(method) || hasCTL(target) || target[0] != '/' {
		return nil, errMalformed
	}
	req := &Request{Method: method, Close: proto == "HTTP/1.0"}
	path, rawQuery, _ := strings.Cut(target, "?")
	req.Path = path
	req.Query = url.Values{}
	if rawQuery != "" {
		q, err := url.ParseQuery(rawQuery)
		if err != nil {
			return nil, errMalformed
		}
		req.Query = q
	}
	for i := 0; ; i++ {
		if i > maxHeaderLines {
			return nil, errMalformed
		}
		h, err := readLine(br)
		if err != nil {
			if err == io.EOF {
				return nil, errMalformed // EOF inside the header block
			}
			return nil, err
		}
		if h == "" {
			return req, nil
		}
		key, value, ok := strings.Cut(h, ":")
		if !ok {
			return nil, errMalformed
		}
		value = strings.TrimSpace(value)
		switch strings.ToLower(key) {
		case "connection":
			switch strings.ToLower(value) {
			case "close":
				req.Close = true
			case "keep-alive":
				req.Close = false
			}
		case "content-length":
			if value != "" && value != "0" {
				return nil, errMalformed // bodies are not accepted
			}
		case "transfer-encoding":
			return nil, errMalformed
		}
	}
}

// hasCTL reports whether s contains an ASCII control byte (including
// DEL). Multi-byte UTF-8 sequences pass: every byte of those is >= 0x80.
func hasCTL(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < 0x20 || s[i] == 0x7f {
			return true
		}
	}
	return false
}

// readLine reads one CRLF- (or LF-) terminated line, bounded by
// maxLineBytes regardless of how much the client pushes.
func readLine(br *bufio.Reader) (string, error) {
	var buf []byte
	for {
		frag, err := br.ReadSlice('\n')
		buf = append(buf, frag...)
		if err == nil {
			break
		}
		if err == bufio.ErrBufferFull {
			if len(buf) > maxLineBytes {
				return "", errLineTooLong
			}
			continue
		}
		if err == io.EOF && len(buf) > 0 {
			return "", errMalformed // line cut off mid-flight
		}
		return "", err
	}
	if len(buf) > maxLineBytes {
		return "", errLineTooLong
	}
	return strings.TrimRight(string(buf), "\r\n"), nil
}

func statusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 400:
		return "Bad Request"
	case 403:
		return "Forbidden"
	case 404:
		return "Not Found"
	case 405:
		return "Method Not Allowed"
	case 409:
		return "Conflict"
	case 429:
		return "Too Many Requests"
	case 500:
		return "Internal Server Error"
	case 502:
		return "Bad Gateway"
	case 503:
		return "Service Unavailable"
	case 504:
		return "Gateway Timeout"
	}
	return "Status"
}

// appendResponse serializes r into buf. No Date header: responses are
// byte-reproducible for the determinism contracts the repo keeps.
func appendResponse(buf *bytes.Buffer, r Response, retryAfterSecs int) {
	fmt.Fprintf(buf, "HTTP/1.1 %d %s\r\n", r.Status, statusText(r.Status))
	buf.WriteString("Content-Type: application/json\r\n")
	fmt.Fprintf(buf, "Content-Length: %d\r\n", len(r.Body))
	if r.RetryAfter {
		fmt.Fprintf(buf, "Retry-After: %d\r\n", retryAfterSecs)
	}
	if r.Close {
		buf.WriteString("Connection: close\r\n")
	}
	buf.WriteString("\r\n")
	buf.Write(r.Body)
}

// JSONResponse marshals v as the response body.
func JSONResponse(status int, v any) Response {
	b, err := json.Marshal(v)
	if err != nil {
		return ErrorResponse(500, "response encoding failure")
	}
	return Response{Status: status, Body: b}
}

// ErrorResponse is a JSON error envelope. 400s close the connection:
// after a malformed request the read position is untrustworthy. Every
// unavailability answer (429 by its caller, 503/504 here) carries
// Retry-After so clients always get a back-off hint — the loading,
// draining, and degraded paths included, not just queue shedding.
func ErrorResponse(status int, msg string) Response {
	b, _ := json.Marshal(errorBody{Error: msg})
	return Response{
		Status:     status,
		Body:       b,
		Close:      status == 400,
		RetryAfter: status == 503 || status == 504,
	}
}
