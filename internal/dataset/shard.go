package dataset

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// This file implements the on-disk shard format that lets a snapshot be
// produced and consumed without ever materializing it in memory.
//
// A shard is an ordinary snapshot JSONL stream with two extra
// guarantees and one extra line:
//
//   - domain lines are sorted by domain name and IP lines by address
//     key, each section internally duplicate-free;
//   - the final line is a footer recording the domain range and the
//     record counts, so a merge can cheaply validate shard integrity and
//     plan without scanning.
//
// Shards are named <base>.shard-NNNN[.gz suffix preserved], e.g.
// "run.jsonl.gz" spills to "run.shard-0000.jsonl.gz". dataset.Merge
// k-way-merges any number of shards back into the canonical snapshot
// file, byte-identical to Snapshot.WriteTo of the equivalent in-memory
// snapshot.

// ShardFooter is the last JSONL line of a shard file.
type ShardFooter struct {
	// Seq is the shard's sequence number within its ShardSet. Merge
	// resolves cross-shard duplicate keys toward the highest sequence
	// number (last-write-wins, matching journal replay semantics).
	Seq int `json:"seq"`
	// FirstDomain and LastDomain bound the shard's domain range; empty
	// when the shard carries no domains.
	FirstDomain string `json:"first_domain,omitempty"`
	LastDomain  string `json:"last_domain,omitempty"`
	// Domains and IPs count the records in each section.
	Domains int `json:"domains"`
	IPs     int `json:"ips"`
}

// ParseShardFooter decodes one JSONL line and returns its footer.
// It errors when the line is not a well-formed footer line.
func ParseShardFooter(line []byte) (*ShardFooter, error) {
	var l jsonLine
	if err := json.Unmarshal(line, &l); err != nil {
		return nil, fmt.Errorf("dataset: footer: %w", err)
	}
	if l.Kind != "footer" || l.Footer == nil {
		return nil, fmt.Errorf("dataset: footer: line has kind %q", l.Kind)
	}
	f := l.Footer
	if f.Domains < 0 || f.IPs < 0 || f.Seq < 0 {
		return nil, fmt.Errorf("dataset: footer: negative counts")
	}
	if (f.Domains == 0) != (f.FirstDomain == "" && f.LastDomain == "") {
		return nil, fmt.Errorf("dataset: footer: domain range disagrees with count")
	}
	if f.FirstDomain > f.LastDomain {
		return nil, fmt.Errorf("dataset: footer: inverted domain range")
	}
	return f, nil
}

// ShardPath names shard seq of the snapshot that would live at base:
// the shard number is spliced in before the ".jsonl[.gz]" extension.
func ShardPath(base string, seq int) string {
	ext := ""
	rest := base
	for _, e := range []string{".gz", ".jsonl"} {
		if strings.HasSuffix(rest, e) {
			ext = e + ext
			rest = strings.TrimSuffix(rest, e)
		}
	}
	return fmt.Sprintf("%s.shard-%04d%s", rest, seq, ext)
}

// parseShardSeq recovers the sequence number ShardPath embedded in a
// shard file name.
func parseShardSeq(path string) (int, bool) {
	i := strings.LastIndex(path, ".shard-")
	if i < 0 {
		return 0, false
	}
	digits := path[i+len(".shard-"):]
	if j := strings.IndexByte(digits, '.'); j >= 0 {
		digits = digits[:j]
	}
	if digits == "" {
		return 0, false
	}
	seq := 0
	for _, c := range digits {
		if c < '0' || c > '9' {
			return 0, false
		}
		seq = seq*10 + int(c-'0')
	}
	return seq, true
}

// ShardSet coordinates shard production for one output snapshot across
// any number of concurrent ShardWriters: it hands out globally unique
// shard sequence numbers and remembers every path written so the caller
// can merge and then clean up.
type ShardSet struct {
	// Base is the final snapshot path shards are derived from.
	Base string
	// Date and Corpus stamp every shard's header line.
	Date, Corpus string
	// MaxBuffered caps the records a ShardWriter holds in memory before
	// spilling a shard (default 65536).
	MaxBuffered int

	seq   atomic.Int64
	mu    sync.Mutex
	paths []string
}

// NewShardSet prepares a shard set for the snapshot at base.
func NewShardSet(base, date, corpus string) *ShardSet {
	return &ShardSet{Base: base, Date: date, Corpus: corpus, MaxBuffered: 65536}
}

// Paths returns every shard file written so far, ordered by shard
// sequence number.
func (ss *ShardSet) Paths() []string {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	out := make([]string, len(ss.paths))
	copy(out, ss.paths)
	sort.Slice(out, func(i, j int) bool {
		si, _ := parseShardSeq(out[i])
		sj, _ := parseShardSeq(out[j])
		if si != sj {
			return si < sj
		}
		return out[i] < out[j]
	})
	return out
}

// Remove deletes every shard file written by the set. Best-effort: the
// first error is returned but removal continues.
func (ss *ShardSet) Remove() error {
	var first error
	for _, p := range ss.Paths() {
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) && first == nil {
			first = err
		}
	}
	return first
}

func (ss *ShardSet) record(path string) {
	ss.mu.Lock()
	ss.paths = append(ss.paths, path)
	ss.mu.Unlock()
}

// NewWriter creates a ShardWriter feeding this set. Each concurrent
// producer (collection worker) owns exactly one writer; writers must not
// be shared across goroutines.
func (ss *ShardSet) NewWriter() *ShardWriter {
	max := ss.MaxBuffered
	if max <= 0 {
		max = 65536
	}
	return &ShardWriter{set: ss, max: max}
}

// ShardWriter buffers records up to the set's spill threshold and writes
// each full buffer out as one sorted shard file. Not safe for concurrent
// use; create one writer per producer goroutine.
type ShardWriter struct {
	set     *ShardSet
	max     int
	domains []DomainRecord
	ips     []IPInfo
	// Shards counts the shard files this writer has spilled.
	Shards int
}

// AddDomain buffers one domain record, spilling a shard when the buffer
// is full.
func (w *ShardWriter) AddDomain(d DomainRecord) error {
	w.domains = append(w.domains, d)
	return w.maybeSpill()
}

// AddIP buffers one IP record, spilling a shard when the buffer is full.
func (w *ShardWriter) AddIP(info IPInfo) error {
	w.ips = append(w.ips, info)
	return w.maybeSpill()
}

func (w *ShardWriter) maybeSpill() error {
	if len(w.domains)+len(w.ips) >= w.max {
		return w.spill()
	}
	return nil
}

// Close spills any buffered records and finishes the writer. A writer
// that buffered nothing writes nothing.
func (w *ShardWriter) Close() error {
	if len(w.domains)+len(w.ips) == 0 {
		return nil
	}
	return w.spill()
}

// spill sorts the buffered records and commits them as one shard file
// via the same atomic tmp+fsync+rename path as full snapshots.
func (w *ShardWriter) spill() error {
	seq := int(w.set.seq.Add(1)) - 1
	path := ShardPath(w.set.Base, seq)

	// Stable sort: a producer may legitimately observe the same domain
	// twice (journal-resumed runs); keeping input order among equals
	// preserves last-write-wins through the merge's tie-break.
	sort.SliceStable(w.domains, func(i, j int) bool {
		return w.domains[i].Domain < w.domains[j].Domain
	})
	sort.SliceStable(w.ips, func(i, j int) bool {
		return w.ips[i].Addr.String() < w.ips[j].Addr.String()
	})

	footer := ShardFooter{Seq: seq, Domains: len(w.domains), IPs: len(w.ips)}
	if len(w.domains) > 0 {
		footer.FirstDomain = w.domains[0].Domain
		footer.LastDomain = w.domains[len(w.domains)-1].Domain
	}

	err := atomicWrite(path, func(out io.Writer) error {
		bw := bufWriterPool.Get().(*bufio.Writer)
		bw.Reset(out)
		defer func() {
			bw.Reset(io.Discard)
			bufWriterPool.Put(bw)
		}()
		enc := json.NewEncoder(bw)
		if err := enc.Encode(jsonLine{Kind: "snapshot", Header: &snapshotHeader{Date: w.set.Date, Corpus: w.set.Corpus}}); err != nil {
			return err
		}
		// Adjacent duplicates collapse here (keep the later record) so a
		// shard's sections are strictly increasing.
		nd, ni := 0, 0
		for i := range w.domains {
			if i+1 < len(w.domains) && w.domains[i+1].Domain == w.domains[i].Domain {
				continue
			}
			nd++
			if err := enc.Encode(jsonLine{Kind: "domain", Domain: &w.domains[i]}); err != nil {
				return err
			}
		}
		for i := range w.ips {
			if i+1 < len(w.ips) && w.ips[i+1].Addr == w.ips[i].Addr {
				continue
			}
			ni++
			if err := enc.Encode(jsonLine{Kind: "ip", IP: &w.ips[i]}); err != nil {
				return err
			}
		}
		footer.Domains, footer.IPs = nd, ni
		if err := enc.Encode(jsonLine{Kind: "footer", Footer: &footer}); err != nil {
			return err
		}
		return bw.Flush()
	})
	if err != nil {
		return err
	}
	w.set.record(path)
	w.Shards++
	w.domains = w.domains[:0]
	w.ips = w.ips[:0]
	return nil
}
