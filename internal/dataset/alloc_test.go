package dataset

import (
	"bytes"
	"io"
	"testing"
)

// TestWriteToAllocs guards the satellite pooling work: steady-state
// serialization must not re-allocate the bufio writer or other per-call
// buffers, so allocations stay a small per-line constant (the JSON
// encoder's own work) with no large per-call term.
func TestWriteToAllocs(t *testing.T) {
	s := buildSnapshot(200)
	// Warm the pools.
	if _, err := s.WriteTo(io.Discard); err != nil {
		t.Fatal(err)
	}
	lines := float64(len(s.Domains) + len(s.IPs) + 1)
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := s.WriteTo(io.Discard); err != nil {
			t.Fatal(err)
		}
	})
	if perLine := allocs / lines; perLine > 8 {
		t.Errorf("WriteTo allocates %.1f objects/line (%.0f total for %.0f lines); pooling regressed",
			perLine, allocs, lines)
	}
}

// TestReadAllocs guards the reader side: the scanner's line buffer must
// come from the pool, so per-call allocation is dominated by the decoded
// records themselves, not setup buffers.
func TestReadAllocs(t *testing.T) {
	var buf bytes.Buffer
	s := buildSnapshot(200)
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := Read(bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	lines := float64(len(s.Domains) + len(s.IPs) + 1)
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := Read(bytes.NewReader(data)); err != nil {
			t.Fatal(err)
		}
	})
	// Each decoded record legitimately allocates (slices, strings, map
	// entries); the guard catches a large fixed buffer sneaking back in.
	if perLine := allocs / lines; perLine > 40 {
		t.Errorf("Read allocates %.1f objects/line; buffer pooling regressed", perLine)
	}
}

// TestLongLineRead exercises the raised line limit: a record far past
// the old 16MiB bound must read back intact.
func TestLongLineRead(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates a ~20MiB record")
	}
	s := NewSnapshot("2021-06", "alexa")
	big := make([]byte, 20<<20)
	for i := range big {
		big[i] = 'a' + byte(i%26)
	}
	s.AddDomain(DomainRecord{
		Domain: "bigspf.example",
		MX:     []MXObs{{Preference: 10, Exchange: "mx.example"}},
		SPF:    "v=spf1 " + string(big),
	})
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Domains) != 1 || len(got.Domains[0].SPF) != 7+len(big) {
		t.Fatalf("long SPF record did not round-trip")
	}
}
