package dataset

// This file implements the collection write-ahead journal: an append-only
// log of completed per-domain and per-IP observations that makes a
// crashed collection run resumable. At corpus scale a collection run is
// hours of wall clock (the paper's OpenINTEL/Censys sources are built
// around durable snapshots for the same reason), so losing a run to a
// SIGKILL at 99% is unaffordable. The collector appends each record to
// the journal the moment it completes; after a crash, recovery replays
// every intact entry and the collector re-measures only what is missing.
//
// On-disk format:
//
//	offset 0: 8-byte magic "mxwaj01\n"
//	then frames, each:
//	    uint32 LE  payload length
//	    uint32 LE  CRC32C (Castagnoli) of payload
//	    payload    one JSON-encoded jsonLine (the same tagged union
//	               snapshots use: "snapshot" header, "domain", "ip")
//
// The first frame is always the header, binding the journal to one
// (corpus, date) so a resume cannot splice two different runs together.
// Frames are buffered and fsync'd every SyncEvery appends (a sync
// point); a crash loses at most the unsynced tail. Recovery stops
// cleanly at the first torn or corrupt frame — everything before it is
// trusted (CRC-verified), everything after it is discarded by
// truncating the file back to the valid prefix before appending again.

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"sync"
)

const (
	journalMagic    = "mxwaj01\n"
	frameHeaderSize = 8 // uint32 length + uint32 CRC32C
	// maxFramePayload bounds one frame, matching the snapshot reader's
	// maximum line. A torn length field cannot make recovery allocate
	// gigabytes.
	maxFramePayload = 16 << 20
	// DefaultSyncEvery is the default sync-point interval: the journal
	// fsyncs after this many appended records.
	DefaultSyncEvery = 64
)

// ErrNotJournal reports a file that does not start with the journal
// magic (for example a snapshot passed to RecoverJournal by mistake).
var ErrNotJournal = errors.New("dataset: not a journal file")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Journal is an open write-ahead journal. Appends are safe for
// concurrent use; the collector's completion callbacks serialize anyway.
type Journal struct {
	// SyncEvery is the sync-point interval in records (default
	// DefaultSyncEvery; negative disables periodic sync — Close still
	// syncs). Set before the first append.
	SyncEvery int

	mu        sync.Mutex
	f         *os.File
	bw        *bufio.Writer
	sinceSync int
	closed    bool
}

func newJournal(f *os.File) *Journal {
	return &Journal{f: f, bw: bufio.NewWriterSize(f, 1<<16)}
}

// CreateJournal starts a fresh journal at path for one (corpus, date)
// collection run: magic, then a synced header frame. It refuses to
// overwrite an existing file — a leftover journal means a previous run
// did not commit, and clobbering it would destroy the resumable state.
func CreateJournal(path, date, corpus string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		if errors.Is(err, fs.ErrExist) {
			return nil, fmt.Errorf("dataset: journal %s already exists; resume it or remove it", path)
		}
		return nil, err
	}
	j := newJournal(f)
	if err := j.start(date, corpus); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return j, nil
}

// start writes the magic and header frame and forces them to disk.
func (j *Journal) start(date, corpus string) error {
	if _, err := j.bw.WriteString(journalMagic); err != nil {
		return err
	}
	if err := j.append(jsonLine{Kind: "snapshot", Header: &snapshotHeader{Date: date, Corpus: corpus}}); err != nil {
		return err
	}
	return j.Sync()
}

// ResumeJournal reopens the journal at path for the given run: it
// recovers every intact entry, truncates the torn tail (if any) so new
// frames append after the last good one, and returns the recovery for
// the collector to skip completed work. A missing or empty file starts
// fresh. A journal written for a different (corpus, date) is an error.
func ResumeJournal(path, date, corpus string) (*Journal, *JournalRecovery, error) {
	rec, err := RecoverJournal(path)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		j, err := CreateJournal(path, date, corpus)
		if err != nil {
			return nil, nil, err
		}
		return j, &JournalRecovery{Date: date, Corpus: corpus, Seen: make(map[string]bool)}, nil
	case err != nil:
		return nil, nil, err
	}
	if rec.Snapshot != nil && (rec.Date != date || rec.Corpus != corpus) {
		return nil, nil, fmt.Errorf("dataset: journal %s holds corpus %s at %s, not %s at %s",
			path, rec.Corpus, rec.Date, corpus, date)
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return nil, nil, err
	}
	// Discard the torn tail: appending after garbage would hide every
	// later frame from the next recovery.
	if err := f.Truncate(rec.ValidBytes); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(rec.ValidBytes, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	j := newJournal(f)
	if rec.ValidBytes == 0 {
		// Empty file: a crash before the first sync point left nothing.
		if err := j.start(date, corpus); err != nil {
			f.Close()
			return nil, nil, err
		}
		rec.Date, rec.Corpus = date, corpus
		return j, rec, nil
	}
	if rec.Snapshot == nil {
		// Magic survived but the header frame did not; rewrite it.
		if err := j.append(jsonLine{Kind: "snapshot", Header: &snapshotHeader{Date: date, Corpus: corpus}}); err != nil {
			f.Close()
			return nil, nil, err
		}
		rec.Date, rec.Corpus = date, corpus
	}
	// Persist the truncation point before trusting new appends.
	if err := j.Sync(); err != nil {
		f.Close()
		return nil, nil, err
	}
	return j, rec, nil
}

// AddDomain journals one completed domain record.
func (j *Journal) AddDomain(d *DomainRecord) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.append(jsonLine{Kind: "domain", Domain: d})
}

// AddIP journals one completed IP observation.
func (j *Journal) AddIP(info *IPInfo) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.append(jsonLine{Kind: "ip", IP: info})
}

// append frames and buffers one entry, fsyncing at sync points. Callers
// hold j.mu (or are single-threaded setup paths).
func (j *Journal) append(line jsonLine) error {
	if j.closed {
		return errors.New("dataset: journal closed")
	}
	payload, err := json.Marshal(line)
	if err != nil {
		return err
	}
	if len(payload) > maxFramePayload {
		return fmt.Errorf("dataset: journal entry of %d bytes exceeds frame limit", len(payload))
	}
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	if _, err := j.bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := j.bw.Write(payload); err != nil {
		return err
	}
	j.sinceSync++
	every := j.SyncEvery
	if every == 0 {
		every = DefaultSyncEvery
	}
	if every > 0 && j.sinceSync >= every {
		return j.syncLocked()
	}
	return nil
}

// Sync flushes buffered frames and forces them to stable storage — a
// sync point: everything appended so far survives a crash.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.syncLocked()
}

func (j *Journal) syncLocked() error {
	if err := j.bw.Flush(); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.sinceSync = 0
	return nil
}

// Close syncs and closes the journal. The file is left in place: the
// caller decides whether the run committed (remove it) or crashed-ish
// (keep it for resume).
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	err := j.bw.Flush()
	if serr := j.f.Sync(); err == nil {
		err = serr
	}
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// JournalRecovery is what survived in a journal: the partial snapshot
// assembled from every intact entry plus the bookkeeping a resumed run
// needs.
type JournalRecovery struct {
	// Date and Corpus are the run identity from the header frame.
	Date, Corpus string
	// Snapshot holds the recovered records (nil when not even the
	// header frame survived). Its Domains and IPs are exactly the
	// journaled ones; duplicates resolve last-write-wins.
	Snapshot *Snapshot
	// Seen maps each domain with an intact journaled record to true —
	// the set Collector.Resume consumes.
	Seen map[string]bool
	// Entries counts intact record frames (domains + IPs, excluding the
	// header).
	Entries int
	// ValidBytes is the length of the trusted prefix: magic plus every
	// intact frame. Resume truncates the file to this length.
	ValidBytes int64
	// TotalBytes is the file size at recovery time.
	TotalBytes int64
	// Truncated reports that a torn or corrupt tail was found (and will
	// be discarded on resume).
	Truncated bool
	// Reason describes why recovery stopped before the end of the file.
	Reason string
}

// RecoverJournal reads every intact entry from the journal at path,
// stopping cleanly at the first torn or corrupt frame instead of
// erroring — a truncated journal is the expected crash artifact, not an
// exceptional condition. A zero-byte file recovers as empty; a file
// without the journal magic returns ErrNotJournal.
func RecoverJournal(path string) (*JournalRecovery, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	rec, err := recoverJournal(f, fi.Size())
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rec, nil
}

// recoverJournal is the reader core, separated from the file so the
// fuzz target can drive it with arbitrary bytes.
func recoverJournal(r io.Reader, total int64) (*JournalRecovery, error) {
	rec := &JournalRecovery{Seen: make(map[string]bool), TotalBytes: total}
	if total == 0 {
		return rec, nil
	}
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, len(journalMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != journalMagic {
		return nil, ErrNotJournal
	}
	rec.ValidBytes = int64(len(journalMagic))

	stop := func(format string, args ...any) {
		rec.Reason = fmt.Sprintf(format, args...)
	}
	domainIdx := make(map[string]int)
	hdr := make([]byte, frameHeaderSize)
frames:
	for {
		if _, err := io.ReadFull(br, hdr); err != nil {
			if err != io.EOF {
				stop("torn frame header at offset %d", rec.ValidBytes)
			}
			break
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if length == 0 || length > maxFramePayload {
			stop("implausible frame length %d at offset %d", length, rec.ValidBytes)
			break
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(br, payload); err != nil {
			stop("torn frame payload at offset %d", rec.ValidBytes)
			break
		}
		if got := crc32.Checksum(payload, crcTable); got != want {
			stop("CRC mismatch at offset %d", rec.ValidBytes)
			break
		}
		var line jsonLine
		if err := json.Unmarshal(payload, &line); err != nil {
			stop("malformed entry at offset %d: %v", rec.ValidBytes, err)
			break
		}
		switch line.Kind {
		case "snapshot":
			if rec.Snapshot != nil || line.Header == nil {
				stop("misplaced header frame at offset %d", rec.ValidBytes)
				break frames
			}
			rec.Date, rec.Corpus = line.Header.Date, line.Header.Corpus
			rec.Snapshot = NewSnapshot(line.Header.Date, line.Header.Corpus)
		case "domain":
			if rec.Snapshot == nil || line.Domain == nil {
				stop("domain entry before header at offset %d", rec.ValidBytes)
				break frames
			}
			// Last-write-wins: a domain re-collected after a resume
			// replaces its earlier journaled record.
			if i, ok := domainIdx[line.Domain.Domain]; ok {
				rec.Snapshot.Domains[i] = *line.Domain
			} else {
				domainIdx[line.Domain.Domain] = len(rec.Snapshot.Domains)
				rec.Snapshot.AddDomain(*line.Domain)
			}
			rec.Seen[line.Domain.Domain] = true
			rec.Entries++
		case "ip":
			if rec.Snapshot == nil || line.IP == nil {
				stop("ip entry before header at offset %d", rec.ValidBytes)
				break frames
			}
			rec.Snapshot.AddIP(*line.IP)
			rec.Entries++
		default:
			stop("unknown entry kind %q at offset %d", line.Kind, rec.ValidBytes)
			break frames
		}
		rec.ValidBytes += frameHeaderSize + int64(length)
	}
	rec.Truncated = rec.ValidBytes < total
	return rec, nil
}
