package dataset

import (
	"encoding/binary"
	"net/netip"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// writeSampleJournal journals the sample snapshot's records and returns
// the path.
func writeSampleJournal(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.waj")
	j, err := CreateJournal(path, "2021-06", "alexa")
	if err != nil {
		t.Fatal(err)
	}
	s := sampleSnapshot()
	for i := range s.Domains {
		if err := j.AddDomain(&s.Domains[i]); err != nil {
			t.Fatal(err)
		}
	}
	for _, key := range []string{"172.217.0.26", "172.217.0.27"} {
		info := s.IPs[key]
		if err := j.AddIP(&info); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestJournalRoundTrip(t *testing.T) {
	path := writeSampleJournal(t)
	rec, err := RecoverJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Truncated {
		t.Errorf("clean journal reported truncated: %s", rec.Reason)
	}
	if rec.Date != "2021-06" || rec.Corpus != "alexa" {
		t.Errorf("header = %s/%s", rec.Corpus, rec.Date)
	}
	if rec.Entries != 4 {
		t.Errorf("entries = %d, want 4", rec.Entries)
	}
	want := sampleSnapshot()
	if !reflect.DeepEqual(rec.Snapshot.Domains, want.Domains) {
		t.Errorf("domains differ after recovery")
	}
	if !reflect.DeepEqual(rec.Snapshot.IPs, want.IPs) {
		t.Errorf("ips differ after recovery")
	}
	if !rec.Seen["netflix.example"] || !rec.Seen["noip.example"] || len(rec.Seen) != 2 {
		t.Errorf("seen = %v", rec.Seen)
	}
	if fi, _ := os.Stat(path); rec.ValidBytes != fi.Size() {
		t.Errorf("ValidBytes = %d, file is %d", rec.ValidBytes, fi.Size())
	}
}

func TestJournalEmptyVariants(t *testing.T) {
	dir := t.TempDir()

	// Header-only journal: nothing collected yet, nothing torn.
	path := filepath.Join(dir, "header-only.waj")
	j, err := CreateJournal(path, "2021-06", "com")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := RecoverJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Entries != 0 || rec.Truncated || rec.Snapshot == nil || len(rec.Snapshot.Domains) != 0 {
		t.Errorf("header-only recovery = %+v", rec)
	}

	// Zero-byte file: recovers as empty, and ResumeJournal restarts it.
	empty := filepath.Join(dir, "empty.waj")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err = RecoverJournal(empty)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Entries != 0 || rec.Snapshot != nil || rec.Truncated {
		t.Errorf("zero-byte recovery = %+v", rec)
	}
	j2, rec2, err := ResumeJournal(empty, "2021-06", "com")
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	if rec2.Entries != 0 {
		t.Errorf("resume of empty file recovered %d entries", rec2.Entries)
	}
	if rec3, err := RecoverJournal(empty); err != nil || rec3.Snapshot == nil {
		t.Errorf("restarted empty journal not recoverable: %v %+v", err, rec3)
	}

	// Magic-only file (crash between magic and header sync).
	magicOnly := filepath.Join(dir, "magic-only.waj")
	if err := os.WriteFile(magicOnly, []byte(journalMagic), 0o644); err != nil {
		t.Fatal(err)
	}
	j3, rec4, err := ResumeJournal(magicOnly, "2021-06", "com")
	if err != nil {
		t.Fatal(err)
	}
	if err := j3.Close(); err != nil {
		t.Fatal(err)
	}
	if rec4.Entries != 0 || rec4.Date != "2021-06" {
		t.Errorf("magic-only resume = %+v", rec4)
	}
	if rec5, err := RecoverJournal(magicOnly); err != nil || rec5.Snapshot == nil || rec5.Truncated {
		t.Errorf("header not rewritten after magic-only resume: %v %+v", err, rec5)
	}

	// Missing file: ResumeJournal starts fresh.
	missing := filepath.Join(dir, "missing.waj")
	j4, rec6, err := ResumeJournal(missing, "2021-06", "com")
	if err != nil {
		t.Fatal(err)
	}
	if err := j4.Close(); err != nil {
		t.Fatal(err)
	}
	if rec6.Entries != 0 || len(rec6.Seen) != 0 {
		t.Errorf("missing-file resume = %+v", rec6)
	}
}

func TestJournalTornFinalFrame(t *testing.T) {
	path := writeSampleJournal(t)
	full, err := RecoverJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last frame: cut 3 bytes off the end.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err := RecoverJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Truncated {
		t.Fatal("torn journal not reported truncated")
	}
	if rec.Entries != full.Entries-1 {
		t.Errorf("entries = %d, want %d (last frame dropped)", rec.Entries, full.Entries-1)
	}
	if !strings.Contains(rec.Reason, "torn frame") {
		t.Errorf("reason = %q", rec.Reason)
	}

	// Resume truncates the tear and appends cleanly after it.
	j, rec2, err := ResumeJournal(path, "2021-06", "alexa")
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Entries != rec.Entries {
		t.Errorf("resume recovered %d entries, want %d", rec2.Entries, rec.Entries)
	}
	lost := sampleSnapshot().IPs["172.217.0.27"]
	if err := j.AddIP(&lost); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	rec3, err := RecoverJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if rec3.Truncated || rec3.Entries != full.Entries {
		t.Errorf("after resume+append: truncated=%v entries=%d, want clean %d",
			rec3.Truncated, rec3.Entries, full.Entries)
	}
	if !reflect.DeepEqual(rec3.Snapshot.IPs, sampleSnapshot().IPs) {
		t.Error("re-journaled IP record differs")
	}
}

func TestJournalCorruptCRCMidFile(t *testing.T) {
	path := writeSampleJournal(t)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Locate the second frame (after magic + header frame) and flip a
	// payload byte: recovery must keep the header, drop everything from
	// the corrupt frame on.
	off := int64(len(journalMagic))
	frame0 := binary.LittleEndian.Uint32(raw[off : off+4])
	second := off + frameHeaderSize + int64(frame0)
	raw[second+frameHeaderSize+5] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err := RecoverJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Truncated || !strings.Contains(rec.Reason, "CRC mismatch") {
		t.Errorf("truncated=%v reason=%q, want CRC mismatch", rec.Truncated, rec.Reason)
	}
	if rec.Entries != 0 || rec.Snapshot == nil {
		t.Errorf("entries=%d snapshot=%v, want 0 entries with header intact", rec.Entries, rec.Snapshot != nil)
	}
	if rec.ValidBytes != second {
		t.Errorf("ValidBytes = %d, want %d (end of header frame)", rec.ValidBytes, second)
	}
}

func TestJournalDuplicateDomainLastWriteWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dup.waj")
	j, err := CreateJournal(path, "2021-06", "alexa")
	if err != nil {
		t.Fatal(err)
	}
	first := DomainRecord{Domain: "dup.example", Rank: 1,
		MX: []MXObs{{Preference: 10, Exchange: "old.example"}}}
	second := DomainRecord{Domain: "dup.example", Rank: 1,
		MX: []MXObs{{Preference: 10, Exchange: "new.example",
			Addrs: []netip.Addr{netip.MustParseAddr("192.0.2.1")}}}}
	other := DomainRecord{Domain: "other.example"}
	for _, d := range []DomainRecord{first, other, second} {
		d := d
		if err := j.AddDomain(&d); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := RecoverJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Snapshot.Domains) != 2 {
		t.Fatalf("domains = %d, want 2 (duplicate collapsed)", len(rec.Snapshot.Domains))
	}
	got := rec.Snapshot.Domains[0]
	if got.Domain != "dup.example" || got.MX[0].Exchange != "new.example" {
		t.Errorf("duplicate resolution kept %+v, want the later record", got)
	}
	if !rec.Seen["dup.example"] || !rec.Seen["other.example"] {
		t.Errorf("seen = %v", rec.Seen)
	}
}

func TestJournalGuards(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.waj")
	j, err := CreateJournal(path, "2021-06", "alexa")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// A second CreateJournal must refuse to clobber resumable state.
	if _, err := CreateJournal(path, "2021-06", "alexa"); err == nil {
		t.Error("CreateJournal clobbered an existing journal")
	}

	// Resuming under a different run identity is an error.
	if _, _, err := ResumeJournal(path, "2021-12", "alexa"); err == nil {
		t.Error("resume accepted a journal from a different date")
	}
	if _, _, err := ResumeJournal(path, "2021-06", "com"); err == nil {
		t.Error("resume accepted a journal from a different corpus")
	}

	// A non-journal file is rejected, not misparsed.
	snap := filepath.Join(dir, "snap.jsonl")
	if err := WriteFile(snap, sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	if _, err := RecoverJournal(snap); err == nil {
		t.Error("RecoverJournal accepted a snapshot file")
	}

	// Appending to a closed journal fails.
	d := DomainRecord{Domain: "late.example"}
	if err := j.AddDomain(&d); err == nil {
		t.Error("append to closed journal succeeded")
	}
}

func TestJournalSyncEvery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sync.waj")
	j, err := CreateJournal(path, "2021-06", "alexa")
	if err != nil {
		t.Fatal(err)
	}
	j.SyncEvery = 2
	// Three appends: the first two hit a sync point and must be on disk
	// even though the journal is never closed (simulating SIGKILL).
	for i, name := range []string{"a.example", "b.example", "c.example"} {
		d := DomainRecord{Domain: name, Rank: i + 1}
		if err := j.AddDomain(&d); err != nil {
			t.Fatal(err)
		}
	}
	// Do NOT close: read the file as-is.
	rec, err := RecoverJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Entries < 2 {
		t.Errorf("entries on disk = %d, want >= 2 (sync point at 2)", rec.Entries)
	}
	if !rec.Seen["a.example"] || !rec.Seen["b.example"] {
		t.Errorf("synced entries missing: %v", rec.Seen)
	}
	j.Close()
}
