package dataset

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// buildSnapshot makes a deterministic n-domain snapshot with a smaller
// set of shared IPs, shaped like a provider-concentrated corpus.
func buildSnapshot(n int) *Snapshot {
	s := NewSnapshot("2021-06", "alexa")
	for i := 0; i < n; i++ {
		a := netip.AddrFrom4([4]byte{10, 0, byte(i % 7), 1})
		s.AddDomain(DomainRecord{
			Domain: fmt.Sprintf("d%05d.example", i),
			Rank:   i + 1,
			MX: []MXObs{
				{Preference: 10, Exchange: fmt.Sprintf("mx%d.prov.example", i%7), Addrs: []netip.Addr{a}},
			},
		})
	}
	for i := 0; i < 7; i++ {
		s.AddIP(IPInfo{
			Addr: netip.AddrFrom4([4]byte{10, 0, byte(i), 1}),
			ASN:  65000, ASName: "PROV", HasCensys: true, Port25Open: true,
			Scan: &ScanInfo{BannerHost: "mx.prov.example", EHLOHost: "mx.prov.example"},
		})
	}
	s.SortDomains()
	return s
}

// snapshotBytes is the canonical serialized form.
func snapshotBytes(t *testing.T, s *Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// shardOut spreads the snapshot's records across nw concurrent shard
// writers (striped like collection workers would) and returns the set.
func shardOut(t *testing.T, s *Snapshot, base string, nw, maxBuffered int) *ShardSet {
	t.Helper()
	set := NewShardSet(base, s.Date, s.Corpus)
	set.MaxBuffered = maxBuffered
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sw := set.NewWriter()
			for i := w; i < len(s.Domains); i += nw {
				if err := sw.AddDomain(s.Domains[i]); err != nil {
					t.Error(err)
					return
				}
			}
			i := 0
			for _, k := range s.Index().SortedIPKeys {
				if i%nw == w {
					if err := sw.AddIP(s.IPs[k]); err != nil {
						t.Error(err)
						return
					}
				}
				i++
			}
			if err := sw.Close(); err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()
	return set
}

func TestShardMergeByteIdentical(t *testing.T) {
	dir := t.TempDir()
	for _, ext := range []string{".jsonl", ".jsonl.gz"} {
		s := buildSnapshot(100)
		base := filepath.Join(dir, "snap"+ext)
		set := shardOut(t, s, base, 3, 16)
		if got := len(set.Paths()); got < 3 {
			t.Fatalf("expected several shards, got %d", got)
		}
		stats, err := Merge(base, set.Paths())
		if err != nil {
			t.Fatal(err)
		}
		if stats.Domains != 100 || stats.IPs != 7 || stats.DupDomains != 0 {
			t.Errorf("stats = %+v", stats)
		}
		if err := WriteFile(filepath.Join(dir, "direct"+ext), s); err != nil {
			t.Fatal(err)
		}
		merged, err := os.ReadFile(base)
		if err != nil {
			t.Fatal(err)
		}
		want, err := os.ReadFile(filepath.Join(dir, "direct"+ext))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(merged, want) {
			t.Fatalf("%s: merged output differs from in-memory WriteFile (%d vs %d bytes)", ext, len(merged), len(want))
		}
		if err := set.Remove(); err != nil {
			t.Fatal(err)
		}
		for _, p := range set.Paths() {
			if _, err := os.Stat(p); !os.IsNotExist(err) {
				t.Errorf("shard %s not removed", p)
			}
		}
	}
}

func TestMergeSingleShardFastPath(t *testing.T) {
	dir := t.TempDir()
	s := buildSnapshot(30)
	base := filepath.Join(dir, "snap.jsonl")
	set := shardOut(t, s, base, 1, 1<<20) // one writer, no spill until Close
	if got := len(set.Paths()); got != 1 {
		t.Fatalf("expected one shard, got %d", got)
	}
	if _, err := Merge(base, set.Paths()); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, snapshotBytes(t, s)) {
		t.Fatal("single-shard merge differs from WriteTo")
	}
}

// writeRawShard hand-builds a shard file from JSONL lines.
func writeRawShard(t *testing.T, path string, lines ...jsonLine) {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, l := range lines {
		if err := enc.Encode(l); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

func hdr() *snapshotHeader { return &snapshotHeader{Date: "2021-06", Corpus: "alexa"} }

func TestMergeEmptyShards(t *testing.T) {
	dir := t.TempDir()
	empty0 := filepath.Join(dir, "x.shard-0000.jsonl")
	empty1 := filepath.Join(dir, "x.shard-0001.jsonl")
	full := filepath.Join(dir, "x.shard-0002.jsonl")
	writeRawShard(t, empty0, jsonLine{Kind: "snapshot", Header: hdr()},
		jsonLine{Kind: "footer", Footer: &ShardFooter{Seq: 0}})
	writeRawShard(t, empty1, jsonLine{Kind: "snapshot", Header: hdr()},
		jsonLine{Kind: "footer", Footer: &ShardFooter{Seq: 1}})
	d := DomainRecord{Domain: "only.example", MX: []MXObs{{Preference: 10, Exchange: "mx.example"}}}
	writeRawShard(t, full, jsonLine{Kind: "snapshot", Header: hdr()},
		jsonLine{Kind: "domain", Domain: &d},
		jsonLine{Kind: "footer", Footer: &ShardFooter{Seq: 2, FirstDomain: "only.example", LastDomain: "only.example", Domains: 1}})

	out := filepath.Join(dir, "x.jsonl")
	stats, err := Merge(out, []string{empty0, empty1, full})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Domains != 1 || stats.IPs != 0 {
		t.Errorf("stats = %+v", stats)
	}
	got, err := ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Domains) != 1 || got.Domains[0].Domain != "only.example" {
		t.Errorf("merged snapshot = %+v", got.Domains)
	}

	// All-empty merge yields a valid empty snapshot.
	out2 := filepath.Join(dir, "y.jsonl")
	if _, err := Merge(out2, []string{empty0, empty1}); err != nil {
		t.Fatal(err)
	}
	got2, err := ReadFile(out2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got2.Domains) != 0 || len(got2.IPs) != 0 || got2.Corpus != "alexa" {
		t.Errorf("empty merge = %+v", got2)
	}
}

func TestMergeDuplicatesLastWriteWins(t *testing.T) {
	dir := t.TempDir()
	s0 := filepath.Join(dir, "x.shard-0000.jsonl")
	s1 := filepath.Join(dir, "x.shard-0001.jsonl")
	oldRec := DomainRecord{Domain: "dup.example", Rank: 1, MX: []MXObs{{Preference: 10, Exchange: "old.example"}}}
	newRec := DomainRecord{Domain: "dup.example", Rank: 2, MX: []MXObs{{Preference: 10, Exchange: "new.example"}}}
	oldIP := IPInfo{Addr: addr("10.0.0.1"), ASName: "OLD"}
	newIP := IPInfo{Addr: addr("10.0.0.1"), ASName: "NEW", HasCensys: true}
	writeRawShard(t, s0, jsonLine{Kind: "snapshot", Header: hdr()},
		jsonLine{Kind: "domain", Domain: &oldRec},
		jsonLine{Kind: "ip", IP: &oldIP},
		jsonLine{Kind: "footer", Footer: &ShardFooter{Seq: 0, FirstDomain: "dup.example", LastDomain: "dup.example", Domains: 1, IPs: 1}})
	writeRawShard(t, s1, jsonLine{Kind: "snapshot", Header: hdr()},
		jsonLine{Kind: "domain", Domain: &newRec},
		jsonLine{Kind: "ip", IP: &newIP},
		jsonLine{Kind: "footer", Footer: &ShardFooter{Seq: 1, FirstDomain: "dup.example", LastDomain: "dup.example", Domains: 1, IPs: 1}})

	out := filepath.Join(dir, "x.jsonl")
	// Argument order must not matter: the shard sequence number decides.
	stats, err := Merge(out, []string{s1, s0})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Domains != 1 || stats.DupDomains != 1 || stats.IPs != 1 || stats.DupIPs != 1 {
		t.Errorf("stats = %+v", stats)
	}
	got, err := ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if got.Domains[0].Rank != 2 || got.Domains[0].MX[0].Exchange != "new.example" {
		t.Errorf("domain did not resolve last-write-wins: %+v", got.Domains[0])
	}
	if info := got.IPs["10.0.0.1"]; info.ASName != "NEW" {
		t.Errorf("ip did not resolve last-write-wins: %+v", info)
	}
}

func TestMergeRejectsBadShards(t *testing.T) {
	dir := t.TempDir()
	d1 := DomainRecord{Domain: "b.example", MX: []MXObs{{Preference: 10, Exchange: "mx.example"}}}
	d2 := DomainRecord{Domain: "a.example", MX: []MXObs{{Preference: 10, Exchange: "mx.example"}}}

	cases := []struct {
		name  string
		lines []jsonLine
		want  string
	}{
		{"out of order", []jsonLine{
			{Kind: "snapshot", Header: hdr()},
			{Kind: "domain", Domain: &d1},
			{Kind: "domain", Domain: &d2},
			{Kind: "footer", Footer: &ShardFooter{FirstDomain: "a.example", LastDomain: "b.example", Domains: 2}},
		}, "out of order"},
		{"count mismatch", []jsonLine{
			{Kind: "snapshot", Header: hdr()},
			{Kind: "domain", Domain: &d1},
			{Kind: "footer", Footer: &ShardFooter{FirstDomain: "b.example", LastDomain: "b.example", Domains: 2}},
		}, "disagree"},
		{"missing footer", []jsonLine{
			{Kind: "snapshot", Header: hdr()},
			{Kind: "domain", Domain: &d1},
		}, "no footer"},
		{"no header", []jsonLine{
			{Kind: "domain", Domain: &d1},
		}, "header"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := filepath.Join(dir, strings.ReplaceAll(tc.name, " ", "-")+".jsonl")
			writeRawShard(t, p, tc.lines...)
			_, err := Merge(filepath.Join(dir, "out.jsonl"), []string{p})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}

	// Header disagreement across shards.
	p1 := filepath.Join(dir, "h.shard-0000.jsonl")
	p2 := filepath.Join(dir, "h.shard-0001.jsonl")
	writeRawShard(t, p1, jsonLine{Kind: "snapshot", Header: hdr()}, jsonLine{Kind: "footer", Footer: &ShardFooter{}})
	writeRawShard(t, p2, jsonLine{Kind: "snapshot", Header: &snapshotHeader{Date: "2019-06", Corpus: "alexa"}},
		jsonLine{Kind: "footer", Footer: &ShardFooter{Seq: 1}})
	if _, err := Merge(filepath.Join(dir, "h.jsonl"), []string{p1, p2}); err == nil || !strings.Contains(err.Error(), "disagrees") {
		t.Fatalf("header mismatch not rejected: %v", err)
	}
}

func TestShardPathRoundTrip(t *testing.T) {
	cases := []struct {
		base string
		seq  int
		want string
	}{
		{"run.jsonl.gz", 0, "run.shard-0000.jsonl.gz"},
		{"run.jsonl", 12, "run.shard-0012.jsonl"},
		{"run", 3, "run.shard-0003"},
		{"/tmp/a/run.jsonl.gz", 9999, "/tmp/a/run.shard-9999.jsonl.gz"},
	}
	for _, tc := range cases {
		got := ShardPath(tc.base, tc.seq)
		if got != tc.want {
			t.Errorf("ShardPath(%q, %d) = %q, want %q", tc.base, tc.seq, got, tc.want)
		}
		seq, ok := parseShardSeq(got)
		if !ok || seq != tc.seq {
			t.Errorf("parseShardSeq(%q) = %d, %v", got, seq, ok)
		}
	}
	if _, ok := parseShardSeq("run.jsonl"); ok {
		t.Error("parseShardSeq accepted a shardless path")
	}
}

func TestStreamForEach(t *testing.T) {
	dir := t.TempDir()
	s := buildSnapshot(50)
	path := filepath.Join(dir, "snap.jsonl.gz")
	if err := WriteFile(path, s); err != nil {
		t.Fatal(err)
	}
	st, err := OpenStream(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Date != "2021-06" || st.Corpus != "alexa" {
		t.Errorf("stream header = %s/%s", st.Date, st.Corpus)
	}

	var domains []DomainRecord
	var ips []IPInfo
	err = st.ForEach(
		func(d *DomainRecord) error { domains = append(domains, *d); return nil },
		func(info *IPInfo) error { ips = append(ips, *info); return nil },
	)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(domains, s.Domains) {
		t.Error("streamed domains differ from materialized snapshot")
	}
	if len(ips) != len(s.IPs) {
		t.Errorf("streamed %d ips, want %d", len(ips), len(s.IPs))
	}

	// ErrStop ends the pass without error.
	n := 0
	err = st.ForEach(func(*DomainRecord) error {
		n++
		if n == 10 {
			return ErrStop
		}
		return nil
	}, nil)
	if err != nil || n != 10 {
		t.Errorf("ErrStop pass: n=%d err=%v", n, err)
	}

	nd, ni, err := st.Counts()
	if err != nil || nd != 50 || ni != 7 {
		t.Errorf("Counts = %d, %d, %v", nd, ni, err)
	}

	ipsMap, err := st.LoadIPs()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ipsMap, s.IPs) {
		t.Error("LoadIPs differs from materialized snapshot")
	}
}

func TestStreamHealthAndBreakdown(t *testing.T) {
	dir := t.TempDir()
	s := buildSnapshot(40)
	path := filepath.Join(dir, "snap.jsonl")
	if err := WriteFile(path, s); err != nil {
		t.Fatal(err)
	}
	// Compare against a snapshot loaded from the same file: serialization
	// strips the in-memory failure classes, which is the contract.
	loaded, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	st, err := OpenStream(path)
	if err != nil {
		t.Fatal(err)
	}
	gotH, err := st.Health()
	if err != nil {
		t.Fatal(err)
	}
	wantH := loaded.Health()
	if !reflect.DeepEqual(gotH, wantH) {
		t.Errorf("stream health = %+v, want %+v", gotH, wantH)
	}
	// The fleet -health path streams the merged file and folds the run's
	// CollectionStats into the summary afterward; the result must equal
	// the materialized path's Health() on a snapshot carrying the same
	// stats, so both sidecars agree field for field.
	loaded.Stats = CollectionStats{DNSRetries: 3, ScanRetries: 1, BreakerOpens: 2, BreakerSkips: 4}
	gotH.Stats = loaded.Stats
	if wantH = loaded.Health(); !reflect.DeepEqual(gotH, wantH) {
		t.Errorf("stream health with folded stats = %+v, want %+v", gotH, wantH)
	}
	gotB, err := st.ComputeBreakdown()
	if err != nil {
		t.Fatal(err)
	}
	if wantB := loaded.ComputeBreakdown(); gotB != wantB {
		t.Errorf("stream breakdown = %+v, want %+v", gotB, wantB)
	}
}

// TestSnapshotConcurrentAddIndex hammers the mutation/index contract:
// concurrent AddDomain/AddIP interleaved with Index() lookups must be
// race-free (run under -race) and every Index must be internally
// consistent.
func TestSnapshotConcurrentAddIndex(t *testing.T) {
	s := NewSnapshot("2021-06", "alexa")
	const (
		writers = 4
		perW    = 200
		readers = 4
	)
	var writersWG, readersWG sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		readersWG.Add(1)
		go func() {
			defer readersWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				idx := s.Index()
				if len(idx.PrimaryMX) != len(idx.ExchangeDomains) && len(idx.Exchanges) != len(idx.ExchangeDomains) {
					t.Error("index internally inconsistent")
					return
				}
				for _, k := range idx.SortedIPKeys {
					if k == "" {
						t.Error("empty IP key")
						return
					}
				}
			}
		}()
	}
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 0; i < perW; i++ {
				s.AddDomain(DomainRecord{
					Domain: fmt.Sprintf("w%d-%04d.example", w, i),
					MX:     []MXObs{{Preference: 10, Exchange: fmt.Sprintf("mx%d.example", i%5)}},
				})
				s.AddIP(IPInfo{Addr: netip.AddrFrom4([4]byte{10, byte(w), byte(i >> 8), byte(i)})})
				if i%64 == 0 {
					s.SortDomains()
				}
			}
		}(w)
	}
	writersWG.Wait()
	close(stop)
	readersWG.Wait()
	idx := s.Index()
	if len(s.Domains) != writers*perW || len(idx.PrimaryMX) != writers*perW {
		t.Errorf("domains = %d, indexed = %d, want %d", len(s.Domains), len(idx.PrimaryMX), writers*perW)
	}
	if len(s.IPs) != len(idx.SortedIPKeys) {
		t.Errorf("ips = %d, indexed = %d", len(s.IPs), len(idx.SortedIPKeys))
	}
}
