package dataset

import (
	"bytes"
	"encoding/json"
	"net/netip"
	"strings"
	"testing"
)

func TestFailureClassTransient(t *testing.T) {
	transient := map[FailureClass]bool{
		FailDNSTimeout: true, FailDNSServFail: true,
		FailConnTimeout: true, FailConnReset: true,
	}
	for _, c := range Classes() {
		if got := c.Transient(); got != transient[c] {
			t.Errorf("%s: Transient = %v, want %v", c, got, transient[c])
		}
	}
	if FailureClass("").Failed() || FailOK.Failed() {
		t.Error("ok/unclassified must not count as failed")
	}
	if !FailNXDomain.Failed() {
		t.Error("nxdomain must count as failed")
	}
}

func TestSnapshotHealth(t *testing.T) {
	s := NewSnapshot("2021-06", "alexa")
	s.AddDomain(DomainRecord{Domain: "a.test", Failure: FailOK, MX: []MXObs{
		{Exchange: "mx.a.test", Failure: FailOK},
		{Exchange: "mx.shared.test", Failure: FailOK},
	}})
	s.AddDomain(DomainRecord{Domain: "b.test", Failure: FailNXDomain})
	s.AddDomain(DomainRecord{Domain: "c.test", Failure: FailDNSTimeout})
	// Shared exchange must count once even when two domains reference it.
	s.AddDomain(DomainRecord{Domain: "d.test", MX: []MXObs{
		{Exchange: "mx.shared.test", Failure: FailOK},
		{Exchange: "mx.dead.test", Failure: FailDNSTimeout},
	}})
	s.AddIP(IPInfo{Addr: netip.MustParseAddr("10.0.0.1"), HasCensys: true, Port25Open: true, Failure: FailOK})
	s.AddIP(IPInfo{Addr: netip.MustParseAddr("10.0.0.2"), HasCensys: true, Failure: FailConnRefused})
	s.AddIP(IPInfo{Addr: netip.MustParseAddr("10.0.0.3"), Failure: FailNotCovered})
	s.Stats = CollectionStats{DNSRetries: 2, ScanRetries: 1, BreakerOpens: 1}

	h := s.Health()
	if h.Domains[FailOK] != 2 || h.Domains[FailNXDomain] != 1 || h.Domains[FailDNSTimeout] != 1 {
		t.Errorf("domain classes: %v", h.Domains)
	}
	if h.Exchanges[FailOK] != 2 || h.Exchanges[FailDNSTimeout] != 1 {
		t.Errorf("exchange classes: %v", h.Exchanges)
	}
	if h.IPs[FailOK] != 1 || h.IPs[FailConnRefused] != 1 || h.IPs[FailNotCovered] != 1 {
		t.Errorf("ip classes: %v", h.IPs)
	}
	if want := 2.0 / 3.0; h.Coverage != want {
		t.Errorf("coverage = %v, want %v", h.Coverage, want)
	}
	if h.Stats != s.Stats {
		t.Errorf("stats = %+v", h.Stats)
	}

	var text bytes.Buffer
	if err := h.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"nxdomain", "conn-refused", "not-covered", "dns=2 scan=1"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, text.String())
		}
	}
	var js bytes.Buffer
	if err := h.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var back Health
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatalf("health JSON round-trip: %v", err)
	}
	if back.Domains[FailNXDomain] != 1 || back.Stats.DNSRetries != 2 {
		t.Errorf("round-tripped health: %+v", back)
	}
}

// TestHealthOfLegacySnapshot checks that snapshots without classes (as
// loaded from pre-taxonomy files) degrade to ok / not-covered buckets.
func TestHealthOfLegacySnapshot(t *testing.T) {
	s := NewSnapshot("2021-06", "alexa")
	s.AddDomain(DomainRecord{Domain: "a.test"})
	s.AddIP(IPInfo{Addr: netip.MustParseAddr("10.0.0.1"), HasCensys: true})
	s.AddIP(IPInfo{Addr: netip.MustParseAddr("10.0.0.2")})
	h := s.Health()
	if h.Domains[FailOK] != 1 {
		t.Errorf("domains: %v", h.Domains)
	}
	if h.IPs[FailOK] != 1 || h.IPs[FailNotCovered] != 1 {
		t.Errorf("ips: %v", h.IPs)
	}
}

// TestTaxonomyInvisibleInJSONL pins the byte-compatibility contract: the
// in-memory failure classes must not leak into the serialized snapshot.
func TestTaxonomyInvisibleInJSONL(t *testing.T) {
	s := NewSnapshot("2021-06", "alexa")
	s.AddDomain(DomainRecord{Domain: "a.test", Failure: FailDNSTimeout, MX: []MXObs{
		{Exchange: "mx.a.test", Failure: FailDNSServFail},
	}})
	s.AddIP(IPInfo{Addr: netip.MustParseAddr("10.0.0.1"), HasCensys: true, Failure: FailConnReset})
	s.Stats = CollectionStats{DNSRetries: 9}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	for _, banned := range []string{"fail", "retries", "dns-", "conn-", "breaker", "stats"} {
		if strings.Contains(buf.String(), banned) {
			t.Errorf("serialized snapshot leaks %q:\n%s", banned, buf.String())
		}
	}
	// TLSFailed does serialize (it is an observation, not bookkeeping) —
	// but only when set.
	s2 := NewSnapshot("2021-06", "alexa")
	s2.AddIP(IPInfo{Addr: netip.MustParseAddr("10.0.0.1"), HasCensys: true, Port25Open: true,
		Scan: &ScanInfo{Banner: "x", STARTTLS: true}})
	buf.Reset()
	if _, err := s2.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "tls_failed") {
		t.Error("tls_failed serialized despite being false")
	}
	s2.AddIP(IPInfo{Addr: netip.MustParseAddr("10.0.0.1"), HasCensys: true, Port25Open: true,
		Scan: &ScanInfo{Banner: "x", STARTTLS: true, TLSFailed: true}})
	buf.Reset()
	if _, err := s2.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var roundtrip *Snapshot
	roundtrip, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	info, _ := roundtrip.IP(netip.MustParseAddr("10.0.0.1"))
	if info.Scan == nil || !info.Scan.TLSFailed {
		t.Errorf("TLSFailed lost in round-trip: %+v", info.Scan)
	}
}
