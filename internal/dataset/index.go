package dataset

import "sort"

// Index is a precomputed, read-only view of a Snapshot that the inference
// engine's hot path would otherwise re-derive on every call: the sorted
// IP key list (deterministic iteration), each domain's primary MX set,
// and the deduplicated primary-exchange inventory with the domains behind
// each exchange.
//
// Build it (lazily) with Snapshot.Index. An Index is immutable once
// built; mutating the snapshot through AddDomain/AddIP/SortDomains
// discards the cached index so the next Index call rebuilds it.
type Index struct {
	// SortedIPKeys holds every key of Snapshot.IPs in ascending order.
	SortedIPKeys []string
	// PrimaryMX caches Domains[i].PrimaryMX() by domain position.
	PrimaryMX [][]MXObs
	// Exchanges lists each distinct primary-MX exchange once, in
	// first-appearance order over domains (deterministic given input
	// order). The observation kept is the first one seen, matching the
	// first-wins semantics of the per-exchange assignment pass.
	Exchanges []MXObs
	// ExchangeIndex maps an exchange name to its position in Exchanges.
	ExchangeIndex map[string]int
	// ExchangeDomains maps an exchange position to the positions of the
	// domains whose primary MX set includes it.
	ExchangeDomains [][]int
}

// Index returns the snapshot's derived index, building it on first use.
// It is safe for concurrent use — including interleaved with AddDomain/
// AddIP/SortDomains, since the build runs under the same mutex as the
// mutators — and callers must not mutate the returned value. Mutating the
// snapshot invalidates the cached index; an Index obtained before a
// mutation remains a valid immutable view of the earlier state.
func (s *Snapshot) Index() *Index {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.idx == nil {
		s.idx = buildIndex(s)
	}
	return s.idx
}

func buildIndex(s *Snapshot) *Index {
	idx := &Index{
		SortedIPKeys:  make([]string, 0, len(s.IPs)),
		PrimaryMX:     make([][]MXObs, len(s.Domains)),
		ExchangeIndex: make(map[string]int),
	}
	for k := range s.IPs {
		idx.SortedIPKeys = append(idx.SortedIPKeys, k)
	}
	sort.Strings(idx.SortedIPKeys)
	for i := range s.Domains {
		primary := s.Domains[i].PrimaryMX()
		idx.PrimaryMX[i] = primary
		for _, mx := range primary {
			j, ok := idx.ExchangeIndex[mx.Exchange]
			if !ok {
				j = len(idx.Exchanges)
				idx.ExchangeIndex[mx.Exchange] = j
				idx.Exchanges = append(idx.Exchanges, mx)
				idx.ExchangeDomains = append(idx.ExchangeDomains, nil)
			}
			idx.ExchangeDomains[j] = append(idx.ExchangeDomains[j], i)
		}
	}
	return idx
}
