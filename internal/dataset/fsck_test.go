package dataset

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFsckCleanSnapshot(t *testing.T) {
	for _, name := range []string{"snap.jsonl", "snap.jsonl.gz"} {
		path := filepath.Join(t.TempDir(), name)
		if err := WriteFile(path, sampleSnapshot()); err != nil {
			t.Fatal(err)
		}
		r, err := Fsck(path)
		if err != nil {
			t.Fatal(err)
		}
		if r.Kind != "snapshot" || !r.Clean || len(r.Problems) != 0 {
			t.Errorf("%s: fsck = %+v, want clean snapshot", name, r)
		}
		if r.Entries != 4 {
			t.Errorf("%s: entries = %d, want 4", name, r.Entries)
		}
		var buf bytes.Buffer
		if err := r.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), "CLEAN") {
			t.Errorf("report text = %q", buf.String())
		}
	}
}

func TestFsckCleanJournalAndTorn(t *testing.T) {
	path := writeSampleJournal(t)
	r, err := Fsck(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind != "journal" || !r.Clean {
		t.Errorf("clean journal fsck = %+v", r)
	}

	// Tear the tail: recoverable, not clean.
	raw, _ := os.ReadFile(path)
	if err := os.WriteFile(path, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	r, err = Fsck(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Clean || !r.Recoverable {
		t.Errorf("torn journal fsck = %+v, want recoverable", r)
	}
	if r.Salvageable == "" || len(r.Problems) == 0 {
		t.Errorf("torn journal report missing salvage info: %+v", r)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "RECOVERABLE") {
		t.Errorf("report text = %q", buf.String())
	}
}

func TestFsckTruncatedGzipSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.jsonl.gz")
	if err := WriteFile(path, sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Fsck(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Clean {
		t.Errorf("truncated gzip reported clean: %+v", r)
	}
	found := false
	for _, p := range r.Problems {
		if strings.Contains(p, "EOF") {
			found = true
		}
	}
	if !found {
		t.Errorf("problems = %v, want EOF damage", r.Problems)
	}
}

func TestFsckMalformedLineSalvage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.jsonl")
	var buf bytes.Buffer
	if _, err := sampleSnapshot().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt the last line's JSON.
	content := buf.Bytes()
	content = append(content[:len(content)-10], []byte("garbage\n")...)
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Fsck(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Clean || !r.Recoverable {
		t.Errorf("fsck = %+v, want recoverable damage", r)
	}
	if !strings.Contains(r.Salvageable, "lines 1-") {
		t.Errorf("salvageable = %q", r.Salvageable)
	}
}

func TestFsckCrossRecordInvariants(t *testing.T) {
	dir := t.TempDir()

	// A domain referencing an address with no ip record.
	s := sampleSnapshot()
	delete(s.IPs, "172.217.0.27")
	missing := filepath.Join(dir, "missing-ip.jsonl")
	if err := WriteFile(missing, s); err != nil {
		t.Fatal(err)
	}
	r, err := Fsck(missing)
	if err != nil {
		t.Fatal(err)
	}
	if r.Clean {
		t.Error("missing ip record passed fsck")
	}
	assertProblem(t, r, "no ip record")

	// An orphan ip record no domain references.
	s = sampleSnapshot()
	s.AddIP(IPInfo{Addr: addr("198.51.100.9"), HasCensys: true})
	orphan := filepath.Join(dir, "orphan.jsonl")
	if err := WriteFile(orphan, s); err != nil {
		t.Fatal(err)
	}
	r, err = Fsck(orphan)
	if err != nil {
		t.Fatal(err)
	}
	if r.Clean {
		t.Error("orphan ip record passed fsck")
	}
	assertProblem(t, r, "referenced by no domain")

	// Duplicate domains.
	var buf bytes.Buffer
	s = sampleSnapshot()
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	dup := filepath.Join(dir, "dup.jsonl")
	line := `{"kind":"domain","domain":{"domain":"noip.example","mx":[{"pref":10,"exchange":"mx.noip.example"}]}}` + "\n"
	if err := os.WriteFile(dup, append(buf.Bytes(), []byte(line)...), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err = Fsck(dup)
	if err != nil {
		t.Fatal(err)
	}
	if r.Clean {
		t.Error("duplicate domain passed fsck")
	}
	assertProblem(t, r, "duplicate domain")
}

func assertProblem(t *testing.T, r *FsckReport, substr string) {
	t.Helper()
	for _, p := range r.Problems {
		if strings.Contains(p, substr) {
			return
		}
	}
	t.Errorf("problems = %v, want one containing %q", r.Problems, substr)
}

func TestFsckProblemCap(t *testing.T) {
	// A snapshot with far more invariant violations than the report cap.
	s := NewSnapshot("2021-06", "alexa")
	for i := 0; i < maxFsckProblems+15; i++ {
		s.AddIP(IPInfo{Addr: addr(fmt.Sprintf("203.0.113.%d", i+1)), HasCensys: true})
	}
	path := filepath.Join(t.TempDir(), "orphans.jsonl")
	if err := WriteFile(path, s); err != nil {
		t.Fatal(err)
	}
	r, err := Fsck(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Problems) != maxFsckProblems {
		t.Errorf("problems = %d, want capped at %d", len(r.Problems), maxFsckProblems)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "more problems") {
		t.Errorf("report does not mention the cap: %q", buf.String())
	}
}

func TestFsckNotGzip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.jsonl.gz")
	if err := os.WriteFile(path, []byte("not gzip at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Fsck(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Clean || r.Recoverable {
		t.Errorf("fsck = %+v, want corrupt", r)
	}
	assertProblem(t, r, "gzip")
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "CORRUPT") {
		t.Errorf("report text = %q", buf.String())
	}
}
