package dataset

import (
	"bytes"
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

func sampleSnapshot() *Snapshot {
	s := NewSnapshot("2021-06", "alexa")
	s.AddDomain(DomainRecord{
		Domain: "netflix.example",
		Rank:   12,
		MX: []MXObs{
			{Preference: 5, Exchange: "aspmx.l.google.example", Addrs: []netip.Addr{addr("172.217.0.26")}},
			{Preference: 10, Exchange: "alt1.aspmx.l.google.example", Addrs: []netip.Addr{addr("172.217.0.27")}},
		},
	})
	s.AddDomain(DomainRecord{
		Domain: "noip.example",
		MX:     []MXObs{{Preference: 10, Exchange: "mx.noip.example"}},
	})
	s.AddIP(IPInfo{
		Addr: addr("172.217.0.26"), ASN: 15169, ASName: "GOOGLE",
		HasCensys: true, Port25Open: true,
		Scan: &ScanInfo{
			Banner: "mx.google.example ESMTP ready", BannerHost: "mx.google.example",
			EHLOHost: "mx.google.example", STARTTLS: true,
			CertPresent: true, CertValid: true,
			CertFingerprint: "abc123", CertNames: []string{"mx.google.example"},
		},
	})
	s.AddIP(IPInfo{Addr: addr("172.217.0.27"), ASN: 15169, ASName: "GOOGLE", HasCensys: true, Port25Open: false})
	return s
}

func TestPrimaryMX(t *testing.T) {
	d := DomainRecord{MX: []MXObs{
		{Preference: 20, Exchange: "b"},
		{Preference: 10, Exchange: "a1"},
		{Preference: 10, Exchange: "a2"},
		{Preference: 30, Exchange: "c"},
	}}
	got := d.PrimaryMX()
	if len(got) != 2 || got[0].Exchange != "a1" || got[1].Exchange != "a2" {
		t.Errorf("PrimaryMX = %+v", got)
	}
	var empty DomainRecord
	if empty.PrimaryMX() != nil {
		t.Error("PrimaryMX on empty record should be nil")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	s := sampleSnapshot()
	s.SortDomains()
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Date != s.Date || got.Corpus != s.Corpus {
		t.Errorf("header = %s/%s", got.Date, got.Corpus)
	}
	if !reflect.DeepEqual(s.Domains, got.Domains) {
		t.Errorf("domains mismatch:\n%+v\n%+v", s.Domains, got.Domains)
	}
	if !reflect.DeepEqual(s.IPs, got.IPs) {
		t.Errorf("ips mismatch:\n%+v\n%+v", s.IPs, got.IPs)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",
		"{\"kind\":\"domain\",\"domain\":{\"domain\":\"x\"}}\n", // domain before header
		"{\"kind\":\"ip\",\"ip\":{\"addr\":\"1.2.3.4\"}}\n",     // ip before header
		"{\"kind\":\"wat\"}\n",                                  // unknown kind
		"not json\n",                                            //
		"{\"kind\":\"snapshot\"}\n",                             // header missing body
		"{\"kind\":\"snapshot\",\"header\":{\"date\":\"d\",\"corpus\":\"c\"}}\n{\"kind\":\"snapshot\",\"header\":{\"date\":\"d\",\"corpus\":\"c\"}}\n", // dup header
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("Read(%q) succeeded, want error", c)
		}
	}
}

func TestValidFQDN(t *testing.T) {
	valid := []string{"mx.google.com", "a.b", "mail-1.example.co.uk", "se26.mailspamprotection.com"}
	for _, s := range valid {
		if !ValidFQDN(s) {
			t.Errorf("ValidFQDN(%q) = false", s)
		}
	}
	invalid := []string{"", "localhost", "IP-1-2-3-4", "a..b", ".a.b", "a.b.", "has space.com",
		"x", strings.Repeat("a", 64) + ".com", strings.Repeat("a.", 130) + "com", "bad!.com"}
	for _, s := range invalid {
		if ValidFQDN(s) {
			t.Errorf("ValidFQDN(%q) = true", s)
		}
	}
}

func TestClassifyHierarchy(t *testing.T) {
	s := NewSnapshot("2021-06", "test")
	mkDomain := func(name string, addrs ...netip.Addr) DomainRecord {
		return DomainRecord{Domain: name, MX: []MXObs{{Preference: 10, Exchange: "mx." + name, Addrs: addrs}}}
	}
	// Build one IP per rung of the ladder.
	s.AddIP(IPInfo{Addr: addr("10.0.0.2"), HasCensys: false})
	s.AddIP(IPInfo{Addr: addr("10.0.0.3"), HasCensys: true, Port25Open: false})
	s.AddIP(IPInfo{Addr: addr("10.0.0.4"), HasCensys: true, Port25Open: true,
		Scan: &ScanInfo{BannerHost: "mx.d4.example", EHLOHost: "mx.d4.example", CertPresent: false}})
	s.AddIP(IPInfo{Addr: addr("10.0.0.5"), HasCensys: true, Port25Open: true,
		Scan: &ScanInfo{BannerHost: "IP-10-0-0-5", CertPresent: true, CertValid: true, CertNames: []string{"mx.d5.example"}}})
	s.AddIP(IPInfo{Addr: addr("10.0.0.6"), HasCensys: true, Port25Open: true,
		Scan: &ScanInfo{BannerHost: "mx.d6.example", CertPresent: true, CertValid: true, CertNames: []string{"mx.d6.example"}}})

	cases := []struct {
		d    DomainRecord
		want Category
	}{
		{mkDomain("d1.example"), CatNoMXIP},
		{mkDomain("d2.example", addr("10.0.0.2")), CatNoCensys},
		{mkDomain("d3.example", addr("10.0.0.3")), CatNoPort25},
		{mkDomain("d4.example", addr("10.0.0.4")), CatNoValidCert},
		{mkDomain("d5.example", addr("10.0.0.5")), CatNoValidBanner},
		{mkDomain("d6.example", addr("10.0.0.6")), CatComplete},
		// Unknown IP behaves like no Censys data.
		{mkDomain("d7.example", addr("10.9.9.9")), CatNoCensys},
	}
	for _, c := range cases {
		if got := s.Classify(&c.d); got != c.want {
			t.Errorf("Classify(%s) = %v, want %v", c.d.Domain, got, c.want)
		}
	}
}

func TestClassifyUsesBestSignalAcrossIPs(t *testing.T) {
	// A domain whose primary MX resolves to one dead IP and one complete
	// IP must classify as complete.
	s := NewSnapshot("2021-06", "test")
	s.AddIP(IPInfo{Addr: addr("10.1.0.1"), HasCensys: false})
	s.AddIP(IPInfo{Addr: addr("10.1.0.2"), HasCensys: true, Port25Open: true,
		Scan: &ScanInfo{BannerHost: "mx.full.example", CertPresent: true, CertValid: true}})
	d := DomainRecord{Domain: "full.example", MX: []MXObs{
		{Preference: 10, Exchange: "mx.full.example", Addrs: []netip.Addr{addr("10.1.0.1"), addr("10.1.0.2")}},
	}}
	if got := s.Classify(&d); got != CatComplete {
		t.Errorf("Classify = %v, want CatComplete", got)
	}
}

func TestClassifyIgnoresNonPrimaryMX(t *testing.T) {
	// The secondary MX has full data, the primary none: classification
	// must follow the primary.
	s := NewSnapshot("2021-06", "test")
	s.AddIP(IPInfo{Addr: addr("10.2.0.2"), HasCensys: true, Port25Open: true,
		Scan: &ScanInfo{BannerHost: "mx.backup.example", CertPresent: true, CertValid: true}})
	d := DomainRecord{Domain: "split.example", MX: []MXObs{
		{Preference: 10, Exchange: "mx.primary.example"},
		{Preference: 20, Exchange: "mx.backup.example", Addrs: []netip.Addr{addr("10.2.0.2")}},
	}}
	if got := s.Classify(&d); got != CatNoMXIP {
		t.Errorf("Classify = %v, want CatNoMXIP", got)
	}
}

func TestComputeBreakdownPartitions(t *testing.T) {
	s := sampleSnapshot()
	b := s.ComputeBreakdown()
	if b.Total != len(s.Domains) {
		t.Errorf("Total = %d, want %d", b.Total, len(s.Domains))
	}
	sum := 0
	for _, c := range Categories() {
		sum += b.Count(c)
	}
	if sum != b.Total {
		t.Errorf("category counts sum to %d, want %d", sum, b.Total)
	}
	if b.Count(CatComplete) != 1 || b.Count(CatNoMXIP) != 1 {
		t.Errorf("breakdown = %+v", b)
	}
}

func TestCategoryString(t *testing.T) {
	if CatNoValidCert.String() != "No Valid SSL Cert." {
		t.Errorf("CatNoValidCert = %q", CatNoValidCert)
	}
	if Category(99).String() != "Unknown" {
		t.Errorf("out of range = %q", Category(99))
	}
	if len(Categories()) != 6 {
		t.Errorf("Categories = %v", Categories())
	}
}

// Property: breakdown is a partition for arbitrary snapshots.
func TestBreakdownPartitionProperty(t *testing.T) {
	f := func(flags []uint8) bool {
		s := NewSnapshot("d", "c")
		for i, fl := range flags {
			ip := netip.AddrFrom4([4]byte{10, 3, byte(i >> 8), byte(i)})
			info := IPInfo{Addr: ip, HasCensys: fl&1 != 0, Port25Open: fl&2 != 0}
			if info.Port25Open {
				info.Scan = &ScanInfo{
					BannerHost:  map[bool]string{true: "mx.x.example", false: "junk"}[fl&4 != 0],
					CertPresent: fl&8 != 0,
					CertValid:   fl&16 != 0,
				}
			}
			s.AddIP(info)
			d := DomainRecord{Domain: "x", MX: []MXObs{{Preference: 1, Exchange: "mx"}}}
			if fl&32 != 0 {
				d.MX[0].Addrs = []netip.Addr{ip}
			}
			s.AddDomain(d)
		}
		b := s.ComputeBreakdown()
		sum := 0
		for _, c := range Categories() {
			sum += b.Count(c)
		}
		return sum == b.Total && b.Total == len(flags)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTable4Breakdown(b *testing.B) {
	s := sampleSnapshot()
	// Inflate to a realistic corpus slice.
	for i := 0; i < 5000; i++ {
		d := s.Domains[i%2]
		s.AddDomain(d)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ComputeBreakdown()
	}
}
