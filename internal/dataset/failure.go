package dataset

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// FailureClass is the typed outcome of one collection step: a per-domain
// DNS lookup, a per-exchange address resolution, or a per-IP SMTP scan.
// The taxonomy mirrors how scanning studies partition unreachable vs.
// refusing vs. misbehaving hosts, so partial failure becomes data the
// methodology can reason about instead of silently biasing the snapshot.
//
// The zero value ("") means "not classified": snapshots loaded from disk
// predate classification or were stripped of it, and Health treats them
// as successful observations.
type FailureClass string

// The failure taxonomy. Classes marked transient are retryable under a
// scan.RetryPolicy; the rest are definitive for the snapshot.
const (
	// FailOK marks a fully successful observation.
	FailOK FailureClass = "ok"
	// FailNXDomain: the name does not exist (definitive).
	FailNXDomain FailureClass = "nxdomain"
	// FailDNSTimeout: the resolver timed out (transient).
	FailDNSTimeout FailureClass = "dns-timeout"
	// FailDNSServFail: the resolver answered SERVFAIL or another
	// non-success RCode (transient: often a momentary upstream problem).
	FailDNSServFail FailureClass = "dns-servfail"
	// FailConnRefused: the TCP dial was refused — port closed (definitive).
	FailConnRefused FailureClass = "conn-refused"
	// FailConnTimeout: the dial or a read timed out — unresponsive or
	// firewalled host (transient).
	FailConnTimeout FailureClass = "conn-timeout"
	// FailConnReset: the connection was reset mid-session (transient).
	FailConnReset FailureClass = "conn-reset"
	// FailProtoError: the host spoke, but not valid SMTP — garbage
	// greeting, bannerless connection, broken EHLO (definitive).
	FailProtoError FailureClass = "proto-error"
	// FailTLSError: STARTTLS was advertised but the upgrade failed
	// (definitive; the paper distinguishes this from "no STARTTLS").
	FailTLSError FailureClass = "tls-error"
	// FailNotCovered: the scanning service has no data for the address —
	// a Censys blind spot, not a property of the host (definitive).
	FailNotCovered FailureClass = "not-covered"
	// FailDanglingMX: the MX target's name no longer exists — the mail
	// zone was dropped while the MX record kept pointing at it
	// (definitive; the classic dangling-MX takeover precondition).
	FailDanglingMX FailureClass = "dangling-mx"
	// FailParkedIP: the exchange resolves, but to a known domain-parking
	// address where nothing listens on 25 — a dead mail setup, not a
	// transient connect failure (definitive).
	FailParkedIP FailureClass = "parked-ip"
	// FailLameDelegation: the domain is delegated, but its NS set never
	// answers authoritatively (definitive).
	FailLameDelegation FailureClass = "lame-delegation"
	// FailHijackSuspect: the parent-side delegation (registry NS + glue)
	// disagrees with the apex NS set the serving zone publishes — the
	// stale-glue hijack signature. The lookup "succeeds", so the record
	// still carries data, but its provenance is untrusted (definitive).
	FailHijackSuspect FailureClass = "hijack-suspect"
)

// Classes lists every failure class in presentation order.
func Classes() []FailureClass {
	return []FailureClass{
		FailOK, FailNXDomain, FailDNSTimeout, FailDNSServFail,
		FailConnRefused, FailConnTimeout, FailConnReset,
		FailProtoError, FailTLSError, FailNotCovered,
		FailDanglingMX, FailParkedIP, FailLameDelegation, FailHijackSuspect,
	}
}

// Transient reports whether the class is worth retrying: the condition
// may clear on a later attempt, unlike a definitive answer (NXDOMAIN,
// refused port, broken protocol).
func (f FailureClass) Transient() bool {
	switch f {
	case FailDNSTimeout, FailDNSServFail, FailConnTimeout, FailConnReset:
		return true
	}
	return false
}

// Failed reports whether the class records an unsuccessful observation.
func (f FailureClass) Failed() bool {
	return f != FailOK && f != ""
}

// CollectionStats aggregates the resilience machinery's counters for one
// collection run. It travels on the Snapshot in memory and inside the
// serialized Health report, never in the per-record JSONL lines.
type CollectionStats struct {
	// DNSRetries counts retried MX/A/AAAA lookups.
	DNSRetries int `json:"dns_retries"`
	// ScanRetries counts retried SMTP scans.
	ScanRetries int `json:"scan_retries"`
	// BudgetExhausted reports that the retry budget ran out before the
	// last transient failure: tail failures were not retried.
	BudgetExhausted bool `json:"budget_exhausted,omitempty"`
	// BreakerOpens counts circuits opened by consecutive hard failures.
	BreakerOpens int `json:"breaker_opens"`
	// BreakerSkips counts scans short-circuited by an open breaker.
	BreakerSkips int `json:"breaker_skips"`
}

// Health is the per-snapshot failure summary: how much of the corpus was
// observed, and how the rest failed. It is the artifact serialized
// alongside collection results (mxscan -health, experiments -faults).
type Health struct {
	// Domains counts per-domain MX lookup outcomes by class.
	Domains map[FailureClass]int `json:"domains"`
	// Exchanges counts address-resolution outcomes by class, one entry
	// per distinct exchange host.
	Exchanges map[FailureClass]int `json:"exchanges"`
	// IPs counts per-IP scan outcomes by class.
	IPs map[FailureClass]int `json:"ips"`
	// Coverage is the fraction of scanned addresses the scanning service
	// had data for (the Censys-coverage rate).
	Coverage float64 `json:"coverage"`
	// Stats carries the retry/breaker counters of the collection run.
	Stats CollectionStats `json:"stats"`
}

// Health computes the failure summary of the snapshot. Records without a
// class (older snapshots) are bucketed from what the legacy fields
// encode: HasCensys=false maps to not-covered, everything else to ok.
func (s *Snapshot) Health() *Health {
	h := &Health{
		Domains:   make(map[FailureClass]int),
		Exchanges: make(map[FailureClass]int),
		IPs:       make(map[FailureClass]int),
		Stats:     s.Stats,
	}
	for i := range s.Domains {
		h.Domains[normalizeClass(s.Domains[i].Failure, domainFallback(&s.Domains[i]))]++
	}
	// One vote per distinct exchange: popular exchanges appear in many
	// domains' MX sets but were resolved once.
	seen := make(map[string]bool)
	for i := range s.Domains {
		for j := range s.Domains[i].MX {
			mx := &s.Domains[i].MX[j]
			if seen[mx.Exchange] {
				continue
			}
			seen[mx.Exchange] = true
			h.Exchanges[normalizeClass(mx.Failure, exchangeFallback(mx))]++
		}
	}
	covered := 0
	for _, info := range s.IPs {
		h.IPs[normalizeClass(info.Failure, ipFallback(&info))]++
		if info.HasCensys {
			covered++
		}
	}
	if len(s.IPs) > 0 {
		h.Coverage = float64(covered) / float64(len(s.IPs))
	}
	return h
}

func normalizeClass(f, fallback FailureClass) FailureClass {
	if f == "" {
		return fallback
	}
	return f
}

// The fallback derivations below reconstruct classes for records loaded
// from disk, where the in-memory Failure fields are gone but the
// serialized adversarial evidence (Delegation, Dangling, Parked)
// survives. In-memory snapshots straight out of a collection run carry
// explicit classes and never reach the fallbacks.

func domainFallback(d *DomainRecord) FailureClass {
	switch d.Delegation {
	case DelegationStaleGlue:
		return FailHijackSuspect
	case DelegationLame:
		return FailLameDelegation
	}
	return FailOK
}

func exchangeFallback(mx *MXObs) FailureClass {
	if mx.Dangling && len(mx.Addrs) == 0 {
		return FailDanglingMX
	}
	return FailOK
}

func ipFallback(info *IPInfo) FailureClass {
	if info.Parked && !info.Port25Open {
		return FailParkedIP
	}
	if !info.HasCensys {
		return FailNotCovered
	}
	return FailOK
}

// OKRate returns the fraction of entries in the given class counts that
// succeeded.
func OKRate(counts map[FailureClass]int) float64 {
	total, ok := 0, 0
	for c, n := range counts {
		total += n
		if !c.Failed() {
			ok += n
		}
	}
	if total == 0 {
		return 1
	}
	return float64(ok) / float64(total)
}

// WriteText renders the health report as an aligned table.
func (h *Health) WriteText(w io.Writer) error {
	writeSection := func(title string, counts map[FailureClass]int) error {
		total := 0
		for _, n := range counts {
			total += n
		}
		if _, err := fmt.Fprintf(w, "%s (%d total, %.1f%% ok)\n", title, total, 100*OKRate(counts)); err != nil {
			return err
		}
		// Known classes first, in taxonomy order, then any stragglers.
		emitted := make(map[FailureClass]bool)
		emit := func(c FailureClass) error {
			n := counts[c]
			if n == 0 {
				return nil
			}
			emitted[c] = true
			_, err := fmt.Fprintf(w, "  %-14s %d\n", c, n)
			return err
		}
		for _, c := range Classes() {
			if err := emit(c); err != nil {
				return err
			}
		}
		var rest []FailureClass
		for c := range counts {
			if !emitted[c] {
				rest = append(rest, c)
			}
		}
		sort.Slice(rest, func(i, j int) bool { return rest[i] < rest[j] })
		for _, c := range rest {
			if err := emit(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := writeSection("domains", h.Domains); err != nil {
		return err
	}
	if err := writeSection("exchanges", h.Exchanges); err != nil {
		return err
	}
	if err := writeSection("ips", h.IPs); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "coverage %.1f%%  retries dns=%d scan=%d  breaker opens=%d skips=%d",
		100*h.Coverage, h.Stats.DNSRetries, h.Stats.ScanRetries, h.Stats.BreakerOpens, h.Stats.BreakerSkips)
	if err != nil {
		return err
	}
	if h.Stats.BudgetExhausted {
		if _, err := fmt.Fprintf(w, "  (retry budget exhausted)"); err != nil {
			return err
		}
	}
	_, err = fmt.Fprintln(w)
	return err
}

// WriteJSON serializes the health report as indented JSON.
func (h *Health) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(h)
}
