package dataset

import (
	"bytes"
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestWriteReadFilePlainAndGzip(t *testing.T) {
	dir := t.TempDir()
	s := sampleSnapshot()
	s.SortDomains()
	for _, name := range []string{"snap.jsonl", "snap.jsonl.gz"} {
		path := filepath.Join(dir, name)
		if err := WriteFile(path, s); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(s.Domains, got.Domains) || !reflect.DeepEqual(s.IPs, got.IPs) {
			t.Errorf("%s: round trip mismatch", name)
		}
	}
	// The gzip file should actually be compressed (smaller, magic bytes).
	plain, _ := os.ReadFile(filepath.Join(dir, "snap.jsonl"))
	zipped, _ := os.ReadFile(filepath.Join(dir, "snap.jsonl.gz"))
	if len(zipped) >= len(plain) {
		t.Errorf("gzip did not shrink: %d vs %d", len(zipped), len(plain))
	}
	if len(zipped) < 2 || zipped[0] != 0x1f || zipped[1] != 0x8b {
		t.Error("gzip magic missing")
	}
}

func TestReadFileErrors(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.jsonl")); err == nil {
		t.Error("missing file read succeeded")
	}
	// A .gz path with non-gzip content fails cleanly.
	path := filepath.Join(t.TempDir(), "bad.jsonl.gz")
	if err := os.WriteFile(path, []byte("not gzip"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Error("bad gzip read succeeded")
	}
}

// brokenWriter fails after passing through n bytes — the injected
// failing writer for the atomic-commit path.
type brokenWriter struct {
	w    io.Writer
	left int
	err  error
}

func (b *brokenWriter) Write(p []byte) (int, error) {
	if len(p) > b.left {
		n, _ := b.w.Write(p[:b.left])
		b.left = 0
		return n, b.err
	}
	b.left -= len(p)
	return b.w.Write(p)
}

func TestWriteFileAtomicCommit(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"snap.jsonl", "snap.jsonl.gz"} {
		path := filepath.Join(dir, name)
		// Commit a good snapshot first.
		committed := sampleSnapshot()
		committed.SortDomains()
		if err := WriteFile(path, committed); err != nil {
			t.Fatal(err)
		}
		before, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}

		// A failed write — the moral equivalent of a crash mid-commit —
		// must leave the committed file untouched and no temp debris.
		boom := errors.New("disk on fire")
		err = atomicWrite(path, func(w io.Writer) error {
			bw := &brokenWriter{w: w, left: 10, err: boom}
			_, werr := sampleSnapshot().WriteTo(bw)
			return werr
		})
		if !errors.Is(err, boom) {
			t.Fatalf("%s: atomicWrite error = %v, want injected failure", name, err)
		}
		after, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(before, after) {
			t.Errorf("%s: committed file changed by failed write", name)
		}
		if _, err := os.Stat(path + ".tmp"); !errors.Is(err, fs.ErrNotExist) {
			t.Errorf("%s: temp file left behind: %v", name, err)
		}
		if got, err := ReadFile(path); err != nil {
			t.Errorf("%s: committed file unreadable after failed write: %v", name, err)
		} else if !reflect.DeepEqual(got.Domains, committed.Domains) {
			t.Errorf("%s: committed content corrupted", name)
		}
	}
}

func TestWriteFileFreshFailureLeavesNothing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "never.jsonl")
	boom := errors.New("boom")
	err := atomicWrite(path, func(w io.Writer) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("final path exists after failed first write: %v", err)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("temp file left behind: %v", err)
	}
}

func TestReadFileTruncatedGzipContext(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.jsonl.gz")
	if err := WriteFile(path, sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-6], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = ReadFile(path)
	if err == nil {
		t.Fatal("truncated gzip read succeeded")
	}
	msg := err.Error()
	if !strings.Contains(msg, path) || !strings.Contains(msg, "line") {
		t.Errorf("error lacks path:line context: %q", msg)
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("error does not unwrap to unexpected EOF: %v", err)
	}
}
