package dataset

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestWriteReadFilePlainAndGzip(t *testing.T) {
	dir := t.TempDir()
	s := sampleSnapshot()
	s.SortDomains()
	for _, name := range []string{"snap.jsonl", "snap.jsonl.gz"} {
		path := filepath.Join(dir, name)
		if err := WriteFile(path, s); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(s.Domains, got.Domains) || !reflect.DeepEqual(s.IPs, got.IPs) {
			t.Errorf("%s: round trip mismatch", name)
		}
	}
	// The gzip file should actually be compressed (smaller, magic bytes).
	plain, _ := os.ReadFile(filepath.Join(dir, "snap.jsonl"))
	zipped, _ := os.ReadFile(filepath.Join(dir, "snap.jsonl.gz"))
	if len(zipped) >= len(plain) {
		t.Errorf("gzip did not shrink: %d vs %d", len(zipped), len(plain))
	}
	if len(zipped) < 2 || zipped[0] != 0x1f || zipped[1] != 0x8b {
		t.Error("gzip magic missing")
	}
}

func TestReadFileErrors(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.jsonl")); err == nil {
		t.Error("missing file read succeeded")
	}
	// A .gz path with non-gzip content fails cleanly.
	path := filepath.Join(t.TempDir(), "bad.jsonl.gz")
	if err := os.WriteFile(path, []byte("not gzip"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Error("bad gzip read succeeded")
	}
}
