package dataset

import "net/netip"

// Category classifies how much of a domain's signal chain was observable,
// reproducing the row structure of the paper's Table 4. Categories are
// mutually exclusive and assigned hierarchically: a domain lands in the
// first category whose condition holds anywhere short of full data.
type Category int

// Categories in Table 4 row order.
const (
	// CatNoMXIP: the domain has MX records but none of their exchanges
	// resolved to an IP address.
	CatNoMXIP Category = iota
	// CatNoCensys: at least one MX IP exists, but the scanning service
	// had no data for any of them.
	CatNoCensys
	// CatNoPort25: scan data exists for some MX IP, but port 25 was not
	// open on any of them.
	CatNoPort25
	// CatNoValidCert: an SMTP session was observed, but no MX IP
	// presented a browser-trusted certificate.
	CatNoValidCert
	// CatNoValidBanner: a valid certificate exists but no MX IP supplied
	// a usable FQDN in its Banner/EHLO messages.
	CatNoValidBanner
	// CatComplete: certificate and Banner/EHLO signals both available.
	CatComplete
	numCategories
)

var categoryNames = [...]string{
	"No MX IP",
	"No Censys",
	"No Port 25 Data",
	"No Valid SSL Cert.",
	"No Valid Banner/EHLO",
	"No Missing Data",
}

// String returns the Table 4 row label.
func (c Category) String() string {
	if c < 0 || int(c) >= len(categoryNames) {
		return "Unknown"
	}
	return categoryNames[c]
}

// Categories returns all categories in Table 4 row order.
func Categories() []Category {
	out := make([]Category, numCategories)
	for i := range out {
		out[i] = Category(i)
	}
	return out
}

// ValidFQDN is the package's test for a usable host name in Banner/EHLO
// text: at least two dot-separated non-empty labels with host-legal
// characters. Strings like "IP-1-2-3-4" or "localhost" fail.
func ValidFQDN(s string) bool {
	if s == "" || len(s) > 253 {
		return false
	}
	labels := 0
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '.' {
			if i == start || i-start > 63 {
				return false
			}
			labels++
			start = i + 1
			continue
		}
		c := s[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9', c == '-', c == '_':
		default:
			return false
		}
	}
	return labels >= 2
}

// Classify places one domain record into its Table 4 category using the
// snapshot's IP observations. Only the primary (most preferred) MX set is
// considered, consistent with the paper's focus on the primary provider.
func (s *Snapshot) Classify(d *DomainRecord) Category {
	return ClassifyWith(d, s.IP)
}

// ClassifyWith is Classify against any IP-observation source, so
// streaming passes can categorize domains without a materialized
// Snapshot.
func ClassifyWith(d *DomainRecord, lookup func(netip.Addr) (IPInfo, bool)) Category {
	var (
		anyIP, anyCensys, anyPort25 bool
		anyValidCert, anyBanner     bool
	)
	for _, mx := range d.PrimaryMX() {
		for _, addr := range mx.Addrs {
			anyIP = true
			info, ok := lookup(addr)
			if !ok || !info.HasCensys {
				continue
			}
			anyCensys = true
			if !info.Port25Open || info.Scan == nil {
				continue
			}
			anyPort25 = true
			if info.Scan.CertPresent && info.Scan.CertValid {
				anyValidCert = true
			}
			if ValidFQDN(info.Scan.BannerHost) || ValidFQDN(info.Scan.EHLOHost) {
				anyBanner = true
			}
		}
	}
	switch {
	case !anyIP:
		return CatNoMXIP
	case !anyCensys:
		return CatNoCensys
	case !anyPort25:
		return CatNoPort25
	case !anyValidCert:
		return CatNoValidCert
	case !anyBanner:
		return CatNoValidBanner
	default:
		return CatComplete
	}
}

// Breakdown counts domains per category — one column of Table 4.
type Breakdown struct {
	Counts [numCategories]int
	Total  int
}

// ComputeBreakdown classifies every domain in the snapshot.
func (s *Snapshot) ComputeBreakdown() Breakdown {
	var b Breakdown
	for i := range s.Domains {
		b.Counts[s.Classify(&s.Domains[i])]++
		b.Total++
	}
	return b
}

// Count returns the number of domains in the category.
func (b Breakdown) Count(c Category) int {
	if c < 0 || int(c) >= len(b.Counts) {
		return 0
	}
	return b.Counts[c]
}
