package dataset

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalRead drives the journal frame decoder with arbitrary
// bytes. Recovery must never panic, never claim more valid bytes than
// the input holds, and — when it does recover entries — must be
// idempotent: recovering the valid prefix again yields the same result.
func FuzzJournalRead(f *testing.F) {
	// Seed: a healthy journal, its torn variants, and junk.
	path := filepath.Join(f.TempDir(), "seed.waj")
	j, err := CreateJournal(path, "2021-06", "alexa")
	if err != nil {
		f.Fatal(err)
	}
	s := sampleSnapshot()
	for i := range s.Domains {
		if err := j.AddDomain(&s.Domains[i]); err != nil {
			f.Fatal(err)
		}
	}
	info := s.IPs["172.217.0.26"]
	if err := j.AddIP(&info); err != nil {
		f.Fatal(err)
	}
	if err := j.Close(); err != nil {
		f.Fatal(err)
	}
	seed, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-4])
	f.Add(seed[:len(journalMagic)+3])
	f.Add([]byte(journalMagic))
	f.Add([]byte("not a journal at all"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := recoverJournal(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return // rejected (no magic); fine
		}
		if rec.ValidBytes > int64(len(data)) {
			t.Fatalf("ValidBytes %d > input %d", rec.ValidBytes, len(data))
		}
		if rec.Truncated != (rec.ValidBytes < int64(len(data))) {
			t.Fatalf("Truncated=%v but ValidBytes=%d of %d", rec.Truncated, rec.ValidBytes, len(data))
		}
		if rec.Entries > 0 && rec.Snapshot == nil {
			t.Fatal("entries recovered without a snapshot")
		}
		// Idempotence over the trusted prefix.
		if rec.ValidBytes > 0 {
			rec2, err := recoverJournal(bytes.NewReader(data[:rec.ValidBytes]), rec.ValidBytes)
			if err != nil {
				t.Fatalf("re-recovering the valid prefix failed: %v", err)
			}
			if rec2.ValidBytes != rec.ValidBytes || rec2.Entries != rec.Entries || rec2.Truncated {
				t.Fatalf("prefix re-recovery diverged: %d/%d entries, %d/%d bytes, truncated=%v",
					rec2.Entries, rec.Entries, rec2.ValidBytes, rec.ValidBytes, rec2.Truncated)
			}
		}
	})
}

// FuzzShardFooter drives the shard footer parser with arbitrary bytes:
// it must return a footer or an error, never panic, and any footer it
// accepts must satisfy the documented invariants.
func FuzzShardFooter(f *testing.F) {
	f.Add([]byte(`{"kind":"footer","footer":{"seq":3,"first_domain":"a.example","last_domain":"z.example","domains":10,"ips":4}}`))
	f.Add([]byte(`{"kind":"footer","footer":{"seq":0,"domains":0,"ips":0}}`))
	f.Add([]byte(`{"kind":"footer","footer":{"seq":-1,"domains":1,"ips":0}}`))
	f.Add([]byte(`{"kind":"domain","domain":{"domain":"x.example","mx":[]}}`))
	f.Add([]byte(`{"kind":"footer"}`))
	f.Add([]byte(`{`))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		footer, err := ParseShardFooter(data)
		if err != nil {
			return
		}
		if footer == nil {
			t.Fatal("nil footer without error")
		}
		if footer.Domains < 0 || footer.IPs < 0 || footer.Seq < 0 {
			t.Fatalf("accepted negative counts: %+v", footer)
		}
		if (footer.Domains == 0) != (footer.FirstDomain == "" && footer.LastDomain == "") {
			t.Fatalf("accepted inconsistent domain range: %+v", footer)
		}
		if footer.FirstDomain > footer.LastDomain {
			t.Fatalf("accepted inverted range: %+v", footer)
		}
	})
}

// FuzzRead drives the snapshot JSONL reader with arbitrary bytes: it
// must return a snapshot or an error, never panic.
func FuzzRead(f *testing.F) {
	var buf bytes.Buffer
	if _, err := sampleSnapshot().WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	whole := buf.Bytes()
	f.Add(whole)
	f.Add(whole[:len(whole)/2])
	f.Add([]byte(`{"kind":"snapshot","header":{"date":"d","corpus":"c"}}`))
	f.Add([]byte(`{"kind":"mystery"}`))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Read(bytes.NewReader(data))
		if err == nil && s == nil {
			t.Fatal("nil snapshot without error")
		}
	})
}
