package dataset

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"os"
	"strings"
)

// ErrStop may be returned from a ForEach callback to end iteration early
// without an error.
var ErrStop = errors.New("dataset: stop iteration")

// Stream is a snapshot on disk iterated without materializing it: the
// file is re-opened and decoded per pass, and record structs are reused
// across callback invocations, so a pass over millions of domains holds
// one record in memory at a time.
//
// A Stream works over both canonical snapshot files (WriteFile / Merge
// output) and individual shard files (footer lines are skipped).
type Stream struct {
	// Path is the snapshot file.
	Path string
	// Date and Corpus come from the header line.
	Date, Corpus string
}

// OpenStream validates the header of the snapshot at path and returns a
// Stream over it.
func OpenStream(path string) (*Stream, error) {
	st := &Stream{Path: path}
	err := st.forEach(func(*DomainRecord) error { return ErrStop }, nil)
	if err != nil {
		return nil, err
	}
	return st, nil
}

// ForEach decodes the snapshot once, invoking domain for every domain
// line and ip for every IP line, in file order (domains sorted, then IPs
// sorted). Either callback may be nil to skip that section — a nil
// domain callback skips decoding domain records entirely. The record
// passed to a callback is reused on the next invocation: copy it if it
// must outlive the call. A callback returning ErrStop ends the pass
// successfully.
func (st *Stream) ForEach(domain func(*DomainRecord) error, ip func(*IPInfo) error) error {
	return st.forEach(domain, ip)
}

func (st *Stream) forEach(domain func(*DomainRecord) error, ip func(*IPInfo) error) error {
	f, err := os.Open(st.Path)
	if err != nil {
		return err
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(st.Path, ".gz") {
		zr, err := getGzReader(f)
		if err != nil {
			return fmt.Errorf("dataset: %s: %w", st.Path, err)
		}
		defer putGzReader(zr)
		r = zr
	}
	sc, lineBuf := newLineScanner(r)
	defer putLineBuf(lineBuf)

	// Reused line holders: Unmarshal fills the pointed-at records in
	// place, so per-line allocation is limited to the records' own
	// variable-size innards.
	var (
		d     DomainRecord
		info  IPInfo
		hdr   snapshotHeader
		probe struct {
			Kind string `json:"kind"`
		}
		sawHeader bool
		lineno    int
	)
	where := func() string { return fmt.Sprintf("dataset: %s: line %d", st.Path, lineno) }
	for sc.Scan() {
		lineno++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		probe.Kind = ""
		if err := json.Unmarshal(raw, &probe); err != nil {
			return fmt.Errorf("%s: %w", where(), err)
		}
		switch probe.Kind {
		case "snapshot":
			if sawHeader {
				return fmt.Errorf("%s: duplicate header", where())
			}
			var l struct {
				Header *snapshotHeader `json:"header"`
			}
			l.Header = &hdr
			if err := json.Unmarshal(raw, &l); err != nil {
				return fmt.Errorf("%s: %w", where(), err)
			}
			st.Date, st.Corpus = hdr.Date, hdr.Corpus
			sawHeader = true
		case "domain":
			if !sawHeader {
				return fmt.Errorf("%s: domain before header", where())
			}
			if domain == nil {
				continue
			}
			d = DomainRecord{}
			var l struct {
				Domain *DomainRecord `json:"domain"`
			}
			l.Domain = &d
			if err := json.Unmarshal(raw, &l); err != nil {
				return fmt.Errorf("%s: %w", where(), err)
			}
			if err := domain(&d); err != nil {
				if err == ErrStop {
					return nil
				}
				return err
			}
		case "ip":
			if !sawHeader {
				return fmt.Errorf("%s: ip before header", where())
			}
			if ip == nil {
				continue
			}
			info = IPInfo{}
			var l struct {
				IP *IPInfo `json:"ip"`
			}
			l.IP = &info
			if err := json.Unmarshal(raw, &l); err != nil {
				return fmt.Errorf("%s: %w", where(), err)
			}
			if err := ip(&info); err != nil {
				if err == ErrStop {
					return nil
				}
				return err
			}
		case "footer":
			// Shard files end with a footer; tolerate it so a Stream can
			// read an unmerged shard.
		default:
			return fmt.Errorf("%s: unknown kind %q", where(), probe.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		lineno++
		return fmt.Errorf("%s: %w", where(), err)
	}
	if !sawHeader {
		return fmt.Errorf("dataset: %s: empty input", st.Path)
	}
	return nil
}

// LoadIPs materializes the stream's IP section as a Snapshot-shaped map.
// Provider concentration keeps the distinct-IP count orders of magnitude
// below the domain count, so inference over an out-of-core corpus can
// still hold every IP observation in memory while domains stream.
func (st *Stream) LoadIPs() (map[string]IPInfo, error) {
	ips := make(map[string]IPInfo)
	err := st.forEach(nil, func(info *IPInfo) error {
		ips[info.Addr.String()] = *info
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ips, nil
}

// Counts tallies the stream's record counts in one pass.
func (st *Stream) Counts() (domains, ips int, err error) {
	err = st.forEach(
		func(*DomainRecord) error { domains++; return nil },
		func(*IPInfo) error { ips++; return nil },
	)
	return domains, ips, err
}

// Health computes the snapshot failure summary in one streaming pass,
// equivalent to Snapshot.Health() of the materialized snapshot except
// for CollectionStats, which live with the collection run rather than
// the file (callers holding run stats can set them on the result).
func (st *Stream) Health() (*Health, error) {
	h := &Health{
		Domains:   make(map[FailureClass]int),
		Exchanges: make(map[FailureClass]int),
		IPs:       make(map[FailureClass]int),
	}
	seen := make(map[string]bool)
	covered, total := 0, 0
	err := st.forEach(
		func(d *DomainRecord) error {
			h.Domains[normalizeClass(d.Failure, domainFallback(d))]++
			for i := range d.MX {
				mx := &d.MX[i]
				if seen[mx.Exchange] {
					continue
				}
				seen[mx.Exchange] = true
				h.Exchanges[normalizeClass(mx.Failure, exchangeFallback(mx))]++
			}
			return nil
		},
		func(info *IPInfo) error {
			h.IPs[normalizeClass(info.Failure, ipFallback(info))]++
			total++
			if info.HasCensys {
				covered++
			}
			return nil
		},
	)
	if err != nil {
		return nil, err
	}
	if total > 0 {
		h.Coverage = float64(covered) / float64(total)
	}
	return h, nil
}

// ComputeBreakdown classifies every streamed domain into its Table 4
// category. Two passes: the bounded IP section is loaded first, then
// domains stream through the classifier.
func (st *Stream) ComputeBreakdown() (Breakdown, error) {
	var b Breakdown
	ips, err := st.LoadIPs()
	if err != nil {
		return b, err
	}
	lookup := func(addr netip.Addr) (IPInfo, bool) {
		info, ok := ips[addr.String()]
		return info, ok
	}
	err = st.forEach(func(d *DomainRecord) error {
		b.Counts[ClassifyWith(d, lookup)]++
		b.Total++
		return nil
	}, nil)
	if err != nil {
		return Breakdown{}, err
	}
	return b, nil
}
