package dataset

import (
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strings"
)

// WriteFile stores a snapshot at path in JSONL form, gzip-compressed when
// the path ends in ".gz". Corpus-scale snapshots compress roughly 10x.
func WriteFile(path string, s *Snapshot) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	var w io.Writer = f
	if strings.HasSuffix(path, ".gz") {
		zw := gzip.NewWriter(f)
		defer func() {
			if cerr := zw.Close(); err == nil {
				err = cerr
			}
		}()
		w = zw
	}
	_, err = s.WriteTo(w)
	return err
}

// ReadFile loads a snapshot written by WriteFile, transparently
// decompressing ".gz" paths.
func ReadFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		zr, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("dataset: %s: %w", path, err)
		}
		defer zr.Close()
		r = zr
	}
	return Read(r)
}
