package dataset

import (
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// gzWriterPool and gzReaderPool recycle gzip codec state (the deflate
// window alone is hundreds of KiB) across snapshot and shard writes;
// sharded collection opens one stream per spill, per worker.
var gzWriterPool = sync.Pool{
	New: func() any { return gzip.NewWriter(io.Discard) },
}

var gzReaderPool = sync.Pool{New: func() any { return new(gzip.Reader) }}

func getGzWriter(w io.Writer) *gzip.Writer {
	zw := gzWriterPool.Get().(*gzip.Writer)
	zw.Reset(w)
	return zw
}

func putGzWriter(zw *gzip.Writer) {
	zw.Reset(io.Discard)
	gzWriterPool.Put(zw)
}

func getGzReader(r io.Reader) (*gzip.Reader, error) {
	zr := gzReaderPool.Get().(*gzip.Reader)
	if err := zr.Reset(r); err != nil {
		gzReaderPool.Put(zr)
		return nil, err
	}
	return zr, nil
}

func putGzReader(zr *gzip.Reader) { gzReaderPool.Put(zr) }

// WriteFile stores a snapshot at path in JSONL form, gzip-compressed when
// the path ends in ".gz". Corpus-scale snapshots compress roughly 10x.
//
// The commit is atomic and durable: the snapshot is written to
// "<path>.tmp", fsync'd, renamed over path, and the directory fsync'd.
// A crash at any point leaves either the old committed file or the new
// one at path — never a truncated half-gzipped hybrid.
func WriteFile(path string, s *Snapshot) error {
	return atomicWrite(path, func(w io.Writer) error {
		_, err := s.WriteTo(w)
		return err
	})
}

// atomicWrite commits write's output at path with tmp+fsync+rename
// semantics. On any error the temporary file is removed and path is
// untouched.
func atomicWrite(path string, write func(w io.Writer) error) (err error) {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	committed := false
	defer func() {
		if !committed {
			f.Close()
			os.Remove(tmp)
		}
	}()
	var w io.Writer = f
	var zw *gzip.Writer
	if strings.HasSuffix(path, ".gz") {
		zw = getGzWriter(f)
		defer putGzWriter(zw)
		w = zw
	}
	if err := write(w); err != nil {
		return fmt.Errorf("dataset: write %s: %w", tmp, err)
	}
	if zw != nil {
		if err := zw.Close(); err != nil {
			return fmt.Errorf("dataset: write %s: %w", tmp, err)
		}
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	committed = true
	// The rename itself must survive a crash: fsync the directory.
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a just-renamed entry is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// ReadFile loads a snapshot written by WriteFile, transparently
// decompressing ".gz" paths. Read errors carry path and line context so
// damage (for example a truncated gzip stream) is locatable.
func ReadFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		zr, err := getGzReader(f)
		if err != nil {
			return nil, fmt.Errorf("dataset: %s: %w", path, err)
		}
		defer putGzReader(zr)
		r = zr
	}
	return readNamed(r, path)
}
