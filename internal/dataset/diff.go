package dataset

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
)

// DiffKind classifies one domain's change between two snapshots.
type DiffKind int

// Diff kinds.
const (
	// DiffChanged means the domain exists in both snapshots but its
	// serialized record — or an IP observation it references — differs.
	DiffChanged DiffKind = iota
	// DiffAdded means the domain exists only in the new snapshot.
	DiffAdded
	// DiffRemoved means the domain exists only in the old snapshot.
	DiffRemoved
)

// String names the kind.
func (k DiffKind) String() string {
	switch k {
	case DiffChanged:
		return "changed"
	case DiffAdded:
		return "added"
	case DiffRemoved:
		return "removed"
	default:
		return fmt.Sprintf("DiffKind(%d)", int(k))
	}
}

// Change is one differing domain between two snapshots.
type Change struct {
	// Domain is the affected domain name.
	Domain string
	// Kind says how it differs.
	Kind DiffKind
}

// DiffStats summarizes a snapshot diff.
type DiffStats struct {
	// OldDomains and NewDomains count each side's domain records.
	OldDomains int `json:"old_domains"`
	NewDomains int `json:"new_domains"`
	// Added, Removed, Changed and Unchanged partition the merged domain
	// set: Added+Changed+Unchanged == NewDomains and
	// Removed+Changed+Unchanged == OldDomains.
	Added     int `json:"added"`
	Removed   int `json:"removed"`
	Changed   int `json:"changed"`
	Unchanged int `json:"unchanged"`
	// IPsChanged counts addresses whose serialized observation differs
	// between the sides (including addresses present on only one side).
	IPsChanged int `json:"ips_changed"`
}

// domainKey is one side's comparison key for a single domain: a
// fingerprint over the record's serialized form plus a flag marking
// whether the record references an address whose observation changed.
// Comparing keys instead of records keeps the merge O(1) per domain.
type domainKey struct {
	domain     string
	fp         uint64
	refChanged bool
}

// keyOf fingerprints one domain record. The FNV-1a hash runs over the
// record's canonical JSON, which serializes exactly the fields a
// snapshot file persists (MX sets with addresses, SPF, delegation,
// rank); the transient Failure field is excluded by its json:"-" tag on
// both sides, so re-collection noise cannot masquerade as churn.
func keyOf(d *DomainRecord, changedIPs map[string]bool) (domainKey, error) {
	raw, err := json.Marshal(d)
	if err != nil {
		return domainKey{}, err
	}
	h := fnv.New64a()
	h.Write(raw)
	k := domainKey{domain: d.Domain, fp: h.Sum64()}
	if len(changedIPs) > 0 {
		for i := range d.MX {
			for _, a := range d.MX[i].Addrs {
				if changedIPs[a.String()] {
					k.refChanged = true
					return k, nil
				}
			}
		}
	}
	return k, nil
}

// diffIPs compares two IP tables and returns the set of addresses whose
// serialized observation differs (certificate, banner, port-25 state,
// parked/ASN metadata — everything an attribution can read).
func diffIPs(old, new map[string]IPInfo) (map[string]bool, error) {
	changed := make(map[string]bool)
	marshal := func(info IPInfo) ([]byte, error) { return json.Marshal(&info) }
	for addr, o := range old {
		n, ok := new[addr]
		if !ok {
			changed[addr] = true
			continue
		}
		ob, err := marshal(o)
		if err != nil {
			return nil, err
		}
		nb, err := marshal(n)
		if err != nil {
			return nil, err
		}
		if string(ob) != string(nb) {
			changed[addr] = true
		}
	}
	for addr := range new {
		if _, ok := old[addr]; !ok {
			changed[addr] = true
		}
	}
	return changed, nil
}

// keySeq pulls domainKeys one at a time from a source; next returns
// ok=false at end of sequence. abort releases the source early.
type keySeq struct {
	next  func() (domainKey, bool, error)
	abort func()
}

// streamKeys adapts a Stream's callback iteration into a pull sequence
// via a pump goroutine, so two streams can be merge-joined in lockstep
// with O(1) domain memory.
func streamKeys(st *Stream, changedIPs map[string]bool) *keySeq {
	type item struct {
		key domainKey
		err error
	}
	ch := make(chan item, 64)
	stop := make(chan struct{})
	go func() {
		defer close(ch)
		err := st.ForEach(func(d *DomainRecord) error {
			k, err := keyOf(d, changedIPs)
			if err != nil {
				return err
			}
			select {
			case ch <- item{key: k}:
				return nil
			case <-stop:
				return ErrStop
			}
		}, nil)
		if err != nil {
			select {
			case ch <- item{err: err}:
			case <-stop:
			}
		}
	}()
	var stopped bool
	return &keySeq{
		next: func() (domainKey, bool, error) {
			it, ok := <-ch
			if !ok {
				return domainKey{}, false, nil
			}
			if it.err != nil {
				return domainKey{}, false, it.err
			}
			return it.key, true, nil
		},
		abort: func() {
			if !stopped {
				stopped = true
				close(stop)
				for range ch { // release a pump blocked on send
				}
			}
		},
	}
}

// sliceKeys is the materialized-snapshot counterpart of streamKeys: the
// domain records are fingerprinted in sorted-name order up front.
func sliceKeys(s *Snapshot, changedIPs map[string]bool) (*keySeq, error) {
	order := make([]int, len(s.Domains))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return s.Domains[order[a]].Domain < s.Domains[order[b]].Domain
	})
	keys := make([]domainKey, len(order))
	for i, idx := range order {
		k, err := keyOf(&s.Domains[idx], changedIPs)
		if err != nil {
			return nil, err
		}
		keys[i] = k
	}
	pos := 0
	return &keySeq{
		next: func() (domainKey, bool, error) {
			if pos >= len(keys) {
				return domainKey{}, false, nil
			}
			k := keys[pos]
			pos++
			return k, true, nil
		},
		abort: func() {},
	}, nil
}

// DiffStream compares two on-disk snapshots domain by domain and
// reports every difference through fn (which may be nil to collect
// stats only). The comparison covers the full observation surface that
// inference reads: the domain's MX records and addresses, SPF and
// delegation data, plus the certificate/banner/port-25 observations of
// every address the domain references — so a cert rotation on a shared
// exchange marks all its domains changed.
//
// Both files must store domains in sorted order, which canonical
// snapshot files (WriteFile / Merge output) guarantee; an out-of-order
// domain is reported as an error. Memory is bounded by the two IP
// tables — the domain sections stream through a merge-join.
//
// fn is invoked in merged sorted-domain order. A fn returning ErrStop
// ends the diff successfully with partial stats.
func DiffStream(old, new *Stream, fn func(Change) error) (DiffStats, error) {
	oldIPs, err := old.LoadIPs()
	if err != nil {
		return DiffStats{}, err
	}
	newIPs, err := new.LoadIPs()
	if err != nil {
		return DiffStats{}, err
	}
	changedIPs, err := diffIPs(oldIPs, newIPs)
	if err != nil {
		return DiffStats{}, err
	}
	po := streamKeys(old, changedIPs)
	pn := streamKeys(new, changedIPs)
	defer po.abort()
	defer pn.abort()
	return mergeDiff(po, pn, len(changedIPs), fn)
}

// DiffSnapshots is DiffStream over materialized snapshots, sharing the
// same comparison semantics; domain order within each snapshot does not
// matter (records are fingerprinted in sorted-name order).
func DiffSnapshots(old, new *Snapshot, fn func(Change) error) (DiffStats, error) {
	changedIPs, err := diffIPs(old.IPs, new.IPs)
	if err != nil {
		return DiffStats{}, err
	}
	po, err := sliceKeys(old, changedIPs)
	if err != nil {
		return DiffStats{}, err
	}
	pn, err := sliceKeys(new, changedIPs)
	if err != nil {
		return DiffStats{}, err
	}
	return mergeDiff(po, pn, len(changedIPs), fn)
}

// mergeDiff merge-joins two sorted key sequences, classifying each
// domain and enforcing the sorted-unique order contract.
func mergeDiff(po, pn *keySeq, ipsChanged int, fn func(Change) error) (DiffStats, error) {
	stats := DiffStats{IPsChanged: ipsChanged}
	emit := func(c Change) error {
		if fn == nil {
			return nil
		}
		return fn(c)
	}
	var prevOld, prevNew string
	advance := func(seq *keySeq, prev *string, side string) (domainKey, bool, error) {
		k, ok, err := seq.next()
		if err != nil || !ok {
			return k, ok, err
		}
		if *prev != "" && k.domain <= *prev {
			return k, false, fmt.Errorf("dataset: diff: %s snapshot domains not in sorted unique order (%q after %q)",
				side, k.domain, *prev)
		}
		*prev = k.domain
		return k, true, nil
	}
	o, okO, err := advance(po, &prevOld, "old")
	if err != nil {
		return stats, err
	}
	n, okN, err := advance(pn, &prevNew, "new")
	if err != nil {
		return stats, err
	}
	for okO || okN {
		switch {
		case !okN || (okO && o.domain < n.domain):
			stats.OldDomains++
			stats.Removed++
			if err := emit(Change{Domain: o.domain, Kind: DiffRemoved}); err != nil {
				if err == ErrStop {
					return stats, nil
				}
				return stats, err
			}
			if o, okO, err = advance(po, &prevOld, "old"); err != nil {
				return stats, err
			}
		case !okO || n.domain < o.domain:
			stats.NewDomains++
			stats.Added++
			if err := emit(Change{Domain: n.domain, Kind: DiffAdded}); err != nil {
				if err == ErrStop {
					return stats, nil
				}
				return stats, err
			}
			if n, okN, err = advance(pn, &prevNew, "new"); err != nil {
				return stats, err
			}
		default:
			stats.OldDomains++
			stats.NewDomains++
			if o.fp != n.fp || o.refChanged || n.refChanged {
				stats.Changed++
				if err := emit(Change{Domain: n.domain, Kind: DiffChanged}); err != nil {
					if err == ErrStop {
						return stats, nil
					}
					return stats, err
				}
			} else {
				stats.Unchanged++
			}
			if o, okO, err = advance(po, &prevOld, "old"); err != nil {
				return stats, err
			}
			if n, okN, err = advance(pn, &prevNew, "new"); err != nil {
				return stats, err
			}
		}
	}
	return stats, nil
}
