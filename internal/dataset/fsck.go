package dataset

// Dataset fsck: offline validation of the two on-disk artifacts the
// collection pipeline produces — committed snapshots (JSONL, optionally
// gzipped) and write-ahead journals. It checks physical integrity
// (framing, CRCs, gzip stream, JSON well-formedness) and, for
// snapshots, the cross-record invariants the inference layer depends
// on: a single header, no duplicate domains, and a closed join between
// domains and IPs (every address an MX resolved to has an IP record,
// every IP record is referenced by some domain). Damage is reported
// with the salvageable prefix so an operator knows what a resume or a
// manual rescue would preserve.

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// maxFsckProblems bounds the report; corrupt files can violate an
// invariant once per record.
const maxFsckProblems = 20

// FsckReport is the outcome of validating one snapshot or journal file.
type FsckReport struct {
	// Path is the file checked.
	Path string `json:"path"`
	// Kind is "journal" or "snapshot", detected from the file magic.
	Kind string `json:"kind"`
	// Clean reports a fully intact file with all invariants holding.
	Clean bool `json:"clean"`
	// Recoverable reports that an intact prefix exists: a resume (for
	// journals) or a manual line-range rescue (for snapshots) preserves
	// Entries records.
	Recoverable bool `json:"recoverable"`
	// Entries counts intact records (journal frames or snapshot lines,
	// excluding the header).
	Entries int `json:"entries"`
	// ValidBytes and TotalBytes delimit the trusted prefix.
	ValidBytes int64 `json:"valid_bytes"`
	TotalBytes int64 `json:"total_bytes"`
	// Salvageable describes the intact range in human terms
	// ("lines 1-42 of 45"), empty when the whole file is clean.
	Salvageable string `json:"salvageable,omitempty"`
	// Problems lists what fsck found, capped at maxFsckProblems.
	Problems []string `json:"problems,omitempty"`

	truncatedProblems int
}

// sortedKeys keeps invariant-violation output deterministic.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func (r *FsckReport) problem(format string, args ...any) {
	if len(r.Problems) >= maxFsckProblems {
		r.truncatedProblems++
		return
	}
	r.Problems = append(r.Problems, fmt.Sprintf(format, args...))
}

// WriteText renders the report for operators.
func (r *FsckReport) WriteText(w io.Writer) error {
	state := "CLEAN"
	switch {
	case r.Clean:
	case r.Recoverable:
		state = "RECOVERABLE"
	default:
		state = "CORRUPT"
	}
	if _, err := fmt.Fprintf(w, "%s: %s %s: %d entries, %d/%d bytes intact\n",
		r.Path, r.Kind, state, r.Entries, r.ValidBytes, r.TotalBytes); err != nil {
		return err
	}
	if r.Salvageable != "" {
		if _, err := fmt.Fprintf(w, "  salvageable: %s\n", r.Salvageable); err != nil {
			return err
		}
	}
	for _, p := range r.Problems {
		if _, err := fmt.Fprintf(w, "  problem: %s\n", p); err != nil {
			return err
		}
	}
	if r.truncatedProblems > 0 {
		if _, err := fmt.Fprintf(w, "  ... and %d more problems\n", r.truncatedProblems); err != nil {
			return err
		}
	}
	return nil
}

// Fsck validates the snapshot or journal file at path. The error return
// covers I/O only; damage inside the file lands in the report.
func Fsck(path string) (*FsckReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	magic := make([]byte, len(journalMagic))
	n, err := io.ReadFull(f, magic)
	if err != nil && err != io.ErrUnexpectedEOF && err != io.EOF {
		return nil, err
	}
	if n == len(journalMagic) && string(magic) == journalMagic {
		return fsckJournal(path)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	return fsckSnapshot(path, f)
}

// fsckJournal validates a write-ahead journal via the recovery reader:
// a clean journal recovers to the end of the file, a torn one is
// recoverable up to its last intact frame.
func fsckJournal(path string) (*FsckReport, error) {
	rec, err := RecoverJournal(path)
	if err != nil {
		return nil, err
	}
	r := &FsckReport{
		Path:       path,
		Kind:       "journal",
		Entries:    rec.Entries,
		ValidBytes: rec.ValidBytes,
		TotalBytes: rec.TotalBytes,
	}
	r.Clean = !rec.Truncated && rec.Snapshot != nil
	r.Recoverable = rec.Snapshot != nil
	if rec.Snapshot == nil {
		r.problem("no intact header frame; the journal identifies no run")
	}
	if rec.Truncated {
		r.problem("%s; %d trailing bytes will be discarded on resume",
			rec.Reason, rec.TotalBytes-rec.ValidBytes)
		r.Salvageable = fmt.Sprintf("%d entries in bytes 0-%d (of %d)",
			rec.Entries, rec.ValidBytes, rec.TotalBytes)
	}
	return r, nil
}

// fsckSnapshot validates a committed snapshot file: gzip stream, JSONL
// framing, and the cross-record invariants.
func fsckSnapshot(path string, f *os.File) (*FsckReport, error) {
	r := &FsckReport{Path: path, Kind: "snapshot"}
	if fi, err := f.Stat(); err == nil {
		r.TotalBytes = fi.Size()
	}
	var src io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		zr, err := gzip.NewReader(f)
		if err != nil {
			r.problem("not a gzip stream: %v", err)
			return r, nil
		}
		defer zr.Close()
		src = zr
	}

	// Physical pass: every line must be well-formed JSON of a known
	// kind, header first and only once.
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	var (
		lineno     int
		intact     int
		salvage    int // last line of the intact prefix
		headerSeen bool
		damaged    bool
		domainAt   = make(map[string]int) // domain -> first line
		refs       = make(map[string]int) // referenced addr -> first referencing line
		ipAt       = make(map[string]int) // ip record addr -> line
	)
	for sc.Scan() {
		lineno++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var line jsonLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			r.problem("line %d: malformed JSON: %v", lineno, err)
			damaged = true
			salvage = lineno - 1
			break
		}
		switch line.Kind {
		case "snapshot":
			if headerSeen {
				r.problem("line %d: duplicate header", lineno)
			} else if line.Header == nil {
				r.problem("line %d: header line without header body", lineno)
			}
			headerSeen = true
		case "domain":
			switch {
			case !headerSeen:
				r.problem("line %d: domain before header", lineno)
			case line.Domain == nil:
				r.problem("line %d: domain line without body", lineno)
			default:
				if first, dup := domainAt[line.Domain.Domain]; dup {
					r.problem("line %d: duplicate domain %s (first at line %d)",
						lineno, line.Domain.Domain, first)
				} else {
					domainAt[line.Domain.Domain] = lineno
				}
				for _, mx := range line.Domain.MX {
					for _, a := range mx.Addrs {
						if _, ok := refs[a.String()]; !ok {
							refs[a.String()] = lineno
						}
					}
				}
				intact++
			}
		case "ip":
			switch {
			case !headerSeen:
				r.problem("line %d: ip before header", lineno)
			case line.IP == nil:
				r.problem("line %d: ip line without body", lineno)
			default:
				ipAt[line.IP.Addr.String()] = lineno
				intact++
			}
		default:
			r.problem("line %d: unknown kind %q", lineno, line.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		// Stream-level damage: truncated gzip, oversize line.
		r.problem("line %d: %v", lineno+1, err)
		damaged = true
		salvage = lineno
	}
	r.Entries = intact
	if !headerSeen && !damaged {
		r.problem("no header line")
	}
	if damaged && salvage > 0 {
		r.Salvageable = fmt.Sprintf("lines 1-%d (%d records)", salvage, intact)
	}

	// Cross-record invariants are only meaningful on a physically intact
	// file; on a torn one every tail record would be "missing".
	if !damaged && headerSeen {
		// Every address an MX resolved to was scanned (or at least
		// classified): it must have an ip record.
		for _, addr := range sortedKeys(refs) {
			if _, ok := ipAt[addr]; !ok {
				r.problem("line %d: references %s but the snapshot has no ip record for it", refs[addr], addr)
			}
		}
		// Every ip record is reachable from some domain's MX set; an
		// orphan means the domain that produced it was lost.
		for _, addr := range sortedKeys(ipAt) {
			if _, ok := refs[addr]; !ok {
				r.problem("line %d: ip record %s referenced by no domain", ipAt[addr], addr)
			}
		}
	}

	r.Clean = len(r.Problems) == 0 && r.truncatedProblems == 0
	r.Recoverable = !r.Clean && intact > 0
	if r.Clean {
		r.ValidBytes = r.TotalBytes
	}
	return r, nil
}
