package dataset

import (
	"net/netip"
	"reflect"
	"sort"
	"sync"
	"testing"
)

func indexSnapshot() *Snapshot {
	s := NewSnapshot("2021-06", "test")
	s.AddDomain(DomainRecord{Domain: "a.com", MX: []MXObs{
		{Preference: 10, Exchange: "mx.shared.com", Addrs: []netip.Addr{netip.MustParseAddr("10.0.0.1")}},
		{Preference: 20, Exchange: "backup.other.com"},
	}})
	s.AddDomain(DomainRecord{Domain: "b.com", MX: []MXObs{
		{Preference: 5, Exchange: "mx.b.com", Addrs: []netip.Addr{netip.MustParseAddr("10.0.0.2")}},
		{Preference: 5, Exchange: "mx.shared.com", Addrs: []netip.Addr{netip.MustParseAddr("10.0.0.1")}},
	}})
	s.AddDomain(DomainRecord{Domain: "c.com"}) // no MX
	s.AddIP(IPInfo{Addr: netip.MustParseAddr("10.0.0.2")})
	s.AddIP(IPInfo{Addr: netip.MustParseAddr("10.0.0.1")})
	return s
}

func TestIndexSortedIPKeys(t *testing.T) {
	s := indexSnapshot()
	idx := s.Index()
	if len(idx.SortedIPKeys) != len(s.IPs) {
		t.Fatalf("SortedIPKeys len = %d, want %d", len(idx.SortedIPKeys), len(s.IPs))
	}
	if !sort.StringsAreSorted(idx.SortedIPKeys) {
		t.Errorf("keys not sorted: %v", idx.SortedIPKeys)
	}
	for _, k := range idx.SortedIPKeys {
		if _, ok := s.IPs[k]; !ok {
			t.Errorf("key %q not in IPs", k)
		}
	}
}

func TestIndexPrimaryMXMatches(t *testing.T) {
	s := indexSnapshot()
	idx := s.Index()
	for i := range s.Domains {
		want := s.Domains[i].PrimaryMX()
		if !reflect.DeepEqual(idx.PrimaryMX[i], want) {
			t.Errorf("PrimaryMX[%d] = %+v, want %+v", i, idx.PrimaryMX[i], want)
		}
	}
}

func TestIndexExchanges(t *testing.T) {
	s := indexSnapshot()
	idx := s.Index()
	// First-appearance order: a.com's primary (mx.shared.com) then b.com's
	// two primaries (mx.b.com, mx.shared.com dedup'd). backup.other.com is
	// not primary and must not appear.
	wantOrder := []string{"mx.shared.com", "mx.b.com"}
	if len(idx.Exchanges) != len(wantOrder) {
		t.Fatalf("Exchanges = %+v, want %v", idx.Exchanges, wantOrder)
	}
	for i, want := range wantOrder {
		if idx.Exchanges[i].Exchange != want {
			t.Errorf("Exchanges[%d] = %q, want %q", i, idx.Exchanges[i].Exchange, want)
		}
		if idx.ExchangeIndex[want] != i {
			t.Errorf("ExchangeIndex[%q] = %d, want %d", want, idx.ExchangeIndex[want], i)
		}
	}
	// mx.shared.com backs domains 0 and 1; mx.b.com backs only domain 1.
	if !reflect.DeepEqual(idx.ExchangeDomains[0], []int{0, 1}) {
		t.Errorf("ExchangeDomains[0] = %v", idx.ExchangeDomains[0])
	}
	if !reflect.DeepEqual(idx.ExchangeDomains[1], []int{1}) {
		t.Errorf("ExchangeDomains[1] = %v", idx.ExchangeDomains[1])
	}
}

func TestIndexCachedAndInvalidated(t *testing.T) {
	s := indexSnapshot()
	a := s.Index()
	if b := s.Index(); a != b {
		t.Error("Index not cached across calls")
	}
	s.AddDomain(DomainRecord{Domain: "d.com", MX: []MXObs{{Preference: 1, Exchange: "mx.d.com"}}})
	c := s.Index()
	if c == a {
		t.Error("Index not invalidated by AddDomain")
	}
	if _, ok := c.ExchangeIndex["mx.d.com"]; !ok {
		t.Error("rebuilt index missing new exchange")
	}
	s.AddIP(IPInfo{Addr: netip.MustParseAddr("10.0.0.3")})
	if d := s.Index(); d == c || len(d.SortedIPKeys) != 3 {
		t.Error("Index not invalidated by AddIP")
	}
}

func TestIndexConcurrentBuild(t *testing.T) {
	s := indexSnapshot()
	var wg sync.WaitGroup
	got := make([]*Index, 8)
	for w := range got {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got[w] = s.Index()
		}()
	}
	wg.Wait()
	for _, idx := range got[1:] {
		if idx != got[0] {
			t.Fatal("concurrent Index calls returned different builds")
		}
	}
}
