package dataset

import (
	"net/netip"
	"path/filepath"
	"reflect"
	"testing"
)

// diffWorldOld builds the "old" side of the diff fixtures: four domains
// across two providers plus one domain whose exchange address will
// rotate its certificate.
func diffWorldOld() *Snapshot {
	s := NewSnapshot("2021-01", "alexa")
	s.AddDomain(DomainRecord{
		Domain: "alpha.example", Rank: 1,
		MX: []MXObs{{Preference: 10, Exchange: "mx.prov-a.example", Addrs: []netip.Addr{addr("192.0.2.1")}}},
	})
	s.AddDomain(DomainRecord{
		Domain: "bravo.example", Rank: 2,
		MX: []MXObs{{Preference: 10, Exchange: "mx.prov-b.example", Addrs: []netip.Addr{addr("192.0.2.2")}}},
	})
	s.AddDomain(DomainRecord{
		Domain: "charlie.example", Rank: 3,
		MX: []MXObs{{Preference: 10, Exchange: "mx.prov-a.example", Addrs: []netip.Addr{addr("192.0.2.1")}}},
	})
	s.AddDomain(DomainRecord{
		Domain: "delta.example", Rank: 4,
		MX: []MXObs{{Preference: 10, Exchange: "mx.rotate.example", Addrs: []netip.Addr{addr("192.0.2.3")}}},
	})
	s.AddIP(IPInfo{Addr: addr("192.0.2.1"), ASN: 64500, ASName: "PROV-A", Port25Open: true,
		Scan: &ScanInfo{BannerHost: "mx.prov-a.example", EHLOHost: "mx.prov-a.example"}})
	s.AddIP(IPInfo{Addr: addr("192.0.2.2"), ASN: 64501, ASName: "PROV-B", Port25Open: true,
		Scan: &ScanInfo{BannerHost: "mx.prov-b.example", EHLOHost: "mx.prov-b.example"}})
	s.AddIP(IPInfo{Addr: addr("192.0.2.3"), ASN: 64502, ASName: "ROTATE", Port25Open: true,
		Scan: &ScanInfo{CertPresent: true, CertValid: true, CertFingerprint: "cert-v1",
			CertNames: []string{"mx.rotate.example"}}})
	return s
}

// diffWorldNew derives the "new" side: bravo's MX moves to prov-a,
// charlie disappears, echo appears, and delta's exchange address rotates
// its certificate while delta's own record bytes stay identical.
func diffWorldNew() *Snapshot {
	s := NewSnapshot("2021-02", "alexa")
	s.AddDomain(DomainRecord{
		Domain: "alpha.example", Rank: 1,
		MX: []MXObs{{Preference: 10, Exchange: "mx.prov-a.example", Addrs: []netip.Addr{addr("192.0.2.1")}}},
	})
	s.AddDomain(DomainRecord{
		Domain: "bravo.example", Rank: 2,
		MX: []MXObs{{Preference: 10, Exchange: "mx.prov-a.example", Addrs: []netip.Addr{addr("192.0.2.1")}}},
	})
	s.AddDomain(DomainRecord{
		Domain: "delta.example", Rank: 4,
		MX: []MXObs{{Preference: 10, Exchange: "mx.rotate.example", Addrs: []netip.Addr{addr("192.0.2.3")}}},
	})
	s.AddDomain(DomainRecord{
		Domain: "echo.example", Rank: 5,
		MX: []MXObs{{Preference: 10, Exchange: "mx.prov-b.example", Addrs: []netip.Addr{addr("192.0.2.2")}}},
	})
	s.AddIP(IPInfo{Addr: addr("192.0.2.1"), ASN: 64500, ASName: "PROV-A", Port25Open: true,
		Scan: &ScanInfo{BannerHost: "mx.prov-a.example", EHLOHost: "mx.prov-a.example"}})
	s.AddIP(IPInfo{Addr: addr("192.0.2.2"), ASN: 64501, ASName: "PROV-B", Port25Open: true,
		Scan: &ScanInfo{BannerHost: "mx.prov-b.example", EHLOHost: "mx.prov-b.example"}})
	s.AddIP(IPInfo{Addr: addr("192.0.2.3"), ASN: 64502, ASName: "ROTATE", Port25Open: true,
		Scan: &ScanInfo{CertPresent: true, CertValid: true, CertFingerprint: "cert-v2",
			CertNames: []string{"mx.rotate.example"}}})
	return s
}

var diffWorldWantChanges = []Change{
	{Domain: "bravo.example", Kind: DiffChanged},
	{Domain: "charlie.example", Kind: DiffRemoved},
	{Domain: "delta.example", Kind: DiffChanged}, // via cert-v1 -> cert-v2 on its address
	{Domain: "echo.example", Kind: DiffAdded},
}

var diffWorldWantStats = DiffStats{
	OldDomains: 4, NewDomains: 4,
	Added: 1, Removed: 1, Changed: 2, Unchanged: 1,
	IPsChanged: 1,
}

func TestDiffSnapshots(t *testing.T) {
	old, new := diffWorldOld(), diffWorldNew()
	var got []Change
	stats, err := DiffSnapshots(old, new, func(c Change) error {
		got = append(got, c)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats != diffWorldWantStats {
		t.Errorf("stats = %+v, want %+v", stats, diffWorldWantStats)
	}
	if !reflect.DeepEqual(got, diffWorldWantChanges) {
		t.Errorf("changes = %+v, want %+v", got, diffWorldWantChanges)
	}
}

func TestDiffStreamMatchesSnapshots(t *testing.T) {
	dir := t.TempDir()
	old, new := diffWorldOld(), diffWorldNew()
	old.SortDomains()
	new.SortDomains()
	oldPath := filepath.Join(dir, "old.jsonl")
	newPath := filepath.Join(dir, "new.jsonl.gz")
	if err := WriteFile(oldPath, old); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(newPath, new); err != nil {
		t.Fatal(err)
	}
	oldSt, err := OpenStream(oldPath)
	if err != nil {
		t.Fatal(err)
	}
	newSt, err := OpenStream(newPath)
	if err != nil {
		t.Fatal(err)
	}
	var got []Change
	stats, err := DiffStream(oldSt, newSt, func(c Change) error {
		got = append(got, c)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats != diffWorldWantStats {
		t.Errorf("stats = %+v, want %+v", stats, diffWorldWantStats)
	}
	if !reflect.DeepEqual(got, diffWorldWantChanges) {
		t.Errorf("changes = %+v, want %+v", got, diffWorldWantChanges)
	}
}

func TestDiffIdenticalSnapshots(t *testing.T) {
	stats, err := DiffSnapshots(diffWorldOld(), diffWorldOld(), func(c Change) error {
		t.Errorf("unexpected change %+v on identical snapshots", c)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := DiffStats{OldDomains: 4, NewDomains: 4, Unchanged: 4}
	if stats != want {
		t.Errorf("stats = %+v, want %+v", stats, want)
	}
}

func TestDiffStreamStopEarly(t *testing.T) {
	dir := t.TempDir()
	old, new := diffWorldOld(), diffWorldNew()
	old.SortDomains()
	new.SortDomains()
	oldPath := filepath.Join(dir, "old.jsonl")
	newPath := filepath.Join(dir, "new.jsonl")
	if err := WriteFile(oldPath, old); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(newPath, new); err != nil {
		t.Fatal(err)
	}
	oldSt, _ := OpenStream(oldPath)
	newSt, _ := OpenStream(newPath)
	seen := 0
	_, err := DiffStream(oldSt, newSt, func(Change) error {
		seen++
		return ErrStop
	})
	if err != nil {
		t.Fatalf("ErrStop surfaced as error: %v", err)
	}
	if seen != 1 {
		t.Errorf("callback ran %d times after ErrStop, want 1", seen)
	}
}
