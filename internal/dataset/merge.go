package dataset

import (
	"bufio"
	"compress/gzip"
	"container/heap"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// Merge k-way-merges sorted shard files into the canonical snapshot at
// outPath (gzip-compressed when the path ends in ".gz", committed
// atomically). The output is byte-identical to Snapshot.WriteTo of the
// equivalent fully materialized snapshot: shard lines were produced by
// the same encoder, so the merge passes raw line bytes through and only
// decodes the key fields needed for ordering.
//
// Invariants enforced (an error aborts the merge and leaves outPath
// untouched):
//
//   - every shard carries the same (date, corpus) header;
//   - each shard's domain and IP sections are strictly increasing;
//   - each shard ends with a footer whose counts match its body.
//
// Duplicate keys across shards resolve last-write-wins toward the
// highest shard sequence number, matching journal replay semantics.
func Merge(outPath string, shardPaths []string) (*MergeStats, error) {
	if len(shardPaths) == 0 {
		return nil, fmt.Errorf("dataset: merge: no shards")
	}
	readers := make([]*shardReader, 0, len(shardPaths))
	defer func() {
		for _, r := range readers {
			r.close()
		}
	}()
	for i, p := range shardPaths {
		r, err := openShard(p)
		if err != nil {
			return nil, err
		}
		// The sequence number resolves duplicate keys before the footer
		// confirming it has been reached; take it from the file name
		// (where ShardPath put it), falling back to argument position.
		if seq, ok := parseShardSeq(p); ok {
			r.seq = seq
		} else {
			r.seq = i
		}
		readers = append(readers, r)
		if r0 := readers[0]; r.hdr != r0.hdr {
			return nil, fmt.Errorf("dataset: merge: %s header (%s,%s) disagrees with %s (%s,%s)",
				r.path, r.hdr.Corpus, r.hdr.Date, r0.path, r0.hdr.Corpus, r0.hdr.Date)
		}
	}

	stats := &MergeStats{Shards: len(shardPaths)}
	err := atomicWrite(outPath, func(out io.Writer) error {
		bw := bufWriterPool.Get().(*bufio.Writer)
		bw.Reset(out)
		defer func() {
			bw.Reset(io.Discard)
			bufWriterPool.Put(bw)
		}()
		enc := json.NewEncoder(bw)
		hdr := readers[0].hdr
		if err := enc.Encode(jsonLine{Kind: "snapshot", Header: &hdr}); err != nil {
			return err
		}
		if err := mergeInto(bw, readers, stats); err != nil {
			return err
		}
		return bw.Flush()
	})
	if err != nil {
		return nil, err
	}
	return stats, nil
}

// MergeStats summarizes one merge.
type MergeStats struct {
	// Shards is the number of input shard files.
	Shards int `json:"shards"`
	// Domains and IPs count the records in the merged output.
	Domains int `json:"domains"`
	IPs     int `json:"ips"`
	// DupDomains and DupIPs count cross-shard duplicate records dropped
	// by last-write-wins resolution.
	DupDomains int `json:"dup_domains"`
	DupIPs     int `json:"dup_ips"`
}

// mergeInto writes the merged, deduplicated record lines to w.
func mergeInto(w io.Writer, readers []*shardReader, stats *MergeStats) error {
	if len(readers) == 1 {
		// Single-shard fast path: the shard body already is the canonical
		// record sequence; stream it through (validation still runs in
		// advance()).
		r := readers[0]
		for r.kind != "" {
			if err := writeLine(w, r.line); err != nil {
				return err
			}
			stats.count(r.kind, 0)
			if err := r.advance(); err != nil {
				return err
			}
		}
		return nil
	}

	h := make(readerHeap, 0, len(readers))
	for _, r := range readers {
		if r.kind != "" {
			h = append(h, r)
		}
	}
	heap.Init(&h)
	var group []*shardReader
	for len(h) > 0 {
		top := h[0]
		rank, key := top.rank(), top.key
		group = group[:0]
		for len(h) > 0 && h[0].rank() == rank && h[0].key == key {
			group = append(group, heap.Pop(&h).(*shardReader))
		}
		winner := group[0]
		for _, r := range group[1:] {
			if r.seq > winner.seq {
				winner = r
			}
		}
		if err := writeLine(w, winner.line); err != nil {
			return err
		}
		stats.count(winner.kind, len(group)-1)
		for _, r := range group {
			if err := r.advance(); err != nil {
				return err
			}
			if r.kind != "" {
				heap.Push(&h, r)
			}
		}
	}
	return nil
}

func (ms *MergeStats) count(kind string, dups int) {
	if kind == "domain" {
		ms.Domains++
		ms.DupDomains += dups
	} else {
		ms.IPs++
		ms.DupIPs += dups
	}
}

func writeLine(w io.Writer, line []byte) error {
	if _, err := w.Write(line); err != nil {
		return err
	}
	_, err := w.Write([]byte{'\n'})
	return err
}

// keyProbe decodes only the fields the merge needs to order a line.
type keyProbe struct {
	Kind   string `json:"kind"`
	Domain struct {
		Domain string `json:"domain"`
	} `json:"domain"`
	IP struct {
		Addr string `json:"addr"`
	} `json:"ip"`
}

// shardReader streams one shard file, holding the current record's kind,
// sort key, and raw line bytes, and validating the format invariants as
// it goes.
type shardReader struct {
	path    string
	f       *os.File
	zr      *gzip.Reader
	sc      *bufio.Scanner
	lineBuf *[]byte
	lineno  int

	hdr    snapshotHeader
	seq    int
	footer *ShardFooter

	// current record; kind "" means exhausted (footer consumed).
	kind string
	key  string
	line []byte

	nDomains, nIPs int
}

func openShard(path string) (*shardReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r := &shardReader{path: path, f: f}
	var src io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		zr, err := getGzReader(f)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("dataset: %s: %w", path, err)
		}
		r.zr = zr
		src = zr
	}
	r.sc, r.lineBuf = newLineScanner(src)
	if err := r.readHeader(); err != nil {
		r.close()
		return nil, err
	}
	if err := r.advance(); err != nil {
		r.close()
		return nil, err
	}
	return r, nil
}

func (r *shardReader) close() {
	if r.lineBuf != nil {
		putLineBuf(r.lineBuf)
		r.lineBuf = nil
	}
	if r.zr != nil {
		putGzReader(r.zr)
		r.zr = nil
	}
	if r.f != nil {
		r.f.Close()
		r.f = nil
	}
}

func (r *shardReader) errf(format string, args ...any) error {
	return fmt.Errorf("dataset: merge: %s: line %d: %s", r.path, r.lineno, fmt.Sprintf(format, args...))
}

// scan reads the next non-empty line, returning false at EOF.
func (r *shardReader) scan() (bool, error) {
	for r.sc.Scan() {
		r.lineno++
		if len(r.sc.Bytes()) > 0 {
			return true, nil
		}
	}
	if err := r.sc.Err(); err != nil {
		return false, r.errf("%v", err)
	}
	return false, nil
}

func (r *shardReader) readHeader() error {
	ok, err := r.scan()
	if err != nil {
		return err
	}
	if !ok {
		return r.errf("empty shard file")
	}
	var l jsonLine
	if err := json.Unmarshal(r.sc.Bytes(), &l); err != nil {
		return r.errf("%v", err)
	}
	if l.Kind != "snapshot" || l.Header == nil {
		return r.errf("shard does not start with a snapshot header")
	}
	r.hdr = *l.Header
	return nil
}

// advance steps to the next record line. On the footer it validates the
// counts, marks the reader exhausted, and rejects trailing garbage.
func (r *shardReader) advance() error {
	ok, err := r.scan()
	if err != nil {
		return err
	}
	if !ok {
		return r.errf("truncated shard: no footer")
	}
	var probe keyProbe
	if err := json.Unmarshal(r.sc.Bytes(), &probe); err != nil {
		return r.errf("%v", err)
	}
	switch probe.Kind {
	case "domain":
		if r.nIPs > 0 {
			return r.errf("domain record after IP section")
		}
		if probe.Domain.Domain == "" {
			return r.errf("domain record without a name")
		}
		if r.kind == "domain" && probe.Domain.Domain <= r.key {
			return r.errf("domain %q out of order (previous %q)", probe.Domain.Domain, r.key)
		}
		r.setCurrent("domain", probe.Domain.Domain)
		r.nDomains++
	case "ip":
		if probe.IP.Addr == "" {
			return r.errf("ip record without an address")
		}
		if r.kind == "ip" && probe.IP.Addr <= r.key {
			return r.errf("ip %q out of order (previous %q)", probe.IP.Addr, r.key)
		}
		r.setCurrent("ip", probe.IP.Addr)
		r.nIPs++
	case "footer":
		f, err := ParseShardFooter(r.sc.Bytes())
		if err != nil {
			return r.errf("%v", err)
		}
		if f.Domains != r.nDomains || f.IPs != r.nIPs {
			return r.errf("footer counts (%d domains, %d ips) disagree with body (%d, %d)",
				f.Domains, f.IPs, r.nDomains, r.nIPs)
		}
		if seq, ok := parseShardSeq(r.path); ok && seq != f.Seq {
			return r.errf("footer seq %d disagrees with file name seq %d", f.Seq, seq)
		}
		r.footer = f
		r.kind, r.key, r.line = "", "", nil
		if ok, err := r.scan(); err != nil {
			return err
		} else if ok {
			return r.errf("trailing data after footer")
		}
	default:
		return r.errf("unexpected line kind %q", probe.Kind)
	}
	return nil
}

// setCurrent copies the scanner's line into the reader-owned buffer (the
// scanner reuses its backing array on the next Scan).
func (r *shardReader) setCurrent(kind, key string) {
	r.kind, r.key = kind, key
	r.line = append(r.line[:0], r.sc.Bytes()...)
}

// rank orders the two record sections: all domains before all IPs.
func (r *shardReader) rank() int {
	if r.kind == "domain" {
		return 0
	}
	return 1
}

// readerHeap orders shard readers by (section, key).
type readerHeap []*shardReader

func (h readerHeap) Len() int { return len(h) }
func (h readerHeap) Less(i, j int) bool {
	if ri, rj := h[i].rank(), h[j].rank(); ri != rj {
		return ri < rj
	}
	return h[i].key < h[j].key
}
func (h readerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *readerHeap) Push(x any)   { *h = append(*h, x.(*shardReader)) }
func (h *readerHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}
