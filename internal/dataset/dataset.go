// Package dataset defines the measurement data model shared by the
// collection pipeline and the inference methodology: per-domain DNS
// observations (the OpenINTEL substitute) joined with per-IP SMTP scan
// observations (the Censys substitute), grouped into dated snapshots.
//
// It also implements the data-availability breakdown the paper reports in
// Table 4, which partitions a corpus by how much of the signal chain
// (MX -> IP -> scan -> certificate/banner) was observable.
package dataset

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"sync"

	"mxmap/internal/asn"
)

// Delegation provenance values for DomainRecord.Delegation. Empty means
// the parent-side delegation checked out (or no provenance data was
// available — the common case for resolvers without a registry view).
const (
	// DelegationStaleGlue: the registry's NS records for the domain
	// disagree with the apex NS set the serving zone publishes — the
	// answers arrived through stale parent glue (hijack suspect).
	DelegationStaleGlue = "stale-glue"
	// DelegationLame: the domain is delegated but its NS set never
	// answers authoritatively.
	DelegationLame = "lame"
)

// MXObs is one observed MX record with the addresses its exchange
// resolved to.
type MXObs struct {
	// Preference is the MX preference; lower is more preferred.
	Preference uint16 `json:"pref"`
	// Exchange is the MX target host, lower-case, no trailing dot.
	Exchange string `json:"exchange"`
	// Addrs are the IPv4 addresses Exchange resolved to (may be empty).
	Addrs []netip.Addr `json:"addrs,omitempty"`
	// Dangling reports that the exchange's enclosing registered zone is
	// gone from the registry: any addresses came from leftover glue, and
	// the name is claimable (serialized; absent for honest exchanges, so
	// pre-adversarial snapshots keep their exact bytes).
	Dangling bool `json:"dangling,omitempty"`
	// Failure classifies the exchange's address resolution. In-memory
	// only: per-record classes feed Snapshot.Health, which is what gets
	// serialized, keeping the JSONL byte format stable.
	Failure FailureClass `json:"-"`
}

// DomainRecord is one domain's DNS observation in a snapshot.
type DomainRecord struct {
	// Domain is the registered domain measured.
	Domain string `json:"domain"`
	// Rank is the Alexa list rank, 0 for non-Alexa corpora.
	Rank int `json:"rank,omitempty"`
	// MX lists the domain's MX records sorted by preference then name.
	MX []MXObs `json:"mx"`
	// SPF is the domain's published v=spf1 policy, when one exists —
	// collected for the eventual-provider extension (paper §3.4).
	SPF string `json:"spf,omitempty"`
	// Delegation records parent-side provenance trouble: "" (sound or
	// unchecked), DelegationStaleGlue, or DelegationLame. Serialized so
	// the trust pass in inference sees it after a disk round trip.
	Delegation string `json:"delegation,omitempty"`
	// Failure classifies the domain's MX lookup (in-memory only; see
	// MXObs.Failure).
	Failure FailureClass `json:"-"`
}

// PrimaryMX returns the most-preferred MX records: all records sharing
// the lowest preference value. The paper assigns domain credit to the
// provider(s) of exactly this set.
func (d *DomainRecord) PrimaryMX() []MXObs {
	if len(d.MX) == 0 {
		return nil
	}
	best := d.MX[0].Preference
	for _, mx := range d.MX[1:] {
		if mx.Preference < best {
			best = mx.Preference
		}
	}
	var out []MXObs
	for _, mx := range d.MX {
		if mx.Preference == best {
			out = append(out, mx)
		}
	}
	return out
}

// ScanInfo is what the port-25 scan learned from one IP address.
type ScanInfo struct {
	// Banner is the full 220 greeting text.
	Banner string `json:"banner,omitempty"`
	// BannerHost is the first token of the banner.
	BannerHost string `json:"banner_host,omitempty"`
	// EHLOHost is the identity in the EHLO response.
	EHLOHost string `json:"ehlo_host,omitempty"`
	// STARTTLS reports whether STARTTLS was advertised.
	STARTTLS bool `json:"starttls,omitempty"`
	// CertPresent reports whether a certificate was captured.
	CertPresent bool `json:"cert_present,omitempty"`
	// CertValid reports whether the chain verified against the trust
	// store ("trusted by a major browser").
	CertValid bool `json:"cert_valid,omitempty"`
	// CertFingerprint is the SHA-256 of the leaf certificate.
	CertFingerprint string `json:"cert_fp,omitempty"`
	// CertNames holds the leaf's subject CN (first) and SANs.
	CertNames []string `json:"cert_names,omitempty"`
	// TLSFailed reports that STARTTLS was advertised but the upgrade did
	// not complete — the cert-signal layer must not read this host as
	// "no STARTTLS" (the paper treats the two differently).
	TLSFailed bool `json:"tls_failed,omitempty"`
}

// IPInfo joins routing data and scan data for one address.
type IPInfo struct {
	// Addr is the address.
	Addr netip.Addr `json:"addr"`
	// ASN is the origin AS, 0 when unrouted.
	ASN asn.ASN `json:"asn,omitempty"`
	// ASName is the origin AS's short name.
	ASName string `json:"as_name,omitempty"`
	// HasCensys reports whether the scanning service had any data for
	// this address (false models scan blind spots and opt-outs).
	HasCensys bool `json:"has_censys"`
	// Port25Open reports whether the SMTP port accepted a connection.
	Port25Open bool `json:"port25_open"`
	// Parked reports that the address belongs to a known domain-parking
	// service (serialized; absent outside adversarial runs).
	Parked bool `json:"parked,omitempty"`
	// Scan holds the application-layer observation when Port25Open.
	Scan *ScanInfo `json:"scan,omitempty"`
	// Failure classifies the scan outcome (in-memory only; see
	// MXObs.Failure).
	Failure FailureClass `json:"-"`
}

// Snapshot is one dated measurement of one corpus.
//
// Concurrency contract: the mutators (AddDomain, AddIP, SortDomains) and
// Index() all synchronize on one internal mutex, so concurrent adds
// interleaved with index lookups are safe — each Index() call returns a
// consistent immutable view of the snapshot at some point between the
// surrounding mutations. Direct reads of the exported Domains/IPs fields
// (including WriteTo and the analysis passes) are NOT synchronized; they
// require that all mutation has quiesced, which is the natural state once
// collection finishes.
type Snapshot struct {
	// Date is the snapshot label, e.g. "2021-06".
	Date string `json:"date"`
	// Corpus identifies the domain list: "alexa", "com" or "gov".
	Corpus string `json:"corpus"`
	// Domains holds the per-domain DNS observations.
	Domains []DomainRecord `json:"-"`
	// IPs indexes scan observations by address string.
	IPs map[string]IPInfo `json:"-"`
	// Stats carries the collection run's retry/breaker counters, set by
	// scan.Collector and folded into Health().
	Stats CollectionStats `json:"-"`

	// mu guards Domains/IPs mutation and the cached index, so concurrent
	// producers and Index() readers may share one snapshot.
	mu  sync.Mutex
	idx *Index
}

// NewSnapshot creates an empty snapshot.
func NewSnapshot(date, corpus string) *Snapshot {
	return &Snapshot{Date: date, Corpus: corpus, IPs: make(map[string]IPInfo)}
}

// IP returns the observation for addr, if any.
func (s *Snapshot) IP(addr netip.Addr) (IPInfo, bool) {
	info, ok := s.IPs[addr.String()]
	return info, ok
}

// AddDomain appends a domain record. Safe for concurrent use with the
// other mutators and Index().
func (s *Snapshot) AddDomain(d DomainRecord) {
	s.mu.Lock()
	s.Domains = append(s.Domains, d)
	s.idx = nil
	s.mu.Unlock()
}

// AddIP records an IP observation, replacing any previous one. Safe for
// concurrent use with the other mutators and Index().
func (s *Snapshot) AddIP(info IPInfo) {
	s.mu.Lock()
	s.IPs[info.Addr.String()] = info
	s.idx = nil
	s.mu.Unlock()
}

// SortDomains orders domains lexicographically for deterministic output.
func (s *Snapshot) SortDomains() {
	s.mu.Lock()
	sort.Slice(s.Domains, func(i, j int) bool { return s.Domains[i].Domain < s.Domains[j].Domain })
	s.idx = nil
	s.mu.Unlock()
}

// jsonLine is the tagged union used for JSONL persistence.
type jsonLine struct {
	Kind   string          `json:"kind"` // "snapshot", "domain", "ip", "footer"
	Header *snapshotHeader `json:"header,omitempty"`
	Domain *DomainRecord   `json:"domain,omitempty"`
	IP     *IPInfo         `json:"ip,omitempty"`
	Footer *ShardFooter    `json:"footer,omitempty"`
}

type snapshotHeader struct {
	Date   string `json:"date"`
	Corpus string `json:"corpus"`
}

// countingWriter tracks bytes written through it.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// maxLineBytes bounds a single JSONL line on read. Records carrying long
// SPF chains or TXT-heavy observations can run far past the bufio
// default; the bound only exists to reject stream corruption, so it is
// deliberately generous.
const maxLineBytes = 64 << 20

// bufWriterPool recycles the bufio.Writer used by WriteTo; snapshot
// serialization is called once per shard spill, so per-call allocation of
// the 64KiB buffer shows up at scale.
var bufWriterPool = sync.Pool{
	New: func() any { return bufio.NewWriterSize(io.Discard, 64*1024) },
}

// lineBufPool recycles scanner line buffers for the readers. Buffers that
// grew past the initial size are still pooled — a corpus with one huge
// record tends to have more.
var lineBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 256*1024)
		return &b
	},
}

func getLineBuf() *[]byte  { return lineBufPool.Get().(*[]byte) }
func putLineBuf(b *[]byte) { lineBufPool.Put(b) }

// newLineScanner builds a bufio.Scanner over r with a pooled buffer and
// the raised line limit. Release the returned buffer with putLineBuf once
// scanning is done.
func newLineScanner(r io.Reader) (*bufio.Scanner, *[]byte) {
	sc := bufio.NewScanner(r)
	buf := getLineBuf()
	sc.Buffer(*buf, maxLineBytes)
	return sc, buf
}

// WriteTo serializes the snapshot as JSON lines: one header line, then
// one line per domain and per IP. It implements io.WriterTo.
func (s *Snapshot) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufWriterPool.Get().(*bufio.Writer)
	bw.Reset(cw)
	defer func() {
		bw.Reset(io.Discard)
		bufWriterPool.Put(bw)
	}()
	enc := json.NewEncoder(bw)
	if err := enc.Encode(jsonLine{Kind: "snapshot", Header: &snapshotHeader{Date: s.Date, Corpus: s.Corpus}}); err != nil {
		return 0, err
	}
	for i := range s.Domains {
		if err := enc.Encode(jsonLine{Kind: "domain", Domain: &s.Domains[i]}); err != nil {
			return 0, err
		}
	}
	// Deterministic IP order.
	keys := make([]string, 0, len(s.IPs))
	for k := range s.IPs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		info := s.IPs[k]
		if err := enc.Encode(jsonLine{Kind: "ip", IP: &info}); err != nil {
			return 0, err
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// Read parses a snapshot from the JSONL form written by WriteTo.
func Read(r io.Reader) (*Snapshot, error) {
	return readNamed(r, "")
}

// readNamed is Read with a source name (usually a file path) woven into
// error messages, so "unexpected EOF" from a truncated gzip stream
// arrives as "dataset: <path>: line N: unexpected EOF" instead of a bare
// error with no idea where the damage is.
func readNamed(r io.Reader, name string) (*Snapshot, error) {
	where := func(lineno int) string {
		if name == "" {
			return fmt.Sprintf("dataset: line %d", lineno)
		}
		return fmt.Sprintf("dataset: %s: line %d", name, lineno)
	}
	sc, lineBuf := newLineScanner(r)
	defer putLineBuf(lineBuf)
	var s *Snapshot
	lineno := 0
	for sc.Scan() {
		lineno++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var line jsonLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return nil, fmt.Errorf("%s: %w", where(lineno), err)
		}
		switch line.Kind {
		case "snapshot":
			if s != nil {
				return nil, fmt.Errorf("%s: duplicate header", where(lineno))
			}
			if line.Header == nil {
				return nil, fmt.Errorf("%s: header line without header", where(lineno))
			}
			s = NewSnapshot(line.Header.Date, line.Header.Corpus)
		case "domain":
			if s == nil || line.Domain == nil {
				return nil, fmt.Errorf("%s: domain before header", where(lineno))
			}
			s.AddDomain(*line.Domain)
		case "ip":
			if s == nil || line.IP == nil {
				return nil, fmt.Errorf("%s: ip before header", where(lineno))
			}
			s.AddIP(*line.IP)
		case "footer":
			// Shard files end with a footer line; ignoring it lets a
			// single shard load as an ordinary snapshot.
		default:
			return nil, fmt.Errorf("%s: unknown kind %q", where(lineno), line.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		// The scanner surfaces stream-level damage (truncated gzip,
		// oversize line) after the last intact line.
		return nil, fmt.Errorf("%s: %w", where(lineno+1), err)
	}
	if s == nil {
		if name != "" {
			return nil, fmt.Errorf("dataset: %s: empty input", name)
		}
		return nil, fmt.Errorf("dataset: empty input")
	}
	return s, nil
}
