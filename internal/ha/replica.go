package ha

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ReplicaConfig names one backend and says how to reach it. Dial is the
// only transport hook: a netsim dialer keeps whole fleets in-process
// and deterministic, a net.Dialer crosses real sockets (cmd/mxlb).
type ReplicaConfig struct {
	// Name labels the replica in stats and reports.
	Name string
	// Addr is advertised in ReplicaInfo (informational; Dial decides
	// where connections actually go).
	Addr string
	// Dial opens one connection to the replica.
	Dial func(ctx context.Context) (net.Conn, error)
}

// Replica is one pool member's live state: what probing last saw, the
// failure streak, and the breaker/re-probe schedule. Mutable fields are
// guarded by mu; the per-replica routing counters are atomics so the
// forwarding hot path never takes the lock.
type Replica struct {
	cfg ReplicaConfig
	c   *counters

	attempts atomic.Uint64
	failures atomic.Uint64
	ejectHis atomic.Uint64

	mu          sync.Mutex
	ejected     bool
	ready       bool
	stale       bool
	epoch       uint64
	consecFails int
	reprobeN    int       // ejected re-probe attempt number (1-based)
	nextProbe   time.Time // when this replica is next due a probe
	probed      bool      // at least one probe round has completed
}

// Name returns the replica's configured label.
func (r *Replica) Name() string { return r.cfg.Name }

// available reports whether the router may pick this replica: not
// ejected, and last seen ready.
func (r *Replica) available() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return !r.ejected && r.ready
}

// isStale reports the last probed staleness (degradation accounting).
func (r *Replica) isStale() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stale
}

// info snapshots the replica's reportable state.
func (r *Replica) info() ReplicaInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	state := "healthy"
	if r.ejected {
		state = "ejected"
	}
	return ReplicaInfo{
		Name:        r.cfg.Name,
		Addr:        r.cfg.Addr,
		State:       state,
		Ready:       r.ready,
		Stale:       r.stale,
		Epoch:       r.epoch,
		ConsecFails: r.consecFails,
		Attempts:    r.attempts.Load(),
		Failures:    r.failures.Load(),
		Ejections:   r.ejectHis.Load(),
	}
}

// recordFailure advances the failure streak and trips the breaker at
// the threshold: the replica stops receiving traffic and is re-probed
// on an exponential, jittered schedule. Called from both the forward
// path (passive ejection) and the prober (active ejection).
func (p *Pool) recordFailure(r *Replica) {
	threshold := p.cfg.ejectThreshold()
	r.failures.Add(1)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.consecFails++
	if r.ejected {
		// Already tripped: push the next re-probe out exponentially.
		r.reprobeN++
		r.nextProbe = p.cfg.now().Add(p.reprobeDelay(r.reprobeN))
		return
	}
	if threshold > 0 && r.consecFails >= threshold {
		r.ejected = true
		r.ready = false
		r.reprobeN = 1
		r.nextProbe = p.cfg.now().Add(p.reprobeDelay(1))
		r.ejectHis.Add(1)
		p.c.ejections.Add(1)
		if p.cfg.Logger != nil {
			p.cfg.Logger.Warn("ha: replica ejected",
				"replica", r.cfg.Name, "consec_fails", r.consecFails)
		}
	}
}

// recordSuccess resets the streak; a success on an ejected replica
// (necessarily a probe — ejected replicas get no traffic) closes the
// breaker immediately.
func (p *Pool) recordSuccess(r *Replica) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.consecFails = 0
	if r.ejected {
		r.ejected = false
		r.reprobeN = 0
		p.c.recoveries.Add(1)
		if p.cfg.Logger != nil {
			p.cfg.Logger.Info("ha: replica recovered", "replica", r.cfg.Name)
		}
	}
}

// errAttemptCancelled marks an attempt that lost a hedge race or was
// abandoned by the budget — the transport error it died with says
// nothing about the replica's health.
var errAttemptCancelled = errors.New("ha: attempt cancelled")

// upstreamResponse is one parsed reply from a replica.
type upstreamResponse struct {
	status     int
	body       []byte
	retryAfter bool
}

// do runs one HTTP/1.1 exchange against the replica: dial, one
// Connection: close request, one response. Cancellation (hedge loss,
// budget expiry, timeout) closes the connection out from under the
// exchange via context.AfterFunc, so a wedged replica cannot hold an
// attempt hostage.
func (r *Replica) do(ctx context.Context, method, target string, timeout time.Duration) (upstreamResponse, error) {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	conn, err := r.cfg.Dial(ctx)
	if err != nil {
		return upstreamResponse{}, r.attemptErr(ctx, "dial", err)
	}
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	req := method + " " + target + " HTTP/1.1\r\nHost: ha\r\nConnection: close\r\n\r\n"
	if _, err := io.WriteString(conn, req); err != nil {
		return upstreamResponse{}, r.attemptErr(ctx, "write", err)
	}
	resp, err := readUpstream(bufio.NewReader(conn))
	if err != nil {
		return upstreamResponse{}, r.attemptErr(ctx, "read", err)
	}
	return resp, nil
}

// attemptErr collapses I/O errors on a cancelled attempt into
// errAttemptCancelled so the caller never blames the replica for a
// race the balancer itself decided.
func (r *Replica) attemptErr(ctx context.Context, op string, err error) error {
	if ctx.Err() != nil {
		return errAttemptCancelled
	}
	return fmt.Errorf("%s %s: %w", op, r.cfg.Name, err)
}

// readUpstream parses a bounded HTTP/1.1 response: status line, headers
// (Content-Length and Retry-After are the only ones interpreted), then
// exactly Content-Length body bytes.
func readUpstream(br *bufio.Reader) (upstreamResponse, error) {
	var resp upstreamResponse
	line, err := readWireLine(br)
	if err != nil {
		return resp, err
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/1.") {
		return resp, fmt.Errorf("malformed status line %q", line)
	}
	resp.status, err = strconv.Atoi(parts[1])
	if err != nil || resp.status < 100 || resp.status > 599 {
		return resp, fmt.Errorf("malformed status %q", parts[1])
	}
	length := -1
	for i := 0; ; i++ {
		if i > maxUpstreamHeaders {
			return resp, errors.New("too many response headers")
		}
		h, err := readWireLine(br)
		if err != nil {
			return resp, err
		}
		if h == "" {
			break
		}
		key, val, ok := strings.Cut(h, ":")
		if !ok {
			return resp, fmt.Errorf("malformed header %q", h)
		}
		switch strings.ToLower(strings.TrimSpace(key)) {
		case "content-length":
			length, err = strconv.Atoi(strings.TrimSpace(val))
			if err != nil || length < 0 || length > maxUpstreamBody {
				return resp, fmt.Errorf("bad content-length %q", val)
			}
		case "retry-after":
			resp.retryAfter = true
		}
	}
	if length < 0 {
		return resp, errors.New("missing content-length")
	}
	resp.body = make([]byte, length)
	if _, err := io.ReadFull(br, resp.body); err != nil {
		return resp, err
	}
	return resp, nil
}

const (
	maxUpstreamHeaders = 64
	maxUpstreamBody    = 16 << 20
	maxWireLine        = 8192
)

// readWireLine reads one CRLF-terminated line with a hard size bound.
func readWireLine(br *bufio.Reader) (string, error) {
	var b strings.Builder
	for {
		chunk, err := br.ReadString('\n')
		b.WriteString(chunk)
		if b.Len() > maxWireLine {
			return "", errors.New("response line too long")
		}
		if err != nil {
			return "", err
		}
		if strings.HasSuffix(chunk, "\n") {
			return strings.TrimRight(b.String(), "\r\n"), nil
		}
	}
}
