package ha

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mxmap/internal/netsim"
	"mxmap/internal/serve"
)

// TestReprobeScheduleFrozenClock drives the whole eject / re-probe /
// recover state machine on a frozen clock with recorded zero jitter:
// every interval boundary, every counter, and every jitter bound is
// asserted exactly. This is the overload.Delay schedule contract under
// HA: intervals jittered (the bounds below), bounded (capped at
// ReprobeMax), and reset on recovery.
func TestReprobeScheduleFrozenClock(t *testing.T) {
	oldPath, _ := writeHAWorlds(t)
	n := netsim.New()
	_, _ = startReplica(t, n, replicaAddr(0), oldPath, serve.Config{})

	var mu sync.Mutex
	now := time.Unix(1700000000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	var bounds []int64
	jitter := func(b int64) int64 { bounds = append(bounds, b); return 0 }

	// The replica under test is dead until the switch flips, after
	// which its dialer reaches the real backend.
	var up atomic.Bool
	dial := func(ctx context.Context) (net.Conn, error) {
		if !up.Load() {
			return nil, errors.New("connection refused")
		}
		return fabricDialer(n, replicaAddr(0))(ctx)
	}

	pool, err := NewPool(Config{
		Replicas:       []ReplicaConfig{{Name: "flaky", Dial: dial}},
		ProbeInterval:  time.Second,
		ReprobeBase:    250 * time.Millisecond,
		ReprobeMax:     2 * time.Second,
		EjectThreshold: 3,
		Now:            clock,
		Jitter:         jitter,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	r := pool.replicas[0]

	probe := func(wantProbed int, label string) {
		t.Helper()
		if got := pool.ProbeOnce(ctx); got != wantProbed {
			t.Fatalf("%s: probed %d replicas, want %d", label, got, wantProbed)
		}
	}
	assertEjected := func(want bool, label string) {
		t.Helper()
		r.mu.Lock()
		got := r.ejected
		r.mu.Unlock()
		if got != want {
			t.Fatalf("%s: ejected = %v, want %v", label, got, want)
		}
	}

	// Three failed probe rounds on the regular cadence trip the breaker.
	probe(1, "first probe")
	probe(0, "same instant is not due again")
	advance(time.Second)
	probe(1, "second probe")
	assertEjected(false, "below threshold")
	advance(time.Second)
	probe(1, "third probe")
	assertEjected(true, "threshold reached")

	// Ejected: the re-probe schedule takes over. With zero jitter the
	// delays are exactly Delay(n)/2: 125ms, 250ms, 500ms, 1s, then
	// capped at 1s by ReprobeMax=2s.
	advance(100 * time.Millisecond)
	probe(0, "before first re-probe deadline")
	advance(25 * time.Millisecond) // t+125ms
	probe(1, "first re-probe")
	advance(249 * time.Millisecond)
	probe(0, "before second re-probe deadline")
	advance(time.Millisecond) // +250ms
	probe(1, "second re-probe")
	advance(500 * time.Millisecond)
	probe(1, "third re-probe")
	advance(time.Second)
	probe(1, "fourth re-probe")
	advance(999 * time.Millisecond)
	probe(0, "capped interval holds") // bounded: still 1s, not 2s+
	advance(time.Millisecond)
	probe(1, "fifth re-probe at the cap")

	// Recovery: the replica comes back, the next scheduled re-probe
	// succeeds, and the breaker resets completely.
	up.Store(true)
	advance(time.Second)
	probe(1, "recovery re-probe")
	assertEjected(false, "recovered")
	if !r.available() {
		t.Fatal("recovered replica not routable")
	}

	// Reset on recovery: a fresh outage needs the full threshold again,
	// and the first re-probe delay starts back at the base.
	up.Store(false)
	for i := 0; i < 2; i++ {
		advance(time.Second)
		probe(1, "post-recovery failure")
		assertEjected(false, "streak restarted")
	}
	advance(time.Second)
	probe(1, "post-recovery third failure")
	assertEjected(true, "re-ejected")

	// The jitter bounds record the exact schedule: each call saw
	// Delay's d/2+1 for n = 1..6, then — after recovery reset — n = 1
	// again. Bounded at ReprobeMax/2 and reset to the base.
	ms := int64(time.Millisecond)
	wantBounds := []int64{
		125*ms + 1, 250*ms + 1, 500*ms + 1, 1000*ms + 1, 1000*ms + 1, 1000*ms + 1,
		125*ms + 1,
	}
	if len(bounds) != len(wantBounds) {
		t.Fatalf("jitter bounds = %v, want %v", bounds, wantBounds)
	}
	for i := range bounds {
		if bounds[i] != wantBounds[i] {
			t.Fatalf("jitter bound %d = %d, want %d (%v)", i, bounds[i], wantBounds[i], bounds)
		}
	}

	want := BalancerStats{
		Probes:     12, // 3 pre-eject + 6 while ejected + 3 post-recovery
		ProbeFails: 11, // all but the recovery round
		Ejections:  2,
		Reprobes:   6,
		Recoveries: 1,
	}
	if got := pool.c.snapshot(); got != want {
		t.Fatalf("pool stats = %+v, want %+v", got, want)
	}
}

// tickClock is a goroutine-safe stepped clock: every read advances by
// one fixed step.
type tickClock struct {
	mu   sync.Mutex
	t    time.Time
	step time.Duration
}

func (c *tickClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(c.step)
	return c.t
}

func TestHedgeDelayResolution(t *testing.T) {
	oldPath, _ := writeHAWorlds(t)
	clk := &tickClock{t: time.Unix(1700000000, 0), step: 500 * time.Microsecond}
	f := newFleet(t, 1, oldPath,
		Config{HedgeMinSamples: 1, HedgeFloor: time.Nanosecond},
		serve.Config{}, serve.Config{Clock: clk.Now})

	// No observations yet: the floor stands in.
	if d := f.b.hedgeDelay("/v1/domain"); d != time.Nanosecond {
		t.Fatalf("empty-histogram hedge delay = %v, want the floor", d)
	}

	// One observed request at exactly 500µs (two clock reads, one step
	// apart) lands in the 256µs–512µs bucket; the derived threshold is
	// that bucket's upper bound.
	c := f.client(t)
	c.get("GET", "/v1/domain?name=one.example", 200, nil)
	awaitZeroLost(t, f.front)
	if d := f.b.hedgeDelay("/v1/domain"); d != 512*time.Microsecond {
		t.Fatalf("derived hedge delay = %v, want 512µs", d)
	}

	// Fixed and disabled thresholds bypass the histogram entirely.
	f.b.cfg.HedgeDelay = 42 * time.Millisecond
	if d := f.b.hedgeDelay("/v1/domain"); d != 42*time.Millisecond {
		t.Fatalf("fixed hedge delay = %v", d)
	}
	f.b.cfg.HedgeDelay = noHedge
	if d := f.b.hedgeDelay("/v1/domain"); d != 0 {
		t.Fatalf("disabled hedge delay = %v, want 0", d)
	}
}

func TestBalancerHedging(t *testing.T) {
	oldPath, _ := writeHAWorlds(t)
	n := netsim.New()
	release := make(chan struct{})
	// Replica 0 wedges on data queries until released — alive for
	// probes, silent for lookups. The tail-latency hedge must win the
	// answer from replica 1.
	_, srv0 := startReplica(t, n, replicaAddr(0), oldPath, serve.Config{
		Gate: func(path string) {
			if path == "/v1/domain" {
				<-release
			}
		},
	})
	_, srv1 := startReplica(t, n, replicaAddr(1), oldPath, serve.Config{})

	b, err := New(Config{
		Replicas: []ReplicaConfig{
			{Name: "r0", Dial: fabricDialer(n, replicaAddr(0))},
			{Name: "r1", Dial: fabricDialer(n, replicaAddr(1))},
		},
		HedgeDelay: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	front := startServer(t, n, frontAddr, serve.Config{Handler: b.Handle})
	b.AttachFront(front)
	b.Pool().ProbeOnce(context.Background())

	c := dialClient(t, n, frontAddr)
	var look serve.LookupResponse
	c.get("GET", "/v1/domain?name=one.example", 200, &look)
	if !look.Found || look.Primary != "prov-a.net" {
		t.Fatalf("hedged lookup = %+v", look)
	}

	want := BalancerStats{
		Requests: 1,
		Attempts: 2, // the wedged original + the hedge
		Hedges:   1, HedgeWins: 1,
		Probes: 2,
	}
	if got := b.Stats(); got != want {
		t.Fatalf("stats = %+v, want %+v", got, want)
	}
	if hw := srv1.Stats().Lookups; hw != 1 {
		t.Fatalf("hedge target served %d lookups, want 1", hw)
	}

	// Unwedge replica 0 so its abandoned attempt finishes; its response
	// goes to a connection the balancer already severed, and the books
	// still balance to zero lost on every server.
	close(release)
	awaitZeroLost(t, srv0)
	awaitZeroLost(t, srv1)
	awaitZeroLost(t, front)
}
