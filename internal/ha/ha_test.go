package ha

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/netip"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"mxmap/internal/core"
	"mxmap/internal/dataset"
	"mxmap/internal/netsim"
	"mxmap/internal/serve"
)

// haWorldOld / haWorldNew are the serving fixtures, one churn step
// apart: two.example migrates prov-a→prov-b, three.example disappears,
// five.example arrives on prov-b.
func haWorldOld() *dataset.Snapshot {
	s := dataset.NewSnapshot("2021-01", "test")
	s.AddDomain(dataset.DomainRecord{Domain: "one.example", Rank: 1,
		MX: []dataset.MXObs{{Preference: 10, Exchange: "mx.prov-a.net"}}})
	s.AddDomain(dataset.DomainRecord{Domain: "two.example", Rank: 2,
		MX: []dataset.MXObs{{Preference: 10, Exchange: "mx.prov-a.net"}}})
	s.AddDomain(dataset.DomainRecord{Domain: "three.example", Rank: 3,
		MX: []dataset.MXObs{{Preference: 10, Exchange: "mx.prov-b.net"}}})
	s.AddDomain(dataset.DomainRecord{Domain: "four.example", Rank: 4,
		MX: []dataset.MXObs{{Preference: 10, Exchange: "mx.four.example"}}})
	return s
}

func haWorldNew() *dataset.Snapshot {
	s := dataset.NewSnapshot("2021-02", "test")
	s.AddDomain(dataset.DomainRecord{Domain: "one.example", Rank: 1,
		MX: []dataset.MXObs{{Preference: 10, Exchange: "mx.prov-a.net"}}})
	s.AddDomain(dataset.DomainRecord{Domain: "two.example", Rank: 2,
		MX: []dataset.MXObs{{Preference: 10, Exchange: "mx.prov-b.net"}}})
	s.AddDomain(dataset.DomainRecord{Domain: "four.example", Rank: 4,
		MX: []dataset.MXObs{{Preference: 10, Exchange: "mx.four.example"}}})
	s.AddDomain(dataset.DomainRecord{Domain: "five.example", Rank: 5,
		MX: []dataset.MXObs{{Preference: 10, Exchange: "mx.prov-b.net"}}})
	return s
}

func writeHAWorlds(t *testing.T) (oldPath, newPath string) {
	t.Helper()
	dir := t.TempDir()
	oldPath = filepath.Join(dir, "old.jsonl")
	newPath = filepath.Join(dir, "new.jsonl")
	for path, snap := range map[string]*dataset.Snapshot{oldPath: haWorldOld(), newPath: haWorldNew()} {
		snap.SortDomains()
		if err := dataset.WriteFile(path, snap); err != nil {
			t.Fatal(err)
		}
	}
	return oldPath, newPath
}

// replicaAddr numbers the fleet's fabric addresses.
func replicaAddr(i int) string { return "10.0.0." + strconv.Itoa(i+1) + ":80" }

const frontAddr = "203.0.113.1:80"

// startReplica runs one backend query server on the fabric: a Service
// loaded from path (unloaded when path is empty) behind a swap-enabled
// Server.
func startReplica(t *testing.T, n *netsim.Network, addr, path string, cfg serve.Config) (*serve.Service, *serve.Server) {
	t.Helper()
	svc := serve.NewService(core.ApproachMXOnly, serve.ServiceConfig{})
	if path != "" {
		if _, err := svc.Load(path); err != nil {
			t.Fatal(err)
		}
	}
	cfg.Service = svc
	cfg.AllowSwap = true
	srv := startServer(t, n, addr, cfg)
	return svc, srv
}

// startServer runs a serve.Server on the fabric at addr.
func startServer(t *testing.T, n *netsim.Network, addr string, cfg serve.Config) *serve.Server {
	t.Helper()
	srv, err := serve.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := n.Listen(netip.MustParseAddrPort(addr))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-errc; err != nil {
			t.Errorf("serve loop %s: %v", addr, err)
		}
	})
	return srv
}

// fabricDialer is a ReplicaConfig.Dial over the netsim fabric.
func fabricDialer(n *netsim.Network, addr string) func(ctx context.Context) (net.Conn, error) {
	ap := netip.MustParseAddrPort(addr)
	return func(ctx context.Context) (net.Conn, error) { return n.Dial(ctx, ap) }
}

// fleet is a balanced replica set on one fabric, fronted by a server
// running the balancer as its handler.
type fleet struct {
	n     *netsim.Network
	svcs  []*serve.Service
	srvs  []*serve.Server
	b     *Balancer
	front *serve.Server
}

// newFleet starts size replicas all serving path (empty = unloaded),
// builds a balancer over them from cfg (Replicas is filled in), starts
// the front server, and admits the fleet with one probe round.
func newFleet(t *testing.T, size int, path string, cfg Config, repCfg serve.Config, frontCfg serve.Config) *fleet {
	t.Helper()
	f := &fleet{n: netsim.New()}
	for i := 0; i < size; i++ {
		svc, srv := startReplica(t, f.n, replicaAddr(i), path, repCfg)
		f.svcs = append(f.svcs, svc)
		f.srvs = append(f.srvs, srv)
		cfg.Replicas = append(cfg.Replicas, ReplicaConfig{
			Name: "r" + strconv.Itoa(i),
			Addr: replicaAddr(i),
			Dial: fabricDialer(f.n, replicaAddr(i)),
		})
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.b = b
	frontCfg.Handler = b.Handle
	f.front = startServer(t, f.n, frontAddr, frontCfg)
	b.AttachFront(f.front)
	b.Pool().ProbeOnce(context.Background())
	return f
}

// client returns a keep-alive client dialed at the front.
func (f *fleet) client(t *testing.T) *tClient { return dialClient(t, f.n, frontAddr) }

// tClient is a minimal keep-alive HTTP/1.1 test client over the fabric.
type tClient struct {
	t    *testing.T
	conn net.Conn
	br   *bufio.Reader
}

func dialClient(t *testing.T, n *netsim.Network, addr string) *tClient {
	t.Helper()
	conn, err := n.Dial(context.Background(), netip.MustParseAddrPort(addr))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &tClient{t: t, conn: conn, br: bufio.NewReader(conn)}
}

func (c *tClient) send(method, target string) {
	c.t.Helper()
	c.conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	req := method + " " + target + " HTTP/1.1\r\nHost: test\r\n\r\n"
	if _, err := c.conn.Write([]byte(req)); err != nil {
		c.t.Fatalf("write %s %s: %v", method, target, err)
	}
}

func (c *tClient) readResponse() (status int, hdr map[string]string, body []byte) {
	c.t.Helper()
	c.conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	line, err := c.br.ReadString('\n')
	if err != nil {
		c.t.Fatalf("read status line: %v", err)
	}
	parts := strings.SplitN(strings.TrimRight(line, "\r\n"), " ", 3)
	if len(parts) < 2 {
		c.t.Fatalf("malformed status line %q", line)
	}
	status, err = strconv.Atoi(parts[1])
	if err != nil {
		c.t.Fatalf("malformed status %q", line)
	}
	hdr = make(map[string]string)
	for {
		h, err := c.br.ReadString('\n')
		if err != nil {
			c.t.Fatalf("read header: %v", err)
		}
		h = strings.TrimRight(h, "\r\n")
		if h == "" {
			break
		}
		if key, value, ok := strings.Cut(h, ":"); ok {
			hdr[strings.ToLower(key)] = strings.TrimSpace(value)
		}
	}
	nb, err := strconv.Atoi(hdr["content-length"])
	if err != nil {
		c.t.Fatalf("missing content-length: %v", hdr)
	}
	body = make([]byte, nb)
	if _, err := io.ReadFull(c.br, body); err != nil {
		c.t.Fatalf("read body: %v", err)
	}
	return status, hdr, body
}

// get performs one request and decodes the JSON answer into out.
func (c *tClient) get(method, target string, wantStatus int, out any) map[string]string {
	c.t.Helper()
	c.send(method, target)
	status, hdr, body := c.readResponse()
	if status != wantStatus {
		c.t.Fatalf("%s %s = %d (%s), want %d", method, target, status, body, wantStatus)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			c.t.Fatalf("%s %s: decode %q: %v", method, target, body, err)
		}
	}
	return hdr
}

// noHedge disables hedging for tests that count attempts exactly.
const noHedge = -1

// awaitZeroLost polls until every request the server has read is
// answered (the response write races the client's read, so the counter
// can trail the wire by an instant).
func awaitZeroLost(t *testing.T, srv *serve.Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for srv.Stats().Lost() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("requests stayed in flight: %+v", srv.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBalancerForwarding(t *testing.T) {
	oldPath, _ := writeHAWorlds(t)
	f := newFleet(t, 3, oldPath, Config{HedgeDelay: noHedge}, serve.Config{}, serve.Config{})
	c := f.client(t)

	// Fleet health: three ready replicas, none stale or ejected.
	var health FleetHealth
	c.get("GET", "/healthz", 200, &health)
	if health.State != "serving" || health.ReadyReplicas != 3 ||
		health.StaleReplicas != 0 || health.EjectedReplicas != 0 {
		t.Fatalf("healthz = %+v, want serving 3/0/0", health)
	}
	if len(health.Replicas) != 3 || health.Replicas[0].Name != "r0" ||
		health.Replicas[0].Epoch != 1 || !health.Replicas[0].Ready {
		t.Fatalf("replicas = %+v", health.Replicas)
	}
	c.get("GET", "/readyz", 200, nil)

	// Queries round-robin across the fleet and answer exactly as a
	// single replica would.
	for i := 0; i < 3; i++ {
		var look serve.LookupResponse
		c.get("GET", "/v1/domain?name=one.example", 200, &look)
		if !look.Found || look.Primary != "prov-a.net" || look.Snapshot.Date != "2021-01" {
			t.Fatalf("lookup = %+v", look)
		}
	}
	lookups := 0
	for _, srv := range f.srvs {
		st := srv.Stats()
		lookups += int(st.Lookups)
		if st.Lookups != 1 {
			t.Errorf("replica lookups = %d, want 1 each (round-robin)", st.Lookups)
		}
	}
	if lookups != 3 {
		t.Fatalf("total lookups = %d, want 3", lookups)
	}

	// Replica-side swap is the rollout's job, never a client's.
	c.get("POST", "/v1/swap?path=x", 403, nil)
	// Non-idempotent methods are not forwarded.
	c.get("POST", "/v1/domain?name=one.example", 405, nil)

	// The merged stats carry the whole exact counter set: only the
	// three forwarded lookups count (control-plane answers and the
	// rejected POSTs never reach the fleet).
	var fs FleetStats
	c.get("GET", "/v1/stats", 200, &fs)
	want := BalancerStats{Requests: 3, Attempts: 3, Probes: 3}
	if fs.Balancer != want {
		t.Fatalf("balancer stats = %+v, want %+v", fs.Balancer, want)
	}
	// The merged snapshot is taken while the /v1/stats request itself
	// is still unanswered, so the front legitimately shows it in
	// flight; it settles to zero lost immediately after.
	if fs.Front == nil || fs.Front.Lost() > 1 {
		t.Fatalf("front stats = %+v, want attached with at most the stats request in flight", fs.Front)
	}
	if len(fs.Replicas) != 3 {
		t.Fatalf("replicas = %+v", fs.Replicas)
	}
	awaitZeroLost(t, f.front)
}

func TestBalancerDegradationLadder(t *testing.T) {
	oldPath, _ := writeHAWorlds(t)
	f := newFleet(t, 2, oldPath,
		Config{HedgeDelay: noHedge, EjectThreshold: 1, ProbeInterval: time.Millisecond},
		serve.Config{}, serve.Config{})
	c := f.client(t)

	// Rung 1: every replica goes stale (a failed replica-side swap
	// leaves the old epoch serving, marked stale). Answers still flow,
	// stale markers intact, StaleForwards exact.
	for i := range f.srvs {
		rc := dialClient(t, f.n, replicaAddr(i))
		rc.get("POST", "/v1/swap?path=/nonexistent.jsonl", 500, nil)
	}
	time.Sleep(5 * time.Millisecond) // past the probe interval: fleet is due
	f.b.Pool().ProbeOnce(context.Background())
	var health FleetHealth
	c.get("GET", "/healthz", 200, &health)
	if health.State != "degraded" || health.ReadyReplicas != 2 || health.StaleReplicas != 2 {
		t.Fatalf("healthz = %+v, want degraded 2 ready 2 stale", health)
	}
	var look serve.LookupResponse
	c.get("GET", "/v1/domain?name=one.example", 200, &look)
	if !look.Found || !look.Stale {
		t.Fatalf("lookup = %+v, want found with stale marker", look)
	}

	// Rung 2: the whole fleet dies. The first request burns through
	// both replicas (ejecting each at threshold 1) and relays the
	// failure; every request after that sheds 503 + Retry-After
	// without touching the wire.
	for _, srv := range f.srvs {
		srv.Close()
	}
	c.get("GET", "/v1/domain?name=one.example", 502, nil)
	hdr := c.get("GET", "/v1/domain?name=one.example", 503, nil)
	if hdr["retry-after"] != "1" {
		t.Fatalf("shed headers = %v, want retry-after 1", hdr)
	}
	c.get("GET", "/readyz", 503, nil)
	c.get("GET", "/healthz", 200, &health)
	if health.State != "down" || health.ReadyReplicas != 0 || health.EjectedReplicas != 2 {
		t.Fatalf("healthz = %+v, want down with 2 ejected", health)
	}

	var fs FleetStats
	c.get("GET", "/v1/stats", 200, &fs)
	want := BalancerStats{
		Requests:      3, // stale lookup + burned lookup + shed lookup
		Attempts:      3, // 1 stale forward + 2 against the dead fleet
		Retries:       1,
		UpstreamErrs:  2,
		StaleForwards: 3, // the dead replicas were last probed stale too
		DownSheds:     1,
		ProxyFails:    1,
		Probes:        4, // admission round + staleness round
		Ejections:     2,
	}
	if fs.Balancer != want {
		t.Fatalf("balancer stats = %+v, want %+v", fs.Balancer, want)
	}
}
