package ha

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/netip"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"mxmap/internal/netsim"
	"mxmap/internal/serve"
)

// startTruncatingReplica runs a fake backend that answers probes like a
// healthy replica and then dies mid-response on every data query: it
// advertises a body it never finishes sending and slams the connection.
// From the balancer's side this is a replica killed in the middle of
// writing an answer.
func startTruncatingReplica(t *testing.T, n *netsim.Network, addr string) {
	t.Helper()
	ln, err := n.Listen(netip.MustParseAddrPort(addr))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				br := bufio.NewReader(conn)
				line, err := br.ReadString('\n')
				if err != nil {
					return
				}
				parts := strings.Fields(line)
				if len(parts) < 2 {
					return
				}
				for {
					h, err := br.ReadString('\n')
					if err != nil {
						return
					}
					if h == "\r\n" || h == "\n" {
						break
					}
				}
				path := parts[1]
				if i := strings.IndexByte(path, '?'); i >= 0 {
					path = path[:i]
				}
				switch path {
				case "/healthz":
					body := `{"state":"serving","epoch":1}`
					fmt.Fprintf(conn, "HTTP/1.1 200 OK\r\nContent-Length: %d\r\n\r\n%s", len(body), body)
				case "/readyz":
					body := `{"ready":true,"state":"serving"}`
					fmt.Fprintf(conn, "HTTP/1.1 200 OK\r\nContent-Length: %d\r\n\r\n%s", len(body), body)
				default:
					io.WriteString(conn, "HTTP/1.1 200 OK\r\nContent-Length: 4096\r\n\r\n{\"pa")
				}
			}(conn)
		}
	}()
}

// TestChaosKillMidResponse proves the retry contract: a replica that
// dies while writing its answer costs the client nothing — the balancer
// absorbs the truncated attempt and retries on another replica — and
// the query executes exactly once on the surviving fleet (no duplicated
// side effects).
func TestChaosKillMidResponse(t *testing.T) {
	oldPath, _ := writeHAWorlds(t)
	n := netsim.New()
	startTruncatingReplica(t, n, replicaAddr(0))
	_, srv1 := startReplica(t, n, replicaAddr(1), oldPath, serve.Config{})
	_, srv2 := startReplica(t, n, replicaAddr(2), oldPath, serve.Config{})

	var reps []ReplicaConfig
	for i := 0; i < 3; i++ {
		reps = append(reps, ReplicaConfig{
			Name: "r" + strconv.Itoa(i), Dial: fabricDialer(n, replicaAddr(i)),
		})
	}
	b, err := New(Config{Replicas: reps, HedgeDelay: noHedge})
	if err != nil {
		t.Fatal(err)
	}
	front := startServer(t, n, frontAddr, serve.Config{Handler: b.Handle})
	b.AttachFront(front)
	b.Pool().ProbeOnce(context.Background())

	// One client query. Round-robin routes it to the doomed replica
	// first; the client still gets exactly one complete, correct 200.
	c := dialClient(t, n, frontAddr)
	var look serve.LookupResponse
	c.get("GET", "/v1/domain?name=one.example", 200, &look)
	if !look.Found || look.Primary != "prov-a.net" || look.Snapshot.Date != "2021-01" {
		t.Fatalf("lookup = %+v", look)
	}

	// The whole balancer ledger, reconstructed: one request, the killed
	// attempt plus its retry, one upstream error, one probe round.
	want := BalancerStats{
		Requests: 1, Attempts: 2, Retries: 1, UpstreamErrs: 1, Probes: 3,
	}
	if got := b.Stats(); got != want {
		t.Fatalf("stats = %+v, want %+v", got, want)
	}

	// No duplicated side effects: the lookup executed exactly once
	// across the surviving replicas (the killed attempt never reached a
	// query engine), and nothing was lost anywhere.
	if l1, l2 := srv1.Stats().Lookups, srv2.Stats().Lookups; l1+l2 != 1 {
		t.Fatalf("fleet executed %d lookups (r1=%d r2=%d), want exactly 1", l1+l2, l1, l2)
	}
	awaitZeroLost(t, front)
	awaitZeroLost(t, srv1)
	awaitZeroLost(t, srv2)

	// The failure streak is real but below threshold: no ejection.
	info := b.Pool().Replicas()[0]
	if info.State != "healthy" || info.Failures != 1 || info.ConsecFails != 1 {
		t.Fatalf("killed replica info = %+v, want one recorded failure", info)
	}
}

// floodWorker hammers the front with lookups until stop closes,
// verifying every single response: always 200, and the answer's
// provider/date must match the epoch it claims to come from (the
// rolling swap must never serve a torn answer). Returns how many
// responses it verified.
func floodWorker(n *netsim.Network, stop <-chan struct{}) (int, error) {
	conn, err := n.Dial(context.Background(), netip.MustParseAddrPort(frontAddr))
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	count := 0
	for {
		select {
		case <-stop:
			return count, nil
		default:
		}
		conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
		if _, err := io.WriteString(conn, "GET /v1/domain?name=two.example HTTP/1.1\r\nHost: flood\r\n\r\n"); err != nil {
			return count, fmt.Errorf("request %d: write: %w", count+1, err)
		}
		conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		status, body, err := readTestResponse(br)
		if err != nil {
			return count, fmt.Errorf("request %d: %w", count+1, err)
		}
		if status != 200 {
			return count, fmt.Errorf("request %d: status %d (%s)", count+1, status, body)
		}
		var look serve.LookupResponse
		if err := json.Unmarshal(body, &look); err != nil {
			return count, fmt.Errorf("request %d: decode: %w", count+1, err)
		}
		wantPrimary := map[uint64]string{1: "prov-a.net", 2: "prov-b.net"}
		wantDate := map[uint64]string{1: "2021-01", 2: "2021-02"}
		e := look.Snapshot.Epoch
		if look.Primary != wantPrimary[e] || look.Snapshot.Date != wantDate[e] || !look.Found {
			return count, fmt.Errorf("request %d: torn answer %+v", count+1, look)
		}
		count++
	}
}

// readTestResponse reads one HTTP/1.1 response without testing.T
// plumbing (safe in worker goroutines).
func readTestResponse(br *bufio.Reader) (int, []byte, error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return 0, nil, fmt.Errorf("status line: %w", err)
	}
	parts := strings.SplitN(strings.TrimRight(line, "\r\n"), " ", 3)
	if len(parts) < 2 {
		return 0, nil, fmt.Errorf("malformed status line %q", line)
	}
	status, err := strconv.Atoi(parts[1])
	if err != nil {
		return 0, nil, fmt.Errorf("malformed status %q", line)
	}
	length := -1
	for {
		h, err := br.ReadString('\n')
		if err != nil {
			return 0, nil, fmt.Errorf("header: %w", err)
		}
		h = strings.TrimRight(h, "\r\n")
		if h == "" {
			break
		}
		if key, val, ok := strings.Cut(h, ":"); ok &&
			strings.EqualFold(strings.TrimSpace(key), "content-length") {
			length, _ = strconv.Atoi(strings.TrimSpace(val))
		}
	}
	if length < 0 {
		return 0, nil, fmt.Errorf("missing content-length")
	}
	body := make([]byte, length)
	if _, err := io.ReadFull(br, body); err != nil {
		return 0, nil, err
	}
	return status, body, nil
}

// TestChaosFloodDuringRollingSwap floods the balancer from concurrent
// clients while the fleet rolls from the old snapshot to the new one,
// then reconstructs the entire BalancerStats struct from the workers'
// own verified tallies and asserts equality. Zero queries lost: every
// request the flood sent was answered 200 with an epoch-consistent
// body, nothing shed, nothing retried, nothing dropped on any server.
func TestChaosFloodDuringRollingSwap(t *testing.T) {
	oldPath, newPath := writeHAWorlds(t)
	// Replica conn caps are off: the flood's conn-per-attempt churn can
	// park hundreds of almost-finished serving goroutines in the run
	// queue on a small GOMAXPROCS box while the swap's delta merge hogs
	// the CPU, and each one still holds its admission slot. That cap
	// pressure is a capacity artifact, not rollout behavior — admission
	// shedding has its own tests — and with it in play the door 429s
	// would inject retries this test asserts cannot happen.
	f := newFleet(t, 3, oldPath, Config{HedgeDelay: noHedge, AllowRollout: true},
		serve.Config{MaxConns: -1}, serve.Config{MaxRequests: -1})

	const workers = 4
	stop := make(chan struct{})
	counts := make([]int, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			counts[w], errs[w] = floodWorker(f.n, stop)
		}(w)
	}

	// Let the flood establish itself, then roll the fleet over
	// underneath it, one replica at a time.
	time.Sleep(5 * time.Millisecond)
	rep, err := f.b.Rollout(context.Background(), newPath, oldPath)
	if err != nil {
		t.Fatalf("rollout under flood: %v", err)
	}
	if !rep.Completed || len(rep.Replicas) != 3 || rep.RolledBack != 0 {
		t.Fatalf("rollout = %+v, want clean 3-replica completion", rep)
	}
	close(stop)
	wg.Wait()

	total := 0
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d after %d good responses: %v", w, counts[w], errs[w])
		}
		total += counts[w]
	}
	if total == 0 {
		t.Fatal("flood verified zero responses")
	}
	t.Logf("flood verified %d responses across %d workers during the rolling swap", total, workers)

	// The whole ledger, reconstructed from the flood's own counting:
	// every verified response was exactly one request and one attempt —
	// no retries, no hedges, no sheds, no upstream errors — plus the
	// admission probe round and one verify probe per rolled replica.
	want := BalancerStats{
		Requests: uint64(total),
		Attempts: uint64(total),
		Probes:   6,
		Rollouts: 1, RolloutSwaps: 3,
	}
	if got := f.b.Stats(); got != want {
		t.Fatalf("stats = %+v, want %+v", got, want)
	}

	// Zero lost on every server in the tier, front and replicas alike.
	awaitZeroLost(t, f.front)
	for _, srv := range f.srvs {
		awaitZeroLost(t, srv)
	}
	// And the fleet's books agree with the flood's: the replicas
	// together served every verified lookup exactly once.
	var fleetLookups uint64
	for _, srv := range f.srvs {
		fleetLookups += srv.Stats().Lookups
	}
	if fleetLookups != uint64(total) {
		t.Fatalf("fleet served %d lookups, flood verified %d", fleetLookups, total)
	}
}
