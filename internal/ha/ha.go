// Package ha is the high-availability serving tier: a replica pool and
// balancer that front N query-service replicas (serve.Service +
// serve.Server instances, in-process over the netsim fabric or across
// real sockets) so that one crashed, wedged, or stale replica never
// takes the answer service down.
//
// The moving parts mirror the fail-over structure the world generator
// models for mail itself (priority MX tiers, backup exchanges):
//
//   - Active health probing: every replica's /healthz and /readyz are
//     polled on an interval; probe results drive readiness, staleness
//     and epoch tracking.
//   - Passive outlier ejection: consecutive forward or probe failures
//     (timeouts, transport errors, 5xx) eject a replica behind an
//     exponential, jittered re-probe schedule (the circuit-breaker
//     idiom from internal/scan, built on overload.Delay); a probe
//     success snaps it back instantly.
//   - Deadline-budgeted retries with tail-latency hedging: idempotent
//     GETs that fail are retried on another replica within one retry
//     budget, and a request that outlives the hedge threshold (read
//     from the front server's per-endpoint latency histogram) launches
//     a second copy on a different replica — first response wins, the
//     loser is cancelled.
//   - A graceful degradation ladder: all replicas stale still serves
//     (answers carry their stale markers); all replicas down answers
//     503 with Retry-After and exact shed accounting.
//   - A rolling snapshot rollout: replicas are hot-swapped one at a
//     time through POST /v1/swap, each verified ready on the new epoch
//     before the next advances; a failed load aborts the rollout with
//     the fleet still answering from the old epoch (already-advanced
//     replicas are swapped back when the previous snapshot is known).
//
// The Balancer is a serve.Handler, so the whole overload kit — bounded
// admission, slowloris deadlines, graceful zero-loss drain, exact
// counters — fronts the fleet unchanged.
package ha

import (
	"errors"
	"log/slog"
	"math/rand/v2"
	"time"
)

// Defaults for Config's zero values.
const (
	// DefaultProbeInterval is how often a healthy replica is probed.
	DefaultProbeInterval = time.Second
	// DefaultProbeTimeout bounds one probe round-trip.
	DefaultProbeTimeout = time.Second
	// DefaultEjectThreshold is how many consecutive failures eject.
	DefaultEjectThreshold = 3
	// DefaultReprobeBase is the first ejected re-probe delay (doubling,
	// jittered to [d/2, d], up to DefaultReprobeMax).
	DefaultReprobeBase = 250 * time.Millisecond
	// DefaultReprobeMax caps the re-probe delay.
	DefaultReprobeMax = 8 * time.Second
	// DefaultRetryBudget bounds one client request's total time across
	// every retry and hedge attempt.
	DefaultRetryBudget = 2 * time.Second
	// DefaultMaxAttempts caps attempts (first try + retries + hedge)
	// per request, additionally bounded by the replica count.
	DefaultMaxAttempts = 3
	// DefaultHedgeQuantile is the latency quantile the hedge threshold
	// is read at when derived from the front histogram.
	DefaultHedgeQuantile = 0.99
	// DefaultHedgeMinSamples is how many observations the endpoint
	// histogram needs before its quantile is trusted for hedging.
	DefaultHedgeMinSamples = 64
	// DefaultHedgeFloor is the hedge delay used until the histogram has
	// enough samples, and the floor under a derived threshold.
	DefaultHedgeFloor = 20 * time.Millisecond
	// DefaultSwapTimeout bounds one replica's rollout swap request.
	DefaultSwapTimeout = 2 * time.Minute
)

// Config parameterizes the pool and balancer. Replicas is required;
// every other zero value takes the default above.
type Config struct {
	// Replicas is the fleet being fronted.
	Replicas []ReplicaConfig
	// ProbeInterval is the healthy-replica probe period.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round-trip.
	ProbeTimeout time.Duration
	// EjectThreshold ejects a replica after that many consecutive
	// failures (probe or forward); negative disables ejection.
	EjectThreshold int
	// ReprobeBase and ReprobeMax shape the ejected re-probe schedule:
	// overload.Delay(n, ReprobeBase, ReprobeMax, Jitter).
	ReprobeBase time.Duration
	ReprobeMax  time.Duration
	// RetryBudget bounds one request across all attempts.
	RetryBudget time.Duration
	// MaxAttempts caps attempts per request (default 3, always also
	// capped by the replica count).
	MaxAttempts int
	// HedgeDelay fixes the tail-latency hedge threshold; 0 derives it
	// from the front server's endpoint histogram at HedgeQuantile
	// (falling back to HedgeFloor until HedgeMinSamples observations);
	// negative disables hedging.
	HedgeDelay time.Duration
	// HedgeQuantile is the histogram quantile for a derived threshold.
	HedgeQuantile float64
	// HedgeMinSamples gates trusting the histogram quantile.
	HedgeMinSamples uint64
	// HedgeFloor is the minimum (and fallback) hedge delay.
	HedgeFloor time.Duration
	// SwapTimeout bounds each replica swap during a rolling rollout.
	SwapTimeout time.Duration
	// AllowRollout enables POST /v1/rollout. Off by default: rollouts
	// load files replica-side and belong behind an operator listener.
	AllowRollout bool
	// Now supplies the scheduling clock (probe due times, re-probe
	// schedule); nil means time.Now. Frozen test clocks make the whole
	// probe/eject/re-probe state machine deterministic.
	Now func() time.Time
	// Jitter draws the re-probe jitter in [0, bound); nil uses the
	// global rng. Deterministic sources pin the schedule exactly.
	Jitter func(bound int64) int64
	// Logger receives probe/ejection/rollout records; nil disables.
	Logger *slog.Logger
}

func (c *Config) probeInterval() time.Duration {
	if c.ProbeInterval <= 0 {
		return DefaultProbeInterval
	}
	return c.ProbeInterval
}

func (c *Config) probeTimeout() time.Duration {
	if c.ProbeTimeout <= 0 {
		return DefaultProbeTimeout
	}
	return c.ProbeTimeout
}

func (c *Config) ejectThreshold() int {
	if c.EjectThreshold == 0 {
		return DefaultEjectThreshold
	}
	return c.EjectThreshold
}

func (c *Config) reprobeBase() time.Duration {
	if c.ReprobeBase <= 0 {
		return DefaultReprobeBase
	}
	return c.ReprobeBase
}

func (c *Config) reprobeMax() time.Duration {
	if c.ReprobeMax <= 0 {
		return DefaultReprobeMax
	}
	return c.ReprobeMax
}

func (c *Config) retryBudget() time.Duration {
	if c.RetryBudget <= 0 {
		return DefaultRetryBudget
	}
	return c.RetryBudget
}

func (c *Config) maxAttempts(replicas int) int {
	n := c.MaxAttempts
	if n <= 0 {
		n = DefaultMaxAttempts
	}
	if n > replicas {
		n = replicas
	}
	return n
}

func (c *Config) hedgeQuantile() float64 {
	if c.HedgeQuantile <= 0 || c.HedgeQuantile > 1 {
		return DefaultHedgeQuantile
	}
	return c.HedgeQuantile
}

func (c *Config) hedgeMinSamples() uint64 {
	if c.HedgeMinSamples == 0 {
		return DefaultHedgeMinSamples
	}
	return c.HedgeMinSamples
}

func (c *Config) hedgeFloor() time.Duration {
	if c.HedgeFloor <= 0 {
		return DefaultHedgeFloor
	}
	return c.HedgeFloor
}

func (c *Config) swapTimeout() time.Duration {
	if c.SwapTimeout <= 0 {
		return DefaultSwapTimeout
	}
	return c.SwapTimeout
}

func (c *Config) now() time.Time {
	if c.Now != nil {
		return c.Now()
	}
	return time.Now()
}

func (c *Config) jitter() func(int64) int64 {
	if c.Jitter != nil {
		return c.Jitter
	}
	return rand.Int64N
}

var errNoReplicas = errors.New("ha: config requires at least one replica")
