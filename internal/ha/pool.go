package ha

import (
	"context"
	"encoding/json"
	"sync/atomic"
	"time"

	"mxmap/internal/overload"
	"mxmap/internal/serve"
)

// Pool owns the replica set: round-robin selection over available
// members, active /healthz + /readyz probing on the configured clock,
// and the ejection breaker's re-probe schedule. A Pool is usable on its
// own; Balancer adds the forwarding tier on top.
type Pool struct {
	cfg      *Config
	replicas []*Replica
	rr       atomic.Uint64
	c        *counters
}

// NewPool builds a pool over cfg.Replicas. Replicas start unprobed and
// therefore unavailable: run Run (or call ProbeOnce) to admit them.
func NewPool(cfg Config) (*Pool, error) {
	return newPool(&cfg, &counters{})
}

func newPool(cfg *Config, c *counters) (*Pool, error) {
	if len(cfg.Replicas) == 0 {
		return nil, errNoReplicas
	}
	p := &Pool{cfg: cfg, c: c}
	for i := range cfg.Replicas {
		rc := cfg.Replicas[i]
		if rc.Name == "" {
			rc.Name = rc.Addr
		}
		p.replicas = append(p.replicas, &Replica{cfg: rc, c: c})
	}
	return p, nil
}

// Stats snapshots the probe/ejection ledger. A standalone pool (no
// Balancer on top) fills only the probe-side counters; under a Balancer
// the same ledger is shared and Balancer.Stats returns it too.
func (p *Pool) Stats() BalancerStats { return p.c.snapshot() }

// Replicas snapshots every member's reportable state.
func (p *Pool) Replicas() []ReplicaInfo {
	out := make([]ReplicaInfo, 0, len(p.replicas))
	for _, r := range p.replicas {
		out = append(out, r.info())
	}
	return out
}

// reprobeDelay is the breaker's n-th re-probe wait: exponential from
// ReprobeBase, capped at ReprobeMax, jittered into [d/2, d] by the
// configured source (a zero-jitter source pins it exactly).
func (p *Pool) reprobeDelay(n int) time.Duration {
	return overload.Delay(n, p.cfg.reprobeBase(), p.cfg.reprobeMax(), p.cfg.jitter())
}

// pick selects the next available replica round-robin, skipping the
// tried set (so retries and hedges land elsewhere). nil means the
// request has nowhere left to go.
func (p *Pool) pick(tried map[*Replica]bool) *Replica {
	n := len(p.replicas)
	start := int(p.rr.Add(1)-1) % n
	for i := 0; i < n; i++ {
		r := p.replicas[(start+i)%n]
		if tried[r] {
			continue
		}
		if r.available() {
			return r
		}
	}
	return nil
}

// counts tallies the fleet for the degradation ladder: how many
// replicas are routable, how many of those are stale, how many sit
// behind a tripped breaker.
func (p *Pool) counts() (avail, stale, ejected int) {
	for _, r := range p.replicas {
		r.mu.Lock()
		switch {
		case r.ejected:
			ejected++
		case r.ready:
			avail++
			if r.stale {
				stale++
			}
		}
		r.mu.Unlock()
	}
	return avail, stale, ejected
}

// ProbeOnce probes every replica that is due on the configured clock —
// healthy members on the probe interval, ejected members on their
// breaker schedule — and returns how many were probed. Tests drive the
// whole probe state machine deterministically by stepping a frozen
// clock and calling this directly; Run wraps it in a ticker.
func (p *Pool) ProbeOnce(ctx context.Context) int {
	now := p.cfg.now()
	probed := 0
	for _, r := range p.replicas {
		r.mu.Lock()
		due := !r.probed || !now.Before(r.nextProbe)
		ejected := r.ejected
		r.mu.Unlock()
		if !due {
			continue
		}
		if ejected {
			p.c.reprobes.Add(1)
		}
		p.probeReplica(ctx, r)
		probed++
	}
	return probed
}

// probeReplica runs one probe round against r: GET /healthz for
// state/staleness/epoch, then GET /readyz for routability. A transport
// failure or non-200 /healthz is a probe failure and feeds the breaker;
// a 503 /readyz just marks the replica not ready (it is alive, merely
// loading or draining). Returns whether the replica is ready.
func (p *Pool) probeReplica(ctx context.Context, r *Replica) bool {
	p.c.probes.Add(1)
	now := p.cfg.now()
	timeout := p.cfg.probeTimeout()

	hr, err := r.do(ctx, "GET", "/healthz", timeout)
	if err != nil || hr.status != 200 {
		p.probeFailed(r, now)
		return false
	}
	var health serve.HealthResponse
	if err := json.Unmarshal(hr.body, &health); err != nil {
		p.probeFailed(r, now)
		return false
	}
	rr, err := r.do(ctx, "GET", "/readyz", timeout)
	if err != nil {
		p.probeFailed(r, now)
		return false
	}
	ready := rr.status == 200

	p.recordSuccess(r)
	r.mu.Lock()
	r.probed = true
	r.ready = ready
	r.stale = health.Stale
	r.epoch = health.Epoch
	r.nextProbe = now.Add(p.cfg.probeInterval())
	r.mu.Unlock()
	return ready
}

// probeFailed books one failed probe round: the breaker advances (or
// trips), and a still-healthy replica keeps its regular probe cadence
// so the next round retries it.
func (p *Pool) probeFailed(r *Replica, now time.Time) {
	p.c.probeFails.Add(1)
	r.mu.Lock()
	r.probed = true
	r.ready = false
	wasEjected := r.ejected
	r.mu.Unlock()
	p.recordFailure(r)
	r.mu.Lock()
	if !r.ejected && !wasEjected {
		// Breaker not tripped yet: stay on the regular cadence.
		r.nextProbe = now.Add(p.cfg.probeInterval())
	}
	r.mu.Unlock()
}

// Run probes in a loop until ctx is done. The tick is a quarter of the
// probe interval (floor 5ms) so ejected-replica re-probe deadlines are
// honored reasonably promptly without a timer per replica.
func (p *Pool) Run(ctx context.Context) {
	tick := p.cfg.probeInterval() / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		p.ProbeOnce(ctx)
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}
