package ha

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"mxmap/internal/serve"
)

// Balancer fronts the replica pool as a serve.Handler: plug it into a
// serve.Server's Config.Handler and the whole admission/drain/stats kit
// guards the fleet. Forwarding is retry-on-failure for idempotent GETs
// within one deadline budget, with tail-latency hedging against a
// second replica.
type Balancer struct {
	cfg   Config
	pool  *Pool
	c     counters
	front atomic.Pointer[serve.Server]
	// rolloutMu serializes rollouts: two concurrent rollouts
	// interleaving swaps would fork the fleet across three epochs.
	rolloutMu sync.Mutex
}

// New builds a balancer (and its pool) over cfg.
func New(cfg Config) (*Balancer, error) {
	b := &Balancer{cfg: cfg}
	pool, err := newPool(&b.cfg, &b.c)
	if err != nil {
		return nil, err
	}
	b.pool = pool
	return b, nil
}

// Pool exposes the replica pool (probing, membership state).
func (b *Balancer) Pool() *Pool { return b.pool }

// Run drives the probe loop until ctx is done.
func (b *Balancer) Run(ctx context.Context) { b.pool.Run(ctx) }

// AttachFront hands the balancer the serve.Server it runs behind, so a
// derived hedge threshold can read that server's per-endpoint latency
// histograms and /v1/stats can merge the front's counters.
func (b *Balancer) AttachFront(s *serve.Server) { b.front.Store(s) }

// Stats snapshots the balancer's exact counters.
func (b *Balancer) Stats() BalancerStats { return b.c.snapshot() }

// hedgeDelay resolves the tail-latency hedge threshold for one request
// path: a fixed positive Config.HedgeDelay wins; a negative one
// disables hedging; otherwise the front server's endpoint histogram is
// consulted at the hedge quantile, floored (and, below the sample
// gate, replaced) by HedgeFloor.
func (b *Balancer) hedgeDelay(path string) time.Duration {
	if d := b.cfg.HedgeDelay; d != 0 {
		if d < 0 {
			return 0
		}
		return d
	}
	floor := b.cfg.hedgeFloor()
	front := b.front.Load()
	if front == nil {
		return floor
	}
	q, n := front.LatencyQuantile(path, b.cfg.hedgeQuantile())
	if n < b.cfg.hedgeMinSamples() || q < floor {
		return floor
	}
	return q
}

// Handle implements serve.Handler: balancer-local control endpoints are
// answered here, everything else is forwarded to the fleet.
func (b *Balancer) Handle(ctx context.Context, req *serve.Request) serve.Response {
	switch req.Path {
	case "/healthz":
		if req.Method != "GET" {
			return serve.ErrorResponse(405, "method not allowed")
		}
		return serve.JSONResponse(200, b.Health())
	case "/readyz":
		if req.Method != "GET" {
			return serve.ErrorResponse(405, "method not allowed")
		}
		return b.handleReadyz()
	case "/v1/stats":
		if req.Method != "GET" {
			return serve.ErrorResponse(405, "method not allowed")
		}
		return serve.JSONResponse(200, b.FleetStats())
	case "/v1/rollout":
		return b.handleRollout(ctx, req)
	case "/v1/swap":
		// Swapping one replica out from under the balancer would fork
		// the fleet's epochs silently; rollouts own that transition.
		return serve.ErrorResponse(403, "swap is managed by the balancer: use /v1/rollout")
	}
	if req.Method != "GET" {
		return serve.ErrorResponse(405, "method not allowed")
	}
	return b.forward(ctx, req)
}

// Health reports the fleet's degradation rung and per-replica state.
func (b *Balancer) Health() FleetHealth {
	avail, stale, ejected := b.pool.counts()
	state := "serving"
	switch {
	case avail == 0:
		state = "down"
	case stale == avail:
		state = "degraded"
	}
	return FleetHealth{
		State:           state,
		ReadyReplicas:   avail,
		StaleReplicas:   stale,
		EjectedReplicas: ejected,
		Replicas:        b.pool.Replicas(),
	}
}

func (b *Balancer) handleReadyz() serve.Response {
	h := b.Health()
	resp := serve.JSONResponse(200, h)
	if h.ReadyReplicas == 0 {
		resp.Status = 503
		resp.RetryAfter = true
	}
	return resp
}

// FleetStats merges the balancer counters with the attached front
// server's and the per-replica routing view.
func (b *Balancer) FleetStats() FleetStats {
	fs := FleetStats{Balancer: b.c.snapshot(), Replicas: b.pool.Replicas()}
	if front := b.front.Load(); front != nil {
		st := front.Stats()
		fs.Front = &st
		fs.Latency = front.LatencySnapshot()
	}
	return fs
}

// attemptResult is one upstream attempt's outcome in the race.
type attemptResult struct {
	rep    *Replica
	resp   upstreamResponse
	err    error
	hedged bool
}

// forward proxies one request through the fleet.
//
// The ladder, top to bottom: a healthy replica answers; a failed
// attempt on an idempotent GET retries on a different replica inside
// the retry budget; an attempt outliving the hedge threshold races a
// second replica, first response wins and the loser's connection is
// severed; when every available replica is stale the answer still goes
// out (the stale markers in the body stand, StaleForwards counts it);
// when no replica is available the request sheds 503 + Retry-After and
// DownSheds counts it exactly.
func (b *Balancer) forward(ctx context.Context, req *serve.Request) serve.Response {
	b.c.requests.Add(1)

	target := req.Path
	if len(req.Query) > 0 {
		target += "?" + req.Query.Encode()
	}
	idempotent := req.Method == "GET"

	ctx, cancel := context.WithTimeout(ctx, b.cfg.retryBudget())
	defer cancel()

	maxAttempts := b.cfg.maxAttempts(len(b.pool.replicas))
	results := make(chan attemptResult, maxAttempts)
	tried := make(map[*Replica]bool, maxAttempts)
	var cancels []context.CancelFunc
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()
	inflight := 0

	launch := func(hedged bool) bool {
		if len(tried) >= maxAttempts {
			return false
		}
		rep := b.pool.pick(tried)
		if rep == nil {
			return false
		}
		tried[rep] = true
		b.c.attempts.Add(1)
		rep.attempts.Add(1)
		if rep.isStale() {
			b.c.staleForwards.Add(1)
		}
		actx, acancel := context.WithCancel(ctx)
		cancels = append(cancels, acancel)
		inflight++
		go func() {
			resp, err := rep.do(actx, req.Method, target, 0)
			results <- attemptResult{rep: rep, resp: resp, err: err, hedged: hedged}
		}()
		return true
	}

	if !launch(false) {
		b.c.downSheds.Add(1)
		return b.shed(503, "no replica available")
	}

	var hedgeC <-chan time.Time
	if idempotent {
		if d := b.hedgeDelay(req.Path); d > 0 {
			t := time.NewTimer(d)
			defer t.Stop()
			hedgeC = t.C
		}
	}

	var last *attemptResult
	for {
		select {
		case res := <-results:
			inflight--
			if res.err == nil && res.resp.status < 500 {
				// Success — 4xx included: the replica answered, the
				// client just asked something malformed or missing.
				b.pool.recordSuccess(res.rep)
				if res.hedged {
					b.c.hedgeWins.Add(1)
				}
				return passthrough(res.resp)
			}
			if res.err != errAttemptCancelled {
				b.c.upstreamErrs.Add(1)
				b.pool.recordFailure(res.rep)
			}
			cur := res
			last = &cur
			if idempotent && ctx.Err() == nil && launch(false) {
				b.c.retries.Add(1)
				continue
			}
			if inflight > 0 {
				// A hedge twin is still running; let the race finish.
				continue
			}
			b.c.proxyFails.Add(1)
			if last.err == nil {
				// Every attempt failed but the last one failed with an
				// actual upstream response: relay it rather than
				// flattening the cause into a generic 502.
				return passthrough(last.resp)
			}
			return b.shed(502, "all replicas failed")
		case <-hedgeC:
			hedgeC = nil
			if inflight > 0 && launch(true) {
				b.c.hedges.Add(1)
			}
		case <-ctx.Done():
			b.c.budgetExceeded.Add(1)
			return b.shed(504, "retry budget exceeded")
		}
	}
}

// passthrough relays an upstream response to the client, preserving the
// back-off hint on shed-class statuses.
func passthrough(u upstreamResponse) serve.Response {
	return serve.Response{
		Status:     u.status,
		Body:       u.body,
		RetryAfter: u.retryAfter || u.status == 429 || u.status == 503 || u.status == 504,
	}
}

// shed answers for the balancer itself when the fleet cannot:
// Retry-After always rides along so clients back off instead of
// hammering a down fleet.
func (b *Balancer) shed(status int, msg string) serve.Response {
	resp := serve.ErrorResponse(status, msg)
	resp.RetryAfter = true
	return resp
}
