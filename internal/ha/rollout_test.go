package ha

import (
	"context"
	"net/url"
	"os"
	"strconv"
	"testing"

	"mxmap/internal/netsim"
	"mxmap/internal/serve"
)

func TestRollingRollout(t *testing.T) {
	oldPath, newPath := writeHAWorlds(t)
	f := newFleet(t, 3, oldPath, Config{HedgeDelay: noHedge, AllowRollout: true},
		serve.Config{}, serve.Config{})
	c := f.client(t)

	var rep RolloutReport
	c.get("POST", "/v1/rollout?path="+url.QueryEscape(newPath)+"&prev="+url.QueryEscape(oldPath),
		200, &rep)
	if !rep.Completed || rep.Aborted != "" || rep.RolledBack != 0 {
		t.Fatalf("rollout = %+v, want completed cleanly", rep)
	}
	if len(rep.Replicas) != 3 {
		t.Fatalf("rollout touched %d replicas, want 3", len(rep.Replicas))
	}
	for i, rr := range rep.Replicas {
		// Every replica hot-swapped epoch 1 → 2 and the delta path did
		// the same bounded work on each: one.example and four.example
		// reused, two.example (migrated) and five.example (new)
		// reinferred.
		want := ReplicaRollout{Name: "r" + strconv.Itoa(i), FromEpoch: 1, ToEpoch: 2,
			Reused: 2, Reinferred: 2, SwapLatencyNS: rr.SwapLatencyNS}
		if rr != want || rr.SwapLatencyNS < 0 {
			t.Errorf("replica %d rollout = %+v, want %+v", i, rr, want)
		}
	}

	// The whole fleet answers from the new epoch now.
	for i := 0; i < 3; i++ {
		var look serve.LookupResponse
		c.get("GET", "/v1/domain?name=two.example", 200, &look)
		if look.Primary != "prov-b.net" || look.Snapshot.Date != "2021-02" ||
			look.Snapshot.Epoch != 2 || look.Stale {
			t.Fatalf("post-rollout lookup = %+v, want epoch 2 of 2021-02", look)
		}
	}

	want := BalancerStats{
		Requests: 3, Attempts: 3,
		Probes:   6, // admission round + one verify probe per swap
		Rollouts: 1, RolloutSwaps: 3,
	}
	if got := f.b.Stats(); got != want {
		t.Fatalf("stats = %+v, want %+v", got, want)
	}
}

func TestRolloutAbortHoldsFleet(t *testing.T) {
	oldPath, _ := writeHAWorlds(t)
	f := newFleet(t, 3, oldPath, Config{HedgeDelay: noHedge, AllowRollout: true},
		serve.Config{}, serve.Config{})
	c := f.client(t)

	// The new snapshot is unreadable: the first replica's load fails,
	// the rollout aborts immediately, and nothing advanced.
	var rep RolloutReport
	c.get("POST", "/v1/rollout?path=/nonexistent.jsonl", 500, &rep)
	if rep.Completed || rep.Aborted == "" || len(rep.Replicas) != 0 || rep.RolledBack != 0 {
		t.Fatalf("rollout = %+v, want immediate abort", rep)
	}

	// The fleet still answers every query from the old epoch. The
	// failed replica serves it in stale mode (its load failed, and the
	// marker rides along in its answers); the untouched replicas never
	// saw the new path at all.
	for i := 0; i < 3; i++ {
		var look serve.LookupResponse
		c.get("GET", "/v1/domain?name=two.example", 200, &look)
		if look.Primary != "prov-a.net" || look.Snapshot.Date != "2021-01" {
			t.Fatalf("post-abort lookup = %+v, want old epoch answers", look)
		}
		if look.Stale != (i == 0) {
			t.Fatalf("lookup %d stale = %v, want only the failed replica marked", i, look.Stale)
		}
	}

	want := BalancerStats{
		Requests: 3, Attempts: 3,
		Probes:   3,
		Rollouts: 1, RolloutAborts: 1,
	}
	if got := f.b.Stats(); got != want {
		t.Fatalf("stats = %+v, want %+v", got, want)
	}
}

func TestRolloutRollbackOnMidFleetFailure(t *testing.T) {
	oldPath, newPath := writeHAWorlds(t)
	n := netsim.New()
	f := &fleet{n: n}
	var cfg Config
	cfg.HedgeDelay = noHedge
	cfg.AllowRollout = true
	for i := 0; i < 3; i++ {
		repCfg := serve.Config{}
		if i == 1 {
			// Replica 1 sabotages its own swap: the moment the rollout
			// reaches it, the new snapshot file disappears and its load
			// fails — after replica 0 already advanced.
			repCfg.Gate = func(path string) {
				if path == "/v1/swap" {
					os.Remove(newPath)
				}
			}
		}
		svc, srv := startReplica(t, n, replicaAddr(i), oldPath, repCfg)
		f.svcs = append(f.svcs, svc)
		f.srvs = append(f.srvs, srv)
		cfg.Replicas = append(cfg.Replicas, ReplicaConfig{
			Name: "r" + strconv.Itoa(i), Addr: replicaAddr(i),
			Dial: fabricDialer(n, replicaAddr(i)),
		})
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.b = b
	f.front = startServer(t, n, frontAddr, serve.Config{Handler: b.Handle})
	b.AttachFront(f.front)
	b.Pool().ProbeOnce(context.Background())
	c := f.client(t)

	var rep RolloutReport
	c.get("POST", "/v1/rollout?path="+url.QueryEscape(newPath)+"&prev="+url.QueryEscape(oldPath),
		500, &rep)
	if rep.Completed || rep.Aborted == "" {
		t.Fatalf("rollout = %+v, want abort at replica 1", rep)
	}
	// Replica 0 had advanced to the new epoch and was rolled back.
	if rep.RolledBack != 1 || len(rep.Replicas) != 1 || !rep.Replicas[0].RolledBack ||
		rep.Replicas[0].Name != "r0" {
		t.Fatalf("rollout = %+v, want r0 rolled back", rep)
	}

	// Fleet convergence: every replica answers from the old snapshot
	// again — r0 via its rollback swap (epoch 3), r1 stale on epoch 1,
	// r2 untouched on epoch 1. No client ever sees the aborted epoch.
	wantEpochs := []uint64{3, 1, 1}
	wantStale := []bool{false, true, false}
	for i := 0; i < 3; i++ {
		var look serve.LookupResponse
		c.get("GET", "/v1/domain?name=two.example", 200, &look)
		if look.Primary != "prov-a.net" || look.Snapshot.Date != "2021-01" ||
			look.Snapshot.Epoch != wantEpochs[i] || look.Stale != wantStale[i] {
			t.Fatalf("post-rollback lookup %d = %+v, want old-world epoch %d stale=%v",
				i, look, wantEpochs[i], wantStale[i])
		}
	}

	want := BalancerStats{
		Requests: 3, Attempts: 3,
		Probes:   5, // admission round + r0 forward verify + r0 rollback verify
		Rollouts: 1, RolloutSwaps: 1, RolloutAborts: 1, Rollbacks: 1,
	}
	if got := f.b.Stats(); got != want {
		t.Fatalf("stats = %+v, want %+v", got, want)
	}
}
