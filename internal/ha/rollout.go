package ha

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/url"

	"mxmap/internal/serve"
)

// RolloutReport is one rolling rollout's outcome: a per-replica swap
// record in fleet order, whether the whole fleet reached the new epoch,
// and — on abort — what failed and how many advanced replicas were
// swapped back.
type RolloutReport struct {
	Replicas  []ReplicaRollout `json:"replicas"`
	Completed bool             `json:"completed"`
	// Aborted carries the failing replica's error when the rollout
	// halted; the fleet keeps answering from the old epoch.
	Aborted string `json:"aborted,omitempty"`
	// RolledBack counts already-advanced replicas swapped back to the
	// previous snapshot after an abort.
	RolledBack int `json:"rolled_back,omitempty"`
}

// ReplicaRollout records one replica's swap inside a rollout.
type ReplicaRollout struct {
	Name      string `json:"name"`
	FromEpoch uint64 `json:"from_epoch"`
	ToEpoch   uint64 `json:"to_epoch"`
	// Reused and Reinferred mirror the replica's delta-inference stats
	// for the swap; SwapLatencyNS its build-through-drain wall time on
	// the replica's own service clock.
	Reused        int   `json:"reused"`
	Reinferred    int   `json:"reinferred"`
	SwapLatencyNS int64 `json:"swap_latency_ns"`
	// RolledBack marks a replica that advanced and was swapped back
	// after a later replica's failure aborted the rollout.
	RolledBack bool `json:"rolled_back,omitempty"`
}

// Rollout rolls newPath across the fleet one replica at a time: POST
// /v1/swap on the replica, then verify by probe that it is serving the
// new epoch (ready, not stale) before advancing to the next. Queries
// keep flowing the whole time — each replica drains its own old epoch
// inside Swap, and the balancer routes around whichever member is
// mid-swap if it ever answers slowly.
//
// On a failed swap the rollout aborts: the failing replica is left
// serving its old snapshot (the replica-side swap contract marks it
// stale but keeps answering), replicas not yet reached never see the
// new path, and — when prevPath names the previous snapshot — replicas
// that had already advanced are swapped back so the fleet converges on
// the old epoch instead of straddling two.
func (b *Balancer) Rollout(ctx context.Context, newPath, prevPath string) (*RolloutReport, error) {
	if newPath == "" {
		return nil, errors.New("ha: rollout requires a snapshot path")
	}
	b.rolloutMu.Lock()
	defer b.rolloutMu.Unlock()
	b.c.rollouts.Add(1)
	if b.cfg.Logger != nil {
		b.cfg.Logger.Info("ha: rollout starting", "path", newPath, "replicas", len(b.pool.replicas))
	}

	report := &RolloutReport{}
	var advanced []*Replica
	for i, r := range b.pool.replicas {
		rec, err := b.swapReplica(ctx, r, newPath)
		if err != nil {
			b.c.rolloutAborts.Add(1)
			report.Aborted = err.Error()
			if b.cfg.Logger != nil {
				b.cfg.Logger.Warn("ha: rollout aborted", "replica", r.cfg.Name, "err", err)
			}
			b.rollback(ctx, advanced, prevPath, report)
			return report, fmt.Errorf("ha: rollout aborted at replica %d/%d: %w",
				i+1, len(b.pool.replicas), err)
		}
		b.c.rolloutSwaps.Add(1)
		advanced = append(advanced, r)
		report.Replicas = append(report.Replicas, rec)
	}
	report.Completed = true
	if b.cfg.Logger != nil {
		b.cfg.Logger.Info("ha: rollout complete", "replicas", len(report.Replicas))
	}
	return report, nil
}

// swapReplica swaps one replica to path and verifies the flip: the
// swap's ChurnReport names the epoch the replica must now be serving,
// and a fresh probe round must see it ready on exactly that epoch,
// not stale. Counting (RolloutSwaps vs Rollbacks) is the caller's.
func (b *Balancer) swapReplica(ctx context.Context, r *Replica, path string) (ReplicaRollout, error) {
	var rec ReplicaRollout
	resp, err := r.do(ctx, "POST", "/v1/swap?path="+url.QueryEscape(path), b.cfg.swapTimeout())
	if err != nil {
		return rec, fmt.Errorf("swap %s: %w", r.cfg.Name, err)
	}
	if resp.status != 200 {
		return rec, fmt.Errorf("swap %s: status %d: %s", r.cfg.Name, resp.status, errText(resp.body))
	}
	var churn serve.ChurnReport
	if err := json.Unmarshal(resp.body, &churn); err != nil {
		return rec, fmt.Errorf("swap %s: bad churn report: %w", r.cfg.Name, err)
	}
	if !b.pool.probeReplica(ctx, r) {
		return rec, fmt.Errorf("verify %s: not ready after swap", r.cfg.Name)
	}
	info := r.info()
	if info.Stale || info.Epoch != churn.ToEpoch {
		return rec, fmt.Errorf("verify %s: serving epoch %d stale=%v, want epoch %d",
			r.cfg.Name, info.Epoch, info.Stale, churn.ToEpoch)
	}
	return ReplicaRollout{
		Name:          r.cfg.Name,
		FromEpoch:     churn.FromEpoch,
		ToEpoch:       churn.ToEpoch,
		Reused:        churn.Delta.Reused,
		Reinferred:    churn.Delta.Reinferred,
		SwapLatencyNS: churn.SwapLatencyNS,
	}, nil
}

// rollback swaps already-advanced replicas back to prevPath after an
// abort. Best effort: a replica that also fails to swap back stays on
// the new epoch but is marked failed in its own books; without a
// prevPath there is nothing to converge to and the advanced replicas
// keep serving the new epoch (the old one is gone replica-side).
func (b *Balancer) rollback(ctx context.Context, advanced []*Replica, prevPath string, report *RolloutReport) {
	if prevPath == "" || len(advanced) == 0 {
		return
	}
	for i, r := range advanced {
		if _, err := b.swapReplica(ctx, r, prevPath); err != nil {
			if b.cfg.Logger != nil {
				b.cfg.Logger.Warn("ha: rollback failed", "replica", r.cfg.Name, "err", err)
			}
			continue
		}
		b.c.rollbacks.Add(1)
		report.RolledBack++
		report.Replicas[i].RolledBack = true
	}
}

// handleRollout answers POST /v1/rollout?path=NEW&prev=OLD on the
// balancer. Gated by Config.AllowRollout for the same reason the
// replica swap endpoint is gated: it loads operator-named files.
func (b *Balancer) handleRollout(ctx context.Context, req *serve.Request) serve.Response {
	if req.Method != "POST" {
		return serve.ErrorResponse(405, "method not allowed")
	}
	if !b.cfg.AllowRollout {
		return serve.ErrorResponse(403, "rollout endpoint disabled")
	}
	path := req.Query.Get("path")
	if path == "" {
		return serve.ErrorResponse(400, "missing path parameter")
	}
	report, err := b.Rollout(ctx, path, req.Query.Get("prev"))
	if err != nil {
		if report == nil {
			return serve.ErrorResponse(500, err.Error())
		}
		// The report carries the abort detail; 500 tells the operator
		// the fleet is still on the old epoch.
		return serve.JSONResponse(500, report)
	}
	return serve.JSONResponse(200, report)
}

// errText extracts the error field from a JSON error body, falling back
// to the raw bytes.
func errText(body []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return e.Error
	}
	return string(body)
}
