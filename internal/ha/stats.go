package ha

import (
	"sync/atomic"

	"mxmap/internal/serve"
)

// BalancerStats is the balancer's exact counter set. Comparable —
// fixed-width integers only — so chaos tests can reconstruct the whole
// struct after a run and assert equality, not inequalities.
type BalancerStats struct {
	// Requests counts client requests entering the forwarding path.
	Requests uint64 `json:"requests"`
	// Attempts counts upstream tries (first attempts, retries, hedges).
	Attempts uint64 `json:"attempts"`
	// Retries counts failed attempts relaunched on another replica.
	Retries uint64 `json:"retries"`
	// Hedges counts second requests launched at the hedge threshold,
	// and HedgeWins how many of those returned first.
	Hedges    uint64 `json:"hedges"`
	HedgeWins uint64 `json:"hedge_wins"`
	// UpstreamErrs counts attempt failures (transport error or 5xx).
	UpstreamErrs uint64 `json:"upstream_errs"`
	// StaleForwards counts attempts routed to a known-stale replica —
	// the degraded rung of the ladder, where answers carry markers.
	StaleForwards uint64 `json:"stale_forwards"`
	// DownSheds counts requests answered 503+Retry-After because no
	// replica was available — the bottom rung, with exact accounting.
	DownSheds uint64 `json:"down_sheds"`
	// ProxyFails counts requests where every attempt failed.
	ProxyFails uint64 `json:"proxy_fails"`
	// BudgetExceeded counts requests that ran out the retry budget.
	BudgetExceeded uint64 `json:"budget_exceeded"`
	// Probes counts replica probe rounds; ProbeFails the failed ones.
	Probes     uint64 `json:"probes"`
	ProbeFails uint64 `json:"probe_fails"`
	// Ejections, Reprobes and Recoveries track the outlier breaker:
	// trips, scheduled re-probe attempts while ejected, and resets.
	Ejections  uint64 `json:"ejections"`
	Reprobes   uint64 `json:"reprobes"`
	Recoveries uint64 `json:"recoveries"`
	// Rollouts counts rolling snapshot rollouts started; RolloutSwaps
	// individual replica swaps completed and verified; RolloutAborts
	// rollouts halted by a failed swap; Rollbacks already-advanced
	// replicas swapped back to the previous snapshot after an abort.
	Rollouts      uint64 `json:"rollouts"`
	RolloutSwaps  uint64 `json:"rollout_swaps"`
	RolloutAborts uint64 `json:"rollout_aborts"`
	Rollbacks     uint64 `json:"rollbacks"`
}

// counters is the live atomic mirror of BalancerStats, shared by the
// pool (probe/ejection side) and the balancer (forwarding side).
type counters struct {
	requests       atomic.Uint64
	attempts       atomic.Uint64
	retries        atomic.Uint64
	hedges         atomic.Uint64
	hedgeWins      atomic.Uint64
	upstreamErrs   atomic.Uint64
	staleForwards  atomic.Uint64
	downSheds      atomic.Uint64
	proxyFails     atomic.Uint64
	budgetExceeded atomic.Uint64
	probes         atomic.Uint64
	probeFails     atomic.Uint64
	ejections      atomic.Uint64
	reprobes       atomic.Uint64
	recoveries     atomic.Uint64
	rollouts       atomic.Uint64
	rolloutSwaps   atomic.Uint64
	rolloutAborts  atomic.Uint64
	rollbacks      atomic.Uint64
}

func (c *counters) snapshot() BalancerStats {
	return BalancerStats{
		Requests:       c.requests.Load(),
		Attempts:       c.attempts.Load(),
		Retries:        c.retries.Load(),
		Hedges:         c.hedges.Load(),
		HedgeWins:      c.hedgeWins.Load(),
		UpstreamErrs:   c.upstreamErrs.Load(),
		StaleForwards:  c.staleForwards.Load(),
		DownSheds:      c.downSheds.Load(),
		ProxyFails:     c.proxyFails.Load(),
		BudgetExceeded: c.budgetExceeded.Load(),
		Probes:         c.probes.Load(),
		ProbeFails:     c.probeFails.Load(),
		Ejections:      c.ejections.Load(),
		Reprobes:       c.reprobes.Load(),
		Recoveries:     c.recoveries.Load(),
		Rollouts:       c.rollouts.Load(),
		RolloutSwaps:   c.rolloutSwaps.Load(),
		RolloutAborts:  c.rolloutAborts.Load(),
		Rollbacks:      c.rollbacks.Load(),
	}
}

// ReplicaInfo is one replica's state as reported by /healthz and
// /v1/stats on the balancer.
type ReplicaInfo struct {
	Name string `json:"name"`
	Addr string `json:"addr,omitempty"`
	// State is "healthy" or "ejected".
	State string `json:"state"`
	// Ready and Stale mirror the replica's last probed /readyz and
	// /healthz; Epoch is its last probed snapshot epoch.
	Ready bool   `json:"ready"`
	Stale bool   `json:"stale,omitempty"`
	Epoch uint64 `json:"epoch"`
	// ConsecFails is the live failure streak feeding the breaker.
	ConsecFails int `json:"consec_fails,omitempty"`
	// Attempts and Failures count forwarded attempts routed here;
	// Ejections counts this replica's breaker trips.
	Attempts  uint64 `json:"attempts"`
	Failures  uint64 `json:"failures"`
	Ejections uint64 `json:"ejections"`
}

// FleetHealth answers /healthz on the balancer: always 200 (liveness),
// with the degradation rung spelled out in State.
type FleetHealth struct {
	// State is "serving", "degraded" (every available replica is
	// stale), or "down" (no replica available).
	State           string        `json:"state"`
	ReadyReplicas   int           `json:"ready_replicas"`
	StaleReplicas   int           `json:"stale_replicas"`
	EjectedReplicas int           `json:"ejected_replicas"`
	Replicas        []ReplicaInfo `json:"replicas"`
}

// FleetStats answers /v1/stats on the balancer: its own exact counters
// merged with the front server's (when attached) and every replica's
// routing view.
type FleetStats struct {
	Balancer BalancerStats      `json:"balancer"`
	Front    *serve.ServerStats `json:"front,omitempty"`
	// Latency carries the front server's per-endpoint histograms when
	// it observes latency (the same histograms hedging reads from).
	Latency  map[string]serve.EndpointLatency `json:"latency,omitempty"`
	Replicas []ReplicaInfo                    `json:"replicas"`
}
