// Package spf implements the subset of the Sender Policy Framework
// (RFC 7208) needed for the paper's proposed future-work heuristic: the
// MX record only reveals the first delivery hop, so when a domain routes
// inbound mail through a filtering service, the SPF policy — which must
// authorize the real mailbox provider's outbound servers — often reveals
// the "eventual" provider (§3.4 of the paper).
//
// The package parses v=spf1 records, and walks include: and redirect=
// chains through a TXT resolver to collect every authorized network and
// included organization.
package spf

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"strings"
)

// Qualifier is an SPF mechanism qualifier.
type Qualifier byte

// Qualifiers.
const (
	QPass     Qualifier = '+'
	QFail     Qualifier = '-'
	QSoftFail Qualifier = '~'
	QNeutral  Qualifier = '?'
)

// Mechanism kinds.
type MechKind int

// Mechanism kinds recognized by the parser.
const (
	MechAll MechKind = iota
	MechInclude
	MechA
	MechMX
	MechIP4
	MechIP6
	MechExists
	MechPTR
)

var mechNames = map[MechKind]string{
	MechAll: "all", MechInclude: "include", MechA: "a", MechMX: "mx",
	MechIP4: "ip4", MechIP6: "ip6", MechExists: "exists", MechPTR: "ptr",
}

// String names the mechanism kind.
func (k MechKind) String() string { return mechNames[k] }

// Mechanism is one parsed SPF term.
type Mechanism struct {
	// Qualifier defaults to QPass.
	Qualifier Qualifier
	// Kind selects the mechanism.
	Kind MechKind
	// Domain is the target of include/a/mx/exists/ptr (optional for the
	// latter three).
	Domain string
	// Prefix is the network of ip4/ip6.
	Prefix netip.Prefix
}

// Record is one parsed v=spf1 policy.
type Record struct {
	// Mechanisms in order of appearance.
	Mechanisms []Mechanism
	// Redirect is the redirect= modifier target, if any.
	Redirect string
}

// Errors.
var (
	// ErrNotSPF reports a TXT record that is not a v=spf1 policy.
	ErrNotSPF = errors.New("spf: not an spf record")
	// ErrSyntax reports a malformed policy.
	ErrSyntax = errors.New("spf: syntax error")
	// ErrNoRecord reports a domain without an SPF policy.
	ErrNoRecord = errors.New("spf: no spf record")
	// ErrLoop reports an include/redirect chain exceeding RFC 7208's
	// lookup limit.
	ErrLoop = errors.New("spf: too many dns lookups")
)

// Parse parses one TXT string as an SPF record.
func Parse(txt string) (*Record, error) {
	fields := strings.Fields(strings.TrimSpace(txt))
	if len(fields) == 0 || !strings.EqualFold(fields[0], "v=spf1") {
		return nil, ErrNotSPF
	}
	rec := &Record{}
	for _, f := range fields[1:] {
		lower := strings.ToLower(f)
		if target, ok := strings.CutPrefix(lower, "redirect="); ok {
			if target == "" {
				return nil, fmt.Errorf("%w: empty redirect", ErrSyntax)
			}
			rec.Redirect = target
			continue
		}
		if strings.Contains(lower, "=") {
			continue // unknown modifier (exp=, etc.): ignored per RFC
		}
		m, err := parseMechanism(lower)
		if err != nil {
			return nil, err
		}
		rec.Mechanisms = append(rec.Mechanisms, m)
	}
	return rec, nil
}

func parseMechanism(s string) (Mechanism, error) {
	m := Mechanism{Qualifier: QPass}
	switch {
	case s == "":
		return m, fmt.Errorf("%w: empty term", ErrSyntax)
	case s[0] == '+', s[0] == '-', s[0] == '~', s[0] == '?':
		m.Qualifier = Qualifier(s[0])
		s = s[1:]
	}
	name, arg, hasArg := strings.Cut(s, ":")
	switch name {
	case "all":
		m.Kind = MechAll
		if hasArg {
			return m, fmt.Errorf("%w: all takes no argument", ErrSyntax)
		}
	case "include":
		m.Kind = MechInclude
		if !hasArg || arg == "" {
			return m, fmt.Errorf("%w: include requires a domain", ErrSyntax)
		}
		m.Domain = arg
	case "a", "mx", "exists", "ptr":
		switch name {
		case "a":
			m.Kind = MechA
		case "mx":
			m.Kind = MechMX
		case "exists":
			m.Kind = MechExists
		case "ptr":
			m.Kind = MechPTR
		}
		// Strip any dual-cidr suffix ("a:dom/24" or "a/24").
		m.Domain = strings.SplitN(arg, "/", 2)[0]
	case "ip4", "ip6":
		if name == "ip4" {
			m.Kind = MechIP4
		} else {
			m.Kind = MechIP6
		}
		if !hasArg || arg == "" {
			return m, fmt.Errorf("%w: %s requires a network", ErrSyntax, name)
		}
		if !strings.Contains(arg, "/") {
			if name == "ip4" {
				arg += "/32"
			} else {
				arg += "/128"
			}
		}
		p, err := netip.ParsePrefix(arg)
		if err != nil {
			return m, fmt.Errorf("%w: %v", ErrSyntax, err)
		}
		m.Prefix = p
	default:
		return m, fmt.Errorf("%w: unknown mechanism %q", ErrSyntax, name)
	}
	return m, nil
}

// TXTResolver supplies TXT lookups for the include walker.
type TXTResolver interface {
	LookupTXT(ctx context.Context, domain string) ([]string, error)
}

// Senders is everything a domain's SPF policy authorizes to send on its
// behalf, flattened through include and redirect chains.
type Senders struct {
	// Includes lists every include/redirect target encountered, in
	// discovery order — the organizational fingerprint of the outbound
	// mail path.
	Includes []string
	// Networks lists every ip4/ip6 network authorized.
	Networks []netip.Prefix
	// UsesAMX reports that the policy authorizes the domain's own A/MX
	// hosts (a strong self-hosting signal).
	UsesAMX bool
}

// maxLookups mirrors RFC 7208 §4.6.4's limit of 10 DNS-querying terms.
const maxLookups = 10

// Walk fetches and flattens the SPF policy of domain.
func Walk(ctx context.Context, r TXTResolver, domain string) (*Senders, error) {
	s := &Senders{}
	budget := maxLookups
	seen := make(map[string]bool)
	if err := walk(ctx, r, strings.ToLower(domain), s, seen, &budget); err != nil {
		return nil, err
	}
	return s, nil
}

func walk(ctx context.Context, r TXTResolver, domain string, s *Senders, seen map[string]bool, budget *int) error {
	if seen[domain] {
		return nil
	}
	seen[domain] = true
	rec, err := Lookup(ctx, r, domain)
	if err != nil {
		return err
	}
	for _, m := range rec.Mechanisms {
		if m.Qualifier == QFail {
			continue // "-mechanism" authorizes nothing
		}
		switch m.Kind {
		case MechInclude:
			s.Includes = append(s.Includes, m.Domain)
			*budget--
			if *budget < 0 {
				return ErrLoop
			}
			// Includes of domains without SPF records are permerrors in
			// full SPF; for provider discovery they are still signal, so
			// record and continue.
			if err := walk(ctx, r, m.Domain, s, seen, budget); err != nil && !errors.Is(err, ErrNoRecord) {
				return err
			}
		case MechIP4, MechIP6:
			s.Networks = append(s.Networks, m.Prefix)
		case MechA, MechMX:
			s.UsesAMX = true
		}
	}
	if rec.Redirect != "" {
		s.Includes = append(s.Includes, rec.Redirect)
		*budget--
		if *budget < 0 {
			return ErrLoop
		}
		if err := walk(ctx, r, rec.Redirect, s, seen, budget); err != nil && !errors.Is(err, ErrNoRecord) {
			return err
		}
	}
	return nil
}

// Lookup fetches a domain's SPF record from its TXT records.
func Lookup(ctx context.Context, r TXTResolver, domain string) (*Record, error) {
	txts, err := r.LookupTXT(ctx, domain)
	if err != nil {
		return nil, fmt.Errorf("%w: %s (%v)", ErrNoRecord, domain, err)
	}
	for _, txt := range txts {
		rec, err := Parse(txt)
		if errors.Is(err, ErrNotSPF) {
			continue
		}
		return rec, err
	}
	return nil, fmt.Errorf("%w: %s", ErrNoRecord, domain)
}
