package spf

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestParseBasic(t *testing.T) {
	rec, err := Parse("v=spf1 include:_spf.google.com ~all")
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Mechanisms) != 2 {
		t.Fatalf("mechanisms = %+v", rec.Mechanisms)
	}
	if rec.Mechanisms[0].Kind != MechInclude || rec.Mechanisms[0].Domain != "_spf.google.com" {
		t.Errorf("m0 = %+v", rec.Mechanisms[0])
	}
	if rec.Mechanisms[1].Kind != MechAll || rec.Mechanisms[1].Qualifier != QSoftFail {
		t.Errorf("m1 = %+v", rec.Mechanisms[1])
	}
}

func TestParseMechanismZoo(t *testing.T) {
	rec, err := Parse("v=spf1 ip4:192.0.2.0/24 ip4:198.51.100.7 ip6:2001:db8::/32 a mx a:mail.example.com mx:other.example.com/24 exists:%{i}.sbl.example.org -all")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []MechKind{MechIP4, MechIP4, MechIP6, MechA, MechMX, MechA, MechMX, MechExists, MechAll}
	if len(rec.Mechanisms) != len(kinds) {
		t.Fatalf("count = %d", len(rec.Mechanisms))
	}
	for i, k := range kinds {
		if rec.Mechanisms[i].Kind != k {
			t.Errorf("m%d kind = %v, want %v", i, rec.Mechanisms[i].Kind, k)
		}
	}
	if rec.Mechanisms[1].Prefix.String() != "198.51.100.7/32" {
		t.Errorf("bare ip4 = %v", rec.Mechanisms[1].Prefix)
	}
	if rec.Mechanisms[6].Domain != "other.example.com" {
		t.Errorf("mx dual-cidr domain = %q", rec.Mechanisms[6].Domain)
	}
	if rec.Mechanisms[8].Qualifier != QFail {
		t.Errorf("all qualifier = %c", rec.Mechanisms[8].Qualifier)
	}
}

func TestParseRedirectAndModifiers(t *testing.T) {
	rec, err := Parse("v=spf1 exp=explain.example.com redirect=_spf.provider.net")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Redirect != "_spf.provider.net" {
		t.Errorf("redirect = %q", rec.Redirect)
	}
	if len(rec.Mechanisms) != 0 {
		t.Errorf("mechanisms = %+v", rec.Mechanisms)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		in   string
		want error
	}{
		{"not spf at all", ErrNotSPF},
		{"v=spf2 all", ErrNotSPF},
		{"v=spf1 include:", ErrSyntax},
		{"v=spf1 ip4:banana", ErrSyntax},
		{"v=spf1 ip4:", ErrSyntax},
		{"v=spf1 all:arg", ErrSyntax},
		{"v=spf1 wat", ErrSyntax},
		{"v=spf1 redirect=", ErrSyntax},
	}
	for _, c := range cases {
		if _, err := Parse(c.in); !errors.Is(err, c.want) {
			t.Errorf("Parse(%q) = %v, want %v", c.in, err, c.want)
		}
	}
}

// fakeTXT is a map-backed TXTResolver.
type fakeTXT map[string][]string

func (f fakeTXT) LookupTXT(_ context.Context, domain string) ([]string, error) {
	txts, ok := f[domain]
	if !ok {
		return nil, fmt.Errorf("NXDOMAIN %s", domain)
	}
	return txts, nil
}

func TestWalkFlattensIncludes(t *testing.T) {
	r := fakeTXT{
		"customer.com":    {"unrelated txt", "v=spf1 include:_spf.filter.net -all"},
		"_spf.filter.net": {"v=spf1 ip4:203.0.113.0/24 include:spf.outlook.example ~all"},
		"spf.outlook.example": {
			"v=spf1 ip4:198.51.100.0/24 ip4:192.0.2.0/24 -all",
		},
	}
	s, err := Walk(context.Background(), r, "customer.com")
	if err != nil {
		t.Fatal(err)
	}
	wantIncludes := []string{"_spf.filter.net", "spf.outlook.example"}
	if len(s.Includes) != 2 || s.Includes[0] != wantIncludes[0] || s.Includes[1] != wantIncludes[1] {
		t.Errorf("includes = %v", s.Includes)
	}
	if len(s.Networks) != 3 {
		t.Errorf("networks = %v", s.Networks)
	}
	if s.UsesAMX {
		t.Error("UsesAMX should be false")
	}
}

func TestWalkSelfHostedSignal(t *testing.T) {
	r := fakeTXT{"self.com": {"v=spf1 a mx ip4:100.64.1.1 -all"}}
	s, err := Walk(context.Background(), r, "self.com")
	if err != nil {
		t.Fatal(err)
	}
	if !s.UsesAMX || len(s.Networks) != 1 || len(s.Includes) != 0 {
		t.Errorf("senders = %+v", s)
	}
}

func TestWalkRedirect(t *testing.T) {
	r := fakeTXT{
		"r.com":        {"v=spf1 redirect=_spf.host.io"},
		"_spf.host.io": {"v=spf1 ip4:10.0.0.0/8 -all"},
	}
	s, err := Walk(context.Background(), r, "r.com")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Includes) != 1 || s.Includes[0] != "_spf.host.io" || len(s.Networks) != 1 {
		t.Errorf("senders = %+v", s)
	}
}

func TestWalkLoopBounded(t *testing.T) {
	r := fakeTXT{
		"a.com": {"v=spf1 include:b.com -all"},
		"b.com": {"v=spf1 include:a.com -all"},
	}
	// Mutual includes terminate via the seen-set without error.
	s, err := Walk(context.Background(), r, "a.com")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Includes) != 2 {
		t.Errorf("includes = %v", s.Includes)
	}
	// A long non-repeating chain exhausts the lookup budget.
	chain := fakeTXT{}
	for i := 0; i < 15; i++ {
		chain[fmt.Sprintf("d%d.com", i)] = []string{fmt.Sprintf("v=spf1 include:d%d.com -all", i+1)}
	}
	chain["d15.com"] = []string{"v=spf1 -all"}
	if _, err := Walk(context.Background(), chain, "d0.com"); !errors.Is(err, ErrLoop) {
		t.Errorf("long chain err = %v, want ErrLoop", err)
	}
}

func TestWalkMissingInclude(t *testing.T) {
	// Includes pointing at domains without SPF are recorded but don't
	// abort the walk.
	r := fakeTXT{
		"x.com": {"v=spf1 include:gone.example ip4:10.1.0.0/16 -all"},
	}
	s, err := Walk(context.Background(), r, "x.com")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Includes) != 1 || len(s.Networks) != 1 {
		t.Errorf("senders = %+v", s)
	}
}

func TestWalkNoRecord(t *testing.T) {
	r := fakeTXT{"y.com": {"just text"}}
	if _, err := Walk(context.Background(), r, "y.com"); !errors.Is(err, ErrNoRecord) {
		t.Errorf("err = %v, want ErrNoRecord", err)
	}
	if _, err := Walk(context.Background(), r, "absent.com"); !errors.Is(err, ErrNoRecord) {
		t.Errorf("err = %v, want ErrNoRecord", err)
	}
}

func TestFailQualifierAuthorizesNothing(t *testing.T) {
	r := fakeTXT{"z.com": {"v=spf1 -ip4:10.0.0.0/8 -include:never.example ~all"}}
	s, err := Walk(context.Background(), r, "z.com")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Networks) != 0 || len(s.Includes) != 0 {
		t.Errorf("negative mechanisms leaked: %+v", s)
	}
}
