package dns

import (
	"context"
	"errors"
	"net"
	"net/netip"
	"sync/atomic"
	"testing"
	"time"

	"mxmap/internal/netsim"
)

// iterTestNet builds a three-level DNS hierarchy on the simulated
// fabric: a root server delegating two TLDs, TLD servers delegating
// registered domains, and authoritative servers for the leaf zones.
type iterTestNet struct {
	net   *netsim.Network
	roots []netip.AddrPort
	// queries counts datagrams/requests written to servers. With the
	// shared transport, sockets are dialed once and reused, so writes —
	// not dials — are the per-exchange signal.
	queries atomic.Int64
}

// countingConn counts queries written through a fabric connection.
type countingConn struct {
	net.Conn
	n *atomic.Int64
}

func (c countingConn) Write(p []byte) (int, error) {
	c.n.Add(1)
	return c.Conn.Write(p)
}

const (
	rootIP = "198.41.0.4"
	comIP  = "192.5.6.30"
	netIP  = "192.5.6.31"
	auth1  = "10.1.1.53" // example.com
	auth2  = "10.2.2.53" // other.net
)

func startAuthServer(t *testing.T, n *netsim.Network, ip string, catalog *Catalog) {
	t.Helper()
	srv, err := NewServer(ServerConfig{Catalog: catalog})
	if err != nil {
		t.Fatal(err)
	}
	pc, err := n.ListenPacket(netip.MustParseAddrPort(ip + ":53"))
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeUDP(pc)
	t.Cleanup(func() { srv.Close() })
}

func buildIterTestNet(t *testing.T) *iterTestNet {
	t.Helper()
	itn := &iterTestNet{net: netsim.New()}
	itn.roots = []netip.AddrPort{netip.MustParseAddrPort(rootIP + ":53")}

	addr := func(s string) netip.Addr { return netip.MustParseAddr(s) }

	// Root zone delegates com and net.
	root := NewZone(".")
	root.MustAdd(RR{Name: ".", Type: TypeSOA, TTL: 1, Data: SOAData{MName: "a.root.", RName: "root.root.", Serial: 1}})
	root.MustAdd(RR{Name: "com.", Type: TypeNS, TTL: 1, Data: NSData{Host: "ns1.com."}})
	root.MustAdd(RR{Name: "ns1.com.", Type: TypeA, TTL: 1, Data: AData{Addr: addr(comIP)}})
	root.MustAdd(RR{Name: "net.", Type: TypeNS, TTL: 1, Data: NSData{Host: "ns1.net."}})
	root.MustAdd(RR{Name: "ns1.net.", Type: TypeA, TTL: 1, Data: AData{Addr: addr(netIP)}})
	rootCat := NewCatalog()
	rootCat.AddZone(root)
	startAuthServer(t, itn.net, rootIP, rootCat)

	// com TLD delegates example.com (with glue).
	com := NewZone("com")
	com.MustAdd(RR{Name: "com.", Type: TypeSOA, TTL: 1, Data: SOAData{MName: "ns1.com.", RName: "h.com.", Serial: 1}})
	com.MustAdd(RR{Name: "example.com.", Type: TypeNS, TTL: 1, Data: NSData{Host: "ns1.example.com."}})
	com.MustAdd(RR{Name: "ns1.example.com.", Type: TypeA, TTL: 1, Data: AData{Addr: addr(auth1)}})
	comCat := NewCatalog()
	comCat.AddZone(com)
	startAuthServer(t, itn.net, comIP, comCat)

	// net TLD delegates other.net gluelessly: its NS host lives under
	// example.com, so the resolver must resolve it out of band.
	netz := NewZone("net")
	netz.MustAdd(RR{Name: "net.", Type: TypeSOA, TTL: 1, Data: SOAData{MName: "ns1.net.", RName: "h.net.", Serial: 1}})
	netz.MustAdd(RR{Name: "other.net.", Type: TypeNS, TTL: 1, Data: NSData{Host: "dns.example.com."}})
	netCat := NewCatalog()
	netCat.AddZone(netz)
	startAuthServer(t, itn.net, netIP, netCat)

	// Authoritative server for example.com.
	example := NewZone("example.com")
	example.MustAdd(RR{Name: "example.com.", Type: TypeSOA, TTL: 300, Data: SOAData{
		MName: "ns1.example.com.", RName: "h.example.com.", Serial: 1, Minimum: 300}})
	example.MustAdd(RR{Name: "example.com.", Type: TypeNS, TTL: 1, Data: NSData{Host: "ns1.example.com."}})
	example.MustAdd(RR{Name: "example.com.", Type: TypeMX, TTL: 1, Data: MXData{Preference: 10, Exchange: "mx1.example.com."}})
	example.MustAdd(RR{Name: "mx1.example.com.", Type: TypeA, TTL: 1, Data: AData{Addr: addr("203.0.113.25")}})
	example.MustAdd(RR{Name: "dns.example.com.", Type: TypeA, TTL: 1, Data: AData{Addr: addr(auth2)}})
	example.MustAdd(RR{Name: "www.example.com.", Type: TypeCNAME, TTL: 1, Data: CNAMEData{Target: "web.other.net."}})
	ex1 := NewCatalog()
	ex1.AddZone(example)
	startAuthServer(t, itn.net, auth1, ex1)

	// Authoritative server for other.net.
	other := NewZone("other.net")
	other.MustAdd(RR{Name: "other.net.", Type: TypeSOA, TTL: 1, Data: SOAData{MName: "dns.example.com.", RName: "h.other.net.", Serial: 1}})
	other.MustAdd(RR{Name: "web.other.net.", Type: TypeA, TTL: 1, Data: AData{Addr: addr("203.0.113.80")}})
	ex2 := NewCatalog()
	ex2.AddZone(other)
	startAuthServer(t, itn.net, auth2, ex2)

	return itn
}

func (itn *iterTestNet) resolver() *IterativeResolver {
	return &IterativeResolver{
		Roots:   itn.roots,
		Timeout: 2 * time.Second,
		DialContext: func(ctx context.Context, network, address string) (net.Conn, error) {
			ap, err := netip.ParseAddrPort(address)
			if err != nil {
				return nil, err
			}
			var conn net.Conn
			if network == "udp" {
				conn, err = itn.net.DialUDP(ap)
			} else {
				conn, err = itn.net.Dial(ctx, ap)
			}
			if err != nil {
				return nil, err
			}
			return countingConn{Conn: conn, n: &itn.queries}, nil
		},
	}
}

func TestIterativeLookupMX(t *testing.T) {
	itn := buildIterTestNet(t)
	r := itn.resolver()
	mx, err := r.LookupMX(context.Background(), "example.com")
	if err != nil {
		t.Fatal(err)
	}
	if len(mx) != 1 || mx[0].Exchange != "mx1.example.com" {
		t.Errorf("MX = %+v", mx)
	}
}

func TestIterativeLookupA(t *testing.T) {
	itn := buildIterTestNet(t)
	r := itn.resolver()
	addrs, err := r.LookupA(context.Background(), "mx1.example.com")
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 1 || addrs[0].String() != "203.0.113.25" {
		t.Errorf("A = %v", addrs)
	}
}

func TestIterativeCrossZoneCNAME(t *testing.T) {
	itn := buildIterTestNet(t)
	r := itn.resolver()
	// www.example.com -> CNAME web.other.net, which lives under a
	// gluelessly-delegated zone on another server.
	addrs, err := r.LookupA(context.Background(), "www.example.com")
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 1 || addrs[0].String() != "203.0.113.80" {
		t.Errorf("A through cross-zone CNAME = %v", addrs)
	}
}

func TestIterativeNXDomain(t *testing.T) {
	itn := buildIterTestNet(t)
	r := itn.resolver()
	_, err := r.LookupA(context.Background(), "missing.example.com")
	if !errors.Is(err, ErrNXDomain) {
		t.Errorf("err = %v, want ErrNXDomain", err)
	}
	// A missing TLD is NXDOMAIN at the root.
	_, err = r.LookupA(context.Background(), "foo.nosuchtld")
	if !errors.Is(err, ErrNXDomain) {
		t.Errorf("missing TLD err = %v, want ErrNXDomain", err)
	}
}

func TestIterativeDelegationCache(t *testing.T) {
	itn := buildIterTestNet(t)
	r := itn.resolver()
	ctx := context.Background()
	if _, err := r.LookupA(ctx, "mx1.example.com"); err != nil {
		t.Fatal(err)
	}
	cold := itn.queries.Load()
	if _, err := r.LookupA(ctx, "mx1.example.com"); err != nil {
		t.Fatal(err)
	}
	warm := itn.queries.Load() - cold
	if warm >= cold {
		t.Errorf("cache ineffective: cold=%d warm=%d", cold, warm)
	}
	if warm != 1 {
		t.Errorf("warm lookup used %d exchanges, want 1 (direct to authoritative)", warm)
	}
	r.InvalidateCache()
	if _, err := r.LookupA(ctx, "mx1.example.com"); err != nil {
		t.Fatal(err)
	}
	if again := itn.queries.Load() - cold - warm; again != cold {
		t.Errorf("after invalidate: %d exchanges, want %d", again, cold)
	}
}

func TestIterativeNoRoots(t *testing.T) {
	r := &IterativeResolver{}
	if _, err := r.LookupA(context.Background(), "example.com"); !errors.Is(err, ErrNoRoots) {
		t.Errorf("err = %v, want ErrNoRoots", err)
	}
}

func TestIterativeLameDelegation(t *testing.T) {
	itn := buildIterTestNet(t)
	// Point the root's com delegation at an address with no server.
	r := itn.resolver()
	r.cacheDelegation("com.", []netip.AddrPort{netip.MustParseAddrPort("10.99.99.99:53")})
	r.Timeout = 100 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if _, err := r.LookupA(ctx, "mx1.example.com"); err == nil {
		t.Error("lame delegation lookup succeeded")
	}
}

func TestZoneDelegationLookup(t *testing.T) {
	z := NewZone("com")
	z.MustAdd(RR{Name: "com.", Type: TypeSOA, TTL: 1, Data: SOAData{MName: "ns1.com.", RName: "h.com.", Serial: 1}})
	z.MustAdd(RR{Name: "child.com.", Type: TypeNS, TTL: 1, Data: NSData{Host: "ns1.child.com."}})
	z.MustAdd(RR{Name: "ns1.child.com.", Type: TypeA, TTL: 1, Data: AData{Addr: mustAddr("10.0.0.1")}})

	for _, name := range []string{"child.com", "deep.child.com", "ns1.child.com"} {
		res := z.Lookup(name, TypeA)
		if !res.Delegated {
			t.Errorf("Lookup(%s) not delegated", name)
			continue
		}
		if len(res.Authority) != 1 || res.Authority[0].Type != TypeNS {
			t.Errorf("Lookup(%s) authority = %+v", name, res.Authority)
		}
		if len(res.Additional) != 1 || res.Additional[0].Data.(AData).Addr.String() != "10.0.0.1" {
			t.Errorf("Lookup(%s) glue = %+v", name, res.Additional)
		}
	}
	// The apex itself is not a delegation.
	if res := z.Lookup("com", TypeSOA); res.Delegated {
		t.Error("apex lookup delegated")
	}
	// Unrelated names are normal authoritative answers.
	if res := z.Lookup("plain.com", TypeA); res.Delegated || res.RCode != RCodeNXDomain {
		t.Errorf("plain lookup = %+v", res)
	}
}

func TestCatalogReferralResponse(t *testing.T) {
	z := NewZone("com")
	z.MustAdd(RR{Name: "com.", Type: TypeSOA, TTL: 1, Data: SOAData{MName: "ns1.com.", RName: "h.com.", Serial: 1}})
	z.MustAdd(RR{Name: "child.com.", Type: TypeNS, TTL: 1, Data: NSData{Host: "ns1.child.com."}})
	z.MustAdd(RR{Name: "ns1.child.com.", Type: TypeA, TTL: 1, Data: AData{Addr: mustAddr("10.0.0.1")}})
	c := NewCatalog()
	c.AddZone(z)

	m := c.Resolve(Question{Name: "www.child.com.", Type: TypeA, Class: ClassIN})
	if m.Header.Authoritative {
		t.Error("referral marked authoritative")
	}
	if len(m.Answers) != 0 || len(m.Authority) != 1 || len(m.Additional) != 1 {
		t.Errorf("referral sections: %+v", m)
	}

	// When the catalog also holds the child zone, it answers directly.
	child := NewZone("child.com")
	child.MustAdd(RR{Name: "www.child.com.", Type: TypeA, TTL: 1, Data: AData{Addr: mustAddr("10.0.0.2")}})
	c.AddZone(child)
	m = c.Resolve(Question{Name: "www.child.com.", Type: TypeA, Class: ClassIN})
	if !m.Header.Authoritative || len(m.Answers) != 1 {
		t.Errorf("child-zone answer: %+v", m)
	}
}

func BenchmarkIterativeResolveWarm(b *testing.B) {
	itn := &iterTestNet{net: netsim.New()}
	itn.roots = []netip.AddrPort{netip.MustParseAddrPort(rootIP + ":53")}
	// Minimal single-zone setup served as root+authoritative.
	z := NewZone(".")
	z.MustAdd(RR{Name: "example.com.", Type: TypeMX, TTL: 1, Data: MXData{Preference: 10, Exchange: "mx.example.com."}})
	cat := NewCatalog()
	cat.AddZone(z)
	srv, err := NewServer(ServerConfig{Catalog: cat})
	if err != nil {
		b.Fatal(err)
	}
	pc, err := itn.net.ListenPacket(netip.MustParseAddrPort(rootIP + ":53"))
	if err != nil {
		b.Fatal(err)
	}
	go srv.ServeUDP(pc)
	defer srv.Close()
	r := itn.resolver()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.LookupMX(ctx, "example.com"); err != nil {
			b.Fatal(err)
		}
	}
}
