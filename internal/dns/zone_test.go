package dns

import (
	"strings"
	"testing"
)

func testZone(t *testing.T) *Zone {
	t.Helper()
	z := NewZone("example.com")
	z.MustAdd(RR{Name: "example.com.", Type: TypeSOA, TTL: 300, Data: SOAData{
		MName: "ns1.example.com.", RName: "hostmaster.example.com.",
		Serial: 1, Refresh: 7200, Retry: 900, Expire: 1209600, Minimum: 300}})
	z.MustAdd(RR{Name: "example.com.", Type: TypeNS, TTL: 300, Data: NSData{Host: "ns1.example.com."}})
	z.MustAdd(RR{Name: "example.com.", Type: TypeMX, TTL: 300, Data: MXData{Preference: 10, Exchange: "mx1.example.com."}})
	z.MustAdd(RR{Name: "example.com.", Type: TypeMX, TTL: 300, Data: MXData{Preference: 20, Exchange: "mx2.example.com."}})
	z.MustAdd(RR{Name: "mx1.example.com.", Type: TypeA, TTL: 300, Data: AData{Addr: mustAddr("192.0.2.10")}})
	z.MustAdd(RR{Name: "mx2.example.com.", Type: TypeA, TTL: 300, Data: AData{Addr: mustAddr("192.0.2.11")}})
	z.MustAdd(RR{Name: "www.example.com.", Type: TypeCNAME, TTL: 300, Data: CNAMEData{Target: "web.example.com."}})
	z.MustAdd(RR{Name: "web.example.com.", Type: TypeA, TTL: 300, Data: AData{Addr: mustAddr("192.0.2.20")}})
	z.MustAdd(RR{Name: "ext.example.com.", Type: TypeCNAME, TTL: 300, Data: CNAMEData{Target: "host.other.net."}})
	z.MustAdd(RR{Name: "*.wild.example.com.", Type: TypeA, TTL: 300, Data: AData{Addr: mustAddr("192.0.2.30")}})
	z.MustAdd(RR{Name: "txtonly.example.com.", Type: TypeTXT, TTL: 300, Data: TXTData{Strings: []string{"v=spf1 -all"}}})
	return z
}

func TestZoneLookupDirect(t *testing.T) {
	z := testZone(t)
	res := z.Lookup("example.com", TypeMX)
	if res.RCode != RCodeSuccess || len(res.Answers) != 2 {
		t.Fatalf("MX lookup: rcode=%v answers=%d", res.RCode, len(res.Answers))
	}
}

func TestZoneLookupNXDomain(t *testing.T) {
	z := testZone(t)
	res := z.Lookup("nope.example.com", TypeA)
	if res.RCode != RCodeNXDomain {
		t.Errorf("rcode = %v, want NXDOMAIN", res.RCode)
	}
	if len(res.Authority) != 1 || res.Authority[0].Type != TypeSOA {
		t.Errorf("authority = %+v, want SOA", res.Authority)
	}
}

func TestZoneLookupNoData(t *testing.T) {
	z := testZone(t)
	res := z.Lookup("txtonly.example.com", TypeA)
	if res.RCode != RCodeSuccess || len(res.Answers) != 0 {
		t.Errorf("NODATA lookup: rcode=%v answers=%d", res.RCode, len(res.Answers))
	}
	if len(res.Authority) != 1 {
		t.Errorf("NODATA should carry SOA, got %+v", res.Authority)
	}
}

func TestZoneCNAMEChase(t *testing.T) {
	z := testZone(t)
	res := z.Lookup("www.example.com", TypeA)
	if len(res.Answers) != 2 {
		t.Fatalf("answers = %+v, want CNAME + A", res.Answers)
	}
	if res.Answers[0].Type != TypeCNAME || res.Answers[1].Type != TypeA {
		t.Errorf("answer types = %v, %v", res.Answers[0].Type, res.Answers[1].Type)
	}
	if a := res.Answers[1].Data.(AData).Addr.String(); a != "192.0.2.20" {
		t.Errorf("final A = %s", a)
	}
}

func TestZoneCNAMEOutOfZone(t *testing.T) {
	z := testZone(t)
	res := z.Lookup("ext.example.com", TypeA)
	if len(res.Answers) != 1 || res.Answers[0].Type != TypeCNAME {
		t.Fatalf("answers = %+v, want lone CNAME", res.Answers)
	}
}

func TestZoneCNAMEQueryType(t *testing.T) {
	z := testZone(t)
	res := z.Lookup("www.example.com", TypeCNAME)
	if len(res.Answers) != 1 || res.Answers[0].Type != TypeCNAME {
		t.Fatalf("explicit CNAME query: %+v", res.Answers)
	}
}

func TestZoneWildcard(t *testing.T) {
	z := testZone(t)
	res := z.Lookup("anything.wild.example.com", TypeA)
	if len(res.Answers) != 1 {
		t.Fatalf("wildcard miss: %+v", res)
	}
	if got := res.Answers[0].Name; got != "anything.wild.example.com." {
		t.Errorf("wildcard answer owner = %q, want query name", got)
	}
	// The wildcard owner itself is not matched by the wildcard.
	res = z.Lookup("wild.example.com", TypeA)
	if res.RCode != RCodeNXDomain {
		t.Errorf("wildcard apex rcode = %v, want NXDOMAIN", res.RCode)
	}
}

func TestZoneCNAMELoopBounded(t *testing.T) {
	z := NewZone("loop.test")
	z.MustAdd(RR{Name: "a.loop.test.", Type: TypeCNAME, TTL: 1, Data: CNAMEData{Target: "b.loop.test."}})
	z.MustAdd(RR{Name: "b.loop.test.", Type: TypeCNAME, TTL: 1, Data: CNAMEData{Target: "a.loop.test."}})
	done := make(chan struct{})
	go func() {
		z.Lookup("a.loop.test", TypeA)
		close(done)
	}()
	select {
	case <-done:
	case <-timeoutC(t):
		t.Fatal("CNAME loop lookup did not terminate")
	}
}

func timeoutC(t *testing.T) <-chan struct{} {
	t.Helper()
	c := make(chan struct{})
	go func() {
		// Generous bound; the loop check is purely CPU.
		for i := 0; i < 1e8; i++ {
			_ = i
		}
		close(c)
	}()
	return c
}

func TestZoneRejects(t *testing.T) {
	z := NewZone("example.com")
	// Out of zone.
	if err := z.Add(RR{Name: "other.net.", Type: TypeA, Data: AData{Addr: mustAddr("10.0.0.1")}}); err == nil {
		t.Error("Add accepted out-of-zone record")
	}
	// Mismatched data.
	if err := z.Add(RR{Name: "a.example.com.", Type: TypeMX, Data: AData{Addr: mustAddr("10.0.0.1")}}); err == nil {
		t.Error("Add accepted mismatched data")
	}
	// CNAME conflicts.
	z.MustAdd(RR{Name: "c.example.com.", Type: TypeA, Data: AData{Addr: mustAddr("10.0.0.1")}})
	if err := z.Add(RR{Name: "c.example.com.", Type: TypeCNAME, Data: CNAMEData{Target: "x.example.com."}}); err == nil {
		t.Error("Add accepted CNAME next to A")
	}
	z.MustAdd(RR{Name: "d.example.com.", Type: TypeCNAME, Data: CNAMEData{Target: "x.example.com."}})
	if err := z.Add(RR{Name: "d.example.com.", Type: TypeA, Data: AData{Addr: mustAddr("10.0.0.1")}}); err == nil {
		t.Error("Add accepted A next to CNAME")
	}
}

func TestZoneRemove(t *testing.T) {
	z := testZone(t)
	z.Remove("example.com", TypeMX)
	if res := z.Lookup("example.com", TypeMX); len(res.Answers) != 0 {
		t.Errorf("MX records remain after Remove: %+v", res.Answers)
	}
	// Name still exists (NS/SOA), so NODATA not NXDOMAIN.
	if res := z.Lookup("example.com", TypeMX); res.RCode != RCodeSuccess {
		t.Errorf("rcode after remove = %v", res.RCode)
	}
	z.Remove("mx1.example.com", TypeANY)
	if res := z.Lookup("mx1.example.com", TypeA); res.RCode != RCodeNXDomain {
		t.Errorf("rcode after remove ANY = %v", res.RCode)
	}
}

func TestZoneWriteParseRoundTrip(t *testing.T) {
	z := testZone(t)
	var sb strings.Builder
	if _, err := z.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	z2, err := ParseZone(strings.NewReader(sb.String()), "")
	if err != nil {
		t.Fatalf("ParseZone: %v\nzone text:\n%s", err, sb.String())
	}
	if z2.Origin != z.Origin {
		t.Errorf("origin = %q, want %q", z2.Origin, z.Origin)
	}
	if z2.Len() != z.Len() {
		t.Errorf("record count = %d, want %d", z2.Len(), z.Len())
	}
	r1, r2 := z.Records(), z2.Records()
	for i := range r1 {
		if r1[i].String() != r2[i].String() {
			t.Errorf("record %d: %q != %q", i, r1[i], r2[i])
		}
	}
}

func TestParseZoneErrors(t *testing.T) {
	bad := []string{
		"$ORIGIN\n",
		"example.com. 300 IN MX 10\n",               // missing exchange
		"example.com. 300 IN MX notanum mx.x.\n",    // bad preference
		"example.com. 300 XX A 10.0.0.1\n",          // bad class
		"example.com. 300 IN WHAT 10.0.0.1\n",       // bad type
		"example.com. x IN A 10.0.0.1\n",            // bad ttl
		"example.com. 300 IN A banana\n",            // bad address
		"example.com. 300 IN TXT unquoted\n",        // TXT must be quoted
		"a. 1 IN A 10.0.0.1\n$ORIGIN b.\n",          // origin after records
		"example.com. 300 IN SOA ns. rn. 1 2 3 4\n", // SOA too short
	}
	for _, s := range bad {
		if _, err := ParseZone(strings.NewReader(s), "."); err == nil {
			t.Errorf("ParseZone(%q) succeeded, want error", s)
		}
	}
}

func TestCatalogFindZone(t *testing.T) {
	c := NewCatalog()
	com := NewZone("com")
	example := NewZone("example.com")
	c.AddZone(com)
	c.AddZone(example)
	if z := c.FindZone("a.example.com"); z != example {
		t.Error("FindZone did not pick most specific zone")
	}
	if z := c.FindZone("other.com"); z != com {
		t.Error("FindZone did not fall back to parent zone")
	}
	if z := c.FindZone("other.net"); z != nil {
		t.Error("FindZone returned zone for non-authoritative name")
	}
}

func TestCatalogResolveCrossZoneCNAME(t *testing.T) {
	c := NewCatalog()
	z1 := NewZone("example.com")
	z1.MustAdd(RR{Name: "mail.example.com.", Type: TypeCNAME, TTL: 1, Data: CNAMEData{Target: "mx.provider.net."}})
	z2 := NewZone("provider.net")
	z2.MustAdd(RR{Name: "mx.provider.net.", Type: TypeA, TTL: 1, Data: AData{Addr: mustAddr("198.51.100.5")}})
	c.AddZone(z1)
	c.AddZone(z2)
	m := c.Resolve(Question{Name: "mail.example.com.", Type: TypeA, Class: ClassIN})
	if len(m.Answers) != 2 {
		t.Fatalf("answers = %+v", m.Answers)
	}
	if m.Answers[1].Data.(AData).Addr.String() != "198.51.100.5" {
		t.Errorf("cross-zone chase failed: %+v", m.Answers)
	}
}

func TestCatalogResolveRefused(t *testing.T) {
	c := NewCatalog()
	m := c.Resolve(Question{Name: "x.unknown.", Type: TypeA, Class: ClassIN})
	if m.Header.RCode != RCodeRefused {
		t.Errorf("rcode = %v, want REFUSED", m.Header.RCode)
	}
}

func BenchmarkZoneLookup(b *testing.B) {
	z := NewZone("bench.com")
	for i := 0; i < 1000; i++ {
		name := "host" + string(rune('a'+i%26)) + ".bench.com."
		z.Add(RR{Name: name, Type: TypeA, TTL: 1, Data: AData{Addr: mustAddr("10.0.0.1")}})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		z.Lookup("hostm.bench.com", TypeA)
	}
}
