package dns

import "sync/atomic"

// ServerStats is a point-in-time snapshot of a Server's serving
// counters. Chaos tests assert these exactly against injected load, and
// operators read them to see whether overload protection is engaging.
//
// Accounting invariants (steady state, after in-flight work settles):
//
//	UDPQueries == UDPResponses + UDPDropped + UDPWriteErrors + RRLDrops
//	TCPQueries == TCPResponses + TCPDropped + TCPWriteErrors
//
// RRL slips are counted in both RRLSlips and UDPResponses (a slipped
// reply is still a datagram sent).
type ServerStats struct {
	// UDPQueries counts datagrams received by UDP workers.
	UDPQueries uint64
	// UDPResponses counts datagrams written, including slipped TC
	// replies.
	UDPResponses uint64
	// UDPDropped counts datagrams that produced no response at all
	// (unparseable beyond salvage).
	UDPDropped uint64
	// UDPWriteErrors counts failed response writes.
	UDPWriteErrors uint64
	// UDPReadRetries counts transient ReadFrom errors survived by
	// worker backoff instead of worker death.
	UDPReadRetries uint64

	// RRLDrops counts responses suppressed by response-rate limiting.
	RRLDrops uint64
	// RRLSlips counts rate-limited responses sent as truncated TC=1
	// replies instead of dropped.
	RRLSlips uint64

	// TCPAccepted counts connections admitted below MaxTCPConns.
	TCPAccepted uint64
	// TCPRejected counts connections shed at the admission cap.
	TCPRejected uint64
	// TCPQueries counts fully received TCP query frames.
	TCPQueries uint64
	// TCPResponses counts TCP responses written.
	TCPResponses uint64
	// TCPDropped counts TCP frames that produced no response.
	TCPDropped uint64
	// TCPWriteErrors counts failed TCP response writes.
	TCPWriteErrors uint64
	// TCPBudgetCloses counts connections closed for exhausting the
	// per-connection query budget.
	TCPBudgetCloses uint64
	// AcceptRetries counts transient Accept errors survived by backoff.
	AcceptRetries uint64

	// Drains counts graceful Shutdown calls that completed within their
	// deadline; DrainTimeouts counts those that fell back to hard close.
	Drains        uint64
	DrainTimeouts uint64
}

// Merge accumulates another server's counters into st, for aggregating
// a fleet of authorities into one view.
func (st *ServerStats) Merge(o ServerStats) {
	st.UDPQueries += o.UDPQueries
	st.UDPResponses += o.UDPResponses
	st.UDPDropped += o.UDPDropped
	st.UDPWriteErrors += o.UDPWriteErrors
	st.UDPReadRetries += o.UDPReadRetries
	st.RRLDrops += o.RRLDrops
	st.RRLSlips += o.RRLSlips
	st.TCPAccepted += o.TCPAccepted
	st.TCPRejected += o.TCPRejected
	st.TCPQueries += o.TCPQueries
	st.TCPResponses += o.TCPResponses
	st.TCPDropped += o.TCPDropped
	st.TCPWriteErrors += o.TCPWriteErrors
	st.TCPBudgetCloses += o.TCPBudgetCloses
	st.AcceptRetries += o.AcceptRetries
	st.Drains += o.Drains
	st.DrainTimeouts += o.DrainTimeouts
}

// Lost reports queries that were fully received but never answered,
// shed, or dropped-by-policy — the number a graceful drain must keep at
// zero.
func (st ServerStats) Lost() uint64 {
	lost := int64(st.UDPQueries) - int64(st.UDPResponses+st.UDPDropped+st.UDPWriteErrors+st.RRLDrops)
	lost += int64(st.TCPQueries) - int64(st.TCPResponses+st.TCPDropped+st.TCPWriteErrors)
	if lost < 0 {
		return 0
	}
	return uint64(lost)
}

// ResolverStats is a point-in-time snapshot of an IterativeResolver's
// caching and coalescing counters. Cache-tier tests assert these
// exactly against injected query sequences.
//
// Accounting invariants (steady state, Cache attached):
//
//	Queries == CacheHits + CacheMisses
//	WireQueries counts individual server exchange attempts, so with
//	healthy upstreams it equals the number of non-coalesced misses
//	times the referral-chain length.
type ResolverStats struct {
	// Queries counts Query calls (every cache consultation).
	Queries uint64
	// CacheHits counts queries answered from a fresh cache entry.
	CacheHits uint64
	// CacheMisses counts queries that had to go to the wire.
	CacheMisses uint64
	// StaleServed counts queries answered from an expired entry under
	// RFC 8767 after the wire attempt failed.
	StaleServed uint64
	// Coalesced counts queries that attached to an identical in-flight
	// question instead of launching their own iteration.
	Coalesced uint64
	// WireQueries counts individual exchange attempts against servers.
	WireQueries uint64
	// Prefetches counts successful near-expiry background refreshes;
	// PrefetchFailures counts refresh attempts that errored.
	Prefetches       uint64
	PrefetchFailures uint64
}

// resolverCounters is the live atomic counterpart of ResolverStats.
type resolverCounters struct {
	queries, cacheHits, cacheMisses, staleServed atomic.Uint64
	coalesced, wireQueries                       atomic.Uint64
	prefetches, prefetchFailures                 atomic.Uint64
}

// snapshot captures the counters into a ResolverStats.
func (c *resolverCounters) snapshot() ResolverStats {
	return ResolverStats{
		Queries:          c.queries.Load(),
		CacheHits:        c.cacheHits.Load(),
		CacheMisses:      c.cacheMisses.Load(),
		StaleServed:      c.staleServed.Load(),
		Coalesced:        c.coalesced.Load(),
		WireQueries:      c.wireQueries.Load(),
		Prefetches:       c.prefetches.Load(),
		PrefetchFailures: c.prefetchFailures.Load(),
	}
}

// serverCounters is the live atomic counterpart of ServerStats.
type serverCounters struct {
	udpQueries, udpResponses, udpDropped, udpWriteErrors, udpReadRetries atomic.Uint64
	rrlDrops, rrlSlips                                                   atomic.Uint64
	tcpAccepted, tcpRejected                                             atomic.Uint64
	tcpQueries, tcpResponses, tcpDropped, tcpWriteErrors                 atomic.Uint64
	tcpBudgetCloses, acceptRetries                                       atomic.Uint64
	drains, drainTimeouts                                                atomic.Uint64
}

// snapshot captures the counters into a ServerStats.
func (c *serverCounters) snapshot() ServerStats {
	return ServerStats{
		UDPQueries:      c.udpQueries.Load(),
		UDPResponses:    c.udpResponses.Load(),
		UDPDropped:      c.udpDropped.Load(),
		UDPWriteErrors:  c.udpWriteErrors.Load(),
		UDPReadRetries:  c.udpReadRetries.Load(),
		RRLDrops:        c.rrlDrops.Load(),
		RRLSlips:        c.rrlSlips.Load(),
		TCPAccepted:     c.tcpAccepted.Load(),
		TCPRejected:     c.tcpRejected.Load(),
		TCPQueries:      c.tcpQueries.Load(),
		TCPResponses:    c.tcpResponses.Load(),
		TCPDropped:      c.tcpDropped.Load(),
		TCPWriteErrors:  c.tcpWriteErrors.Load(),
		TCPBudgetCloses: c.tcpBudgetCloses.Load(),
		AcceptRetries:   c.acceptRetries.Load(),
		Drains:          c.drains.Load(),
		DrainTimeouts:   c.drainTimeouts.Load(),
	}
}
