package dns

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// bigTestCatalog returns the standard test catalog plus a zone whose MX
// set exceeds a 512-byte UDP response, forcing truncation + TCP fallback.
func bigTestCatalog(t *testing.T) *Catalog {
	t.Helper()
	cat := testCatalog(t)
	z := NewZone("big.test")
	z.MustAdd(RR{Name: "big.test.", Type: TypeSOA, TTL: 300, Data: SOAData{
		MName: "ns1.big.test.", RName: "h.big.test.", Serial: 1}})
	for i := 0; i < 40; i++ {
		z.MustAdd(RR{Name: "big.test.", Type: TypeMX, TTL: 300,
			Data: MXData{Preference: uint16(i), Exchange: fmt.Sprintf("mx%02d.big.test.", i)}})
	}
	cat.AddZone(z)
	return cat
}

// TestTransportConcurrentStress hammers one shared transport from many
// goroutines with a mix of NOERROR, NXDOMAIN and truncated (TCP
// fallback) queries. Run under -race this exercises the demux, ID
// free-list and in-flight accounting.
func TestTransportConcurrentStress(t *testing.T) {
	addr := startTestServer(t, bigTestCatalog(t))
	tr := NewTransport(addr)
	defer tr.Close()

	const goroutines = 16
	const iters = 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl := &Client{Server: addr, Timeout: 5 * time.Second, Retries: 2, Transport: tr}
			r := ClientResolver{Client: cl}
			ctx := context.Background()
			for i := 0; i < iters; i++ {
				switch (g + i) % 3 {
				case 0:
					mx, err := r.LookupMX(ctx, "example.com")
					if err != nil {
						errs <- fmt.Errorf("MX example.com: %w", err)
						return
					}
					if len(mx) != 2 {
						errs <- fmt.Errorf("MX example.com: got %d records", len(mx))
						return
					}
				case 1:
					_, err := r.LookupA(ctx, "missing.example.com")
					if !errors.Is(err, ErrNXDomain) {
						errs <- fmt.Errorf("missing.example.com: err = %v, want NXDOMAIN", err)
						return
					}
				case 2:
					mx, err := r.LookupMX(ctx, "big.test")
					if err != nil {
						errs <- fmt.Errorf("MX big.test: %w", err)
						return
					}
					if len(mx) != 40 {
						errs <- fmt.Errorf("MX big.test: got %d records, want 40 (truncation fallback)", len(mx))
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// strayConn injects one well-formed datagram with a mismatched ID before
// every real read, simulating stray traffic on a shared socket.
type strayConn struct {
	net.Conn
	mu     sync.Mutex
	lastID uint16
	sent   bool
}

func (c *strayConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	if len(p) >= 2 {
		c.lastID = uint16(p[0])<<8 | uint16(p[1])
		c.sent = false
	}
	c.mu.Unlock()
	return c.Conn.Write(p)
}

func (c *strayConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	if !c.sent {
		c.sent = true
		id := c.lastID ^ 0xFFFF
		c.mu.Unlock()
		stray := &Message{
			Header:    Header{ID: id, Response: true},
			Questions: []Question{{Name: "stray.invalid.", Type: TypeA, Class: ClassIN}},
		}
		b, err := stray.Pack()
		if err != nil {
			return 0, err
		}
		return copy(p, b), nil
	}
	c.mu.Unlock()
	return c.Conn.Read(p)
}

func strayDial(dial func(ctx context.Context, network, address string) (net.Conn, error)) func(ctx context.Context, network, address string) (net.Conn, error) {
	return func(ctx context.Context, network, address string) (net.Conn, error) {
		conn, err := dial(ctx, network, address)
		if err != nil || network != "udp" {
			return conn, err
		}
		return &strayConn{Conn: conn}, nil
	}
}

func netDial(ctx context.Context, network, address string) (net.Conn, error) {
	var d net.Dialer
	return d.DialContext(ctx, network, address)
}

// TestClientToleratesStrayDatagrams verifies the dial-per-query client
// keeps reading past a mismatched-ID datagram instead of burning the
// attempt (it used to return ErrIDMismatch).
func TestClientToleratesStrayDatagrams(t *testing.T) {
	addr := startTestServer(t, testCatalog(t))
	cl := &Client{
		Server:      addr,
		Timeout:     2 * time.Second,
		Retries:     0, // a single attempt must survive the stray datagram
		DialContext: strayDial(netDial),
	}
	mx, err := ClientResolver{Client: cl}.LookupMX(context.Background(), "example.com")
	if err != nil {
		t.Fatalf("exchange failed despite valid response after stray: %v", err)
	}
	if len(mx) != 2 {
		t.Errorf("MX = %+v", mx)
	}
}

// TestTransportToleratesStrayDatagrams does the same for the multiplexed
// transport's read loop.
func TestTransportToleratesStrayDatagrams(t *testing.T) {
	addr := startTestServer(t, testCatalog(t))
	tr := &Transport{Server: addr, DialContext: strayDial(netDial)}
	defer tr.Close()
	cl := &Client{Server: addr, Timeout: 2 * time.Second, Retries: 0, Transport: tr}
	for i := 0; i < 5; i++ {
		mx, err := ClientResolver{Client: cl}.LookupMX(context.Background(), "example.com")
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if len(mx) != 2 {
			t.Errorf("iteration %d: MX = %+v", i, mx)
		}
	}
}

func TestTransportClose(t *testing.T) {
	addr := startTestServer(t, testCatalog(t))
	tr := NewTransport(addr)
	cl := &Client{Server: addr, Timeout: 2 * time.Second, Transport: tr}
	if _, err := (ClientResolver{Client: cl}).LookupMX(context.Background(), "example.com"); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	_, err := tr.RoundTrip(context.Background(), []byte{0, 0, 1, 2}, Question{}, time.Second)
	if !errors.Is(err, ErrTransportClosed) {
		t.Errorf("RoundTrip after Close: err = %v, want ErrTransportClosed", err)
	}
}

// TestClientRetryBackoff checks that failed UDP attempts are spaced by
// the jittered exponential backoff rather than retried back-to-back.
func TestClientRetryBackoff(t *testing.T) {
	// A listener that never answers: every attempt times out.
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	cl := &Client{
		Server:       pc.LocalAddr().String(),
		Timeout:      50 * time.Millisecond,
		Retries:      2,
		RetryBackoff: 40 * time.Millisecond,
	}
	start := time.Now()
	_, err = cl.Exchange(context.Background(), "example.com", TypeA)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("exchange against mute server succeeded")
	}
	// Three timeouts (3×50ms) plus minimum backoffs (40/2 + 80/2 = 60ms).
	const wantMin = 200 * time.Millisecond
	if elapsed < wantMin {
		t.Errorf("3 attempts finished in %v; backoff not applied (want >= %v)", elapsed, wantMin)
	}
}

func TestRetryDelayBounds(t *testing.T) {
	cl := &Client{RetryBackoff: 100 * time.Millisecond}
	for attempt := 1; attempt <= 3; attempt++ {
		base := cl.RetryBackoff << (attempt - 1)
		for i := 0; i < 50; i++ {
			d := cl.retryDelay(attempt)
			if d < base/2 || d > base {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, base/2, base)
			}
		}
	}
	// Deep attempts cap at 2s.
	cl2 := &Client{RetryBackoff: time.Second}
	if d := cl2.retryDelay(10); d > 2*time.Second {
		t.Errorf("capped delay = %v, want <= 2s", d)
	}
}

// TestClientBackoffRespectsContext ensures cancellation interrupts the
// backoff sleep promptly.
func TestClientBackoffRespectsContext(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	cl := &Client{
		Server:       pc.LocalAddr().String(),
		Timeout:      50 * time.Millisecond,
		Retries:      5,
		RetryBackoff: 10 * time.Second,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = cl.Exchange(ctx, "example.com", TypeA)
	if err == nil {
		t.Fatal("exchange succeeded against mute server")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("cancelled exchange took %v; backoff ignored the context", elapsed)
	}
}
