package dns

import (
	"strings"
	"testing"
)

func TestCanonicalName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Example.COM", "example.com."},
		{"example.com.", "example.com."},
		{"", "."},
		{".", "."},
		{"  a.b  ", "a.b."},
	}
	for _, c := range cases {
		if got := CanonicalName(c.in); got != c.want {
			t.Errorf("CanonicalName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTrimmedName(t *testing.T) {
	if got := TrimmedName("Foo.Bar."); got != "foo.bar" {
		t.Errorf("TrimmedName = %q", got)
	}
	if got := TrimmedName("."); got != "" {
		t.Errorf("TrimmedName(.) = %q, want empty", got)
	}
}

func TestCheckName(t *testing.T) {
	valid := []string{
		"example.com", "a.b.c.d.e", "xn--dmin-moa0i.example", "_dmarc.example.com",
		"mx-1.example.com", "123.example.com", ".", "", "*.example.com",
		strings.Repeat("a", 63) + ".com",
	}
	for _, n := range valid {
		if err := CheckName(n); err != nil {
			t.Errorf("CheckName(%q) = %v, want nil", n, err)
		}
	}
	invalid := []string{
		"-bad.example.com", "bad-.example.com", "ba*d.example.com",
		"exa mple.com", "a..b", strings.Repeat("a", 64) + ".com",
		strings.Repeat("a.", 140) + "com", "under_score.example.com",
	}
	for _, n := range invalid {
		if err := CheckName(n); err == nil {
			t.Errorf("CheckName(%q) = nil, want error", n)
		}
	}
}

func TestIsSubdomain(t *testing.T) {
	cases := []struct {
		child, parent string
		want          bool
	}{
		{"a.example.com", "example.com", true},
		{"example.com", "example.com", true},
		{"example.com", "a.example.com", false},
		{"badexample.com", "example.com", false},
		{"anything.at.all", ".", true},
		{"a.example.com.", "EXAMPLE.com", true},
	}
	for _, c := range cases {
		if got := IsSubdomain(c.child, c.parent); got != c.want {
			t.Errorf("IsSubdomain(%q, %q) = %v, want %v", c.child, c.parent, got, c.want)
		}
	}
}

func TestParentAndLabels(t *testing.T) {
	if got := Parent("a.b.c"); got != "b.c." {
		t.Errorf("Parent(a.b.c) = %q", got)
	}
	if got := Parent("com"); got != "." {
		t.Errorf("Parent(com) = %q", got)
	}
	if got := Parent("."); got != "." {
		t.Errorf("Parent(.) = %q", got)
	}
	if got := CountLabels("a.b.c."); got != 3 {
		t.Errorf("CountLabels = %d", got)
	}
	if got := CountLabels("."); got != 0 {
		t.Errorf("CountLabels(.) = %d", got)
	}
}
