package dns

import (
	"bytes"
	"encoding/binary"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
)

func mustAddr(s string) netip.Addr { return netip.MustParseAddr(s) }

func sampleMessage() *Message {
	return &Message{
		Header: Header{
			ID: 0x1234, Response: true, Authoritative: true,
			RecursionDesired: true, RCode: RCodeSuccess,
		},
		Questions: []Question{{Name: "example.com.", Type: TypeMX, Class: ClassIN}},
		Answers: []RR{
			{Name: "example.com.", Type: TypeMX, Class: ClassIN, TTL: 300,
				Data: MXData{Preference: 10, Exchange: "mx1.provider.com."}},
			{Name: "example.com.", Type: TypeMX, Class: ClassIN, TTL: 300,
				Data: MXData{Preference: 20, Exchange: "mx2.provider.com."}},
		},
		Authority: []RR{
			{Name: "example.com.", Type: TypeNS, Class: ClassIN, TTL: 86400,
				Data: NSData{Host: "ns1.example.com."}},
		},
		Additional: []RR{
			{Name: "mx1.provider.com.", Type: TypeA, Class: ClassIN, TTL: 60,
				Data: AData{Addr: mustAddr("192.0.2.1")}},
		},
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	m := sampleMessage()
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Errorf("round trip mismatch:\n want %+v\n got  %+v", m, got)
	}
}

func TestCompressionShrinksMessage(t *testing.T) {
	m := sampleMessage()
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	// With three names sharing the example.com and provider.com suffixes,
	// compression must make the message smaller than the uncompressed sum.
	uncompressed := 12 // header
	uncompressed += len("example.com") + 2 + 4
	for range m.Answers {
		uncompressed += len("example.com") + 2 + 10 + 2 + len("mxN.provider.com") + 2
	}
	if len(wire) >= uncompressed {
		t.Errorf("wire length %d not smaller than uncompressed estimate %d", len(wire), uncompressed)
	}
	// And a pointer marker must appear.
	if !bytes.ContainsFunc(wire, func(r rune) bool { return byte(r)&0xC0 == 0xC0 }) {
		t.Error("no compression pointer found in wire form")
	}
}

func TestRoundTripAllTypes(t *testing.T) {
	rrs := []RR{
		{Name: "a.example.com.", Type: TypeA, Class: ClassIN, TTL: 1, Data: AData{Addr: mustAddr("10.0.0.1")}},
		{Name: "a.example.com.", Type: TypeAAAA, Class: ClassIN, TTL: 1, Data: AAAAData{Addr: mustAddr("2001:db8::1")}},
		{Name: "example.com.", Type: TypeNS, Class: ClassIN, TTL: 1, Data: NSData{Host: "ns.example.com."}},
		{Name: "w.example.com.", Type: TypeCNAME, Class: ClassIN, TTL: 1, Data: CNAMEData{Target: "a.example.com."}},
		{Name: "1.0.0.10.in-addr.arpa.", Type: TypePTR, Class: ClassIN, TTL: 1, Data: PTRData{Target: "a.example.com."}},
		{Name: "example.com.", Type: TypeMX, Class: ClassIN, TTL: 1, Data: MXData{Preference: 0, Exchange: "a.example.com."}},
		{Name: "example.com.", Type: TypeTXT, Class: ClassIN, TTL: 1, Data: TXTData{Strings: []string{"v=spf1 -all", "second"}}},
		{Name: "example.com.", Type: TypeSOA, Class: ClassIN, TTL: 1, Data: SOAData{
			MName: "ns.example.com.", RName: "hostmaster.example.com.",
			Serial: 2021060800, Refresh: 7200, Retry: 900, Expire: 1209600, Minimum: 300}},
	}
	for _, rr := range rrs {
		m := &Message{Header: Header{ID: 7, Response: true}, Answers: []RR{rr}}
		wire, err := m.Pack()
		if err != nil {
			t.Fatalf("%s: pack: %v", rr.Type, err)
		}
		got, err := Unpack(wire)
		if err != nil {
			t.Fatalf("%s: unpack: %v", rr.Type, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("%s: round trip mismatch\n want %+v\n got  %+v", rr.Type, m, got)
		}
	}
}

func TestPackRejectsBadData(t *testing.T) {
	bad := []RR{
		{Name: "x.", Type: TypeA, Class: ClassIN, Data: AData{Addr: mustAddr("2001:db8::1")}},
		{Name: "x.", Type: TypeAAAA, Class: ClassIN, Data: AAAAData{Addr: mustAddr("10.0.0.1")}},
		{Name: "x.", Type: TypeMX, Class: ClassIN, Data: AData{Addr: mustAddr("10.0.0.1")}},
		{Name: "x.", Type: TypeTXT, Class: ClassIN, Data: TXTData{}},
		{Name: "x.", Type: TypeA, Class: ClassIN, Data: nil},
	}
	for _, rr := range bad {
		m := &Message{Answers: []RR{rr}}
		if _, err := m.Pack(); err == nil {
			t.Errorf("Pack accepted bad record %+v", rr)
		}
	}
}

func TestUnpackRejectsTruncated(t *testing.T) {
	m := sampleMessage()
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, 5, 11, 13, len(wire) / 2, len(wire) - 1} {
		if _, err := Unpack(wire[:n]); err == nil {
			t.Errorf("Unpack accepted %d-byte prefix", n)
		}
	}
}

func TestUnpackRejectsPointerLoop(t *testing.T) {
	// Craft a header + question whose name is a pointer to itself.
	b := make([]byte, 12)
	binary.BigEndian.PutUint16(b[4:], 1) // QDCOUNT=1
	// Name at offset 12: pointer to offset 12 (self).
	b = append(b, 0xC0, 12)
	b = append(b, 0, byte(TypeA), 0, byte(ClassIN))
	if _, err := Unpack(b); err == nil {
		t.Error("Unpack accepted self-referential pointer")
	}
}

func TestUnpackRejectsForwardPointer(t *testing.T) {
	b := make([]byte, 12)
	binary.BigEndian.PutUint16(b[4:], 1)
	b = append(b, 0xC0, 40) // points past itself
	b = append(b, 0, byte(TypeA), 0, byte(ClassIN))
	if _, err := Unpack(b); err == nil {
		t.Error("Unpack accepted forward pointer")
	}
}

func TestUnpackUnknownTypeRoundTrips(t *testing.T) {
	// Type 99 (SPF, which we don't interpret) must survive as raw data.
	b := make([]byte, 12)
	binary.BigEndian.PutUint16(b[6:], 1) // ANCOUNT=1
	b[2] = 0x80                          // QR
	b = append(b, 3, 'f', 'o', 'o', 0)   // name foo.
	b = append(b, 0, 99, 0, 1)           // type 99, class IN
	b = append(b, 0, 0, 0, 60)           // TTL
	b = append(b, 0, 3, 1, 2, 3)         // RDLENGTH 3, data
	m, err := Unpack(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Answers) != 1 || m.Answers[0].Type != Type(99) {
		t.Fatalf("unexpected answers %+v", m.Answers)
	}
	wire, err := m.Pack()
	if err == nil {
		// Raw data can't be re-packed (unsupported type) — that is fine,
		// but if it does pack it must round trip.
		m2, err := Unpack(wire)
		if err != nil || !reflect.DeepEqual(m, m2) {
			t.Errorf("re-pack of raw data did not round trip: %v", err)
		}
	}
}

// Property: any query built by NewQuery round-trips bit-exactly.
func TestQueryRoundTripProperty(t *testing.T) {
	labels := []string{"mx", "mail", "smtp", "example", "provider", "edge-1"}
	tlds := []string{"com", "net", "org", "gov", "co.uk"}
	types := []Type{TypeA, TypeMX, TypeTXT, TypeNS, TypeCNAME}
	f := func(id uint16, a, b, c uint8) bool {
		name := labels[int(a)%len(labels)] + "." + labels[int(b)%len(labels)] + "." + tlds[int(c)%len(tlds)]
		q := NewQuery(id, name, types[int(a+b+c)%len(types)])
		wire, err := q.Pack()
		if err != nil {
			return false
		}
		got, err := Unpack(wire)
		return err == nil && reflect.DeepEqual(q, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Unpack never panics on arbitrary input.
func TestUnpackFuzzProperty(t *testing.T) {
	f := func(b []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Unpack panicked on %x: %v", b, r)
			}
		}()
		m, err := Unpack(b)
		_ = m
		_ = err
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Unpack never panics on corrupted valid messages.
func TestUnpackCorruptionProperty(t *testing.T) {
	m := sampleMessage()
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	f := func(pos uint16, val byte) bool {
		b := append([]byte(nil), wire...)
		b[int(pos)%len(b)] = val
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Unpack panicked on corrupted input: %v", r)
			}
		}()
		_, _ = Unpack(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDNSPackCompressed(b *testing.B) {
	m := sampleMessage()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Pack(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDNSUnpack(b *testing.B) {
	wire, err := sampleMessage().Pack()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unpack(wire); err != nil {
			b.Fatal(err)
		}
	}
}
