package dns

import (
	"fmt"
	"net/netip"
	"strings"
)

// Type is a DNS resource record type code.
type Type uint16

// Record type codes used by this package (RFC 1035 §3.2.2, RFC 3596).
const (
	TypeNone  Type = 0
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypeSOA   Type = 6
	TypePTR   Type = 12
	TypeMX    Type = 15
	TypeTXT   Type = 16
	TypeAAAA  Type = 28
	TypeANY   Type = 255
)

var typeNames = map[Type]string{
	TypeNone: "NONE", TypeA: "A", TypeNS: "NS", TypeCNAME: "CNAME",
	TypeSOA: "SOA", TypePTR: "PTR", TypeMX: "MX", TypeTXT: "TXT",
	TypeAAAA: "AAAA", TypeANY: "ANY",
}

// String returns the standard mnemonic for the type, or TYPEn for unknown
// codes (RFC 3597 presentation).
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("TYPE%d", uint16(t))
}

// ParseType converts a mnemonic such as "MX" to its type code.
func ParseType(s string) (Type, bool) {
	s = strings.ToUpper(strings.TrimSpace(s))
	for t, name := range typeNames {
		if name == s {
			return t, true
		}
	}
	return TypeNone, false
}

// Class is a DNS class code. Only IN is used in practice.
type Class uint16

// Class codes.
const (
	ClassIN  Class = 1
	ClassANY Class = 255
)

// String returns the mnemonic for the class.
func (c Class) String() string {
	switch c {
	case ClassIN:
		return "IN"
	case ClassANY:
		return "ANY"
	default:
		return fmt.Sprintf("CLASS%d", uint16(c))
	}
}

// RCode is a DNS response code.
type RCode uint8

// Response codes (RFC 1035 §4.1.1).
const (
	RCodeSuccess  RCode = 0 // NOERROR
	RCodeFormat   RCode = 1 // FORMERR
	RCodeServFail RCode = 2 // SERVFAIL
	RCodeNXDomain RCode = 3 // NXDOMAIN
	RCodeNotImp   RCode = 4 // NOTIMP
	RCodeRefused  RCode = 5 // REFUSED
)

// String returns the standard mnemonic for the response code.
func (r RCode) String() string {
	switch r {
	case RCodeSuccess:
		return "NOERROR"
	case RCodeFormat:
		return "FORMERR"
	case RCodeServFail:
		return "SERVFAIL"
	case RCodeNXDomain:
		return "NXDOMAIN"
	case RCodeNotImp:
		return "NOTIMP"
	case RCodeRefused:
		return "REFUSED"
	default:
		return fmt.Sprintf("RCODE%d", uint8(r))
	}
}

// OpCode is a DNS operation code. Only QUERY is implemented.
type OpCode uint8

// Operation codes.
const (
	OpQuery OpCode = 0
)

// An RR is a DNS resource record: a common header plus type-specific data.
type RR struct {
	// Name is the owner name in canonical form (lower case, trailing dot).
	Name string
	// Type is the record type; it determines which data field is set.
	Type Type
	// Class is almost always ClassIN.
	Class Class
	// TTL is the time-to-live in seconds.
	TTL uint32
	// Data holds the type-specific record data.
	Data RData
}

// String renders the record in zone-file presentation form.
func (rr RR) String() string {
	return fmt.Sprintf("%s\t%d\t%s\t%s\t%s", rr.Name, rr.TTL, rr.Class, rr.Type, rr.Data)
}

// RData is the interface implemented by all typed record data.
type RData interface {
	// RType returns the record type this data belongs to.
	RType() Type
	// String renders the data in zone-file presentation form.
	String() string
}

// AData is the RDATA of an A record.
type AData struct {
	Addr netip.Addr // must be IPv4
}

// RType implements RData.
func (AData) RType() Type { return TypeA }

// String implements RData.
func (d AData) String() string { return d.Addr.String() }

// AAAAData is the RDATA of an AAAA record.
type AAAAData struct {
	Addr netip.Addr // must be IPv6
}

// RType implements RData.
func (AAAAData) RType() Type { return TypeAAAA }

// String implements RData.
func (d AAAAData) String() string { return d.Addr.String() }

// NSData is the RDATA of an NS record.
type NSData struct {
	Host string
}

// RType implements RData.
func (NSData) RType() Type { return TypeNS }

// String implements RData.
func (d NSData) String() string { return d.Host }

// CNAMEData is the RDATA of a CNAME record.
type CNAMEData struct {
	Target string
}

// RType implements RData.
func (CNAMEData) RType() Type { return TypeCNAME }

// String implements RData.
func (d CNAMEData) String() string { return d.Target }

// PTRData is the RDATA of a PTR record.
type PTRData struct {
	Target string
}

// RType implements RData.
func (PTRData) RType() Type { return TypePTR }

// String implements RData.
func (d PTRData) String() string { return d.Target }

// MXData is the RDATA of an MX record: a 16-bit preference (lower is more
// preferred) and the exchange host name.
type MXData struct {
	Preference uint16
	Exchange   string
}

// RType implements RData.
func (MXData) RType() Type { return TypeMX }

// String implements RData.
func (d MXData) String() string { return fmt.Sprintf("%d %s", d.Preference, d.Exchange) }

// TXTData is the RDATA of a TXT record: one or more character strings of
// up to 255 bytes each.
type TXTData struct {
	Strings []string
}

// RType implements RData.
func (TXTData) RType() Type { return TypeTXT }

// String implements RData.
func (d TXTData) String() string {
	quoted := make([]string, len(d.Strings))
	for i, s := range d.Strings {
		quoted[i] = fmt.Sprintf("%q", s)
	}
	return strings.Join(quoted, " ")
}

// SOAData is the RDATA of an SOA record.
type SOAData struct {
	MName   string // primary name server
	RName   string // responsible mailbox, in domain-name form
	Serial  uint32
	Refresh uint32
	Retry   uint32
	Expire  uint32
	Minimum uint32 // negative-caching TTL
}

// RType implements RData.
func (SOAData) RType() Type { return TypeSOA }

// String implements RData.
func (d SOAData) String() string {
	return fmt.Sprintf("%s %s %d %d %d %d %d",
		d.MName, d.RName, d.Serial, d.Refresh, d.Retry, d.Expire, d.Minimum)
}
