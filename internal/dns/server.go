package dns

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mxmap/internal/overload"
)

// A Catalog is a set of zones searched by longest-suffix match, the lookup
// structure an authoritative server serves from.
type Catalog struct {
	gen   atomic.Uint64 // bumped on every mutation; see Generation
	mu    sync.RWMutex
	zones map[string]*Zone // canonical origin -> zone
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{zones: make(map[string]*Zone)}
}

// AddZone registers a zone; a zone with the same origin is replaced.
func (c *Catalog) AddZone(z *Zone) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.zones[z.Origin] = z
	c.gen.Add(1)
}

// Generation returns a counter that increases on every catalog mutation.
// Servers use it to invalidate packed-response caches: a cached answer is
// valid only while the generation it was built under is current.
func (c *Catalog) Generation() uint64 { return c.gen.Load() }

// FindZone returns the zone with the longest origin that is a suffix of
// name, or nil when the server is not authoritative for name.
func (c *Catalog) FindZone(name string) *Zone {
	c.mu.RLock()
	defer c.mu.RUnlock()
	cur := CanonicalName(name)
	for {
		if z, ok := c.zones[cur]; ok {
			return z
		}
		if cur == "." {
			return nil
		}
		cur = Parent(cur)
	}
}

// Zones returns all registered zones.
func (c *Catalog) Zones() []*Zone {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Zone, 0, len(c.zones))
	for _, z := range c.zones {
		out = append(out, z)
	}
	return out
}

// Resolve answers a question directly from the catalog without network
// I/O. It implements the same semantics the wire server uses, so the scan
// pipeline can resolve at memory speed while integration tests exercise
// the same logic over real sockets.
func (c *Catalog) Resolve(q Question) *Message {
	m := &Message{
		Header:    Header{Response: true, Authoritative: true},
		Questions: []Question{q},
	}
	z := c.FindZone(q.Name)
	if z == nil {
		m.Header.RCode = RCodeRefused
		return m
	}
	res := z.Lookup(q.Name, q.Type)
	if res.Delegated {
		// Referral: not authoritative for the name; hand back the child
		// NS set and any glue so the client can continue iterating.
		m.Header.Authoritative = false
		m.Authority = res.Authority
		m.Additional = res.Additional
		return m
	}
	m.Header.RCode = res.RCode
	m.Answers = res.Answers
	m.Authority = res.Authority
	// Chase CNAMEs that cross into sibling zones we are also
	// authoritative for, as a recursive-capable authoritative would.
	const maxChase = 8
	for i := 0; i < maxChase; i++ {
		last := lastCNAME(m.Answers)
		if last == nil {
			break
		}
		target := CanonicalName(last.Data.(CNAMEData).Target)
		if hasAnswerFor(m.Answers, target, q.Type) || IsSubdomain(target, z.Origin) {
			break
		}
		z2 := c.FindZone(target)
		if z2 == nil {
			break
		}
		res2 := z2.Lookup(target, q.Type)
		if len(res2.Answers) == 0 {
			m.Header.RCode = res2.RCode
			break
		}
		m.Answers = append(m.Answers, res2.Answers...)
		z = z2
	}
	return m
}

func lastCNAME(answers []RR) *RR {
	if len(answers) == 0 {
		return nil
	}
	if rr := answers[len(answers)-1]; rr.Type == TypeCNAME {
		return &rr
	}
	return nil
}

func hasAnswerFor(answers []RR, name string, typ Type) bool {
	for _, rr := range answers {
		if rr.Type == typ && CanonicalName(rr.Name) == name {
			return true
		}
	}
	return false
}

// Admission-control defaults.
const (
	// DefaultMaxTCPConns bounds concurrent DNS-over-TCP connections.
	DefaultMaxTCPConns = 256
	// DefaultTCPQueryBudget bounds queries served on one TCP connection
	// before the server closes it.
	DefaultTCPQueryBudget = 512
	// maxConsecutiveServeErrs is how many back-to-back read/accept
	// errors a serve loop absorbs with backoff before treating the
	// socket as dead.
	maxConsecutiveServeErrs = 16
)

// ServerConfig parameterizes a Server.
type ServerConfig struct {
	// Catalog provides the zones to serve. Required.
	Catalog *Catalog
	// Logger receives per-query debug records; nil disables logging.
	Logger *slog.Logger
	// ReadTimeout bounds waiting for a TCP query (default 10s). It is
	// also the slowloris guard: a connection that stalls mid-frame is
	// closed when the deadline passes.
	ReadTimeout time.Duration
	// UDPSize is the maximum UDP response; larger answers are truncated
	// (default 512, the classic RFC 1035 limit).
	UDPSize int
	// UDPWorkers is the number of concurrent packet handlers per ServeUDP
	// call (default min(GOMAXPROCS, 8)). Each worker owns its read buffer
	// and decode scratch, replacing the old goroutine-plus-copy per
	// packet.
	UDPWorkers int
	// DisableCache turns off the packed-response cache. The cache is also
	// bypassed when Logger is set (per-query logging) and for non-IN
	// classes.
	DisableCache bool
	// RRL enables response-rate limiting on UDP answers when non-nil.
	// See RRLConfig; TCP responses are never rate-limited.
	RRL *RRLConfig
	// MaxTCPConns caps concurrent DNS-over-TCP connections; accepts
	// beyond the cap are immediately closed and counted as rejected
	// (default DefaultMaxTCPConns; negative means unlimited).
	MaxTCPConns int
	// TCPQueryBudget caps queries answered on a single TCP connection
	// before it is closed, bounding what one peer can pin (default
	// DefaultTCPQueryBudget; negative means unlimited).
	TCPQueryBudget int
}

// A Server answers DNS queries over UDP and TCP from a Catalog.
type Server struct {
	cfg     ServerConfig
	cache   respCache
	limiter *rrlLimiter
	tcpSem  chan struct{}
	stats   serverCounters

	mu       sync.Mutex
	udpConns []net.PacketConn
	tcpLns   []net.Listener
	tcpConns map[net.Conn]struct{}
	draining bool
	closed   bool
	wg       sync.WaitGroup
}

// NewServer creates a server for the given configuration.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Catalog == nil {
		return nil, errors.New("dns: server requires a catalog")
	}
	if cfg.ReadTimeout == 0 {
		cfg.ReadTimeout = 10 * time.Second
	}
	if cfg.UDPSize == 0 {
		cfg.UDPSize = 512
	}
	if cfg.UDPWorkers <= 0 {
		cfg.UDPWorkers = min(runtime.GOMAXPROCS(0), 8)
	}
	if cfg.MaxTCPConns == 0 {
		cfg.MaxTCPConns = DefaultMaxTCPConns
	}
	if cfg.TCPQueryBudget == 0 {
		cfg.TCPQueryBudget = DefaultTCPQueryBudget
	}
	s := &Server{cfg: cfg, tcpConns: make(map[net.Conn]struct{})}
	if cfg.RRL != nil {
		s.limiter = newRRLLimiter(*cfg.RRL)
	}
	if cfg.MaxTCPConns > 0 {
		s.tcpSem = make(chan struct{}, cfg.MaxTCPConns)
	}
	return s, nil
}

// Stats returns a snapshot of the server's serving counters.
func (s *Server) Stats() ServerStats { return s.stats.snapshot() }

// ServeUDP answers queries arriving on pc until the server is closed or
// pc fails hard. It blocks; run it in a goroutine.
//
// Packets are handled by a pool of cfg.UDPWorkers workers, each reading,
// resolving and replying on its own reused buffers — net.PacketConn is
// safe for concurrent ReadFrom/WriteTo — so the steady-state path has no
// per-packet goroutine spawn or query copy. Workers survive transient
// read errors (e.g. the ECONNREFUSED a socket reports after ICMP
// feedback) with jittered backoff; only a closed socket or a persistent
// failure ends the loop.
func (s *Server) ServeUDP(pc net.PacketConn) error {
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.udpConns = append(s.udpConns, pc)
	s.wg.Add(1)
	s.mu.Unlock()
	defer s.wg.Done()

	var wg sync.WaitGroup
	errc := make(chan error, s.cfg.UDPWorkers)
	for i := 0; i < s.cfg.UDPWorkers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 64*1024)
			st := new(handleState)
			consec := 0
			for {
				n, addr, err := pc.ReadFrom(buf)
				if err != nil {
					if s.stopping() {
						return
					}
					consec++
					if !overload.TransientNetErr(err) || consec > maxConsecutiveServeErrs {
						errc <- err
						return
					}
					s.stats.udpReadRetries.Add(1)
					overload.Backoff(consec)
					continue
				}
				consec = 0
				s.stats.udpQueries.Add(1)
				resp := s.handle(st, buf[:n], true)
				if resp == nil {
					s.stats.udpDropped.Add(1)
					continue
				}
				if s.limiter != nil {
					switch s.limiter.decide(addr, respKind(resp)) {
					case rrlDrop:
						s.stats.rrlDrops.Add(1)
						continue
					case rrlSlip:
						s.stats.rrlSlips.Add(1)
						resp = slipResponse(resp)
					}
				}
				// WriteTo copies the payload into the socket (or
				// fabric queue), so reusing resp's buffer is safe.
				if _, err := pc.WriteTo(resp, addr); err != nil {
					s.stats.udpWriteErrors.Add(1)
					s.logf("udp write: %v", err)
				} else {
					s.stats.udpResponses.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if s.stopping() {
		return nil
	}
	return <-errc
}

// ServeTCP accepts length-prefixed DNS-over-TCP connections on ln until
// the server is closed. It blocks; run it in a goroutine.
//
// Accepts beyond MaxTCPConns are shed by closing the connection
// immediately; transient accept errors are retried with jittered
// backoff.
func (s *Server) ServeTCP(ln net.Listener) error {
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.tcpLns = append(s.tcpLns, ln)
	s.wg.Add(1)
	s.mu.Unlock()
	defer s.wg.Done()

	consec := 0
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.stopping() {
				return nil
			}
			consec++
			if !overload.TransientNetErr(err) || consec > maxConsecutiveServeErrs {
				return err
			}
			s.stats.acceptRetries.Add(1)
			overload.Backoff(consec)
			continue
		}
		consec = 0
		if !s.admitTCP() {
			s.stats.tcpRejected.Add(1)
			conn.Close()
			continue
		}
		s.stats.tcpAccepted.Add(1)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.releaseTCP()
			defer conn.Close()
			s.serveTCPConn(conn)
		}()
	}
}

// admitTCP takes an admission slot, or reports the cap is hit.
func (s *Server) admitTCP() bool {
	if s.tcpSem == nil {
		return true
	}
	select {
	case s.tcpSem <- struct{}{}:
		return true
	default:
		return false
	}
}

func (s *Server) releaseTCP() {
	if s.tcpSem != nil {
		<-s.tcpSem
	}
}

// trackConn registers (add) or unregisters a serving TCP connection so
// Shutdown can wake idle readers. Registration fails once the server is
// stopping.
func (s *Server) trackConn(conn net.Conn, add bool) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if add {
		if s.closed || s.draining {
			return false
		}
		s.tcpConns[conn] = struct{}{}
		return true
	}
	delete(s.tcpConns, conn)
	return true
}

// beginTCPRead arms the idle deadline for the next query, refusing once
// a drain has begun. Holding the server lock orders the deadline against
// Shutdown's wake-up deadline: either we see draining and stop, or
// Shutdown sees our registered connection and re-arms its immediate
// deadline after ours.
func (s *Server) beginTCPRead(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.draining {
		return false
	}
	return conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout)) == nil
}

func (s *Server) serveTCPConn(conn net.Conn) {
	if !s.trackConn(conn, true) {
		return
	}
	defer s.trackConn(conn, false)
	st := new(handleState)
	var lenBuf [2]byte
	// Per-connection reused buffers: the read buffer grows to the
	// largest frame seen (≤65535), the write buffer to frame+2.
	rbuf := make([]byte, 0, 512)
	wbuf := make([]byte, 0, 1024)
	for served := 0; ; served++ {
		if s.cfg.TCPQueryBudget > 0 && served >= s.cfg.TCPQueryBudget {
			s.stats.tcpBudgetCloses.Add(1)
			return
		}
		if !s.beginTCPRead(conn) {
			return
		}
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return
		}
		msgLen := int(binary.BigEndian.Uint16(lenBuf[:]))
		if cap(rbuf) < msgLen {
			rbuf = make([]byte, 0, msgLen)
		}
		query := rbuf[:msgLen]
		if _, err := io.ReadFull(conn, query); err != nil {
			return
		}
		s.stats.tcpQueries.Add(1)
		resp := s.handle(st, query, false)
		if resp == nil {
			s.stats.tcpDropped.Add(1)
			return
		}
		wbuf = append(wbuf[:0], byte(len(resp)>>8), byte(len(resp)))
		wbuf = append(wbuf, resp...)
		if _, err := conn.Write(wbuf); err != nil {
			s.stats.tcpWriteErrors.Add(1)
			return
		}
		s.stats.tcpResponses.Add(1)
	}
}

// handleState is the per-worker scratch for the query path: a decode
// scratch, a reused query Message and a reused response buffer. The
// slice returned by handle aliases st.out and is valid until the next
// handle call on the same state.
type handleState struct {
	scratch UnpackScratch
	query   Message
	out     []byte
}

// udpLimit returns the response size cap for a query that advertised
// reqSize via EDNS0 (hasEDNS), and whether an OPT record should be
// echoed. The cap honors the client's size up to MaxEDNSSize but never
// shrinks below the server's own configured size.
func (s *Server) udpLimit(reqSize uint16, hasEDNS bool) int {
	limit := s.cfg.UDPSize
	if hasEDNS {
		if int(reqSize) > limit {
			limit = int(reqSize)
		}
		if limit > MaxEDNSSize {
			limit = MaxEDNSSize
		}
	}
	return limit
}

// handle parses a query and produces a packed response; nil means "drop".
// The returned slice may alias st.out.
func (s *Server) handle(st *handleState, query []byte, udp bool) []byte {
	m := &st.query
	if err := st.scratch.Unpack(query, m); err != nil || m.Header.Response {
		// Unparseable or not a query; attempt a FORMERR with the echoed ID
		// when at least the ID survived.
		if len(query) >= 2 {
			resp := &Message{Header: Header{
				ID:       binary.BigEndian.Uint16(query),
				Response: true,
				RCode:    RCodeFormat,
			}}
			b, _ := resp.Pack()
			return b
		}
		return nil
	}
	reqSize, hasEDNS := m.EDNS0UDPSize()
	limit := s.udpLimit(reqSize, hasEDNS)
	if m.Header.OpCode == OpQuery && len(m.Questions) == 1 &&
		m.Questions[0].Class == ClassIN && s.cfg.Logger == nil && !s.cfg.DisableCache {
		return s.handleCached(st, m, udp, limit, hasEDNS)
	}

	var resp *Message
	switch {
	case m.Header.OpCode != OpQuery:
		resp = m.Reply()
		resp.Header.RCode = RCodeNotImp
	case len(m.Questions) != 1:
		resp = m.Reply()
		resp.Header.RCode = RCodeFormat
	default:
		resp = s.cfg.Catalog.Resolve(m.Questions[0])
		resp.Header.ID = m.Header.ID
		resp.Header.RecursionDesired = m.Header.RecursionDesired
	}
	// Honor the client's EDNS0 payload size up to our cap, and echo an
	// OPT record advertising the cap we actually applied so the client
	// knows EDNS0 was understood.
	if hasEDNS {
		resp.SetEDNS0(uint16(limit))
	}
	b, err := resp.Pack()
	if err != nil {
		s.logf("pack response: %v", err)
		fail := m.Reply()
		fail.Header.RCode = RCodeServFail
		b, _ = fail.Pack()
		return b
	}
	if udp && len(b) > limit {
		// Truncate: header + question only, TC bit set; client retries TCP.
		trunc := m.Reply()
		trunc.Header.RCode = resp.Header.RCode
		trunc.Header.Authoritative = resp.Header.Authoritative
		trunc.Header.Truncated = true
		if hasEDNS {
			// Keep EDNS0 on the truncated reply too: dropping OPT would
			// tell the client its EDNS offer was not understood.
			trunc.SetEDNS0(uint16(limit))
		}
		b, _ = trunc.Pack()
	}
	s.logQuery(m, resp)
	return b
}

func (s *Server) logQuery(q, resp *Message) {
	if s.cfg.Logger == nil || len(q.Questions) == 0 {
		return
	}
	s.cfg.Logger.Debug("dns query",
		"q", q.Questions[0].String(),
		"rcode", resp.Header.RCode.String(),
		"answers", len(resp.Answers))
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Error(fmt.Sprintf(format, args...))
	}
}

// stopping reports whether the server is draining or closed; serve
// loops exit cleanly instead of surfacing the wake-up error.
func (s *Server) stopping() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed || s.draining
}

// Shutdown gracefully drains the server: it stops reading new UDP
// queries and accepting new TCP connections, lets every query already
// received finish — including in-flight TCP queries on open
// connections — and then closes all sockets. It returns nil when the
// drain completed, or ctx.Err() after falling back to a hard Close at
// the context deadline. Close retains hard-stop semantics.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	first := !s.draining
	s.draining = true
	pcs := append([]net.PacketConn(nil), s.udpConns...)
	lns := append([]net.Listener(nil), s.tcpLns...)
	conns := make([]net.Conn, 0, len(s.tcpConns))
	for c := range s.tcpConns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	// Wake everything that is blocked waiting for input: UDP workers see
	// an immediate timeout and exit via stopping(); idle TCP readers see
	// the same and close their connection. A connection mid-query keeps
	// its write path untouched, so the in-flight answer still goes out.
	now := time.Now()
	for _, pc := range pcs {
		pc.SetReadDeadline(now)
	}
	for _, ln := range lns {
		ln.Close()
	}
	for _, c := range conns {
		c.SetReadDeadline(now)
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		if first {
			s.stats.drains.Add(1)
		}
		s.mu.Lock()
		s.closed = true
		pcs := s.udpConns
		s.mu.Unlock()
		for _, pc := range pcs {
			pc.Close()
		}
		return nil
	case <-ctx.Done():
		if first {
			s.stats.drainTimeouts.Add(1)
		}
		s.Close()
		return ctx.Err()
	}
}

// Close stops all listeners and connections immediately and waits for
// in-flight handlers. Shutdown is the graceful alternative.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns, lns := s.udpConns, s.tcpLns
	tconns := make([]net.Conn, 0, len(s.tcpConns))
	for c := range s.tcpConns {
		tconns = append(tconns, c)
	}
	s.mu.Unlock()
	for _, pc := range conns {
		pc.Close()
	}
	for _, ln := range lns {
		ln.Close()
	}
	for _, c := range tconns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}

// ListenAndServe binds UDP and TCP on addr (e.g. "127.0.0.1:0") and serves
// until ctx is cancelled. It reports the bound UDP address on ready. This
// helper exists for examples and integration tests.
func (s *Server) ListenAndServe(ctx context.Context, addr string, ready chan<- net.Addr) error {
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		return err
	}
	// Bind TCP on the same port UDP got, so clients can fall back.
	ln, err := net.Listen("tcp", pc.LocalAddr().String())
	if err != nil {
		pc.Close()
		return err
	}
	if ready != nil {
		ready <- pc.LocalAddr()
	}
	errc := make(chan error, 2)
	go func() { errc <- s.ServeUDP(pc) }()
	go func() { errc <- s.ServeTCP(ln) }()
	select {
	case <-ctx.Done():
		s.Close()
		<-errc
		<-errc
		return ctx.Err()
	case err := <-errc:
		s.Close()
		<-errc
		return err
	}
}
