package dns

import (
	"context"
	"net"
	"testing"
	"time"
)

func TestCatalogGeneration(t *testing.T) {
	cat := NewCatalog()
	if g := cat.Generation(); g != 0 {
		t.Fatalf("fresh catalog generation = %d", g)
	}
	cat.AddZone(NewZone("a.test"))
	cat.AddZone(NewZone("b.test"))
	if g := cat.Generation(); g != 2 {
		t.Errorf("generation after two AddZone = %d, want 2", g)
	}
	cat.AddZone(NewZone("a.test")) // replacement also counts
	if g := cat.Generation(); g != 3 {
		t.Errorf("generation after replacement = %d, want 3", g)
	}
}

// TestServerCacheInvalidation replaces a zone on a live server and
// verifies the packed-response cache does not keep serving the old
// answer.
func TestServerCacheInvalidation(t *testing.T) {
	cat := NewCatalog()
	z1 := NewZone("example.com")
	z1.MustAdd(RR{Name: "mx1.example.com.", Type: TypeA, TTL: 300, Data: AData{Addr: mustAddr("192.0.2.10")}})
	cat.AddZone(z1)
	addr := startTestServer(t, cat)
	cl := NewClient(addr)
	r := ClientResolver{Client: cl}
	ctx := context.Background()

	// Ask twice so the second answer is served from the packed cache.
	for i := 0; i < 2; i++ {
		addrs, err := r.LookupA(ctx, "mx1.example.com")
		if err != nil {
			t.Fatal(err)
		}
		if len(addrs) != 1 || addrs[0].String() != "192.0.2.10" {
			t.Fatalf("ask %d: A = %v", i, addrs)
		}
	}

	// Replace the zone: the same name now resolves elsewhere.
	z2 := NewZone("example.com")
	z2.MustAdd(RR{Name: "mx1.example.com.", Type: TypeA, TTL: 300, Data: AData{Addr: mustAddr("198.51.100.99")}})
	cat.AddZone(z2)

	addrs, err := r.LookupA(ctx, "mx1.example.com")
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 1 || addrs[0].String() != "198.51.100.99" {
		t.Errorf("after zone replacement: A = %v, want [198.51.100.99] (stale cache?)", addrs)
	}
}

// rawExchange sends a packed query datagram and returns the raw response.
func rawExchange(t *testing.T, addr string, wire []byte) []byte {
	t.Helper()
	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Write(wire); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64*1024)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	return append([]byte(nil), buf[:n]...)
}

// TestServerCachePatchesIDAndRD verifies that cache hits carry each
// query's own ID and RD bit even though the packed bytes are shared.
func TestServerCachePatchesIDAndRD(t *testing.T) {
	addr := startTestServer(t, testCatalog(t))
	type variant struct {
		id uint16
		rd bool
	}
	for _, v := range []variant{{0x1111, true}, {0x2222, false}, {0xF00D, true}} {
		q := NewQuery(v.id, "example.com", TypeMX)
		q.Header.RecursionDesired = v.rd
		wire, err := q.Pack()
		if err != nil {
			t.Fatal(err)
		}
		resp, err := Unpack(rawExchange(t, addr, wire))
		if err != nil {
			t.Fatal(err)
		}
		if resp.Header.ID != v.id {
			t.Errorf("ID = %#x, want %#x", resp.Header.ID, v.id)
		}
		if resp.Header.RecursionDesired != v.rd {
			t.Errorf("RD = %v, want %v (ID %#x)", resp.Header.RecursionDesired, v.rd, v.id)
		}
		if len(resp.Answers) != 2 {
			t.Errorf("answers = %d, want 2", len(resp.Answers))
		}
	}
}

// TestTruncatedReplyKeepsEDNS verifies the satellite fix: a truncated
// UDP reply to an EDNS query must still carry the OPT record, sized to
// the cap the server actually applied.
func TestTruncatedReplyKeepsEDNS(t *testing.T) {
	addr := startTestServer(t, bigTestCatalog(t))
	q := NewQuery(0xBEEF, "big.test", TypeMX)
	q.SetEDNS0(512) // too small for 40 MX records: must truncate
	wire, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := Unpack(rawExchange(t, addr, wire))
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Header.Truncated {
		t.Fatal("response not truncated")
	}
	size, ok := resp.EDNS0UDPSize()
	if !ok {
		t.Fatal("truncated reply dropped the OPT record")
	}
	if size != 512 {
		t.Errorf("advertised size = %d, want the applied cap 512", size)
	}
}

// TestServerAdvertisesAppliedCap verifies the server echoes the cap it
// applied rather than unconditionally MaxEDNSSize.
func TestServerAdvertisesAppliedCap(t *testing.T) {
	addr := startTestServer(t, testCatalog(t))
	q := NewQuery(0xCAFE, "example.com", TypeMX)
	q.SetEDNS0(2048)
	wire, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := Unpack(rawExchange(t, addr, wire))
	if err != nil {
		t.Fatal(err)
	}
	size, ok := resp.EDNS0UDPSize()
	if !ok {
		t.Fatal("response dropped the OPT record")
	}
	if size != 2048 {
		t.Errorf("advertised size = %d, want applied cap 2048", size)
	}
}

// TestServerCacheDisabled makes sure DisableCache still answers
// correctly through the slow path.
func TestServerCacheDisabled(t *testing.T) {
	srv, err := NewServer(ServerConfig{Catalog: testCatalog(t), DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeUDP(pc)
	t.Cleanup(func() { srv.Close() })
	cl := NewClient(pc.LocalAddr().String())
	mx, err := ClientResolver{Client: cl}.LookupMX(context.Background(), "example.com")
	if err != nil {
		t.Fatal(err)
	}
	if len(mx) != 2 {
		t.Errorf("MX = %+v", mx)
	}
}
