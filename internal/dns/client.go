package dns

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"net/netip"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Client errors.
var (
	// ErrIDMismatch reports a response whose ID does not match the query.
	ErrIDMismatch = errors.New("dns: response ID mismatch")
	// ErrNXDomain reports a name that does not exist.
	ErrNXDomain = errors.New("dns: no such domain")
	// ErrServFail reports a SERVFAIL (or other non-success) response.
	ErrServFail = errors.New("dns: server failure")
	// ErrNoData reports that the name exists but carries no records of the
	// queried type.
	ErrNoData = errors.New("dns: no records of requested type")
	// ErrLame reports a lame delegation: the name is delegated in the
	// registry, but its NS set never answers authoritatively. Unlike a
	// SERVFAIL this is definitive — the delegation itself is broken, not
	// a momentary upstream problem.
	ErrLame = errors.New("dns: lame delegation")
)

// A Client is a stub resolver: it sends single questions to one server
// over UDP, retrying on timeout and falling back to TCP on truncation.
type Client struct {
	// Server is the resolver address, host:port.
	Server string
	// Timeout bounds each network attempt (default 2s).
	Timeout time.Duration
	// Retries is the number of additional UDP attempts (default 2).
	Retries int
	// UDPSize, when non-zero, advertises an EDNS0 payload size with each
	// query so servers can answer beyond 512 bytes without TCP.
	UDPSize uint16
	// RetryBackoff is the base delay before the first UDP retry; each
	// further retry doubles it, jittered to [d/2, d], capped at 2s
	// (default 50ms). Immediate tight retries against a timing-out
	// server only add load exactly when the server is struggling.
	RetryBackoff time.Duration
	// DialContext allows substituting the transport; nil uses net.Dialer.
	// The network argument is "udp" or "tcp".
	DialContext func(ctx context.Context, network, address string) (net.Conn, error)
	// Transport, when set, carries UDP exchanges over shared multiplexed
	// sockets instead of a fresh dial per attempt. TCP fallback still
	// dials (truncation is rare). See NewPooledClient.
	Transport *Transport

	mu  sync.Mutex
	rng *rand.Rand

	retries atomic.Int64
}

// RetryCount reports the total number of UDP retry attempts the client
// has made (attempts beyond the first per exchange). It grows when the
// network drops queries or responses — the observable of backoff tests.
func (c *Client) RetryCount() int64 { return c.retries.Load() }

// NewClient returns a Client querying the given server with defaults.
func NewClient(server string) *Client {
	return &Client{Server: server, Timeout: 2 * time.Second, Retries: 2}
}

func (c *Client) dial(ctx context.Context, network string) (net.Conn, error) {
	server := c.Server
	dialCtx := c.DialContext
	if c.Transport != nil {
		if server == "" {
			server = c.Transport.Server
		}
		if dialCtx == nil {
			dialCtx = c.Transport.DialContext
		}
	}
	if dialCtx != nil {
		return dialCtx(ctx, network, server)
	}
	var d net.Dialer
	return d.DialContext(ctx, network, server)
}

// Close releases the client's shared transport, if any.
func (c *Client) Close() error {
	if c.Transport != nil {
		return c.Transport.Close()
	}
	return nil
}

func (c *Client) nextID() uint16 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rng == nil {
		c.rng = rand.New(rand.NewPCG(rand.Uint64(), rand.Uint64()))
	}
	return uint16(c.rng.Uint32())
}

// Exchange sends one question and returns the validated response message.
func (c *Client) Exchange(ctx context.Context, name string, typ Type) (*Message, error) {
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	query := NewQuery(c.nextID(), name, typ)
	if c.UDPSize > 0 {
		query.SetEDNS0(c.UDPSize)
	}
	wire, err := query.Pack()
	if err != nil {
		return nil, err
	}
	attempts := c.Retries + 1
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			if err := c.sleep(ctx, c.retryDelay(i)); err != nil {
				return nil, err
			}
			c.retries.Add(1)
		}
		var resp *Message
		if c.Transport != nil {
			resp, err = c.exchangeTransport(ctx, wire, query.Questions[0], timeout)
		} else {
			resp, err = c.exchangeOnce(ctx, wire, query.Header.ID, "udp", timeout)
		}
		if err != nil {
			lastErr = err
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			continue
		}
		if resp.Header.Truncated {
			resp, err = c.exchangeOnce(ctx, wire, query.Header.ID, "tcp", timeout)
			if err != nil {
				lastErr = err
				continue
			}
		}
		return resp, nil
	}
	return nil, fmt.Errorf("dns: exchange with %s failed: %w", c.Server, lastErr)
}

// retryDelay returns the jittered exponential backoff before retry
// attempt (attempt >= 1): base 2^(attempt-1), jittered to [d/2, d],
// capped at 2s.
func (c *Client) retryDelay(attempt int) time.Duration {
	base := c.RetryBackoff
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	d := base << (attempt - 1)
	if d > 2*time.Second || d <= 0 {
		d = 2 * time.Second
	}
	c.mu.Lock()
	if c.rng == nil {
		c.rng = rand.New(rand.NewPCG(rand.Uint64(), rand.Uint64()))
	}
	d = d/2 + time.Duration(c.rng.Int64N(int64(d/2)+1))
	c.mu.Unlock()
	return d
}

func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// exchangeTransport runs one UDP attempt over the shared transport.
func (c *Client) exchangeTransport(ctx context.Context, wire []byte, q Question, timeout time.Duration) (*Message, error) {
	respBuf, err := c.Transport.RoundTrip(ctx, wire, q, timeout)
	if err != nil {
		return nil, err
	}
	// The transport already verified ID and question against the query.
	return Unpack(respBuf)
}

func (c *Client) exchangeOnce(ctx context.Context, wire []byte, id uint16, network string, timeout time.Duration) (*Message, error) {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	conn, err := c.dial(ctx, network)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if d, ok := ctx.Deadline(); ok {
		if err := conn.SetDeadline(d); err != nil {
			return nil, err
		}
	}
	var respBuf []byte
	switch network {
	case "udp":
		if _, err := conn.Write(wire); err != nil {
			return nil, err
		}
		buf := make([]byte, 64*1024)
		// A shared or unconnected socket can deliver datagrams that are
		// not our answer: late responses to earlier queries, or spoofed
		// packets guessing at our ID. Those must not burn the attempt —
		// keep reading until the real response or the deadline.
		for {
			n, err := conn.Read(buf)
			if err != nil {
				return nil, err
			}
			resp, err := Unpack(buf[:n])
			if err != nil || resp.Header.ID != id || !resp.Header.Response {
				continue // stray datagram; keep waiting
			}
			return resp, nil
		}
	case "tcp":
		out := make([]byte, 2+len(wire))
		binary.BigEndian.PutUint16(out, uint16(len(wire)))
		copy(out[2:], wire)
		if _, err := conn.Write(out); err != nil {
			return nil, err
		}
		var lenBuf [2]byte
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return nil, err
		}
		respBuf = make([]byte, binary.BigEndian.Uint16(lenBuf[:]))
		if _, err := io.ReadFull(conn, respBuf); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("dns: unsupported network %q", network)
	}
	resp, err := Unpack(respBuf)
	if err != nil {
		return nil, err
	}
	// TCP is a private ordered stream: a mismatch is a server bug, not a
	// stray datagram, so it stays fatal.
	if resp.Header.ID != id {
		return nil, ErrIDMismatch
	}
	if !resp.Header.Response {
		return nil, errors.New("dns: reply is not a response")
	}
	return resp, nil
}

// A Resolver answers the two high-level questions the measurement pipeline
// asks: the MX set of a domain and the address set of a host. Both the
// network Client (via ClientResolver) and the in-memory Catalog (via
// CatalogResolver) satisfy it.
type Resolver interface {
	// LookupMX returns a domain's MX records sorted by preference then
	// exchange name. ErrNXDomain and ErrNoData distinguish missing names
	// from missing record types.
	LookupMX(ctx context.Context, domain string) ([]MXData, error)
	// LookupA returns the IPv4 addresses a host resolves to, following
	// CNAME chains.
	LookupA(ctx context.Context, host string) ([]netip.Addr, error)
	// LookupAAAA returns the IPv6 addresses of a host — the paper's
	// method is IPv4-based and names IPv6 as future work; this method
	// carries that extension.
	LookupAAAA(ctx context.Context, host string) ([]netip.Addr, error)
}

// A TXTResolver additionally answers TXT queries (used by the SPF
// extension). All resolvers in this package implement it.
type TXTResolver interface {
	// LookupTXT returns the TXT strings published at domain, one entry
	// per record (multi-string records are concatenated per RFC 7208).
	LookupTXT(ctx context.Context, domain string) ([]string, error)
}

// ClientResolver adapts a Client to the Resolver interface.
type ClientResolver struct {
	Client *Client
}

// LookupMX implements Resolver.
func (r ClientResolver) LookupMX(ctx context.Context, domain string) ([]MXData, error) {
	resp, err := r.Client.Exchange(ctx, domain, TypeMX)
	if err != nil {
		return nil, err
	}
	return mxFromMessage(resp, domain)
}

// LookupA implements Resolver.
func (r ClientResolver) LookupA(ctx context.Context, host string) ([]netip.Addr, error) {
	resp, err := r.Client.Exchange(ctx, host, TypeA)
	if err != nil {
		return nil, err
	}
	return aFromMessage(resp, host)
}

// LookupAAAA implements Resolver.
func (r ClientResolver) LookupAAAA(ctx context.Context, host string) ([]netip.Addr, error) {
	resp, err := r.Client.Exchange(ctx, host, TypeAAAA)
	if err != nil {
		return nil, err
	}
	return aaaaFromMessage(resp, host)
}

// LookupTXT implements TXTResolver.
func (r ClientResolver) LookupTXT(ctx context.Context, domain string) ([]string, error) {
	resp, err := r.Client.Exchange(ctx, domain, TypeTXT)
	if err != nil {
		return nil, err
	}
	return txtFromMessage(resp, domain)
}

// CatalogResolver resolves directly against an in-memory Catalog, used by
// large-scale simulated measurement where per-query sockets would dominate
// runtime. Semantics match the wire path because both call Catalog.Resolve.
type CatalogResolver struct {
	Catalog *Catalog
}

// LookupMX implements Resolver.
func (r CatalogResolver) LookupMX(ctx context.Context, domain string) ([]MXData, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	resp := r.Catalog.Resolve(Question{Name: CanonicalName(domain), Type: TypeMX, Class: ClassIN})
	return mxFromMessage(resp, domain)
}

// LookupA implements Resolver.
func (r CatalogResolver) LookupA(ctx context.Context, host string) ([]netip.Addr, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	resp := r.Catalog.Resolve(Question{Name: CanonicalName(host), Type: TypeA, Class: ClassIN})
	return aFromMessage(resp, host)
}

// LookupAAAA implements Resolver.
func (r CatalogResolver) LookupAAAA(ctx context.Context, host string) ([]netip.Addr, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	resp := r.Catalog.Resolve(Question{Name: CanonicalName(host), Type: TypeAAAA, Class: ClassIN})
	return aaaaFromMessage(resp, host)
}

// LookupTXT implements TXTResolver.
func (r CatalogResolver) LookupTXT(ctx context.Context, domain string) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	resp := r.Catalog.Resolve(Question{Name: CanonicalName(domain), Type: TypeTXT, Class: ClassIN})
	return txtFromMessage(resp, domain)
}

func rcodeErr(m *Message) error {
	switch m.Header.RCode {
	case RCodeSuccess:
		return nil
	case RCodeNXDomain:
		return ErrNXDomain
	default:
		return fmt.Errorf("%w: %s", ErrServFail, m.Header.RCode)
	}
}

func mxFromMessage(m *Message, domain string) ([]MXData, error) {
	if err := rcodeErr(m); err != nil {
		return nil, err
	}
	var out []MXData
	for _, rr := range m.Answers {
		if mx, ok := rr.Data.(MXData); ok {
			mx.Exchange = TrimmedName(mx.Exchange)
			out = append(out, mx)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: MX for %s", ErrNoData, domain)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Preference != out[j].Preference {
			return out[i].Preference < out[j].Preference
		}
		return out[i].Exchange < out[j].Exchange
	})
	return out, nil
}

func aaaaFromMessage(m *Message, host string) ([]netip.Addr, error) {
	if err := rcodeErr(m); err != nil {
		return nil, err
	}
	var out []netip.Addr
	for _, rr := range m.Answers {
		if a, ok := rr.Data.(AAAAData); ok {
			out = append(out, a.Addr)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: AAAA for %s", ErrNoData, host)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out, nil
}

func txtFromMessage(m *Message, domain string) ([]string, error) {
	if err := rcodeErr(m); err != nil {
		return nil, err
	}
	var out []string
	for _, rr := range m.Answers {
		if txt, ok := rr.Data.(TXTData); ok {
			// RFC 7208 §3.3: multiple strings in one record concatenate
			// without separators.
			out = append(out, strings.Join(txt.Strings, ""))
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: TXT for %s", ErrNoData, domain)
	}
	sort.Strings(out)
	return out, nil
}

func aFromMessage(m *Message, host string) ([]netip.Addr, error) {
	if err := rcodeErr(m); err != nil {
		return nil, err
	}
	var out []netip.Addr
	for _, rr := range m.Answers {
		if a, ok := rr.Data.(AData); ok {
			out = append(out, a.Addr)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: A for %s", ErrNoData, host)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out, nil
}
