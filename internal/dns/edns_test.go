package dns

import (
	"context"
	"net"
	"testing"
)

func bigZoneCatalog(t *testing.T) *Catalog {
	t.Helper()
	c := NewCatalog()
	z := NewZone("big.test")
	for i := 0; i < 40; i++ {
		z.MustAdd(RR{Name: "big.test.", Type: TypeMX, TTL: 1,
			Data: MXData{Preference: uint16(i), Exchange: longLabel(i) + ".mail.big.test."}})
	}
	c.AddZone(z)
	return c
}

// TestEDNS0AvoidsTruncation serves a large answer from a UDP-only server:
// without EDNS0 the client would be truncated and fail over to (absent)
// TCP; with EDNS0 the whole answer arrives in one datagram.
func TestEDNS0AvoidsTruncation(t *testing.T) {
	srv, err := NewServer(ServerConfig{Catalog: bigZoneCatalog(t)})
	if err != nil {
		t.Fatal(err)
	}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeUDP(pc)
	defer srv.Close()
	// Deliberately no TCP listener.

	plain := NewClient(pc.LocalAddr().String())
	plain.Retries = 0
	if _, err := (ClientResolver{Client: plain}).LookupMX(context.Background(), "big.test"); err == nil {
		t.Fatal("non-EDNS client got a large answer over UDP without TCP fallback")
	}

	edns := NewClient(pc.LocalAddr().String())
	edns.Retries = 0
	edns.UDPSize = 4096
	mx, err := (ClientResolver{Client: edns}).LookupMX(context.Background(), "big.test")
	if err != nil {
		t.Fatal(err)
	}
	if len(mx) != 40 {
		t.Errorf("MX count = %d, want 40", len(mx))
	}
}

func TestEDNS0ServerEchoesOPT(t *testing.T) {
	srv, err := NewServer(ServerConfig{Catalog: bigZoneCatalog(t)})
	if err != nil {
		t.Fatal(err)
	}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeUDP(pc)
	defer srv.Close()

	cl := NewClient(pc.LocalAddr().String())
	cl.UDPSize = 2048
	resp, err := cl.Exchange(context.Background(), "big.test", TypeMX)
	if err != nil {
		t.Fatal(err)
	}
	if size, ok := resp.EDNS0UDPSize(); !ok || size == 0 {
		t.Errorf("server response lacks OPT: size=%d ok=%v", size, ok)
	}
}

func TestEDNS0SizeCapped(t *testing.T) {
	// A client advertising an absurd size is capped at MaxEDNSSize: the
	// very large answer still truncates.
	c := NewCatalog()
	z := NewZone("huge.test")
	for i := 0; i < 200; i++ {
		z.MustAdd(RR{Name: "huge.test.", Type: TypeMX, TTL: 1,
			Data: MXData{Preference: uint16(i), Exchange: longLabel(i) + "." + longLabel(i+1) + ".mail.huge.test."}})
	}
	c.AddZone(z)
	srv, err := NewServer(ServerConfig{Catalog: c})
	if err != nil {
		t.Fatal(err)
	}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", pc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeUDP(pc)
	go srv.ServeTCP(ln)
	defer srv.Close()

	cl := NewClient(pc.LocalAddr().String())
	cl.UDPSize = 65000
	// The answer exceeds 4096 bytes, so it must arrive via TCP fallback —
	// proving the server applied the cap rather than the advertised size.
	mx, err := (ClientResolver{Client: cl}).LookupMX(context.Background(), "huge.test")
	if err != nil {
		t.Fatal(err)
	}
	if len(mx) != 200 {
		t.Errorf("MX count = %d, want 200", len(mx))
	}
}

func TestOPTRoundTrip(t *testing.T) {
	m := NewQuery(1, "example.com", TypeA)
	m.SetEDNS0(1232)
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	size, ok := got.EDNS0UDPSize()
	if !ok || size != 1232 {
		t.Errorf("EDNS0UDPSize = (%d, %v)", size, ok)
	}
	// SetEDNS0 replaces rather than duplicates.
	got.SetEDNS0(4096)
	n := 0
	for _, rr := range got.Additional {
		if rr.Type == TypeOPT {
			n++
		}
	}
	if n != 1 {
		t.Errorf("OPT records = %d, want 1", n)
	}
	if size, _ := got.EDNS0UDPSize(); size != 4096 {
		t.Errorf("replaced size = %d", size)
	}
	// Sub-512 values clamp up.
	got.SetEDNS0(100)
	if size, _ := got.EDNS0UDPSize(); size != 512 {
		t.Errorf("clamped size = %d", size)
	}
}
