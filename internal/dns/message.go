package dns

import (
	"errors"
	"fmt"
	"strings"
)

// A Question is the query section of a DNS message.
type Question struct {
	Name  string
	Type  Type
	Class Class
}

// String renders the question in dig-like presentation form.
func (q Question) String() string {
	return fmt.Sprintf("%s %s %s", CanonicalName(q.Name), q.Class, q.Type)
}

// Header is the fixed 12-byte DNS message header, unpacked.
type Header struct {
	ID                 uint16
	Response           bool
	OpCode             OpCode
	Authoritative      bool
	Truncated          bool
	RecursionDesired   bool
	RecursionAvailable bool
	RCode              RCode
}

// A Message is a complete DNS query or response.
type Message struct {
	Header     Header
	Questions  []Question
	Answers    []RR
	Authority  []RR
	Additional []RR
}

// NewQuery builds a standard query message for one question.
func NewQuery(id uint16, name string, typ Type) *Message {
	return &Message{
		Header: Header{ID: id, RecursionDesired: true},
		Questions: []Question{{
			Name:  CanonicalName(name),
			Type:  typ,
			Class: ClassIN,
		}},
	}
}

// Reply builds a response skeleton for the message: same ID and question,
// response bit set.
func (m *Message) Reply() *Message {
	return &Message{
		Header: Header{
			ID:               m.Header.ID,
			Response:         true,
			OpCode:           m.Header.OpCode,
			RecursionDesired: m.Header.RecursionDesired,
		},
		Questions: append([]Question(nil), m.Questions...),
	}
}

// Pack serializes the message to wire format. It is equivalent to
// AppendPack(nil); callers on a hot path should prefer AppendPack with a
// reused buffer.
func (m *Message) Pack() ([]byte, error) {
	return m.AppendPack(nil)
}

// appendPack writes the message through a prepared packer (buf and base
// already set, offsets cleared).
func (m *Message) appendPack(p *packer) error {
	p.uint16(m.Header.ID)
	var flags uint16
	if m.Header.Response {
		flags |= 1 << 15
	}
	flags |= uint16(m.Header.OpCode&0xF) << 11
	if m.Header.Authoritative {
		flags |= 1 << 10
	}
	if m.Header.Truncated {
		flags |= 1 << 9
	}
	if m.Header.RecursionDesired {
		flags |= 1 << 8
	}
	if m.Header.RecursionAvailable {
		flags |= 1 << 7
	}
	flags |= uint16(m.Header.RCode & 0xF)
	p.uint16(flags)
	for _, n := range []int{len(m.Questions), len(m.Answers), len(m.Authority), len(m.Additional)} {
		if n > 0xFFFF {
			return ErrMessageTooLarge
		}
		p.uint16(uint16(n))
	}
	for _, q := range m.Questions {
		if err := p.name(q.Name, true); err != nil {
			return err
		}
		p.uint16(uint16(q.Type))
		p.uint16(uint16(q.Class))
	}
	for _, sec := range [][]RR{m.Answers, m.Authority, m.Additional} {
		for _, rr := range sec {
			if err := packRR(p, rr); err != nil {
				return err
			}
		}
	}
	if p.msgLen() > maxMessageSize {
		return ErrMessageTooLarge
	}
	return nil
}

func packRR(p *packer, rr RR) error {
	if err := p.name(rr.Name, true); err != nil {
		return err
	}
	p.uint16(uint16(rr.Type))
	p.uint16(uint16(rr.Class))
	p.uint32(rr.TTL)
	// Reserve the RDLENGTH slot, pack RDATA, then backfill.
	lenOff := len(p.buf)
	p.uint16(0)
	dataOff := len(p.buf)
	if rr.Data == nil {
		return fmt.Errorf("%w: record %s has nil data", ErrBadRData, rr.Name)
	}
	if rr.Data.RType() != rr.Type {
		return fmt.Errorf("%w: record %s type %s has %s data", ErrBadRData, rr.Name, rr.Type, rr.Data.RType())
	}
	if err := packRData(p, rr.Data); err != nil {
		return err
	}
	n := len(p.buf) - dataOff
	if n > 0xFFFF {
		return ErrMessageTooLarge
	}
	p.buf[lenOff] = byte(n >> 8)
	p.buf[lenOff+1] = byte(n)
	return nil
}

var errTrailingBytes = errors.New("dns: trailing bytes after message")

// Unpack parses a wire-format message. It uses a pooled UnpackScratch;
// callers decoding in a loop should hold their own scratch and reused
// Message via UnpackScratch.Unpack to avoid allocating the result.
func Unpack(b []byte) (*Message, error) {
	s := unpackScratchPool.Get().(*UnpackScratch)
	m := new(Message)
	err := s.Unpack(b, m)
	unpackScratchPool.Put(s)
	if err != nil {
		return nil, err
	}
	return m, nil
}

// String renders the message in a dig-like multi-section form, useful in
// logs and tests.
func (m *Message) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, ";; id=%d opcode=%d rcode=%s", m.Header.ID, m.Header.OpCode, m.Header.RCode)
	for _, f := range []struct {
		set  bool
		name string
	}{
		{m.Header.Response, "qr"}, {m.Header.Authoritative, "aa"},
		{m.Header.Truncated, "tc"}, {m.Header.RecursionDesired, "rd"},
		{m.Header.RecursionAvailable, "ra"},
	} {
		if f.set {
			sb.WriteString(" " + f.name)
		}
	}
	sb.WriteString("\n;; QUESTION\n")
	for _, q := range m.Questions {
		fmt.Fprintf(&sb, ";%s\n", q)
	}
	for _, sec := range []struct {
		name string
		rrs  []RR
	}{{"ANSWER", m.Answers}, {"AUTHORITY", m.Authority}, {"ADDITIONAL", m.Additional}} {
		if len(sec.rrs) == 0 {
			continue
		}
		fmt.Fprintf(&sb, ";; %s\n", sec.name)
		for _, rr := range sec.rrs {
			sb.WriteString(rr.String() + "\n")
		}
	}
	return sb.String()
}
