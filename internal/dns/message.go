package dns

import (
	"errors"
	"fmt"
	"strings"
)

// A Question is the query section of a DNS message.
type Question struct {
	Name  string
	Type  Type
	Class Class
}

// String renders the question in dig-like presentation form.
func (q Question) String() string {
	return fmt.Sprintf("%s %s %s", CanonicalName(q.Name), q.Class, q.Type)
}

// Header is the fixed 12-byte DNS message header, unpacked.
type Header struct {
	ID                 uint16
	Response           bool
	OpCode             OpCode
	Authoritative      bool
	Truncated          bool
	RecursionDesired   bool
	RecursionAvailable bool
	RCode              RCode
}

// A Message is a complete DNS query or response.
type Message struct {
	Header     Header
	Questions  []Question
	Answers    []RR
	Authority  []RR
	Additional []RR
}

// NewQuery builds a standard query message for one question.
func NewQuery(id uint16, name string, typ Type) *Message {
	return &Message{
		Header: Header{ID: id, RecursionDesired: true},
		Questions: []Question{{
			Name:  CanonicalName(name),
			Type:  typ,
			Class: ClassIN,
		}},
	}
}

// Reply builds a response skeleton for the message: same ID and question,
// response bit set.
func (m *Message) Reply() *Message {
	return &Message{
		Header: Header{
			ID:               m.Header.ID,
			Response:         true,
			OpCode:           m.Header.OpCode,
			RecursionDesired: m.Header.RecursionDesired,
		},
		Questions: append([]Question(nil), m.Questions...),
	}
}

// Pack serializes the message to wire format.
func (m *Message) Pack() ([]byte, error) {
	p := newPacker()
	p.uint16(m.Header.ID)
	var flags uint16
	if m.Header.Response {
		flags |= 1 << 15
	}
	flags |= uint16(m.Header.OpCode&0xF) << 11
	if m.Header.Authoritative {
		flags |= 1 << 10
	}
	if m.Header.Truncated {
		flags |= 1 << 9
	}
	if m.Header.RecursionDesired {
		flags |= 1 << 8
	}
	if m.Header.RecursionAvailable {
		flags |= 1 << 7
	}
	flags |= uint16(m.Header.RCode & 0xF)
	p.uint16(flags)
	for _, n := range []int{len(m.Questions), len(m.Answers), len(m.Authority), len(m.Additional)} {
		if n > 0xFFFF {
			return nil, ErrMessageTooLarge
		}
		p.uint16(uint16(n))
	}
	for _, q := range m.Questions {
		if err := p.name(q.Name, true); err != nil {
			return nil, err
		}
		p.uint16(uint16(q.Type))
		p.uint16(uint16(q.Class))
	}
	for _, sec := range [][]RR{m.Answers, m.Authority, m.Additional} {
		for _, rr := range sec {
			if err := packRR(p, rr); err != nil {
				return nil, err
			}
		}
	}
	if len(p.buf) > maxMessageSize {
		return nil, ErrMessageTooLarge
	}
	return p.buf, nil
}

func packRR(p *packer, rr RR) error {
	if err := p.name(rr.Name, true); err != nil {
		return err
	}
	p.uint16(uint16(rr.Type))
	p.uint16(uint16(rr.Class))
	p.uint32(rr.TTL)
	// Reserve the RDLENGTH slot, pack RDATA, then backfill.
	lenOff := len(p.buf)
	p.uint16(0)
	dataOff := len(p.buf)
	if rr.Data == nil {
		return fmt.Errorf("%w: record %s has nil data", ErrBadRData, rr.Name)
	}
	if rr.Data.RType() != rr.Type {
		return fmt.Errorf("%w: record %s type %s has %s data", ErrBadRData, rr.Name, rr.Type, rr.Data.RType())
	}
	if err := packRData(p, rr.Data); err != nil {
		return err
	}
	n := len(p.buf) - dataOff
	if n > 0xFFFF {
		return ErrMessageTooLarge
	}
	p.buf[lenOff] = byte(n >> 8)
	p.buf[lenOff+1] = byte(n)
	return nil
}

// Unpack parses a wire-format message.
func Unpack(b []byte) (*Message, error) {
	u := &unpacker{msg: b}
	var m Message
	id, err := u.uint16()
	if err != nil {
		return nil, err
	}
	flags, err := u.uint16()
	if err != nil {
		return nil, err
	}
	m.Header = Header{
		ID:                 id,
		Response:           flags&(1<<15) != 0,
		OpCode:             OpCode(flags >> 11 & 0xF),
		Authoritative:      flags&(1<<10) != 0,
		Truncated:          flags&(1<<9) != 0,
		RecursionDesired:   flags&(1<<8) != 0,
		RecursionAvailable: flags&(1<<7) != 0,
		RCode:              RCode(flags & 0xF),
	}
	var counts [4]uint16
	for i := range counts {
		if counts[i], err = u.uint16(); err != nil {
			return nil, err
		}
	}
	for i := 0; i < int(counts[0]); i++ {
		var q Question
		if q.Name, err = u.name(); err != nil {
			return nil, err
		}
		var t, c uint16
		if t, err = u.uint16(); err != nil {
			return nil, err
		}
		if c, err = u.uint16(); err != nil {
			return nil, err
		}
		q.Type, q.Class = Type(t), Class(c)
		m.Questions = append(m.Questions, q)
	}
	sections := []*[]RR{&m.Answers, &m.Authority, &m.Additional}
	for si, sec := range sections {
		for i := 0; i < int(counts[si+1]); i++ {
			rr, err := unpackRR(u)
			if err != nil {
				return nil, err
			}
			*sec = append(*sec, rr)
		}
	}
	if u.remaining() != 0 {
		return nil, errors.New("dns: trailing bytes after message")
	}
	return &m, nil
}

func unpackRR(u *unpacker) (RR, error) {
	var rr RR
	var err error
	if rr.Name, err = u.name(); err != nil {
		return rr, err
	}
	var t, c uint16
	if t, err = u.uint16(); err != nil {
		return rr, err
	}
	if c, err = u.uint16(); err != nil {
		return rr, err
	}
	rr.Type, rr.Class = Type(t), Class(c)
	if rr.TTL, err = u.uint32(); err != nil {
		return rr, err
	}
	var rdlen uint16
	if rdlen, err = u.uint16(); err != nil {
		return rr, err
	}
	if rr.Data, err = unpackRData(u, rr.Type, int(rdlen)); err != nil {
		return rr, err
	}
	return rr, nil
}

// String renders the message in a dig-like multi-section form, useful in
// logs and tests.
func (m *Message) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, ";; id=%d opcode=%d rcode=%s", m.Header.ID, m.Header.OpCode, m.Header.RCode)
	for _, f := range []struct {
		set  bool
		name string
	}{
		{m.Header.Response, "qr"}, {m.Header.Authoritative, "aa"},
		{m.Header.Truncated, "tc"}, {m.Header.RecursionDesired, "rd"},
		{m.Header.RecursionAvailable, "ra"},
	} {
		if f.set {
			sb.WriteString(" " + f.name)
		}
	}
	sb.WriteString("\n;; QUESTION\n")
	for _, q := range m.Questions {
		fmt.Fprintf(&sb, ";%s\n", q)
	}
	for _, sec := range []struct {
		name string
		rrs  []RR
	}{{"ANSWER", m.Answers}, {"AUTHORITY", m.Authority}, {"ADDITIONAL", m.Additional}} {
		if len(sec.rrs) == 0 {
			continue
		}
		fmt.Fprintf(&sb, ";; %s\n", sec.name)
		for _, rr := range sec.rrs {
			sb.WriteString(rr.String() + "\n")
		}
	}
	return sb.String()
}
