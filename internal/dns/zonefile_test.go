package dns

import (
	"strings"
	"testing"
)

func TestParseZoneHandWrittenConveniences(t *testing.T) {
	text := `; a hand-written zone
$ORIGIN example.org.
$TTL 3600
@   IN SOA ns1.example.org. hostmaster.example.org. (
        2021060800 ; serial
        7200       ; refresh
        900        ; retry
        1209600    ; expire
        300 )      ; minimum
@                 IN NS  ns1.example.org.
@                 IN MX  10 mail.example.org.
mail.example.org. IN A   192.0.2.5
txt.example.org.  60 IN TXT "has ; semicolon" "and more"
`
	z, err := ParseZone(strings.NewReader(text), "")
	if err != nil {
		t.Fatal(err)
	}
	if z.Origin != "example.org." {
		t.Errorf("origin = %q", z.Origin)
	}
	res := z.Lookup("example.org", TypeSOA)
	if len(res.Answers) != 1 {
		t.Fatalf("SOA missing: %+v", res)
	}
	soa := res.Answers[0].Data.(SOAData)
	if soa.Serial != 2021060800 || soa.Minimum != 300 || soa.Expire != 1209600 {
		t.Errorf("SOA = %+v", soa)
	}
	if res.Answers[0].TTL != 3600 {
		t.Errorf("SOA TTL = %d, want $TTL default", res.Answers[0].TTL)
	}
	res = z.Lookup("example.org", TypeMX)
	if len(res.Answers) != 1 || res.Answers[0].Data.(MXData).Exchange != "mail.example.org." {
		t.Errorf("MX = %+v", res.Answers)
	}
	res = z.Lookup("txt.example.org", TypeTXT)
	if len(res.Answers) != 1 {
		t.Fatalf("TXT missing")
	}
	txt := res.Answers[0].Data.(TXTData)
	if len(txt.Strings) != 2 || txt.Strings[0] != "has ; semicolon" {
		t.Errorf("TXT = %+v", txt)
	}
	if res.Answers[0].TTL != 60 {
		t.Errorf("explicit TTL overridden: %d", res.Answers[0].TTL)
	}
}

func TestParseZoneNoDefaultTTLRequiresColumn(t *testing.T) {
	text := "$ORIGIN x.org.\n@ IN NS ns1.x.org.\n"
	if _, err := ParseZone(strings.NewReader(text), ""); err == nil {
		t.Error("TTL-less record accepted without $TTL")
	}
}

func TestParseZoneUnbalancedParens(t *testing.T) {
	text := "$ORIGIN x.org.\n$TTL 60\n@ IN SOA ns. rn. ( 1 2 3 4\n"
	if _, err := ParseZone(strings.NewReader(text), ""); err == nil {
		t.Error("unbalanced parentheses accepted")
	}
}

func TestParseZoneBadDirectives(t *testing.T) {
	for _, text := range []string{
		"$TTL\n",
		"$TTL banana\n",
		"$ORIGIN a b\n",
	} {
		if _, err := ParseZone(strings.NewReader(text), "x.org"); err == nil {
			t.Errorf("ParseZone(%q) accepted", text)
		}
	}
}

func TestStripZoneComment(t *testing.T) {
	cases := []struct{ in, want string }{
		{`plain line`, `plain line`},
		{`rec ; comment`, `rec `},
		{`txt "a;b" ; real`, `txt "a;b" `},
		{`; whole line`, ``},
	}
	for _, c := range cases {
		if got := stripZoneComment(c.in); got != c.want {
			t.Errorf("stripZoneComment(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseZonesMultiZoneRoundTrip(t *testing.T) {
	// Write two zones into one stream, as cmd/worldgen does, and read
	// them back as a catalog.
	z1 := NewZone("alpha.test")
	z1.MustAdd(RR{Name: "alpha.test.", Type: TypeMX, TTL: 60, Data: MXData{Preference: 10, Exchange: "mx.alpha.test."}})
	z1.MustAdd(RR{Name: "mx.alpha.test.", Type: TypeA, TTL: 60, Data: AData{Addr: mustAddr("10.0.0.1")}})
	z2 := NewZone("beta.test")
	z2.MustAdd(RR{Name: "beta.test.", Type: TypeTXT, TTL: 60, Data: TXTData{Strings: []string{"v=spf1 -all"}}})

	var sb strings.Builder
	for _, z := range []*Zone{z1, z2} {
		if _, err := z.WriteTo(&sb); err != nil {
			t.Fatal(err)
		}
		sb.WriteString("\n")
	}
	cat, err := ParseZones(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(cat.Zones()) != 2 {
		t.Fatalf("zones = %d, want 2", len(cat.Zones()))
	}
	m := cat.Resolve(Question{Name: "alpha.test.", Type: TypeMX, Class: ClassIN})
	if len(m.Answers) != 1 {
		t.Errorf("alpha MX answers = %+v", m.Answers)
	}
	m = cat.Resolve(Question{Name: "beta.test.", Type: TypeTXT, Class: ClassIN})
	if len(m.Answers) != 1 {
		t.Errorf("beta TXT answers = %+v", m.Answers)
	}
}

func TestParseZonesPropagatesErrors(t *testing.T) {
	bad := "$ORIGIN ok.test.\nok.test. 60 IN A 10.0.0.1\n$ORIGIN bad.test.\nbad.test. banana IN A 10.0.0.1\n"
	if _, err := ParseZones(strings.NewReader(bad)); err == nil {
		t.Error("ParseZones accepted malformed block")
	}
}
