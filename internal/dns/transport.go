package dns

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"time"
)

// Transport errors.
var (
	// ErrTransportClosed reports a round trip attempted on a closed
	// transport.
	ErrTransportClosed = errors.New("dns: transport closed")
	// ErrTooManyInFlight reports that the transport's in-flight bound was
	// reached and the context expired before a slot freed up.
	ErrTooManyInFlight = errors.New("dns: too many in-flight queries")
)

// A Transport multiplexes DNS queries from many goroutines over a small
// set of long-lived UDP sockets to one server. Query IDs are assigned
// from a per-socket free list, and a reader goroutine per socket
// demultiplexes responses back to waiting callers by ID, verified
// against the original question (anti-spoofing). Compared to dialing a
// socket per query, this removes the connect/close syscall pair, the
// 64 KiB read buffer allocation, and the ephemeral-port pressure from
// every exchange — which is what made 32-way scan fan-out socket-bound.
//
// A Transport is safe for concurrent use. The zero value is not usable;
// call NewTransport.
type Transport struct {
	// Server is the resolver address, host:port.
	Server string
	// Conns is the number of UDP sockets to spread queries over
	// (default 4). Each socket can have up to 65536 queries in flight.
	Conns int
	// DialContext substitutes the socket factory; nil uses net.Dialer.
	// The network argument is "udp" or (for Client's truncation
	// fallback) "tcp".
	DialContext func(ctx context.Context, network, address string) (net.Conn, error)
	// MaxInFlight bounds the total number of outstanding queries across
	// all sockets (default 4096). Callers beyond the bound wait for a
	// slot or their context, whichever first.
	MaxInFlight int

	inflight chan struct{} // semaphore, lazily built

	mu     sync.Mutex
	conns  []*transportConn
	next   int // round-robin cursor
	closed bool
	once   sync.Once
}

// NewTransport returns a Transport for the given server with defaults.
func NewTransport(server string) *Transport {
	return &Transport{Server: server}
}

func (t *Transport) init() {
	t.once.Do(func() {
		if t.Conns <= 0 {
			t.Conns = 4
		}
		if t.MaxInFlight <= 0 {
			t.MaxInFlight = 4096
		}
		t.inflight = make(chan struct{}, t.MaxInFlight)
		t.conns = make([]*transportConn, t.Conns)
	})
}

// call is one outstanding query: the reader goroutine delivers the raw
// response datagram through ch.
type call struct {
	q  Question
	ch chan []byte
}

// transportConn is one UDP socket plus its demux state.
type transportConn struct {
	conn net.Conn

	wmu  sync.Mutex
	wbuf []byte // write scratch for ID patching

	mu      sync.Mutex
	pending map[uint16]*call
	ids     []uint16 // shuffled free-ID FIFO ring
	idHead  int
	idTail  int
	idFree  int
	err     error // set once the read loop exits; conn is dead
}

func newTransportConn(conn net.Conn) *transportConn {
	c := &transportConn{
		conn:    conn,
		pending: make(map[uint16]*call),
		ids:     make([]uint16, 65536),
		idFree:  65536,
	}
	for i := range c.ids {
		c.ids[i] = uint16(i)
	}
	// Shuffle so IDs are unpredictable; the FIFO ring then maximizes
	// reuse distance, so a late response to a recycled ID is unlikely to
	// find a new query wearing it (and the question check catches it if
	// it does).
	rand.Shuffle(len(c.ids), func(i, j int) { c.ids[i], c.ids[j] = c.ids[j], c.ids[i] })
	go c.readLoop()
	return c
}

// take registers a call under a fresh ID.
func (c *transportConn) take(cl *call) (uint16, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return 0, c.err
	}
	if c.idFree == 0 {
		return 0, ErrTooManyInFlight
	}
	id := c.ids[c.idHead]
	c.idHead = (c.idHead + 1) % len(c.ids)
	c.idFree--
	c.pending[id] = cl
	return id, nil
}

// release removes the call and returns its ID to the free ring.
func (c *transportConn) release(id uint16) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.pending[id]; !ok {
		return
	}
	delete(c.pending, id)
	c.ids[c.idTail] = id
	c.idTail = (c.idTail + 1) % len(c.ids)
	c.idFree++
}

// readLoop demultiplexes response datagrams to pending calls until the
// socket dies. Datagrams that are not a well-formed response to an
// outstanding query — wrong ID, wrong question, malformed — are
// discarded, never fatal: under a shared socket they are either stray
// late responses or spoofing attempts.
func (c *transportConn) readLoop() {
	buf := make([]byte, 64*1024)
	scratch := new(UnpackScratch)
	var m Message
	for {
		n, err := c.conn.Read(buf)
		if err != nil {
			c.fail(err)
			return
		}
		if n < 2 {
			continue
		}
		id := uint16(buf[0])<<8 | uint16(buf[1])
		c.mu.Lock()
		cl := c.pending[id]
		c.mu.Unlock()
		if cl == nil {
			continue
		}
		// Parse and verify the question before delivering, so a spoofed
		// datagram that merely guesses the ID is ignored.
		if err := scratch.Unpack(buf[:n], &m); err != nil {
			continue
		}
		if !m.Header.Response || len(m.Questions) != 1 || m.Questions[0] != cl.q {
			continue
		}
		resp := append([]byte(nil), buf[:n]...)
		select {
		case cl.ch <- resp:
		default:
			// Caller already gone (deadline); drop.
		}
	}
}

// fail marks the conn dead and wakes every pending caller.
func (c *transportConn) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	pending := c.pending
	c.pending = make(map[uint16]*call)
	c.mu.Unlock()
	for _, cl := range pending {
		close(cl.ch)
	}
}

func (c *transportConn) dead() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err != nil
}

// pickConn returns a live socket, dialing lazily and replacing dead ones.
func (t *Transport) pickConn(ctx context.Context) (*transportConn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrTransportClosed
	}
	i := t.next % len(t.conns)
	t.next++
	c := t.conns[i]
	t.mu.Unlock()
	if c != nil && !c.dead() {
		return c, nil
	}
	conn, err := t.dial(ctx, "udp")
	if err != nil {
		return nil, err
	}
	nc := newTransportConn(conn)
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		conn.Close()
		return nil, ErrTransportClosed
	}
	// Another goroutine may have replaced the slot meanwhile; prefer the
	// winner and fold our socket in only if the slot is still dead.
	if cur := t.conns[i]; cur != nil && !cur.dead() {
		t.mu.Unlock()
		conn.Close()
		return cur, nil
	}
	t.conns[i] = nc
	t.mu.Unlock()
	return nc, nil
}

func (t *Transport) dial(ctx context.Context, network string) (net.Conn, error) {
	if t.DialContext != nil {
		return t.DialContext(ctx, network, t.Server)
	}
	var d net.Dialer
	return d.DialContext(ctx, network, t.Server)
}

// RoundTrip sends the packed query (whose ID bytes are patched in place
// on the wire copy, not on wire itself) and returns the raw response
// datagram for the matching (ID, question) pair. The caller owns the
// returned slice. Truncation handling, retries and TCP fallback are the
// caller's concern (see Client.Exchange).
func (t *Transport) RoundTrip(ctx context.Context, wire []byte, q Question, timeout time.Duration) ([]byte, error) {
	t.init()
	if len(wire) < 2 {
		return nil, ErrTruncatedMessage
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	select {
	case t.inflight <- struct{}{}:
		defer func() { <-t.inflight }()
	default:
		select {
		case t.inflight <- struct{}{}:
			defer func() { <-t.inflight }()
		case <-ctx.Done():
			return nil, fmt.Errorf("%w: %w", ErrTooManyInFlight, ctx.Err())
		}
	}
	c, err := t.pickConn(ctx)
	if err != nil {
		return nil, err
	}
	cl := &call{q: q, ch: make(chan []byte, 1)}
	id, err := c.take(cl)
	if err != nil {
		return nil, err
	}
	defer c.release(id)
	c.wmu.Lock()
	c.wbuf = append(c.wbuf[:0], wire...)
	c.wbuf[0], c.wbuf[1] = byte(id>>8), byte(id)
	_, err = c.conn.Write(c.wbuf)
	c.wmu.Unlock()
	if err != nil {
		return nil, err
	}
	select {
	case resp, ok := <-cl.ch:
		if !ok {
			c.mu.Lock()
			err := c.err
			c.mu.Unlock()
			if err == nil {
				err = ErrTransportClosed
			}
			return nil, err
		}
		return resp, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Close shuts down all sockets and fails outstanding queries. The
// transport is unusable afterwards.
func (t *Transport) Close() error {
	t.init()
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := append([]*transportConn(nil), t.conns...)
	t.mu.Unlock()
	for _, c := range conns {
		if c != nil {
			c.conn.Close() // readLoop exits and fails pending calls
		}
	}
	return nil
}

// NewPooledClient returns a Client whose UDP attempts share a
// multiplexed Transport instead of dialing per query. Callers should
// Close the client when done to release the sockets.
func NewPooledClient(server string) *Client {
	c := NewClient(server)
	c.Transport = NewTransport(server)
	return c
}
