package dns

// Flood chaos tests for the overload-protection layer. These run in the
// race tier (go test -race -run Chaos) and assert *exact* counters: the
// RRL clock is frozen so refill never muddies the token arithmetic, and
// the fabric's SpoofUDP is blocking so every injected datagram is
// provably read by the server.

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mxmap/internal/netsim"
)

// floodWire packs the spoofed query a flood repeats.
func floodWire(t *testing.T, name string) []byte {
	t.Helper()
	wire, err := NewQuery(0x4242, name, TypeMX).Pack()
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

// startOverloadServer runs a UDP+TCP DNS server on the fabric at addr
// and registers cleanup that also verifies both serve loops exited nil.
func startOverloadServer(t *testing.T, n *netsim.Network, addr string, cfg ServerConfig) *Server {
	t.Helper()
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ap := netip.MustParseAddrPort(addr)
	pc, err := n.ListenPacket(ap)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := n.Listen(ap)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 2)
	go func() { errc <- srv.ServeUDP(pc) }()
	go func() { errc <- srv.ServeTCP(ln) }()
	// Wait until both serve loops have registered their sockets: a
	// Shutdown racing ahead of a not-yet-scheduled ServeTCP would trip
	// its entry guard and surface net.ErrClosed as a loop failure.
	for {
		srv.mu.Lock()
		ready := len(srv.udpConns) == 1 && len(srv.tcpLns) == 1
		srv.mu.Unlock()
		if ready {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	t.Cleanup(func() {
		srv.Close()
		for i := 0; i < 2; i++ {
			if err := <-errc; err != nil {
				t.Errorf("serve loop: %v", err)
			}
		}
	})
	return srv
}

// TestChaosFloodRRLExactCounters drives a 3000-query spoofed-source
// flood from one /24 into an RRL-protected server and checks the token
// arithmetic to the last packet: burst answers, then a strict
// drop/slip/drop/slip cadence.
func TestChaosFloodRRLExactCounters(t *testing.T) {
	n := netsim.New()
	const server = "203.0.113.1:53"
	const flood = 3000
	const burst = 20
	now, _ := frozenClock()
	srv := startOverloadServer(t, n, server, ServerConfig{
		Catalog:    chaosCatalog(t, 1),
		UDPWorkers: 1,
		RRL:        &RRLConfig{ResponsesPerSecond: 1000, Burst: burst, Slip: 2, Now: now},
	})

	wire := floodWire(t, "d00.chaos.example.")
	delivered := n.FloodUDP(netip.MustParsePrefix("198.51.100.0/24"),
		netip.MustParseAddrPort(server), wire, flood)
	if delivered != flood {
		t.Fatalf("flood delivered %d/%d datagrams", delivered, flood)
	}
	// SpoofUDP is blocking, so all 3000 are in (or through) the server's
	// queue; wait for the worker to drain them.
	waitStats(t, func(st ServerStats) bool { return st.UDPQueries == flood }, srv)

	// Frozen clock: the bucket starts at burst tokens and never refills.
	// 20 answered; of the 2980 limited, every 2nd slips (1490) and the
	// rest drop (1490).
	const limited = flood - burst
	want := ServerStats{
		UDPQueries:   flood,
		UDPResponses: burst + limited/2, // full answers + slipped TC replies
		RRLSlips:     limited / 2,
		RRLDrops:     limited - limited/2,
	}
	waitStats(t, func(st ServerStats) bool { return st == want }, srv)
	if lost := srv.Stats().Lost(); lost != 0 {
		t.Errorf("Lost() = %d, want 0", lost)
	}
}

// TestChaosFloodVictimIsolation proves the point of prefix-keyed RRL
// with slip: a spoofed flood from one /24 saturates its own bucket, and
// a well-behaved client on another prefix still gets 100% of its
// queries answered — directly from its own burst while it lasts, then
// via slipped TC=1 replies that the client retries over TCP, the path a
// spoofer cannot follow.
func TestChaosFloodVictimIsolation(t *testing.T) {
	n := netsim.New()
	const server = "203.0.113.2:53"
	const flood = 3000
	const burst = 20
	const victimQueries = 40
	now, _ := frozenClock()
	// Slip=1: every rate-limited answer becomes a TC reply, so the victim
	// never waits out a dropped datagram — failure is impossible, not
	// merely unlikely, and the test is timing-independent.
	srv := startOverloadServer(t, n, server, ServerConfig{
		Catalog:    chaosCatalog(t, victimQueries),
		UDPWorkers: 1,
		RRL:        &RRLConfig{ResponsesPerSecond: 1000, Burst: burst, Slip: 1, Now: now},
	})

	wire := floodWire(t, "d00.chaos.example.")
	if delivered := n.FloodUDP(netip.MustParsePrefix("198.51.100.0/24"),
		netip.MustParseAddrPort(server), wire, flood); delivered != flood {
		t.Fatalf("flood delivered %d/%d datagrams", delivered, flood)
	}
	waitStats(t, func(st ServerStats) bool { return st.UDPQueries == flood }, srv)

	// The victim dials from the fabric's client address (100.64.0.1), a
	// different /24 than the flood — its bucket is untouched.
	client := &Client{Server: server, Timeout: 5 * time.Second, Retries: 0,
		DialContext: lossyFabricDial(n)}
	answered := 0
	for i := 0; i < victimQueries; i++ {
		name := fmt.Sprintf("d%02d.chaos.example.", i)
		resp, err := client.Exchange(context.Background(), name, TypeMX)
		if err != nil {
			t.Fatalf("victim query %d (%s): %v", i, name, err)
		}
		if len(resp.Answers) == 1 {
			answered++
		}
	}
	if answered != victimQueries {
		t.Fatalf("victim answered %d/%d queries, want all", answered, victimQueries)
	}

	// Exact accounting: the flood burned its burst then slipped all 2980;
	// the victim got burst UDP answers, then 20 slips each retried over
	// TCP. RetryCount stays 0 — TC fallback is not a retry.
	want := ServerStats{
		UDPQueries:   flood + victimQueries,
		UDPResponses: flood + victimQueries, // slip=1: everything is answered or slipped
		RRLSlips:     (flood - burst) + (victimQueries - burst),
		TCPAccepted:  victimQueries - burst,
		TCPQueries:   victimQueries - burst,
		TCPResponses: victimQueries - burst,
	}
	waitStats(t, func(st ServerStats) bool { return st == want }, srv)
	if got := client.RetryCount(); got != 0 {
		t.Errorf("victim retries = %d, want 0 (slips must answer first attempts)", got)
	}
}

// TestChaosDrainUnderLoadZeroLoss shuts a server down gracefully while
// concurrent clients are mid-query and checks that the books balance:
// every query the server read was answered — Lost() == 0 — and both
// serve loops exited clean.
func TestChaosDrainUnderLoadZeroLoss(t *testing.T) {
	n := netsim.New()
	const server = "203.0.113.3:53"
	const workers = 4
	srv := startOverloadServer(t, n, server, ServerConfig{
		Catalog:    chaosCatalog(t, 8),
		UDPWorkers: 2,
	})

	var stop atomic.Bool
	var answered atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := &Client{Server: server, Timeout: 300 * time.Millisecond,
				Retries: 0, DialContext: lossyFabricDial(n)}
			for i := 0; !stop.Load(); i++ {
				name := fmt.Sprintf("d%02d.chaos.example.", (w+i)%8)
				if _, err := client.Exchange(context.Background(), name, TypeMX); err == nil {
					answered.Add(1)
				}
				// Queries racing the drain may time out unanswered; those
				// were never read by the server and are the client's loss,
				// not the server's.
			}
		}(w)
	}
	// Let real load build before pulling the plug.
	waitStats(t, func(st ServerStats) bool { return st.UDPQueries >= 20 }, srv)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	stop.Store(true)
	wg.Wait()

	st := srv.Stats()
	if st.Lost() != 0 {
		t.Errorf("Lost() = %d after drain, want 0 (stats: %+v)", st.Lost(), st)
	}
	if st.Drains != 1 || st.DrainTimeouts != 0 {
		t.Errorf("Drains=%d DrainTimeouts=%d, want 1/0", st.Drains, st.DrainTimeouts)
	}
	if answered.Load() == 0 {
		t.Error("no queries completed before the drain; test exercised nothing")
	}
	// Draining twice is idempotent and still nil.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Errorf("second Shutdown: %v", err)
	}
}

// TestChaosDrainCompletesInFlightTCP freezes a TCP response mid-write
// (the pipe fabric's writes are synchronous) and calls Shutdown: the
// drain must wait for that in-flight answer to reach the client rather
// than cutting the connection.
func TestChaosDrainCompletesInFlightTCP(t *testing.T) {
	n := netsim.New()
	const server = "203.0.113.4:53"
	srv := startOverloadServer(t, n, server, ServerConfig{Catalog: chaosCatalog(t, 1)})

	conn, err := n.Dial(context.Background(), netip.MustParseAddrPort(server))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(frameQuery(t, "d00.chaos.example.")); err != nil {
		t.Fatal(err)
	}
	// Wait until the server has read the query; its answer is now
	// in-flight (blocked in Write until we read it).
	waitStats(t, func(st ServerStats) bool { return st.TCPQueries == 1 }, srv)

	got := make(chan *Message, 1)
	readErr := make(chan error, 1)
	go func() {
		var lenBuf [2]byte
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			readErr <- err
			return
		}
		buf := make([]byte, binary.BigEndian.Uint16(lenBuf[:]))
		if _, err := io.ReadFull(conn, buf); err != nil {
			readErr <- err
			return
		}
		m, err := Unpack(buf)
		if err != nil {
			readErr <- err
			return
		}
		got <- m
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	select {
	case m := <-got:
		if len(m.Answers) != 1 {
			t.Errorf("in-flight answer has %d records, want 1", len(m.Answers))
		}
	case err := <-readErr:
		t.Fatalf("in-flight response lost to drain: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight response never arrived")
	}
	st := srv.Stats()
	if st.TCPResponses != 1 || st.Lost() != 0 {
		t.Errorf("stats = %+v, want TCPResponses=1 Lost=0", st)
	}
}
