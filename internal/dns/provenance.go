package dns

import "context"

// A ProvenanceChecker cross-checks where answers came from against the
// registry-side view of the namespace: which names are delegated, to
// whom, and whether the glue that made a lookup succeed still has a
// living zone behind it. Resolvers with access to registration data
// (zone files, RDAP, a TLD feed) implement it; the collector consults
// it opportunistically via a type assertion, so plain resolvers are
// unaffected.
type ProvenanceChecker interface {
	// DelegationStale reports whether domain's parent-side delegation
	// (registry NS records and glue) disagrees with the apex NS set the
	// serving zone publishes — the stale-glue hijack signature: answers
	// arrive and validate syntactically, but from infrastructure the
	// registrant no longer controls.
	DelegationStale(ctx context.Context, domain string) bool
	// ZoneGone reports whether host's enclosing registered zone has been
	// dropped from the registry even though the name may still resolve
	// through leftover glue — the dangling-exchange precondition.
	ZoneGone(ctx context.Context, host string) bool
}
