package dns

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sort"
	"strings"
	"sync"
	"time"
)

// IterativeResolver performs full iterative resolution the way the
// paper's active-DNS measurement platform does: start at the root
// servers, follow referrals through the TLD to the authoritative
// server, chase CNAMEs by restarting from the root, and cache
// delegations so sibling queries skip the upper levels.
//
// It implements the Resolver interface, so the measurement pipeline can
// run wire-faithful resolution end to end.
type IterativeResolver struct {
	// Roots are the root name-server addresses (the "hints file").
	Roots []netip.AddrPort
	// DialContext establishes connections ("udp" and "tcp"); nil uses
	// net.Dialer. The simulated fabric supplies its own.
	DialContext func(ctx context.Context, network, address string) (net.Conn, error)
	// Timeout bounds each single exchange (default 2s).
	Timeout time.Duration
	// MaxReferrals bounds the referral chain per query (default 16).
	MaxReferrals int
	// Cache, when non-nil, stores final responses under their TTLs so
	// repeated questions skip the wire entirely.
	Cache *Cache

	mu sync.Mutex
	// delegations caches zone -> server addresses discovered from
	// referrals, keyed by the delegated zone name.
	delegations map[string][]netip.AddrPort
	// transports holds one multiplexed UDP transport per authority
	// server, so iteration reuses sockets across queries and callers
	// instead of dialing per exchange. Closed by Close.
	transports map[string]*Transport
}

// Errors particular to iteration.
var (
	// ErrNoRoots reports a resolver with an empty hints list.
	ErrNoRoots = errors.New("dns: iterative resolver has no root servers")
	// ErrReferralLoop reports an overlong or cyclic referral chain.
	ErrReferralLoop = errors.New("dns: referral limit exceeded")
	// ErrLameDelegation reports a referral with no usable addresses.
	ErrLameDelegation = errors.New("dns: lame delegation (no usable name servers)")
)

// Query resolves one (name, type) question iteratively and returns the
// final authoritative response.
func (r *IterativeResolver) Query(ctx context.Context, name string, typ Type) (*Message, error) {
	if len(r.Roots) == 0 {
		return nil, ErrNoRoots
	}
	name = CanonicalName(name)
	if r.Cache != nil {
		if msg, ok := r.Cache.Get(name, typ); ok {
			return msg, nil
		}
	}
	maxRef := r.MaxReferrals
	if maxRef <= 0 {
		maxRef = 16
	}
	servers, zone := r.bestServers(name)
	for step := 0; step < maxRef; step++ {
		resp, err := r.askAny(ctx, servers, name, typ)
		if err != nil {
			return nil, err
		}
		switch {
		case resp.Header.RCode == RCodeNXDomain,
			resp.Header.RCode == RCodeSuccess && (len(resp.Answers) > 0 || resp.Header.Authoritative):
			if r.Cache != nil {
				r.Cache.Put(name, typ, resp)
			}
			return resp, nil
		case resp.Header.RCode != RCodeSuccess:
			return nil, fmt.Errorf("%w: %s from %s zone servers", ErrServFail, resp.Header.RCode, zone)
		}
		// Referral: extract the child zone and its servers.
		child, next := referralTargets(resp)
		if child == "" || !IsSubdomain(child, zone) || child == zone {
			return nil, fmt.Errorf("%w: referral from %s did not descend", ErrReferralLoop, zone)
		}
		if len(next) == 0 {
			// Glueless referral: resolve one NS target address
			// out-of-band (bounded by the caller's context and our own
			// referral budget through recursion).
			next, err = r.resolveGlueless(ctx, resp)
			if err != nil {
				return nil, err
			}
		}
		r.cacheDelegation(child, next)
		servers, zone = next, child
	}
	return nil, ErrReferralLoop
}

// LookupMX implements Resolver.
func (r *IterativeResolver) LookupMX(ctx context.Context, domain string) ([]MXData, error) {
	resp, err := r.Query(ctx, domain, TypeMX)
	if err != nil {
		return nil, err
	}
	return mxFromMessage(resp, domain)
}

// LookupA implements Resolver, restarting iteration for out-of-zone
// CNAME targets.
func (r *IterativeResolver) LookupA(ctx context.Context, host string) ([]netip.Addr, error) {
	const maxChase = 8
	name := host
	for i := 0; i < maxChase; i++ {
		resp, err := r.Query(ctx, name, TypeA)
		if err != nil {
			return nil, err
		}
		if addrs, err := aFromMessage(resp, name); err == nil {
			return addrs, nil
		} else if !errors.Is(err, ErrNoData) {
			return nil, err
		}
		// NODATA with a CNAME means the chain left the zone: restart.
		target := ""
		for _, rr := range resp.Answers {
			if c, ok := rr.Data.(CNAMEData); ok {
				target = c.Target
			}
		}
		if target == "" {
			return nil, fmt.Errorf("%w: A for %s", ErrNoData, host)
		}
		name = target
	}
	return nil, fmt.Errorf("dns: CNAME chain too long for %s", host)
}

// LookupAAAA implements Resolver.
func (r *IterativeResolver) LookupAAAA(ctx context.Context, host string) ([]netip.Addr, error) {
	resp, err := r.Query(ctx, host, TypeAAAA)
	if err != nil {
		return nil, err
	}
	return aaaaFromMessage(resp, host)
}

// LookupTXT implements TXTResolver.
func (r *IterativeResolver) LookupTXT(ctx context.Context, domain string) ([]string, error) {
	resp, err := r.Query(ctx, domain, TypeTXT)
	if err != nil {
		return nil, err
	}
	return txtFromMessage(resp, domain)
}

// bestServers returns the deepest cached delegation covering name, or
// the roots.
func (r *IterativeResolver) bestServers(name string) ([]netip.AddrPort, string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	best, bestZone := r.Roots, "."
	for zone, servers := range r.delegations {
		if IsSubdomain(name, zone) && CountLabels(zone) > CountLabels(bestZone) {
			best, bestZone = servers, zone
		}
	}
	return best, bestZone
}

func (r *IterativeResolver) cacheDelegation(zone string, servers []netip.AddrPort) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.delegations == nil {
		r.delegations = make(map[string][]netip.AddrPort)
	}
	r.delegations[CanonicalName(zone)] = servers
}

// InvalidateCache drops all cached delegations (for tests and long-lived
// resolvers spanning zone changes).
func (r *IterativeResolver) InvalidateCache() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.delegations = nil
}

// transportFor returns the shared transport for one server address,
// creating it on first use. Two sockets per authority is plenty: each
// socket multiplexes up to 65536 concurrent queries.
func (r *IterativeResolver) transportFor(server string) *Transport {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.transports[server]; ok {
		return t
	}
	if r.transports == nil {
		r.transports = make(map[string]*Transport)
	}
	t := &Transport{Server: server, Conns: 2, DialContext: r.DialContext}
	r.transports[server] = t
	return t
}

// Close releases the resolver's shared transports. The resolver remains
// usable; subsequent queries open fresh transports.
func (r *IterativeResolver) Close() error {
	r.mu.Lock()
	transports := r.transports
	r.transports = nil
	r.mu.Unlock()
	for _, t := range transports {
		t.Close()
	}
	return nil
}

// askAny queries the servers in order until one answers.
func (r *IterativeResolver) askAny(ctx context.Context, servers []netip.AddrPort, name string, typ Type) (*Message, error) {
	var lastErr error
	for _, srv := range servers {
		cl := &Client{
			Server:      srv.String(),
			Timeout:     r.Timeout,
			Retries:     0,
			DialContext: r.DialContext,
			Transport:   r.transportFor(srv.String()),
		}
		resp, err := cl.Exchange(ctx, name, typ)
		if err != nil {
			lastErr = err
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			continue
		}
		return resp, nil
	}
	if lastErr == nil {
		lastErr = ErrLameDelegation
	}
	return nil, fmt.Errorf("dns: all servers failed for %s: %w", name, lastErr)
}

// referralTargets extracts the delegated zone and glue addresses from a
// referral response.
func referralTargets(m *Message) (zone string, servers []netip.AddrPort) {
	nsHosts := make(map[string]bool)
	for _, rr := range m.Authority {
		if ns, ok := rr.Data.(NSData); ok {
			if zone == "" {
				zone = CanonicalName(rr.Name)
			}
			nsHosts[CanonicalName(ns.Host)] = true
		}
	}
	for _, rr := range m.Additional {
		if !nsHosts[CanonicalName(rr.Name)] {
			continue
		}
		switch d := rr.Data.(type) {
		case AData:
			servers = append(servers, netip.AddrPortFrom(d.Addr, 53))
		case AAAAData:
			servers = append(servers, netip.AddrPortFrom(d.Addr, 53))
		}
	}
	sort.Slice(servers, func(i, j int) bool { return servers[i].Addr().Less(servers[j].Addr()) })
	return zone, servers
}

// resolveGlueless resolves a referral's NS host out-of-band.
func (r *IterativeResolver) resolveGlueless(ctx context.Context, referral *Message) ([]netip.AddrPort, error) {
	for _, rr := range referral.Authority {
		ns, ok := rr.Data.(NSData)
		if !ok {
			continue
		}
		// Guard against self-referential glueless loops: the NS host must
		// not live inside the zone being delegated.
		if IsSubdomain(ns.Host, rr.Name) {
			continue
		}
		addrs, err := r.LookupA(ctx, strings.TrimSuffix(ns.Host, "."))
		if err != nil {
			continue
		}
		out := make([]netip.AddrPort, len(addrs))
		for i, a := range addrs {
			out[i] = netip.AddrPortFrom(a, 53)
		}
		return out, nil
	}
	return nil, ErrLameDelegation
}
