package dns

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sort"
	"strings"
	"sync"
	"time"
)

// IterativeResolver performs full iterative resolution the way the
// paper's active-DNS measurement platform does: start at the root
// servers, follow referrals through the TLD to the authoritative
// server, and chase CNAMEs by restarting from the root.
//
// With a Cache attached it behaves as a caching recursive resolver:
//
//   - Final answers (positive and RFC 2308 negative) are cached under
//     their TTLs, and repeated questions are answered from memory.
//   - Zone cuts discovered from referrals are cached too, and every
//     resolution starts at the deepest cached cut covering the name —
//     ten thousand domains hosted on one provider cost one walk of the
//     shared NS chain.
//   - Identical in-flight questions are coalesced: concurrent callers
//     asking the same (name, type) share one wire exchange.
//   - When every upstream for a question is unreachable, expired cache
//     entries within the stale window are served per RFC 8767, so
//     collection keeps moving through authoritative outages; each new
//     query retries the wire (shared via coalescing) before falling
//     back to stale data.
//   - Hot entries are refreshed shortly before expiry (prefetch), so
//     steady-state collection never blocks on the wire for popular
//     provider infrastructure.
//
// It implements the Resolver interface, so the measurement pipeline can
// run wire-faithful resolution end to end.
type IterativeResolver struct {
	// Roots are the root name-server addresses (the "hints file").
	Roots []netip.AddrPort
	// DialContext establishes connections ("udp" and "tcp"); nil uses
	// net.Dialer. The simulated fabric supplies its own.
	DialContext func(ctx context.Context, network, address string) (net.Conn, error)
	// Timeout bounds each single exchange (default 2s).
	Timeout time.Duration
	// MaxReferrals bounds the referral chain per query (default 16).
	MaxReferrals int
	// Cache, when non-nil, turns the resolver into a caching recursive
	// resolver (see the type comment). Without it only delegations are
	// cached, in an internal bounded store.
	Cache *Cache
	// PrefetchMinHits is the fresh-hit count an entry must reach before
	// near-expiry prefetch refreshes it (default 3; negative disables
	// prefetch). An entry is "near expiry" in the last tenth of its
	// cache lifetime.
	PrefetchMinHits int
	// MaxAsyncRefresh bounds concurrent background prefetch refreshes
	// (default 4); excess prefetch opportunities are skipped, not
	// queued.
	MaxAsyncRefresh int

	mu sync.Mutex
	// delegations is the internal bounded zone-cut store used when
	// Cache is nil, so plain resolvers still skip the upper hierarchy.
	delegations *Cache
	// flights holds one entry per in-flight (name, type) question; the
	// singleflight substrate of query coalescing.
	flights map[cacheKey]*queryFlight
	// transports holds one multiplexed UDP transport per authority
	// server, so iteration reuses sockets across queries and callers
	// instead of dialing per exchange. Closed by Close.
	transports map[string]*Transport
	// refreshSem bounds background refresh goroutines.
	refreshSem chan struct{}

	counters resolverCounters
}

// queryFlight is one in-flight resolution that concurrent identical
// questions attach to.
type queryFlight struct {
	done chan struct{}
	msg  *Message
	err  error
}

// Errors particular to iteration.
var (
	// ErrNoRoots reports a resolver with an empty hints list.
	ErrNoRoots = errors.New("dns: iterative resolver has no root servers")
	// ErrReferralLoop reports an overlong or cyclic referral chain.
	ErrReferralLoop = errors.New("dns: referral limit exceeded")
	// ErrLameDelegation reports a referral with no usable addresses.
	ErrLameDelegation = errors.New("dns: lame delegation (no usable name servers)")
)

// prefetchDefaultMinHits is the default PrefetchMinHits.
const prefetchDefaultMinHits = 3

// refreshBudget bounds one background refresh's full iteration.
const refreshBudget = 30 * time.Second

// Query resolves one (name, type) question and returns the final
// authoritative response — from cache when fresh, over the wire
// otherwise, and from stale cache data when the wire fails.
func (r *IterativeResolver) Query(ctx context.Context, name string, typ Type) (*Message, error) {
	if len(r.Roots) == 0 {
		return nil, ErrNoRoots
	}
	name = CanonicalName(name)
	r.counters.queries.Add(1)
	if r.Cache != nil {
		if msg, lk := r.Cache.Lookup(name, typ, false); lk.State == CacheFresh {
			r.counters.cacheHits.Add(1)
			r.maybePrefetch(name, typ, lk)
			return msg, nil
		}
		r.counters.cacheMisses.Add(1)
	}
	msg, err := r.coalesced(ctx, name, typ)
	if err != nil && r.Cache != nil {
		// Serve-stale (RFC 8767): the wire attempt above was this
		// query's refresh try; having failed, an expired entry within
		// the stale window still answers.
		if stale, lk := r.Cache.Lookup(name, typ, true); lk.State == CacheStale {
			r.counters.staleServed.Add(1)
			return stale, nil
		}
	}
	return msg, err
}

// coalesced funnels identical concurrent questions into one iteration:
// the first caller resolves, the rest wait on its flight and share the
// outcome (each receiving a private copy).
func (r *IterativeResolver) coalesced(ctx context.Context, name string, typ Type) (*Message, error) {
	key := cacheKey{name: name, typ: typ}
	r.mu.Lock()
	if f, ok := r.flights[key]; ok {
		r.mu.Unlock()
		r.counters.coalesced.Add(1)
		select {
		case <-f.done:
			if f.err != nil {
				return nil, f.err
			}
			return cloneMessage(f.msg), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if r.flights == nil {
		r.flights = make(map[cacheKey]*queryFlight)
	}
	f := &queryFlight{done: make(chan struct{})}
	r.flights[key] = f
	r.mu.Unlock()

	f.msg, f.err = r.iterate(ctx, name, typ)
	r.mu.Lock()
	delete(r.flights, key)
	r.mu.Unlock()
	close(f.done)
	return f.msg, f.err
}

// iterate performs the referral walk for one question, starting from
// the deepest cached zone cut.
func (r *IterativeResolver) iterate(ctx context.Context, name string, typ Type) (*Message, error) {
	maxRef := r.MaxReferrals
	if maxRef <= 0 {
		maxRef = 16
	}
	servers, zone := r.bestServers(name)
	for step := 0; step < maxRef; step++ {
		resp, err := r.askAny(ctx, servers, name, typ)
		if err != nil {
			return nil, err
		}
		switch {
		case resp.Header.RCode == RCodeNXDomain,
			resp.Header.RCode == RCodeSuccess && (len(resp.Answers) > 0 || resp.Header.Authoritative):
			if r.Cache != nil {
				r.Cache.Put(name, typ, resp)
			}
			return resp, nil
		case resp.Header.RCode != RCodeSuccess:
			return nil, fmt.Errorf("%w: %s from %s zone servers", ErrServFail, resp.Header.RCode, zone)
		}
		// Referral: extract the child zone and its servers.
		child, next := referralTargets(resp)
		if child == "" || !IsSubdomain(child, zone) || child == zone {
			return nil, fmt.Errorf("%w: referral from %s did not descend", ErrReferralLoop, zone)
		}
		if len(next) == 0 {
			// Glueless referral: resolve one NS target address
			// out-of-band (bounded by the caller's context and our own
			// referral budget through recursion).
			next, err = r.resolveGlueless(ctx, resp)
			if err != nil {
				return nil, err
			}
		}
		r.delegationStore().PutDelegation(child, next, delegationTTL(resp))
		servers, zone = next, child
	}
	return nil, ErrReferralLoop
}

// maybePrefetch refreshes a hot entry in the background when a fresh
// hit lands in the last tenth of the entry's lifetime, so popular
// questions never expire into a wire-blocking miss.
func (r *IterativeResolver) maybePrefetch(name string, typ Type, lk CacheLookup) {
	minHits := r.PrefetchMinHits
	if minHits == 0 {
		minHits = prefetchDefaultMinHits
	}
	if minHits < 0 || lk.Hits < uint64(minHits) || lk.OriginalTTL <= 0 {
		return
	}
	if lk.Remaining > lk.OriginalTTL/10 {
		return
	}
	if !r.Cache.tryStartPrefetch(name, typ) {
		return
	}
	sem := r.refreshSemaphore()
	select {
	case sem <- struct{}{}:
	default:
		// Refresh capacity saturated: skip, the entry stays eligible.
		r.Cache.clearPrefetch(name, typ)
		return
	}
	go func() {
		defer func() { <-sem }()
		ctx, cancel := context.WithTimeout(context.Background(), refreshBudget)
		defer cancel()
		if _, err := r.coalesced(ctx, name, typ); err != nil {
			// The entry keeps serving until expiry (then stale); clear
			// the flag so a later hit retries the refresh.
			r.Cache.clearPrefetch(name, typ)
			r.counters.prefetchFailures.Add(1)
			return
		}
		r.counters.prefetches.Add(1)
	}()
}

func (r *IterativeResolver) refreshSemaphore() chan struct{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.refreshSem == nil {
		n := r.MaxAsyncRefresh
		if n <= 0 {
			n = 4
		}
		r.refreshSem = make(chan struct{}, n)
	}
	return r.refreshSem
}

// Stats snapshots the resolver's counters.
func (r *IterativeResolver) Stats() ResolverStats {
	return r.counters.snapshot()
}

// LookupMX implements Resolver.
func (r *IterativeResolver) LookupMX(ctx context.Context, domain string) ([]MXData, error) {
	resp, err := r.Query(ctx, domain, TypeMX)
	if err != nil {
		return nil, err
	}
	return mxFromMessage(resp, domain)
}

// LookupA implements Resolver, restarting iteration for out-of-zone
// CNAME targets.
func (r *IterativeResolver) LookupA(ctx context.Context, host string) ([]netip.Addr, error) {
	const maxChase = 8
	name := host
	for i := 0; i < maxChase; i++ {
		resp, err := r.Query(ctx, name, TypeA)
		if err != nil {
			return nil, err
		}
		if addrs, err := aFromMessage(resp, name); err == nil {
			return addrs, nil
		} else if !errors.Is(err, ErrNoData) {
			return nil, err
		}
		// NODATA with a CNAME means the chain left the zone: restart.
		target := ""
		for _, rr := range resp.Answers {
			if c, ok := rr.Data.(CNAMEData); ok {
				target = c.Target
			}
		}
		if target == "" {
			return nil, fmt.Errorf("%w: A for %s", ErrNoData, host)
		}
		name = target
	}
	return nil, fmt.Errorf("dns: CNAME chain too long for %s", host)
}

// LookupAAAA implements Resolver.
func (r *IterativeResolver) LookupAAAA(ctx context.Context, host string) ([]netip.Addr, error) {
	resp, err := r.Query(ctx, host, TypeAAAA)
	if err != nil {
		return nil, err
	}
	return aaaaFromMessage(resp, host)
}

// LookupTXT implements TXTResolver.
func (r *IterativeResolver) LookupTXT(ctx context.Context, domain string) ([]string, error) {
	resp, err := r.Query(ctx, domain, TypeTXT)
	if err != nil {
		return nil, err
	}
	return txtFromMessage(resp, domain)
}

// delegationStore returns where zone cuts live: the shared Cache when
// attached, otherwise an internal bounded store — either way the
// delegation state of a long run cannot grow without limit.
func (r *IterativeResolver) delegationStore() *Cache {
	if r.Cache != nil {
		return r.Cache
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.delegations == nil {
		r.delegations = NewCache()
	}
	return r.delegations
}

// bestServers returns the deepest cached zone cut covering name, or the
// roots. The cut walk is O(labels), not O(cached zones).
func (r *IterativeResolver) bestServers(name string) ([]netip.AddrPort, string) {
	if servers, zone, ok := r.delegationStore().Delegation(name); ok {
		return servers, zone
	}
	return r.Roots, "."
}

// cacheDelegation seeds one zone cut directly (tests use this to build
// pathological delegation states).
func (r *IterativeResolver) cacheDelegation(zone string, servers []netip.AddrPort) {
	r.delegationStore().PutDelegation(zone, servers, uint32(minDelegationTTL/time.Second))
}

// delegationTTL derives a referral's cache lifetime: the minimum TTL
// among its authority NS records.
func delegationTTL(referral *Message) uint32 {
	var ttl uint32
	seen := false
	for _, rr := range referral.Authority {
		if _, ok := rr.Data.(NSData); ok {
			if !seen || rr.TTL < ttl {
				ttl = rr.TTL
				seen = true
			}
		}
	}
	return ttl
}

// InvalidateCache drops all cached delegations (for tests and long-lived
// resolvers spanning zone changes). Answer entries in an attached Cache
// are not touched; they expire on their own TTLs.
func (r *IterativeResolver) InvalidateCache() {
	r.mu.Lock()
	internal := r.delegations
	r.mu.Unlock()
	if internal != nil {
		internal.FlushDelegations()
	}
	if r.Cache != nil {
		r.Cache.FlushDelegations()
	}
}

// transportFor returns the shared transport for one server address,
// creating it on first use. Two sockets per authority is plenty: each
// socket multiplexes up to 65536 concurrent queries.
func (r *IterativeResolver) transportFor(server string) *Transport {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.transports[server]; ok {
		return t
	}
	if r.transports == nil {
		r.transports = make(map[string]*Transport)
	}
	t := &Transport{Server: server, Conns: 2, DialContext: r.DialContext}
	r.transports[server] = t
	return t
}

// Close releases the resolver's shared transports. The resolver remains
// usable; subsequent queries open fresh transports.
func (r *IterativeResolver) Close() error {
	r.mu.Lock()
	transports := r.transports
	r.transports = nil
	r.mu.Unlock()
	for _, t := range transports {
		t.Close()
	}
	return nil
}

// askAny queries the servers in order until one answers.
func (r *IterativeResolver) askAny(ctx context.Context, servers []netip.AddrPort, name string, typ Type) (*Message, error) {
	var lastErr error
	for _, srv := range servers {
		cl := &Client{
			Server:      srv.String(),
			Timeout:     r.Timeout,
			Retries:     0,
			DialContext: r.DialContext,
			Transport:   r.transportFor(srv.String()),
		}
		r.counters.wireQueries.Add(1)
		resp, err := cl.Exchange(ctx, name, typ)
		if err != nil {
			lastErr = err
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			continue
		}
		return resp, nil
	}
	if lastErr == nil {
		lastErr = ErrLameDelegation
	}
	return nil, fmt.Errorf("dns: all servers failed for %s: %w", name, lastErr)
}

// referralTargets extracts the delegated zone and glue addresses from a
// referral response.
func referralTargets(m *Message) (zone string, servers []netip.AddrPort) {
	nsHosts := make(map[string]bool)
	for _, rr := range m.Authority {
		if ns, ok := rr.Data.(NSData); ok {
			if zone == "" {
				zone = CanonicalName(rr.Name)
			}
			nsHosts[CanonicalName(ns.Host)] = true
		}
	}
	for _, rr := range m.Additional {
		if !nsHosts[CanonicalName(rr.Name)] {
			continue
		}
		switch d := rr.Data.(type) {
		case AData:
			servers = append(servers, netip.AddrPortFrom(d.Addr, 53))
		case AAAAData:
			servers = append(servers, netip.AddrPortFrom(d.Addr, 53))
		}
	}
	sort.Slice(servers, func(i, j int) bool { return servers[i].Addr().Less(servers[j].Addr()) })
	return zone, servers
}

// resolveGlueless resolves a referral's NS host out-of-band.
func (r *IterativeResolver) resolveGlueless(ctx context.Context, referral *Message) ([]netip.AddrPort, error) {
	for _, rr := range referral.Authority {
		ns, ok := rr.Data.(NSData)
		if !ok {
			continue
		}
		// Guard against self-referential glueless loops: the NS host must
		// not live inside the zone being delegated.
		if IsSubdomain(ns.Host, rr.Name) {
			continue
		}
		addrs, err := r.LookupA(ctx, strings.TrimSuffix(ns.Host, "."))
		if err != nil {
			continue
		}
		out := make([]netip.AddrPort, len(addrs))
		for i, a := range addrs {
			out[i] = netip.AddrPortFrom(a, 53)
		}
		return out, nil
	}
	return nil, ErrLameDelegation
}
