package dns

// Response-rate limiting (RRL), the classic defense authoritative DNS
// servers deploy against spoofed-source query floods: because UDP answers
// are larger than queries, an open authoritative is an amplification
// vector, and a flood of queries with a forged victim source turns the
// server into the attacker's amplifier. RRL bounds the rate of responses
// per client prefix so one noisy (or spoofed) prefix cannot monopolize
// the server or weaponize it, while the "slip" mechanism keeps legitimate
// clients behind a rate-limited prefix alive: every Nth suppressed answer
// is sent as a minimal truncated (TC=1) reply, which a real client
// answers by retrying over TCP — a path a spoofing attacker cannot
// follow, because TCP requires completing a handshake from the real
// source address.
//
// The limiter keys token buckets on (client prefix, response kind):
// IPv4 clients aggregate to /24 and IPv6 to /56, matching the prefix
// widths BIND and NSD use, and response kinds (answer, empty, NXDOMAIN,
// error) are limited separately so an NXDOMAIN flood cannot starve
// legitimate positive answers from the same prefix. TCP is never
// rate-limited (it is not spoofable), and loopback sources are exempt by
// default so local operators are never locked out.

import (
	"encoding/binary"
	"net"
	"net/netip"
	"sync"
	"time"
)

// RRL defaults.
const (
	// DefaultRRLRate is the sustained responses/second allowed per
	// (prefix, kind) bucket.
	DefaultRRLRate = 1000
	// DefaultRRLBurst is the bucket depth: responses a quiet prefix may
	// receive back-to-back before the sustained rate applies.
	DefaultRRLBurst = 2 * DefaultRRLRate
	// DefaultRRLSlip sends every 2nd rate-limited answer as a truncated
	// reply instead of dropping it.
	DefaultRRLSlip = 2
)

// RRLConfig parameterizes response-rate limiting on a Server.
type RRLConfig struct {
	// ResponsesPerSecond is the sustained per-bucket response rate
	// (default DefaultRRLRate).
	ResponsesPerSecond int
	// Burst is the bucket depth (default DefaultRRLBurst).
	Burst int
	// Slip sends every Nth rate-limited UDP answer as a truncated TC=1
	// reply so legitimate clients fail over to TCP; the other N-1 are
	// dropped. 1 slips every limited answer, 0 uses DefaultRRLSlip, and
	// a negative value never slips (pure drop).
	Slip int
	// IncludeLoopback subjects loopback sources to limiting too. The
	// default exemption keeps local diagnostics (and tests that query
	// over 127.0.0.1) out of the buckets.
	IncludeLoopback bool
	// Now substitutes the clock for deterministic tests; nil uses
	// time.Now.
	Now func() time.Time
}

// rrlKind buckets responses by what they reveal: floods of different
// response classes are limited independently.
type rrlKind uint8

const (
	rrlKindAnswer   rrlKind = iota // NOERROR with answers
	rrlKindEmpty                   // NOERROR, empty answer (NODATA/referral)
	rrlKindNXDomain                // name error
	rrlKindError                   // FORMERR, SERVFAIL, REFUSED, ...
)

// rrlAction is the limiter's verdict for one response.
type rrlAction uint8

const (
	rrlSend rrlAction = iota // under the rate: send as-is
	rrlDrop                  // over the rate: drop silently
	rrlSlip                  // over the rate: send truncated TC=1 reply
)

// rrlKey identifies one token bucket.
type rrlKey struct {
	prefix netip.Prefix
	kind   rrlKind
}

// rrlBucket is one token bucket. tokens counts whole responses; frac
// accumulates sub-response refill so no refill is lost to rounding.
type rrlBucket struct {
	tokens   int
	fracNano int64  // nanoseconds of refill not yet converted to a token
	lastNano int64  // last refill time
	limited  uint64 // rate-limited responses since creation (drives slip)
}

// rrlShards spreads the bucket table over independently locked shards so
// concurrent UDP workers do not serialize on one mutex.
const rrlShards = 16

// maxBucketsPerShard bounds limiter memory; on overflow the least
// recently refilled entries are evicted first.
const maxBucketsPerShard = 4096

type rrlShard struct {
	mu sync.Mutex
	m  map[rrlKey]*rrlBucket
}

// rrlLimiter is the runtime state behind a Server's RRLConfig.
type rrlLimiter struct {
	rate  int
	burst int
	slip  int
	incLo bool
	now   func() time.Time

	shards [rrlShards]rrlShard
}

// newRRLLimiter resolves cfg's defaults into a ready limiter.
func newRRLLimiter(cfg RRLConfig) *rrlLimiter {
	l := &rrlLimiter{
		rate:  cfg.ResponsesPerSecond,
		burst: cfg.Burst,
		slip:  cfg.Slip,
		incLo: cfg.IncludeLoopback,
		now:   cfg.Now,
	}
	if l.rate <= 0 {
		l.rate = DefaultRRLRate
	}
	if l.burst <= 0 {
		l.burst = DefaultRRLBurst
	}
	if l.slip == 0 {
		l.slip = DefaultRRLSlip
	}
	if l.now == nil {
		l.now = time.Now
	}
	for i := range l.shards {
		l.shards[i].m = make(map[rrlKey]*rrlBucket)
	}
	return l
}

// rrlPrefix aggregates a client address to its accounting prefix: /24
// for IPv4, /56 for IPv6.
func rrlPrefix(addr netip.Addr) netip.Prefix {
	addr = addr.Unmap()
	bits := 24
	if addr.Is6() {
		bits = 56
	}
	p, err := addr.Prefix(bits)
	if err != nil {
		return netip.PrefixFrom(addr, addr.BitLen())
	}
	return p
}

// clientAddr extracts the netip address from a PacketConn source.
func clientAddr(a net.Addr) (netip.Addr, bool) {
	switch ua := a.(type) {
	case *net.UDPAddr:
		ip, ok := netip.AddrFromSlice(ua.IP)
		return ip.Unmap(), ok
	case *net.TCPAddr:
		ip, ok := netip.AddrFromSlice(ua.IP)
		return ip.Unmap(), ok
	}
	if ap, err := netip.ParseAddrPort(a.String()); err == nil {
		return ap.Addr().Unmap(), true
	}
	return netip.Addr{}, false
}

// decide applies the token bucket for (src, kind) to one prospective
// response.
func (l *rrlLimiter) decide(src net.Addr, kind rrlKind) rrlAction {
	addr, ok := clientAddr(src)
	if !ok {
		return rrlSend
	}
	if addr.IsLoopback() && !l.incLo {
		return rrlSend
	}
	key := rrlKey{prefix: rrlPrefix(addr), kind: kind}
	sh := &l.shards[rrlHash(key)%rrlShards]
	nowNano := l.now().UnixNano()

	sh.mu.Lock()
	defer sh.mu.Unlock()
	b := sh.m[key]
	if b == nil {
		if len(sh.m) >= maxBucketsPerShard {
			sh.evictOldest()
		}
		b = &rrlBucket{tokens: l.burst, lastNano: nowNano}
		sh.m[key] = b
	} else {
		l.refill(b, nowNano)
	}
	if b.tokens > 0 {
		b.tokens--
		return rrlSend
	}
	b.limited++
	if l.slip > 0 && b.limited%uint64(l.slip) == 0 {
		return rrlSlip
	}
	return rrlDrop
}

// refill adds rate-proportional tokens for the time since the last
// refill, capping at the burst depth.
func (l *rrlLimiter) refill(b *rrlBucket, nowNano int64) {
	elapsed := nowNano - b.lastNano
	if elapsed <= 0 {
		return
	}
	b.lastNano = nowNano
	total := b.fracNano + elapsed*int64(l.rate)
	add := total / int64(time.Second)
	b.fracNano = total % int64(time.Second)
	if add <= 0 {
		return
	}
	if add > int64(l.burst) {
		add = int64(l.burst)
	}
	b.tokens += int(add)
	if b.tokens > l.burst {
		b.tokens = l.burst
		b.fracNano = 0
	}
}

// evictOldest drops the entry with the stalest refill time. Called with
// the shard lock held; linear scan is fine at the shard bound.
func (sh *rrlShard) evictOldest() {
	var oldest rrlKey
	var oldestNano int64
	first := true
	for k, b := range sh.m {
		if first || b.lastNano < oldestNano {
			oldest, oldestNano, first = k, b.lastNano, false
		}
	}
	if !first {
		delete(sh.m, oldest)
	}
}

// rrlHash mixes a key into a shard index.
func rrlHash(k rrlKey) uint32 {
	a := k.prefix.Addr().As16()
	h := uint32(2166136261)
	for _, c := range a {
		h = (h ^ uint32(c)) * 16777619
	}
	h = (h ^ uint32(k.prefix.Bits()) ^ uint32(k.kind)<<8) * 16777619
	return h
}

// respKind classifies a packed response for bucket selection. The bytes
// come straight off the server's pack path, so fixed-offset header reads
// are safe.
func respKind(resp []byte) rrlKind {
	if len(resp) < 12 {
		return rrlKindError
	}
	rcode := RCode(resp[3] & 0x0F)
	switch rcode {
	case RCodeSuccess:
		if binary.BigEndian.Uint16(resp[6:8]) > 0 {
			return rrlKindAnswer
		}
		return rrlKindEmpty
	case RCodeNXDomain:
		return rrlKindNXDomain
	default:
		return rrlKindError
	}
}

// slipResponse rewrites a packed response into the minimal truncated
// form sent on a slip: the original header with TC set and all record
// sections emptied, plus the echoed question section. The client learns
// nothing but "retry over TCP", and the reply is no larger than the
// query — no amplification. The rewrite happens in place on resp's
// prefix (the caller owns the buffer); on any parse anomaly it falls
// back to a header-only reply.
func slipResponse(resp []byte) []byte {
	if len(resp) < 12 {
		return resp
	}
	qdcount := int(binary.BigEndian.Uint16(resp[4:6]))
	end := 12
	for i := 0; i < qdcount; i++ {
		ok := false
		for end < len(resp) {
			l := int(resp[end])
			if l == 0 {
				end++
				ok = true
				break
			}
			if l&0xC0 != 0 {
				// Compressed question name: cannot happen on our pack
				// path, but never walk blind.
				ok = false
				break
			}
			end += 1 + l
		}
		if !ok || end+4 > len(resp) {
			end = 12
			qdcount = 0
			break
		}
		end += 4
	}
	out := resp[:end]
	out[2] |= 0x02 // TC
	binary.BigEndian.PutUint16(out[4:6], uint16(qdcount))
	binary.BigEndian.PutUint16(out[6:8], 0)   // ANCOUNT
	binary.BigEndian.PutUint16(out[8:10], 0)  // NSCOUNT
	binary.BigEndian.PutUint16(out[10:12], 0) // ARCOUNT
	return out
}
