//go:build race

package dns

// raceEnabled reports whether the race detector is active; alloc-count
// assertions are skipped under it (it randomizes sync.Pool behavior).
const raceEnabled = true
