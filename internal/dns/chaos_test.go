package dns

// Chaos tests for the DNS data plane: lossy UDP links must be absorbed
// by the client's retry/backoff machinery, and stray duplicate responses
// must be discarded by the transport's demux instead of corrupting later
// exchanges. These run in the race tier (go test -race -run Chaos).

import (
	"context"
	"fmt"
	"net"
	"net/netip"
	"testing"
	"time"

	"mxmap/internal/netsim"
)

// lossyFabricDial adapts a simulated network to the client's dial hook.
func lossyFabricDial(n *netsim.Network) func(ctx context.Context, network, address string) (net.Conn, error) {
	return func(ctx context.Context, network, address string) (net.Conn, error) {
		ap, err := netip.ParseAddrPort(address)
		if err != nil {
			return nil, err
		}
		if network == "udp" || network == "udp4" {
			return n.DialUDP(ap)
		}
		return n.Dial(ctx, ap)
	}
}

// chaosCatalog builds a catalog of `count` MX zones dNN.chaos.example.
func chaosCatalog(t *testing.T, count int) *Catalog {
	t.Helper()
	cat := NewCatalog()
	for i := 0; i < count; i++ {
		name := fmt.Sprintf("d%02d.chaos.example", i)
		z := NewZone(name)
		z.MustAdd(RR{Name: name + ".", Type: TypeMX, TTL: 60,
			Data: MXData{Preference: 10, Exchange: "mx." + name + "."}})
		cat.AddZone(z)
	}
	return cat
}

// TestChaosUDPLossRetryBackoff serves a catalog over a link that drops
// 30% of datagrams in each direction and checks that every query still
// completes — the multiplexed transport re-sends under the client's
// backoff — and that the retry counter actually grew.
func TestChaosUDPLossRetryBackoff(t *testing.T) {
	n := netsim.New()
	n.Seed(5) // deterministic loss pattern
	const server = "10.4.0.1"
	const domains = 24

	srv, err := NewServer(ServerConfig{Catalog: chaosCatalog(t, domains), UDPWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	pc, err := n.ListenPacket(netip.MustParseAddrPort(server + ":53"))
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeUDP(pc)
	t.Cleanup(func() { srv.Close() })
	n.SetUDPLoss(netip.MustParseAddr(server), 0.3)

	tr := &Transport{Server: server + ":53", Conns: 1, DialContext: lossyFabricDial(n)}
	client := &Client{
		Transport:    tr,
		Timeout:      50 * time.Millisecond,
		Retries:      12,
		RetryBackoff: time.Millisecond,
	}
	t.Cleanup(func() { client.Close() })

	// Sequential on purpose: one outstanding query at a time keeps the
	// fabric's seeded loss rolls on a reproducible schedule.
	resolver := ClientResolver{Client: client}
	for i := 0; i < domains; i++ {
		name := fmt.Sprintf("d%02d.chaos.example", i)
		mxs, err := resolver.LookupMX(context.Background(), name)
		if err != nil {
			t.Fatalf("%s: %v (after %d retries)", name, err, client.RetryCount())
		}
		if len(mxs) != 1 || mxs[0].Exchange != "mx."+name {
			t.Fatalf("%s: unexpected answer %+v", name, mxs)
		}
	}
	// At p=0.3 per direction a round trip survives with probability .49;
	// dozens of queries cannot all get through on their first attempt.
	if client.RetryCount() == 0 {
		t.Error("no retries recorded despite 30% datagram loss")
	}
	t.Logf("completed %d queries with %d retries", domains, client.RetryCount())
}

// TestChaosDuplicateResponses runs against a responder that answers
// every query twice. The transport must hand the first copy to the
// waiting call and drop the stray — no errors, no retries, and later
// exchanges over the same socket stay correct.
func TestChaosDuplicateResponses(t *testing.T) {
	n := netsim.New()
	const server = "10.4.0.2"
	const domains = 12
	cat := chaosCatalog(t, domains)

	pc, err := n.ListenPacket(netip.MustParseAddrPort(server + ":53"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pc.Close() })
	go func() {
		buf := make([]byte, 64*1024)
		for {
			nr, addr, err := pc.ReadFrom(buf)
			if err != nil {
				return
			}
			query, err := Unpack(buf[:nr])
			if err != nil || len(query.Questions) == 0 {
				continue
			}
			resp := cat.Resolve(query.Questions[0])
			resp.Header.ID = query.Header.ID
			wire, err := resp.Pack()
			if err != nil {
				continue
			}
			pc.WriteTo(wire, addr) // the answer
			pc.WriteTo(wire, addr) // ...and a stray duplicate
		}
	}()

	tr := &Transport{Server: server + ":53", Conns: 1, DialContext: lossyFabricDial(n)}
	client := &Client{Transport: tr, Timeout: time.Second, Retries: 2}
	t.Cleanup(func() { client.Close() })

	resolver := ClientResolver{Client: client}
	for round := 0; round < 2; round++ {
		for i := 0; i < domains; i++ {
			name := fmt.Sprintf("d%02d.chaos.example", i)
			mxs, err := resolver.LookupMX(context.Background(), name)
			if err != nil {
				t.Fatalf("round %d %s: %v", round, name, err)
			}
			if len(mxs) != 1 || mxs[0].Exchange != "mx."+name {
				t.Fatalf("round %d %s: unexpected answer %+v", round, name, mxs)
			}
		}
	}
	if got := client.RetryCount(); got != 0 {
		t.Errorf("retries = %d, want 0 (duplicates must not look like loss)", got)
	}
}
