package dns

import (
	"context"
	"testing"
	"time"
)

func cachedMsg(ttl uint32) *Message {
	return &Message{
		Header: Header{Response: true, Authoritative: true},
		Answers: []RR{{Name: "x.test.", Type: TypeA, Class: ClassIN, TTL: ttl,
			Data: AData{Addr: mustAddr("10.0.0.1")}}},
	}
}

func TestCachePositiveTTL(t *testing.T) {
	now := time.Unix(1000, 0)
	c := NewCache()
	c.Now = func() time.Time { return now }
	c.Put("x.test", TypeA, cachedMsg(60))
	if _, ok := c.Get("X.TEST.", TypeA); !ok {
		t.Fatal("fresh entry missed (case/canonical form)")
	}
	now = now.Add(59 * time.Second)
	if _, ok := c.Get("x.test", TypeA); !ok {
		t.Error("entry expired early")
	}
	now = now.Add(2 * time.Second)
	if _, ok := c.Get("x.test", TypeA); ok {
		t.Error("entry served after TTL")
	}
}

func TestCacheMinimumAnswerTTL(t *testing.T) {
	now := time.Unix(0, 0)
	c := NewCache()
	c.Now = func() time.Time { return now }
	msg := cachedMsg(300)
	msg.Answers = append(msg.Answers, RR{Name: "x.test.", Type: TypeA, Class: ClassIN, TTL: 10,
		Data: AData{Addr: mustAddr("10.0.0.2")}})
	c.Put("x.test", TypeA, msg)
	now = now.Add(11 * time.Second)
	if _, ok := c.Get("x.test", TypeA); ok {
		t.Error("minimum TTL not honored")
	}
}

func TestCacheNegativeViaSOA(t *testing.T) {
	now := time.Unix(0, 0)
	c := NewCache()
	c.Now = func() time.Time { return now }
	neg := &Message{
		Header: Header{Response: true, RCode: RCodeNXDomain},
		Authority: []RR{{Name: "test.", Type: TypeSOA, Class: ClassIN, TTL: 600, Data: SOAData{
			MName: "ns.test.", RName: "h.test.", Minimum: 30}}},
	}
	c.Put("gone.test", TypeA, neg)
	if msg, ok := c.Get("gone.test", TypeA); !ok || msg.Header.RCode != RCodeNXDomain {
		t.Fatal("negative answer not cached")
	}
	now = now.Add(31 * time.Second)
	if _, ok := c.Get("gone.test", TypeA); ok {
		t.Error("negative answer outlived SOA minimum")
	}
}

func TestCacheSkipsUncacheable(t *testing.T) {
	c := NewCache()
	c.Put("x.test", TypeA, &Message{Header: Header{Response: true}})
	c.Put("y.test", TypeA, cachedMsg(0))
	if c.Len() != 0 {
		t.Errorf("uncacheable responses stored: %d", c.Len())
	}
}

func TestCacheEviction(t *testing.T) {
	c := NewCache()
	c.MaxEntries = 8
	for i := 0; i < 20; i++ {
		c.Put(string(rune('a'+i))+".test", TypeA, cachedMsg(60))
	}
	if c.Len() > 8 {
		t.Errorf("cache exceeded bound: %d", c.Len())
	}
}

func TestIterativeResolverUsesCache(t *testing.T) {
	itn := buildIterTestNet(t)
	r := itn.resolver()
	r.Cache = NewCache()
	ctx := context.Background()
	if _, err := r.LookupA(ctx, "mx1.example.com"); err != nil {
		t.Fatal(err)
	}
	before := itn.queries.Load()
	if _, err := r.LookupA(ctx, "mx1.example.com"); err != nil {
		t.Fatal(err)
	}
	if itn.queries.Load() != before {
		t.Errorf("cached lookup touched the wire: %d extra queries", itn.queries.Load()-before)
	}
	// Negative answers cache too.
	if _, err := r.LookupA(ctx, "missing.example.com"); err == nil {
		t.Fatal("expected NXDOMAIN")
	}
	before = itn.queries.Load()
	if _, err := r.LookupA(ctx, "missing.example.com"); err == nil {
		t.Fatal("expected NXDOMAIN")
	}
	if itn.queries.Load() != before {
		t.Errorf("negative answer not cached: %d extra queries", itn.queries.Load()-before)
	}
}
