// Package dns implements the subset of the Domain Name System needed to
// simulate the paper's active DNS measurement substrate: a binary wire
// codec for messages and the resource-record types that matter for mail
// measurement (A, AAAA, NS, CNAME, SOA, PTR, MX, TXT), an authoritative
// in-memory zone store served over UDP and TCP, and a stub resolver client
// with retry and truncation fallback.
//
// The codec follows RFC 1035 message formats including domain-name
// compression; the server follows standard authoritative semantics
// (CNAME chasing within a zone, NXDOMAIN vs NODATA distinction).
package dns

import (
	"errors"
	"strings"
)

// MaxNameLen is the maximum length of a domain name in its presentation
// form, per RFC 1035 §2.3.4 (255 octets on the wire; 253 visible chars).
const MaxNameLen = 253

// MaxLabelLen is the maximum length of a single label.
const MaxLabelLen = 63

var (
	// ErrNameTooLong reports a name exceeding MaxNameLen.
	ErrNameTooLong = errors.New("dns: name too long")
	// ErrBadName reports a syntactically invalid domain name.
	ErrBadName = errors.New("dns: invalid name")
)

// CanonicalName lower-cases a name and ensures exactly one trailing dot,
// the canonical form used as map keys throughout this package. The root is
// returned as ".".
func CanonicalName(s string) string {
	s = strings.ToLower(strings.TrimSpace(s))
	if s == "" || s == "." {
		return "."
	}
	if !strings.HasSuffix(s, ".") {
		s += "."
	}
	return s
}

// TrimmedName returns the canonical name without its trailing dot, which
// is the form most callers outside this package work with. The root maps
// to the empty string.
func TrimmedName(s string) string {
	return strings.TrimSuffix(CanonicalName(s), ".")
}

// CheckName validates a domain name in presentation form. It accepts
// letters, digits and hyphens within labels plus underscore as a leading
// character (for service labels such as _dmarc), and enforces label and
// name length limits. The root name "." is valid. It performs no heap
// allocations, so the packing hot path can validate every name.
func CheckName(s string) error {
	s = strings.TrimSuffix(strings.TrimSpace(s), ".")
	if s == "" {
		return nil // root
	}
	if s[len(s)-1] == '.' {
		return ErrBadName // empty final label ("a..")
	}
	if len(s) > MaxNameLen {
		return ErrNameTooLong
	}
	for start := 0; start < len(s); {
		end := strings.IndexByte(s[start:], '.')
		if end < 0 {
			end = len(s)
		} else {
			end += start
		}
		if err := checkLabel(s[start:end]); err != nil {
			return err
		}
		start = end + 1
	}
	return nil
}

// isCanonicalName reports whether s is already in CanonicalName form
// (lower case, trailing dot, no surrounding space), letting hot paths
// skip the allocating normalization.
func isCanonicalName(s string) bool {
	if s == "" || s[len(s)-1] != '.' {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		// Upper case needs lowering; control bytes and non-ASCII may be
		// trimmed or rejected by the slow path — defer to it.
		if ('A' <= c && c <= 'Z') || c <= ' ' || c >= 0x80 {
			return false
		}
	}
	return true
}

func checkLabel(label string) error {
	if label == "" || len(label) > MaxLabelLen {
		return ErrBadName
	}
	for i := 0; i < len(label); i++ {
		c := label[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9':
		case c == '-':
			if i == 0 || i == len(label)-1 {
				return ErrBadName
			}
		case c == '_':
			if i != 0 {
				return ErrBadName
			}
		case c == '*':
			// Wildcard label: only valid alone.
			if len(label) != 1 {
				return ErrBadName
			}
		default:
			return ErrBadName
		}
	}
	return nil
}

// IsSubdomain reports whether child is equal to or underneath parent,
// comparing canonically. Every name is a subdomain of the root.
func IsSubdomain(child, parent string) bool {
	c, p := CanonicalName(child), CanonicalName(parent)
	if p == "." {
		return true
	}
	if c == p {
		return true
	}
	return strings.HasSuffix(c, "."+p)
}

// SplitLabels splits a name into its labels, omitting the root. A canonical
// or non-canonical form is accepted.
func SplitLabels(s string) []string {
	s = strings.TrimSuffix(CanonicalName(s), ".")
	if s == "" {
		return nil
	}
	return strings.Split(s, ".")
}

// CountLabels returns the number of labels in the name.
func CountLabels(s string) int { return len(SplitLabels(s)) }

// Parent returns the name with its leftmost label removed, in canonical
// form. The parent of a single-label name is the root ".", and the parent
// of the root is the root.
func Parent(s string) string {
	c := CanonicalName(s)
	if c == "." {
		return "."
	}
	i := strings.Index(c, ".")
	rest := c[i+1:]
	if rest == "" {
		return "."
	}
	return rest
}
