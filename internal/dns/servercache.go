package dns

import "sync"

// The packed-response cache. An authoritative measurement server answers
// the same small set of questions millions of times; resolving and
// re-packing each one is pure waste. The cache stores fully wire-encoded
// responses keyed by (canonical name, qtype, EDNS bucket) with the ID
// and RD bit zeroed, and the hot path patches those two fields into a
// per-worker output buffer — a memcpy plus three bytes instead of a zone
// walk and a pack.
//
// Entries are valid for a single catalog generation: AddZone bumps
// Catalog.Generation, and the first lookup under a new generation
// flushes everything. Only plain IN-class single-question queries are
// cached; anything unusual takes the slow path.

// maxCachedResponses bounds the cache; on overflow it is flushed
// wholesale, which is simpler than eviction and harmless here because a
// measurement world's question set is far smaller than the bound.
const maxCachedResponses = 8192

// respKey identifies one packed response. edns is the applied response
// size cap (which the server also advertises back), or 0 for queries
// without EDNS0; distinct advertised sizes produce distinct OPT records
// and truncation points, so they must not share bytes.
type respKey struct {
	name string
	typ  Type
	edns uint16
}

// respEntry holds the wire-encoded answer with ID=0 and RD=0. trunc is
// non-nil when the full answer exceeds the key's UDP cap; UDP queries
// then get the truncated form while TCP always gets full.
type respEntry struct {
	full  []byte
	trunc []byte
}

type respCache struct {
	mu  sync.RWMutex
	gen uint64
	m   map[respKey]*respEntry
}

// get returns the entry for key if it was built under catalog generation
// gen.
func (c *respCache) get(key respKey, gen uint64) *respEntry {
	c.mu.RLock()
	var e *respEntry
	if c.gen == gen {
		e = c.m[key]
	}
	c.mu.RUnlock()
	return e
}

// put stores an entry built under catalog generation gen, flushing the
// cache when the generation moved or the bound is hit.
func (c *respCache) put(key respKey, gen uint64, e *respEntry) {
	c.mu.Lock()
	if c.m == nil || c.gen != gen || len(c.m) >= maxCachedResponses {
		c.m = make(map[respKey]*respEntry, 256)
		c.gen = gen
	}
	c.m[key] = e
	c.mu.Unlock()
}

// handleCached answers a plain single-question IN query from the packed
// cache, building and storing the entry on miss. limit and hasEDNS are
// as computed by Server.udpLimit for this query.
func (s *Server) handleCached(st *handleState, m *Message, udp bool, limit int, hasEDNS bool) []byte {
	q := m.Questions[0]
	key := respKey{name: q.Name, typ: q.Type}
	if hasEDNS {
		key.edns = uint16(limit)
	}
	// Capture the generation before resolving: if the catalog mutates
	// mid-build, the entry lands under the old generation and is never
	// served afterwards.
	gen := s.cfg.Catalog.Generation()
	e := s.cache.get(key, gen)
	if e == nil {
		e = s.buildEntry(q, limit, hasEDNS)
		if e == nil {
			// Pack failure; slow path already logged — answer SERVFAIL.
			fail := m.Reply()
			fail.Header.RCode = RCodeServFail
			b, _ := fail.Pack()
			return b
		}
		s.cache.put(key, gen, e)
	}
	b := e.full
	if udp && e.trunc != nil {
		b = e.trunc
	}
	// Patch the query's ID and RD bit into a copy; everything else in the
	// header was packed with ID=0, RD=0.
	st.out = append(st.out[:0], b...)
	st.out[0], st.out[1] = byte(m.Header.ID>>8), byte(m.Header.ID)
	if m.Header.RecursionDesired {
		st.out[2] |= 0x01
	}
	return st.out
}

// buildEntry resolves and packs the response for key template (q, limit,
// hasEDNS) with ID and RD zeroed. The truncated form is built eagerly
// whenever the full answer exceeds the cap, since the same entry serves
// both UDP and TCP. nil reports a pack failure.
func (s *Server) buildEntry(q Question, limit int, hasEDNS bool) *respEntry {
	resp := s.cfg.Catalog.Resolve(q)
	if hasEDNS {
		resp.SetEDNS0(uint16(limit))
	}
	full, err := resp.Pack()
	if err != nil {
		s.logf("pack response: %v", err)
		return nil
	}
	e := &respEntry{full: full}
	if len(full) > limit {
		trunc := &Message{
			Header: Header{
				Response:      true,
				OpCode:        OpQuery,
				RCode:         resp.Header.RCode,
				Authoritative: resp.Header.Authoritative,
				Truncated:     true,
			},
			Questions: []Question{q},
		}
		if hasEDNS {
			trunc.SetEDNS0(uint16(limit))
		}
		e.trunc, err = trunc.Pack()
		if err != nil {
			s.logf("pack truncated response: %v", err)
			return nil
		}
	}
	return e
}
