package dns

import (
	"bytes"
	"context"
	"net"
	"reflect"
	"runtime"
	"testing"
	"time"
)

func TestAppendPackMatchesPack(t *testing.T) {
	msgs := []*Message{
		sampleMessage(),
		NewQuery(0x1234, "example.com", TypeMX),
		{Header: Header{Response: true, RCode: RCodeNXDomain}},
	}
	for _, m := range msgs {
		want, err := m.Pack()
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.AppendPack(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("AppendPack(nil) != Pack for %v", m.Questions)
		}
		// Packing after a prefix must produce the same message bytes:
		// compression pointers are message-relative, not buffer-relative.
		prefix := []byte{0xDE, 0xAD, 0xBE, 0xEF}
		got, err = m.AppendPack(append([]byte(nil), prefix...))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got[:4], prefix) {
			t.Error("AppendPack overwrote the prefix")
		}
		if !bytes.Equal(got[4:], want) {
			t.Error("AppendPack after prefix produced different message bytes")
		}
		// And the suffix must decode back to the same message.
		rt, err := Unpack(got[4:])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rt, m) {
			t.Errorf("prefix-packed message did not round-trip:\ngot  %+v\nwant %+v", rt, m)
		}
	}
}

func TestScratchUnpackMatchesUnpack(t *testing.T) {
	// Decoding different messages through one reused scratch and Message
	// must be indistinguishable from fresh Unpack calls — including nil
	// (not empty) sections.
	wires := [][]byte{}
	for _, m := range []*Message{
		sampleMessage(),
		NewQuery(7, "a.example.org", TypeA),
		{Header: Header{Response: true, RCode: RCodeRefused}},
		sampleMessage(),
	} {
		b, err := m.Pack()
		if err != nil {
			t.Fatal(err)
		}
		wires = append(wires, b)
	}
	var scratch UnpackScratch
	var reused Message
	for i, wire := range wires {
		if err := scratch.Unpack(wire, &reused); err != nil {
			t.Fatalf("wire %d: %v", i, err)
		}
		want, err := Unpack(wire)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(&reused, want) {
			t.Errorf("wire %d: scratch decode differs:\ngot  %+v\nwant %+v", i, &reused, want)
		}
	}
}

func TestPackZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector randomizes sync.Pool, distorting alloc counts")
	}
	m := sampleMessage()
	var buf []byte
	allocs := testing.AllocsPerRun(100, func() {
		var err error
		buf, err = m.AppendPack(buf[:0])
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("AppendPack steady state: %.1f allocs/op, want 0", allocs)
	}
}

func TestUnpackZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector randomizes sync.Pool, distorting alloc counts")
	}
	wire, err := sampleMessage().Pack()
	if err != nil {
		t.Fatal(err)
	}
	var scratch UnpackScratch
	var m Message
	allocs := testing.AllocsPerRun(100, func() {
		if err := scratch.Unpack(wire, &m); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("scratch Unpack steady state: %.1f allocs/op, want 0", allocs)
	}
}

func BenchmarkPack(b *testing.B) {
	m := sampleMessage()
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = m.AppendPack(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnpack(b *testing.B) {
	wire, err := sampleMessage().Pack()
	if err != nil {
		b.Fatal(err)
	}
	var scratch UnpackScratch
	var m Message
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := scratch.Unpack(wire, &m); err != nil {
			b.Fatal(err)
		}
	}
}

// benchExchange measures queries through a live loopback UDP server, with
// 32 goroutines sharing either per-query dialing or one transport.
func benchExchange(b *testing.B, shared bool) {
	cat := NewCatalog()
	z := NewZone("example.com")
	z.MustAdd(RR{Name: "example.com.", Type: TypeMX, TTL: 300, Data: MXData{Preference: 10, Exchange: "mx1.example.com."}})
	z.MustAdd(RR{Name: "mx1.example.com.", Type: TypeA, TTL: 300, Data: AData{Addr: mustAddr("192.0.2.10")}})
	cat.AddZone(z)
	srv, err := NewServer(ServerConfig{Catalog: cat})
	if err != nil {
		b.Fatal(err)
	}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.ServeUDP(pc)
	defer srv.Close()
	addr := pc.LocalAddr().String()

	var tr *Transport
	if shared {
		tr = NewTransport(addr)
		defer tr.Close()
	}
	ctx := context.Background()
	// RunParallel spawns p*GOMAXPROCS goroutines; aim for 32 concurrent
	// resolvers, the scan pipeline's fan-out.
	b.SetParallelism(max(1, (32+runtime.GOMAXPROCS(0)-1)/runtime.GOMAXPROCS(0)))
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		cl := &Client{Server: addr, Timeout: 2 * time.Second, Retries: 2, Transport: tr}
		for pb.Next() {
			resp, err := cl.Exchange(ctx, "example.com", TypeMX)
			if err != nil {
				b.Error(err)
				return
			}
			if len(resp.Answers) != 1 {
				b.Errorf("answers = %d", len(resp.Answers))
				return
			}
		}
	})
}

func BenchmarkExchange(b *testing.B) {
	b.Run("dial", func(b *testing.B) { benchExchange(b, false) })
	b.Run("transport", func(b *testing.B) { benchExchange(b, true) })
}

func BenchmarkServeUDP(b *testing.B) {
	// Drive the server's handle path directly (no sockets): the packed
	// query is what a read loop would hand a worker.
	srv, err := NewServer(ServerConfig{Catalog: testBenchCatalog()})
	if err != nil {
		b.Fatal(err)
	}
	query := NewQuery(42, "example.com", TypeMX)
	wire, err := query.Pack()
	if err != nil {
		b.Fatal(err)
	}
	st := new(handleState)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if resp := srv.handle(st, wire, true); resp == nil {
			b.Fatal("nil response")
		}
	}
}

func testBenchCatalog() *Catalog {
	cat := NewCatalog()
	z := NewZone("example.com")
	z.MustAdd(RR{Name: "example.com.", Type: TypeMX, TTL: 300, Data: MXData{Preference: 10, Exchange: "mx1.example.com."}})
	z.MustAdd(RR{Name: "example.com.", Type: TypeMX, TTL: 300, Data: MXData{Preference: 20, Exchange: "mx2.example.com."}})
	z.MustAdd(RR{Name: "mx1.example.com.", Type: TypeA, TTL: 300, Data: AData{Addr: mustAddr("192.0.2.10")}})
	z.MustAdd(RR{Name: "mx2.example.com.", Type: TypeA, TTL: 300, Data: AData{Addr: mustAddr("192.0.2.11")}})
	cat.AddZone(z)
	return cat
}
