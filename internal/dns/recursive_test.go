package dns

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"mxmap/internal/netsim"
)

// --- Cache unit tests -------------------------------------------------

func TestCacheGetReturnsCopy(t *testing.T) {
	c := NewCache()
	in := cachedMsg(60)
	c.Put("x.test", TypeA, in)
	// Mutating the Put argument after the fact must not reach the cache.
	in.Header.ID = 0xBEEF
	in.Answers[0].Name = "poisoned.test."

	got, ok := c.Get("x.test", TypeA)
	if !ok {
		t.Fatal("entry missing")
	}
	if got.Header.ID == 0xBEEF || got.Answers[0].Name != "x.test." {
		t.Errorf("cache aliases Put argument: %+v", got.Answers[0])
	}
	// Mutating a returned copy must not poison later hits.
	got.Header.ID = 0xDEAD
	got.Answers[0].TTL = 9999
	got.Answers = append(got.Answers[:0], RR{Name: "evil.test."})

	again, ok := c.Get("x.test", TypeA)
	if !ok {
		t.Fatal("entry missing on second hit")
	}
	if again.Header.ID == 0xDEAD || len(again.Answers) != 1 || again.Answers[0].Name != "x.test." {
		t.Errorf("cache shares memory with callers: %+v", again)
	}
}

func TestCacheTTLDecayOnHit(t *testing.T) {
	now := time.Unix(1000, 0)
	c := NewCache()
	c.Now = func() time.Time { return now }
	msg := cachedMsg(60)
	msg.Authority = []RR{{Name: "test.", Type: TypeNS, Class: ClassIN, TTL: 300,
		Data: NSData{Host: "ns.test."}}}
	c.Put("x.test", TypeA, msg)

	now = now.Add(50 * time.Second)
	got, lk := c.Lookup("x.test", TypeA, false)
	if lk.State != CacheFresh {
		t.Fatalf("state = %v, want fresh", lk.State)
	}
	if got.Answers[0].TTL != 10 {
		t.Errorf("answer TTL = %d after 50s of a 60s entry, want 10", got.Answers[0].TTL)
	}
	if got.Authority[0].TTL != 10 {
		t.Errorf("authority TTL = %d, want clamped to remaining 10", got.Authority[0].TTL)
	}
	if lk.Age != 50*time.Second || lk.Remaining != 10*time.Second || lk.OriginalTTL != 60*time.Second {
		t.Errorf("lookup metadata = %+v", lk)
	}
}

func TestCacheStaleLookup(t *testing.T) {
	now := time.Unix(1000, 0)
	c := NewCache()
	c.Now = func() time.Time { return now }
	c.Put("x.test", TypeA, cachedMsg(60))

	now = now.Add(61 * time.Second)
	if _, lk := c.Lookup("x.test", TypeA, false); lk.State != CacheMiss {
		t.Errorf("non-stale lookup served expired entry: %v", lk.State)
	}
	got, lk := c.Lookup("x.test", TypeA, true)
	if lk.State != CacheStale {
		t.Fatalf("state = %v, want stale", lk.State)
	}
	if got.Answers[0].TTL != DefaultStaleTTL {
		t.Errorf("stale TTL = %d, want %d (RFC 8767 marking)", got.Answers[0].TTL, DefaultStaleTTL)
	}
	if lk.Remaining >= 0 {
		t.Errorf("stale Remaining = %v, want negative", lk.Remaining)
	}

	// Beyond the stale window the entry is purged even for stale lookups.
	now = now.Add(DefaultStaleWindow + time.Second)
	if _, lk := c.Lookup("x.test", TypeA, true); lk.State != CacheMiss {
		t.Errorf("entry served beyond stale window: %v", lk.State)
	}
	if st := c.Stats(); st.Expiries != 1 || st.StaleHits != 1 {
		t.Errorf("stats = %+v, want 1 expiry and 1 stale hit", st)
	}
	if c.Len() != 0 {
		t.Errorf("purged entry still stored: Len = %d", c.Len())
	}
}

func TestCacheLRURecency(t *testing.T) {
	c := NewCache()
	c.MaxEntries = 2 // one shard, bound 2: recency fully observable
	c.Put("a.test", TypeA, cachedMsg(60))
	c.Put("b.test", TypeA, cachedMsg(60))
	if _, ok := c.Get("a.test", TypeA); !ok {
		t.Fatal("a.test missing before eviction")
	}
	c.Put("c.test", TypeA, cachedMsg(60))
	if _, ok := c.Get("a.test", TypeA); !ok {
		t.Error("recently used a.test was evicted")
	}
	if _, ok := c.Get("b.test", TypeA); ok {
		t.Error("least recently used b.test survived")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
}

func TestCacheNegativeNODATA(t *testing.T) {
	now := time.Unix(1000, 0)
	c := NewCache()
	c.Now = func() time.Time { return now }
	// NODATA: NOERROR, no answers, SOA in authority (RFC 2308 type 2).
	nodata := &Message{
		Header: Header{Response: true, Authoritative: true},
		Authority: []RR{{Name: "test.", Type: TypeSOA, Class: ClassIN, TTL: 600, Data: SOAData{
			MName: "ns.test.", RName: "h.test.", Minimum: 45}}},
	}
	c.Put("x.test", TypeAAAA, nodata)

	got, lk := c.Lookup("x.test", TypeAAAA, false)
	if lk.State != CacheFresh || !lk.Negative {
		t.Fatalf("lookup = %+v, want fresh negative", lk)
	}
	if len(got.Answers) != 0 || len(got.Authority) != 1 {
		t.Errorf("NODATA shape changed: %+v", got)
	}
	if st := c.Stats(); st.NegativeHits != 1 {
		t.Errorf("NegativeHits = %d, want 1", st.NegativeHits)
	}
	now = now.Add(46 * time.Second)
	if _, lk := c.Lookup("x.test", TypeAAAA, false); lk.State != CacheMiss {
		t.Error("NODATA outlived SOA minimum")
	}
}

func TestCacheDelegationSuffixWalk(t *testing.T) {
	now := time.Unix(1000, 0)
	c := NewCache()
	c.Now = func() time.Time { return now }
	comNS := []netip.AddrPort{netip.MustParseAddrPort("192.5.6.30:53")}
	exNS := []netip.AddrPort{netip.MustParseAddrPort("10.1.1.53:53")}
	c.PutDelegation("com.", comNS, 3600)
	c.PutDelegation("example.com.", exNS, 3600)

	servers, zone, ok := c.Delegation("mx1.example.com.")
	if !ok || zone != "example.com." || servers[0] != exNS[0] {
		t.Errorf("deepest cut = %v %q %v, want example.com.", servers, zone, ok)
	}
	servers, zone, ok = c.Delegation("other.com.")
	if !ok || zone != "com." || servers[0] != comNS[0] {
		t.Errorf("fallback cut = %v %q %v, want com.", servers, zone, ok)
	}
	if _, _, ok := c.Delegation("foo.net."); ok {
		t.Error("uncovered name returned a delegation")
	}
	if st := c.Stats(); st.DelegationHits != 2 {
		t.Errorf("DelegationHits = %d, want 2", st.DelegationHits)
	}
	// Delegations are served fresh only: after expiry the walk restarts
	// above the dead cut.
	now = now.Add(3601 * time.Second)
	if _, _, ok := c.Delegation("mx1.example.com."); ok {
		t.Error("expired delegation served")
	}
}

func TestCacheDelegationTTLFloor(t *testing.T) {
	now := time.Unix(1000, 0)
	c := NewCache()
	c.Now = func() time.Time { return now }
	// A 1-second referral TTL would force constant re-walks; the cache
	// floors delegation lifetimes at minDelegationTTL.
	c.PutDelegation("com.", []netip.AddrPort{netip.MustParseAddrPort("192.5.6.30:53")}, 1)
	now = now.Add(minDelegationTTL - time.Second)
	if _, _, ok := c.Delegation("x.com."); !ok {
		t.Error("floored delegation expired early")
	}
	now = now.Add(2 * time.Second)
	if _, _, ok := c.Delegation("x.com."); ok {
		t.Error("delegation served past the floor")
	}
}

// TestCacheRaceHammer hammers every cache entry point concurrently; its
// assertions are the race detector's (run under -race in the cache
// verify tier).
func TestCacheRaceHammer(t *testing.T) {
	c := NewCache()
	c.MaxEntries = 64 // small enough that eviction churns constantly
	servers := []netip.AddrPort{netip.MustParseAddrPort("10.0.0.1:53")}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				name := fmt.Sprintf("d%d.test", (w*31+i)%97)
				switch i % 5 {
				case 0:
					c.Put(name, TypeA, cachedMsg(60))
				case 1:
					if msg, ok := c.Get(name, TypeA); ok {
						msg.Header.ID = uint16(i) // private copy: must be safe
						msg.Answers[0].TTL = 1
					}
				case 2:
					c.Lookup(name, TypeA, true)
				case 3:
					c.PutDelegation(name, servers, 300)
				default:
					c.Delegation("sub." + name)
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Errorf("bound violated under concurrency: %d", c.Len())
	}
}

// --- Resolver integration tests ---------------------------------------

// gatedConn delays all reads until the gate closes, letting coalescing
// tests hold a wire exchange open while concurrent queries pile up.
type gatedConn struct {
	net.Conn
	gate <-chan struct{}
}

func (c gatedConn) Read(p []byte) (int, error) {
	<-c.gate
	return c.Conn.Read(p)
}

// startSingleZone serves one catalog as a combined root+authoritative
// server at rootIP on a fresh fabric.
func startSingleZone(t *testing.T, z *Zone) *netsim.Network {
	t.Helper()
	n := netsim.New()
	cat := NewCatalog()
	cat.AddZone(z)
	startAuthServer(t, n, rootIP, cat)
	return n
}

func TestIterativeCoalescing(t *testing.T) {
	z := NewZone(".")
	z.MustAdd(RR{Name: "hot.test.", Type: TypeMX, TTL: 60, Data: MXData{Preference: 10, Exchange: "mx.hot.test."}})
	n := startSingleZone(t, z)

	gate := make(chan struct{})
	r := &IterativeResolver{
		Roots:   []netip.AddrPort{netip.MustParseAddrPort(rootIP + ":53")},
		Timeout: 10 * time.Second,
		Cache:   NewCache(),
		DialContext: func(ctx context.Context, network, address string) (net.Conn, error) {
			conn, err := n.DialUDP(netip.MustParseAddrPort(address))
			if err != nil {
				return nil, err
			}
			return gatedConn{Conn: conn, gate: gate}, nil
		},
	}
	defer r.Close()

	const K = 8
	var wg sync.WaitGroup
	errs := make([]error, K)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = r.LookupMX(context.Background(), "hot.test")
		}(i)
	}
	// Hold the response until every follower has attached to the
	// leader's flight, then let the single exchange complete.
	deadline := time.Now().Add(5 * time.Second)
	for r.Stats().Coalesced != K-1 {
		if time.Now().After(deadline) {
			t.Fatalf("followers never coalesced: %+v", r.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}

	st := r.Stats()
	want := ResolverStats{Queries: K, CacheMisses: K, Coalesced: K - 1, WireQueries: 1}
	if st != want {
		t.Errorf("stats = %+v, want %+v", st, want)
	}
	// The shared answer landed in the cache for everyone after.
	if _, err := r.LookupMX(context.Background(), "hot.test"); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.CacheHits != 1 || st.WireQueries != 1 {
		t.Errorf("post-coalesce hit: %+v", st)
	}
}

func TestIterativeSharedSuffixWalk(t *testing.T) {
	itn := buildIterTestNet(t)
	r := itn.resolver()
	r.Cache = NewCache()
	ctx := context.Background()

	if _, err := r.LookupA(ctx, "mx1.example.com"); err != nil {
		t.Fatal(err)
	}
	cold := itn.queries.Load()
	if cold != 3 {
		t.Fatalf("cold walk = %d exchanges, want 3 (root, TLD, authoritative)", cold)
	}
	// A sibling name under the same zone reuses the cached cut: one
	// exchange, straight to the deepest known authority.
	if _, err := r.LookupA(ctx, "dns.example.com"); err != nil {
		t.Fatal(err)
	}
	if warm := itn.queries.Load() - cold; warm != 1 {
		t.Errorf("sibling lookup = %d exchanges, want 1", warm)
	}
	if st := r.Cache.Stats(); st.DelegationHits != 1 {
		t.Errorf("DelegationHits = %d, want 1", st.DelegationHits)
	}
}

// TestChaosServeStaleAllUpstreamsDead is the acceptance chaos test: with
// every server in the hierarchy blackholed and all cached data expired,
// queries are answered from stale entries — positive and negative alike
// — with RFC 8767 TTL marking, and every counter accounted for exactly.
func TestChaosServeStaleAllUpstreamsDead(t *testing.T) {
	itn := buildIterTestNet(t)
	var mu sync.Mutex
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	r := itn.resolver()
	r.Cache = NewCache()
	r.Cache.Now = clock
	r.PrefetchMinHits = -1 // keep the counter ledger exact
	defer r.Close()
	ctx := context.Background()

	// Warm phase: one positive (A, TTL 1) and one negative (NXDOMAIN,
	// SOA minimum 300) answer.
	addrs, err := r.LookupA(ctx, "mx1.example.com")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.LookupA(ctx, "missing.example.com"); !errors.Is(err, ErrNXDomain) {
		t.Fatalf("warm negative err = %v, want ErrNXDomain", err)
	}

	// Outage phase: expire everything (302s clears the 1s answer, the
	// 300s negative, and the 30s-floored delegations), then kill every
	// upstream in the hierarchy.
	advance(302 * time.Second)
	for _, ip := range []string{rootIP, comIP, netIP, auth1, auth2} {
		itn.net.SetFault(netip.MustParseAddr(ip), netsim.FaultBlackhole)
	}
	r.Timeout = 50 * time.Millisecond

	staleMsg, err := r.Query(ctx, "mx1.example.com", TypeA)
	if err != nil {
		t.Fatalf("serve-stale positive: %v", err)
	}
	if got := staleMsg.Answers[0].Data.(AData).Addr; got != addrs[0] {
		t.Errorf("stale answer = %v, want %v", got, addrs[0])
	}
	if staleMsg.Answers[0].TTL != DefaultStaleTTL {
		t.Errorf("stale TTL = %d, want %d", staleMsg.Answers[0].TTL, DefaultStaleTTL)
	}
	// Stale NXDOMAIN keeps its meaning through the resolver surface.
	if _, err := r.LookupA(ctx, "missing.example.com"); !errors.Is(err, ErrNXDomain) {
		t.Errorf("stale negative err = %v, want ErrNXDomain", err)
	}

	// Exact ledger. Warm phase: 3 exchanges for the cold walk, then 1
	// for the NXDOMAIN via the cached example.com cut. Outage phase: the
	// expired delegations force both queries back to the (dead) root —
	// one failed exchange each — before falling back to stale data.
	rs := r.Stats()
	wantRS := ResolverStats{Queries: 4, CacheMisses: 4, StaleServed: 2, WireQueries: 6}
	if rs != wantRS {
		t.Errorf("resolver stats = %+v, want %+v", rs, wantRS)
	}
	cs := r.Cache.Stats()
	wantCS := CacheStats{Misses: 4, StaleHits: 2, DelegationHits: 1, Puts: 4}
	if cs != wantCS {
		t.Errorf("cache stats = %+v, want %+v", cs, wantCS)
	}
}

func TestIterativePrefetch(t *testing.T) {
	z := NewZone(".")
	z.MustAdd(RR{Name: "hot.test.", Type: TypeMX, TTL: 100, Data: MXData{Preference: 10, Exchange: "mx.hot.test."}})
	n := startSingleZone(t, z)

	var mu sync.Mutex
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	r := &IterativeResolver{
		Roots:   []netip.AddrPort{netip.MustParseAddrPort(rootIP + ":53")},
		Timeout: 2 * time.Second,
		Cache:   &Cache{MaxEntries: 64, Now: clock},
		DialContext: func(ctx context.Context, network, address string) (net.Conn, error) {
			return n.DialUDP(netip.MustParseAddrPort(address))
		},
	}
	defer r.Close()
	ctx := context.Background()

	// Miss, then three fresh hits: the entry is now hot but nowhere near
	// expiry, so no prefetch fires.
	for i := 0; i < 4; i++ {
		if _, err := r.LookupMX(ctx, "hot.test"); err != nil {
			t.Fatal(err)
		}
	}
	if st := r.Stats(); st.Prefetches != 0 || st.WireQueries != 1 {
		t.Fatalf("prefetch fired early: %+v", st)
	}

	// A hit inside the final tenth of the TTL triggers a background
	// refresh for the hot entry.
	advance(91 * time.Second)
	if _, err := r.LookupMX(ctx, "hot.test"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for r.Stats().Prefetches != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("prefetch never completed: %+v", r.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	// Past the original expiry the refreshed entry still serves fresh —
	// steady-state hot queries never block on the wire.
	advance(60 * time.Second)
	if _, err := r.LookupMX(ctx, "hot.test"); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.CacheHits != 5 || st.CacheMisses != 1 || st.WireQueries != 2 {
		t.Errorf("stats = %+v, want 5 hits / 1 miss / 2 wire", st)
	}
}
