package dns

import (
	"fmt"
	"net/netip"
	"sync"
)

// This file is the allocation-free fast path of the wire codec. Packing
// goes through pooled packers whose compression maps are cleared and
// reused; unpacking goes through an UnpackScratch that interns decoded
// names and boxed RData values, so the steady-state encode/decode cycle
// of the measurement hot loop (the same exchanges, owner names and
// record shapes over and over) touches the allocator not at all.
// Message.Pack and Unpack remain as thin wrappers in message.go.

var packerPool = sync.Pool{New: func() any { return newPacker() }}

// AppendPack serializes the message to wire format, appending to buf and
// returning the extended slice. Compression pointers are relative to the
// start of the appended message, so packing after a prefix (such as a
// TCP length header) is well-defined. With a reused buffer this performs
// zero heap allocations in steady state.
func (m *Message) AppendPack(buf []byte) ([]byte, error) {
	p := packerPool.Get().(*packer)
	p.buf = buf
	p.base = len(buf)
	clear(p.offsets)
	err := m.appendPack(p)
	out := p.buf
	p.buf = nil
	packerPool.Put(p)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// internLimit bounds the two intern tables of an UnpackScratch; past it
// the table is dropped and re-grown, so adversarial name churn cannot
// hold unbounded memory.
const internLimit = 8192

// An UnpackScratch holds reusable decode state: a name scratch buffer
// and intern tables for decoded names and boxed RData values. With a
// scratch and a reused Message, Unpack performs zero heap allocations in
// steady state (for the record types on the measurement hot path: A,
// AAAA, NS, CNAME, PTR, MX, TXT, OPT, SOA).
//
// A scratch is not safe for concurrent use; give each goroutine its own.
// Messages decoded through one scratch share interned strings and RData
// values, all of which are immutable by convention.
type UnpackScratch struct {
	nbuf  []byte            // name decode scratch
	key   []byte            // rdata intern key scratch
	names map[string]string // interned decoded names
	data  map[string]RData  // interned boxed rdata, keyed by type+content
}

var unpackScratchPool = sync.Pool{New: func() any { return new(UnpackScratch) }}

// name decodes a (possibly compressed) name and returns its interned
// canonical string.
func (s *UnpackScratch) name(u *unpacker) (string, error) {
	b, err := u.nameInto(s.nbuf[:0])
	s.nbuf = b
	if err != nil {
		return "", err
	}
	if len(b) == 0 {
		return ".", nil
	}
	if v, ok := s.names[string(b)]; ok {
		return v, nil
	}
	if s.names == nil || len(s.names) >= internLimit {
		s.names = make(map[string]string, 64)
	}
	v := string(b)
	s.names[v] = v
	return v, nil
}

// intern returns the cached boxed RData for key, or boxes the value
// produced by mk and caches it. Boxing an RData into an interface is an
// allocation; reusing the first boxing for identical content is what
// makes repeated decodes free.
func (s *UnpackScratch) intern(key []byte, mk func() RData) RData {
	if v, ok := s.data[string(key)]; ok {
		return v
	}
	if s.data == nil || len(s.data) >= internLimit {
		s.data = make(map[string]RData, 64)
	}
	v := mk()
	s.data[string(key)] = v
	return v
}

// Unpack parses a wire-format message into m, reusing m's section slices
// and s's intern tables. m is fully overwritten.
func (s *UnpackScratch) Unpack(b []byte, m *Message) error {
	u := unpacker{msg: b}
	m.Questions = m.Questions[:0]
	m.Answers = m.Answers[:0]
	m.Authority = m.Authority[:0]
	m.Additional = m.Additional[:0]
	id, err := u.uint16()
	if err != nil {
		return err
	}
	flags, err := u.uint16()
	if err != nil {
		return err
	}
	m.Header = Header{
		ID:                 id,
		Response:           flags&(1<<15) != 0,
		OpCode:             OpCode(flags >> 11 & 0xF),
		Authoritative:      flags&(1<<10) != 0,
		Truncated:          flags&(1<<9) != 0,
		RecursionDesired:   flags&(1<<8) != 0,
		RecursionAvailable: flags&(1<<7) != 0,
		RCode:              RCode(flags & 0xF),
	}
	var counts [4]uint16
	for i := range counts {
		if counts[i], err = u.uint16(); err != nil {
			return err
		}
	}
	for i := 0; i < int(counts[0]); i++ {
		var q Question
		if q.Name, err = s.name(&u); err != nil {
			return err
		}
		var t, c uint16
		if t, err = u.uint16(); err != nil {
			return err
		}
		if c, err = u.uint16(); err != nil {
			return err
		}
		q.Type, q.Class = Type(t), Class(c)
		m.Questions = append(m.Questions, q)
	}
	sections := [3]*[]RR{&m.Answers, &m.Authority, &m.Additional}
	for si, sec := range sections {
		for i := 0; i < int(counts[si+1]); i++ {
			rr, err := s.unpackRR(&u)
			if err != nil {
				return err
			}
			*sec = append(*sec, rr)
		}
	}
	if u.remaining() != 0 {
		return errTrailingBytes
	}
	// Empty sections stay nil so scratch decodes are structurally
	// identical to fresh ones (DeepEqual in tests, JSON round trips).
	if len(m.Questions) == 0 {
		m.Questions = nil
	}
	if len(m.Answers) == 0 {
		m.Answers = nil
	}
	if len(m.Authority) == 0 {
		m.Authority = nil
	}
	if len(m.Additional) == 0 {
		m.Additional = nil
	}
	return nil
}

func (s *UnpackScratch) unpackRR(u *unpacker) (RR, error) {
	var rr RR
	var err error
	if rr.Name, err = s.name(u); err != nil {
		return rr, err
	}
	var t, c uint16
	if t, err = u.uint16(); err != nil {
		return rr, err
	}
	if c, err = u.uint16(); err != nil {
		return rr, err
	}
	rr.Type, rr.Class = Type(t), Class(c)
	if rr.TTL, err = u.uint32(); err != nil {
		return rr, err
	}
	var rdlen uint16
	if rdlen, err = u.uint16(); err != nil {
		return rr, err
	}
	if rr.Data, err = s.unpackRData(u, rr.Type, int(rdlen)); err != nil {
		return rr, err
	}
	return rr, nil
}

// unpackRData reads length bytes of RDATA of the given type, interning
// the boxed result. Unknown types are returned as opaque rawData so
// messages round-trip. Intern keys are (type, decoded content) — never
// raw bytes that could contain compression pointers — so identical keys
// imply identical decoded values across messages.
func (s *UnpackScratch) unpackRData(u *unpacker, typ Type, length int) (RData, error) {
	end := u.off + length
	if end > len(u.msg) {
		return nil, ErrTruncatedMessage
	}
	k := append(s.key[:0], byte(typ>>8), byte(typ))
	defer func() { s.key = k[:0] }()
	var (
		data RData
		err  error
	)
	switch typ {
	case TypeA:
		var b []byte
		if b, err = u.bytes(4); err == nil {
			k = append(k, b...)
			data = s.intern(k, func() RData { return AData{Addr: netip.AddrFrom4([4]byte(b))} })
		}
	case TypeAAAA:
		var b []byte
		if b, err = u.bytes(16); err == nil {
			k = append(k, b...)
			data = s.intern(k, func() RData { return AAAAData{Addr: netip.AddrFrom16([16]byte(b))} })
		}
	case TypeNS:
		var host string
		if host, err = s.name(u); err == nil {
			k = append(k, host...)
			data = s.intern(k, func() RData { return NSData{Host: host} })
		}
	case TypeCNAME:
		var target string
		if target, err = s.name(u); err == nil {
			k = append(k, target...)
			data = s.intern(k, func() RData { return CNAMEData{Target: target} })
		}
	case TypePTR:
		var target string
		if target, err = s.name(u); err == nil {
			k = append(k, target...)
			data = s.intern(k, func() RData { return PTRData{Target: target} })
		}
	case TypeMX:
		var pref uint16
		var exch string
		if pref, err = u.uint16(); err == nil {
			if exch, err = s.name(u); err == nil {
				k = append(k, byte(pref>>8), byte(pref))
				k = append(k, exch...)
				data = s.intern(k, func() RData { return MXData{Preference: pref, Exchange: exch} })
			}
		}
	case TypeTXT:
		// TXT carries no compressible names, so its raw bytes are a sound
		// content key; validate structure before interning.
		raw := u.msg[u.off:end]
		for u.off < end {
			var n uint8
			if n, err = u.uint8(); err != nil {
				break
			}
			if _, err = u.bytes(int(n)); err != nil {
				break
			}
		}
		if err == nil {
			k = append(k, raw...)
			data = s.intern(k, func() RData {
				var ss []string
				for i := 0; i < len(raw); {
					n := int(raw[i])
					ss = append(ss, string(raw[i+1:i+1+n]))
					i += 1 + n
				}
				return TXTData{Strings: ss}
			})
		}
	case TypeOPT:
		// Skip any EDNS options; only the header fields matter here.
		// OPTData is zero-sized, so boxing it allocates nothing.
		if _, err = u.bytes(length); err == nil {
			data = OPTData{}
		}
	case TypeSOA:
		var mname, rname string
		if mname, err = s.name(u); err == nil {
			if rname, err = s.name(u); err == nil {
				fieldsOff := u.off
				var fields [5]uint32
				for i := range fields {
					if fields[i], err = u.uint32(); err != nil {
						break
					}
				}
				if err == nil {
					k = append(k, mname...)
					k = append(k, 0)
					k = append(k, rname...)
					k = append(k, 0)
					k = append(k, u.msg[fieldsOff:u.off]...)
					data = s.intern(k, func() RData {
						return SOAData{
							MName: mname, RName: rname,
							Serial: fields[0], Refresh: fields[1], Retry: fields[2],
							Expire: fields[3], Minimum: fields[4],
						}
					})
				}
			}
		}
	default:
		var b []byte
		if b, err = u.bytes(length); err == nil {
			// rawData copies bytes without interpreting pointers, so raw
			// content is its identity.
			k = append(k, b...)
			data = s.intern(k, func() RData { return rawData{typ: typ, data: append([]byte(nil), b...)} })
		}
	}
	if err != nil {
		return nil, err
	}
	if u.off != end {
		return nil, fmt.Errorf("%w: rdata length mismatch for %s", ErrBadRData, typ)
	}
	return data, nil
}
