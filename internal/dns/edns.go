package dns

// EDNS0 support (RFC 6891): the OPT pseudo-record lets clients advertise
// a UDP payload size beyond the classic 512-byte limit, which matters for
// MX answer sets of well-provisioned domains. The OPT record reuses the
// generic RR frame: CLASS carries the requestor's UDP payload size and
// TTL the extended RCODE and flags.

// TypeOPT is the EDNS0 pseudo-record type code.
const TypeOPT Type = 41

// OPTData is the (empty-bodied) RDATA of an OPT pseudo-record. The
// interesting values live in the RR header; use SetEDNS0/EDNS0UDPSize
// rather than building these by hand.
type OPTData struct{}

// RType implements RData.
func (OPTData) RType() Type { return TypeOPT }

// String implements RData.
func (OPTData) String() string { return "OPT" }

// DefaultEDNSSize is the payload size this package advertises and
// accepts by default, following current operational guidance (the
// DNS-flag-day value).
const DefaultEDNSSize = 1232

// MaxEDNSSize caps what a server will honor from clients.
const MaxEDNSSize = 4096

// SetEDNS0 attaches (or replaces) an OPT record advertising udpSize.
func (m *Message) SetEDNS0(udpSize uint16) {
	if udpSize < 512 {
		udpSize = 512
	}
	for i := range m.Additional {
		if m.Additional[i].Type == TypeOPT {
			m.Additional[i].Class = Class(udpSize)
			return
		}
	}
	m.Additional = append(m.Additional, RR{
		Name:  ".",
		Type:  TypeOPT,
		Class: Class(udpSize),
		Data:  OPTData{},
	})
}

// EDNS0UDPSize reports the advertised payload size of the message's OPT
// record, if present.
func (m *Message) EDNS0UDPSize() (uint16, bool) {
	for _, rr := range m.Additional {
		if rr.Type == TypeOPT {
			size := uint16(rr.Class)
			if size < 512 {
				size = 512
			}
			return size, true
		}
	}
	return 0, false
}
