package dns

import (
	"sync"
	"time"
)

// Cache is a TTL-respecting response cache for resolvers: positive
// answers live for the minimum TTL among their answer records, negative
// (NXDOMAIN/NODATA) answers for the SOA minimum when present. A bounded
// size with random-ish eviction keeps long measurement runs from growing
// without limit.
type Cache struct {
	// MaxEntries bounds the cache (default 4096).
	MaxEntries int
	// Now substitutes the clock for tests; nil uses time.Now.
	Now func() time.Time

	mu      sync.Mutex
	entries map[cacheKey]cacheEntry
}

type cacheKey struct {
	name string
	typ  Type
}

type cacheEntry struct {
	msg     *Message
	expires time.Time
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{MaxEntries: 4096, entries: make(map[cacheKey]cacheEntry)}
}

func (c *Cache) now() time.Time {
	if c.Now != nil {
		return c.Now()
	}
	return time.Now()
}

// Get returns a cached, unexpired response for (name, typ).
func (c *Cache) Get(name string, typ Type) (*Message, bool) {
	key := cacheKey{name: CanonicalName(name), typ: typ}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	if c.now().After(e.expires) {
		delete(c.entries, key)
		return nil, false
	}
	return e.msg, true
}

// Put stores a response under the TTL policy. Responses that carry no
// TTL signal (no answers and no SOA) are not cached.
func (c *Cache) Put(name string, typ Type, msg *Message) {
	ttl, ok := cacheTTL(msg)
	if !ok || ttl == 0 {
		return
	}
	const maxTTL = 24 * time.Hour
	d := time.Duration(ttl) * time.Second
	if d > maxTTL {
		d = maxTTL
	}
	key := cacheKey{name: CanonicalName(name), typ: typ}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.entries == nil {
		c.entries = make(map[cacheKey]cacheEntry)
	}
	max := c.MaxEntries
	if max <= 0 {
		max = 4096
	}
	if len(c.entries) >= max {
		// Evict an arbitrary entry; map iteration order serves as a cheap
		// randomized policy.
		for k := range c.entries {
			delete(c.entries, k)
			break
		}
	}
	c.entries[key] = cacheEntry{msg: msg, expires: c.now().Add(d)}
}

// Len reports the number of cached responses (including expired ones not
// yet touched).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// cacheTTL derives the cache lifetime of a response: the minimum answer
// TTL, or for negative responses the SOA minimum field per RFC 2308.
func cacheTTL(msg *Message) (uint32, bool) {
	if msg == nil {
		return 0, false
	}
	if len(msg.Answers) > 0 {
		min := msg.Answers[0].TTL
		for _, rr := range msg.Answers[1:] {
			if rr.TTL < min {
				min = rr.TTL
			}
		}
		return min, true
	}
	for _, rr := range msg.Authority {
		if soa, ok := rr.Data.(SOAData); ok {
			ttl := soa.Minimum
			if rr.TTL < ttl {
				ttl = rr.TTL
			}
			return ttl, true
		}
	}
	return 0, false
}
