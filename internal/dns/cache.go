package dns

import (
	"net/netip"
	"sync"
	"sync/atomic"
	"time"
)

// Cache is the recursive resolver's shared RRset cache. One instance is
// meant to be shared by every worker of a collection run: at measurement
// scale thousands of domains concentrate onto a handful of provider
// NS/MX infrastructures, so one wire exchange should serve the whole
// cohort.
//
// Semantics:
//
//   - Positive entries live for the minimum TTL among their answer
//     records; negative (NXDOMAIN/NODATA) entries for the SOA minimum
//     per RFC 2308.
//   - Hits return a private copy whose record TTLs are clamped to the
//     remaining lifetime — callers may patch IDs or header bits freely,
//     and a response cached 50s ago never claims its original TTL.
//   - Expired entries are retained for StaleWindow and can be served
//     explicitly (RFC 8767 serve-stale) with their TTLs stamped to
//     StaleTTL; plain Get never returns them.
//   - Delegation entries (zone → name-server addresses) share the same
//     bounded storage, so delegation state no longer grows without
//     limit over a run.
//
// Storage is sharded to keep lock contention low under a parallel
// collector, and bounded per shard with least-recently-used eviction.
// The clock is injectable for deterministic tests.
type Cache struct {
	// MaxEntries bounds the cache across all shards (default 4096).
	MaxEntries int
	// Now substitutes the clock for tests; nil uses time.Now.
	Now func() time.Time
	// StaleWindow is how long expired entries remain servable via
	// stale lookups (RFC 8767 §5 resolution recommendations). Zero
	// uses DefaultStaleWindow; negative disables serve-stale.
	StaleWindow time.Duration
	// StaleTTL is the TTL stamped on records served stale, signalling
	// "do not hold this long" to consumers (default DefaultStaleTTL).
	StaleTTL uint32

	once   sync.Once
	shards []*cacheShard

	hits, misses, staleHits   atomic.Uint64
	negativeHits, delegHits   atomic.Uint64
	puts, evictions, expiries atomic.Uint64
}

// Serve-stale defaults, following RFC 8767's recommendations: expired
// data stays usable for a bounded window, and is handed out with a
// short TTL so it is re-examined quickly.
const (
	DefaultStaleWindow = time.Hour
	DefaultStaleTTL    = 30
)

// Cache lifetime clamps.
const (
	maxCacheTTL = 24 * time.Hour
	// minDelegationTTL floors delegation lifetimes: referral NS sets
	// change rarely, and a 1-second delegation TTL would force constant
	// re-walks of the upper hierarchy.
	minDelegationTTL = 30 * time.Second
)

// CacheState classifies one lookup's outcome.
type CacheState uint8

// Lookup outcomes.
const (
	// CacheMiss: nothing usable cached.
	CacheMiss CacheState = iota
	// CacheFresh: an unexpired entry was returned.
	CacheFresh
	// CacheStale: an expired entry within the stale window was
	// returned (only when the lookup asked for stale data).
	CacheStale
)

// String names the state.
func (s CacheState) String() string {
	switch s {
	case CacheFresh:
		return "fresh"
	case CacheStale:
		return "stale"
	default:
		return "miss"
	}
}

// CacheLookup carries the metadata of one cache probe: what was found,
// how far through its lifetime it is, and how hot the entry runs. The
// resolver's prefetch policy keys off Remaining, OriginalTTL and Hits.
type CacheLookup struct {
	// State is the outcome; the other fields are meaningful only on
	// fresh or stale results.
	State CacheState
	// Age is the time since the entry was stored.
	Age time.Duration
	// Remaining is the time until expiry (negative when stale).
	Remaining time.Duration
	// OriginalTTL is the entry's full cache lifetime.
	OriginalTTL time.Duration
	// Hits is the number of fresh hits this entry has served,
	// including this one.
	Hits uint64
	// Negative reports an RFC 2308 negative entry (NXDOMAIN/NODATA).
	Negative bool
}

// CacheStats is a point-in-time snapshot of the cache's counters.
// Chaos and bench tests assert these exactly against scripted load.
type CacheStats struct {
	// Hits counts fresh answer hits (NegativeHits included).
	Hits uint64
	// Misses counts probes that found nothing servable fresh.
	Misses uint64
	// StaleHits counts expired entries served under RFC 8767.
	StaleHits uint64
	// NegativeHits counts fresh hits on RFC 2308 negative entries.
	NegativeHits uint64
	// DelegationHits counts suffix-walk hits on cached zone cuts.
	DelegationHits uint64
	// Puts counts stored entries (cacheable responses + delegations).
	Puts uint64
	// Evictions counts entries displaced by the size bound; Expiries
	// counts entries dropped because they aged beyond the stale window.
	Evictions, Expiries uint64
}

type entryKind uint8

const (
	kindRRset entryKind = iota
	kindDelegation
)

type cacheKey struct {
	name string
	typ  Type
	kind entryKind
}

// cacheEntry is one cached RRset response or delegation. All fields are
// guarded by the owning shard's lock.
type cacheEntry struct {
	key cacheKey
	// msg is the stored response for kindRRset entries (a private
	// copy; never aliased to caller memory).
	msg *Message
	// servers are the zone-cut addresses for kindDelegation entries.
	servers []netip.AddrPort

	negative    bool
	prefetching bool
	hits        uint64

	stored  time.Time
	expires time.Time

	prev, next *cacheEntry // LRU list, head = most recent
}

// cacheShard is one lock domain: a map plus an LRU list bounded at
// `bound` entries.
type cacheShard struct {
	mu         sync.Mutex
	entries    map[cacheKey]*cacheEntry
	head, tail *cacheEntry
	bound      int
}

// NewCache returns an empty cache with default bounds.
func NewCache() *Cache {
	return &Cache{MaxEntries: 4096}
}

// init lays out the shards: a power-of-two count that keeps total
// capacity within MaxEntries (at most 64 shards, at least 2 entries per
// shard so per-shard LRU has room to express recency).
func (c *Cache) init() {
	c.once.Do(func() {
		max := c.MaxEntries
		if max <= 0 {
			max = 4096
		}
		n := 1
		for n*2 <= max/2 && n < 64 {
			n *= 2
		}
		bound := max / n
		if bound < 1 {
			bound = 1
		}
		c.shards = make([]*cacheShard, n)
		for i := range c.shards {
			c.shards[i] = &cacheShard{entries: make(map[cacheKey]*cacheEntry), bound: bound}
		}
	})
}

func (c *Cache) now() time.Time {
	if c.Now != nil {
		return c.Now()
	}
	return time.Now()
}

func (c *Cache) staleWindow() time.Duration {
	switch {
	case c.StaleWindow < 0:
		return 0
	case c.StaleWindow == 0:
		return DefaultStaleWindow
	default:
		return c.StaleWindow
	}
}

func (c *Cache) staleTTL() uint32 {
	if c.StaleTTL == 0 {
		return DefaultStaleTTL
	}
	return c.StaleTTL
}

// shardFor picks the shard by an FNV-1a hash of the key.
func (c *Cache) shardFor(key cacheKey) *cacheShard {
	c.init()
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key.name); i++ {
		h ^= uint64(key.name[i])
		h *= prime64
	}
	h ^= uint64(key.typ)<<8 | uint64(key.kind)
	h *= prime64
	return c.shards[h%uint64(len(c.shards))]
}

// Get returns a cached, unexpired response for (name, typ). The result
// is a private copy with TTLs decayed to the remaining lifetime.
func (c *Cache) Get(name string, typ Type) (*Message, bool) {
	msg, lk := c.Lookup(name, typ, false)
	return msg, lk.State == CacheFresh
}

// Lookup probes the cache for (name, typ). With serveStale set, an
// expired entry still inside the stale window is returned with its
// record TTLs stamped to StaleTTL; otherwise only fresh entries are
// served. The returned message is always a private copy.
func (c *Cache) Lookup(name string, typ Type, serveStale bool) (*Message, CacheLookup) {
	key := cacheKey{name: CanonicalName(name), typ: typ, kind: kindRRset}
	sh := c.shardFor(key)
	now := c.now()

	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.entries[key]
	if !ok {
		c.misses.Add(1)
		return nil, CacheLookup{State: CacheMiss}
	}
	switch {
	case !now.After(e.expires): // fresh
		e.hits++
		sh.moveFront(e)
		lk := CacheLookup{
			State:       CacheFresh,
			Age:         now.Sub(e.stored),
			Remaining:   e.expires.Sub(now),
			OriginalTTL: e.expires.Sub(e.stored),
			Hits:        e.hits,
			Negative:    e.negative,
		}
		msg := cloneMessage(e.msg)
		clampTTLs(msg, ttlSeconds(lk.Remaining))
		c.hits.Add(1)
		if e.negative {
			c.negativeHits.Add(1)
		}
		return msg, lk
	case now.Sub(e.expires) <= c.staleWindow(): // stale but servable
		if !serveStale {
			c.misses.Add(1)
			return nil, CacheLookup{State: CacheMiss}
		}
		lk := CacheLookup{
			State:       CacheStale,
			Age:         now.Sub(e.stored),
			Remaining:   e.expires.Sub(now),
			OriginalTTL: e.expires.Sub(e.stored),
			Hits:        e.hits,
			Negative:    e.negative,
		}
		msg := cloneMessage(e.msg)
		stampTTLs(msg, c.staleTTL())
		c.staleHits.Add(1)
		return msg, lk
	default: // beyond the stale window: gone
		sh.remove(e)
		c.expiries.Add(1)
		c.misses.Add(1)
		return nil, CacheLookup{State: CacheMiss}
	}
}

// Put stores a response under the TTL policy of cacheTTL. The message
// is copied; the caller keeps exclusive ownership of its argument.
// Responses that carry no TTL signal (no answers and no SOA) are not
// cached.
func (c *Cache) Put(name string, typ Type, msg *Message) {
	ttl, ok := cacheTTL(msg)
	if !ok || ttl == 0 {
		return
	}
	d := time.Duration(ttl) * time.Second
	if d > maxCacheTTL {
		d = maxCacheTTL
	}
	key := cacheKey{name: CanonicalName(name), typ: typ, kind: kindRRset}
	now := c.now()
	e := &cacheEntry{
		key:      key,
		msg:      cloneMessage(msg),
		negative: len(msg.Answers) == 0 || msg.Header.RCode == RCodeNXDomain,
		stored:   now,
		expires:  now.Add(d),
	}
	c.store(e)
}

// PutDelegation stores the name servers of a zone cut for ttl seconds
// (floored at minDelegationTTL — referral sets change rarely, and
// short delegation TTLs would force constant re-walks of the upper
// hierarchy).
func (c *Cache) PutDelegation(zone string, servers []netip.AddrPort, ttl uint32) {
	if len(servers) == 0 {
		return
	}
	d := time.Duration(ttl) * time.Second
	if d < minDelegationTTL {
		d = minDelegationTTL
	}
	if d > maxCacheTTL {
		d = maxCacheTTL
	}
	now := c.now()
	e := &cacheEntry{
		key:     cacheKey{name: CanonicalName(zone), typ: TypeNS, kind: kindDelegation},
		servers: append([]netip.AddrPort(nil), servers...),
		stored:  now,
		expires: now.Add(d),
	}
	c.store(e)
}

// Delegation returns the deepest cached zone cut covering name, walking
// the suffix chain from the name itself toward the root. Delegations are
// served fresh only — an expired cut means re-walking from above it.
func (c *Cache) Delegation(name string) ([]netip.AddrPort, string, bool) {
	now := c.now()
	for zone := CanonicalName(name); zone != "."; zone = Parent(zone) {
		key := cacheKey{name: zone, typ: TypeNS, kind: kindDelegation}
		sh := c.shardFor(key)
		sh.mu.Lock()
		e, ok := sh.entries[key]
		if ok && !now.After(e.expires) {
			servers := append([]netip.AddrPort(nil), e.servers...)
			e.hits++
			sh.moveFront(e)
			sh.mu.Unlock()
			c.delegHits.Add(1)
			return servers, zone, true
		}
		if ok && now.Sub(e.expires) > c.staleWindow() {
			sh.remove(e)
			c.expiries.Add(1)
		}
		sh.mu.Unlock()
	}
	return nil, "", false
}

// FlushDelegations drops every cached zone cut (for tests and
// long-lived resolvers spanning zone changes); answer entries survive.
func (c *Cache) FlushDelegations() {
	c.init()
	for _, sh := range c.shards {
		sh.mu.Lock()
		for _, e := range sh.entries {
			if e.key.kind == kindDelegation {
				sh.remove(e)
			}
		}
		sh.mu.Unlock()
	}
}

// store inserts e, evicting the least recently used entry of its shard
// when full.
func (c *Cache) store(e *cacheEntry) {
	sh := c.shardFor(e.key)
	sh.mu.Lock()
	if old, ok := sh.entries[e.key]; ok {
		sh.remove(old)
	}
	for len(sh.entries) >= sh.bound && sh.tail != nil {
		sh.remove(sh.tail)
		c.evictions.Add(1)
	}
	sh.entries[e.key] = e
	sh.pushFront(e)
	sh.mu.Unlock()
	c.puts.Add(1)
}

// tryStartPrefetch marks the entry as having a refresh in flight,
// returning false when none is warranted (absent, or already
// refreshing). The flag clears when the refresh Puts a replacement or
// the resolver calls clearPrefetch on failure.
func (c *Cache) tryStartPrefetch(name string, typ Type) bool {
	key := cacheKey{name: CanonicalName(name), typ: typ, kind: kindRRset}
	sh := c.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.entries[key]
	if !ok || e.prefetching {
		return false
	}
	e.prefetching = true
	return true
}

// clearPrefetch lowers the prefetching flag after a failed refresh so a
// later hit can try again.
func (c *Cache) clearPrefetch(name string, typ Type) {
	key := cacheKey{name: CanonicalName(name), typ: typ, kind: kindRRset}
	sh := c.shardFor(key)
	sh.mu.Lock()
	if e, ok := sh.entries[key]; ok {
		e.prefetching = false
	}
	sh.mu.Unlock()
}

// Len reports the number of cached entries (including expired ones not
// yet touched).
func (c *Cache) Len() int {
	c.init()
	total := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		total += len(sh.entries)
		sh.mu.Unlock()
	}
	return total
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Hits:           c.hits.Load(),
		Misses:         c.misses.Load(),
		StaleHits:      c.staleHits.Load(),
		NegativeHits:   c.negativeHits.Load(),
		DelegationHits: c.delegHits.Load(),
		Puts:           c.puts.Load(),
		Evictions:      c.evictions.Load(),
		Expiries:       c.expiries.Load(),
	}
}

// LRU list management; all called with the shard lock held.

func (sh *cacheShard) pushFront(e *cacheEntry) {
	e.prev, e.next = nil, sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

func (sh *cacheShard) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (sh *cacheShard) moveFront(e *cacheEntry) {
	if sh.head == e {
		return
	}
	sh.unlink(e)
	sh.pushFront(e)
}

func (sh *cacheShard) remove(e *cacheEntry) {
	delete(sh.entries, e.key)
	sh.unlink(e)
}

// cloneMessage deep-copies a message's header and record slices so the
// copy can be mutated (ID patching, header bits, TTL decay) without
// touching the original. RData values are shared: every concrete RData
// type in this package is treated as immutable once built.
func cloneMessage(m *Message) *Message {
	if m == nil {
		return nil
	}
	out := &Message{Header: m.Header}
	if m.Questions != nil {
		out.Questions = append([]Question(nil), m.Questions...)
	}
	if m.Answers != nil {
		out.Answers = append([]RR(nil), m.Answers...)
	}
	if m.Authority != nil {
		out.Authority = append([]RR(nil), m.Authority...)
	}
	if m.Additional != nil {
		out.Additional = append([]RR(nil), m.Additional...)
	}
	return out
}

// clampTTLs clamps every record TTL in the message to the remaining
// cache lifetime: a response cached 50 seconds ago must not be handed
// out still claiming its original TTL.
func clampTTLs(m *Message, remaining uint32) {
	for _, sec := range [][]RR{m.Answers, m.Authority, m.Additional} {
		for i := range sec {
			if sec[i].TTL > remaining {
				sec[i].TTL = remaining
			}
		}
	}
}

// stampTTLs sets every record TTL to ttl — the stale-answer marking of
// RFC 8767 §4 ("should not be held longer than 30 seconds").
func stampTTLs(m *Message, ttl uint32) {
	for _, sec := range [][]RR{m.Answers, m.Authority, m.Additional} {
		for i := range sec {
			sec[i].TTL = ttl
		}
	}
}

// ttlSeconds converts a remaining lifetime to whole seconds, rounding
// down, never below zero.
func ttlSeconds(d time.Duration) uint32 {
	if d <= 0 {
		return 0
	}
	return uint32(d / time.Second)
}

// cacheTTL derives the cache lifetime of a response: the minimum answer
// TTL, or for negative responses the SOA minimum field per RFC 2308.
func cacheTTL(msg *Message) (uint32, bool) {
	if msg == nil {
		return 0, false
	}
	if len(msg.Answers) > 0 {
		min := msg.Answers[0].TTL
		for _, rr := range msg.Answers[1:] {
			if rr.TTL < min {
				min = rr.TTL
			}
		}
		return min, true
	}
	for _, rr := range msg.Authority {
		if soa, ok := rr.Data.(SOAData); ok {
			ttl := soa.Minimum
			if rr.TTL < ttl {
				ttl = rr.TTL
			}
			return ttl, true
		}
	}
	return 0, false
}
