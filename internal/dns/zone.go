package dns

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// A Zone holds the authoritative records for one DNS zone apex and the
// names beneath it.
type Zone struct {
	// Origin is the zone apex in canonical form.
	Origin string

	mu sync.RWMutex
	// records maps canonical owner name -> type -> record set.
	records map[string]map[Type][]RR
}

// NewZone creates an empty zone rooted at origin.
func NewZone(origin string) *Zone {
	return &Zone{
		Origin:  CanonicalName(origin),
		records: make(map[string]map[Type][]RR),
	}
}

// Add inserts a record into the zone. The owner name must be within the
// zone, and record data must be consistent with the record type.
func (z *Zone) Add(rr RR) error {
	rr.Name = CanonicalName(rr.Name)
	if err := CheckName(rr.Name); err != nil {
		return fmt.Errorf("zone %s: %w", z.Origin, err)
	}
	if !IsSubdomain(rr.Name, z.Origin) {
		return fmt.Errorf("zone %s: record %s out of zone", z.Origin, rr.Name)
	}
	if rr.Data == nil || rr.Data.RType() != rr.Type {
		return fmt.Errorf("zone %s: record %s has mismatched data", z.Origin, rr.Name)
	}
	if rr.Class == 0 {
		rr.Class = ClassIN
	}
	z.mu.Lock()
	defer z.mu.Unlock()
	byType := z.records[rr.Name]
	if byType == nil {
		byType = make(map[Type][]RR)
		z.records[rr.Name] = byType
	}
	if rr.Type == TypeCNAME && (len(byType) > 1 || len(byType) == 1 && len(byType[TypeCNAME]) == 0) {
		return fmt.Errorf("zone %s: CNAME at %s conflicts with other data", z.Origin, rr.Name)
	}
	if rr.Type != TypeCNAME && len(byType[TypeCNAME]) > 0 {
		return fmt.Errorf("zone %s: data at %s conflicts with CNAME", z.Origin, rr.Name)
	}
	byType[rr.Type] = append(byType[rr.Type], rr)
	return nil
}

// MustAdd is Add but panics on error; for tests and generated worlds.
func (z *Zone) MustAdd(rr RR) {
	if err := z.Add(rr); err != nil {
		panic(err)
	}
}

// Remove deletes all records of the given type at name. Removing TypeANY
// deletes the name entirely.
func (z *Zone) Remove(name string, typ Type) {
	name = CanonicalName(name)
	z.mu.Lock()
	defer z.mu.Unlock()
	if typ == TypeANY {
		delete(z.records, name)
		return
	}
	if byType := z.records[name]; byType != nil {
		delete(byType, typ)
		if len(byType) == 0 {
			delete(z.records, name)
		}
	}
}

// LookupResult is the outcome of a zone lookup.
type LookupResult struct {
	// RCode is RCodeSuccess or RCodeNXDomain. A successful result with no
	// Answers is a NODATA response (name exists, type doesn't).
	RCode RCode
	// Answers holds matching records, including any CNAME chain walked.
	Answers []RR
	// Authority carries the SOA for negative responses, or the
	// delegation NS set when Delegated.
	Authority []RR
	// Delegated reports that the name falls under a zone cut: the zone
	// is not authoritative for it, Authority holds the child NS records
	// and Additional any available glue.
	Delegated bool
	// Additional carries glue addresses for a delegation.
	Additional []RR
}

// Lookup resolves (name, type) within the zone, following CNAME chains
// internal to the zone, distinguishing NXDOMAIN from NODATA, and
// returning referrals for names under a delegation point (an NS RRset at
// a name below the apex).
func (z *Zone) Lookup(name string, typ Type) LookupResult {
	z.mu.RLock()
	defer z.mu.RUnlock()
	var res LookupResult
	cur := CanonicalName(name)
	if del := z.delegationLocked(cur); del != "" {
		res.Delegated = true
		res.Authority = withOwner(z.records[del][TypeNS], del)
		for _, ns := range res.Authority {
			host := CanonicalName(ns.Data.(NSData).Host)
			for _, typ := range []Type{TypeA, TypeAAAA} {
				res.Additional = append(res.Additional, withOwner(z.records[host][typ], host)...)
			}
		}
		return res
	}
	const maxChase = 16 // bound CNAME chains to defend against cycles
	for i := 0; i < maxChase; i++ {
		byType, exists := z.records[cur]
		if !exists {
			byType, exists = z.wildcardLocked(cur)
		}
		if !exists {
			if len(res.Answers) > 0 {
				// Broken CNAME chain: return what we have.
				return res
			}
			res.RCode = RCodeNXDomain
			res.Authority = z.soaLocked()
			return res
		}
		if rrs, ok := byType[typ]; ok && typ != TypeCNAME {
			res.Answers = append(res.Answers, withOwner(rrs, cur)...)
			return res
		}
		if typ == TypeCNAME {
			res.Answers = append(res.Answers, withOwner(byType[TypeCNAME], cur)...)
			return res
		}
		if cnames, ok := byType[TypeCNAME]; ok && len(cnames) > 0 {
			res.Answers = append(res.Answers, withOwner(cnames[:1], cur)...)
			target := CanonicalName(cnames[0].Data.(CNAMEData).Target)
			if !IsSubdomain(target, z.Origin) {
				// Chain leaves the zone; the resolver must continue.
				return res
			}
			cur = target
			continue
		}
		// Name exists with other types: NODATA.
		res.Authority = z.soaLocked()
		return res
	}
	// CNAME chase limit exceeded; report server failure semantics upstream
	// by returning what was accumulated.
	return res
}

// delegationLocked returns the deepest zone cut covering name: a name
// strictly below the apex, at or above the queried name, that carries an
// NS RRset. It returns "" when the zone is authoritative for the name.
func (z *Zone) delegationLocked(name string) string {
	// Collect candidate ancestors from the queried name up to (but not
	// including) the apex, then check the deepest first.
	var candidates []string
	for cur := name; cur != z.Origin && cur != "."; cur = Parent(cur) {
		if !IsSubdomain(cur, z.Origin) {
			return ""
		}
		candidates = append(candidates, cur)
	}
	// The topmost cut wins: names below the first delegation encountered
	// from the apex belong to the child zone, even if deeper NS records
	// are stored (they would be occluded data).
	for i := len(candidates) - 1; i >= 0; i-- {
		if byType, ok := z.records[candidates[i]]; ok && len(byType[TypeNS]) > 0 {
			return candidates[i]
		}
	}
	return ""
}

// wildcardLocked finds a `*.<parent>` entry covering name, per RFC 1034
// §4.3.3 semantics (closest enclosing wildcard; the wildcard does not
// match the name it sits at).
func (z *Zone) wildcardLocked(name string) (map[Type][]RR, bool) {
	parent := Parent(name)
	for IsSubdomain(parent, z.Origin) {
		if byType, ok := z.records["*."+parent]; ok {
			return byType, true
		}
		// Stop once an existing name is hit: empty non-terminals shadow
		// wildcards above them only if they exist explicitly.
		if parent == z.Origin {
			break
		}
		parent = Parent(parent)
	}
	return nil, false
}

func (z *Zone) soaLocked() []RR {
	if byType, ok := z.records[z.Origin]; ok {
		if soa := byType[TypeSOA]; len(soa) > 0 {
			return append([]RR(nil), soa...)
		}
	}
	return nil
}

// withOwner copies rrs setting each owner to name (needed for wildcard
// synthesis where the stored owner is "*.parent").
func withOwner(rrs []RR, name string) []RR {
	out := make([]RR, len(rrs))
	for i, rr := range rrs {
		rr.Name = name
		out[i] = rr
	}
	return out
}

// Names returns all owner names in the zone, sorted.
func (z *Zone) Names() []string {
	z.mu.RLock()
	defer z.mu.RUnlock()
	names := make([]string, 0, len(z.records))
	for n := range z.records {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Records returns a sorted flat copy of every record in the zone.
func (z *Zone) Records() []RR {
	z.mu.RLock()
	defer z.mu.RUnlock()
	var out []RR
	for _, byType := range z.records {
		for _, rrs := range byType {
			out = append(out, rrs...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		if out[i].Type != out[j].Type {
			return out[i].Type < out[j].Type
		}
		return out[i].Data.String() < out[j].Data.String()
	})
	return out
}

// Len returns the total number of records in the zone.
func (z *Zone) Len() int {
	z.mu.RLock()
	defer z.mu.RUnlock()
	n := 0
	for _, byType := range z.records {
		for _, rrs := range byType {
			n += len(rrs)
		}
	}
	return n
}

// WriteTo emits the zone in a minimal zone-file presentation format
// readable by ParseZone. It implements io.WriterTo.
func (z *Zone) WriteTo(w io.Writer) (int64, error) {
	var total int64
	n, err := fmt.Fprintf(w, "$ORIGIN %s\n", z.Origin)
	total += int64(n)
	if err != nil {
		return total, err
	}
	for _, rr := range z.Records() {
		n, err := fmt.Fprintf(w, "%s\n", rr)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ParseZone reads the zone-file format produced by Zone.WriteTo plus the
// common conveniences of hand-written zone files: $ORIGIN and $TTL
// directives, "@" for the origin, ";" comments (outside quotes),
// parenthesized record data spanning multiple lines (the conventional
// SOA layout), and records that omit the TTL when a $TTL default exists.
// origin is used when the file carries no $ORIGIN.
func ParseZone(r io.Reader, origin string) (*Zone, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var z *Zone
	var defaultTTL uint32
	hasDefaultTTL := false
	lineno := 0
	ensure := func() *Zone {
		if z == nil {
			z = NewZone(origin)
		}
		return z
	}
	var pending strings.Builder
	openParens := 0
	for sc.Scan() {
		lineno++
		line := stripZoneComment(sc.Text())
		if openParens > 0 {
			pending.WriteString(" " + line)
			openParens += strings.Count(line, "(") - strings.Count(line, ")")
			if openParens > 0 {
				continue
			}
			line = pending.String()
			pending.Reset()
		} else {
			if opens := strings.Count(line, "(") - strings.Count(line, ")"); opens > 0 {
				pending.WriteString(line)
				openParens = opens
				continue
			}
		}
		line = strings.TrimSpace(strings.NewReplacer("(", " ", ")", " ").Replace(line))
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "$ORIGIN") {
			fields := strings.Fields(line)
			if len(fields) != 2 {
				return nil, fmt.Errorf("dns: line %d: malformed $ORIGIN", lineno)
			}
			if z != nil {
				return nil, fmt.Errorf("dns: line %d: $ORIGIN after records", lineno)
			}
			z = NewZone(fields[1])
			continue
		}
		if strings.HasPrefix(line, "$TTL") {
			fields := strings.Fields(line)
			if len(fields) != 2 {
				return nil, fmt.Errorf("dns: line %d: malformed $TTL", lineno)
			}
			v, err := strconv.ParseUint(fields[1], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("dns: line %d: bad $TTL %q", lineno, fields[1])
			}
			defaultTTL = uint32(v)
			hasDefaultTTL = true
			continue
		}
		zone := ensure()
		rr, err := parseRecordLine(line, zone.Origin, defaultTTL, hasDefaultTTL)
		if err != nil {
			return nil, fmt.Errorf("dns: line %d: %w", lineno, err)
		}
		if err := zone.Add(rr); err != nil {
			return nil, fmt.Errorf("dns: line %d: %w", lineno, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if openParens > 0 {
		return nil, fmt.Errorf("dns: unbalanced parentheses at end of zone file")
	}
	return ensure(), nil
}

// ParseZones reads a concatenation of zone files (as emitted by writing
// several zones' WriteTo output into one stream), splitting on $ORIGIN
// directives, and returns a catalog of the parsed zones.
func ParseZones(r io.Reader) (*Catalog, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	cat := NewCatalog()
	var block strings.Builder
	flush := func() error {
		if strings.TrimSpace(block.String()) == "" {
			block.Reset()
			return nil
		}
		z, err := ParseZone(strings.NewReader(block.String()), "")
		if err != nil {
			return err
		}
		cat.AddZone(z)
		block.Reset()
		return nil
	}
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(strings.TrimSpace(line), "$ORIGIN") {
			if err := flush(); err != nil {
				return nil, err
			}
		}
		block.WriteString(line + "\n")
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return cat, nil
}

// stripZoneComment removes a trailing ";" comment, respecting quoted
// strings (TXT data may contain semicolons).
func stripZoneComment(line string) string {
	inQuote := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			inQuote = !inQuote
		case '\\':
			i++
		case ';':
			if !inQuote {
				return line[:i]
			}
		}
	}
	return line
}

func parseRecordLine(line, origin string, defaultTTL uint32, hasDefaultTTL bool) (RR, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return RR{}, fmt.Errorf("too few fields in %q", line)
	}
	name := fields[0]
	if name == "@" {
		name = origin
	}
	rest := fields[1:]
	// The TTL column is optional when a $TTL default is in effect.
	var ttl uint64
	if v, err := strconv.ParseUint(rest[0], 10, 32); err == nil {
		ttl = v
		rest = rest[1:]
	} else if hasDefaultTTL {
		ttl = uint64(defaultTTL)
	} else {
		return RR{}, fmt.Errorf("bad TTL %q", rest[0])
	}
	if len(rest) < 2 {
		return RR{}, fmt.Errorf("too few fields in %q", line)
	}
	if !strings.EqualFold(rest[0], "IN") {
		return RR{}, fmt.Errorf("unsupported class %q", rest[0])
	}
	typ, ok := ParseType(rest[1])
	if !ok {
		return RR{}, fmt.Errorf("unsupported type %q", rest[1])
	}
	rr := RR{Name: name, TTL: uint32(ttl), Class: ClassIN, Type: typ}
	rdata := rest[2:]
	if len(rdata) == 0 {
		return RR{}, fmt.Errorf("missing rdata in %q", line)
	}
	switch typ {
	case TypeA, TypeAAAA:
		addr, err := netip.ParseAddr(rdata[0])
		if err != nil {
			return RR{}, err
		}
		if typ == TypeA {
			rr.Data = AData{Addr: addr}
		} else {
			rr.Data = AAAAData{Addr: addr}
		}
	case TypeNS:
		rr.Data = NSData{Host: rdata[0]}
	case TypeCNAME:
		rr.Data = CNAMEData{Target: rdata[0]}
	case TypePTR:
		rr.Data = PTRData{Target: rdata[0]}
	case TypeMX:
		if len(rdata) != 2 {
			return RR{}, fmt.Errorf("MX needs preference and exchange")
		}
		pref, err := strconv.ParseUint(rdata[0], 10, 16)
		if err != nil {
			return RR{}, fmt.Errorf("bad MX preference %q", rdata[0])
		}
		rr.Data = MXData{Preference: uint16(pref), Exchange: rdata[1]}
	case TypeTXT:
		// Re-join and split on quoted strings.
		joined := strings.Join(rdata, " ")
		ss, err := parseQuotedStrings(joined)
		if err != nil {
			return RR{}, err
		}
		rr.Data = TXTData{Strings: ss}
	case TypeSOA:
		if len(rdata) != 7 {
			return RR{}, fmt.Errorf("SOA needs 7 fields")
		}
		var soa SOAData
		soa.MName, soa.RName = rdata[0], rdata[1]
		nums := []*uint32{&soa.Serial, &soa.Refresh, &soa.Retry, &soa.Expire, &soa.Minimum}
		for i, f := range nums {
			v, err := strconv.ParseUint(rdata[2+i], 10, 32)
			if err != nil {
				return RR{}, fmt.Errorf("bad SOA field %q", rdata[2+i])
			}
			*f = uint32(v)
		}
		rr.Data = soa
	default:
		return RR{}, fmt.Errorf("unsupported type %s", typ)
	}
	return rr, nil
}

func parseQuotedStrings(s string) ([]string, error) {
	var out []string
	for s = strings.TrimSpace(s); s != ""; s = strings.TrimSpace(s) {
		if s[0] != '"' {
			return nil, fmt.Errorf("TXT string must be quoted near %q", s)
		}
		str, rest, err := unquoteOne(s)
		if err != nil {
			return nil, err
		}
		out = append(out, str)
		s = rest
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty TXT data")
	}
	return out, nil
}

func unquoteOne(s string) (string, string, error) {
	// s starts with a double quote; find the matching close, honoring \"
	var sb strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 < len(s) {
				i++
				sb.WriteByte(s[i])
			}
		case '"':
			return sb.String(), s[i+1:], nil
		default:
			sb.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated quoted string")
}
