package dns

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"strings"
)

// Wire-format errors.
var (
	ErrTruncatedMessage = errors.New("dns: truncated message")
	ErrBadPointer       = errors.New("dns: bad compression pointer")
	ErrBadRData         = errors.New("dns: malformed record data")
	ErrMessageTooLarge  = errors.New("dns: message exceeds 64KiB")
)

// maxMessageSize is the largest message the codec will produce; DNS length
// fields are 16-bit so this is a hard protocol limit.
const maxMessageSize = 1 << 16

// packer serializes a message with RFC 1035 §4.1.4 name compression.
type packer struct {
	buf []byte
	// offsets maps a canonical name suffix to the offset where it was
	// first written, enabling compression pointers.
	offsets map[string]int
}

func newPacker() *packer {
	return &packer{offsets: make(map[string]int)}
}

func (p *packer) uint8(v uint8)   { p.buf = append(p.buf, v) }
func (p *packer) uint16(v uint16) { p.buf = binary.BigEndian.AppendUint16(p.buf, v) }
func (p *packer) uint32(v uint32) { p.buf = binary.BigEndian.AppendUint32(p.buf, v) }
func (p *packer) bytes(b []byte)  { p.buf = append(p.buf, b...) }

// name writes a domain name, emitting a compression pointer to an earlier
// occurrence of any suffix when possible. compress=false writes the name
// verbatim (used inside RDATA types where compression is prohibited;
// the types in this package all permit compression per RFC 1035, but the
// option is kept for strictness with TXT-embedded names and future types).
func (p *packer) name(name string, compress bool) error {
	name = CanonicalName(name)
	if name == "." {
		p.uint8(0)
		return nil
	}
	if err := CheckName(name); err != nil {
		return err
	}
	labels := SplitLabels(name)
	for i := range labels {
		suffix := strings.Join(labels[i:], ".") + "."
		if off, ok := p.offsets[suffix]; ok && compress && off < 0x3FFF {
			p.uint16(0xC000 | uint16(off))
			return nil
		}
		if len(p.buf) < 0x3FFF {
			p.offsets[suffix] = len(p.buf)
		}
		label := labels[i]
		p.uint8(uint8(len(label)))
		p.bytes([]byte(label))
	}
	p.uint8(0)
	return nil
}

// unpacker deserializes a wire-format message.
type unpacker struct {
	msg []byte
	off int
}

func (u *unpacker) remaining() int { return len(u.msg) - u.off }

func (u *unpacker) uint8() (uint8, error) {
	if u.remaining() < 1 {
		return 0, ErrTruncatedMessage
	}
	v := u.msg[u.off]
	u.off++
	return v, nil
}

func (u *unpacker) uint16() (uint16, error) {
	if u.remaining() < 2 {
		return 0, ErrTruncatedMessage
	}
	v := binary.BigEndian.Uint16(u.msg[u.off:])
	u.off += 2
	return v, nil
}

func (u *unpacker) uint32() (uint32, error) {
	if u.remaining() < 4 {
		return 0, ErrTruncatedMessage
	}
	v := binary.BigEndian.Uint32(u.msg[u.off:])
	u.off += 4
	return v, nil
}

func (u *unpacker) bytes(n int) ([]byte, error) {
	if n < 0 || u.remaining() < n {
		return nil, ErrTruncatedMessage
	}
	b := u.msg[u.off : u.off+n]
	u.off += n
	return b, nil
}

// name reads a possibly-compressed domain name starting at the current
// offset. Pointer chains are bounded to defend against loops.
func (u *unpacker) name() (string, error) {
	var sb strings.Builder
	off := u.off
	jumped := false
	const maxPointers = 32
	ptrs := 0
	for {
		if off >= len(u.msg) {
			return "", ErrTruncatedMessage
		}
		c := u.msg[off]
		switch {
		case c == 0:
			if !jumped {
				u.off = off + 1
			}
			if sb.Len() == 0 {
				return ".", nil
			}
			return sb.String(), nil
		case c&0xC0 == 0xC0:
			if off+1 >= len(u.msg) {
				return "", ErrTruncatedMessage
			}
			ptr := int(binary.BigEndian.Uint16(u.msg[off:]) & 0x3FFF)
			if !jumped {
				u.off = off + 2
				jumped = true
			}
			if ptr >= off {
				// Pointers must point backwards; forward pointers enable
				// loops and are rejected.
				return "", ErrBadPointer
			}
			ptrs++
			if ptrs > maxPointers {
				return "", ErrBadPointer
			}
			off = ptr
		case c&0xC0 != 0:
			return "", fmt.Errorf("dns: reserved label type %#x", c&0xC0)
		default:
			n := int(c)
			if off+1+n > len(u.msg) {
				return "", ErrTruncatedMessage
			}
			sb.Write(bytesToLower(u.msg[off+1 : off+1+n]))
			sb.WriteByte('.')
			if sb.Len() > MaxNameLen+1 {
				return "", ErrNameTooLong
			}
			off += 1 + n
		}
	}
}

// bytesToLower returns an ASCII-lowercased copy of b.
func bytesToLower(b []byte) []byte {
	out := make([]byte, len(b))
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		out[i] = c
	}
	return out
}

// packRData appends the wire form of data, returning an error for
// inconsistent data (e.g. an AData holding an IPv6 address).
func packRData(p *packer, data RData) error {
	switch d := data.(type) {
	case AData:
		if !d.Addr.Is4() {
			return fmt.Errorf("%w: A record with non-IPv4 address %s", ErrBadRData, d.Addr)
		}
		a4 := d.Addr.As4()
		p.bytes(a4[:])
	case AAAAData:
		if !d.Addr.Is6() || d.Addr.Is4() {
			return fmt.Errorf("%w: AAAA record with non-IPv6 address %s", ErrBadRData, d.Addr)
		}
		a16 := d.Addr.As16()
		p.bytes(a16[:])
	case NSData:
		return p.name(d.Host, true)
	case CNAMEData:
		return p.name(d.Target, true)
	case PTRData:
		return p.name(d.Target, true)
	case MXData:
		p.uint16(d.Preference)
		return p.name(d.Exchange, true)
	case TXTData:
		if len(d.Strings) == 0 {
			return fmt.Errorf("%w: TXT record with no strings", ErrBadRData)
		}
		for _, s := range d.Strings {
			if len(s) > 255 {
				return fmt.Errorf("%w: TXT string longer than 255 bytes", ErrBadRData)
			}
			p.uint8(uint8(len(s)))
			p.bytes([]byte(s))
		}
	case OPTData:
		// OPT carries no RDATA in this implementation (no EDNS options).
	case SOAData:
		if err := p.name(d.MName, true); err != nil {
			return err
		}
		if err := p.name(d.RName, true); err != nil {
			return err
		}
		p.uint32(d.Serial)
		p.uint32(d.Refresh)
		p.uint32(d.Retry)
		p.uint32(d.Expire)
		p.uint32(d.Minimum)
	default:
		return fmt.Errorf("%w: unsupported rdata type %T", ErrBadRData, data)
	}
	return nil
}

// unpackRData reads length bytes of RDATA of the given type. Unknown types
// are returned as opaque rawData so messages round-trip.
func unpackRData(u *unpacker, typ Type, length int) (RData, error) {
	end := u.off + length
	if end > len(u.msg) {
		return nil, ErrTruncatedMessage
	}
	var (
		data RData
		err  error
	)
	switch typ {
	case TypeA:
		var b []byte
		if b, err = u.bytes(4); err == nil {
			data = AData{Addr: netip.AddrFrom4([4]byte(b))}
		}
	case TypeAAAA:
		var b []byte
		if b, err = u.bytes(16); err == nil {
			data = AAAAData{Addr: netip.AddrFrom16([16]byte(b))}
		}
	case TypeNS:
		var host string
		if host, err = u.name(); err == nil {
			data = NSData{Host: host}
		}
	case TypeCNAME:
		var target string
		if target, err = u.name(); err == nil {
			data = CNAMEData{Target: target}
		}
	case TypePTR:
		var target string
		if target, err = u.name(); err == nil {
			data = PTRData{Target: target}
		}
	case TypeMX:
		var pref uint16
		var exch string
		if pref, err = u.uint16(); err == nil {
			if exch, err = u.name(); err == nil {
				data = MXData{Preference: pref, Exchange: exch}
			}
		}
	case TypeTXT:
		var ss []string
		for u.off < end {
			var n uint8
			if n, err = u.uint8(); err != nil {
				break
			}
			var b []byte
			if b, err = u.bytes(int(n)); err != nil {
				break
			}
			ss = append(ss, string(b))
		}
		if err == nil {
			data = TXTData{Strings: ss}
		}
	case TypeOPT:
		// Skip any EDNS options; only the header fields matter here.
		if _, err = u.bytes(length); err == nil {
			data = OPTData{}
		}
	case TypeSOA:
		var soa SOAData
		if soa.MName, err = u.name(); err == nil {
			if soa.RName, err = u.name(); err == nil {
				fields := []*uint32{&soa.Serial, &soa.Refresh, &soa.Retry, &soa.Expire, &soa.Minimum}
				for _, f := range fields {
					if *f, err = u.uint32(); err != nil {
						break
					}
				}
				if err == nil {
					data = soa
				}
			}
		}
	default:
		var b []byte
		if b, err = u.bytes(length); err == nil {
			data = rawData{typ: typ, data: append([]byte(nil), b...)}
		}
	}
	if err != nil {
		return nil, err
	}
	if u.off != end {
		return nil, fmt.Errorf("%w: rdata length mismatch for %s", ErrBadRData, typ)
	}
	return data, nil
}

// rawData preserves RDATA of types this package does not interpret.
type rawData struct {
	typ  Type
	data []byte
}

// RType implements RData.
func (r rawData) RType() Type { return r.typ }

// String implements RData using RFC 3597 generic encoding.
func (r rawData) String() string { return fmt.Sprintf("\\# %d %x", len(r.data), r.data) }
