package dns

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
)

// Wire-format errors.
var (
	ErrTruncatedMessage = errors.New("dns: truncated message")
	ErrBadPointer       = errors.New("dns: bad compression pointer")
	ErrBadRData         = errors.New("dns: malformed record data")
	ErrMessageTooLarge  = errors.New("dns: message exceeds 64KiB")
)

// maxMessageSize is the largest message the codec will produce; DNS length
// fields are 16-bit so this is a hard protocol limit.
const maxMessageSize = 1 << 16

// packer serializes a message with RFC 1035 §4.1.4 name compression.
// Packers are pooled (see AppendPack): the offsets map is cleared and
// reused across messages so the steady-state encode path performs zero
// heap allocations.
type packer struct {
	buf []byte
	// base is the offset within buf where the current message starts;
	// compression pointers are message-relative, so append-style packing
	// after a prefix (e.g. a TCP length header) stays correct.
	base int
	// offsets maps a canonical name suffix to the message-relative offset
	// where it was first written, enabling compression pointers. Keys are
	// substrings of the names being packed, so inserting them allocates
	// nothing.
	offsets map[string]int
}

func newPacker() *packer {
	return &packer{offsets: make(map[string]int, 16)}
}

func (p *packer) uint8(v uint8)   { p.buf = append(p.buf, v) }
func (p *packer) uint16(v uint16) { p.buf = binary.BigEndian.AppendUint16(p.buf, v) }
func (p *packer) uint32(v uint32) { p.buf = binary.BigEndian.AppendUint32(p.buf, v) }
func (p *packer) bytes(b []byte)  { p.buf = append(p.buf, b...) }
func (p *packer) str(s string)    { p.buf = append(p.buf, s...) }

// msgLen is the number of bytes written for the current message.
func (p *packer) msgLen() int { return len(p.buf) - p.base }

// name writes a domain name, emitting a compression pointer to an earlier
// occurrence of any suffix when possible. compress=false writes the name
// verbatim (used inside RDATA types where compression is prohibited;
// the types in this package all permit compression per RFC 1035, but the
// option is kept for strictness with TXT-embedded names and future types).
func (p *packer) name(name string, compress bool) error {
	if !isCanonicalName(name) {
		name = CanonicalName(name)
	}
	if name == "." {
		p.uint8(0)
		return nil
	}
	if err := CheckName(name); err != nil {
		return err
	}
	// Iterate labels by index; every suffix key is a substring of name, so
	// the compression map never copies label data.
	for start := 0; start < len(name); {
		suffix := name[start:]
		if off, ok := p.offsets[suffix]; ok && compress {
			p.uint16(0xC000 | uint16(off))
			return nil
		}
		if off := p.msgLen(); off < 0x3FFF {
			p.offsets[suffix] = off
		}
		end := start + strings.IndexByte(suffix, '.') // canonical names end in "."
		label := name[start:end]
		p.uint8(uint8(len(label)))
		p.str(label)
		start = end + 1
	}
	p.uint8(0)
	return nil
}

// unpacker deserializes a wire-format message.
type unpacker struct {
	msg []byte
	off int
}

func (u *unpacker) remaining() int { return len(u.msg) - u.off }

func (u *unpacker) uint8() (uint8, error) {
	if u.remaining() < 1 {
		return 0, ErrTruncatedMessage
	}
	v := u.msg[u.off]
	u.off++
	return v, nil
}

func (u *unpacker) uint16() (uint16, error) {
	if u.remaining() < 2 {
		return 0, ErrTruncatedMessage
	}
	v := binary.BigEndian.Uint16(u.msg[u.off:])
	u.off += 2
	return v, nil
}

func (u *unpacker) uint32() (uint32, error) {
	if u.remaining() < 4 {
		return 0, ErrTruncatedMessage
	}
	v := binary.BigEndian.Uint32(u.msg[u.off:])
	u.off += 4
	return v, nil
}

func (u *unpacker) bytes(n int) ([]byte, error) {
	if n < 0 || u.remaining() < n {
		return nil, ErrTruncatedMessage
	}
	b := u.msg[u.off : u.off+n]
	u.off += n
	return b, nil
}

// nameInto reads a possibly-compressed domain name starting at the
// current offset, appending its ASCII-lowercased presentation form
// ("label.label.") to dst. The root name appends nothing — callers map
// an empty result to ".". Pointer chains are bounded to defend against
// loops. Appending into a caller-owned scratch buffer keeps the decode
// hot path allocation-free.
func (u *unpacker) nameInto(dst []byte) ([]byte, error) {
	off := u.off
	jumped := false
	const maxPointers = 32
	ptrs := 0
	n0 := len(dst)
	for {
		if off >= len(u.msg) {
			return dst, ErrTruncatedMessage
		}
		c := u.msg[off]
		switch {
		case c == 0:
			if !jumped {
				u.off = off + 1
			}
			return dst, nil
		case c&0xC0 == 0xC0:
			if off+1 >= len(u.msg) {
				return dst, ErrTruncatedMessage
			}
			ptr := int(binary.BigEndian.Uint16(u.msg[off:]) & 0x3FFF)
			if !jumped {
				u.off = off + 2
				jumped = true
			}
			if ptr >= off {
				// Pointers must point backwards; forward pointers enable
				// loops and are rejected.
				return dst, ErrBadPointer
			}
			ptrs++
			if ptrs > maxPointers {
				return dst, ErrBadPointer
			}
			off = ptr
		case c&0xC0 != 0:
			return dst, fmt.Errorf("dns: reserved label type %#x", c&0xC0)
		default:
			n := int(c)
			if off+1+n > len(u.msg) {
				return dst, ErrTruncatedMessage
			}
			for _, ch := range u.msg[off+1 : off+1+n] {
				if 'A' <= ch && ch <= 'Z' {
					ch += 'a' - 'A'
				}
				dst = append(dst, ch)
			}
			dst = append(dst, '.')
			if len(dst)-n0 > MaxNameLen+1 {
				return dst, ErrNameTooLong
			}
			off += 1 + n
		}
	}
}

// packRData appends the wire form of data, returning an error for
// inconsistent data (e.g. an AData holding an IPv6 address).
func packRData(p *packer, data RData) error {
	switch d := data.(type) {
	case AData:
		if !d.Addr.Is4() {
			return fmt.Errorf("%w: A record with non-IPv4 address %s", ErrBadRData, d.Addr)
		}
		a4 := d.Addr.As4()
		p.bytes(a4[:])
	case AAAAData:
		if !d.Addr.Is6() || d.Addr.Is4() {
			return fmt.Errorf("%w: AAAA record with non-IPv6 address %s", ErrBadRData, d.Addr)
		}
		a16 := d.Addr.As16()
		p.bytes(a16[:])
	case NSData:
		return p.name(d.Host, true)
	case CNAMEData:
		return p.name(d.Target, true)
	case PTRData:
		return p.name(d.Target, true)
	case MXData:
		p.uint16(d.Preference)
		return p.name(d.Exchange, true)
	case TXTData:
		if len(d.Strings) == 0 {
			return fmt.Errorf("%w: TXT record with no strings", ErrBadRData)
		}
		for _, s := range d.Strings {
			if len(s) > 255 {
				return fmt.Errorf("%w: TXT string longer than 255 bytes", ErrBadRData)
			}
			p.uint8(uint8(len(s)))
			p.str(s)
		}
	case OPTData:
		// OPT carries no RDATA in this implementation (no EDNS options).
	case SOAData:
		if err := p.name(d.MName, true); err != nil {
			return err
		}
		if err := p.name(d.RName, true); err != nil {
			return err
		}
		p.uint32(d.Serial)
		p.uint32(d.Refresh)
		p.uint32(d.Retry)
		p.uint32(d.Expire)
		p.uint32(d.Minimum)
	default:
		return fmt.Errorf("%w: unsupported rdata type %T", ErrBadRData, data)
	}
	return nil
}

// rawData preserves RDATA of types this package does not interpret.
type rawData struct {
	typ  Type
	data []byte
}

// RType implements RData.
func (r rawData) RType() Type { return r.typ }

// String implements RData using RFC 3597 generic encoding.
func (r rawData) String() string { return fmt.Sprintf("\\# %d %x", len(r.data), r.data) }
