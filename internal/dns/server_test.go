package dns

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

// startTestServer launches a server on loopback and returns its address
// and a cleanup-registered client.
func startTestServer(t *testing.T, catalog *Catalog) string {
	t.Helper()
	srv, err := NewServer(ServerConfig{Catalog: catalog})
	if err != nil {
		t.Fatal(err)
	}
	// The TCP listener must share the UDP socket's port; an ephemeral
	// client connection elsewhere in the suite can already hold that TCP
	// port, so retry with a fresh UDP port on collision.
	var pc net.PacketConn
	var ln net.Listener
	for attempt := 0; ; attempt++ {
		var err error
		pc, err = net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ln, err = net.Listen("tcp", pc.LocalAddr().String())
		if err == nil {
			break
		}
		pc.Close()
		if attempt == 10 {
			t.Fatal(err)
		}
	}
	go srv.ServeUDP(pc)
	go srv.ServeTCP(ln)
	t.Cleanup(func() { srv.Close() })
	return pc.LocalAddr().String()
}

func testCatalog(t *testing.T) *Catalog {
	t.Helper()
	c := NewCatalog()
	z := testZone(t)
	c.AddZone(z)
	return c
}

func TestServerClientUDP(t *testing.T) {
	addr := startTestServer(t, testCatalog(t))
	cl := NewClient(addr)
	ctx := context.Background()

	mx, err := ClientResolver{Client: cl}.LookupMX(ctx, "example.com")
	if err != nil {
		t.Fatal(err)
	}
	if len(mx) != 2 || mx[0].Preference != 10 || mx[0].Exchange != "mx1.example.com" {
		t.Errorf("MX = %+v", mx)
	}

	addrs, err := ClientResolver{Client: cl}.LookupA(ctx, "mx1.example.com")
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 1 || addrs[0].String() != "192.0.2.10" {
		t.Errorf("A = %v", addrs)
	}
}

func TestServerClientCNAMEChain(t *testing.T) {
	addr := startTestServer(t, testCatalog(t))
	cl := NewClient(addr)
	addrs, err := ClientResolver{Client: cl}.LookupA(context.Background(), "www.example.com")
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 1 || addrs[0].String() != "192.0.2.20" {
		t.Errorf("A through CNAME = %v", addrs)
	}
}

func TestServerClientNXDomain(t *testing.T) {
	addr := startTestServer(t, testCatalog(t))
	cl := NewClient(addr)
	_, err := ClientResolver{Client: cl}.LookupMX(context.Background(), "missing.example.com")
	if !errors.Is(err, ErrNXDomain) {
		t.Errorf("err = %v, want ErrNXDomain", err)
	}
}

func TestServerClientNoData(t *testing.T) {
	addr := startTestServer(t, testCatalog(t))
	cl := NewClient(addr)
	_, err := ClientResolver{Client: cl}.LookupMX(context.Background(), "txtonly.example.com")
	if !errors.Is(err, ErrNoData) {
		t.Errorf("err = %v, want ErrNoData", err)
	}
}

func TestServerTruncationFallsBackToTCP(t *testing.T) {
	c := NewCatalog()
	z := NewZone("big.test")
	// Enough MX records to exceed the 512-byte UDP limit.
	for i := 0; i < 40; i++ {
		z.MustAdd(RR{Name: "big.test.", Type: TypeMX, TTL: 1,
			Data: MXData{Preference: uint16(i), Exchange: longLabel(i) + ".mail.big.test."}})
	}
	c.AddZone(z)
	addr := startTestServer(t, c)
	cl := NewClient(addr)
	mx, err := ClientResolver{Client: cl}.LookupMX(context.Background(), "big.test")
	if err != nil {
		t.Fatal(err)
	}
	if len(mx) != 40 {
		t.Errorf("MX count = %d, want 40 (TCP fallback)", len(mx))
	}
}

func longLabel(i int) string {
	b := make([]byte, 30)
	for j := range b {
		b[j] = byte('a' + (i+j)%26)
	}
	return string(b)
}

func TestServerRefusesForeignZone(t *testing.T) {
	addr := startTestServer(t, testCatalog(t))
	cl := NewClient(addr)
	_, err := ClientResolver{Client: cl}.LookupA(context.Background(), "www.elsewhere.net")
	if !errors.Is(err, ErrServFail) {
		t.Errorf("err = %v, want ErrServFail (REFUSED)", err)
	}
}

func TestServerConcurrentClients(t *testing.T) {
	addr := startTestServer(t, testCatalog(t))
	var wg sync.WaitGroup
	errs := make(chan error, 50)
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := NewClient(addr)
			_, err := ClientResolver{Client: cl}.LookupMX(context.Background(), "example.com")
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestServerHandlesGarbage(t *testing.T) {
	addr := startTestServer(t, testCatalog(t))
	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{0xAB, 0xCD, 0xFF}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 512)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatalf("no FORMERR response to garbage: %v", err)
	}
	m, err := Unpack(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if m.Header.RCode != RCodeFormat || m.Header.ID != 0xABCD {
		t.Errorf("response = %+v, want FORMERR with echoed ID", m.Header)
	}
	// A valid query must still succeed after garbage.
	cl := NewClient(addr)
	if _, err := (ClientResolver{Client: cl}).LookupMX(context.Background(), "example.com"); err != nil {
		t.Errorf("server unhealthy after garbage: %v", err)
	}
}

func TestClientContextCancel(t *testing.T) {
	// Point the client at an address that will never answer.
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	cl := NewClient(pc.LocalAddr().String())
	cl.Timeout = 5 * time.Second
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := cl.Exchange(ctx, "example.com", TypeMX); err == nil {
		t.Fatal("Exchange succeeded against mute server")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("Exchange did not honor context cancellation: took %v", elapsed)
	}
}

func TestCatalogResolverMatchesWirePath(t *testing.T) {
	catalog := testCatalog(t)
	addr := startTestServer(t, catalog)
	ctx := context.Background()
	wire := ClientResolver{Client: NewClient(addr)}
	mem := CatalogResolver{Catalog: catalog}

	for _, name := range []string{"example.com", "txtonly.example.com", "missing.example.com"} {
		mx1, err1 := wire.LookupMX(ctx, name)
		mx2, err2 := mem.LookupMX(ctx, name)
		if (err1 == nil) != (err2 == nil) {
			t.Errorf("%s: wire err=%v mem err=%v", name, err1, err2)
			continue
		}
		if len(mx1) != len(mx2) {
			t.Errorf("%s: wire %d MX, mem %d MX", name, len(mx1), len(mx2))
		}
		for i := range mx1 {
			if mx1[i] != mx2[i] {
				t.Errorf("%s MX[%d]: %+v != %+v", name, i, mx1[i], mx2[i])
			}
		}
	}
}

func TestServerListenAndServe(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv, err := NewServer(ServerConfig{Catalog: testCatalog(t)})
	if err != nil {
		t.Fatal(err)
	}
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe(ctx, "127.0.0.1:0", ready) }()
	var addr net.Addr
	select {
	case addr = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatal("server did not become ready")
	}
	cl := NewClient(addr.String())
	if _, err := (ClientResolver{Client: cl}).LookupMX(context.Background(), "example.com"); err != nil {
		t.Fatal(err)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("ListenAndServe returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down")
	}
}

func BenchmarkServerClientUDP(b *testing.B) {
	c := NewCatalog()
	z := NewZone("example.com")
	z.MustAdd(RR{Name: "example.com.", Type: TypeMX, TTL: 1, Data: MXData{Preference: 10, Exchange: "mx.example.com."}})
	c.AddZone(z)
	srv, err := NewServer(ServerConfig{Catalog: c})
	if err != nil {
		b.Fatal(err)
	}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.ServeUDP(pc)
	defer srv.Close()
	cl := NewClient(pc.LocalAddr().String())
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Exchange(ctx, "example.com", TypeMX); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCatalogResolve(b *testing.B) {
	c := NewCatalog()
	z := NewZone("example.com")
	z.MustAdd(RR{Name: "example.com.", Type: TypeMX, TTL: 1, Data: MXData{Preference: 10, Exchange: "mx.example.com."}})
	c.AddZone(z)
	q := Question{Name: "example.com.", Type: TypeMX, Class: ClassIN}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Resolve(q)
	}
}
