package dns

// Unit tests for the overload-protection layer: the RRL limiter's token
// buckets, slip arithmetic and prefix aggregation; the resilient serve
// loops (a transient ReadFrom error must not kill a UDP worker); TCP
// admission control, per-connection query budgets and frame edge cases.

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"net/netip"
	"sync"
	"syscall"
	"testing"
	"time"

	"mxmap/internal/netsim"
)

// frozenClock returns an RRL clock stuck at a fixed instant (no refill)
// plus a function to advance it.
func frozenClock() (func() time.Time, func(time.Duration)) {
	var mu sync.Mutex
	now := time.Unix(1700000000, 0)
	return func() time.Time {
			mu.Lock()
			defer mu.Unlock()
			return now
		}, func(d time.Duration) {
			mu.Lock()
			now = now.Add(d)
			mu.Unlock()
		}
}

func udpSrc(ip string) net.Addr {
	return &net.UDPAddr{IP: net.ParseIP(ip), Port: 4242}
}

func TestRRLBurstThenSlipCadence(t *testing.T) {
	now, _ := frozenClock()
	l := newRRLLimiter(RRLConfig{ResponsesPerSecond: 10, Burst: 3, Slip: 2, Now: now})
	src := udpSrc("192.0.2.7")
	for i := 0; i < 3; i++ {
		if got := l.decide(src, rrlKindAnswer); got != rrlSend {
			t.Fatalf("burst response %d: got %v, want rrlSend", i, got)
		}
	}
	// With Slip=2 every 2nd limited response slips: drop, slip, drop, slip.
	want := []rrlAction{rrlDrop, rrlSlip, rrlDrop, rrlSlip}
	for i, w := range want {
		if got := l.decide(src, rrlKindAnswer); got != w {
			t.Fatalf("limited response %d: got %v, want %v", i, got, w)
		}
	}
}

func TestRRLSlipOneAndNever(t *testing.T) {
	now, _ := frozenClock()
	always := newRRLLimiter(RRLConfig{Burst: 1, Slip: 1, Now: now})
	src := udpSrc("192.0.2.8")
	always.decide(src, rrlKindAnswer) // burn the burst
	for i := 0; i < 4; i++ {
		if got := always.decide(src, rrlKindAnswer); got != rrlSlip {
			t.Fatalf("slip=1 limited %d: got %v, want rrlSlip", i, got)
		}
	}
	never := newRRLLimiter(RRLConfig{Burst: 1, Slip: -1, Now: now})
	never.decide(src, rrlKindAnswer)
	for i := 0; i < 4; i++ {
		if got := never.decide(src, rrlKindAnswer); got != rrlDrop {
			t.Fatalf("slip=-1 limited %d: got %v, want rrlDrop", i, got)
		}
	}
}

func TestRRLRefill(t *testing.T) {
	now, advance := frozenClock()
	l := newRRLLimiter(RRLConfig{ResponsesPerSecond: 5, Burst: 3, Slip: 2, Now: now})
	src := udpSrc("192.0.2.9")
	for i := 0; i < 3; i++ {
		l.decide(src, rrlKindAnswer)
	}
	if got := l.decide(src, rrlKindAnswer); got != rrlDrop {
		t.Fatalf("exhausted bucket: got %v, want rrlDrop", got)
	}
	// 600ms at 5 rps refills exactly 3 tokens, capped at burst.
	advance(600 * time.Millisecond)
	for i := 0; i < 3; i++ {
		if got := l.decide(src, rrlKindAnswer); got != rrlSend {
			t.Fatalf("refilled response %d: got %v, want rrlSend", i, got)
		}
	}
	if got := l.decide(src, rrlKindAnswer); got == rrlSend {
		t.Fatal("bucket refilled beyond the elapsed-time entitlement")
	}
	// Sub-token refill must accumulate, not round away: 2×100ms at 5 rps
	// is one token even though each step alone is half a token.
	advance(100 * time.Millisecond)
	if got := l.decide(src, rrlKindAnswer); got == rrlSend {
		t.Fatal("half a token refilled a whole response")
	}
	advance(100 * time.Millisecond)
	if got := l.decide(src, rrlKindAnswer); got != rrlSend {
		t.Fatalf("accumulated fractional refill: got %v, want rrlSend", got)
	}
}

func TestRRLPrefixAggregation(t *testing.T) {
	now, _ := frozenClock()
	l := newRRLLimiter(RRLConfig{Burst: 1, Slip: 1, Now: now})
	// Hosts within one /24 share a bucket.
	if got := l.decide(udpSrc("198.51.100.1"), rrlKindAnswer); got != rrlSend {
		t.Fatalf("first host: got %v, want rrlSend", got)
	}
	if got := l.decide(udpSrc("198.51.100.250"), rrlKindAnswer); got != rrlSlip {
		t.Fatalf("sibling host in /24: got %v, want rrlSlip (shared bucket)", got)
	}
	// A different /24 has its own bucket.
	if got := l.decide(udpSrc("198.51.101.1"), rrlKindAnswer); got != rrlSend {
		t.Fatalf("different /24: got %v, want rrlSend", got)
	}
	// IPv6 aggregates to /56: same /56, shared; different /56, fresh.
	if got := l.decide(udpSrc("2001:db8:0:a00::1"), rrlKindAnswer); got != rrlSend {
		t.Fatalf("first v6 host: got %v, want rrlSend", got)
	}
	if got := l.decide(udpSrc("2001:db8:0:aff::9"), rrlKindAnswer); got != rrlSlip {
		t.Fatalf("sibling v6 host in /56: got %v, want rrlSlip", got)
	}
	if got := l.decide(udpSrc("2001:db8:0:b00::1"), rrlKindAnswer); got != rrlSend {
		t.Fatalf("different v6 /56: got %v, want rrlSend", got)
	}
}

func TestRRLKindsLimitedIndependently(t *testing.T) {
	now, _ := frozenClock()
	l := newRRLLimiter(RRLConfig{Burst: 1, Slip: 1, Now: now})
	src := udpSrc("203.0.113.5")
	// An NXDOMAIN flood must not consume the answer bucket.
	l.decide(src, rrlKindNXDomain)
	if got := l.decide(src, rrlKindNXDomain); got != rrlSlip {
		t.Fatalf("second nxdomain: got %v, want rrlSlip", got)
	}
	if got := l.decide(src, rrlKindAnswer); got != rrlSend {
		t.Fatalf("answer after nxdomain flood: got %v, want rrlSend", got)
	}
}

func TestRRLLoopbackExemption(t *testing.T) {
	now, _ := frozenClock()
	l := newRRLLimiter(RRLConfig{Burst: 1, Slip: 1, Now: now})
	lo := udpSrc("127.0.0.1")
	for i := 0; i < 10; i++ {
		if got := l.decide(lo, rrlKindAnswer); got != rrlSend {
			t.Fatalf("loopback response %d: got %v, want rrlSend (exempt)", i, got)
		}
	}
	inc := newRRLLimiter(RRLConfig{Burst: 1, Slip: 1, IncludeLoopback: true, Now: now})
	inc.decide(lo, rrlKindAnswer)
	if got := inc.decide(lo, rrlKindAnswer); got != rrlSlip {
		t.Fatalf("IncludeLoopback second response: got %v, want rrlSlip", got)
	}
}

func TestRRLBucketEviction(t *testing.T) {
	now, advance := frozenClock()
	l := newRRLLimiter(RRLConfig{Burst: 1, Slip: 1, Now: now})
	// Overflow every shard: far more prefixes than shards*maxBuckets would
	// take too long, so drive one shard directly via decide on distinct
	// /24s and just assert the bound holds.
	for i := 0; i < rrlShards*maxBucketsPerShard/4; i++ {
		src := &net.UDPAddr{IP: net.IPv4(10, byte(i>>16), byte(i>>8), byte(i)), Port: 53000}
		l.decide(src, rrlKindAnswer)
		advance(time.Microsecond) // distinct lastNano so eviction is ordered
	}
	for i := range l.shards {
		l.shards[i].mu.Lock()
		n := len(l.shards[i].m)
		l.shards[i].mu.Unlock()
		if n > maxBucketsPerShard {
			t.Fatalf("shard %d holds %d buckets, bound is %d", i, n, maxBucketsPerShard)
		}
	}
}

func TestRespKindClassification(t *testing.T) {
	pack := func(rcode RCode, answers int) []byte {
		m := &Message{Header: Header{ID: 7, Response: true, RCode: rcode},
			Questions: []Question{{Name: "a.example.", Type: TypeA, Class: ClassIN}}}
		for i := 0; i < answers; i++ {
			m.Answers = append(m.Answers, RR{Name: "a.example.", Type: TypeA, TTL: 60,
				Data: AData{Addr: netip.MustParseAddr("192.0.2.1")}})
		}
		b, err := m.Pack()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	cases := []struct {
		resp []byte
		want rrlKind
	}{
		{pack(RCodeSuccess, 1), rrlKindAnswer},
		{pack(RCodeSuccess, 0), rrlKindEmpty},
		{pack(RCodeNXDomain, 0), rrlKindNXDomain},
		{pack(RCodeServFail, 0), rrlKindError},
		{pack(RCodeRefused, 0), rrlKindError},
		{[]byte{0, 1}, rrlKindError}, // short garbage
	}
	for i, c := range cases {
		if got := respKind(c.resp); got != c.want {
			t.Errorf("case %d: respKind = %v, want %v", i, got, c.want)
		}
	}
}

func TestSlipResponseRewrite(t *testing.T) {
	m := &Message{Header: Header{ID: 0xBEEF, Response: true, Authoritative: true},
		Questions: []Question{{Name: "mx.slip.example.", Type: TypeMX, Class: ClassIN}}}
	for i := 0; i < 4; i++ {
		m.Answers = append(m.Answers, RR{Name: "mx.slip.example.", Type: TypeMX, TTL: 60,
			Data: MXData{Preference: uint16(i), Exchange: fmt.Sprintf("m%d.slip.example.", i)}})
	}
	full, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	slipped := slipResponse(append([]byte(nil), full...))
	if len(slipped) >= len(full) {
		t.Errorf("slipped reply is %d bytes, full answer %d: no amplification allowed", len(slipped), len(full))
	}
	resp, err := Unpack(slipped)
	if err != nil {
		t.Fatalf("slipped reply does not parse: %v", err)
	}
	if !resp.Header.Truncated {
		t.Error("slipped reply lacks TC bit")
	}
	if resp.Header.ID != 0xBEEF {
		t.Errorf("slipped reply ID = %#x, want 0xBEEF", resp.Header.ID)
	}
	if len(resp.Answers) != 0 || len(resp.Authority) != 0 || len(resp.Additional) != 0 {
		t.Error("slipped reply carries records")
	}
	if len(resp.Questions) != 1 || resp.Questions[0].Name != "mx.slip.example." {
		t.Errorf("slipped reply question = %+v, want the echoed question", resp.Questions)
	}
	// Garbage that defeats the question walk must degrade to header-only.
	bad := append([]byte(nil), full[:12]...)
	binary.BigEndian.PutUint16(bad[4:6], 1) // claims a question it doesn't carry
	out := slipResponse(bad)
	if len(out) != 12 {
		t.Fatalf("anomalous reply slipped to %d bytes, want header-only 12", len(out))
	}
	if out[2]&0x02 == 0 {
		t.Error("header-only fallback lacks TC bit")
	}
}

// flakyPacketConn fails the first `failures` ReadFrom calls with a
// transient errno, then delegates. It reproduces the ICMP-feedback
// errors a UDP socket surfaces after answering a vanished client.
type flakyPacketConn struct {
	net.PacketConn
	mu       sync.Mutex
	failures int
}

func (f *flakyPacketConn) ReadFrom(p []byte) (int, net.Addr, error) {
	f.mu.Lock()
	if f.failures > 0 {
		f.failures--
		f.mu.Unlock()
		return 0, nil, &net.OpError{Op: "read", Net: "udp", Err: syscall.ECONNREFUSED}
	}
	f.mu.Unlock()
	return f.PacketConn.ReadFrom(p)
}

// TestServeUDPSurvivesTransientReadErrors is the regression test for the
// lost-worker bug: a transient ReadFrom error used to kill the worker
// goroutine, silently shrinking the pool until the server went deaf.
func TestServeUDPSurvivesTransientReadErrors(t *testing.T) {
	n := netsim.New()
	const server = "10.7.0.1"
	srv, err := NewServer(ServerConfig{Catalog: chaosCatalog(t, 2), UDPWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	pc, err := n.ListenPacket(netip.MustParseAddrPort(server + ":53"))
	if err != nil {
		t.Fatal(err)
	}
	const failures = 5
	fpc := &flakyPacketConn{PacketConn: pc, failures: failures}
	done := make(chan error, 1)
	go func() { done <- srv.ServeUDP(fpc) }()
	t.Cleanup(func() { srv.Close(); <-done })

	client := &Client{Server: server + ":53", Timeout: time.Second, Retries: 2,
		DialContext: lossyFabricDial(n)}
	// The single worker must eat all 5 errors and still answer.
	resp, err := client.Exchange(context.Background(), "d00.chaos.example.", TypeMX)
	if err != nil {
		t.Fatalf("exchange after transient read errors: %v", err)
	}
	if len(resp.Answers) != 1 {
		t.Fatalf("answers = %d, want 1", len(resp.Answers))
	}
	if got := srv.Stats().UDPReadRetries; got != failures {
		t.Errorf("UDPReadRetries = %d, want %d", got, failures)
	}
}

// dialTCP opens a raw fabric connection to the server for frame-level
// tests.
func dialTCP(t *testing.T, n *netsim.Network, addr string) net.Conn {
	t.Helper()
	conn, err := n.Dial(context.Background(), netip.MustParseAddrPort(addr))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

// startTCPServer serves DNS-over-TCP on the fabric and returns the
// server plus the Serve error channel.
func startTCPServer(t *testing.T, n *netsim.Network, addr string, cfg ServerConfig) (*Server, chan error) {
	t.Helper()
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := n.Listen(netip.MustParseAddrPort(addr))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ServeTCP(ln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-errc; err != nil {
			t.Errorf("ServeTCP: %v", err)
		}
	})
	return srv, errc
}

func frameQuery(t *testing.T, name string) []byte {
	t.Helper()
	q := NewQuery(0x1234, name, TypeMX)
	wire, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 2+len(wire))
	binary.BigEndian.PutUint16(out, uint16(len(wire)))
	copy(out[2:], wire)
	return out
}

func readFrame(t *testing.T, conn net.Conn) []byte {
	t.Helper()
	var lenBuf [2]byte
	if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
		t.Fatalf("read frame length: %v", err)
	}
	resp := make([]byte, binary.BigEndian.Uint16(lenBuf[:]))
	if _, err := io.ReadFull(conn, resp); err != nil {
		t.Fatalf("read frame body: %v", err)
	}
	return resp
}

func TestServeTCPZeroLengthFrame(t *testing.T) {
	n := netsim.New()
	srv, _ := startTCPServer(t, n, "10.7.1.1:53", ServerConfig{Catalog: chaosCatalog(t, 1)})
	conn := dialTCP(t, n, "10.7.1.1:53")
	if _, err := conn.Write([]byte{0, 0}); err != nil {
		t.Fatal(err)
	}
	// A zero-length frame is unanswerable (not even an ID to echo); the
	// server must drop it and close, not hang or crash.
	buf := make([]byte, 1)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(buf); err != io.EOF {
		t.Fatalf("read after zero-length frame: err = %v, want EOF", err)
	}
	st := srv.Stats()
	if st.TCPQueries != 1 || st.TCPDropped != 1 {
		t.Errorf("stats = %+v, want TCPQueries=1 TCPDropped=1", st)
	}
}

func TestServeTCPMaxFrame(t *testing.T) {
	n := netsim.New()
	srv, _ := startTCPServer(t, n, "10.7.1.2:53", ServerConfig{Catalog: chaosCatalog(t, 1)})
	conn := dialTCP(t, n, "10.7.1.2:53")
	// The largest possible frame: 65535 bytes of garbage behind a valid
	// length prefix. The server must read it all on its grow-only buffer
	// and answer FORMERR with the echoed ID.
	frame := make([]byte, 2+65535)
	binary.BigEndian.PutUint16(frame, 65535)
	frame[2], frame[3] = 0xAB, 0xCD // the would-be ID
	go conn.Write(frame)            // pipe writes are synchronous; server reads as we write
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	resp, err := Unpack(readFrame(t, conn))
	if err != nil {
		t.Fatalf("unpack: %v", err)
	}
	if resp.Header.ID != 0xABCD || resp.Header.RCode != RCodeFormat {
		t.Errorf("got ID=%#x rcode=%v, want ID=0xabcd FORMERR", resp.Header.ID, resp.Header.RCode)
	}
	// The counter lands after the server's Write returns, which on the
	// synchronous pipe fabric is after our read — poll briefly.
	waitStats(t, func(st ServerStats) bool { return st.TCPResponses == 1 }, srv)
}

// waitStats polls the server's counters until cond holds, failing after
// a generous deadline.
func waitStats(t *testing.T, cond func(ServerStats) bool, srv *Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if cond(srv.Stats()) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats never converged: %+v", srv.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestServeTCPStalledFrameHitsIdleDeadline(t *testing.T) {
	n := netsim.New()
	srv, _ := startTCPServer(t, n, "10.7.1.3:53",
		ServerConfig{Catalog: chaosCatalog(t, 1), ReadTimeout: 100 * time.Millisecond})
	conn := dialTCP(t, n, "10.7.1.3:53")
	// Classic slowloris: a length prefix promising 28 bytes, then silence.
	if _, err := conn.Write([]byte{0, 28}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	buf := make([]byte, 1)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(buf); err != io.EOF {
		t.Fatalf("read on stalled conn: err = %v, want EOF (server evicted us)", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("eviction took %v, idle deadline is 100ms", elapsed)
	}
	st := srv.Stats()
	if st.TCPQueries != 0 {
		t.Errorf("TCPQueries = %d, want 0 (frame never completed)", st.TCPQueries)
	}
	// The worker must be free again: a well-formed query still answers.
	conn2 := dialTCP(t, n, "10.7.1.3:53")
	if _, err := conn2.Write(frameQuery(t, "d00.chaos.example.")); err != nil {
		t.Fatal(err)
	}
	conn2.SetReadDeadline(time.Now().Add(5 * time.Second))
	resp, err := Unpack(readFrame(t, conn2))
	if err != nil || len(resp.Answers) != 1 {
		t.Fatalf("query after eviction: resp=%+v err=%v", resp, err)
	}
}

func TestServeTCPQueryBudget(t *testing.T) {
	n := netsim.New()
	srv, _ := startTCPServer(t, n, "10.7.1.4:53",
		ServerConfig{Catalog: chaosCatalog(t, 1), TCPQueryBudget: 3})
	conn := dialTCP(t, n, "10.7.1.4:53")
	frame := frameQuery(t, "d00.chaos.example.")
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	for i := 0; i < 3; i++ {
		if _, err := conn.Write(frame); err != nil {
			t.Fatal(err)
		}
		if _, err := Unpack(readFrame(t, conn)); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	// The 4th query on this connection is never read: budget exhausted.
	conn.Write(frame)
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err != io.EOF {
		t.Fatalf("read past budget: err = %v, want EOF", err)
	}
	st := srv.Stats()
	if st.TCPBudgetCloses != 1 || st.TCPQueries != 3 {
		t.Errorf("stats = %+v, want TCPBudgetCloses=1 TCPQueries=3", st)
	}
}

func TestServeTCPAdmissionControl(t *testing.T) {
	n := netsim.New()
	srv, _ := startTCPServer(t, n, "10.7.1.5:53",
		ServerConfig{Catalog: chaosCatalog(t, 1), MaxTCPConns: 2, ReadTimeout: 100 * time.Millisecond})
	// Two slowloris connections pin both admission slots...
	c1 := dialTCP(t, n, "10.7.1.5:53")
	c2 := dialTCP(t, n, "10.7.1.5:53")
	_, _ = c1, c2
	// ...so the third is shed at accept time: closed without a byte.
	c3 := dialTCP(t, n, "10.7.1.5:53")
	c3.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := c3.Read(buf); err != io.EOF {
		t.Fatalf("read on rejected conn: err = %v, want EOF", err)
	}
	st := srv.Stats()
	if st.TCPAccepted != 2 || st.TCPRejected != 1 {
		t.Fatalf("stats = %+v, want TCPAccepted=2 TCPRejected=1", st)
	}
	// The idle deadline evicts the stalled pair, so the cap is not
	// exhausted forever: a fresh client gets a slot and an answer.
	deadline := time.Now().Add(5 * time.Second)
	for {
		c := dialTCP(t, n, "10.7.1.5:53")
		c.SetDeadline(time.Now().Add(time.Second))
		if _, err := c.Write(frameQuery(t, "d00.chaos.example.")); err == nil {
			var lenBuf [2]byte
			if _, err := io.ReadFull(c, lenBuf[:]); err == nil {
				resp := make([]byte, binary.BigEndian.Uint16(lenBuf[:]))
				if _, err := io.ReadFull(c, resp); err == nil {
					m, err := Unpack(resp)
					if err != nil || len(m.Answers) != 1 {
						t.Fatalf("post-eviction answer: resp=%+v err=%v", m, err)
					}
					break
				}
			}
		}
		c.Close()
		if time.Now().After(deadline) {
			t.Fatal("admission slots never freed after slowloris eviction")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// BenchmarkServeTCP measures the steady-state per-query cost of one TCP
// connection, the path the reused read/write buffers optimize.
func BenchmarkServeTCP(b *testing.B) {
	n := netsim.New()
	cat := NewCatalog()
	z := NewZone("bench.example")
	z.MustAdd(RR{Name: "bench.example.", Type: TypeMX, TTL: 60,
		Data: MXData{Preference: 10, Exchange: "mx.bench.example."}})
	cat.AddZone(z)
	srv, err := NewServer(ServerConfig{Catalog: cat, TCPQueryBudget: -1})
	if err != nil {
		b.Fatal(err)
	}
	ln, err := n.Listen(netip.MustParseAddrPort("10.7.2.1:53"))
	if err != nil {
		b.Fatal(err)
	}
	go srv.ServeTCP(ln)
	defer srv.Close()
	conn, err := n.Dial(context.Background(), netip.MustParseAddrPort("10.7.2.1:53"))
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()

	q := NewQuery(1, "bench.example.", TypeMX)
	wire, err := q.Pack()
	if err != nil {
		b.Fatal(err)
	}
	frame := make([]byte, 2+len(wire))
	binary.BigEndian.PutUint16(frame, uint16(len(wire)))
	copy(frame[2:], wire)
	var lenBuf [2]byte
	resp := make([]byte, 512)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conn.Write(frame); err != nil {
			b.Fatal(err)
		}
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			b.Fatal(err)
		}
		m := int(binary.BigEndian.Uint16(lenBuf[:]))
		if _, err := io.ReadFull(conn, resp[:m]); err != nil {
			b.Fatal(err)
		}
	}
	if !bytes.Equal(resp[:2], []byte{0, 1}) {
		b.Fatalf("last response carries ID %x, want 0001", resp[:2])
	}
}
