package report

import (
	"strings"
	"testing"
)

func TestTableText(t *testing.T) {
	tb := NewTable("Top companies", "Rank", "Company", "Share")
	tb.AddRow("1", "Google", "28.5%")
	tb.AddRow("2", "Microsoft", "10.8%")
	var sb strings.Builder
	if err := tb.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Top companies", "Rank", "Google", "10.8%", "----"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestTableRowPadding(t *testing.T) {
	tb := NewTable("", "A", "B")
	tb.AddRow("only-one")
	tb.AddRow("x", "y", "dropped-extra")
	var sb strings.Builder
	if err := tb.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "dropped-extra") {
		t.Error("extra cell not dropped")
	}
}

func TestTableCSVQuoting(t *testing.T) {
	tb := NewTable("", "name", "note")
	tb.AddRow("a,b", `say "hi"`)
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `"a,b"`) || !strings.Contains(out, `"say ""hi"""`) {
		t.Errorf("CSV quoting wrong:\n%s", out)
	}
	if !strings.HasPrefix(out, "name,note\n") {
		t.Errorf("CSV header wrong:\n%s", out)
	}
}

func TestChartText(t *testing.T) {
	c := NewChart("Market share", []string{"2017", "2019", "2021"})
	c.AddSeries("Google", []float64{26.2, 27.3, 28.5})
	c.AddSeries("Self", []float64{11.7, 9.8, 7.9})
	var sb strings.Builder
	if err := c.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Market share", "Google", "26.20%", "2021"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// Rising series must end on the tallest glyph; falling on the lowest.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	gLine := lines[2]
	if !strings.HasSuffix(gLine, "█") {
		t.Errorf("rising series sparkline wrong: %q", gLine)
	}
	sLine := lines[3]
	if !strings.HasSuffix(sLine, "▁") {
		t.Errorf("falling series sparkline wrong: %q", sLine)
	}
}

func TestSparklineFlat(t *testing.T) {
	if s := sparkline([]float64{5, 5, 5}); s != "▁▁▁" {
		t.Errorf("flat sparkline = %q", s)
	}
	if s := sparkline(nil); s != "" {
		t.Errorf("empty sparkline = %q", s)
	}
}

func TestAddRowf(t *testing.T) {
	tb := NewTable("", "x", "pct")
	tb.AddRowf("%.1f", "label", 12.345)
	var sb strings.Builder
	tb.WriteText(&sb)
	if !strings.Contains(sb.String(), "12.3") {
		t.Errorf("AddRowf formatting: %s", sb.String())
	}
}
