package report

import (
	"strings"
	"testing"
)

func TestChartSVG(t *testing.T) {
	c := NewChart("Share & <trends>", []string{"2017", "2019", "2021"})
	c.AddSeries("Google", []float64{26.2, 27.3, 28.5})
	c.AddSeries("Self-Hosted", []float64{11.7, 9.8, 7.9})
	var sb strings.Builder
	if err := c.WriteSVG(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"<svg", "</svg>",
		"Share &amp; &lt;trends&gt;", // XML escaping
		"polyline",
		"Google", "Self-Hosted",
		"2017", "2021",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Count(out, "<polyline") != 2 {
		t.Errorf("polyline count = %d, want 2", strings.Count(out, "<polyline"))
	}
}

func TestChartSVGEmptyAndFlat(t *testing.T) {
	c := NewChart("Empty", []string{"a"})
	c.AddSeries("zero", []float64{0})
	var sb strings.Builder
	if err := c.WriteSVG(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "</svg>") {
		t.Error("degenerate chart did not render")
	}
}
