// Package report renders the experiment outputs as aligned text tables,
// CSV files and simple ASCII sparkline charts, so every table and figure
// of the paper can be regenerated as a terminal- and diff-friendly
// artifact.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	// Title is printed above the table.
	Title string
	// Header holds the column names.
	Header []string
	rows   [][]string
}

// NewTable creates a table with the given title and columns.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends one row; cells beyond the header width are dropped and
// missing cells are blank.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values.
func (t *Table) AddRowf(format string, cells ...any) {
	strs := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			strs[i] = v
		case float64:
			strs[i] = fmt.Sprintf(format, v)
		default:
			strs[i] = fmt.Sprint(v)
		}
	}
	t.AddRow(strs...)
}

// NumRows reports the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// WriteText renders the aligned table.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title + "\n")
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell + strings.Repeat(" ", widths[i]-len(cell)))
		}
		sb.WriteString("\n")
	}
	writeRow(t.Header)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	sb.WriteString(strings.Repeat("-", total) + "\n")
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteCSV renders the table as CSV with minimal quoting.
func (t *Table) WriteCSV(w io.Writer) error {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = "\"" + strings.ReplaceAll(cell, "\"", "\"\"") + "\""
			}
			sb.WriteString(cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// Chart renders multi-series time data as rows of percentages plus a
// trend sparkline, the textual stand-in for the paper's line plots.
type Chart struct {
	// Title is printed above the chart.
	Title string
	// XLabels are the time axis labels.
	XLabels []string
	series  []chartSeries
}

type chartSeries struct {
	name   string
	values []float64
}

// NewChart creates a chart over the given x labels.
func NewChart(title string, xLabels []string) *Chart {
	return &Chart{Title: title, XLabels: xLabels}
}

// AddSeries appends one named series; its length should match XLabels.
func (c *Chart) AddSeries(name string, values []float64) {
	c.series = append(c.series, chartSeries{name: name, values: values})
}

var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// WriteText renders each series as "name  v0 v1 ... vn  sparkline".
func (c *Chart) WriteText(w io.Writer) error {
	var sb strings.Builder
	if c.Title != "" {
		sb.WriteString(c.Title + "\n")
	}
	nameW := 0
	for _, s := range c.series {
		if len(s.name) > nameW {
			nameW = len(s.name)
		}
	}
	sb.WriteString(strings.Repeat(" ", nameW) + " ")
	for _, x := range c.XLabels {
		fmt.Fprintf(&sb, " %7s", x)
	}
	sb.WriteString("\n")
	for _, s := range c.series {
		sb.WriteString(s.name + strings.Repeat(" ", nameW-len(s.name)) + " ")
		for _, v := range s.values {
			fmt.Fprintf(&sb, " %6.2f%%", v)
		}
		sb.WriteString("  " + sparkline(s.values) + "\n")
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// sparkline maps values onto block glyphs scaled per series.
func sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var sb strings.Builder
	for _, v := range values {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		sb.WriteRune(sparkRunes[idx])
	}
	return sb.String()
}
