package report

import (
	"fmt"
	"io"
	"strings"
)

// WriteSVG renders the chart as a standalone SVG line plot — the
// graphical counterpart of WriteText, used to regenerate the paper's
// figures as image files.
func (c *Chart) WriteSVG(w io.Writer) error {
	const (
		width     = 760
		height    = 420
		marginL   = 60
		marginR   = 170
		marginT   = 40
		marginB   = 50
		plotW     = width - marginL - marginR
		plotH     = height - marginT - marginB
		tickCount = 5
	)
	maxV := 0.0
	for _, s := range c.series {
		for _, v := range s.values {
			if v > maxV {
				maxV = v
			}
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	maxV *= 1.08 // headroom

	x := func(i int) float64 {
		if len(c.XLabels) <= 1 {
			return marginL
		}
		return marginL + float64(i)/float64(len(c.XLabels)-1)*plotW
	}
	y := func(v float64) float64 {
		return marginT + (1-v/maxV)*plotH
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n", width, height)
	fmt.Fprintf(&sb, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&sb, `<text x="%d" y="20" font-size="14" font-weight="bold">%s</text>`+"\n", marginL, escapeXML(c.Title))

	// Axes and horizontal grid.
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT+plotH, marginL+plotW, marginT+plotH)
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT, marginL, marginT+plotH)
	for i := 0; i <= tickCount; i++ {
		v := maxV * float64(i) / tickCount
		yy := y(v)
		fmt.Fprintf(&sb, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#dddddd"/>`+"\n",
			marginL, yy, marginL+plotW, yy)
		fmt.Fprintf(&sb, `<text x="%d" y="%.1f" text-anchor="end">%.1f%%</text>`+"\n",
			marginL-6, yy+4, v)
	}
	// X labels, thinned when crowded.
	step := 1
	if len(c.XLabels) > 6 {
		step = 2
	}
	for i := 0; i < len(c.XLabels); i += step {
		fmt.Fprintf(&sb, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`+"\n",
			x(i), marginT+plotH+18, escapeXML(c.XLabels[i]))
	}

	// Series polylines with a color-blind-friendly palette.
	palette := []string{
		"#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee",
		"#aa3377", "#bbbbbb", "#000000",
	}
	for si, s := range c.series {
		color := palette[si%len(palette)]
		var pts []string
		for i, v := range s.values {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", x(i), y(v)))
		}
		fmt.Fprintf(&sb, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			strings.Join(pts, " "), color)
		for i, v := range s.values {
			fmt.Fprintf(&sb, `<circle cx="%.1f" cy="%.1f" r="2.5" fill="%s"/>`+"\n", x(i), y(v), color)
		}
		// Legend entry.
		ly := marginT + 16*si
		fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			marginL+plotW+12, ly, marginL+plotW+34, ly, color)
		fmt.Fprintf(&sb, `<text x="%d" y="%d">%s</text>`+"\n",
			marginL+plotW+40, ly+4, escapeXML(s.name))
	}
	sb.WriteString("</svg>\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

func escapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
