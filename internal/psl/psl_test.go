package psl

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRegisteredDomainBasic(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"example.com", "example.com", true},
		{"www.example.com", "example.com", true},
		{"a.b.c.example.com", "example.com", true},
		{"example.co.uk", "example.co.uk", true},
		{"www.example.co.uk", "example.co.uk", true},
		{"example.gov", "example.gov", true},
		{"sub.agency.gov", "agency.gov", true},
		{"example.com.br", "example.com.br", true},
		{"mx1.provider.com", "provider.com", true},
		{"aspmx.l.google.com", "google.com", true},
		{"mx1.smtp.goog", "smtp.goog", true},
		// Bare public suffixes have no registered domain.
		{"com", "", false},
		{"co.uk", "", false},
		{"gov", "", false},
		// Unknown TLD: default rule * applies, suffix is rightmost label.
		{"foo.bar.unknowntld", "bar.unknowntld", true},
		{"unknowntld", "", false},
		// Degenerate inputs.
		{"", "", false},
		{".", "", false},
		{"..", "", false},
		{".com", "", false},
		{"example..com", "", false},
	}
	for _, c := range cases {
		got, ok := RegisteredDomain(c.in)
		if got != c.want || ok != c.ok {
			t.Errorf("RegisteredDomain(%q) = (%q, %v), want (%q, %v)", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestRegisteredDomainNormalization(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"EXAMPLE.COM", "example.com"},
		{"Example.Co.UK", "example.co.uk"},
		{"example.com.", "example.com"},
		{"  example.com  ", "example.com"},
	}
	for _, c := range cases {
		got, ok := RegisteredDomain(c.in)
		if !ok || got != c.want {
			t.Errorf("RegisteredDomain(%q) = (%q, %v), want (%q, true)", c.in, got, ok, c.want)
		}
	}
}

func TestWildcardAndException(t *testing.T) {
	// *.kawasaki.jp is a wildcard suffix; city.kawasaki.jp is an exception.
	cases := []struct {
		in     string
		suffix string
		reg    string
		regOK  bool
	}{
		{"foo.bar.kawasaki.jp", "bar.kawasaki.jp", "foo.bar.kawasaki.jp", true},
		{"bar.kawasaki.jp", "bar.kawasaki.jp", "", false},
		{"city.kawasaki.jp", "kawasaki.jp", "city.kawasaki.jp", true},
		{"www.city.kawasaki.jp", "kawasaki.jp", "city.kawasaki.jp", true},
		{"example.co.jp", "co.jp", "example.co.jp", true},
	}
	for _, c := range cases {
		suffix, _ := PublicSuffix(c.in)
		if suffix != c.suffix {
			t.Errorf("PublicSuffix(%q) = %q, want %q", c.in, suffix, c.suffix)
		}
		reg, ok := RegisteredDomain(c.in)
		if reg != c.reg || ok != c.regOK {
			t.Errorf("RegisteredDomain(%q) = (%q, %v), want (%q, %v)", c.in, reg, ok, c.reg, c.regOK)
		}
	}
}

func TestPublicSuffixExplicit(t *testing.T) {
	if s, explicit := PublicSuffix("example.com"); s != "com" || !explicit {
		t.Errorf("PublicSuffix(example.com) = (%q, %v), want (com, true)", s, explicit)
	}
	if s, explicit := PublicSuffix("x.unknowntld"); s != "unknowntld" || explicit {
		t.Errorf("PublicSuffix(x.unknowntld) = (%q, %v), want (unknowntld, false)", s, explicit)
	}
}

func TestInSuffixList(t *testing.T) {
	for _, d := range []string{"com", "co.uk", "gov", "blogspot.com"} {
		if !Default.InSuffixList(d) {
			t.Errorf("InSuffixList(%q) = false, want true", d)
		}
	}
	for _, d := range []string{"example.com", "x.co.uk", ""} {
		if Default.InSuffixList(d) {
			t.Errorf("InSuffixList(%q) = true, want false", d)
		}
	}
}

func TestPrivateSection(t *testing.T) {
	reg, ok := RegisteredDomain("myblog.blogspot.com")
	if !ok || reg != "myblog.blogspot.com" {
		t.Errorf("RegisteredDomain(myblog.blogspot.com) = (%q, %v), want itself", reg, ok)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"foo.*.bar", // interior wildcard
		"!com",      // single-label exception
		"foo..bar",  // empty label
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c)); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", c)
		}
	}
}

func TestParseIgnoresCommentsAndBlankLines(t *testing.T) {
	l, err := Parse(strings.NewReader("// header\n\ncom\nnet // trailing\n  \n"))
	if err != nil {
		t.Fatal(err)
	}
	// "net // trailing" should parse as rule "net" per the whitespace rule.
	if l.Len() != 2 {
		t.Errorf("Len = %d, want 2", l.Len())
	}
	if got, ok := l.RegisteredDomain("a.net"); !ok || got != "a.net" {
		t.Errorf("RegisteredDomain(a.net) = (%q, %v)", got, ok)
	}
}

// Property: the registered domain is always a suffix of the input and has
// exactly one more label than the public suffix.
func TestRegisteredDomainProperties(t *testing.T) {
	labels := []string{"a", "mail", "mx1", "www", "example", "corp", "x9"}
	tlds := []string{"com", "co.uk", "gov", "jp", "co.jp", "unknowntld", "com.br"}
	f := func(i, j, k uint8, depth uint8) bool {
		name := tlds[int(k)%len(tlds)]
		for d := 0; d < int(depth%4)+1; d++ {
			name = labels[(int(i)+d*int(j)+d)%len(labels)] + "." + name
		}
		reg, ok := Default.RegisteredDomain(name)
		if !ok {
			return false // we always prepended at least one label
		}
		if !strings.HasSuffix(name, reg) && name != reg {
			return false
		}
		suffix, _ := Default.PublicSuffix(name)
		return strings.Count(reg, ".") == strings.Count(suffix, ".")+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: RegisteredDomain is idempotent — applying it to its own output
// returns the same value.
func TestRegisteredDomainIdempotent(t *testing.T) {
	f := func(sub uint8) bool {
		names := []string{
			"a.b.example.com", "x.example.co.uk", "deep.sub.tree.example.gov",
			"www.foo.com.br", "m.n.o.p.example.ru",
		}
		name := names[int(sub)%len(names)]
		reg1, ok1 := Default.RegisteredDomain(name)
		if !ok1 {
			return false
		}
		reg2, ok2 := Default.RegisteredDomain(reg1)
		return ok2 && reg1 == reg2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkRegisteredDomain(b *testing.B) {
	names := []string{
		"www.example.com", "mx1.provider.co.uk", "a.b.c.d.example.gov",
		"foo.bar.kawasaki.jp", "city.kawasaki.jp", "x.unknowntld",
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Default.RegisteredDomain(names[i%len(names)])
	}
}
