package psl

import (
	"sync"
	"testing"
)

var memoHosts = []string{
	"mx1.provider.com",
	"aspmx.l.google.com",
	"mail.example.co.uk",
	"com",               // public suffix itself: no registered domain
	"",                  // empty
	"MX1.Provider.COM.", // needs normalization
	"host.city.kawasaki.jp",
	"host.example.kawasaki.jp",
	"weird..name",
}

func TestMemoMatchesList(t *testing.T) {
	m := NewMemo(Default)
	for pass := 0; pass < 2; pass++ { // second pass hits the cache
		for _, h := range memoHosts {
			wantReg, wantOK := Default.RegisteredDomain(h)
			gotReg, gotOK := m.RegisteredDomain(h)
			if gotReg != wantReg || gotOK != wantOK {
				t.Errorf("pass %d: Memo.RegisteredDomain(%q) = (%q, %v), want (%q, %v)",
					pass, h, gotReg, gotOK, wantReg, wantOK)
			}
		}
	}
	if m.Size() == 0 {
		t.Error("Size = 0 after lookups")
	}
}

func TestMemoNilListDefaults(t *testing.T) {
	m := NewMemo(nil)
	if m.List() != Default {
		t.Error("nil list should default to psl.Default")
	}
	reg, ok := m.RegisteredDomain("mail.example.com")
	if !ok || reg != "example.com" {
		t.Errorf("RegisteredDomain = (%q, %v)", reg, ok)
	}
}

func TestMemoConcurrent(t *testing.T) {
	m := NewMemo(Default)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				h := memoHosts[i%len(memoHosts)]
				wantReg, wantOK := Default.RegisteredDomain(h)
				gotReg, gotOK := m.RegisteredDomain(h)
				if gotReg != wantReg || gotOK != wantOK {
					t.Errorf("concurrent lookup of %q diverged", h)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got, want := m.Size(), len(memoHosts); got != want {
		t.Errorf("Size = %d, want %d distinct hosts", got, want)
	}
}
