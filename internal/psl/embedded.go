package psl

// Default is the package's embedded Public Suffix List snapshot. It is a
// curated subset of the upstream list: all generic TLDs and country-code
// TLDs used by this repository's world generator and experiments, plus the
// multi-label and wildcard/exception rules needed to exercise every branch
// of the matching algorithm.
//
// The snapshot intentionally mirrors the upstream file format (comments,
// sections) so it can be swapped for a full copy of the published list
// without code changes.
var Default = MustParse(embeddedRules)

const embeddedRules = `
// ===BEGIN ICANN DOMAINS===

// Generic TLDs
com
net
org
edu
gov
mil
int
info
biz
name
io
co
me
tv
cc
ws
app
dev
cloud
email
goog

// gov.* style registries
fed.us
state.us
us

// United Kingdom
uk
ac.uk
co.uk
gov.uk
ltd.uk
me.uk
net.uk
nhs.uk
org.uk
plc.uk
police.uk
*.sch.uk

// Japan: wildcard city domains plus exceptions, per upstream.
jp
ac.jp
ad.jp
co.jp
ed.jp
go.jp
gr.jp
lg.jp
ne.jp
or.jp
*.kawasaki.jp
*.kitakyushu.jp
*.kobe.jp
*.nagoya.jp
*.sapporo.jp
*.sendai.jp
*.yokohama.jp
!city.kawasaki.jp
!city.kitakyushu.jp
!city.kobe.jp
!city.nagoya.jp
!city.sapporo.jp
!city.sendai.jp
!city.yokohama.jp

// Brazil
br
com.br
net.br
org.br
gov.br
edu.br

// Argentina
ar
com.ar
net.ar
org.ar
gob.ar
edu.ar

// France
fr
asso.fr
com.fr
gouv.fr

// Germany
de

// Italy
it
gov.it
edu.it

// Spain
es
com.es
nom.es
org.es
gob.es
edu.es

// Romania
ro
com.ro
org.ro
store.ro

// Canada
ca
gc.ca

// Australia
au
com.au
net.au
org.au
edu.au
gov.au
id.au

// Russia
ru
com.ru
msk.ru
spb.ru

// China
cn
ac.cn
com.cn
edu.cn
gov.cn
net.cn
org.cn
mil.cn

// India
in
co.in
firm.in
net.in
org.in
gen.in
ind.in
gov.in
nic.in

// Singapore
sg
com.sg
net.sg
org.sg
gov.sg
edu.sg

// Netherlands
nl

// Ukraine
ua
com.ua
net.ua
org.ua
gov.ua
in.ua

// ===END ICANN DOMAINS===
// ===BEGIN PRIVATE DOMAINS===

// Hosting providers that register customer subdomains, mirroring upstream
// private-section entries. These matter for VPS certificate handling.
blogspot.com
appspot.com
herokuapp.com
github.io
cloudfront.net

// ===END PRIVATE DOMAINS===
`
