package psl

import "sync"

// memoShards is the number of independently locked cache shards. Sharding
// keeps contention negligible when many goroutines resolve hosts
// concurrently; 64 shards comfortably cover the pool sizes the inference
// engine uses.
const memoShards = 64

// Memo wraps a List with a concurrency-safe memoization cache for
// RegisteredDomain. The paper's inference hot path extracts the
// registered domain of the same hosts over and over — every certificate
// name, Banner/EHLO identity and MX exchange recurs across domains — so
// caching turns the per-host suffix walk into a single lookup per
// distinct host per run.
//
// A Memo is safe for concurrent use. Entries are never evicted: the
// working set is bounded by the number of distinct hosts in a snapshot.
type Memo struct {
	list   *List
	shards [memoShards]memoShard
}

type memoShard struct {
	mu sync.RWMutex
	m  map[string]memoEntry
}

type memoEntry struct {
	reg string
	ok  bool
}

// NewMemo creates a memoizing view of list (Default when nil).
func NewMemo(list *List) *Memo {
	if list == nil {
		list = Default
	}
	return &Memo{list: list}
}

// List returns the underlying suffix list.
func (m *Memo) List() *List { return m.list }

// RegisteredDomain is List.RegisteredDomain with memoization. Results are
// keyed on the input string verbatim; since the underlying computation is
// pure, cached and fresh answers are always identical.
func (m *Memo) RegisteredDomain(host string) (string, bool) {
	sh := &m.shards[shardOf(host)]
	sh.mu.RLock()
	e, hit := sh.m[host]
	sh.mu.RUnlock()
	if hit {
		return e.reg, e.ok
	}
	reg, ok := m.list.RegisteredDomain(host)
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[string]memoEntry)
	}
	sh.m[host] = memoEntry{reg: reg, ok: ok}
	sh.mu.Unlock()
	return reg, ok
}

// Size reports the number of distinct hosts cached so far.
func (m *Memo) Size() int {
	n := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// shardOf hashes a host onto a shard (FNV-1a).
func shardOf(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h % memoShards
}
