// Package psl implements the Public Suffix List algorithm used to split a
// fully qualified domain name into its public suffix and its registered
// domain (also known as eTLD+1).
//
// The paper's methodology leans on registered-domain extraction in three
// places: turning certificate names into provider identities, turning
// Banner/EHLO hostnames into provider identities, and falling back to the
// registered-domain part of an MX record. The matching rules follow the
// algorithm published at https://publicsuffix.org/list/:
//
//   - A rule matches a domain when the rule's labels are a suffix of the
//     domain's labels, comparing label by label from the right.
//   - A label of "*" in a rule matches any single label.
//   - Rules prefixed with "!" are exceptions and win over wildcard rules.
//   - When no rule matches, the public suffix is the rightmost label.
//   - The prevailing rule is the matching rule with the most labels
//     (exceptions are treated as if they had one label fewer).
//
// The zero value of List is unusable; construct one with Parse or use the
// package-level Default list, which embeds a snapshot sufficient for the
// TLDs exercised by this repository's world generator and tests.
package psl

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// A rule is one parsed line of the public suffix list.
type rule struct {
	labels    []string // reversed: labels[0] is the TLD-most label
	exception bool
}

// List is an immutable, matchable set of public-suffix rules.
type List struct {
	// rules indexed by their rightmost (TLD) label for quick candidate
	// lookup. Wildcard-only rules (rare; none in practice) would index
	// under "*".
	byTLD map[string][]rule
	n     int
}

// Parse reads public-suffix rules, one per line, from r. Blank lines and
// comments ("//") are ignored, as is any text after the first whitespace on
// a line, matching the upstream file format.
func Parse(r io.Reader) (*List, error) {
	l := &List{byTLD: make(map[string][]rule)}
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if i := strings.IndexAny(line, " \t"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		ru, err := parseRule(line)
		if err != nil {
			return nil, fmt.Errorf("psl: line %d: %w", lineno, err)
		}
		tld := ru.labels[0]
		l.byTLD[tld] = append(l.byTLD[tld], ru)
		l.n++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("psl: %w", err)
	}
	// Exception rules first (they always prevail per the published
	// algorithm), then longest rules, so the first match found is the
	// prevailing one.
	for _, rules := range l.byTLD {
		sort.SliceStable(rules, func(i, j int) bool {
			if rules[i].exception != rules[j].exception {
				return rules[i].exception
			}
			return effectiveLen(rules[i]) > effectiveLen(rules[j])
		})
	}
	return l, nil
}

// MustParse is like Parse but panics on error. It is intended for
// package-level initialization of embedded lists.
func MustParse(s string) *List {
	l, err := Parse(strings.NewReader(s))
	if err != nil {
		panic(err)
	}
	return l
}

func parseRule(s string) (rule, error) {
	var ru rule
	if strings.HasPrefix(s, "!") {
		ru.exception = true
		s = s[1:]
	}
	s = strings.TrimPrefix(s, ".")
	s = strings.ToLower(s)
	if s == "" {
		return rule{}, fmt.Errorf("empty rule")
	}
	parts := strings.Split(s, ".")
	for i, p := range parts {
		if p == "" {
			return rule{}, fmt.Errorf("empty label in rule %q", s)
		}
		if p == "*" && i != 0 {
			// The PSL format technically allows interior wildcards but no
			// published rule uses them; rejecting keeps matching simple.
			return rule{}, fmt.Errorf("non-leading wildcard in rule %q", s)
		}
	}
	// Reverse so labels[0] is the TLD.
	ru.labels = make([]string, len(parts))
	for i, p := range parts {
		ru.labels[len(parts)-1-i] = p
	}
	if ru.exception && len(ru.labels) < 2 {
		return rule{}, fmt.Errorf("exception rule %q must have at least two labels", s)
	}
	return ru, nil
}

// effectiveLen is the label count used to pick the prevailing rule;
// exceptions count as one label fewer per the published algorithm.
func effectiveLen(r rule) int {
	if r.exception {
		return len(r.labels) - 1
	}
	return len(r.labels)
}

// Len reports the number of rules in the list.
func (l *List) Len() int { return l.n }

// PublicSuffix returns the public suffix of domain according to the list,
// and whether the suffix came from an explicit (non-default) rule. The
// domain must be a normalized host name; trailing dots are removed and the
// comparison is case-insensitive.
func (l *List) PublicSuffix(domain string) (suffix string, explicit bool) {
	labels := splitLabels(domain)
	if len(labels) == 0 {
		return "", false
	}
	n, explicit := l.suffixLen(labels)
	return strings.Join(labels[len(labels)-n:], "."), explicit
}

// suffixLen returns how many of the trailing labels form the public suffix.
func (l *List) suffixLen(labels []string) (n int, explicit bool) {
	tld := labels[len(labels)-1]
	best := 0
	for _, ru := range l.byTLD[tld] {
		if m, ok := matchRule(ru, labels); ok {
			best = m
			explicit = true
			break // rules are sorted longest-first
		}
	}
	if best == 0 {
		return 1, explicit // default rule "*": the suffix is the TLD itself
	}
	return best, explicit
}

// matchRule reports whether ru matches the (non-reversed) labels, and if so
// how many trailing labels the resulting public suffix spans.
func matchRule(ru rule, labels []string) (int, bool) {
	if len(ru.labels) > len(labels) {
		return 0, false
	}
	for i, rl := range ru.labels {
		dl := labels[len(labels)-1-i]
		if rl == "*" {
			continue
		}
		if rl != dl {
			return 0, false
		}
	}
	if ru.exception {
		// An exception rule's public suffix is the rule minus its leftmost
		// label.
		return len(ru.labels) - 1, true
	}
	return len(ru.labels), true
}

// RegisteredDomain returns the registered domain (eTLD+1) for the given
// host name: the public suffix plus one additional label. It returns
// ok=false when the name is empty, is itself a public suffix, or has no
// label to the left of the suffix.
func (l *List) RegisteredDomain(domain string) (reg string, ok bool) {
	labels := splitLabels(domain)
	if len(labels) == 0 {
		return "", false
	}
	n, _ := l.suffixLen(labels)
	if n >= len(labels) {
		return "", false
	}
	return strings.Join(labels[len(labels)-n-1:], "."), true
}

// InSuffixList reports whether domain exactly equals a public suffix.
func (l *List) InSuffixList(domain string) bool {
	labels := splitLabels(domain)
	if len(labels) == 0 {
		return false
	}
	n, _ := l.suffixLen(labels)
	return n == len(labels)
}

// splitLabels normalizes a host name and splits it into labels. It returns
// nil for names that cannot be a valid host (empty labels, leading dot).
func splitLabels(domain string) []string {
	domain = strings.TrimSuffix(strings.ToLower(strings.TrimSpace(domain)), ".")
	if domain == "" {
		return nil
	}
	labels := strings.Split(domain, ".")
	for _, lb := range labels {
		if lb == "" {
			return nil
		}
	}
	return labels
}

// RegisteredDomain extracts the registered domain using the Default list.
// See List.RegisteredDomain.
func RegisteredDomain(domain string) (string, bool) {
	return Default.RegisteredDomain(domain)
}

// PublicSuffix extracts the public suffix using the Default list.
// See List.PublicSuffix.
func PublicSuffix(domain string) (string, bool) {
	return Default.PublicSuffix(domain)
}
