package asn

import (
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
)

func mustPrefix(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func mustAddr(s string) netip.Addr     { return netip.MustParseAddr(s) }

func TestTableLongestPrefixMatch(t *testing.T) {
	tb := NewTable()
	inserts := []struct {
		p   string
		asn ASN
	}{
		{"10.0.0.0/8", 100},
		{"10.1.0.0/16", 200},
		{"10.1.2.0/24", 300},
		{"192.0.2.0/24", 400},
		{"0.0.0.0/0", 1},
	}
	for _, in := range inserts {
		if err := tb.Insert(mustPrefix(in.p), in.asn); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		addr string
		want ASN
	}{
		{"10.2.3.4", 100},
		{"10.1.9.9", 200},
		{"10.1.2.3", 300},
		{"192.0.2.200", 400},
		{"8.8.8.8", 1}, // default route
	}
	for _, c := range cases {
		got, ok := tb.Lookup(mustAddr(c.addr))
		if !ok || got != c.want {
			t.Errorf("Lookup(%s) = (%v, %v), want %v", c.addr, got, ok, c.want)
		}
	}
}

func TestTableNoMatch(t *testing.T) {
	tb := NewTable()
	tb.Insert(mustPrefix("10.0.0.0/8"), 100)
	if _, ok := tb.Lookup(mustAddr("11.0.0.1")); ok {
		t.Error("Lookup matched uncovered address")
	}
	if _, ok := tb.Lookup(mustAddr("2001:db8::1")); ok {
		t.Error("Lookup matched IPv6 address with empty v6 table")
	}
}

func TestTableOverwrite(t *testing.T) {
	tb := NewTable()
	tb.Insert(mustPrefix("10.0.0.0/8"), 100)
	tb.Insert(mustPrefix("10.0.0.0/8"), 200)
	if got, _ := tb.Lookup(mustAddr("10.1.1.1")); got != 200 {
		t.Errorf("overwrite failed: %v", got)
	}
	if tb.Len() != 1 {
		t.Errorf("Len = %d, want 1", tb.Len())
	}
}

func TestTableHostRoute(t *testing.T) {
	tb := NewTable()
	tb.Insert(mustPrefix("192.0.2.1/32"), 999)
	if got, ok := tb.Lookup(mustAddr("192.0.2.1")); !ok || got != 999 {
		t.Errorf("host route: (%v, %v)", got, ok)
	}
	if _, ok := tb.Lookup(mustAddr("192.0.2.2")); ok {
		t.Error("host route matched neighbor")
	}
}

func TestTableIPv6LongestPrefixMatch(t *testing.T) {
	tb := NewTable()
	if err := tb.Insert(mustPrefix("2001:db8::/32"), 100); err != nil {
		t.Fatal(err)
	}
	if err := tb.Insert(mustPrefix("2001:db8:1::/48"), 200); err != nil {
		t.Fatal(err)
	}
	if err := tb.Insert(mustPrefix("fd00::/8"), 300); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		addr string
		want ASN
	}{
		{"2001:db8::1", 100},
		{"2001:db8:1::99", 200},
		{"fd12:3456::1", 300},
	}
	for _, c := range cases {
		got, ok := tb.Lookup(mustAddr(c.addr))
		if !ok || got != c.want {
			t.Errorf("Lookup(%s) = (%v, %v), want %v", c.addr, got, ok, c.want)
		}
	}
	if _, ok := tb.Lookup(mustAddr("2002::1")); ok {
		t.Error("uncovered v6 address matched")
	}
	// Families are fully independent.
	if _, ok := tb.Lookup(mustAddr("32.1.13.184")); ok {
		t.Error("v4 address matched v6-only table")
	}
	if tb.Len() != 3 {
		t.Errorf("Len = %d", tb.Len())
	}
}

func TestTableDualStackRoundTrip(t *testing.T) {
	tb := NewTable()
	tb.Insert(mustPrefix("10.0.0.0/8"), 1)
	tb.Insert(mustPrefix("2001:db8::/32"), 2)
	var sb strings.Builder
	if _, err := tb.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	tb2, err := ParseTable(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	p1, p2 := tb.Prefixes(), tb2.Prefixes()
	if len(p1) != 2 || len(p2) != 2 {
		t.Fatalf("prefixes: %v / %v", p1, p2)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Errorf("entry %d: %+v != %+v", i, p1[i], p2[i])
		}
	}
}

func TestTablePrefixesSorted(t *testing.T) {
	tb := NewTable()
	tb.Insert(mustPrefix("10.1.0.0/16"), 2)
	tb.Insert(mustPrefix("10.0.0.0/8"), 1)
	tb.Insert(mustPrefix("9.0.0.0/8"), 3)
	got := tb.Prefixes()
	if len(got) != 3 {
		t.Fatalf("Prefixes len = %d", len(got))
	}
	want := []string{"9.0.0.0/8", "10.0.0.0/8", "10.1.0.0/16"}
	for i, e := range got {
		if e.Prefix.String() != want[i] {
			t.Errorf("Prefixes[%d] = %s, want %s", i, e.Prefix, want[i])
		}
	}
}

func TestParseWriteRoundTrip(t *testing.T) {
	input := "# comment\n8.0.0.0\t8\t3356\n10.0.0.0\t8\t100\n10.1.0.0\t16\t15169_36040\n172.16.0.0\t12\t4808,9394\n"
	tb, err := ParseTable(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tb.Len())
	}
	// MOAS and AS-set take the first origin.
	if got, _ := tb.Lookup(mustAddr("10.1.1.1")); got != 15169 {
		t.Errorf("MOAS parse: %v", got)
	}
	if got, _ := tb.Lookup(mustAddr("172.16.5.5")); got != 4808 {
		t.Errorf("AS-set parse: %v", got)
	}
	var sb strings.Builder
	if _, err := tb.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	tb2, err := ParseTable(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	p1, p2 := tb.Prefixes(), tb2.Prefixes()
	if len(p1) != len(p2) {
		t.Fatalf("round trip size mismatch: %d vs %d", len(p1), len(p2))
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Errorf("entry %d: %+v != %+v", i, p1[i], p2[i])
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"10.0.0.0 8\n",           // too few fields
		"banana 8 100\n",         // bad address
		"10.0.0.0 33 100\n",      // bad length
		"10.0.0.0 8 notanasn\n",  // bad asn
		"10.0.0.0 -1 100\n",      // negative length
		"10.0.0.0 8 100 extra\n", // too many fields
	}
	for _, s := range bad {
		if _, err := ParseTable(strings.NewReader(s)); err == nil {
			t.Errorf("ParseTable(%q) succeeded, want error", s)
		}
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Register(AS{Number: 15169, Name: "GOOGLE", Org: "Google LLC", CountryCode: "US"})
	r.Register(AS{Number: 8075, Name: "MICROSOFT", Org: "Microsoft Corp", CountryCode: "US"})
	a, ok := r.Lookup(15169)
	if !ok || a.Name != "GOOGLE" {
		t.Errorf("Lookup = (%+v, %v)", a, ok)
	}
	if _, ok := r.Lookup(1); ok {
		t.Error("Lookup found unregistered AS")
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d", r.Len())
	}
	all := r.All()
	if len(all) != 2 || all[0].Number != 8075 {
		t.Errorf("All = %+v", all)
	}
	if got := ASN(15169).String(); got != "AS15169" {
		t.Errorf("ASN.String = %q", got)
	}
}

// Property: an inserted /24's covering address always resolves to its ASN
// when no more-specific prefix exists.
func TestInsertLookupProperty(t *testing.T) {
	f := func(a, b, c byte, asn uint32) bool {
		tb := NewTable()
		addr := netip.AddrFrom4([4]byte{a, b, c, 0})
		if err := tb.Insert(netip.PrefixFrom(addr, 24), ASN(asn)); err != nil {
			return false
		}
		probe := netip.AddrFrom4([4]byte{a, b, c, 123})
		got, ok := tb.Lookup(probe)
		return ok && got == ASN(asn)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: more-specific prefixes always win over less-specific ones.
func TestMoreSpecificWinsProperty(t *testing.T) {
	f := func(a, b byte) bool {
		tb := NewTable()
		tb.Insert(netip.PrefixFrom(netip.AddrFrom4([4]byte{a, 0, 0, 0}), 8), 1)
		tb.Insert(netip.PrefixFrom(netip.AddrFrom4([4]byte{a, b, 0, 0}), 16), 2)
		got, ok := tb.Lookup(netip.AddrFrom4([4]byte{a, b, 9, 9}))
		if !ok || got != 2 {
			return false
		}
		other := b + 1
		got, ok = tb.Lookup(netip.AddrFrom4([4]byte{a, other, 9, 9}))
		if other == b { // wrapped; both octets equal
			return ok && got == 2
		}
		return ok && got == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func buildBenchTable(b *testing.B, n int) *Table {
	b.Helper()
	tb := NewTable()
	for i := 0; i < n; i++ {
		addr := netip.AddrFrom4([4]byte{byte(10 + i%100), byte(i / 256 % 256), byte(i % 256), 0})
		if err := tb.Insert(netip.PrefixFrom(addr, 24), ASN(i)); err != nil {
			b.Fatal(err)
		}
	}
	return tb
}

func BenchmarkASNLookupTrie(b *testing.B) {
	tb := buildBenchTable(b, 10000)
	probe := mustAddr("10.3.7.77")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Lookup(probe)
	}
}

// BenchmarkASNLookupLinear is the ablation baseline: scanning all prefixes
// linearly instead of walking the trie.
func BenchmarkASNLookupLinear(b *testing.B) {
	tb := buildBenchTable(b, 10000)
	entries := tb.Prefixes()
	probe := mustAddr("10.3.7.77")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var best Entry
		for _, e := range entries {
			if e.Prefix.Contains(probe) && e.Prefix.Bits() >= best.Prefix.Bits() {
				best = e
			}
		}
		_ = best
	}
}
