// Package asn maps IPv4 addresses to autonomous system numbers via
// longest-prefix match, standing in for CAIDA's Routeviews prefix-to-AS
// dataset that the paper uses to augment MX host addresses with routing
// information.
//
// The core structure is a binary Patricia-style trie over prefix bits.
// A Table is safe for concurrent readers after construction; mutation is
// guarded by a mutex so tables can also be built incrementally.
package asn

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// ASN is an autonomous system number.
type ASN uint32

// String renders the conventional "AS15169" form.
func (a ASN) String() string { return fmt.Sprintf("AS%d", uint32(a)) }

// AS describes one autonomous system.
type AS struct {
	// Number is the AS number.
	Number ASN
	// Name is the short AS name, e.g. "GOOGLE".
	Name string
	// Org is the operating organization, e.g. "Google LLC".
	Org string
	// CountryCode is the ISO 3166-1 alpha-2 registration country.
	CountryCode string
}

// Registry resolves AS numbers to AS descriptions.
type Registry struct {
	mu sync.RWMutex
	as map[ASN]AS
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{as: make(map[ASN]AS)}
}

// Register adds or replaces an AS description.
func (r *Registry) Register(a AS) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.as[a.Number] = a
}

// Lookup returns the description for an ASN.
func (r *Registry) Lookup(n ASN) (AS, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	a, ok := r.as[n]
	return a, ok
}

// Len reports the number of registered systems.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.as)
}

// All returns every registered AS sorted by number.
func (r *Registry) All() []AS {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]AS, 0, len(r.as))
	for _, a := range r.as {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Number < out[j].Number })
	return out
}

// node is a binary trie node. Children are indexed by the next prefix bit.
type node struct {
	children [2]*node
	// set marks a node that terminates an announced prefix.
	set bool
	asn ASN
}

// Table maps IP prefixes to origin ASNs with longest-prefix match. Both
// address families are supported (the paper's method is IPv4-based and
// names IPv6 as future work; this table implements that extension).
type Table struct {
	mu     sync.RWMutex
	root4  *node
	root6  *node
	n4, n6 int
}

// NewTable returns an empty table.
func NewTable() *Table {
	return &Table{root4: &node{}, root6: &node{}}
}

// Insert announces prefix as originated by asn. Inserting the same prefix
// twice overwrites the origin (mirroring a newer RIB snapshot).
func (t *Table) Insert(prefix netip.Prefix, asn ASN) error {
	if !prefix.IsValid() {
		return fmt.Errorf("asn: invalid prefix %s", prefix)
	}
	prefix = prefix.Masked()
	addr := prefix.Addr()
	t.mu.Lock()
	defer t.mu.Unlock()
	var cur *node
	if addr.Is4() {
		cur = t.root4
	} else {
		cur = t.root6
	}
	raw := addr.As16()
	// IPv4 addresses occupy the last 4 bytes of the 16-byte form; start
	// bit indexing at the family's own most-significant bit.
	start := 0
	if addr.Is4() {
		start = 96
	}
	for i := 0; i < prefix.Bits(); i++ {
		b := bitAt(raw, start+i)
		if cur.children[b] == nil {
			cur.children[b] = &node{}
		}
		cur = cur.children[b]
	}
	if !cur.set {
		if addr.Is4() {
			t.n4++
		} else {
			t.n6++
		}
	}
	cur.set = true
	cur.asn = asn
	return nil
}

// Lookup returns the origin ASN of the longest announced prefix covering
// addr, or ok=false when no prefix covers it.
func (t *Table) Lookup(addr netip.Addr) (ASN, bool) {
	if !addr.IsValid() {
		return 0, false
	}
	addr = addr.Unmap()
	t.mu.RLock()
	defer t.mu.RUnlock()
	cur := t.root6
	maxBits := 128
	start := 0
	if addr.Is4() {
		cur = t.root4
		maxBits = 32
		start = 96
	}
	raw := addr.As16()
	var best ASN
	found := false
	for i := 0; ; i++ {
		if cur.set {
			best, found = cur.asn, true
		}
		if i == maxBits {
			break
		}
		next := cur.children[bitAt(raw, start+i)]
		if next == nil {
			break
		}
		cur = next
	}
	return best, found
}

// bitAt extracts bit i (MSB-first) of a 16-byte address.
func bitAt(raw [16]byte, i int) int {
	return int(raw[i/8] >> (7 - i%8) & 1)
}

// Len reports the number of announced prefixes across both families.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.n4 + t.n6
}

// Prefixes returns all announced prefixes with their origins, IPv4 first
// then IPv6, each sorted by address then length. Useful for
// serialization and testing.
func (t *Table) Prefixes() []Entry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	collect := func(root *node, start int, mk func(raw [16]byte, depth int) netip.Prefix) []Entry {
		var out []Entry
		var walk func(n *node, raw [16]byte, depth int)
		walk = func(n *node, raw [16]byte, depth int) {
			if n == nil {
				return
			}
			if n.set {
				out = append(out, Entry{Prefix: mk(raw, depth), ASN: n.asn})
			}
			walk(n.children[0], raw, depth+1)
			i := start + depth
			if i < 128 {
				raw[i/8] |= 1 << (7 - i%8)
				walk(n.children[1], raw, depth+1)
			}
		}
		walk(root, [16]byte{}, 0)
		sort.Slice(out, func(i, j int) bool {
			ai, aj := out[i].Prefix.Addr(), out[j].Prefix.Addr()
			if ai != aj {
				return ai.Less(aj)
			}
			return out[i].Prefix.Bits() < out[j].Prefix.Bits()
		})
		return out
	}
	v4 := collect(t.root4, 96, func(raw [16]byte, depth int) netip.Prefix {
		return netip.PrefixFrom(netip.AddrFrom4([4]byte(raw[12:16])), depth)
	})
	v6 := collect(t.root6, 0, func(raw [16]byte, depth int) netip.Prefix {
		return netip.PrefixFrom(netip.AddrFrom16(raw), depth)
	})
	return append(v4, v6...)
}

// Entry is one announced prefix.
type Entry struct {
	Prefix netip.Prefix
	ASN    ASN
}

func ipv4Bits(addr netip.Addr) uint32 {
	b := addr.As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// WriteTo emits the table in CAIDA prefix2as format: "address<TAB>length
// <TAB>asn", one line per prefix. It implements io.WriterTo.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, e := range t.Prefixes() {
		n, err := fmt.Fprintf(w, "%s\t%d\t%d\n", e.Prefix.Addr(), e.Prefix.Bits(), e.ASN)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ParseTable reads CAIDA prefix2as format. Multi-origin announcements
// ("15169_36040") and AS sets ("4808,9394") take the first AS listed,
// matching common practice when a single origin is required.
func ParseTable(r io.Reader) (*Table, error) {
	t := NewTable()
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("asn: line %d: want 3 fields, got %d", lineno, len(fields))
		}
		addr, err := netip.ParseAddr(fields[0])
		if err != nil {
			return nil, fmt.Errorf("asn: line %d: %w", lineno, err)
		}
		bits, err := strconv.Atoi(fields[1])
		maxBits := 32
		if addr.Is6() && !addr.Is4() {
			maxBits = 128
		}
		if err != nil || bits < 0 || bits > maxBits {
			return nil, fmt.Errorf("asn: line %d: bad prefix length %q", lineno, fields[1])
		}
		asStr := fields[2]
		if i := strings.IndexAny(asStr, "_,"); i >= 0 {
			asStr = asStr[:i]
		}
		asn, err := strconv.ParseUint(asStr, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("asn: line %d: bad ASN %q", lineno, fields[2])
		}
		if err := t.Insert(netip.PrefixFrom(addr, bits), ASN(asn)); err != nil {
			return nil, fmt.Errorf("asn: line %d: %w", lineno, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}
