// Package analysis computes the paper's evaluation artifacts from
// inference results: market shares (Figure 5, Table 6), longitudinal
// trends (Figure 6), churn flows (Figure 7), national provider
// preferences (Figure 8), approach accuracy (Figure 4) and the data
// availability breakdown (Table 4).
package analysis

import (
	"sort"

	"mxmap/internal/companies"
	"mxmap/internal/core"
	"mxmap/internal/psl"
)

// SelfHostedLabel is the bucket used for domains that run their own mail
// service (provider ID equals the domain's own registered domain).
const SelfHostedLabel = "Self-Hosted"

// NoSMTPLabel is the bucket for domains whose MX leads to no responding
// SMTP server.
const NoSMTPLabel = "No SMTP"

// Attributions indexes a result's per-domain outcomes by domain name.
func Attributions(res *core.Result) map[string]core.DomainAttribution {
	out := make(map[string]core.DomainAttribution, len(res.Domains))
	for _, d := range res.Domains {
		out[d.Domain] = d
	}
	return out
}

// CompanyOf maps a provider ID credited to a domain onto the bucket used
// in market-share style analyses: the operating company's name, or
// SelfHostedLabel when the provider ID is the domain's own registered
// domain (the paper's self-hosting definition), or the provider ID
// itself for unmapped long-tail providers.
func CompanyOf(domain, providerID string, dir *companies.Directory) string {
	if reg, ok := psl.RegisteredDomain(domain); ok && reg == providerID {
		return SelfHostedLabel
	}
	if providerID == domain {
		return SelfHostedLabel
	}
	if dir != nil {
		return dir.CompanyName(providerID)
	}
	return providerID
}

// CompanyCredits aggregates a result's split credits into per-company
// domain counts (fractional because of split credit).
func CompanyCredits(res *core.Result, dir *companies.Directory) map[string]float64 {
	out := make(map[string]float64)
	for _, att := range res.Domains {
		for id, credit := range att.Credits {
			out[CompanyOf(att.Domain, id, dir)] += credit
		}
	}
	return out
}

// Share is one company's standing in a market-share table.
type Share struct {
	// Company is the display bucket.
	Company string
	// Domains is the (fractional) number of domains credited.
	Domains float64
	// Percent is Domains over the segment's total domain count.
	Percent float64
}

// TopShares ranks company credits and returns the n largest (all when
// n <= 0), excluding the self-hosted bucket, which the paper plots as its
// own series.
func TopShares(credits map[string]float64, totalDomains int, n int) []Share {
	shares := make([]Share, 0, len(credits))
	for company, c := range credits {
		if company == SelfHostedLabel {
			continue
		}
		shares = append(shares, Share{
			Company: company,
			Domains: c,
			Percent: 100 * c / float64(totalDomains),
		})
	}
	sort.Slice(shares, func(i, j int) bool {
		if shares[i].Domains != shares[j].Domains {
			return shares[i].Domains > shares[j].Domains
		}
		return shares[i].Company < shares[j].Company
	})
	if n > 0 && len(shares) > n {
		shares = shares[:n]
	}
	return shares
}
