package analysis

import (
	"sort"
	"strings"

	"mxmap/internal/companies"
	"mxmap/internal/core"
)

// ccTLDCountry maps the country-code TLDs Figure 8 studies onto country
// codes. Domains under other TLDs are excluded from the national
// analysis.
var ccTLDCountry = map[string]string{
	"br": "BR", "ar": "AR", "uk": "GB", "fr": "FR", "de": "DE",
	"it": "IT", "es": "ES", "ro": "RO", "ca": "CA", "au": "AU",
	"ru": "RU", "cn": "CN", "jp": "JP", "in": "IN", "sg": "SG",
}

// CCTLDs lists the studied ccTLDs in the paper's display order.
func CCTLDs() []string {
	out := make([]string, 0, len(ccTLDCountry))
	for tld := range ccTLDCountry {
		out = append(out, tld)
	}
	sort.Strings(out)
	return out
}

// CountryOfDomain derives the Figure 8 country of a domain from its TLD,
// returning "" for gTLDs and unstudied ccTLDs.
func CountryOfDomain(domain string) string {
	i := strings.LastIndexByte(domain, '.')
	if i < 0 {
		return ""
	}
	return ccTLDCountry[domain[i+1:]]
}

// CCTLDCell is one (ccTLD, provider) cell of Figure 8.
type CCTLDCell struct {
	TLD     string
	Company string
	Domains float64
	Percent float64 // of the ccTLD's domains
}

// CCTLDPreferences computes the Figure 8 matrix: for each studied ccTLD,
// the share of its domains using each tracked company.
func CCTLDPreferences(res *core.Result, dir *companies.Directory, track []string) []CCTLDCell {
	type agg struct {
		total   int
		credits map[string]float64
	}
	byTLD := make(map[string]*agg)
	for _, att := range res.Domains {
		i := strings.LastIndexByte(att.Domain, '.')
		if i < 0 {
			continue
		}
		tld := att.Domain[i+1:]
		if _, studied := ccTLDCountry[tld]; !studied {
			continue
		}
		a := byTLD[tld]
		if a == nil {
			a = &agg{credits: make(map[string]float64)}
			byTLD[tld] = a
		}
		a.total++
		for id, credit := range att.Credits {
			a.credits[CompanyOf(att.Domain, id, dir)] += credit
		}
	}
	var out []CCTLDCell
	for _, tld := range CCTLDs() {
		a := byTLD[tld]
		if a == nil {
			continue
		}
		for _, company := range track {
			c := a.credits[company]
			out = append(out, CCTLDCell{
				TLD: tld, Company: company,
				Domains: c, Percent: 100 * c / float64(a.total),
			})
		}
	}
	return out
}
