package analysis

import (
	"reflect"
	"testing"

	"mxmap/internal/world"
)

// The accumulator fed one attribution at a time must reproduce the
// batch CompanyCredits / TopShares / ComputeConcentration pipeline.
func TestShareAccumulatorMatchesBatch(t *testing.T) {
	w, results := setup(t)
	dates := w.Corpus(world.CorpusAlexa).Dates
	res := results[world.CorpusAlexa][dates[len(dates)-1]]

	acc := NewShareAccumulator(w.Directory)
	for _, att := range res.Domains {
		acc.Add(att)
	}
	if acc.Domains() != len(res.Domains) {
		t.Fatalf("Domains() = %d, want %d", acc.Domains(), len(res.Domains))
	}
	if want := CompanyCredits(res, w.Directory); !reflect.DeepEqual(acc.Credits(), want) {
		t.Errorf("credits diverged:\naccumulated: %v\nbatch:       %v", acc.Credits(), want)
	}
	wantShares := TopShares(CompanyCredits(res, w.Directory), len(res.Domains), 5)
	if got := acc.TopShares(5); !reflect.DeepEqual(got, wantShares) {
		t.Errorf("top shares diverged:\naccumulated: %+v\nbatch:       %+v", got, wantShares)
	}
	wantConc := ComputeConcentration(res, w.Directory)
	if got := acc.Concentration(); got != wantConc {
		t.Errorf("concentration diverged: %+v vs %+v", got, wantConc)
	}
}
