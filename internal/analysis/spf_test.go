package analysis

import (
	"context"
	"strings"
	"testing"

	"mxmap/internal/core"
	"mxmap/internal/scan"
	"mxmap/internal/world"
)

func TestComputeSPFOnWorld(t *testing.T) {
	w, err := world.Generate(world.Config{Seed: 31, Scale: 0.004, TailProviders: 15, SelfISPs: 5})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := scan.NewWorldSession(w)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	snap, err := sess.Snapshot(context.Background(), world.CorpusAlexa, "2021-06")
	if err != nil {
		t.Fatal(err)
	}
	res := core.Infer(snap, core.ApproachPriority, core.Config{Profiles: testProfiles(w)})
	stats := ComputeSPF(snap, res, w.Directory)

	if stats.Total != len(snap.Domains) {
		t.Errorf("Total = %d", stats.Total)
	}
	if stats.WithSPF == 0 {
		t.Fatal("no SPF records collected")
	}
	coverage := float64(stats.WithSPF) / float64(stats.Total)
	if coverage < 0.4 || coverage > 0.95 {
		t.Errorf("SPF coverage = %.2f, outside generator calibration", coverage)
	}
	// Agreement should dominate for non-filtered domains: SPF and MX
	// point at the same organization for ordinary hosting.
	if stats.Agree <= stats.Disagree {
		t.Errorf("agree=%d disagree=%d", stats.Agree, stats.Disagree)
	}
	// Filtering-service customers must be present and most should reveal
	// a mailbox provider.
	if stats.FilteredTotal == 0 {
		t.Fatal("no security-filtered domains in sample")
	}
	if stats.FilteredWithMailbox == 0 {
		t.Error("SPF revealed no eventual providers behind filters")
	}

	// Cross-check revealed mailbox companies against ground truth: every
	// revealed provider must actually be the domain's true mailbox
	// operator.
	corpus := w.Corpus(world.CorpusAlexa)
	dateIdx := corpus.DateIndex("2021-06")
	byName := map[string]*world.Domain{}
	for _, d := range corpus.Domains {
		byName[d.Name] = d
	}
	checked := 0
	for i := range snap.Domains {
		rec := &snap.Domains[i]
		d := byName[rec.Domain]
		if d == nil || rec.SPF == "" {
			continue
		}
		truthMailbox := w.TruthMailbox(d, dateIdx)
		truthMX := w.TruthCompany(d, dateIdx)
		if truthMailbox == "" || truthMailbox == truthMX || truthMailbox == d.Name {
			continue // not a filtered-with-mailbox case
		}
		// The SPF text must mention the mailbox provider's _spf zone.
		mb, ok := w.ProviderByID(map[string]string{
			"Google":    "google.com",
			"Microsoft": "outlook.com",
		}[truthMailbox])
		if !ok {
			continue
		}
		if !strings.Contains(rec.SPF, "_spf."+mb.ID) {
			t.Errorf("%s: SPF %q does not reveal mailbox %s", rec.Domain, rec.SPF, truthMailbox)
		}
		checked++
	}
	if checked == 0 {
		t.Error("no filtered-with-mailbox domains verified")
	}
	t.Logf("SPF coverage %.0f%%, agree/disagree/nosignal %d/%d/%d, filtered %d (mailbox revealed %d), verified %d",
		100*coverage, stats.Agree, stats.Disagree, stats.NoSignal,
		stats.FilteredTotal, stats.FilteredWithMailbox, checked)
	shares := stats.MailboxShares()
	if len(shares) == 0 {
		t.Error("no mailbox shares")
	}
}
