package analysis

import (
	"context"
	"math"
	"testing"

	"mxmap/internal/companies"
	"mxmap/internal/core"
	"mxmap/internal/scan"
	"mxmap/internal/world"
)

// The analysis tests run against one small end-to-end measured world.
var (
	testW       *world.World
	testResults map[string]map[string]*core.Result // corpus -> date -> result
)

func setup(t *testing.T) (*world.World, map[string]map[string]*core.Result) {
	t.Helper()
	if testW != nil {
		return testW, testResults
	}
	w, err := world.Generate(world.Config{Seed: 5, Scale: 0.004, TailProviders: 20, SelfISPs: 6})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := scan.NewWorldSession(w)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	results := make(map[string]map[string]*core.Result)
	cfg := core.Config{Profiles: testProfiles(w)}
	for _, corpus := range []string{world.CorpusAlexa, world.CorpusGOV} {
		results[corpus] = make(map[string]*core.Result)
		dates := w.Corpus(corpus).Dates
		for _, date := range []string{dates[0], dates[len(dates)-1]} {
			snap, err := sess.Snapshot(context.Background(), corpus, date)
			if err != nil {
				t.Fatal(err)
			}
			results[corpus][date] = core.Infer(snap, core.ApproachPriority, cfg)
		}
	}
	testW, testResults = w, results
	return w, results
}

func testProfiles(w *world.World) []core.ProviderProfile {
	var out []core.ProviderProfile
	for _, c := range w.Directory.Companies() {
		if len(c.ProviderIDs) == 0 {
			continue
		}
		out = append(out, core.ProviderProfile{
			ID:   c.ProviderIDs[0],
			ASNs: c.ASNs,
			VPSPatterns: []string{
				"vps*." + c.ProviderIDs[0], "s*-*-*." + c.ProviderIDs[0],
			},
			DedicatedPatterns: []string{
				"mailstore*." + c.ProviderIDs[0], "mx*." + c.ProviderIDs[0],
				"shared*.shared." + c.ProviderIDs[0],
			},
		})
	}
	return out
}

func TestCompanyOf(t *testing.T) {
	dir := companies.Curated()
	cases := []struct {
		domain, id, want string
	}{
		{"example.com", "google.com", "Google"},
		{"example.com", "outlook.com", "Microsoft"},
		{"example.com", "example.com", SelfHostedLabel},
		{"sub.example.co.uk", "example.co.uk", SelfHostedLabel},
		{"example.com", "tiny-host.net", "tiny-host.net"},
	}
	for _, c := range cases {
		if got := CompanyOf(c.domain, c.id, dir); got != c.want {
			t.Errorf("CompanyOf(%q, %q) = %q, want %q", c.domain, c.id, got, c.want)
		}
	}
}

func TestMarketShareTopCompanies(t *testing.T) {
	w, results := setup(t)
	dates := w.Corpus(world.CorpusAlexa).Dates
	res := results[world.CorpusAlexa][dates[len(dates)-1]]
	credits := CompanyCredits(res, w.Directory)
	shares := TopShares(credits, len(res.Domains), 5)
	if len(shares) != 5 {
		t.Fatalf("top shares = %d", len(shares))
	}
	// Figure 5: Google first, Microsoft second for Alexa.
	if shares[0].Company != "Google" {
		t.Errorf("top company = %s, want Google (shares: %+v)", shares[0].Company, shares)
	}
	if shares[1].Company != "Microsoft" {
		t.Errorf("second company = %s, want Microsoft", shares[1].Company)
	}
	if shares[0].Percent < 20 || shares[0].Percent > 40 {
		t.Errorf("Google share = %.1f%%, want ~28.5%%", shares[0].Percent)
	}
}

func TestGovTopCompanies(t *testing.T) {
	w, results := setup(t)
	dates := w.Corpus(world.CorpusGOV).Dates
	res := results[world.CorpusGOV][dates[len(dates)-1]]
	shares, total := SegmentShares(res, w.Directory, Segment{Name: "all"}, 2)
	if total != len(res.Domains) {
		t.Fatalf("segment total = %d", total)
	}
	// Figure 5: Microsoft leads .gov.
	if len(shares) == 0 || shares[0].Company != "Microsoft" {
		t.Errorf("gov top = %+v, want Microsoft first", shares)
	}
}

func TestSegmentRankFilter(t *testing.T) {
	w, results := setup(t)
	dates := w.Corpus(world.CorpusAlexa).Dates
	res := results[world.CorpusAlexa][dates[len(dates)-1]]
	_, totalAll := SegmentShares(res, w.Directory, Segment{}, 5)
	_, totalTop := SegmentShares(res, w.Directory, Segment{Include: RankAtMost(50)}, 5)
	if totalTop != 50 {
		t.Errorf("rank<=50 segment has %d domains", totalTop)
	}
	if totalAll <= totalTop {
		t.Errorf("totals: all=%d top=%d", totalAll, totalTop)
	}
}

func TestSelfHostedDeclines(t *testing.T) {
	w, results := setup(t)
	dates := w.Corpus(world.CorpusAlexa).Dates
	first := results[world.CorpusAlexa][dates[0]]
	last := results[world.CorpusAlexa][dates[len(dates)-1]]
	_, pctFirst := SelfHostedCount(first, w.Directory)
	_, pctLast := SelfHostedCount(last, w.Directory)
	if pctLast >= pctFirst {
		t.Errorf("self-hosted share did not decline: %.1f%% -> %.1f%%", pctFirst, pctLast)
	}
	if pctFirst < 5 || pctFirst > 20 {
		t.Errorf("2017 self-hosted share = %.1f%%, want ~11.7%%", pctFirst)
	}
}

func TestLongitudinalSeries(t *testing.T) {
	w, results := setup(t)
	dates := w.Corpus(world.CorpusAlexa).Dates
	l := NewLongitudinal([]string{dates[0], dates[len(dates)-1]})
	track := []string{"Google", "Microsoft"}
	l.Add(dates[0], results[world.CorpusAlexa][dates[0]], w.Directory, track, 5)
	l.Add(dates[len(dates)-1], results[world.CorpusAlexa][dates[len(dates)-1]], w.Directory, track, 5)
	g := l.Get("Google")
	if len(g) != 2 {
		t.Fatalf("google series = %+v", g)
	}
	if g[1].Percent <= g[0].Percent {
		t.Errorf("google series not growing: %+v", g)
	}
	if len(l.Get("TopN Total")) != 2 || len(l.Get(SelfHostedLabel)) != 2 {
		t.Error("aggregate series missing")
	}
}

func TestChurnMatrix(t *testing.T) {
	w, results := setup(t)
	dates := w.Corpus(world.CorpusAlexa).Dates
	first := results[world.CorpusAlexa][dates[0]]
	last := results[world.CorpusAlexa][dates[len(dates)-1]]
	named := []string{"Google", "Microsoft", "Yandex"}
	ch := ComputeChurn(first, last, w.Directory, named)

	// Flows must partition the corpus.
	total := 0
	for _, f := range ch.Flows {
		total += f.Count
	}
	if total != len(first.Domains) {
		t.Errorf("flows sum to %d, want %d", total, len(first.Domains))
	}
	// The bulk of Google's 2017 domains stay with Google.
	if ch.Stayed("Google") == 0 {
		t.Error("no domains stayed with Google")
	}
	// Self-hosted must shrink, with some leavers going to Google or
	// Microsoft (the paper's highlighted flow).
	toBig := ch.Flow(SelfHostedLabel, "Google") + ch.Flow(SelfHostedLabel, "Microsoft")
	if out := ch.Outflow(SelfHostedLabel); out > 0 && toBig == 0 {
		t.Errorf("self-hosted leavers: %d, none to Google/Microsoft", out)
	}
}

func TestCCTLDPreferences(t *testing.T) {
	w, results := setup(t)
	dates := w.Corpus(world.CorpusAlexa).Dates
	res := results[world.CorpusAlexa][dates[len(dates)-1]]
	track := []string{"Google", "Microsoft", "Tencent", "Yandex"}
	cells := CCTLDPreferences(res, w.Directory, track)
	if len(cells) == 0 {
		t.Fatal("no ccTLD cells")
	}
	get := func(tld, company string) float64 {
		for _, c := range cells {
			if c.TLD == tld && c.Company == company {
				return c.Percent
			}
		}
		return -1
	}
	// Yandex is essentially .ru-only; Tencent .cn-only (Figure 8).
	if ruY := get("ru", "Yandex"); ruY >= 0 {
		for _, tld := range []string{"br", "de", "uk", "jp"} {
			if other := get(tld, "Yandex"); other > ruY {
				t.Errorf("Yandex in .%s (%.1f%%) exceeds .ru (%.1f%%)", tld, other, ruY)
			}
		}
	}
	if cnT := get("cn", "Tencent"); cnT > 0 {
		if brT := get("br", "Tencent"); brT > cnT {
			t.Errorf("Tencent .br %.1f%% > .cn %.1f%%", brT, cnT)
		}
	}
}

func TestCountryOfDomain(t *testing.T) {
	cases := map[string]string{
		"example.ru": "RU", "example.cn": "CN", "example.com": "",
		"example.co.uk": "GB", "example": "",
	}
	for domain, want := range cases {
		if got := CountryOfDomain(domain); got != want {
			t.Errorf("CountryOfDomain(%q) = %q, want %q", domain, got, want)
		}
	}
	if len(CCTLDs()) != 15 {
		t.Errorf("CCTLDs = %v", CCTLDs())
	}
}

func TestAccuracyEvaluation(t *testing.T) {
	w, _ := setup(t)
	sess, err := scan.NewWorldSession(w)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	dates := w.Corpus(world.CorpusAlexa).Dates
	snap, err := sess.Snapshot(context.Background(), world.CorpusAlexa, dates[len(dates)-1])
	if err != nil {
		t.Fatal(err)
	}
	corpus := w.Corpus(world.CorpusAlexa)
	dateIdx := corpus.DateIndex(dates[len(dates)-1])
	byName := make(map[string]*world.Domain)
	for _, d := range corpus.Domains {
		byName[d.Name] = d
	}
	cfg := AccuracyConfig{
		SampleSize: 150,
		Seed:       9,
		Truth: func(domain string) string {
			d := byName[domain]
			if d == nil {
				return ""
			}
			truth := w.TruthCompany(d, dateIdx)
			if truth == d.Name {
				return SelfHostedLabel
			}
			return truth
		},
		Company: func(domain, providerID string) string {
			return CompanyOf(domain, providerID, w.Directory)
		},
		InferConfig: core.Config{Profiles: testProfiles(w)},
	}
	results := EvaluateAccuracy(snap, cfg)
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	byApproach := map[core.Approach]AccuracyResult{}
	for _, r := range results {
		byApproach[r.Approach] = r
		t.Logf("%s: %d/%d (%.1f%%), examined %d", r.Approach, r.Correct, r.Total, r.Percent(), r.Examined)
	}
	pr := byApproach[core.ApproachPriority]
	mx := byApproach[core.ApproachMXOnly]
	if pr.Percent() < 90 {
		t.Errorf("priority accuracy = %.1f%%", pr.Percent())
	}
	if pr.Correct < mx.Correct {
		t.Errorf("priority (%d) worse than MX-only (%d)", pr.Correct, mx.Correct)
	}

	// Unique-MX variant: MX-only should fall sharply (the paper's 40%
	// on .com unique-MX), since shared provider MX names are excluded.
	cfg.UniqueMX = true
	uniq := EvaluateAccuracy(snap, cfg)
	var uniqMX, uniqPr AccuracyResult
	for _, r := range uniq {
		switch r.Approach {
		case core.ApproachMXOnly:
			uniqMX = r
		case core.ApproachPriority:
			uniqPr = r
		}
	}
	if uniqMX.Total == 0 {
		t.Fatal("unique-MX frame empty")
	}
	if uniqMX.Percent() >= mx.Percent() {
		t.Errorf("unique-MX should hurt MX-only: %.1f%% vs %.1f%%", uniqMX.Percent(), mx.Percent())
	}
	if uniqPr.Percent() < uniqMX.Percent() {
		t.Errorf("priority (%.1f%%) below MX-only (%.1f%%) on unique-MX", uniqPr.Percent(), uniqMX.Percent())
	}
}

func TestTopSharesExcludesSelfHosted(t *testing.T) {
	credits := map[string]float64{"Google": 10, SelfHostedLabel: 50, "Microsoft": 5}
	shares := TopShares(credits, 100, 0)
	for _, s := range shares {
		if s.Company == SelfHostedLabel {
			t.Error("TopShares included self-hosted bucket")
		}
	}
	if len(shares) != 2 || shares[0].Company != "Google" {
		t.Errorf("shares = %+v", shares)
	}
	if math.Abs(shares[0].Percent-10) > 1e-9 {
		t.Errorf("percent = %f", shares[0].Percent)
	}
}

func TestChurnSummaryConsistency(t *testing.T) {
	w, results := setup(t)
	dates := w.Corpus(world.CorpusAlexa).Dates
	ch := ComputeChurn(
		results[world.CorpusAlexa][dates[0]],
		results[world.CorpusAlexa][dates[len(dates)-1]],
		w.Directory, []string{"Google", "Microsoft", "Yandex"})
	summaries := ch.Summarize()
	startTotal, endTotal := 0, 0
	for _, s := range summaries {
		if s.Start != s.Stayed+s.Left || s.End != s.Stayed+s.Arrived {
			t.Errorf("%s: inconsistent summary %+v", s.Category, s)
		}
		startTotal += s.Start
		endTotal += s.End
	}
	if startTotal != endTotal || startTotal != len(results[world.CorpusAlexa][dates[0]].Domains) {
		t.Errorf("summary totals: start=%d end=%d corpus=%d",
			startTotal, endTotal, len(results[world.CorpusAlexa][dates[0]].Domains))
	}
}
