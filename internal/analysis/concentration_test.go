package analysis

import (
	"math"
	"testing"

	"mxmap/internal/core"
	"mxmap/internal/world"
)

// fakeResult builds a Result whose attributions credit the given
// providers with the given counts.
func fakeResult(counts map[string]int) *core.Result {
	res := &core.Result{}
	i := 0
	for id, n := range counts {
		for j := 0; j < n; j++ {
			res.Domains = append(res.Domains, core.DomainAttribution{
				Domain:  "d" + string(rune('a'+i)) + string(rune('a'+j%26)) + string(rune('a'+j/26)) + ".test",
				Credits: map[string]float64{id: 1},
			})
		}
		i++
	}
	return res
}

func TestConcentrationMonopoly(t *testing.T) {
	res := fakeResult(map[string]int{"mono.com": 50})
	c := ComputeConcentration(res, nil)
	if math.Abs(c.HHI-10000) > 1e-6 {
		t.Errorf("monopoly HHI = %f", c.HHI)
	}
	if math.Abs(c.CR1-100) > 1e-6 || math.Abs(c.EffectiveCompanies-1) > 1e-6 {
		t.Errorf("monopoly: %+v", c)
	}
}

func TestConcentrationEqualSplit(t *testing.T) {
	res := fakeResult(map[string]int{"a.com": 10, "b.com": 10, "c.com": 10, "d.com": 10})
	c := ComputeConcentration(res, nil)
	if math.Abs(c.HHI-2500) > 1e-6 {
		t.Errorf("4-way HHI = %f", c.HHI)
	}
	if math.Abs(c.EffectiveCompanies-4) > 1e-6 {
		t.Errorf("effective companies = %f", c.EffectiveCompanies)
	}
	if math.Abs(c.CR4-100) > 1e-6 || math.Abs(c.CR1-25) > 1e-6 {
		t.Errorf("CRs: %+v", c)
	}
}

func TestConcentrationExcludesSelfHosted(t *testing.T) {
	res := &core.Result{}
	res.Domains = append(res.Domains,
		core.DomainAttribution{Domain: "x.test", Credits: map[string]float64{"big.com": 1}},
		// Self-hosted: provider ID equals the domain's registered domain.
		core.DomainAttribution{Domain: "self.test", Credits: map[string]float64{"self.test": 1}},
	)
	c := ComputeConcentration(res, nil)
	if math.Abs(c.HHI-10000) > 1e-6 {
		t.Errorf("self-hosted not excluded: HHI = %f", c.HHI)
	}
}

func TestConcentrationEmpty(t *testing.T) {
	c := ComputeConcentration(&core.Result{}, nil)
	if c.HHI != 0 || c.EffectiveCompanies != 0 {
		t.Errorf("empty result: %+v", c)
	}
}

// The consolidation headline: HHI over the measured world rises between
// the first and last snapshot, the quantitative form of the paper's
// centralization finding.
func TestConcentrationRisesOverStudy(t *testing.T) {
	w, results := setup(t)
	dates := w.Corpus(world.CorpusAlexa).Dates
	first := ComputeConcentration(results[world.CorpusAlexa][dates[0]], w.Directory)
	last := ComputeConcentration(results[world.CorpusAlexa][dates[len(dates)-1]], w.Directory)
	if last.HHI <= first.HHI {
		t.Errorf("HHI did not rise: %.0f -> %.0f", first.HHI, last.HHI)
	}
	if first.HHI < 500 || first.HHI > 3000 {
		t.Errorf("implausible HHI %.0f", first.HHI)
	}
	t.Logf("HHI %.0f -> %.0f, CR4 %.1f%% -> %.1f%%, effective companies %.1f -> %.1f",
		first.HHI, last.HHI, first.CR4, last.CR4, first.EffectiveCompanies, last.EffectiveCompanies)
}
