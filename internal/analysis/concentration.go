package analysis

import (
	"sort"

	"mxmap/internal/companies"
	"mxmap/internal/core"
)

// Concentration quantifies the market consolidation the paper documents
// qualitatively: the Herfindahl–Hirschman Index and top-N concentration
// ratios over the company-level market shares of one snapshot.
type Concentration struct {
	// HHI is the Herfindahl–Hirschman Index on the 0–10,000 scale used
	// by competition authorities (sum of squared percentage shares).
	// Above 1,500 counts as moderately and above 2,500 as highly
	// concentrated.
	HHI float64
	// CR1, CR4 and CR8 are the combined shares (percent) of the largest
	// one, four and eight companies.
	CR1, CR4, CR8 float64
	// EffectiveCompanies is 10,000/HHI: the number of equal-sized
	// companies that would produce the same concentration.
	EffectiveCompanies float64
}

// ComputeConcentration measures a result's provider market. Self-hosted
// domains are excluded: each is its own "provider", so including them
// would dilute the index with thousands of singletons and mask the very
// consolidation being measured; the paper likewise plots self-hosting as
// a separate series.
func ComputeConcentration(res *core.Result, dir *companies.Directory) Concentration {
	return concentrationFromCredits(CompanyCredits(res, dir))
}

// concentrationFromCredits is the credits-based core shared with the
// streaming ShareAccumulator. The self-hosted bucket is dropped here so
// both entry points apply the same exclusion.
func concentrationFromCredits(credits map[string]float64) Concentration {
	total := 0.0
	for company, c := range credits {
		if company != SelfHostedLabel {
			total += c
		}
	}
	var out Concentration
	if total == 0 {
		return out
	}
	shares := make([]float64, 0, len(credits))
	for company, c := range credits {
		if company != SelfHostedLabel {
			shares = append(shares, 100*c/total)
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(shares)))
	for i, s := range shares {
		out.HHI += s * s
		if i < 1 {
			out.CR1 += s
		}
		if i < 4 {
			out.CR4 += s
		}
		if i < 8 {
			out.CR8 += s
		}
	}
	if out.HHI > 0 {
		out.EffectiveCompanies = 10000 / out.HHI
	}
	return out
}
