package analysis

import (
	"mxmap/internal/companies"
	"mxmap/internal/core"
)

// Segment selects a subset of a result's domains for market-share
// reporting, reproducing Figure 5's panels (Alexa 1k/10k/100k, federal
// vs other .gov).
type Segment struct {
	// Name labels the segment ("Alexa Top 1k", "GOV federal", ...).
	Name string
	// Include filters domains; nil includes everything.
	Include func(att core.DomainAttribution) bool
}

// SegmentShares computes the top-n companies within one segment.
func SegmentShares(res *core.Result, dir *companies.Directory, seg Segment, n int) ([]Share, int) {
	credits := make(map[string]float64)
	total := 0
	for _, att := range res.Domains {
		if seg.Include != nil && !seg.Include(att) {
			continue
		}
		total++
		for id, credit := range att.Credits {
			credits[CompanyOf(att.Domain, id, dir)] += credit
		}
	}
	if total == 0 {
		return nil, 0
	}
	return TopShares(credits, total, n), total
}

// RankAtMost selects Alexa domains with rank in [1, k].
func RankAtMost(k int) func(core.DomainAttribution) bool {
	return func(att core.DomainAttribution) bool { return att.Rank > 0 && att.Rank <= k }
}

// SelfHostedCount returns the (fractional) number of self-hosted domains
// in a result and its share of all domains.
func SelfHostedCount(res *core.Result, dir *companies.Directory) (float64, float64) {
	credits := CompanyCredits(res, dir)
	c := credits[SelfHostedLabel]
	if len(res.Domains) == 0 {
		return 0, 0
	}
	return c, 100 * c / float64(len(res.Domains))
}
