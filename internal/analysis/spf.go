package analysis

import (
	"sort"
	"strings"

	"mxmap/internal/companies"
	"mxmap/internal/core"
	"mxmap/internal/dataset"
	"mxmap/internal/psl"
	"mxmap/internal/spf"
)

// SPFStats summarizes the SPF-based eventual-provider extension — the
// heuristic the paper sketches in §3.4: the MX record reveals only the
// first delivery hop, but a domain's SPF policy must authorize its real
// outbound (mailbox) provider, so behind filtering services SPF exposes
// the eventual provider.
type SPFStats struct {
	// Total is the number of domains considered.
	Total int
	// WithSPF counts domains publishing a v=spf1 policy.
	WithSPF int
	// Agree counts non-filtered domains whose SPF organization matches
	// their MX attribution; Disagree counts mismatches; NoSignal counts
	// SPF policies without an attributable include.
	Agree, Disagree, NoSignal int
	// FilteredTotal counts domains attributed to e-mail security
	// companies; FilteredWithMailbox counts those whose SPF reveals a
	// distinct mailbox provider.
	FilteredTotal, FilteredWithMailbox int
	// MailboxCompanies distributes the revealed eventual providers.
	MailboxCompanies map[string]int
}

// MailboxShares returns the revealed eventual providers sorted by count.
func (s SPFStats) MailboxShares() []Share {
	out := make([]Share, 0, len(s.MailboxCompanies))
	for c, n := range s.MailboxCompanies {
		pct := 0.0
		if s.FilteredTotal > 0 {
			pct = 100 * float64(n) / float64(s.FilteredTotal)
		}
		out = append(out, Share{Company: c, Domains: float64(n), Percent: pct})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Domains != out[j].Domains {
			return out[i].Domains > out[j].Domains
		}
		return out[i].Company < out[j].Company
	})
	return out
}

// ComputeSPF evaluates the extension over one snapshot and its inference
// result.
func ComputeSPF(snap *dataset.Snapshot, res *core.Result, dir *companies.Directory) SPFStats {
	stats := SPFStats{MailboxCompanies: make(map[string]int)}
	att := Attributions(res)
	for i := range snap.Domains {
		d := &snap.Domains[i]
		stats.Total++
		if d.SPF == "" {
			continue
		}
		rec, err := spf.Parse(d.SPF)
		if err != nil {
			continue
		}
		stats.WithSPF++

		a := att[d.Domain]
		primary := a.Primary()
		mxCompany := CompanyOf(d.Domain, primary, dir)

		includeCompanies := spfIncludeCompanies(d.Domain, rec, dir)
		isFiltered := false
		if c, ok := dir.CompanyFor(primary); ok && c.Kind == companies.KindEmailSecurity {
			isFiltered = true
		}
		if isFiltered {
			stats.FilteredTotal++
			// An eventual provider is any included organization other
			// than the filtering service itself.
			for _, ic := range includeCompanies {
				if ic != mxCompany {
					stats.FilteredWithMailbox++
					stats.MailboxCompanies[ic]++
					break
				}
			}
			continue
		}
		// Non-filtered: check agreement between SPF and MX attribution.
		switch {
		case len(includeCompanies) == 0:
			if usesOwnInfra(rec) && mxCompany == SelfHostedLabel {
				stats.Agree++
			} else {
				stats.NoSignal++
			}
		case contains(includeCompanies, mxCompany):
			stats.Agree++
		default:
			stats.Disagree++
		}
	}
	return stats
}

// spfIncludeCompanies maps the record's include targets to company
// buckets, dropping includes that resolve to the domain's own
// organization.
func spfIncludeCompanies(domain string, rec *spf.Record, dir *companies.Directory) []string {
	var out []string
	seen := make(map[string]bool)
	targets := make([]string, 0, len(rec.Mechanisms)+1)
	for _, m := range rec.Mechanisms {
		if m.Kind == spf.MechInclude {
			targets = append(targets, m.Domain)
		}
	}
	if rec.Redirect != "" {
		targets = append(targets, rec.Redirect)
	}
	for _, target := range targets {
		host := strings.TrimPrefix(strings.ToLower(target), "_spf.")
		reg, ok := psl.RegisteredDomain(host)
		if !ok {
			continue
		}
		company := CompanyOf(domain, reg, dir)
		if !seen[company] {
			seen[company] = true
			out = append(out, company)
		}
	}
	return out
}

// usesOwnInfra reports an SPF policy that authorizes the domain's own
// A/MX hosts or literal addresses only — the self-hosting fingerprint.
func usesOwnInfra(rec *spf.Record) bool {
	hasSignal := false
	for _, m := range rec.Mechanisms {
		switch m.Kind {
		case spf.MechA, spf.MechMX, spf.MechIP4, spf.MechIP6:
			hasSignal = true
		case spf.MechInclude:
			return false
		}
	}
	return hasSignal && rec.Redirect == ""
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}
