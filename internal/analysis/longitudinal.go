package analysis

import (
	"mxmap/internal/companies"
	"mxmap/internal/core"
)

// SeriesPoint is one snapshot's value for one tracked company.
type SeriesPoint struct {
	// Date is the snapshot label.
	Date string
	// Domains is the fractional domain count credited to the company.
	Domains float64
	// Percent is the share of the snapshot's domains.
	Percent float64
}

// Longitudinal holds per-company time series over a corpus's snapshots —
// the data behind one panel of Figure 6.
type Longitudinal struct {
	// Dates are the snapshot labels, in order.
	Dates []string
	// Series maps company name to one point per date.
	Series map[string][]SeriesPoint
	// Totals maps each date to the corpus size at that date.
	Totals map[string]int
}

// NewLongitudinal prepares an empty collection for the given dates.
func NewLongitudinal(dates []string) *Longitudinal {
	return &Longitudinal{
		Dates:  dates,
		Series: make(map[string][]SeriesPoint),
		Totals: make(map[string]int),
	}
}

// Add ingests one snapshot's inference result, tracking the named
// companies plus the self-hosted bucket and the combined top-N total.
// Call once per date, in date order.
func (l *Longitudinal) Add(date string, res *core.Result, dir *companies.Directory, track []string, topN int) {
	credits := CompanyCredits(res, dir)
	total := len(res.Domains)
	l.Totals[date] = total
	point := func(c float64) SeriesPoint {
		pct := 0.0
		if total > 0 {
			pct = 100 * c / float64(total)
		}
		return SeriesPoint{Date: date, Domains: c, Percent: pct}
	}
	for _, name := range track {
		l.Series[name] = append(l.Series[name], point(credits[name]))
	}
	l.Series[SelfHostedLabel] = append(l.Series[SelfHostedLabel], point(credits[SelfHostedLabel]))
	if topN > 0 {
		topTotal := 0.0
		for _, s := range TopShares(credits, max(total, 1), topN) {
			topTotal += s.Domains
		}
		l.Series["TopN Total"] = append(l.Series["TopN Total"], point(topTotal))
	}
	// A combined total of the tracked companies (used by the security-
	// and hosting-company panels).
	tracked := 0.0
	for _, name := range track {
		tracked += credits[name]
	}
	l.Series["Tracked Total"] = append(l.Series["Tracked Total"], point(tracked))
}

// Get returns a company's series.
func (l *Longitudinal) Get(company string) []SeriesPoint { return l.Series[company] }
