package analysis

import (
	"math"
	"sort"

	"mxmap/internal/companies"
	"mxmap/internal/core"
	"mxmap/internal/dataset"
	"mxmap/internal/psl"
)

// Oracle-scored misidentification robustness (Fig. 4 extension).
//
// An adversarial world ships machine-readable per-domain ground truth:
// which hostile scenario family each domain belongs to, who the true
// operator is (when one exists), and which provider identity an attacker
// forged. ScoreMisidentification replays that oracle against an
// inference result and reports, per family, how often the pipeline
// reached the verdict the scenario demands — flagged the forgery instead
// of crediting it, classified the lame delegation, matched the honest
// bucket.
//
// The oracle types mirror world.OracleEntry field for field but stay
// neutral, following the accuracy harness's convention of taking truth
// as data rather than importing the simulation layer.

// Scenario family names, matching world.ScenarioFamily values.
const (
	famHonest         = "honest"
	famDanglingNX     = "dangling-nx"
	famDanglingParked = "dangling-parked"
	famHijack         = "hijack"
	famLame           = "lame"
	famAbuse          = "abuse"
	famBLBFO          = "blbfo"
)

// MisidOracle is one domain's adversarial ground truth.
type MisidOracle struct {
	// Domain is the corpus domain.
	Domain string `json:"domain"`
	// Family is the scenario family ("honest" for unperturbed domains).
	Family string `json:"family"`
	// Truth is the true operating company, "" when no mail service
	// legitimately exists; equal to Domain for self-hosting.
	Truth string `json:"truth,omitempty"`
	// Forged is the provider identity an attacker impersonates (hijack
	// family only).
	Forged string `json:"forged,omitempty"`
	// ExpectFlagged marks families whose correct verdict is a low-trust
	// flag rather than an attribution.
	ExpectFlagged bool `json:"expect_flagged,omitempty"`
	// Detail carries family-specific context (relay zone, cluster zone,
	// failover topology).
	Detail string `json:"detail,omitempty"`
}

// FamilyScore grades one scenario family.
type FamilyScore struct {
	// Family is the scenario family name.
	Family string `json:"family"`
	// Domains is the family's corpus population.
	Domains int `json:"domains"`
	// Graded counts domains with a decidable correct verdict (honest
	// domains without mail service are ungraded, as in Fig. 4).
	Graded int `json:"graded"`
	// Correct counts graded domains where inference reached the verdict
	// the oracle demands.
	Correct int `json:"correct"`
	// Flagged counts domains whose attribution the trust pass marked
	// low-trust.
	Flagged int `json:"flagged"`
	// CreditedForged counts domains credited to the forged provider —
	// the attack succeeding against inference.
	CreditedForged int `json:"credited_forged,omitempty"`
	// Accuracy is Correct/Graded as a percentage.
	Accuracy float64 `json:"accuracy_percent"`
}

// MisidReport is the oracle-scored robustness summary.
type MisidReport struct {
	// Families holds one row per scenario family, sorted by name.
	Families []FamilyScore `json:"families"`
	// TotalDomains is the corpus size scored.
	TotalDomains int `json:"total_domains"`
	// TotalFlagged counts low-trust attributions across all families.
	TotalFlagged int `json:"total_flagged"`
	// CreditedForged counts attack successes across all families.
	CreditedForged int `json:"credited_forged"`
}

// ScoreMisidentification grades an inference result against an
// adversarial oracle. The snapshot supplies the collection-side verdicts
// (failure classes) the DNS-only families are graded on; res must come
// from a batch Infer run so per-domain attributions are present.
//
// Correctness per family:
//
//   - honest, blbfo — the credited company bucket matches the oracle
//     truth and the attribution is not flagged; domains without mail
//     service (empty truth) are ungraded.
//   - dangling-nx, dangling-parked — the attribution is flagged
//     low-trust (sentinel-credited) rather than attributed.
//   - hijack — flagged, AND the forged provider received no credit.
//   - abuse — flagged, AND credit still stands on the bulk operator
//     (the attribution is right; the trust downgrade is the verdict).
//   - lame — collection classified the domain's lookup as a lame
//     delegation.
func ScoreMisidentification(snap *dataset.Snapshot, res *core.Result, oracle []MisidOracle, dir *companies.Directory) *MisidReport {
	atts := Attributions(res)
	records := make(map[string]*dataset.DomainRecord, len(snap.Domains))
	for i := range snap.Domains {
		records[snap.Domains[i].Domain] = &snap.Domains[i]
	}

	scores := make(map[string]*FamilyScore)
	rep := &MisidReport{}
	for _, e := range oracle {
		fs := scores[e.Family]
		if fs == nil {
			fs = &FamilyScore{Family: e.Family}
			scores[e.Family] = fs
		}
		fs.Domains++
		rep.TotalDomains++

		att, hasAtt := atts[e.Domain]
		flagged := hasAtt && att.Untrusted
		bucket := ""
		if hasAtt {
			bucket = CompanyOf(e.Domain, att.Primary(), dir)
		}
		if flagged {
			fs.Flagged++
			rep.TotalFlagged++
		}

		graded, correct := true, false
		switch e.Family {
		case famLame:
			rec := records[e.Domain]
			correct = rec != nil && rec.Failure == dataset.FailLameDelegation
		case famDanglingNX, famDanglingParked:
			correct = flagged
		case famHijack:
			forged := e.Forged != "" && bucket == e.Forged
			if forged {
				fs.CreditedForged++
				rep.CreditedForged++
			}
			correct = flagged && !forged
		case famAbuse:
			correct = flagged && (e.Truth == "" || bucket == e.Truth)
		default: // honest, blbfo, future families with attribution truth
			truth := e.Truth
			if truth == e.Domain {
				truth = SelfHostedLabel
			}
			if truth == "" {
				graded = false
			} else {
				correct = bucket == truth && !flagged
			}
		}
		if graded {
			fs.Graded++
			if correct {
				fs.Correct++
			}
		}
	}

	for _, fs := range scores {
		if fs.Graded > 0 {
			fs.Accuracy = math.Round(float64(fs.Correct)/float64(fs.Graded)*10000) / 100
		}
		rep.Families = append(rep.Families, *fs)
	}
	sort.Slice(rep.Families, func(i, j int) bool { return rep.Families[i].Family < rep.Families[j].Family })
	return rep
}

// Failover-structure correlation (Ruohonen's BLBFO observation): how MX
// redundancy topology co-varies with the class of provider running the
// primary tier.

// FailoverCell is one (topology, provider class) population.
type FailoverCell struct {
	// Topology is the domain's MX redundancy shape: "single" (one
	// record), "load-balanced" (several records, one preference tier),
	// "tiered" (multiple tiers, one operator), or "backup-provider"
	// (multiple tiers with a different operator behind the backup tier —
	// the backup-MX business the paper's long tail hides).
	Topology string `json:"topology"`
	// ProviderClass buckets the primary tier's operator: a company kind
	// from the directory, "self-hosted", "long-tail" for unmapped
	// provider IDs, "flagged" for low-trust attributions, or "unknown"
	// when no assignment exists.
	ProviderClass string `json:"provider_class"`
	// Domains is the cell population.
	Domains int `json:"domains"`
}

// FailoverStructure classifies every domain with MX records by
// redundancy topology and primary-tier provider class. Cells come back
// sorted by topology then class.
func FailoverStructure(snap *dataset.Snapshot, res *core.Result, dir *companies.Directory) []FailoverCell {
	type key struct{ topo, class string }
	counts := make(map[key]int)
	for i := range snap.Domains {
		rec := &snap.Domains[i]
		if len(rec.MX) == 0 {
			continue
		}
		topo := failoverTopology(rec, res.MX)
		primary := rec.PrimaryMX()
		class := providerClass(rec.Domain, res.MX[primary[0].Exchange], dir)
		counts[key{topo, class}]++
	}
	cells := make([]FailoverCell, 0, len(counts))
	for k, n := range counts {
		cells = append(cells, FailoverCell{Topology: k.topo, ProviderClass: k.class, Domains: n})
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].Topology != cells[j].Topology {
			return cells[i].Topology < cells[j].Topology
		}
		return cells[i].ProviderClass < cells[j].ProviderClass
	})
	return cells
}

// failoverTopology names the redundancy shape of one domain's MX set.
func failoverTopology(rec *dataset.DomainRecord, mxAssign map[string]*core.MXAssignment) string {
	if len(rec.MX) == 1 {
		return "single"
	}
	best, multiTier := rec.MX[0].Preference, false
	for _, mx := range rec.MX[1:] {
		if mx.Preference != rec.MX[0].Preference {
			multiTier = true
		}
		if mx.Preference < best {
			best = mx.Preference
		}
	}
	if !multiTier {
		return "load-balanced"
	}
	// Multiple tiers: does any backup tier sit with a different operator
	// than the primary tier?
	primaryOps := make(map[string]bool)
	for _, mx := range rec.MX {
		if mx.Preference == best {
			primaryOps[creditID(mxAssign[mx.Exchange])] = true
		}
	}
	for _, mx := range rec.MX {
		if mx.Preference == best {
			continue
		}
		if id := creditID(mxAssign[mx.Exchange]); id != "" && !primaryOps[id] {
			return "backup-provider"
		}
	}
	return "tiered"
}

// creditID is the identity an assignment actually credits: the sentinel
// bucket when the trust pass downgraded it, the provider ID otherwise.
func creditID(a *core.MXAssignment) string {
	if a == nil {
		return ""
	}
	if a.CreditAs != "" {
		return a.CreditAs
	}
	return a.ProviderID
}

// providerClass buckets a primary-tier assignment for the failover
// correlation.
func providerClass(domain string, a *core.MXAssignment, dir *companies.Directory) string {
	if a == nil {
		return "unknown"
	}
	if a.Untrusted {
		return "flagged"
	}
	id := a.ProviderID
	if id == "" {
		return "unknown"
	}
	if reg, ok := psl.RegisteredDomain(domain); ok && reg == id {
		return "self-hosted"
	}
	if id == domain {
		return "self-hosted"
	}
	if dir != nil {
		if c, ok := dir.CompanyFor(id); ok {
			return c.Kind.String()
		}
	}
	return "long-tail"
}
