package analysis

import (
	"sort"

	"mxmap/internal/companies"
	"mxmap/internal/core"
)

// OthersLabel buckets providers outside the named categories in churn
// analysis.
const OthersLabel = "Others"

// Top100Label buckets providers ranked within the top 100 but not named
// individually.
const Top100Label = "Top100"

// ChurnCategory assigns a domain attribution to one of Figure 7's
// categories: a named top company, Top100, Self-Hosted, Others, or
// No SMTP.
type churnClassifier struct {
	dir    *companies.Directory
	named  map[string]bool
	top100 map[string]bool
}

// newChurnClassifier builds the category sets from the first snapshot's
// ranking: `named` companies get their own category; the next companies
// up to rank 100 become Top100.
func newChurnClassifier(res *core.Result, dir *companies.Directory, named []string) *churnClassifier {
	c := &churnClassifier{dir: dir, named: make(map[string]bool), top100: make(map[string]bool)}
	for _, n := range named {
		c.named[n] = true
	}
	credits := CompanyCredits(res, dir)
	for _, s := range TopShares(credits, max(len(res.Domains), 1), 100) {
		if !c.named[s.Company] {
			c.top100[s.Company] = true
		}
	}
	return c
}

func (c *churnClassifier) categoryOf(att core.DomainAttribution) string {
	if !att.HasSMTP {
		return NoSMTPLabel
	}
	company := CompanyOf(att.Domain, att.Primary(), c.dir)
	switch {
	case att.Primary() == "":
		return NoSMTPLabel
	case company == SelfHostedLabel:
		return SelfHostedLabel
	case c.named[company]:
		return company
	case c.top100[company]:
		return Top100Label
	default:
		return OthersLabel
	}
}

// ChurnFlow is one cell of the Sankey: the number of domains that were in
// From at the first snapshot and in To at the last.
type ChurnFlow struct {
	From, To string
	Count    int
}

// Churn is the full flow matrix between two snapshots.
type Churn struct {
	// Categories lists category labels in display order.
	Categories []string
	// Flows holds every non-zero flow.
	Flows []ChurnFlow
}

// ComputeChurn builds the Figure 7 flow matrix between the first and
// last snapshots of a corpus. The named companies (e.g. Google,
// Microsoft, Yandex for Alexa) get individual categories; category
// membership for Top100 is determined from the first snapshot.
func ComputeChurn(first, last *core.Result, dir *companies.Directory, named []string) *Churn {
	cls := newChurnClassifier(first, dir, named)
	firstAtt := Attributions(first)
	lastAtt := Attributions(last)

	counts := make(map[[2]string]int)
	for domain, fa := range firstAtt {
		la, ok := lastAtt[domain]
		if !ok {
			continue // domain left the stable corpus (should not happen)
		}
		from := cls.categoryOf(fa)
		to := cls.categoryOf(la)
		counts[[2]string{from, to}]++
	}

	ch := &Churn{}
	ch.Categories = append(ch.Categories, named...)
	ch.Categories = append(ch.Categories, Top100Label, SelfHostedLabel, OthersLabel, NoSMTPLabel)
	for pair, n := range counts {
		ch.Flows = append(ch.Flows, ChurnFlow{From: pair[0], To: pair[1], Count: n})
	}
	sort.Slice(ch.Flows, func(i, j int) bool {
		if ch.Flows[i].From != ch.Flows[j].From {
			return ch.Flows[i].From < ch.Flows[j].From
		}
		return ch.Flows[i].To < ch.Flows[j].To
	})
	return ch
}

// Outflow sums domains leaving a category (excluding those that stayed).
func (c *Churn) Outflow(from string) int {
	n := 0
	for _, f := range c.Flows {
		if f.From == from && f.To != from {
			n += f.Count
		}
	}
	return n
}

// Flow returns the count moving from one category to another.
func (c *Churn) Flow(from, to string) int {
	for _, f := range c.Flows {
		if f.From == from && f.To == to {
			return f.Count
		}
	}
	return 0
}

// Stayed returns the count that remained in the category.
func (c *Churn) Stayed(cat string) int { return c.Flow(cat, cat) }

// Inflow sums domains arriving into a category from elsewhere.
func (c *Churn) Inflow(to string) int {
	n := 0
	for _, f := range c.Flows {
		if f.To == to && f.From != to {
			n += f.Count
		}
	}
	return n
}

// Summary is the §5.3-style per-category accounting of a churn matrix.
type Summary struct {
	// Category is the provider bucket.
	Category string
	// Start and End are the category's sizes at the two snapshots.
	Start, End int
	// Stayed, Left and Arrived decompose the change.
	Stayed, Left, Arrived int
}

// Summarize produces one row per category.
func (c *Churn) Summarize() []Summary {
	out := make([]Summary, 0, len(c.Categories))
	for _, cat := range c.Categories {
		s := Summary{
			Category: cat,
			Stayed:   c.Stayed(cat),
			Left:     c.Outflow(cat),
			Arrived:  c.Inflow(cat),
		}
		s.Start = s.Stayed + s.Left
		s.End = s.Stayed + s.Arrived
		out = append(out, s)
	}
	return out
}
