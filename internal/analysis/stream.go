package analysis

import (
	"mxmap/internal/companies"
	"mxmap/internal/core"
)

// ShareAccumulator folds per-domain attributions into company-level
// market shares one at a time, so analyses can ride along a
// core.InferStream emit callback without ever materializing the
// attribution list. Feeding it every attribution of a result produces
// exactly CompanyCredits(res, dir).
//
// Not safe for concurrent use; InferStream emits sequentially.
type ShareAccumulator struct {
	dir     *companies.Directory
	credits map[string]float64
	domains int
}

// NewShareAccumulator returns an empty accumulator bucketing providers
// through dir (which may be nil to keep raw provider IDs).
func NewShareAccumulator(dir *companies.Directory) *ShareAccumulator {
	return &ShareAccumulator{dir: dir, credits: make(map[string]float64)}
}

// Add folds one domain's split credits into the running totals.
func (a *ShareAccumulator) Add(att core.DomainAttribution) {
	a.domains++
	for id, credit := range att.Credits {
		a.credits[CompanyOf(att.Domain, id, a.dir)] += credit
	}
}

// Domains reports how many attributions have been folded in.
func (a *ShareAccumulator) Domains() int { return a.domains }

// Credits exposes the accumulated per-company totals. The map is live —
// callers must not mutate it while still adding.
func (a *ShareAccumulator) Credits() map[string]float64 { return a.credits }

// TopShares ranks the accumulated credits like the package-level
// TopShares, using the accumulated domain count as the denominator.
func (a *ShareAccumulator) TopShares(n int) []Share {
	return TopShares(a.credits, a.domains, n)
}

// Concentration measures the accumulated market the way
// ComputeConcentration does, excluding the self-hosted bucket.
func (a *ShareAccumulator) Concentration() Concentration {
	return concentrationFromCredits(a.credits)
}
