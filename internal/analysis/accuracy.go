package analysis

import (
	"math/rand/v2"
	"sort"

	"mxmap/internal/core"
	"mxmap/internal/dataset"
)

// AccuracyConfig parameterizes a Figure 4 style evaluation.
type AccuracyConfig struct {
	// SampleSize is the number of domains graded (the paper uses 200).
	SampleSize int
	// UniqueMX restricts the sampling frame to domains whose primary MX
	// exchange is used by no other domain in the snapshot — the paper's
	// "w/ Unique MX" variant, which stresses customer-named MX records.
	UniqueMX bool
	// Seed drives the sampling.
	Seed uint64
	// Truth returns the ground-truth operator for a domain: a company
	// name, the domain itself for self-hosting, or "" when the domain has
	// no real mail service. Required.
	Truth func(domain string) string
	// Company maps an inferred provider ID for a domain onto a company
	// bucket comparable with Truth. Required.
	Company func(domain, providerID string) string
	// InferConfig configures the inference runs (profiles, thresholds).
	InferConfig core.Config
}

// AccuracyResult grades one approach over the sample.
type AccuracyResult struct {
	// Approach evaluated.
	Approach core.Approach
	// Correct counts correctly attributed sampled domains.
	Correct int
	// Total is the sample size actually graded.
	Total int
	// Examined counts sampled domains whose assignment was flagged by
	// step 4 (priority approach only) — the dark segment of Figure 4.
	Examined int
}

// Percent returns the accuracy percentage.
func (r AccuracyResult) Percent() float64 {
	if r.Total == 0 {
		return 0
	}
	return 100 * float64(r.Correct) / float64(r.Total)
}

// EvaluateAccuracy reproduces the §3.3 protocol on one snapshot: sample
// domains that have responding SMTP servers (optionally with unique MX
// records), run all four approaches over the full snapshot, and grade
// the sampled domains against ground truth.
func EvaluateAccuracy(snap *dataset.Snapshot, cfg AccuracyConfig) []AccuracyResult {
	if cfg.SampleSize == 0 {
		cfg.SampleSize = 200
	}
	sample := sampleDomains(snap, cfg)
	inSample := make(map[string]bool, len(sample))
	for _, d := range sample {
		inSample[d] = true
	}

	var out []AccuracyResult
	for _, ap := range core.Approaches() {
		res := core.Infer(snap, ap, cfg.InferConfig)
		att := Attributions(res)
		r := AccuracyResult{Approach: ap}
		for _, domain := range sample {
			truth := cfg.Truth(domain)
			if truth == "" {
				continue
			}
			a := att[domain]
			r.Total++
			inferred := cfg.Company(domain, a.Primary())
			if inferred == truth {
				r.Correct++
			}
		}
		if ap == core.ApproachPriority {
			// Count examined assignments among sampled domains.
			bySampleMX := make(map[string]bool)
			for i := range snap.Domains {
				if !inSample[snap.Domains[i].Domain] {
					continue
				}
				for _, mx := range snap.Domains[i].PrimaryMX() {
					bySampleMX[mx.Exchange] = true
				}
			}
			for ex, a := range res.MX {
				if a.Examined && bySampleMX[ex] {
					r.Examined++
				}
			}
		}
		out = append(out, r)
	}
	return out
}

// sampleDomains draws the evaluation sample: domains with SMTP servers,
// optionally with unique primary MX records.
func sampleDomains(snap *dataset.Snapshot, cfg AccuracyConfig) []string {
	// Count exchange usage for the unique-MX frame.
	mxUsers := make(map[string]int)
	for i := range snap.Domains {
		for _, mx := range snap.Domains[i].PrimaryMX() {
			mxUsers[mx.Exchange]++
		}
	}
	var frame []string
	for i := range snap.Domains {
		d := &snap.Domains[i]
		if !domainHasSMTP(snap, d) {
			continue
		}
		if cfg.UniqueMX {
			unique := true
			for _, mx := range d.PrimaryMX() {
				if mxUsers[mx.Exchange] > 1 {
					unique = false
					break
				}
			}
			if !unique {
				continue
			}
		}
		frame = append(frame, d.Domain)
	}
	sort.Strings(frame)
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xacc))
	rng.Shuffle(len(frame), func(i, j int) { frame[i], frame[j] = frame[j], frame[i] })
	if len(frame) > cfg.SampleSize {
		frame = frame[:cfg.SampleSize]
	}
	return frame
}

func domainHasSMTP(snap *dataset.Snapshot, d *dataset.DomainRecord) bool {
	for _, mx := range d.PrimaryMX() {
		for _, a := range mx.Addrs {
			if info, ok := snap.IP(a); ok && info.Port25Open {
				return true
			}
		}
	}
	return false
}
