// Package sigctx wires process signals to context cancellation for the
// CLIs. The collection pipeline (PR 3) honors context cancellation all
// the way down — DNS retries, SMTP deadlines, backoff timers — but a
// context nobody cancels is inert: before this package the CLIs died on
// SIGINT without flushing the write-ahead journal. One signal now
// requests graceful shutdown (cancel, flush, commit what finished); a
// second signal force-exits for operators whose graceful path is itself
// wedged.
package sigctx

import (
	"context"
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// exit is swapped out by tests.
var exit = os.Exit

// WithInterrupt returns a context that is cancelled on the first SIGINT
// or SIGTERM. A second signal exits the process immediately with the
// conventional 128+signum status. The returned stop function releases
// the signal handler and cancels the context.
func WithInterrupt(parent context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	var once sync.Once
	stop := func() {
		once.Do(func() {
			signal.Stop(ch)
			close(done)
			cancel()
		})
	}
	go func() {
		select {
		case <-ch:
			cancel()
		case <-done:
			return
		}
		select {
		case sig := <-ch:
			code := 128 + int(syscall.SIGINT)
			if s, ok := sig.(syscall.Signal); ok {
				code = 128 + int(s)
			}
			exit(code)
		case <-done:
		}
	}()
	return ctx, stop
}
