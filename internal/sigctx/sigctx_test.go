package sigctx

import (
	"context"
	"syscall"
	"testing"
	"time"
)

// raise sends sig to this process and is only safe here because
// WithInterrupt has installed a handler (the package test binary runs
// alone in its process under `go test ./...`).
func raise(t *testing.T, sig syscall.Signal) {
	t.Helper()
	if err := syscall.Kill(syscall.Getpid(), sig); err != nil {
		t.Fatal(err)
	}
}

func TestFirstSignalCancels(t *testing.T) {
	exited := make(chan int, 1)
	old := exit
	exit = func(code int) { exited <- code }
	defer func() { exit = old }()

	ctx, stop := WithInterrupt(context.Background())
	defer stop()
	raise(t, syscall.SIGINT)
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("SIGINT did not cancel the context")
	}
	if ctx.Err() != context.Canceled {
		t.Errorf("ctx.Err() = %v, want Canceled", ctx.Err())
	}
	select {
	case code := <-exited:
		t.Errorf("first signal force-exited with %d", code)
	default:
	}
}

func TestSecondSignalForcesExit(t *testing.T) {
	exited := make(chan int, 1)
	old := exit
	exit = func(code int) { exited <- code }
	defer func() { exit = old }()

	ctx, stop := WithInterrupt(context.Background())
	defer stop()
	raise(t, syscall.SIGINT)
	<-ctx.Done()
	raise(t, syscall.SIGINT)
	select {
	case code := <-exited:
		if want := 128 + int(syscall.SIGINT); code != want {
			t.Errorf("exit code = %d, want %d", code, want)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second SIGINT did not force exit")
	}
}

func TestStopReleasesHandler(t *testing.T) {
	old := exit
	exit = func(int) {}
	defer func() { exit = old }()
	ctx, stop := WithInterrupt(context.Background())
	stop()
	if ctx.Err() != context.Canceled {
		t.Errorf("stop did not cancel: %v", ctx.Err())
	}
	// Idempotent.
	stop()
}

func TestParentCancellationPropagates(t *testing.T) {
	old := exit
	exit = func(int) {}
	defer func() { exit = old }()
	parent, cancel := context.WithCancel(context.Background())
	ctx, stop := WithInterrupt(parent)
	defer stop()
	cancel()
	select {
	case <-ctx.Done():
	case <-time.After(time.Second):
		t.Fatal("parent cancellation did not propagate")
	}
}
