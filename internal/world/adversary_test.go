package world

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"mxmap/internal/dns"
)

// advWorld generates the adversarial test world once per binary; the
// seed matches the committed MISID.json artifact so the expected family
// populations below are the same numbers pinned there.
var advWorldCache *World

func advWorld(t *testing.T) *World {
	t.Helper()
	if advWorldCache == nil {
		w, err := Generate(Config{Seed: 7, Scale: 0.003, Adversarial: 0.25})
		if err != nil {
			t.Fatal(err)
		}
		advWorldCache = w
	}
	return advWorldCache
}

// oracleByFamily indexes a corpus oracle by scenario family.
func oracleByFamily(entries []OracleEntry) map[ScenarioFamily][]OracleEntry {
	out := make(map[ScenarioFamily][]OracleEntry)
	for _, e := range entries {
		out[e.Family] = append(out[e.Family], e)
	}
	return out
}

func TestAdversaryDeterministic(t *testing.T) {
	w2, err := Generate(Config{Seed: 7, Scale: 0.003, Adversarial: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	o1, o2 := advWorld(t).Oracle(CorpusAlexa), w2.Oracle(CorpusAlexa)
	if !reflect.DeepEqual(o1, o2) {
		t.Fatal("same seed produced different oracles")
	}
}

func TestOracleFamilies(t *testing.T) {
	w := advWorld(t)
	byFam := oracleByFamily(w.Oracle(CorpusAlexa))
	wantCounts := map[ScenarioFamily]int{
		FamilyHonest: 210, FamilyDanglingNX: 9, FamilyDanglingParked: 9,
		FamilyHijack: 17, FamilyLame: 9, FamilyAbuse: 17, FamilyBLBFO: 9,
	}
	for fam, want := range wantCounts {
		if got := len(byFam[fam]); got != want {
			t.Errorf("family %s: %d domains, want %d", fam, got, want)
		}
	}

	// Family-specific oracle invariants.
	for _, e := range byFam[FamilyHijack] {
		if !e.ExpectFlagged || e.Forged == "" || e.Detail == "" {
			t.Errorf("hijack oracle %+v lacks forged identity or flag", e)
		}
		if e.Truth == e.Forged {
			t.Errorf("%s: truth equals the forged identity %q", e.Domain, e.Forged)
		}
	}
	for _, e := range byFam[FamilyDanglingNX] {
		if !e.ExpectFlagged || e.Truth != "" {
			t.Errorf("dangling-nx oracle %+v: want flagged, no truth operator", e)
		}
	}
	for _, e := range byFam[FamilyAbuse] {
		if !e.ExpectFlagged || e.Truth == "" || e.Detail == "" {
			t.Errorf("abuse oracle %+v lacks operator truth or cluster detail", e)
		}
	}
	for _, e := range byFam[FamilyBLBFO] {
		if e.ExpectFlagged {
			t.Errorf("%s: BLBFO is pathological, not hostile — must not expect a flag", e.Domain)
		}
		switch e.Detail {
		case TopologyTiered, TopologySkewed, TopologyBackupOnly:
		default:
			t.Errorf("%s: unknown BLBFO topology %q", e.Domain, e.Detail)
		}
		if e.Truth == "" {
			t.Errorf("%s: BLBFO has a real operator, truth must not be empty", e.Domain)
		}
	}
	for _, e := range byFam[FamilyHonest] {
		if e.ExpectFlagged || e.Forged != "" {
			t.Errorf("honest oracle %+v carries adversarial fields", e)
		}
	}
}

// TestScenarioResolver exercises the registry-aware resolver end to
// end: lame zones fail typed, lapsed relay zones resolve only through
// leftover glue, and the provenance checks expose exactly the hijack
// signature.
func TestScenarioResolver(t *testing.T) {
	w := advWorld(t)
	c := w.Corpus(CorpusAlexa)
	date := c.Dates[len(c.Dates)-1]
	catalog, err := w.CatalogAt(date)
	if err != nil {
		t.Fatal(err)
	}
	sr := w.ScenarioResolverAt(catalog, date)
	ctx := context.Background()
	byFam := oracleByFamily(w.Oracle(CorpusAlexa))

	// Lame delegations answer with the typed error, not NXDOMAIN.
	lame := byFam[FamilyLame][0].Domain
	if _, err := sr.LookupMX(ctx, lame); !errors.Is(err, dns.ErrLame) {
		t.Errorf("lame domain %s: %v, want ErrLame", lame, err)
	}
	// Unregistered namespace does not exist.
	if _, err := sr.LookupMX(ctx, "never-registered-zone.example"); !errors.Is(err, dns.ErrNXDomain) {
		t.Errorf("unregistered zone: %v, want NXDOMAIN", err)
	}

	// Hijack: the victim's MX resolves, the relay sits in a lapsed zone
	// (ZoneGone) yet its glue still answers, and the served delegation
	// disagrees with the registry (DelegationStale).
	victim := byFam[FamilyHijack][0].Domain
	mxs, err := sr.LookupMX(ctx, victim)
	if err != nil || len(mxs) == 0 {
		t.Fatalf("hijacked %s MX: %v, %v", victim, mxs, err)
	}
	relay := mxs[0].Exchange
	if !sr.ZoneGone(ctx, relay) {
		t.Errorf("relay %s: ZoneGone = false, want true (zone lapsed)", relay)
	}
	if addrs, err := sr.LookupA(ctx, relay); err != nil || len(addrs) == 0 {
		t.Errorf("relay %s glue: %v, %v — leftover glue must still resolve", relay, addrs, err)
	}
	if !sr.DelegationStale(ctx, victim) {
		t.Errorf("hijacked %s: DelegationStale = false, want true", victim)
	}
	honest := byFam[FamilyHonest][0].Domain
	if sr.DelegationStale(ctx, honest) {
		t.Errorf("honest %s: DelegationStale = true, want false", honest)
	}
	if sr.ZoneGone(ctx, "mx."+honest) {
		t.Errorf("honest namespace %s flagged ZoneGone", "mx."+honest)
	}

	// Dangling-nx: the MX target's zone lapsed entirely — no glue, so
	// address resolution is NXDOMAIN and the zone reads gone.
	gone := byFam[FamilyDanglingNX][0].Domain
	mxs, err = sr.LookupMX(ctx, gone)
	if err != nil || len(mxs) == 0 {
		t.Fatalf("dangling %s MX: %v, %v", gone, mxs, err)
	}
	if _, err := sr.LookupA(ctx, mxs[0].Exchange); !errors.Is(err, dns.ErrNXDomain) {
		t.Errorf("dangling target %s: %v, want NXDOMAIN", mxs[0].Exchange, err)
	}
	if !sr.ZoneGone(ctx, mxs[0].Exchange) {
		t.Errorf("dangling target %s: ZoneGone = false, want true", mxs[0].Exchange)
	}

	// Abuse members carry look-alike names sharing the cluster's stem.
	for _, e := range byFam[FamilyAbuse] {
		stemmed := false
		for _, stem := range abuseStems {
			if strings.HasPrefix(e.Domain, stem+"-") {
				stemmed = true
			}
		}
		if !stemmed || !strings.HasSuffix(e.Domain, ".xyz") {
			t.Errorf("abuse member %q does not follow the look-alike pattern", e.Domain)
		}
	}

	// Parked sinkholes are in the feed; relay and honest addresses not.
	if len(w.Adversary.ParkedIPs) == 0 || !w.ParkedAddr(w.Adversary.ParkedIPs[0]) {
		t.Error("parking feed misses its own sinkholes")
	}
	if w.ParkedAddr(w.Adversary.HijackClusters[0].RelayAddrs[0]) {
		t.Error("hijack relay address wrongly in the parking feed")
	}
}
