package world

import (
	"fmt"
	"slices"

	"mxmap/internal/dns"
)

// DateIndex returns the snapshot index of a date label within a corpus,
// or -1 when the corpus was not measured on that date.
func (c *Corpus) DateIndex(date string) int {
	return slices.Index(c.Dates, date)
}

// CatalogAt builds the authoritative DNS catalog for one snapshot date:
// provider zones (stable across snapshots) plus a zone for every corpus
// domain measured on that date, reflecting its assignment at the time.
// This catalog is what the OpenINTEL-like collector resolves against.
func (w *World) CatalogAt(date string) (*dns.Catalog, error) {
	cat := dns.NewCatalog()
	if err := w.addProviderZones(cat); err != nil {
		return nil, err
	}
	if err := w.addAdversaryZones(cat); err != nil {
		return nil, err
	}
	for _, c := range w.Corpora {
		idx := c.DateIndex(date)
		if idx < 0 {
			continue
		}
		for _, d := range c.Domains {
			st := d.StintAt(idx)
			if st == nil {
				continue
			}
			if st.Mode == ModeAdversarial && d.Adv != nil && d.Adv.Family == FamilyLame {
				// Lame delegation: the registry delegates the zone but no
				// server answers for it.
				continue
			}
			z, err := w.domainZone(d, st)
			if err != nil {
				return nil, err
			}
			cat.AddZone(z)
		}
	}
	return cat, nil
}

const zoneTTL = 3600

// addProviderZones installs one zone per provider ID carrying the A
// records for the provider's shared mail hosts.
func (w *World) addProviderZones(cat *dns.Catalog) error {
	for _, id := range w.sortedProviderIDs() {
		p := w.providerByID[id]
		z := dns.NewZone(id)
		if err := addApex(z, id); err != nil {
			return err
		}
		if id == p.ID {
			// The provider's SPF include target authorizes its outbound
			// fleet.
			mechs := "v=spf1"
			for _, ip := range p.MailIPs {
				mechs += " ip4:" + ip.String()
			}
			if err := z.Add(dns.RR{Name: "_spf." + id, Type: dns.TypeTXT, TTL: zoneTTL,
				Data: dns.TXTData{Strings: []string{mechs + " -all"}}}); err != nil {
				return err
			}
			// Mail host names live under the primary ID only.
			for i, h := range p.MailHosts {
				if err := z.Add(dns.RR{Name: h, Type: dns.TypeA, TTL: zoneTTL,
					Data: dns.AData{Addr: p.MailIPs[i%len(p.MailIPs)]}}); err != nil {
					return err
				}
				if i < len(p.MailIPv6s) {
					if err := z.Add(dns.RR{Name: h, Type: dns.TypeAAAA, TTL: zoneTTL,
						Data: dns.AAAAData{Addr: p.MailIPv6s[i]}}); err != nil {
						return err
					}
				}
			}
			for _, ip := range p.MailIPs {
				if err := z.Add(dns.RR{Name: "mx." + id, Type: dns.TypeA, TTL: zoneTTL,
					Data: dns.AData{Addr: ip}}); err != nil {
					return err
				}
			}
			// SMTP-less web frontends are reachable via a ghs.<id> name.
			for _, ip := range p.WebFrontIPs {
				if err := z.Add(dns.RR{Name: "ghs." + id, Type: dns.TypeA, TTL: zoneTTL,
					Data: dns.AData{Addr: ip}}); err != nil {
					return err
				}
			}
			// Shared-hosting servers get resolvable names too, so that
			// banner identities can be chased end to end.
			for i, ip := range p.SharedIPs {
				name := fmt.Sprintf("shared%02d.shared.%s", i+1, id)
				if err := z.Add(dns.RR{Name: name, Type: dns.TypeA, TTL: zoneTTL,
					Data: dns.AData{Addr: ip}}); err != nil {
					return err
				}
			}
		}
		cat.AddZone(z)
	}
	return nil
}

// domainZone builds one measured domain's zone for a stint.
func (w *World) domainZone(d *Domain, st *Stint) (*dns.Zone, error) {
	z := dns.NewZone(d.Name)
	apexNS := "ns1." + d.Name
	if st.Mode == ModeAdversarial && d.Adv != nil && d.Adv.Family == FamilyHijack {
		// Hijacked: the attacker serves the zone and its apex NS names the
		// attacker's nameservers — while the registry delegation still
		// points at the registrant's. That disagreement is the stale-glue
		// signature ProvenanceChecker.DelegationStale detects.
		apexNS = "ns1." + w.Adversary.HijackClusters[d.Adv.Cluster].DNSZone
	}
	if err := addApexNS(z, d.Name, apexNS); err != nil {
		return nil, err
	}
	if spfTxt := w.SPFRecord(d, st); spfTxt != "" {
		if err := z.Add(dns.RR{Name: d.Name, Type: dns.TypeTXT, TTL: zoneTTL,
			Data: dns.TXTData{Strings: []string{spfTxt}}}); err != nil {
			return nil, err
		}
	}
	for _, rec := range w.MXRecords(d, st) {
		if err := z.Add(dns.RR{Name: d.Name, Type: dns.TypeMX, TTL: zoneTTL,
			Data: dns.MXData{Preference: rec.Pref, Exchange: rec.Host}}); err != nil {
			return nil, err
		}
		if rec.OwnA {
			for _, a := range rec.Addrs {
				if err := z.Add(dns.RR{Name: rec.Host, Type: dns.TypeA, TTL: zoneTTL,
					Data: dns.AData{Addr: a}}); err != nil {
					return nil, err
				}
			}
		}
	}
	return z, nil
}

// addApex writes the SOA and NS boilerplate of a zone.
func addApex(z *dns.Zone, origin string) error {
	return addApexNS(z, origin, "ns1."+origin)
}

// addApexNS is addApex with an explicit apex nameserver host.
func addApexNS(z *dns.Zone, origin, ns string) error {
	if err := z.Add(dns.RR{Name: origin, Type: dns.TypeSOA, TTL: zoneTTL, Data: dns.SOAData{
		MName: ns, RName: "hostmaster." + origin,
		Serial: 2021060800, Refresh: 7200, Retry: 900, Expire: 1209600, Minimum: 300,
	}}); err != nil {
		return err
	}
	return z.Add(dns.RR{Name: origin, Type: dns.TypeNS, TTL: zoneTTL,
		Data: dns.NSData{Host: ns}})
}

// addAdversaryZones installs the zones the hostile infrastructure
// serves: parking-operator zones, abuse exchanges, the backup relay and
// the hijackers' nameserver zones. Hijack relay zones are deliberately
// absent — their registration lapsed; relay hosts resolve only through
// the ScenarioResolver's leftover glue.
func (w *World) addAdversaryZones(cat *dns.Catalog) error {
	a := w.Adversary
	if a == nil {
		return nil
	}
	for k, zone := range a.ParkedZones {
		z := dns.NewZone(zone)
		if err := addApex(z, zone); err != nil {
			return err
		}
		if err := z.Add(dns.RR{Name: "mx." + zone, Type: dns.TypeA, TTL: zoneTTL,
			Data: dns.AData{Addr: a.ParkedIPs[k%len(a.ParkedIPs)]}}); err != nil {
			return err
		}
		cat.AddZone(z)
	}
	for _, hc := range a.HijackClusters {
		z := dns.NewZone(hc.DNSZone)
		if err := addApex(z, hc.DNSZone); err != nil {
			return err
		}
		if err := z.Add(dns.RR{Name: "ns1." + hc.DNSZone, Type: dns.TypeA, TTL: zoneTTL,
			Data: dns.AData{Addr: hc.RelayAddrs[0]}}); err != nil {
			return err
		}
		cat.AddZone(z)
	}
	for _, ac := range a.AbuseClusters {
		z := dns.NewZone(ac.Zone)
		if err := addApex(z, ac.Zone); err != nil {
			return err
		}
		if err := z.Add(dns.RR{Name: ac.Exchange, Type: dns.TypeA, TTL: zoneTTL,
			Data: dns.AData{Addr: ac.Addr}}); err != nil {
			return err
		}
		cat.AddZone(z)
	}
	br := a.BackupRelay
	z := dns.NewZone(br.Zone)
	if err := addApex(z, br.Zone); err != nil {
		return err
	}
	for i, host := range br.Hosts {
		if err := z.Add(dns.RR{Name: host, Type: dns.TypeA, TTL: zoneTTL,
			Data: dns.AData{Addr: br.Addrs[i]}}); err != nil {
			return err
		}
	}
	cat.AddZone(z)
	return nil
}
