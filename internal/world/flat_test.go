package world

import (
	"context"
	"errors"
	"net/netip"
	"testing"

	"mxmap/internal/dns"
	"mxmap/internal/smtp"
)

func flatWorld(t *testing.T, n int) *FlatWorld {
	t.Helper()
	fw, err := NewFlatWorld(FlatConfig{Seed: 7, NumDomains: n})
	if err != nil {
		t.Fatal(err)
	}
	return fw
}

func TestFlatNameRoundTrip(t *testing.T) {
	fw := flatWorld(t, 100_000)
	for _, i := range []int{0, 1, 42, 99_999} {
		name := fw.DomainName(i)
		got, ok := fw.domainIndex(name)
		if !ok || got != i {
			t.Fatalf("domainIndex(%q) = %d, %v", name, got, ok)
		}
	}
	for _, bad := range []string{"", "d.com", "d0001.com", "d100000000.com", "x000000042.com", "d000000042.net"} {
		if _, ok := fw.domainIndex(bad); ok {
			t.Errorf("domainIndex accepted %q", bad)
		}
	}
	a := fw.selfIP(70_000)
	if i, ok := fw.selfIndex(a); !ok || i != 70_000 {
		t.Fatalf("selfIndex(%v) = %d, %v", a, i, ok)
	}
	if _, ok := fw.selfIndex(netip.MustParseAddr("10.1.0.1")); ok {
		t.Error("selfIndex accepted a provider address")
	}
}

// TestFlatShares checks assignment lands close to the calibrated table:
// GoDaddy around 29%, Google around 9.4% of the .com corpus.
func TestFlatShares(t *testing.T) {
	fw := flatWorld(t, 200_000)
	counts := make(map[string]int)
	self, none := 0, 0
	for i := 0; i < fw.NumDomains(); i++ {
		p, ok := fw.providerOf(i)
		switch {
		case !ok:
			none++
		case p == nil:
			self++
		default:
			counts[p.company]++
		}
	}
	pct := func(n int) float64 { return 100 * float64(n) / float64(fw.NumDomains()) }
	for company, want := range map[string]float64{"GoDaddy": 29.0, "Google": 9.4, "Microsoft": 5.8} {
		got := pct(counts[company])
		if got < want*0.9 || got > want*1.1 {
			t.Errorf("%s share = %.2f%%, want ~%.1f%%", company, got, want)
		}
	}
	if got := pct(none); got < noMXPercent*0.8 || got > noMXPercent*1.2 {
		t.Errorf("no-MX share = %.2f%%, want ~%.1f%%", got, noMXPercent)
	}
	if got := pct(self); got < 0.1 || got > 0.4 {
		t.Errorf("self-hosted share = %.2f%%, want ~0.2%%", got)
	}
	// Determinism: a second world with the same seed agrees everywhere.
	fw2 := flatWorld(t, 200_000)
	for _, i := range []int{0, 17, 54_321, 199_999} {
		if a, b := fw.TruthCompany(i), fw2.TruthCompany(i); a != b {
			t.Fatalf("truth for %d differs across generations: %q vs %q", i, a, b)
		}
	}
}

func TestFlatResolver(t *testing.T) {
	fw := flatWorld(t, 100_000)
	r := fw.Resolver()
	ctx := context.Background()

	if _, err := r.LookupMX(ctx, "not-a-flat-domain.org"); !errors.Is(err, dns.ErrNXDomain) {
		t.Errorf("junk domain: %v, want NXDOMAIN", err)
	}

	var provDomain, selfDomain, noneDomain string
	for i := 0; i < fw.NumDomains(); i++ {
		p, ok := fw.providerOf(i)
		switch {
		case !ok && noneDomain == "":
			noneDomain = fw.DomainName(i)
		case ok && p == nil && selfDomain == "":
			selfDomain = fw.DomainName(i)
		case ok && p != nil && provDomain == "":
			provDomain = fw.DomainName(i)
		}
		if provDomain != "" && selfDomain != "" && noneDomain != "" {
			break
		}
	}

	if _, err := r.LookupMX(ctx, noneDomain); !errors.Is(err, dns.ErrNoData) {
		t.Errorf("no-MX domain: %v, want NoData", err)
	}

	mxs, err := r.LookupMX(ctx, provDomain)
	if err != nil || len(mxs) != 2 {
		t.Fatalf("provider domain MX = %v, %v", mxs, err)
	}
	addrs, err := r.LookupA(ctx, mxs[0].Exchange)
	if err != nil || len(addrs) == 0 {
		t.Fatalf("exchange %s: %v, %v", mxs[0].Exchange, addrs, err)
	}
	if _, err := r.LookupAAAA(ctx, mxs[0].Exchange); !errors.Is(err, dns.ErrNoData) {
		t.Errorf("AAAA for %s: %v, want NoData", mxs[0].Exchange, err)
	}

	mxs, err = r.LookupMX(ctx, selfDomain)
	if err != nil || len(mxs) != 1 || mxs[0].Exchange != "mail."+selfDomain {
		t.Fatalf("self domain MX = %v, %v", mxs, err)
	}
	addrs, err = r.LookupA(ctx, mxs[0].Exchange)
	if err != nil || len(addrs) != 1 {
		t.Fatalf("self exchange: %v, %v", addrs, err)
	}
	if i, ok := fw.selfIndex(addrs[0]); !ok || fw.DomainName(i) != selfDomain {
		t.Errorf("self IP %v does not map back to %s", addrs[0], selfDomain)
	}
}

func TestFlatDialerServesSMTP(t *testing.T) {
	fw := flatWorld(t, 100_000)
	ctx := context.Background()

	// A curated provider address: banner identity plus trusted STARTTLS.
	p := fw.providers[0]
	res := smtp.Scan(ctx, netip.AddrPortFrom(p.addrs[0][0], 25).String(),
		smtp.ScanConfig{Dialer: fw.Dialer()})
	if res.Err != nil {
		t.Fatalf("provider scan: %v", res.Err)
	}
	if res.BannerHost != p.hosts[0] || res.EHLOHost != p.hosts[0] {
		t.Errorf("identity = %q/%q, want %q", res.BannerHost, res.EHLOHost, p.hosts[0])
	}
	if !res.SupportsSTARTTLS || !res.TLSHandshakeOK || len(res.PeerCertificates) == 0 {
		t.Fatalf("provider host should speak STARTTLS: %+v", res)
	}
	if err := fw.Trust.Validate(res.PeerCertificates); err != nil {
		t.Errorf("provider certificate not trusted: %v", err)
	}

	// A self-hosted address: banner-only under the domain's own name.
	var selfIdx int
	for i := 0; i < fw.NumDomains(); i++ {
		if p, ok := fw.providerOf(i); ok && p == nil {
			selfIdx = i
			break
		}
	}
	res = smtp.Scan(ctx, netip.AddrPortFrom(fw.selfIP(selfIdx), 25).String(),
		smtp.ScanConfig{Dialer: fw.Dialer()})
	if res.Err != nil {
		t.Fatalf("self-hosted scan: %v", res.Err)
	}
	if want := "mail." + fw.DomainName(selfIdx); res.BannerHost != want {
		t.Errorf("self-hosted banner = %q, want %q", res.BannerHost, want)
	}
	if res.SupportsSTARTTLS {
		t.Error("self-hosted box should not offer STARTTLS")
	}

	// Nothing listens between the cracks.
	res = smtp.Scan(ctx, "10.250.0.1:25", smtp.ScanConfig{Dialer: fw.Dialer()})
	if res.Connected {
		t.Error("scan of an empty address connected")
	}
}
