package world

import (
	"context"
	"fmt"
	"math/rand/v2"
	"net/netip"
	"strings"

	"mxmap/internal/asn"
	"mxmap/internal/companies"
	"mxmap/internal/dns"
)

// ScenarioFamily names one hostile or pathological scenario the
// adversarial layer can impose on a domain. The honest family is the
// implicit default for every domain the layer does not touch.
type ScenarioFamily string

// Scenario families.
const (
	// FamilyHonest marks domains untouched by the adversarial layer.
	FamilyHonest ScenarioFamily = "honest"
	// FamilyDanglingNX: the MX record points at a name whose registered
	// zone has lapsed entirely — A/AAAA lookups answer NXDOMAIN. This is
	// the classic takeover precondition.
	FamilyDanglingNX ScenarioFamily = "dangling-nx"
	// FamilyDanglingParked: the MX target's registered domain expired and
	// was re-registered by a parking service, so the exchange resolves —
	// but onto parking addresses where nothing ever answers port 25.
	FamilyDanglingParked ScenarioFamily = "dangling-parked"
	// FamilyHijack: the registry delegation still names the original
	// registrant's servers, but the glue is stale — the attacker serves
	// the zone, publishes MX records into relay infrastructure it runs,
	// and the relays claim a big provider's identity in their banners.
	FamilyHijack ScenarioFamily = "hijack"
	// FamilyLame: the domain is delegated but no server answers for the
	// zone — a lame delegation, definitively broken.
	FamilyLame ScenarioFamily = "lame"
	// FamilyAbuse: clusters of look-alike throwaway domains sharing one
	// cheap bulk-mail exchange — the spam-campaign signature.
	FamilyAbuse ScenarioFamily = "abuse"
	// FamilyBLBFO: backup-looks-better-failover topologies — priority
	// tiers, weight-skewed equal-preference sets, and domains served only
	// by a backup-MX provider (after Ruohonen's BLBFO taxonomy).
	FamilyBLBFO ScenarioFamily = "blbfo"
)

// BLBFO topology labels.
const (
	// TopologyTiered: three priority tiers, the last pointing at the
	// shared backup-MX relay.
	TopologyTiered = "tiered"
	// TopologySkewed: two equal-preference primaries (weight skew) plus a
	// lower-priority backup relay.
	TopologySkewed = "skewed"
	// TopologyBackupOnly: every MX record points at the backup-MX
	// provider; the "primary" never existed.
	TopologyBackupOnly = "backup-only"
)

// AdvSpec pins a domain's adversarial scenario.
type AdvSpec struct {
	// Family is the scenario family.
	Family ScenarioFamily
	// Cluster indexes the hijack or abuse cluster the domain belongs to.
	Cluster int
	// Topology is the BLBFO topology label for FamilyBLBFO.
	Topology string
}

// OracleEntry is the machine-readable per-domain ground truth the
// adversarial layer retains, consumed by the misidentification scorer.
type OracleEntry struct {
	// Domain is the measured registered domain.
	Domain string `json:"domain"`
	// Family is the scenario family (honest for untouched domains).
	Family ScenarioFamily `json:"family"`
	// Truth is the ground-truth operator bucket at the final snapshot:
	// a company name, the domain itself, or "" when no mail service (or
	// no trustworthy one) exists.
	Truth string `json:"truth,omitempty"`
	// Forged is the provider identity an attacker claims; crediting it
	// is the misidentification the scorer counts.
	Forged string `json:"forged,omitempty"`
	// ExpectFlagged marks domains a robust inference must surface as
	// low-trust rather than attribute at face value.
	ExpectFlagged bool `json:"expect_flagged,omitempty"`
	// Detail carries the family-specific sub-label (cluster zone, BLBFO
	// topology).
	Detail string `json:"detail,omitempty"`
}

// Adversarial infrastructure sizing.
const (
	numHijackClusters = 2
	numAbuseClusters  = 2
	numParkedZones    = 2
	numGoneZones      = 4
)

// HijackCluster is one stale-glue hijack operation: an attacker DNS
// zone serving forged answers for its victims, and relay hosts (in a
// lapsed zone, reachable only through leftover glue) that impersonate a
// big provider.
type HijackCluster struct {
	// RelayZone is the lapsed registered zone the relay hosts live in.
	RelayZone string
	// DNSZone is the attacker's registered nameserver zone; victims'
	// served apex NS points here while the registry delegation does not.
	DNSZone string
	// RelayHosts are the relay exchange names.
	RelayHosts []string
	// RelayAddrs are the relays' addresses (parallel to RelayHosts).
	RelayAddrs []netip.Addr
	// Forged is the provider identity the relays claim in their banners.
	Forged string
}

// AbuseCluster is one bulk-mail operation: a cheap shared exchange and
// the naming stem its look-alike member domains share.
type AbuseCluster struct {
	// Zone is the operator's registered zone.
	Zone string
	// Exchange is the shared MX exchange name.
	Exchange string
	// Addr is the exchange's address.
	Addr netip.Addr
	// Stem is the shared look-alike naming stem of member domains.
	Stem string
	// Company is the operator's directory name.
	Company string
}

// BackupRelayInfo is the shared backup-MX provider BLBFO topologies
// point their low-priority (or only) records at.
type BackupRelayInfo struct {
	// Zone is the provider's registered zone.
	Zone string
	// Hosts are the relay exchange names.
	Hosts []string
	// Addrs are the exchanges' addresses (parallel to Hosts).
	Addrs []netip.Addr
	// Company is the provider's directory name.
	Company string
}

// Adversary holds the hostile shared infrastructure of a world.
type Adversary struct {
	// ParkedIPs are the parking service's sinkhole addresses; port 25 is
	// closed forever.
	ParkedIPs []netip.Addr
	// ParkedZones are parking-operator zones that swallowed expired MX
	// target domains (dangling-parked family).
	ParkedZones []string
	// GoneZones are lapsed zones dangling-nx MX targets point into;
	// nothing serves them and the registry has dropped them.
	GoneZones []string
	// HijackClusters are the stale-glue hijack operations.
	HijackClusters []HijackCluster
	// AbuseClusters are the bulk-mail operations.
	AbuseClusters []AbuseCluster
	// BackupRelay is the shared backup-MX provider.
	BackupRelay BackupRelayInfo

	parked map[netip.Addr]bool
}

// advCycle spreads selected domains over families round-robin; hijack
// and abuse appear twice so their clusters gather enough members to
// exercise the cluster-level inference rules.
var advCycle = []ScenarioFamily{
	FamilyDanglingNX, FamilyDanglingParked, FamilyHijack, FamilyLame,
	FamilyAbuse, FamilyBLBFO, FamilyHijack, FamilyAbuse,
}

// abuseStems are the look-alike naming stems, one per abuse cluster.
var abuseStems = []string{"bargain-pharma-dealz", "prize-claim-rewardz"}

// blbfoTopologies cycles over the Ruohonen failover shapes.
var blbfoTopologies = []string{TopologyTiered, TopologySkewed, TopologyBackupOnly}

// HasAdversarial reports whether the world carries an adversarial layer.
func (w *World) HasAdversarial() bool { return w.Adversary != nil }

// ParkedAddr reports whether addr belongs to a known domain-parking
// service — the external parking-IP feed the collector consults.
func (w *World) ParkedAddr(addr netip.Addr) bool {
	return w.Adversary != nil && w.Adversary.parked[addr]
}

// ensureAdversary materializes the hostile shared infrastructure:
// address space, AS announcements, SMTP endpoints and directory entries.
// Deterministic — no randomness is consumed.
func (w *World) ensureAdversary() error {
	if w.Adversary != nil {
		return nil
	}
	a := &Adversary{parked: make(map[netip.Addr]bool)}

	// Parking service: a /24 of sinkhole addresses, port 25 closed.
	parkASN := asn.ASN(64990)
	w.ASRegistry.Register(asn.AS{
		Number: parkASN, Name: "ParkZone", Org: "ParkZone Holdings", CountryCode: "US",
	})
	if err := w.Prefixes.Insert(netip.PrefixFrom(netip.AddrFrom4([4]byte{100, 126, 0, 0}), 24), parkASN); err != nil {
		return err
	}
	for k := 0; k < numParkedZones; k++ {
		addr := netip.AddrFrom4([4]byte{100, 126, 0, byte(1 + k)})
		a.ParkedIPs = append(a.ParkedIPs, addr)
		a.parked[addr] = true
		w.Hosts[addr] = &Host{Addr: addr, ASN: parkASN, SMTP: nil}
		a.ParkedZones = append(a.ParkedZones, fmt.Sprintf("parked-claims%02d.net", k))
	}
	for k := 0; k < numGoneZones; k++ {
		a.GoneZones = append(a.GoneZones, fmt.Sprintf("gone-mail%02d.net", k))
	}

	// Hijack clusters: relays in lapsed zones, reachable via stale glue,
	// claiming a big provider's identity.
	for k := 0; k < numHijackClusters; k++ {
		hjASN := asn.ASN(64991 + k)
		w.ASRegistry.Register(asn.AS{
			Number: hjASN, Name: fmt.Sprintf("BPH-%d", k),
			Org: fmt.Sprintf("Bulletproof Hosting %d", k), CountryCode: "US",
		})
		prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{100, 125, byte(k), 0}), 24)
		if err := w.Prefixes.Insert(prefix, hjASN); err != nil {
			return err
		}
		hc := HijackCluster{
			RelayZone: fmt.Sprintf("hijack%02d-relay.net", k),
			DNSZone:   fmt.Sprintf("hijack%02d-dns.net", k),
			Forged:    "Google",
		}
		for i := 0; i < 2; i++ {
			host := fmt.Sprintf("mx%d.%s", i+1, hc.RelayZone)
			addr := netip.AddrFrom4([4]byte{100, 125, byte(k), byte(1 + i)})
			hc.RelayHosts = append(hc.RelayHosts, host)
			hc.RelayAddrs = append(hc.RelayAddrs, addr)
			w.Hosts[addr] = &Host{Addr: addr, ASN: hjASN, SMTP: &SMTPSpec{
				Hostname: host,
				Banner:   "mx.google.com ESMTP gsmtp",
				EHLOName: "mx.google.com",
			}}
		}
		a.HijackClusters = append(a.HijackClusters, hc)
	}

	// Abuse clusters: one cheap exchange each, registered to a bulk-mail
	// shell company so attribution has a name to land on.
	for k := 0; k < numAbuseClusters; k++ {
		abASN := asn.ASN(64994 + k)
		company := fmt.Sprintf("Bulk Blast Mail %02d", k)
		w.ASRegistry.Register(asn.AS{
			Number: abASN, Name: fmt.Sprintf("BULK-%d", k), Org: company, CountryCode: "US",
		})
		prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{100, 124, byte(k), 0}), 24)
		if err := w.Prefixes.Insert(prefix, abASN); err != nil {
			return err
		}
		ac := AbuseCluster{
			Zone:    fmt.Sprintf("bulk%02d-mail.xyz", k),
			Stem:    abuseStems[k%len(abuseStems)],
			Company: company,
			Addr:    netip.AddrFrom4([4]byte{100, 124, byte(k), 1}),
		}
		ac.Exchange = "mx." + ac.Zone
		w.Hosts[ac.Addr] = &Host{Addr: ac.Addr, ASN: abASN, SMTP: &SMTPSpec{Hostname: ac.Exchange}}
		w.Directory.Register(companies.Company{
			Name: company, Kind: companies.KindOther, Country: "US",
			ProviderIDs: []string{ac.Zone}, ASNs: []asn.ASN{abASN},
		})
		a.AbuseClusters = append(a.AbuseClusters, ac)
	}

	// Backup-MX relay: a legitimate (if bare-bones) store-and-forward
	// provider the BLBFO topologies share.
	brASN := asn.ASN(64997)
	br := BackupRelayInfo{Zone: "backup-relay-mail.net", Company: "Backup MX Relay"}
	w.ASRegistry.Register(asn.AS{
		Number: brASN, Name: "BACKUPMX", Org: br.Company, CountryCode: "US",
	})
	if err := w.Prefixes.Insert(netip.PrefixFrom(netip.AddrFrom4([4]byte{100, 123, 0, 0}), 24), brASN); err != nil {
		return err
	}
	for i := 0; i < 2; i++ {
		host := fmt.Sprintf("mx%d.%s", i+1, br.Zone)
		addr := netip.AddrFrom4([4]byte{100, 123, 0, byte(1 + i)})
		br.Hosts = append(br.Hosts, host)
		br.Addrs = append(br.Addrs, addr)
		w.Hosts[addr] = &Host{Addr: addr, ASN: brASN, SMTP: &SMTPSpec{Hostname: host}}
	}
	w.Directory.Register(companies.Company{
		Name: br.Company, Kind: companies.KindOther, Country: "US",
		ProviderIDs: []string{br.Zone}, ASNs: []asn.ASN{brASN},
	})
	a.BackupRelay = br

	w.Adversary = a
	return nil
}

// applyAdversarial rewrites the final stint of a deterministic sample of
// corpus domains into adversarial scenarios. It runs after assignment
// closes and before hosts materialize; its randomness is a private
// stream, so honest worlds (Adversarial == 0) are untouched.
func (w *World) applyAdversarial(c *Corpus) {
	n := int(w.Cfg.Adversarial * float64(len(c.Domains)))
	if n <= 0 {
		return
	}
	if n > len(c.Domains) {
		n = len(c.Domains)
	}
	rng := rand.New(rand.NewPCG(w.Cfg.Seed, hash64(c.Name+"/adversarial")))
	perm := rng.Perm(len(c.Domains))
	last := len(c.Dates) - 1
	counts := make(map[ScenarioFamily]int)
	for k := 0; k < n; k++ {
		d := c.Domains[perm[k]]
		fam := advCycle[k%len(advCycle)]
		spec := &AdvSpec{Family: fam}
		switch fam {
		case FamilyHijack:
			spec.Cluster = counts[fam] % numHijackClusters
		case FamilyAbuse:
			spec.Cluster = counts[fam] % numAbuseClusters
			w.renameAbuseDomain(d, spec.Cluster, counts[fam])
		case FamilyBLBFO:
			spec.Topology = blbfoTopologies[counts[fam]%len(blbfoTopologies)]
		}
		counts[fam]++
		d.Adv = spec
		w.rewriteFinalStint(d, spec, last, rng)
	}
}

// renameAbuseDomain gives an abuse-cluster member its look-alike name.
func (w *World) renameAbuseDomain(d *Domain, cluster, member int) {
	stem := w.Adversary.AbuseClusters[cluster].Stem
	for {
		name := fmt.Sprintf("%s-%03d.xyz", stem, member)
		if !w.usedNames[name] {
			w.usedNames[name] = true
			d.Name = name
			d.Country = ""
			return
		}
		member += numAbuseClusters
	}
}

// rewriteFinalStint turns the domain's last snapshot into the
// adversarial scenario, splitting the closing stint when it spans
// earlier (still honest) snapshots.
func (w *World) rewriteFinalStint(d *Domain, spec *AdvSpec, last int, rng *rand.Rand) {
	st := &d.Stints[len(d.Stints)-1]
	if st.From < last {
		st.To = last - 1
		d.Stints = append(d.Stints, Stint{
			From: last, To: last,
			Provider: st.Provider,
			Variant:  rng.Uint32(),
		})
		st = &d.Stints[len(d.Stints)-1]
	} else {
		st.Variant = rng.Uint32()
	}
	st.Mode = ModeAdversarial
	if spec.Family == FamilyBLBFO && st.Provider < 0 {
		// BLBFO needs a real primary provider; pick one deterministically.
		st.Provider = int(st.Variant) % len(w.Providers)
	}
}

// advTruth is the ground-truth operator bucket for an adversarial stint.
func (w *World) advTruth(d *Domain, st *Stint) string {
	a := w.Adversary
	if a == nil || d.Adv == nil {
		return ""
	}
	switch d.Adv.Family {
	case FamilyHijack:
		// The registrant lost control; mail flows to the attacker's
		// relay zone. No legitimate operator exists to credit.
		return a.HijackClusters[d.Adv.Cluster].RelayZone
	case FamilyAbuse:
		return a.AbuseClusters[d.Adv.Cluster].Company
	case FamilyBLBFO:
		if d.Adv.Topology == TopologyBackupOnly {
			return a.BackupRelay.Company
		}
		return w.Providers[st.Provider].Company.Name
	default:
		// Dangling, parked, lame: the mail service is gone.
		return ""
	}
}

// advMXRecords derives the MX configuration of an adversarial stint.
func (w *World) advMXRecords(d *Domain, st *Stint) []MXRec {
	a := w.Adversary
	if a == nil || d.Adv == nil {
		return nil
	}
	v := uint64(st.Variant)
	switch d.Adv.Family {
	case FamilyDanglingNX:
		return []MXRec{{Pref: 10, Host: "mx." + a.GoneZones[int(v)%len(a.GoneZones)]}}
	case FamilyDanglingParked:
		return []MXRec{{Pref: 10, Host: "mx." + a.ParkedZones[int(v)%len(a.ParkedZones)]}}
	case FamilyHijack:
		hc := a.HijackClusters[d.Adv.Cluster]
		recs := []MXRec{{Pref: 10, Host: hc.RelayHosts[0]}}
		if v%2 == 0 {
			recs = append(recs, MXRec{Pref: 20, Host: hc.RelayHosts[1]})
		}
		return recs
	case FamilyLame:
		// The zone is never served; no records are reachable anyway.
		return nil
	case FamilyAbuse:
		return []MXRec{{Pref: 10, Host: a.AbuseClusters[d.Adv.Cluster].Exchange}}
	case FamilyBLBFO:
		p := w.Providers[st.Provider]
		br := a.BackupRelay
		switch d.Adv.Topology {
		case TopologyTiered:
			return []MXRec{
				providerMX(p, 0, 10), providerMX(p, 1%len(p.MailHosts), 20),
				{Pref: 30, Host: br.Hosts[0]},
			}
		case TopologySkewed:
			return []MXRec{
				providerMX(p, 0, 10), providerMX(p, 1%len(p.MailHosts), 10),
				{Pref: 20, Host: br.Hosts[1]},
			}
		default: // backup-only
			return []MXRec{{Pref: 10, Host: br.Hosts[0]}, {Pref: 20, Host: br.Hosts[1]}}
		}
	}
	return nil
}

// Oracle returns the per-domain ground truth of a corpus at its final
// snapshot, one entry per domain, honest domains included (they anchor
// the scorer's baseline).
func (w *World) Oracle(corpusName string) []OracleEntry {
	c := w.Corpus(corpusName)
	if c == nil {
		return nil
	}
	last := len(c.Dates) - 1
	out := make([]OracleEntry, 0, len(c.Domains))
	for _, d := range c.Domains {
		e := OracleEntry{Domain: d.Name, Family: FamilyHonest, Truth: w.TruthCompany(d, last)}
		if d.Adv != nil {
			e.Family = d.Adv.Family
			switch d.Adv.Family {
			case FamilyDanglingNX, FamilyDanglingParked, FamilyAbuse:
				e.ExpectFlagged = true
			case FamilyHijack:
				e.ExpectFlagged = true
				hc := w.Adversary.HijackClusters[d.Adv.Cluster]
				e.Forged = hc.Forged
				e.Detail = hc.RelayZone
			case FamilyBLBFO:
				e.Detail = d.Adv.Topology
			}
			if d.Adv.Family == FamilyAbuse {
				e.Detail = w.Adversary.AbuseClusters[d.Adv.Cluster].Zone
			}
		}
		out = append(out, e)
	}
	return out
}

// ScenarioResolver layers a registry-side view of the namespace over a
// catalog: it knows which zones are registered, what the parent-side
// delegation says, which delegations are lame, and which lapsed names
// still resolve through leftover glue. It implements dns.Resolver,
// dns.TXTResolver and dns.ProvenanceChecker.
type ScenarioResolver struct {
	inner dns.CatalogResolver
	// registered holds every zone the registry still delegates.
	registered map[string]bool
	// apexNS is the parent-side NS host per registered zone, frozen at
	// delegation time.
	apexNS map[string]string
	// lame marks registered zones no server answers for.
	lame map[string]bool
	// glue maps lapsed-zone hosts to the addresses their leftover glue
	// still resolves to.
	glue map[string][]netip.Addr
}

// ScenarioResolverAt builds the date's resolver: the catalog for
// serving-side answers plus the registry view derived from the world.
func (w *World) ScenarioResolverAt(catalog *dns.Catalog, date string) *ScenarioResolver {
	sr := &ScenarioResolver{
		inner:      dns.CatalogResolver{Catalog: catalog},
		registered: make(map[string]bool),
		apexNS:     make(map[string]string),
		lame:       make(map[string]bool),
		glue:       make(map[string][]netip.Addr),
	}
	register := func(zone string) {
		sr.registered[zone] = true
		sr.apexNS[zone] = "ns1." + zone
	}
	for _, id := range w.sortedProviderIDs() {
		register(id)
	}
	for _, c := range w.Corpora {
		idx := c.DateIndex(date)
		for _, d := range c.Domains {
			register(d.Name)
			if idx < 0 || d.Adv == nil {
				continue
			}
			if st := d.StintAt(idx); st != nil && st.Mode == ModeAdversarial && d.Adv.Family == FamilyLame {
				sr.lame[d.Name] = true
			}
		}
	}
	if a := w.Adversary; a != nil {
		for _, z := range a.ParkedZones {
			register(z)
		}
		for _, hc := range a.HijackClusters {
			// The relay zone lapsed — it is NOT registered — but its old
			// glue records still resolve the relay hosts.
			register(hc.DNSZone)
			for i, host := range hc.RelayHosts {
				sr.glue[host] = []netip.Addr{hc.RelayAddrs[i]}
			}
		}
		for _, ac := range a.AbuseClusters {
			register(ac.Zone)
		}
		register(a.BackupRelay.Zone)
	}
	return sr
}

// enclosingZone walks name's suffixes to the closest registered zone.
func (sr *ScenarioResolver) enclosingZone(name string) (string, bool) {
	n := strings.ToLower(dns.TrimmedName(name))
	for n != "" {
		if sr.registered[n] {
			return n, true
		}
		_, rest, ok := strings.Cut(n, ".")
		if !ok {
			break
		}
		n = rest
	}
	return "", false
}

// gate applies the registry view before a catalog query: names outside
// any registered zone do not exist; names in lame zones fail with
// ErrLame.
func (sr *ScenarioResolver) gate(name string) error {
	zone, ok := sr.enclosingZone(name)
	if !ok {
		return fmt.Errorf("%w: %s", dns.ErrNXDomain, name)
	}
	if sr.lame[zone] {
		return fmt.Errorf("%w: %s", dns.ErrLame, zone)
	}
	return nil
}

// LookupMX implements dns.Resolver.
func (sr *ScenarioResolver) LookupMX(ctx context.Context, domain string) ([]dns.MXData, error) {
	if err := sr.gate(domain); err != nil {
		return nil, err
	}
	return sr.inner.LookupMX(ctx, domain)
}

// LookupA implements dns.Resolver.
func (sr *ScenarioResolver) LookupA(ctx context.Context, host string) ([]netip.Addr, error) {
	if addrs, ok := sr.glue[strings.ToLower(dns.TrimmedName(host))]; ok {
		return append([]netip.Addr(nil), addrs...), nil
	}
	if err := sr.gate(host); err != nil {
		return nil, err
	}
	return sr.inner.LookupA(ctx, host)
}

// LookupAAAA implements dns.Resolver.
func (sr *ScenarioResolver) LookupAAAA(ctx context.Context, host string) ([]netip.Addr, error) {
	if _, ok := sr.glue[strings.ToLower(dns.TrimmedName(host))]; ok {
		// Glue is IPv4-only in this world.
		return nil, fmt.Errorf("%w: AAAA for %s", dns.ErrNoData, host)
	}
	if err := sr.gate(host); err != nil {
		return nil, err
	}
	return sr.inner.LookupAAAA(ctx, host)
}

// LookupTXT implements dns.TXTResolver.
func (sr *ScenarioResolver) LookupTXT(ctx context.Context, domain string) ([]string, error) {
	if err := sr.gate(domain); err != nil {
		return nil, err
	}
	return sr.inner.LookupTXT(ctx, domain)
}

// DelegationStale implements dns.ProvenanceChecker: it compares the
// parent-side NS host against the apex NS set the serving zone answers
// with; any served NS the registry does not know about means the
// delegation's control has drifted — the stale-glue hijack signature.
func (sr *ScenarioResolver) DelegationStale(ctx context.Context, domain string) bool {
	if ctx.Err() != nil {
		return false
	}
	name := strings.ToLower(dns.TrimmedName(domain))
	want, ok := sr.apexNS[name]
	if !ok {
		return false
	}
	resp := sr.inner.Catalog.Resolve(dns.Question{
		Name: dns.CanonicalName(name), Type: dns.TypeNS, Class: dns.ClassIN,
	})
	if resp.Header.RCode != dns.RCodeSuccess {
		return false
	}
	for _, rr := range resp.Answers {
		if ns, isNS := rr.Data.(dns.NSData); isNS {
			if !strings.EqualFold(dns.TrimmedName(ns.Host), want) {
				return true
			}
		}
	}
	return false
}

// ZoneGone implements dns.ProvenanceChecker: a host with no enclosing
// registered zone sits in lapsed namespace; whatever it still resolves
// to is leftover glue.
func (sr *ScenarioResolver) ZoneGone(_ context.Context, host string) bool {
	_, ok := sr.enclosingZone(host)
	return !ok
}
