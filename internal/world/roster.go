package world

import (
	"fmt"
	"math/rand/v2"
	"net/netip"
	"strings"

	"mxmap/internal/asn"
	"mxmap/internal/certs"
	"mxmap/internal/companies"
)

// buildRoster creates every provider's simulated infrastructure: address
// space, AS announcements, mail-server fleets with certificates, and (for
// web hosts) shared-hosting servers and rentable cloud prefixes.
func (w *World) buildRoster() error {
	dir := companies.Curated()
	w.Directory = dir
	w.providerByID = make(map[string]*Provider)
	w.Hosts = make(map[netip.Addr]*Host)

	// Curated companies first, in stable (sorted) order.
	for _, c := range dir.Companies() {
		if err := w.addProvider(c); err != nil {
			return err
		}
	}
	// Long-tail providers: small mail hosts with their own modest fleets.
	for j := 0; j < w.Cfg.TailProviders; j++ {
		name := fmt.Sprintf("%s Mail", titleWord(w.rng))
		id := fmt.Sprintf("%s-mail%d.net", lowerWord(w.rng), j)
		c := w.Directory.Register(companies.Company{
			Name:        name,
			Kind:        companies.KindOther,
			Country:     tailCountry(w.rng),
			ProviderIDs: []string{id},
			ASNs:        []asn.ASN{asn.ASN(64512 + j)},
		})
		if err := w.addProvider(c); err != nil {
			return err
		}
	}
	// Access ISPs used by self-hosted domains.
	for k := 0; k < w.Cfg.SelfISPs; k++ {
		a := asn.ASN(65000 + k)
		w.ASRegistry.Register(asn.AS{
			Number: a, Name: fmt.Sprintf("ISP-%d", k),
			Org: fmt.Sprintf("Access ISP %d", k), CountryCode: "US",
		})
		prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{100, byte(64 + k), 0, 0}), 16)
		if err := w.Prefixes.Insert(prefix, a); err != nil {
			return err
		}
	}
	return nil
}

// addProvider materializes one company as a provider with infrastructure.
func (w *World) addProvider(c *companies.Company) error {
	idx := len(w.Providers)
	p := &Provider{
		Company: c,
		ID:      c.ProviderIDs[0],
		index:   idx,
	}
	if len(c.ASNs) > 0 {
		p.ASN = c.ASNs[0]
	} else {
		p.ASN = asn.ASN(64000 + idx)
	}
	w.ASRegistry.Register(asn.AS{
		Number: p.ASN, Name: c.Name, Org: c.Name, CountryCode: c.Country,
	})

	// Address plan: curated company i mail space at 10.(1+i)/16, cloud
	// space at 10.(128+i)/16; tail providers at 172.16.j.0/24.
	var mailPrefix netip.Prefix
	if idx < 96 {
		mailPrefix = netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(1 + idx), 0, 0}), 16)
		if c.Kind == companies.KindWebHosting || c.Name == "Google" {
			p.CloudPrefix = netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(129 + idx), 0, 0}), 16)
			// Cloud space may be announced by the same AS: that ambiguity
			// (provider AS != provider mail service) is a corner case the
			// methodology must survive.
			if err := w.Prefixes.Insert(p.CloudPrefix, p.ASN); err != nil {
				return err
			}
		}
	} else {
		j := idx - 96
		mailPrefix = netip.PrefixFrom(netip.AddrFrom4([4]byte{172, byte(16 + j/256), byte(j % 256), 0}), 24)
	}
	if err := w.Prefixes.Insert(mailPrefix, p.ASN); err != nil {
		return err
	}

	fleet, hostPattern := fleetPlan(c)
	p.MailHosts = make([]string, fleet)
	for i := 0; i < fleet; i++ {
		p.MailHosts[i] = fmt.Sprintf(hostPattern, i+1) + "." + p.ID
	}
	leaves, err := w.issueFleetCerts(p, c)
	if err != nil {
		return err
	}

	// SiteGround's filtering fleet runs inside Google's cloud — the
	// beats24-7.com corner case from Table 1.
	hostASN := p.ASN
	base := mailPrefix.Addr().As4()
	if c.Name == "SiteGround" {
		if g, ok := w.providerByID["google.com"]; ok && g.CloudPrefix.IsValid() {
			base = g.CloudPrefix.Addr().As4()
			base[2] = 250 // dedicated slice of the cloud range
			hostASN = g.ASN
		}
	}

	for i := 0; i < fleet; i++ {
		var addr netip.Addr
		if mailPrefix.Bits() <= 16 {
			addr = netip.AddrFrom4([4]byte{base[0], base[1], byte(1 + i/250), byte(1 + i%250)})
		} else {
			// Small (/24) allocations keep their third octet.
			addr = netip.AddrFrom4([4]byte{base[0], base[1], base[2], byte(1 + i)})
		}
		p.MailIPs = append(p.MailIPs, addr)
		spec := &SMTPSpec{Hostname: p.MailHosts[i], Leaf: leaves[i]}
		w.Hosts[addr] = &Host{Addr: addr, ASN: hostASN, SMTP: spec}
		if w.Cfg.EnableIPv6 && c.Kind == companies.KindMailHosting {
			// Dual-stack twin: same server identity, IPv6 address.
			v6 := netip.AddrFrom16([16]byte{0xfd, 0x00, 0, byte(idx >> 8), byte(idx), 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, byte(1 + i)})
			p.MailIPv6s = append(p.MailIPv6s, v6)
			w.Hosts[v6] = &Host{Addr: v6, ASN: hostASN, SMTP: spec}
		}
	}
	if len(p.MailIPv6s) > 0 {
		v6Prefix := netip.PrefixFrom(netip.AddrFrom16([16]byte{0xfd, 0x00, 0, byte(idx >> 8), byte(idx)}), 40)
		if err := w.Prefixes.Insert(v6Prefix, p.ASN); err != nil {
			return err
		}
	}

	// Companies renting out cloud space run SMTP-less web frontends that
	// some customers point MX records at ("ghs.<provider>" style).
	if p.CloudPrefix.IsValid() {
		cbase := p.CloudPrefix.Addr().As4()
		for i := 0; i < 2; i++ {
			addr := netip.AddrFrom4([4]byte{cbase[0], cbase[1], 5, byte(1 + i)})
			p.WebFrontIPs = append(p.WebFrontIPs, addr)
			w.Hosts[addr] = &Host{Addr: addr, ASN: p.ASN, SMTP: nil}
		}
	}

	// Web hosts additionally run shared-hosting mail servers, reached by
	// customer-named MX records. Roughly half present valid certificates;
	// the rest have no STARTTLS — driving the paper's Table 4 cert-
	// availability rates.
	if c.Kind == companies.KindWebHosting {
		shared := 8
		sharedCert, err := w.CA.Issue(certs.LeafSpec{
			CommonName: "*.shared." + p.ID,
			DNSNames:   []string{"*.shared." + p.ID, "shared." + p.ID},
			Org:        c.Name,
		}, w.rng)
		if err != nil {
			return err
		}
		censys := CensysAlways
		if c.Name == "EIG" {
			// The paper reports Censys only intermittently scanned EIG.
			censys = CensysIntermittent
		}
		// Shared-hosting servers always sit in the company's own space,
		// even when its filtering fleet is hosted elsewhere.
		sharedBase := mailPrefix.Addr().As4()
		for i := 0; i < shared; i++ {
			addr := netip.AddrFrom4([4]byte{sharedBase[0], sharedBase[1], 10, byte(1 + i)})
			p.SharedIPs = append(p.SharedIPs, addr)
			spec := &SMTPSpec{Hostname: fmt.Sprintf("shared%02d.shared.%s", i+1, p.ID)}
			if i%2 == 0 {
				spec.Leaf = sharedCert
			}
			if i == 2 {
				// One shared server per web host is poorly configured:
				// valid certificate, but a useless banner — feeding the
				// "No Valid Banner/EHLO" row of Table 4.
				spec.Banner = "localhost ESMTP ready"
				spec.EHLOName = "localhost"
			}
			w.Hosts[addr] = &Host{Addr: addr, ASN: p.ASN, SMTP: spec, CensysMode: censys}
		}
	}

	w.Providers = append(w.Providers, p)
	for _, id := range c.ProviderIDs {
		w.providerByID[id] = p
	}
	return nil
}

// issueFleetCerts creates the certificates a provider's mail servers
// present, one entry per server in MailHosts order.
//
// Most providers share one certificate across the fleet. Large mail
// hosts mirror the real Google/googlemail.com situation: the fleet spans
// two registered domains covered by three certificates whose SAN lists
// overlap pairwise — exactly the configuration step 1's FQDN-overlap
// grouping exists to consolidate (and the NoCertGrouping ablation
// fragments).
func (w *World) issueFleetCerts(p *Provider, c *companies.Company) ([]*certs.Leaf, error) {
	fleet := len(p.MailHosts)
	if c.Kind == companies.KindMailHosting && fleet >= 6 {
		alt := strings.SplitN(p.ID, ".", 2)[0] + "-mailinfra.net"
		certA, err := w.CA.Issue(certs.LeafSpec{
			CommonName: "mx." + p.ID,
			DNSNames: []string{"mx." + p.ID,
				p.MailHosts[0], p.MailHosts[1], p.MailHosts[2]},
			Org: c.Name,
		}, w.rng)
		if err != nil {
			return nil, err
		}
		// The bridge certificate carries names from both domains.
		certC, err := w.CA.Issue(certs.LeafSpec{
			CommonName: "mx." + p.ID,
			DNSNames:   []string{"mx." + p.ID, p.MailHosts[3], "mx." + alt},
			Org:        c.Name,
		}, w.rng)
		if err != nil {
			return nil, err
		}
		certB, err := w.CA.Issue(certs.LeafSpec{
			CommonName: "mx." + alt,
			DNSNames:   []string{"mx." + alt, "mx5." + alt, "mx6." + alt},
			Org:        c.Name,
		}, w.rng)
		if err != nil {
			return nil, err
		}
		out := make([]*certs.Leaf, fleet)
		for i := range out {
			switch {
			case i < 3:
				out[i] = certA
			case i == 3:
				out[i] = certC
			default:
				out[i] = certB
			}
		}
		return out, nil
	}
	sans := []string{"mx." + p.ID}
	sans = append(sans, p.MailHosts...)
	leaf, err := w.CA.Issue(certs.LeafSpec{
		CommonName: "mx." + p.ID,
		DNSNames:   sans,
		Org:        c.Name,
	}, w.rng)
	if err != nil {
		return nil, err
	}
	out := make([]*certs.Leaf, fleet)
	for i := range out {
		out[i] = leaf
	}
	return out, nil
}

// fleetPlan sizes a provider's mail fleet and names its hosts.
func fleetPlan(c *companies.Company) (n int, pattern string) {
	switch c.Kind {
	case companies.KindMailHosting:
		return 6, "mx%d"
	case companies.KindEmailSecurity:
		return 4, "mx0%d"
	case companies.KindWebHosting:
		return 4, "mailstore%d"
	case companies.KindGovAgency:
		return 2, "mailgw%d"
	default:
		return 2, "mx%d"
	}
}

// cloudAddr allocates the next address from the provider's cloud prefix.
func (p *Provider) cloudAddr() (netip.Addr, error) {
	if !p.CloudPrefix.IsValid() {
		return netip.Addr{}, fmt.Errorf("world: provider %s has no cloud prefix", p.ID)
	}
	p.cloudNext++
	n := p.cloudNext
	if n >= 230*250 {
		return netip.Addr{}, fmt.Errorf("world: cloud prefix of %s exhausted", p.ID)
	}
	base := p.CloudPrefix.Addr().As4()
	return netip.AddrFrom4([4]byte{base[0], base[1], byte(20 + n/250), byte(1 + n%250)}), nil
}

// Word fragments for synthetic names; ASCII, host-legal.
var nameSyllables = []string{
	"al", "bar", "cor", "del", "eta", "for", "gal", "hel", "ion", "jur",
	"kap", "lun", "mar", "nor", "oro", "pal", "qui", "ros", "sol", "tor",
	"ula", "ver", "wes", "xan", "yor", "zen",
}

func lowerWord(rng *rand.Rand) string {
	n := 2 + rng.IntN(2)
	s := ""
	for i := 0; i < n; i++ {
		s += nameSyllables[rng.IntN(len(nameSyllables))]
	}
	return s
}

func titleWord(rng *rand.Rand) string {
	s := lowerWord(rng)
	return string(s[0]-'a'+'A') + s[1:]
}

// tailCountry picks a home country for a tail provider.
func tailCountry(rng *rand.Rand) string {
	countries := []string{"US", "DE", "FR", "GB", "NL", "RU", "JP", "BR", "CA", "IN"}
	return countries[rng.IntN(len(countries))]
}
