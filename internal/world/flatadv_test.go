package world

import (
	"context"
	"errors"
	"strings"
	"testing"

	"mxmap/internal/dns"
)

func flatAdvWorld(t *testing.T, n int, pct float64) *FlatWorld {
	t.Helper()
	fw, err := NewFlatWorld(FlatConfig{Seed: 7, NumDomains: n, AdversarialPercent: pct})
	if err != nil {
		t.Fatal(err)
	}
	return fw
}

func TestFlatAdversarialValidation(t *testing.T) {
	if _, err := NewFlatWorld(FlatConfig{Seed: 1, NumDomains: 10, AdversarialPercent: 51}); err == nil {
		t.Error("AdversarialPercent 51 accepted, want error")
	}
	if _, err := NewFlatWorld(FlatConfig{Seed: 1, NumDomains: 10, AdversarialPercent: -1}); err == nil {
		t.Error("negative AdversarialPercent accepted, want error")
	}
}

// TestFlatAdversarialBand checks the band's share and family balance:
// a pure function of the index, every family populated, the hostile
// fraction close to the configured percentage.
func TestFlatAdversarialBand(t *testing.T) {
	const n, pct = 50_000, 12.0
	fw := flatAdvWorld(t, n, pct)
	counts := make(map[ScenarioFamily]int)
	for i := 0; i < n; i++ {
		fam := fw.familyOf(i)
		if fam2 := fw.familyOf(i); fam2 != fam {
			t.Fatalf("familyOf(%d) unstable: %s then %s", i, fam, fam2)
		}
		counts[fam]++
	}
	hostile := n - counts[FamilyHonest]
	share := 100 * float64(hostile) / n
	if share < pct-1 || share > pct+1 {
		t.Errorf("hostile share %.2f%%, want about %.0f%%", share, pct)
	}
	for _, fam := range flatFamilies {
		got := counts[fam]
		want := hostile / len(flatFamilies)
		if got < want*8/10 || got > want*12/10 {
			t.Errorf("family %s: %d domains, want about %d (equal slices)", fam, got, want)
		}
	}

	// Honest flat worlds never consult the band.
	honest := flatWorld(t, 1000)
	for i := 0; i < 1000; i++ {
		if fam := honest.familyOf(i); fam != FamilyHonest {
			t.Fatalf("honest flat world classed domain %d as %s", i, fam)
		}
	}
}

// TestFlatAbuseNames pins the look-alike naming: abuse members carry the
// bulk stem, their names round-trip through domainIndex, and the
// canonical d%09d.com spelling of an abuse index does NOT resolve (the
// name simply is the look-alike; there is no alias).
func TestFlatAbuseNames(t *testing.T) {
	fw := flatAdvWorld(t, 50_000, 12)
	checked := 0
	for i := 0; i < fw.NumDomains() && checked < 50; i++ {
		fam := fw.familyOf(i)
		name := fw.DomainName(i)
		if fam == FamilyAbuse {
			if !strings.HasPrefix(name, flatAbusePrefix) || !strings.HasSuffix(name, flatAbuseSuffix) {
				t.Fatalf("abuse domain %d named %q, want %s*%s", i, name, flatAbusePrefix, flatAbuseSuffix)
			}
			checked++
		} else if strings.HasPrefix(name, flatAbusePrefix) {
			t.Fatalf("non-abuse domain %d carries the abuse name %q", i, name)
		}
		if got, ok := fw.domainIndex(name); !ok || got != i {
			t.Fatalf("domainIndex(%q) = %d, %v; want %d", name, got, ok, i)
		}
	}
	if checked == 0 {
		t.Fatal("no abuse domains in the first 50k indices")
	}
}

// TestFlatAdversarialResolver exercises each hostile family through the
// flat resolver: typed lame failures, dangling NXDOMAIN targets,
// parked sinkholes in the feed, hijack glue with stale provenance, and
// BLBFO topologies ending in the backup relay.
func TestFlatAdversarialResolver(t *testing.T) {
	fw := flatAdvWorld(t, 50_000, 12)
	r := fw.Resolver()
	ctx := context.Background()

	// One representative index per family.
	rep := make(map[ScenarioFamily]int)
	for i := 0; i < fw.NumDomains() && len(rep) < len(flatFamilies); i++ {
		fam := fw.familyOf(i)
		if fam != FamilyHonest {
			if _, ok := rep[fam]; !ok {
				rep[fam] = i
			}
		}
	}
	if len(rep) != len(flatFamilies) {
		t.Fatalf("only %d families found in 50k domains", len(rep))
	}

	if _, err := r.LookupMX(ctx, fw.DomainName(rep[FamilyLame])); !errors.Is(err, dns.ErrLame) {
		t.Errorf("lame flat domain: %v, want ErrLame", err)
	}

	mxs, err := r.LookupMX(ctx, fw.DomainName(rep[FamilyDanglingNX]))
	if err != nil || len(mxs) != 1 {
		t.Fatalf("dangling-nx MX: %v, %v", mxs, err)
	}
	if _, err := r.LookupA(ctx, mxs[0].Exchange); !errors.Is(err, dns.ErrNXDomain) {
		t.Errorf("dangling target %s: %v, want NXDOMAIN", mxs[0].Exchange, err)
	}

	mxs, err = r.LookupMX(ctx, fw.DomainName(rep[FamilyDanglingParked]))
	if err != nil || len(mxs) != 1 {
		t.Fatalf("dangling-parked MX: %v, %v", mxs, err)
	}
	addrs, err := r.LookupA(ctx, mxs[0].Exchange)
	if err != nil || len(addrs) == 0 {
		t.Fatalf("parked target %s: %v, %v", mxs[0].Exchange, addrs, err)
	}
	for _, a := range addrs {
		if !fw.Parked(a) {
			t.Errorf("parked target address %v missing from the parking feed", a)
		}
	}

	// Hijack: glue resolves, provenance exposes the stale delegation and
	// the lapsed relay zone.
	hijacked := fw.DomainName(rep[FamilyHijack])
	mxs, err = r.LookupMX(ctx, hijacked)
	if err != nil || len(mxs) != 2 {
		t.Fatalf("hijack MX: %v, %v", mxs, err)
	}
	if addrs, err := r.LookupA(ctx, mxs[0].Exchange); err != nil || len(addrs) == 0 {
		t.Fatalf("hijack relay %s: %v, %v", mxs[0].Exchange, addrs, err)
	}
	pc, ok := r.(dns.ProvenanceChecker)
	if !ok {
		t.Fatal("flat resolver does not implement dns.ProvenanceChecker")
	}
	if !pc.DelegationStale(ctx, hijacked) {
		t.Errorf("hijacked %s: DelegationStale = false, want true", hijacked)
	}
	if !pc.ZoneGone(ctx, mxs[0].Exchange) {
		t.Errorf("relay %s: ZoneGone = false, want true", mxs[0].Exchange)
	}
	if pc.DelegationStale(ctx, fw.DomainName(0)) {
		t.Error("honest flat domain reported a stale delegation")
	}

	// BLBFO: well-formed topology whose lowest-priority tier (or all
	// tiers) lands on the backup relay.
	mxs, err = r.LookupMX(ctx, fw.DomainName(rep[FamilyBLBFO]))
	if err != nil || len(mxs) < 2 {
		t.Fatalf("blbfo MX: %v, %v", mxs, err)
	}
	backup := false
	for _, mx := range mxs {
		if strings.HasSuffix(mx.Exchange, flatBackupZone) {
			backup = true
		}
	}
	if !backup {
		t.Errorf("blbfo topology %v lacks the backup relay", mxs)
	}
}

// TestFlatOracleAt checks the per-index oracle against each family's
// contract — the flat counterpart of TestOracleFamilies.
func TestFlatOracleAt(t *testing.T) {
	fw := flatAdvWorld(t, 50_000, 12)
	for i := 0; i < 20_000; i++ {
		e := fw.OracleAt(i)
		if e.Domain != fw.DomainName(i) || e.Family != fw.familyOf(i) {
			t.Fatalf("oracle %d inconsistent with the world: %+v", i, e)
		}
		switch e.Family {
		case FamilyHijack:
			if !e.ExpectFlagged || e.Forged == "" || e.Truth == e.Forged {
				t.Fatalf("hijack oracle %d: %+v", i, e)
			}
		case FamilyDanglingNX, FamilyDanglingParked:
			if !e.ExpectFlagged || e.Truth != "" {
				t.Fatalf("dangling oracle %d: %+v", i, e)
			}
		case FamilyAbuse:
			if !e.ExpectFlagged || e.Truth != flatBulkCompany {
				t.Fatalf("abuse oracle %d: %+v", i, e)
			}
		case FamilyBLBFO:
			if e.ExpectFlagged || e.Truth == "" || e.Detail != fw.blbfoTopology(i) {
				t.Fatalf("blbfo oracle %d: %+v", i, e)
			}
			if e.Detail == TopologyBackupOnly && e.Truth != flatBackupCompany {
				t.Fatalf("backup-only oracle %d credits %q, want %q", i, e.Truth, flatBackupCompany)
			}
		case FamilyHonest:
			if e.ExpectFlagged || e.Forged != "" || e.Detail != "" {
				t.Fatalf("honest oracle %d carries adversarial fields: %+v", i, e)
			}
		}
	}
}
