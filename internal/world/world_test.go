package world

import (
	"context"
	"net/netip"
	"strings"
	"testing"

	"mxmap/internal/companies"

	"mxmap/internal/dns"
	"mxmap/internal/netsim"
	"mxmap/internal/smtp"
)

// testWorld generates a small world once per test binary.
var testWorldCache *World

func testWorld(t *testing.T) *World {
	t.Helper()
	if testWorldCache == nil {
		w, err := Generate(Config{Seed: 42, Scale: 0.01, TailProviders: 30, SelfISPs: 8})
		if err != nil {
			t.Fatal(err)
		}
		testWorldCache = w
	}
	return testWorldCache
}

func TestGenerateCorpusSizes(t *testing.T) {
	w := testWorld(t)
	if got := len(w.Corpus(CorpusAlexa).Domains); got != 935 {
		t.Errorf("alexa size = %d, want 935", got)
	}
	if got := len(w.Corpus(CorpusCOM).Domains); got != 5805 {
		t.Errorf("com size = %d, want 5805", got)
	}
	if got := len(w.Corpus(CorpusGOV).Domains); got != 800 {
		t.Errorf("gov size = %d (min clamp), want 800", got)
	}
	if len(w.Corpus(CorpusGOV).Dates) != 7 || len(w.Corpus(CorpusAlexa).Dates) != 9 {
		t.Error("snapshot date counts wrong")
	}
}

func TestStintsCoverAllSnapshots(t *testing.T) {
	w := testWorld(t)
	for _, c := range w.Corpora {
		for _, d := range c.Domains {
			if len(d.Stints) == 0 {
				t.Fatalf("%s: no stints", d.Name)
			}
			if d.Stints[0].From != 0 {
				t.Fatalf("%s: first stint starts at %d", d.Name, d.Stints[0].From)
			}
			for i := 1; i < len(d.Stints); i++ {
				if d.Stints[i].From != d.Stints[i-1].To+1 {
					t.Fatalf("%s: stint gap between %d and %d", d.Name, i-1, i)
				}
			}
			if last := d.Stints[len(d.Stints)-1]; last.To != len(c.Dates)-1 {
				t.Fatalf("%s: last stint ends at %d, want %d", d.Name, last.To, len(c.Dates)-1)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	w1, err := Generate(Config{Seed: 7, Scale: 0.002, TailProviders: 10, SelfISPs: 4})
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Generate(Config{Seed: 7, Scale: 0.002, TailProviders: 10, SelfISPs: 4})
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := w1.Corpus(CorpusAlexa), w2.Corpus(CorpusAlexa)
	if len(c1.Domains) != len(c2.Domains) {
		t.Fatal("sizes differ")
	}
	for i := range c1.Domains {
		d1, d2 := c1.Domains[i], c2.Domains[i]
		if d1.Name != d2.Name || len(d1.Stints) != len(d2.Stints) {
			t.Fatalf("domain %d differs: %s vs %s", i, d1.Name, d2.Name)
		}
		for j := range d1.Stints {
			if d1.Stints[j] != d2.Stints[j] {
				t.Fatalf("%s stint %d differs: %+v vs %+v", d1.Name, j, d1.Stints[j], d2.Stints[j])
			}
		}
	}
}

// shareOfCompany measures the ground-truth share of a company at a
// snapshot (fraction of corpus domains assigned to it).
func shareOfCompany(w *World, corpus, company string, dateIdx int) float64 {
	c := w.Corpus(corpus)
	n := 0
	for _, d := range c.Domains {
		st := d.StintAt(dateIdx)
		if st == nil || st.Provider < 0 {
			continue
		}
		if w.Providers[st.Provider].Company.Name == company {
			n++
		}
	}
	return 100 * float64(n) / float64(len(c.Domains))
}

func selfHostedShare(w *World, corpus string, dateIdx int) float64 {
	c := w.Corpus(corpus)
	n := 0
	for _, d := range c.Domains {
		if st := d.StintAt(dateIdx); st != nil && st.Provider < 0 {
			n++
		}
	}
	return 100 * float64(n) / float64(len(c.Domains))
}

func TestMarketSharesTrackAnchors(t *testing.T) {
	w := testWorld(t)
	last := len(AllDates) - 1
	cases := []struct {
		corpus, company string
		dateIdx         int
		want, tol       float64
	}{
		{CorpusAlexa, "Google", last, 28.5, 6},
		{CorpusAlexa, "Microsoft", last, 10.8, 4},
		{CorpusCOM, "GoDaddy", last, 29.0, 4},
		{CorpusCOM, "Google", last, 9.4, 3},
		{CorpusGOV, "Microsoft", 6, 32.1, 8},
	}
	for _, c := range cases {
		got := shareOfCompany(w, c.corpus, c.company, c.dateIdx)
		if got < c.want-c.tol || got > c.want+c.tol {
			t.Errorf("%s/%s share = %.1f%%, want %.1f±%.1f", c.corpus, c.company, got, c.want, c.tol)
		}
	}
}

func TestTrendsHavePaperDirection(t *testing.T) {
	w := testWorld(t)
	last := len(AllDates) - 1
	// Google and Microsoft grow; self-hosting declines (Figure 6a).
	for _, company := range []string{"Google", "Microsoft"} {
		start := shareOfCompany(w, CorpusAlexa, company, 0)
		end := shareOfCompany(w, CorpusAlexa, company, last)
		if end <= start {
			t.Errorf("%s share did not grow: %.1f -> %.1f", company, start, end)
		}
	}
	if start, end := selfHostedShare(w, CorpusAlexa, 0), selfHostedShare(w, CorpusAlexa, last); end >= start {
		t.Errorf("self-hosted share did not decline: %.1f -> %.1f", start, end)
	}
}

func TestNationalPreferences(t *testing.T) {
	w := testWorld(t)
	c := w.Corpus(CorpusAlexa)
	last := len(AllDates) - 1
	counts := map[string]map[string]int{}
	totals := map[string]int{}
	for _, d := range c.Domains {
		if d.Country == "" {
			continue
		}
		totals[d.Country]++
		st := d.StintAt(last)
		if st == nil || st.Provider < 0 {
			continue
		}
		name := w.Providers[st.Provider].Company.Name
		if counts[d.Country] == nil {
			counts[d.Country] = map[string]int{}
		}
		counts[d.Country][name]++
	}
	// Yandex dominates .ru, Tencent .cn; neither crosses over.
	if totals["RU"] > 20 {
		if counts["RU"]["Yandex"] <= counts["RU"]["Tencent"] {
			t.Errorf("RU: Yandex=%d Tencent=%d", counts["RU"]["Yandex"], counts["RU"]["Tencent"])
		}
		if counts["RU"]["Yandex"] == 0 {
			t.Error("RU has no Yandex domains")
		}
	}
	if totals["CN"] > 20 {
		if counts["CN"]["Tencent"] <= counts["CN"]["Yandex"] {
			t.Errorf("CN: Tencent=%d Yandex=%d", counts["CN"]["Tencent"], counts["CN"]["Yandex"])
		}
	}
	// US providers are in wide use in Brazil (the paper's 65% headline).
	if totals["BR"] > 20 {
		us := counts["BR"]["Google"] + counts["BR"]["Microsoft"]
		if 100*us/totals["BR"] < 30 {
			t.Errorf("BR Google+Microsoft share = %d%%, want substantial", 100*us/totals["BR"])
		}
	}
}

func TestTruthCompany(t *testing.T) {
	w := testWorld(t)
	sawSelf, sawProvider, sawNone := false, false, false
	for _, d := range w.Corpus(CorpusAlexa).Domains {
		st := d.StintAt(0)
		truth := w.TruthCompany(d, 0)
		switch {
		case st.Mode == ModeNoSMTP || st.Mode == ModeNoMXIP:
			if truth != "" {
				t.Errorf("%s mode %s truth = %q, want empty", d.Name, st.Mode, truth)
			}
			sawNone = true
		case st.Mode.SelfHosted():
			if truth != d.Name {
				t.Errorf("%s mode %s truth = %q, want domain itself", d.Name, st.Mode, truth)
			}
			sawSelf = true
		default:
			if truth == "" || truth == d.Name {
				t.Errorf("%s mode %s truth = %q", d.Name, st.Mode, truth)
			}
			sawProvider = true
		}
	}
	if !sawSelf || !sawProvider || !sawNone {
		t.Errorf("corpus lacks mode variety: self=%v provider=%v none=%v", sawSelf, sawProvider, sawNone)
	}
}

func TestMXRecordsWellFormed(t *testing.T) {
	w := testWorld(t)
	for _, c := range w.Corpora {
		for _, d := range c.Domains {
			for si := range d.Stints {
				st := &d.Stints[si]
				recs := w.MXRecords(d, st)
				if len(recs) == 0 {
					t.Fatalf("%s stint %d (%s): no MX records", d.Name, si, st.Mode)
				}
				for _, r := range recs {
					if r.Host == "" {
						t.Fatalf("%s: empty MX host", d.Name)
					}
					if st.Mode == ModeNoMXIP {
						if len(r.Addrs) != 0 {
							t.Fatalf("%s: no-mx-ip stint has addresses", d.Name)
						}
						continue
					}
					if len(r.Addrs) == 0 {
						t.Fatalf("%s (%s): MX %s has no addresses", d.Name, st.Mode, r.Host)
					}
					for _, a := range r.Addrs {
						if _, ok := w.Host(a); !ok {
							t.Fatalf("%s: MX address %s has no host entry", d.Name, a)
						}
					}
				}
			}
		}
	}
}

func TestMXRecordsDeterministic(t *testing.T) {
	w := testWorld(t)
	d := w.Corpus(CorpusAlexa).Domains[0]
	st := &d.Stints[0]
	r1 := w.MXRecords(d, st)
	r2 := w.MXRecords(d, st)
	if len(r1) != len(r2) {
		t.Fatal("MXRecords not deterministic")
	}
	for i := range r1 {
		if r1[i].Host != r2[i].Host || r1[i].Pref != r2[i].Pref {
			t.Fatal("MXRecords not deterministic")
		}
	}
}

func TestHostsHaveRoutableASNs(t *testing.T) {
	w := testWorld(t)
	missing := 0
	for addr, h := range w.Hosts {
		got, ok := w.Prefixes.Lookup(addr)
		if !ok {
			missing++
			continue
		}
		if got != h.ASN {
			t.Errorf("host %s: prefix table says %v, host says %v", addr, got, h.ASN)
		}
	}
	if missing > 0 {
		t.Errorf("%d hosts lack prefix coverage", missing)
	}
}

func TestCatalogResolution(t *testing.T) {
	w := testWorld(t)
	c := w.Corpus(CorpusAlexa)
	cat, err := w.CatalogAt(c.Dates[0])
	if err != nil {
		t.Fatal(err)
	}
	resolver := dns.CatalogResolver{Catalog: cat}
	ctx := context.Background()
	checked := 0
	for _, d := range c.Domains {
		st := d.StintAt(0)
		recs := w.MXRecords(d, st)
		mx, err := resolver.LookupMX(ctx, d.Name)
		if err != nil {
			t.Fatalf("%s (%s): LookupMX: %v", d.Name, st.Mode, err)
		}
		if len(mx) != len(recs) {
			t.Fatalf("%s: %d MX from DNS, %d generated", d.Name, len(mx), len(recs))
		}
		// Resolve each exchange and compare with the generated addresses.
		for _, rec := range recs {
			addrs, err := resolver.LookupA(ctx, rec.Host)
			if st.Mode == ModeNoMXIP {
				if err == nil {
					t.Fatalf("%s: no-mx-ip exchange resolved", d.Name)
				}
				continue
			}
			if err != nil {
				t.Fatalf("%s: LookupA(%s): %v", d.Name, rec.Host, err)
			}
			if len(addrs) != len(rec.Addrs) {
				t.Fatalf("%s: %s resolves to %d addrs, want %d", d.Name, rec.Host, len(addrs), len(rec.Addrs))
			}
		}
		checked++
		if checked >= 200 {
			break
		}
	}
}

func TestStartSMTPAndScan(t *testing.T) {
	w, err := Generate(Config{Seed: 3, Scale: 0.001, TailProviders: 10, SelfISPs: 4})
	if err != nil {
		t.Fatal(err)
	}
	n := netsim.New()
	fleet, err := w.StartSMTP(n)
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	if fleet.NumServers() == 0 {
		t.Fatal("no SMTP servers started")
	}
	// Scan one provider mail server end to end.
	google, ok := w.ProviderByID("google.com")
	if !ok || len(google.MailIPs) == 0 {
		t.Fatal("google provider missing")
	}
	addr := google.MailIPs[0]
	res := smtp.Scan(context.Background(), netip.AddrPortFrom(addr, 25).String(), smtp.ScanConfig{Dialer: n})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.TLSHandshakeOK || len(res.PeerCertificates) == 0 {
		t.Fatalf("google scan: %+v", res)
	}
	if res.PeerCertificates[0].Subject.CommonName != "mx.google.com" {
		t.Errorf("google cert CN = %q", res.PeerCertificates[0].Subject.CommonName)
	}
}

func TestSelfHostedInfraPersonalities(t *testing.T) {
	w := testWorld(t)
	modes := map[Mode]bool{}
	for _, c := range w.Corpora {
		for _, d := range c.Domains {
			for si := range d.Stints {
				st := &d.Stints[si]
				if !st.Mode.SelfHosted() && st.Mode != ModeNoSMTP {
					continue
				}
				modes[st.Mode] = true
				switch st.Mode {
				case ModeVPS:
					h, ok := w.Host(d.VPSIP)
					if !ok || h.SMTP == nil || h.SMTP.Leaf == nil {
						t.Fatalf("%s: VPS host malformed", d.Name)
					}
				case ModeSelfJunk:
					h, _ := w.Host(d.OwnIP)
					if h.SMTP.Banner == "" || h.SMTP.Leaf != nil {
						t.Fatalf("%s: junk host should have junk banner, no TLS", d.Name)
					}
				case ModeFalseClaim:
					h, _ := w.Host(d.OwnIP)
					if h.SMTP.EHLOName != "mx.google.com" {
						t.Fatalf("%s: false-claim EHLO = %q", d.Name, h.SMTP.EHLOName)
					}
				case ModeNoSMTP:
					for _, rec := range w.MXRecords(d, st) {
						for _, a := range rec.Addrs {
							h, ok := w.Host(a)
							if !ok || h.SMTP != nil {
								t.Fatalf("%s: no-smtp target %s should have closed port", d.Name, a)
							}
						}
					}
				}
			}
		}
	}
	for _, m := range []Mode{ModeVPS, ModeSelfGood, ModeSelfSigned, ModeSelfJunk, ModeNoSMTP} {
		if !modes[m] {
			t.Errorf("world exercises no %s domains", m)
		}
	}
}

func TestModeString(t *testing.T) {
	if ModeVPS.String() != "vps" || Mode(99).String() == "" {
		t.Error("mode names broken")
	}
	if !ModeVPS.SelfHosted() || ModeExplicit.SelfHosted() {
		t.Error("SelfHosted classification broken")
	}
}

func BenchmarkGenerateSmallWorld(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Generate(Config{Seed: uint64(i + 1), Scale: 0.002, TailProviders: 10, SelfISPs: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSPFRecordsWellFormed(t *testing.T) {
	w := testWorld(t)
	withSPF, total := 0, 0
	for _, c := range w.Corpora {
		for _, d := range c.Domains {
			st := d.StintAt(0)
			total++
			rec := w.SPFRecord(d, st)
			if rec == "" {
				continue
			}
			withSPF++
			if !strings.HasPrefix(rec, "v=spf1 ") {
				t.Fatalf("%s: malformed SPF %q", d.Name, rec)
			}
			if st.Mode == ModeNoSMTP || st.Mode == ModeNoMXIP {
				t.Fatalf("%s: SPF generated for mode %s", d.Name, st.Mode)
			}
		}
	}
	if ratio := float64(withSPF) / float64(total); ratio < 0.5 || ratio > 0.95 {
		t.Errorf("SPF coverage = %.2f, outside calibration", ratio)
	}
}

func TestTruthMailboxConsistency(t *testing.T) {
	w := testWorld(t)
	sawFiltered := false
	for _, d := range w.Corpus(CorpusAlexa).Domains {
		st := d.StintAt(0)
		mailbox := w.TruthMailbox(d, 0)
		mx := w.TruthCompany(d, 0)
		switch {
		case mx == "":
			if mailbox != "" {
				t.Fatalf("%s: mailbox %q with no mail service", d.Name, mailbox)
			}
		case st.Provider >= 0 && w.Providers[st.Provider].Company.Kind == companies.KindEmailSecurity:
			// Behind a filter the mailbox is a mail host or the domain.
			if mailbox == mx {
				t.Fatalf("%s: filtered domain's mailbox equals the filter", d.Name)
			}
			if mailbox != d.Name {
				sawFiltered = true
				if mailbox != "Google" && mailbox != "Microsoft" {
					t.Fatalf("%s: unexpected mailbox %q", d.Name, mailbox)
				}
				// The SPF record must reveal it.
				if rec := w.SPFRecord(d, st); rec != "" && !strings.Contains(rec, "include:_spf.") {
					t.Fatalf("%s: filtered SPF lacks includes: %q", d.Name, rec)
				}
			}
		default:
			if mailbox != mx {
				t.Fatalf("%s: mailbox %q != provider %q for non-filtered domain", d.Name, mailbox, mx)
			}
		}
	}
	if !sawFiltered {
		t.Error("no filtered-with-mailbox domains in corpus")
	}
}

func TestGovAgencyProvidersServeOnlyFederal(t *testing.T) {
	w := testWorld(t)
	c := w.Corpus(CorpusGOV)
	for _, d := range c.Domains {
		for si := range d.Stints {
			st := &d.Stints[si]
			if st.Provider < 0 {
				continue
			}
			p := w.Providers[st.Provider]
			if p.Company.Kind == companies.KindGovAgency && !d.Federal {
				t.Fatalf("%s: non-federal domain assigned to %s", d.Name, p.Company.Name)
			}
		}
	}
	// And agency providers never appear outside .gov.
	for _, corpus := range []string{CorpusAlexa, CorpusCOM} {
		for _, d := range w.Corpus(corpus).Domains {
			for si := range d.Stints {
				st := &d.Stints[si]
				if st.Provider >= 0 && w.Providers[st.Provider].Company.Kind == companies.KindGovAgency {
					t.Fatalf("%s (%s): assigned to gov agency", d.Name, corpus)
				}
			}
		}
	}
}
