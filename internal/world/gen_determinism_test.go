package world

import "testing"

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Seed: 21, Scale: 0.003, TailProviders: 20, SelfISPs: 6}
	w1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(w1.Providers) != len(w2.Providers) {
		t.Fatalf("provider count %d vs %d", len(w1.Providers), len(w2.Providers))
	}
	for i := range w1.Providers {
		if w1.Providers[i].ID != w2.Providers[i].ID {
			t.Errorf("provider %d: %q vs %q", i, w1.Providers[i].ID, w2.Providers[i].ID)
			if i > 25 {
				break
			}
		}
	}
}
