package world

// This file holds the calibration data: market-share anchors per corpus
// taken from the paper's published figures and tables (Figure 6 trends,
// Table 6 absolute shares, Figure 8 national preferences). The generator
// interpolates linearly between the first- and last-snapshot anchors, so
// reproduced longitudinal plots show the paper's direction and rough
// magnitude of change.

// shareAnchor fixes one company's market share (percent of corpus
// domains) at the corpus's first and last snapshot.
type shareAnchor struct {
	company string
	start   float64
	end     float64
}

// selfHostedKey is the pseudo-company representing in-house mail service.
const selfHostedKey = "Self-Hosted"

// alexaAnchors: Figure 6a/6b/6c plus Table 6 (Alexa column).
var alexaAnchors = []shareAnchor{
	{"Google", 26.2, 28.5},
	{"Microsoft", 7.9, 10.8},
	{"Yandex", 3.6, 4.5},
	{"ProofPoint", 1.9, 3.0},
	{"Mimecast", 1.0, 2.1},
	{"GoDaddy", 1.9, 1.5},
	{"Zoho", 0.7, 1.3},
	{"Tencent", 0.7, 0.9},
	{"Cisco Ironport", 0.7, 0.8},
	{"Rackspace", 0.9, 0.8},
	{"Barracuda", 0.5, 0.6},
	{"Mail.Ru", 0.5, 0.6},
	{"Beget", 0.3, 0.4},
	{"MessageLabs", 0.55, 0.4},
	{"OVH", 0.4, 0.4},
	{"UnitedInternet", 0.5, 0.4},
	{"NameCheap", 0.15, 0.3},
	{"AppRiver", 0.25, 0.2},
	{"Ukraine.ua", 0.2, 0.2},
	{"SiteGround", 0.1, 0.2},
	{selfHostedKey, 11.2, 7.5},
}

// comAnchors: Figure 6d/6e/6f plus Table 6 (.com column). Self-hosting is
// rare among random .com domains (1,836 of 580,537 in 2021).
var comAnchors = []shareAnchor{
	{"GoDaddy", 32.5, 29.0},
	{"Google", 8.1, 9.4},
	{"Microsoft", 3.6, 5.8},
	{"UnitedInternet", 5.5, 4.6},
	{"EIG", 1.7, 1.5},
	{"OVH", 1.3, 1.3},
	{"NameCheap", 0.7, 1.1},
	{"Tucows", 1.1, 1.0},
	{"Strato", 1.0, 0.9},
	{"Rackspace", 0.9, 0.8},
	{"Web.com Group", 0.8, 0.7},
	{"Aruba", 0.75, 0.7},
	{"Yahoo", 0.7, 0.6},
	{"SiteGround", 0.3, 0.6},
	{"Tencent", 0.4, 0.6},
	{"Yandex", 0.3, 0.4},
	{"Ukraine.ua", 0.3, 0.3},
	{"ProofPoint", 0.10, 0.25},
	{"Mimecast", 0.05, 0.15},
	{"Barracuda", 0.10, 0.15},
	{"Cisco Ironport", 0.05, 0.10},
	{"AppRiver", 0.05, 0.08},
	{"Zoho", 0.15, 0.25},
	{selfHostedKey, 0.25, 0.20},
}

// govAnchors: Figure 6g/6h/6i plus Table 6 (.gov column); anchors span
// 2018-06 to 2021-06.
var govAnchors = []shareAnchor{
	{"Microsoft", 25.0, 32.1},
	{"Google", 10.5, 9.6},
	{"Barracuda", 6.5, 8.0},
	{"ProofPoint", 3.2, 4.4},
	{"Mimecast", 1.5, 2.5},
	{"AppRiver", 1.3, 1.7},
	{"Rackspace", 1.5, 1.4},
	{"Cisco Ironport", 1.2, 1.4},
	{"GoDaddy", 1.1, 0.9},
	{"Sophos", 0.6, 0.8},
	{"Solarwinds", 0.6, 0.8},
	{"IntermediaCloud", 0.6, 0.7},
	{"TrendMicro", 0.5, 0.6},
	{"hhs.gov", 0.6, 0.6},
	{"treasury.gov", 0.5, 0.5},
	{"OVH", 0.1, 0.1},
	{selfHostedKey, 13.0, 9.3},
}

func anchorsFor(corpus string) []shareAnchor {
	switch corpus {
	case CorpusAlexa:
		return alexaAnchors
	case CorpusCOM:
		return comAnchors
	case CorpusGOV:
		return govAnchors
	default:
		return nil
	}
}

// shareAt interpolates an anchor linearly across the corpus's snapshots.
func shareAt(a shareAnchor, dateIdx, nDates int) float64 {
	if nDates <= 1 {
		return a.end
	}
	t := float64(dateIdx) / float64(nDates-1)
	return a.start + (a.end-a.start)*t
}

// ccTLD describes one country-code TLD used in the Alexa corpus, its
// sampling weight within the corpus, and the national preference
// multipliers applied to the four providers Figure 8 tracks. A multiplier
// of 0 removes the provider for that country; 1 leaves the global share
// unchanged.
type ccTLD struct {
	tld     string
	country string
	weight  float64 // share of the Alexa corpus drawn from this ccTLD
	// multipliers for Google, Microsoft, Tencent, Yandex.
	google, microsoft, tencent, yandex float64
}

// ccTLDs models Figure 8: US providers enjoy broad international use;
// Yandex and Tencent serve almost exclusively their home markets.
var ccTLDs = []ccTLD{
	{"br", "BR", 0.040, 1.75, 1.40, 0, 0},
	{"ar", "AR", 0.010, 1.90, 1.20, 0, 0},
	{"uk", "GB", 0.040, 1.25, 2.20, 0, 0},
	{"fr", "FR", 0.030, 1.10, 1.40, 0, 0.05},
	{"de", "DE", 0.050, 0.90, 1.40, 0, 0.05},
	{"it", "IT", 0.030, 1.10, 1.10, 0, 0},
	{"es", "ES", 0.020, 1.30, 1.40, 0, 0},
	{"ro", "RO", 0.010, 1.30, 0.90, 0, 0.1},
	{"ca", "CA", 0.020, 1.40, 1.80, 0, 0},
	{"au", "AU", 0.020, 1.25, 2.30, 0, 0},
	{"ru", "RU", 0.100, 0.30, 0.28, 0, 8.0},
	{"cn", "CN", 0.020, 0.10, 0.30, 28.0, 0},
	{"jp", "JP", 0.040, 0.90, 1.10, 0, 0},
	{"in", "IN", 0.025, 1.60, 1.40, 0, 0},
	{"sg", "SG", 0.005, 1.40, 1.80, 0, 0},
}

// gTLDs are the generic TLDs used for the remainder of the Alexa corpus.
var gTLDs = []struct {
	tld    string
	weight float64
}{
	{"com", 0.70}, {"net", 0.12}, {"org", 0.12}, {"io", 0.04}, {"info", 0.02},
}
