package world

import (
	"context"
	"crypto/tls"
	"fmt"
	"math/rand/v2"
	"net"
	"net/netip"
	"strconv"
	"strings"
	"sync"
	"syscall"

	"mxmap/internal/asn"
	"mxmap/internal/certs"
	"mxmap/internal/companies"
	"mxmap/internal/dns"
	"mxmap/internal/smtp"
)

// FlatConfig parameterizes a FlatWorld.
type FlatConfig struct {
	// Seed drives all randomness (default 1).
	Seed uint64
	// NumDomains is the corpus size. Unlike Config.Scale there is no
	// cap: tens of millions of domains cost no more memory than ten.
	NumDomains int
	// Corpus selects the share table (default CorpusCOM, the corpus the
	// paper measures at half-million scale).
	Corpus string
	// TailProviders is the number of synthetic long-tail providers
	// splitting the residual market (default 40).
	TailProviders int
	// SelfHostedPercent overrides the corpus's calibrated self-hosting
	// share (percent; 0 keeps the calibrated value).
	SelfHostedPercent float64
	// AdversarialPercent turns this share of the corpus hostile, split
	// evenly across the six scenario families (percent; 0 disables and
	// keeps honest worlds exactly as before).
	AdversarialPercent float64
}

// noMXPercent is the flat world's share of domains with no MX record at
// all (the resolver answers NoData, the paper's "no mail service"
// case).
const noMXPercent = 2.0

// flatProvider is one mail company in a flat world: a couple of MX
// hosts, a handful of addresses, one certificate.
type flatProvider struct {
	company string
	id      string
	asn     asn.ASN
	// hosts are the MX exchange names; addrs[i] are host i's addresses.
	hosts []string
	addrs [][]netip.Addr
	// leaf is the STARTTLS certificate covering all hosts; nil means
	// banner-only servers.
	leaf *certs.Leaf
	// threshold is the cumulative assignment bound: a domain with
	// assignment draw u < threshold belongs to the first provider whose
	// threshold exceeds u.
	threshold float64
}

// FlatWorld is the million-domain counterpart of World: domains are a
// pure function of their index — name, provider assignment, addresses
// are all computed on demand — so corpus size costs no memory. The
// trade is depth for scale: one snapshot date, no stint timelines, no
// per-domain corner-case modes beyond self-hosting, provider shares
// taken from the paper's final-snapshot calibration.
//
// It plugs into the same measurement stack as World: Resolver answers
// MX/A/AAAA with dns semantics, Dialer serves a real SMTP conversation
// (banner, EHLO, STARTTLS with the provider's CA-signed certificate)
// over an in-process pipe for every dial.
type FlatWorld struct {
	Cfg FlatConfig
	// Trust validates the world's certificates.
	Trust *certs.TrustStore
	// Prefixes and ASRegistry map the world's address plan to ASNs.
	Prefixes   *asn.Table
	ASRegistry *asn.Registry
	// Directory maps provider IDs to companies for analysis.
	Directory *companies.Directory

	providers  []*flatProvider
	byID       map[string]*flatProvider
	byAddr     map[netip.Addr]*flatHost
	adv        *flatAdversary
	selfCut    float64 // assignment draws below this self-host
	advCut     float64 // ... below this are adversarial ...
	noMXCut    float64 // ... and below this have no MX at all
	digits     int
	namePrefix string
	nameSuffix string
}

// flatHost is the serving identity of one provider address.
type flatHost struct {
	hostname string
	leaf     *certs.Leaf
}

// NewFlatWorld builds the provider roster and address plan. Cost is
// O(providers), independent of NumDomains.
func NewFlatWorld(cfg FlatConfig) (*FlatWorld, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Corpus == "" {
		cfg.Corpus = CorpusCOM
	}
	if cfg.TailProviders == 0 {
		cfg.TailProviders = 40
	}
	if cfg.NumDomains <= 0 {
		return nil, fmt.Errorf("world: flat world needs a domain count")
	}
	anchors := anchorsFor(cfg.Corpus)
	if anchors == nil {
		return nil, fmt.Errorf("world: unknown corpus %q", cfg.Corpus)
	}
	fw := &FlatWorld{
		Cfg:        cfg,
		Prefixes:   asn.NewTable(),
		ASRegistry: asn.NewRegistry(),
		Directory:  companies.Curated(),
		byID:       make(map[string]*flatProvider),
		byAddr:     make(map[netip.Addr]*flatHost),
		// Each domain is its own registered domain ("d000000042.com"),
		// so self-hosting attribution (provider ID == registered domain)
		// works exactly as in the full world.
		namePrefix: "d",
		nameSuffix: ".com",
		digits:     9,
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x666c6174)) // "flat"
	ca, err := certs.NewCA("Flat World Root CA", rng)
	if err != nil {
		return nil, err
	}
	fw.Trust = certs.NewTrustStore(ca)

	byName := make(map[string]*companies.Company)
	for _, c := range fw.Directory.Companies() {
		byName[c.Name] = c
	}

	advPct := cfg.AdversarialPercent
	if advPct < 0 || advPct > 50 {
		return nil, fmt.Errorf("world: adversarial share %.1f%% outside [0, 50]", advPct)
	}
	selfPct := cfg.SelfHostedPercent
	// The adversarial band sits between the no-MX cut and the
	// self-hosting band; everything above shifts up by its share.
	cum := noMXPercent + advPct
	fw.noMXCut = noMXPercent / 100
	fw.advCut = cum / 100
	for _, a := range anchors {
		if a.company == selfHostedKey {
			if selfPct == 0 {
				selfPct = a.end
			}
			continue
		}
		c, ok := byName[a.company]
		if !ok || len(c.ProviderIDs) == 0 {
			continue // share folds into the long tail
		}
		cum += a.end
		p := &flatProvider{
			company:   a.company,
			id:        c.ProviderIDs[0],
			threshold: cum, // provisional, shifted below
		}
		if len(c.ASNs) > 0 {
			p.asn = c.ASNs[0]
		}
		fw.providers = append(fw.providers, p)
	}
	// Self-hosting sits between the adversarial band and the provider
	// ladder, so the provider thresholds all shift up by its share.
	fw.selfCut = (noMXPercent + advPct + selfPct) / 100
	for _, p := range fw.providers {
		p.threshold = (p.threshold + selfPct) / 100
	}
	// The long tail splits the residue evenly.
	last := fw.selfCut
	if n := len(fw.providers); n > 0 {
		last = fw.providers[n-1].threshold
	}
	residue := 1.0 - last
	if residue < 0 {
		return nil, fmt.Errorf("world: %s shares exceed 100%%", cfg.Corpus)
	}
	for j := 0; j < cfg.TailProviders; j++ {
		id := fmt.Sprintf("tail%03d-mail.net", j)
		p := &flatProvider{
			company:   id, // unmapped long tail keeps its provider ID
			id:        id,
			threshold: last + residue*float64(j+1)/float64(cfg.TailProviders),
		}
		fw.providers = append(fw.providers, p)
	}

	// Materialize infrastructure: two MX hosts of two addresses each,
	// a /16 per provider, one CA-signed certificate for the curated
	// providers (the long tail is banner-only).
	for i, p := range fw.providers {
		if p.asn == 0 {
			p.asn = asn.ASN(64000 + i)
		}
		fw.ASRegistry.Register(asn.AS{
			Number: p.asn, Name: p.company, Org: p.company, CountryCode: "US",
		})
		prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(1 + i), 0, 0}), 16)
		if err := fw.Prefixes.Insert(prefix, p.asn); err != nil {
			return nil, err
		}
		p.hosts = []string{"mx1." + p.id, "mx2." + p.id}
		if p.company != p.id { // curated provider: browser-trusted TLS
			leaf, err := ca.Issue(certs.LeafSpec{
				CommonName: p.hosts[0],
				DNSNames:   p.hosts,
				Org:        p.company,
			}, rng)
			if err != nil {
				return nil, err
			}
			p.leaf = leaf
		}
		p.addrs = make([][]netip.Addr, len(p.hosts))
		for h := range p.hosts {
			for k := 0; k < 2; k++ {
				a := netip.AddrFrom4([4]byte{10, byte(1 + i), byte(h), byte(1 + k)})
				p.addrs[h] = append(p.addrs[h], a)
				fw.byAddr[a] = &flatHost{hostname: p.hosts[h], leaf: p.leaf}
			}
		}
		fw.byID[p.id] = p
	}

	// Access ISPs for the self-hosted tail: one /16 per 65k domains out
	// of 100.64/10 (indexes map 1:1 onto addresses, so nothing is
	// stored per domain).
	blocks := (cfg.NumDomains + (1 << 16) - 1) >> 16
	if blocks > 64 {
		return nil, fmt.Errorf("world: flat world caps at %d domains", 64<<16)
	}
	for k := 0; k < blocks; k++ {
		a := asn.ASN(65000 + k)
		fw.ASRegistry.Register(asn.AS{
			Number: a, Name: fmt.Sprintf("Flat ISP %d", k),
			Org: fmt.Sprintf("Flat Access ISP %d", k), CountryCode: "US",
		})
		prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{100, byte(64 + k), 0, 0}), 16)
		if err := fw.Prefixes.Insert(prefix, a); err != nil {
			return nil, err
		}
	}
	if advPct > 0 {
		if err := fw.buildFlatAdversary(); err != nil {
			return nil, err
		}
	}
	return fw, nil
}

// NumDomains reports the corpus size.
func (fw *FlatWorld) NumDomains() int { return fw.Cfg.NumDomains }

// DomainName returns the i-th domain's name. Names encode their index,
// which is what lets the resolver answer for any of them statelessly.
// Abuse-family domains carry look-alike names instead of the canonical
// pattern; both encode the same index.
func (fw *FlatWorld) DomainName(i int) string {
	if fw.adv != nil && fw.familyOf(i) == FamilyAbuse {
		return fmt.Sprintf("%s%0*d%s", flatAbusePrefix, fw.digits, i, flatAbuseSuffix)
	}
	return fmt.Sprintf("%s%0*d%s", fw.namePrefix, fw.digits, i, fw.nameSuffix)
}

// DomainIndex inverts DomainName, accepting whichever spelling —
// canonical or look-alike — is the name of the index. Callers scoring
// inference output against OracleAt use it to map measured domains back
// to their indices without materializing the corpus.
func (fw *FlatWorld) DomainIndex(name string) (int, bool) {
	return fw.domainIndex(name)
}

// domainIndex inverts DomainName. A name only resolves when it is the
// canonical spelling for its index — a look-alike name for an honest
// index (or vice versa) stays NXDOMAIN.
func (fw *FlatWorld) domainIndex(name string) (int, bool) {
	if i, ok := fw.parseIndex(name, fw.namePrefix, fw.nameSuffix); ok {
		return i, fw.adv == nil || fw.familyOf(i) != FamilyAbuse
	}
	if fw.adv != nil {
		if i, ok := fw.parseIndex(name, flatAbusePrefix, flatAbuseSuffix); ok {
			return i, fw.familyOf(i) == FamilyAbuse
		}
	}
	return 0, false
}

// parseIndex extracts the in-range index between a prefix and suffix.
func (fw *FlatWorld) parseIndex(name, prefix, suffix string) (int, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	if len(mid) != fw.digits {
		return 0, false
	}
	i, err := strconv.Atoi(mid)
	if err != nil || i < 0 || i >= fw.Cfg.NumDomains {
		return 0, false
	}
	return i, true
}

// draw is the domain's assignment coordinate in [0,1). FNV alone is
// visibly non-uniform on sequential keys, so the hash goes through a
// murmur-style finalizer before becoming a share coordinate.
func (fw *FlatWorld) draw(i int) float64 {
	h := hash64(fmt.Sprintf("flat/%d/assign/%d", fw.Cfg.Seed, i))
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return float64(h>>11) / float64(1<<53)
}

// providerOf resolves a domain index to its provider, or nil for
// self-hosted domains, with ok=false when the domain has no MX.
func (fw *FlatWorld) providerOf(i int) (p *flatProvider, ok bool) {
	u := fw.draw(i)
	if u < fw.advCut {
		// Below the no-MX cut nothing exists; in [noMXCut, advCut) the
		// domain is adversarial and callers route through familyOf.
		return nil, false
	}
	if u < fw.selfCut {
		return nil, true
	}
	// The ladder is small (tens of rungs); binary search is overkill.
	for _, p := range fw.providers {
		if u < p.threshold {
			return p, true
		}
	}
	return fw.providers[len(fw.providers)-1], true
}

// TruthCompany returns the ground-truth operator bucket for domain i:
// the company name, the domain itself when self-hosted, or "" for no
// mail service.
func (fw *FlatWorld) TruthCompany(i int) string {
	if fam := fw.familyOf(i); fam != FamilyHonest {
		return fw.advTruthFlat(i, fam)
	}
	p, ok := fw.providerOf(i)
	switch {
	case !ok:
		return ""
	case p == nil:
		return fw.DomainName(i)
	default:
		return p.company
	}
}

// selfIP maps a self-hosted domain index to its dedicated address.
func (fw *FlatWorld) selfIP(i int) netip.Addr {
	return netip.AddrFrom4([4]byte{100, byte(64 + i>>16), byte(i >> 8), byte(i)})
}

// selfIndex inverts selfIP.
func (fw *FlatWorld) selfIndex(a netip.Addr) (int, bool) {
	b := a.As4()
	if b[0] != 100 || b[1] < 64 || b[1] >= 128 {
		return 0, false
	}
	i := int(b[1]-64)<<16 | int(b[2])<<8 | int(b[3])
	if i >= fw.Cfg.NumDomains {
		return 0, false
	}
	return i, true
}

// Resolver returns the world's DNS side.
func (fw *FlatWorld) Resolver() dns.Resolver { return flatResolver{fw} }

// Dialer returns the world's SMTP side.
func (fw *FlatWorld) Dialer() smtp.Dialer { return flatDialer{fw} }

// flatResolver computes DNS answers from domain indexes.
type flatResolver struct{ fw *FlatWorld }

func (r flatResolver) LookupMX(_ context.Context, domain string) ([]dns.MXData, error) {
	i, ok := r.fw.domainIndex(domain)
	if !ok {
		return nil, dns.ErrNXDomain
	}
	if fam := r.fw.familyOf(i); fam != FamilyHonest {
		return r.fw.advFlatMX(i, fam)
	}
	p, hasMail := r.fw.providerOf(i)
	if !hasMail {
		return nil, dns.ErrNoData
	}
	if p == nil {
		return []dns.MXData{{Preference: 10, Exchange: "mail." + domain}}, nil
	}
	return []dns.MXData{
		{Preference: 10, Exchange: p.hosts[0]},
		{Preference: 20, Exchange: p.hosts[1]},
	}, nil
}

func (r flatResolver) LookupA(_ context.Context, host string) ([]netip.Addr, error) {
	if r.fw.adv != nil {
		if addrs, ok := r.fw.adv.hosts[host]; ok {
			return append([]netip.Addr(nil), addrs...), nil
		}
	}
	if rest, ok := strings.CutPrefix(host, "mail."); ok {
		if i, ok := r.fw.domainIndex(rest); ok {
			if p, hasMail := r.fw.providerOf(i); hasMail && p == nil {
				return []netip.Addr{r.fw.selfIP(i)}, nil
			}
		}
		return nil, dns.ErrNXDomain
	}
	label, id, ok := strings.Cut(host, ".")
	if !ok {
		return nil, dns.ErrNXDomain
	}
	p := r.fw.byID[id]
	if p == nil {
		return nil, dns.ErrNXDomain
	}
	for h, name := range p.hosts {
		if name == label+"."+id {
			return append([]netip.Addr(nil), p.addrs[h]...), nil
		}
	}
	return nil, dns.ErrNXDomain
}

func (r flatResolver) LookupAAAA(_ context.Context, host string) ([]netip.Addr, error) {
	// The flat world is IPv4-only; the name exists, the type doesn't.
	if _, err := r.LookupA(context.Background(), host); err != nil {
		return nil, err
	}
	return nil, dns.ErrNoData
}

// flatDialer serves an SMTP conversation over an in-process pipe for
// every dial: no listener fleet, no per-host goroutines at rest — the
// server for an address exists only while a connection to it does.
type flatDialer struct{ fw *FlatWorld }

func (d flatDialer) DialContext(ctx context.Context, _, address string) (net.Conn, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ap, err := netip.ParseAddrPort(address)
	if err != nil {
		return nil, &net.OpError{Op: "dial", Net: "tcp", Err: err}
	}
	spec, err := d.fw.hostAt(ap.Addr())
	if err != nil {
		return nil, err
	}
	cfg := smtp.Config{Hostname: spec.hostname}
	if spec.leaf != nil {
		cfg.TLS = &tls.Config{Certificates: []tls.Certificate{spec.leaf.TLSCertificate()}}
	}
	srv, err := smtp.NewServer(cfg)
	if err != nil {
		return nil, err
	}
	client, server := net.Pipe()
	go srv.Serve(&oneShotListener{
		conn: server,
		addr: &net.TCPAddr{IP: ap.Addr().AsSlice(), Port: int(ap.Port())},
	})
	return client, nil
}

// hostAt resolves an address to its serving identity, or a
// connection-refused error for addresses nothing listens on.
func (fw *FlatWorld) hostAt(a netip.Addr) (*flatHost, error) {
	if h, ok := fw.byAddr[a]; ok {
		return h, nil
	}
	if i, ok := fw.selfIndex(a); ok {
		if p, hasMail := fw.providerOf(i); hasMail && p == nil {
			// Self-hosted box: banner-only identity under the domain's
			// own name, no TLS.
			return &flatHost{hostname: "mail." + fw.DomainName(i)}, nil
		}
	}
	return nil, &net.OpError{Op: "dial", Net: "tcp", Err: syscall.ECONNREFUSED}
}

// oneShotListener adapts one pipe end to the net.Listener surface
// smtp.Server expects: it yields its connection once, then reports
// closed, so the Serve loop exits after handing off the session.
type oneShotListener struct {
	mu   sync.Mutex
	conn net.Conn
	addr net.Addr
}

func (l *oneShotListener) Accept() (net.Conn, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.conn == nil {
		return nil, net.ErrClosed
	}
	c := l.conn
	l.conn = nil
	return c, nil
}

func (l *oneShotListener) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.conn != nil {
		l.conn.Close()
		l.conn = nil
	}
	return nil
}

func (l *oneShotListener) Addr() net.Addr { return l.addr }
