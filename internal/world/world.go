// Package world generates the synthetic Internet that stands in for the
// paper's measurement subjects: a roster of mail-service companies
// (mail hosts, e-mail security services, web hosts) with simulated server
// fleets, AS numbers and address space; three domain corpora (a stable
// Alexa-like list, random .com registrations, and .gov); and a
// longitudinal assignment of every domain to a provider across nine
// semi-annual snapshots, calibrated so that the reproduced figures have
// the paper's published shape.
//
// The generator retains ground truth (which company really operates every
// endpoint), which is what the accuracy evaluation in Section 3.3 needs
// in place of the authors' manual labelling.
//
// All randomness derives from Config.Seed; generation is deterministic.
package world

import (
	"fmt"
	"math/rand/v2"
	"net/netip"

	"mxmap/internal/asn"
	"mxmap/internal/certs"
	"mxmap/internal/companies"
)

// Snapshot date labels used across the study.
var (
	// AllDates are the nine semi-annual snapshots of the Alexa and .com
	// corpora.
	AllDates = []string{
		"2017-06", "2017-12", "2018-06", "2018-12", "2019-06",
		"2019-12", "2020-06", "2020-12", "2021-06",
	}
	// GovDates are the seven snapshots of the .gov corpus (OpenINTEL
	// coverage of .gov starts in 2018).
	GovDates = AllDates[2:]
)

// Corpus names.
const (
	CorpusAlexa = "alexa"
	CorpusCOM   = "com"
	CorpusGOV   = "gov"
)

// Paper-scale corpus sizes (Section 4.1).
const (
	paperAlexaSize = 93538
	paperCOMSize   = 580537
	paperGOVSize   = 3496
)

// Mode captures how a domain's mail service is concretely provisioned —
// which MX idiom it uses and which corner case (if any) it embodies.
type Mode uint8

// Modes.
const (
	// ModeExplicit names the provider in the MX record (netflix.com
	// style).
	ModeExplicit Mode = iota
	// ModeHidden uses a customer-named MX that resolves into the
	// provider's address space (gsipartners.com style).
	ModeHidden
	// ModeSharedHosting uses a customer-named mx.<domain> record
	// pointing at a web host's shared mail servers.
	ModeSharedHosting
	// ModeVPS is self-hosting on a rented VPS whose certificate and
	// banner carry the hosting company's subdomain (the myvps.com case).
	// Ground truth: the domain itself.
	ModeVPS
	// ModeSelfGood is self-hosting with a browser-trusted certificate
	// under the domain's own name.
	ModeSelfGood
	// ModeSelfSigned is self-hosting with a self-signed certificate.
	ModeSelfSigned
	// ModeSelfJunk is self-hosting with no TLS and a non-FQDN banner
	// ("ip-1-2-3-4" style).
	ModeSelfJunk
	// ModeFalseClaim is self-hosting while claiming a big provider's
	// identity in Banner/EHLO (the impersonation corner case).
	ModeFalseClaim
	// ModeNoSMTP points MX at web-hosting infrastructure that runs no
	// SMTP service (the jeniustoto.net case).
	ModeNoSMTP
	// ModeNoMXIP has an MX record whose exchange never resolves.
	ModeNoMXIP
	// ModeAdversarial marks a stint driven by the adversarial scenario
	// layer; the concrete behavior comes from the domain's AdvSpec.
	ModeAdversarial
	numModes
)

var modeNames = [...]string{
	"explicit", "hidden", "shared-hosting", "vps", "self-good",
	"self-signed", "self-junk", "false-claim", "no-smtp", "no-mx-ip",
	"adversarial",
}

// String names the mode.
func (m Mode) String() string {
	if int(m) < len(modeNames) {
		return modeNames[m]
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// SelfHosted reports whether ground truth for the mode is the domain
// itself rather than a provider company.
func (m Mode) SelfHosted() bool {
	switch m {
	case ModeVPS, ModeSelfGood, ModeSelfSigned, ModeSelfJunk, ModeFalseClaim:
		return true
	}
	return false
}

// Config parameterizes world generation.
type Config struct {
	// Seed drives all randomness (default 1).
	Seed uint64
	// Scale multiplies the paper's corpus sizes (default 0.05). Scale 1.0
	// reproduces full corpus sizes at a significant memory cost.
	Scale float64
	// TailProviders is the number of long-tail small providers competing
	// for the residual market (default 150).
	TailProviders int
	// SelfISPs is the number of access ISPs hosting self-run mail
	// servers (default 40).
	SelfISPs int
	// EnableIPv6 gives large mail hosts dual-stack server fleets (AAAA
	// records alongside A). The paper's method is IPv4-only; this knob
	// exercises its stated future-work extension.
	EnableIPv6 bool
	// Adversarial is the fraction of each corpus (0..1) turned into
	// hostile scenario families at the final snapshot: dangling MX,
	// parked exchanges, stale-glue hijacks, lame delegations, abuse
	// clusters and BLBFO failover topologies. 0 (the default) disables
	// the layer entirely — honest worlds are byte-identical to worlds
	// generated before it existed.
	Adversarial float64
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Scale == 0 {
		c.Scale = 0.05
	}
	if c.TailProviders == 0 {
		c.TailProviders = 150
	}
	if c.SelfISPs == 0 {
		c.SelfISPs = 40
	}
	return c
}

// Provider is one mail-operating company with concrete simulated
// infrastructure.
type Provider struct {
	// Company links to the directory entry (name, kind, country, IDs).
	Company *companies.Company
	// ID is the primary provider ID (a registered domain).
	ID string
	// MailHosts are the provider-operated shared MX host names,
	// resolving round-robin onto MailIPs.
	MailHosts []string
	// MailIPs are the provider's inbound mail server addresses.
	MailIPs []netip.Addr
	// MailIPv6s are the servers' IPv6 twins (parallel to MailIPs) when
	// the world is generated dual-stack; empty otherwise.
	MailIPv6s []netip.Addr
	// SharedIPs are shared-hosting mail servers (web hosts only) that
	// customer-named MX records point at.
	SharedIPs []netip.Addr
	// WebFrontIPs are web-hosting frontends with no SMTP service; MX
	// records occasionally point at them (the jeniustoto.net case).
	WebFrontIPs []netip.Addr
	// CloudPrefix, when valid, is address space the company rents out
	// (VPS ranges, web-hosting frontends).
	CloudPrefix netip.Prefix
	// ASN is the provider's primary autonomous system.
	ASN asn.ASN

	// index within World.Providers.
	index int
	// cloudNext allocates addresses out of CloudPrefix.
	cloudNext uint32
}

// Host is one simulated network endpoint.
type Host struct {
	// Addr is the endpoint's address.
	Addr netip.Addr
	// ASN is the origin AS announcing the address.
	ASN asn.ASN
	// SMTP describes the mail service; nil means port 25 is closed.
	SMTP *SMTPSpec
	// CensysMode controls scanning-service coverage of this address.
	CensysMode CensysMode
}

// SMTPSpec configures the SMTP service on a host.
type SMTPSpec struct {
	// Hostname is the identity used in banner and EHLO by default.
	Hostname string
	// Banner overrides the banner identity (e.g. "ip-1-2-3-4").
	Banner string
	// EHLOName overrides the EHLO identity.
	EHLOName string
	// Leaf is the STARTTLS certificate; nil disables STARTTLS.
	Leaf *certs.Leaf
}

// CensysMode controls simulated scan coverage.
type CensysMode uint8

// Censys coverage modes.
const (
	// CensysAlways: the scanning service covers this address in every
	// snapshot.
	CensysAlways CensysMode = iota
	// CensysNever: the address is a permanent blind spot (opt-out,
	// blocking).
	CensysNever
	// CensysIntermittent: covered only in even-numbered snapshots — the
	// EIG quirk the paper reports.
	CensysIntermittent
)

// CoveredAt reports coverage for the snapshot index.
func (c CensysMode) CoveredAt(dateIdx int) bool {
	switch c {
	case CensysAlways:
		return true
	case CensysIntermittent:
		return dateIdx%2 == 0
	default:
		return false
	}
}

// Stint is one contiguous run of snapshots during which a domain keeps
// the same provider and provisioning mode.
type Stint struct {
	// From and To are inclusive snapshot indexes (corpus-relative).
	From, To int
	// Provider indexes World.Providers; -1 means self-hosted.
	Provider int
	// Mode is the provisioning idiom for the stint.
	Mode Mode
	// Variant seeds deterministic per-stint choices (which provider
	// servers, how many MX records).
	Variant uint32
}

// Domain is one measured registered domain.
type Domain struct {
	// Name is the registered domain.
	Name string
	// Rank is the Alexa rank (1-based); 0 elsewhere.
	Rank int
	// Country is the ccTLD-derived country code, "" for gTLDs.
	Country string
	// Federal marks US federal .gov domains.
	Federal bool
	// Stints is the provider timeline covering every snapshot index.
	Stints []Stint
	// OwnIP is the address used when the domain self-hosts (allocated
	// lazily; invalid when never used).
	OwnIP netip.Addr
	// VPSIP is the address of the domain's rented VPS when ModeVPS ever
	// applies.
	VPSIP netip.Addr
	// WebIP is a web-hosting address used by ModeNoSMTP.
	WebIP netip.Addr
	// Adv is the domain's adversarial scenario, nil for honest domains.
	Adv *AdvSpec
}

// StintAt returns the stint covering the snapshot index.
func (d *Domain) StintAt(dateIdx int) *Stint {
	for i := range d.Stints {
		if d.Stints[i].From <= dateIdx && dateIdx <= d.Stints[i].To {
			return &d.Stints[i]
		}
	}
	return nil
}

// Corpus is one domain list with its snapshot dates.
type Corpus struct {
	// Name is CorpusAlexa, CorpusCOM or CorpusGOV.
	Name string
	// Dates are the snapshot labels measured for this corpus.
	Dates []string
	// Domains holds the corpus members.
	Domains []*Domain
}

// World is a fully generated synthetic Internet.
type World struct {
	// Cfg echoes the effective generation parameters.
	Cfg Config
	// CA signs all browser-trusted certificates in the world.
	CA *certs.CA
	// Trust is the browser root program.
	Trust *certs.TrustStore
	// Prefixes is the prefix-to-AS table.
	Prefixes *asn.Table
	// ASRegistry describes every AS.
	ASRegistry *asn.Registry
	// Directory maps provider IDs to companies, covering both the
	// curated roster and generated tail providers.
	Directory *companies.Directory
	// Providers is the full provider roster (curated + tail).
	Providers []*Provider
	// Hosts indexes every endpoint by address.
	Hosts map[netip.Addr]*Host
	// Corpora indexes the three corpora by name.
	Corpora map[string]*Corpus
	// Adversary holds the hostile shared infrastructure (attacker
	// relays, bulk-mail exchanges, parking addresses); nil unless
	// Cfg.Adversarial > 0.
	Adversary *Adversary

	providerByID map[string]*Provider
	rng          *rand.Rand
	// selfNext sequences dedicated self-hosted server addresses across
	// all corpora so they never collide.
	selfNext uint32
	// usedNames keeps corpus domain names globally unique.
	usedNames map[string]bool
}

// Corpus returns the named corpus.
func (w *World) Corpus(name string) *Corpus { return w.Corpora[name] }

// ProviderByID resolves any provider ID to its Provider.
func (w *World) ProviderByID(id string) (*Provider, bool) {
	p, ok := w.providerByID[id]
	return p, ok
}

// Host returns the endpoint at addr, if any.
func (w *World) Host(addr netip.Addr) (*Host, bool) {
	h, ok := w.Hosts[addr]
	return h, ok
}

// TruthCompany returns the ground-truth operator for a domain at a
// snapshot: the provider's company name, or the domain itself when
// self-hosted (including VPS self-hosting), or "" when the domain's MX
// leads to no mail service at all.
func (w *World) TruthCompany(d *Domain, dateIdx int) string {
	st := d.StintAt(dateIdx)
	if st == nil {
		return ""
	}
	if st.Mode == ModeNoSMTP || st.Mode == ModeNoMXIP {
		return ""
	}
	if st.Mode == ModeAdversarial {
		return w.advTruth(d, st)
	}
	if st.Provider < 0 || st.Mode.SelfHosted() {
		return d.Name
	}
	return w.Providers[st.Provider].Company.Name
}
