package world

import (
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"sync"

	"mxmap/internal/netsim"
	"mxmap/internal/smtp"
)

// Fleet is a running set of SMTP servers backing the world's hosts on a
// simulated network fabric.
type Fleet struct {
	servers []*smtp.Server
}

// SMTPServeOptions tunes the overload protection applied to every
// server in the fleet. The zero value keeps the smtp package defaults.
type SMTPServeOptions struct {
	// MaxConns caps concurrent sessions per server; MaxCommands caps
	// commands per session. Zero keeps the smtp defaults, negative means
	// unlimited.
	MaxConns    int
	MaxCommands int
}

// StartSMTP brings up an SMTP server for every host that runs one, bound
// to port 25 of its address on the fabric. Hosts without SMTP leave their
// port closed, which the fabric reports as connection refused. The caller
// owns the returned fleet and must Close it.
func (w *World) StartSMTP(n *netsim.Network) (*Fleet, error) {
	return w.StartSMTPServe(n, SMTPServeOptions{})
}

// StartSMTPServe is StartSMTP with overload protection configured.
func (w *World) StartSMTPServe(n *netsim.Network, opts SMTPServeOptions) (*Fleet, error) {
	f := &Fleet{}
	// Deterministic bring-up order for reproducible logs.
	addrs := make([]netip.Addr, 0, len(w.Hosts))
	for a := range w.Hosts {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i].Less(addrs[j]) })
	for _, a := range addrs {
		h := w.Hosts[a]
		if h.SMTP == nil {
			continue
		}
		cfg := smtp.Config{
			Hostname:    h.SMTP.Hostname,
			Banner:      h.SMTP.Banner,
			EHLOName:    h.SMTP.EHLOName,
			MaxConns:    opts.MaxConns,
			MaxCommands: opts.MaxCommands,
		}
		if h.SMTP.Leaf != nil {
			cfg.TLS = &tls.Config{Certificates: []tls.Certificate{h.SMTP.Leaf.TLSCertificate()}}
		}
		srv, err := smtp.NewServer(cfg)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("world: host %s: %w", a, err)
		}
		ln, err := n.Listen(netip.AddrPortFrom(a, 25))
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("world: listen %s: %w", a, err)
		}
		go srv.Serve(ln)
		f.servers = append(f.servers, srv)
	}
	return f, nil
}

// Close hard-stops every server in the fleet.
func (f *Fleet) Close() error {
	for _, s := range f.servers {
		s.Close()
	}
	return nil
}

// Shutdown drains every server in the fleet concurrently, letting
// in-flight sessions finish their current command; at the ctx deadline
// stragglers are hard-closed and the error reported.
func (f *Fleet) Shutdown(ctx context.Context) error {
	errs := make([]error, len(f.servers))
	var wg sync.WaitGroup
	for i, s := range f.servers {
		wg.Add(1)
		go func(i int, s *smtp.Server) {
			defer wg.Done()
			errs[i] = s.Shutdown(ctx)
		}(i, s)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Stats aggregates the serving counters of every server in the fleet.
func (f *Fleet) Stats() smtp.ServerStats {
	var total smtp.ServerStats
	for _, s := range f.servers {
		total.Merge(s.Stats())
	}
	return total
}

// NumServers reports the number of running SMTP servers.
func (f *Fleet) NumServers() int { return len(f.servers) }
