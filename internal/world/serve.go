package world

import (
	"crypto/tls"
	"fmt"
	"net/netip"
	"sort"

	"mxmap/internal/netsim"
	"mxmap/internal/smtp"
)

// Fleet is a running set of SMTP servers backing the world's hosts on a
// simulated network fabric.
type Fleet struct {
	servers []*smtp.Server
}

// StartSMTP brings up an SMTP server for every host that runs one, bound
// to port 25 of its address on the fabric. Hosts without SMTP leave their
// port closed, which the fabric reports as connection refused. The caller
// owns the returned fleet and must Close it.
func (w *World) StartSMTP(n *netsim.Network) (*Fleet, error) {
	f := &Fleet{}
	// Deterministic bring-up order for reproducible logs.
	addrs := make([]netip.Addr, 0, len(w.Hosts))
	for a := range w.Hosts {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i].Less(addrs[j]) })
	for _, a := range addrs {
		h := w.Hosts[a]
		if h.SMTP == nil {
			continue
		}
		cfg := smtp.Config{
			Hostname: h.SMTP.Hostname,
			Banner:   h.SMTP.Banner,
			EHLOName: h.SMTP.EHLOName,
		}
		if h.SMTP.Leaf != nil {
			cfg.TLS = &tls.Config{Certificates: []tls.Certificate{h.SMTP.Leaf.TLSCertificate()}}
		}
		srv, err := smtp.NewServer(cfg)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("world: host %s: %w", a, err)
		}
		ln, err := n.Listen(netip.AddrPortFrom(a, 25))
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("world: listen %s: %w", a, err)
		}
		go srv.Serve(ln)
		f.servers = append(f.servers, srv)
	}
	return f, nil
}

// Close stops every server in the fleet.
func (f *Fleet) Close() error {
	for _, s := range f.servers {
		s.Close()
	}
	return nil
}

// NumServers reports the number of running SMTP servers.
func (f *Fleet) NumServers() int { return len(f.servers) }
