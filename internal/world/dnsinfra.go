package world

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sort"
	"strings"
	"sync"

	"mxmap/internal/dns"
	"mxmap/internal/netsim"
)

// DNSInfra is a running, fully delegated DNS hierarchy on the simulated
// fabric: one root server, one server per TLD, and a set of sharded
// authoritative servers hosting the leaf zones. It lets the measurement
// pipeline perform wire-faithful iterative resolution, the way the
// paper's active-DNS platform does, instead of the in-memory catalog
// shortcut.
type DNSInfra struct {
	// Roots are the root server addresses (the hints for an iterative
	// resolver).
	Roots []netip.AddrPort

	opts    DNSServeOptions
	servers []*dns.Server
	conns   []*netsim.PacketConn
}

// DNSServeOptions tunes the overload protection applied to every
// authority in the hierarchy. The zero value keeps RRL off and the dns
// package's admission defaults.
type DNSServeOptions struct {
	// RRL applies response-rate limiting to every authority when non-nil.
	RRL *dns.RRLConfig
	// MaxTCPConns and TCPQueryBudget cap DNS-over-TCP per authority;
	// zero keeps the dns defaults, negative means unlimited.
	MaxTCPConns    int
	TCPQueryBudget int
}

// Close hard-stops every DNS server in the hierarchy.
func (inf *DNSInfra) Close() error {
	for _, s := range inf.servers {
		s.Close()
	}
	return nil
}

// Shutdown drains every server in the hierarchy concurrently, letting
// in-flight queries finish; at the ctx deadline stragglers are
// hard-closed and the error reported.
func (inf *DNSInfra) Shutdown(ctx context.Context) error {
	errs := make([]error, len(inf.servers))
	var wg sync.WaitGroup
	for i, s := range inf.servers {
		wg.Add(1)
		go func(i int, s *dns.Server) {
			defer wg.Done()
			errs[i] = s.Shutdown(ctx)
		}(i, s)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Stats aggregates the serving counters of every server in the
// hierarchy.
func (inf *DNSInfra) Stats() dns.ServerStats {
	var total dns.ServerStats
	for _, s := range inf.servers {
		total.Merge(s.Stats())
	}
	return total
}

// NumServers reports how many DNS servers are running.
func (inf *DNSInfra) NumServers() int { return len(inf.servers) }

// Addressing plan for the DNS hierarchy; separate from provider and ISP
// space.
var (
	dnsRootAddr  = netip.MustParseAddr("10.250.0.1")
	dnsTLDBase   = [4]byte{10, 250, 1, 0}
	dnsShardBase = [4]byte{10, 250, 2, 0}
)

// dnsShards is the number of authoritative leaf-zone servers.
const dnsShards = 8

// StartDNS builds and serves the delegated hierarchy for one snapshot
// date: the root zone delegates every TLD, each TLD zone delegates the
// registered zones beneath it to an authoritative shard, and the shards
// serve the leaf zones from CatalogAt.
func (w *World) StartDNS(n *netsim.Network, date string) (*DNSInfra, error) {
	return w.StartDNSServe(n, date, DNSServeOptions{})
}

// StartDNSServe is StartDNS with overload protection configured: every
// authority gets opts' RRL and TCP admission settings.
func (w *World) StartDNSServe(n *netsim.Network, date string, opts DNSServeOptions) (*DNSInfra, error) {
	leafCatalog, err := w.CatalogAt(date)
	if err != nil {
		return nil, err
	}
	zones := leafCatalog.Zones()
	sort.Slice(zones, func(i, j int) bool { return zones[i].Origin < zones[j].Origin })

	// Assign each leaf zone to a shard and index zones by TLD.
	shardCatalogs := make([]*dns.Catalog, dnsShards)
	for i := range shardCatalogs {
		shardCatalogs[i] = dns.NewCatalog()
	}
	byTLD := make(map[string][]*dns.Zone)
	for _, z := range zones {
		labels := dns.SplitLabels(z.Origin)
		if len(labels) == 0 {
			continue
		}
		tld := labels[len(labels)-1]
		byTLD[tld] = append(byTLD[tld], z)
		shard := int(hash64(z.Origin) % dnsShards)
		shardCatalogs[shard].AddZone(z)
	}

	inf := &DNSInfra{opts: opts}
	shardAddrs := make([]netip.Addr, dnsShards)
	for i := range shardAddrs {
		shardAddrs[i] = netip.AddrFrom4([4]byte{dnsShardBase[0], dnsShardBase[1], dnsShardBase[2], byte(1 + i)})
	}

	// TLD zones with one delegation per leaf zone; glue points at the
	// leaf's shard.
	tlds := make([]string, 0, len(byTLD))
	for tld := range byTLD {
		tlds = append(tlds, tld)
	}
	sort.Strings(tlds)
	rootZone := dns.NewZone(".")
	if err := addApex(rootZone, "."); err != nil {
		return nil, err
	}
	for i, tld := range tlds {
		tldAddr := netip.AddrFrom4([4]byte{dnsTLDBase[0], dnsTLDBase[1], dnsTLDBase[2], byte(1 + i%250)})
		if i >= 250 {
			return nil, fmt.Errorf("world: too many TLDs for the address plan")
		}
		tldZone := dns.NewZone(tld)
		if err := addApex(tldZone, tld); err != nil {
			return nil, err
		}
		for _, z := range byTLD[tld] {
			child := strings.TrimSuffix(z.Origin, ".")
			if child == tld {
				continue // a provider ID equal to a TLD would be its own zone
			}
			shard := int(hash64(z.Origin) % dnsShards)
			nsHost := "ns1." + child
			if err := tldZone.Add(dns.RR{Name: child, Type: dns.TypeNS, TTL: zoneTTL,
				Data: dns.NSData{Host: nsHost}}); err != nil {
				return nil, err
			}
			if err := tldZone.Add(dns.RR{Name: nsHost, Type: dns.TypeA, TTL: zoneTTL,
				Data: dns.AData{Addr: shardAddrs[shard]}}); err != nil {
				return nil, err
			}
		}
		tldCat := dns.NewCatalog()
		tldCat.AddZone(tldZone)
		if err := inf.serve(n, tldAddr, tldCat); err != nil {
			inf.Close()
			return nil, err
		}
		// Root delegation for the TLD.
		nsHost := "ns1." + tld
		if err := rootZone.Add(dns.RR{Name: tld, Type: dns.TypeNS, TTL: zoneTTL,
			Data: dns.NSData{Host: nsHost}}); err != nil {
			inf.Close()
			return nil, err
		}
		if err := rootZone.Add(dns.RR{Name: nsHost, Type: dns.TypeA, TTL: zoneTTL,
			Data: dns.AData{Addr: tldAddr}}); err != nil {
			inf.Close()
			return nil, err
		}
	}

	rootCat := dns.NewCatalog()
	rootCat.AddZone(rootZone)
	if err := inf.serve(n, dnsRootAddr, rootCat); err != nil {
		inf.Close()
		return nil, err
	}
	inf.Roots = []netip.AddrPort{netip.AddrPortFrom(dnsRootAddr, 53)}

	for i, cat := range shardCatalogs {
		if err := inf.serve(n, shardAddrs[i], cat); err != nil {
			inf.Close()
			return nil, err
		}
	}
	return inf, nil
}

// serve starts one DNS server bound to addr:53 on the fabric, UDP and
// TCP — the TCP listener is what lets clients retry truncated (or
// RRL-slipped) answers. Two UDP workers per simulated authority: the
// fabric hosts dozens of servers per process, so the default
// (per-host-sized) pool would oversubscribe.
func (inf *DNSInfra) serve(n *netsim.Network, addr netip.Addr, cat *dns.Catalog) error {
	srv, err := dns.NewServer(dns.ServerConfig{
		Catalog:        cat,
		UDPWorkers:     2,
		RRL:            inf.opts.RRL,
		MaxTCPConns:    inf.opts.MaxTCPConns,
		TCPQueryBudget: inf.opts.TCPQueryBudget,
	})
	if err != nil {
		return err
	}
	ap := netip.AddrPortFrom(addr, 53)
	pc, err := n.ListenPacket(ap)
	if err != nil {
		return err
	}
	ln, err := n.Listen(ap)
	if err != nil {
		pc.Close()
		return err
	}
	go srv.ServeUDP(pc)
	go srv.ServeTCP(ln)
	inf.servers = append(inf.servers, srv)
	inf.conns = append(inf.conns, pc)
	return nil
}

// NewIterativeResolver returns a caching recursive resolver seeded with
// the hierarchy's root hints, dialing over the fabric. The attached
// cache is sized for snapshot-scale collection: positive/negative
// answers, zone cuts, serve-stale and coalescing all engage, so
// thousands of domains concentrated on one provider's infrastructure
// cost one delegation walk.
func (inf *DNSInfra) NewIterativeResolver(n *netsim.Network) *dns.IterativeResolver {
	return &dns.IterativeResolver{
		Roots:       inf.Roots,
		DialContext: fabricDial(n),
		Cache:       &dns.Cache{MaxEntries: 1 << 16},
	}
}

// fabricDial adapts the simulated network to the resolver's dial hook,
// supporting both datagram and stream transports.
func fabricDial(n *netsim.Network) func(ctx context.Context, network, address string) (net.Conn, error) {
	return func(ctx context.Context, network, address string) (net.Conn, error) {
		ap, err := netip.ParseAddrPort(address)
		if err != nil {
			return nil, err
		}
		if network == "udp" || network == "udp4" {
			return n.DialUDP(ap)
		}
		return n.Dial(ctx, ap)
	}
}
