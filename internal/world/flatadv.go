package world

import (
	"context"
	"fmt"
	"net/netip"
	"strings"

	"mxmap/internal/asn"
	"mxmap/internal/companies"
	"mxmap/internal/dns"
)

// Flat-world adversarial band. With FlatConfig.AdversarialPercent > 0, a
// band of the assignment coordinate between the no-MX cut and the
// provider ladder turns hostile, split into six equal family slices.
// Everything stays a pure function of the domain index — family, MX
// topology, look-alike naming, ground truth — so a hundred million
// hostile domains cost no more memory than ten honest ones.

// Flat adversary namespace. One fixture per family: the flat world
// trades the full world's per-cluster variety for scale invariance.
const (
	// flatParkedZone's exchange resolves onto parking sinkholes where
	// port 25 never answers.
	flatParkedZone = "flat-parked-claims.net"
	// flatGoneZone's exchange is NXDOMAIN: the dangling-MX case.
	flatGoneZone = "dead-flat-mail.net"
	// flatRelayZone hosts the hijack relays: lapsed from the registry,
	// resolving through leftover glue, banner-forging a big provider.
	flatRelayZone = "flat-hijack-relay.net"
	// flatAbuseZone is the bulk operator's cheap shared exchange.
	flatAbuseZone = "flat-bulk-mail.xyz"
	// flatBackupZone is the third-party backup-MX business.
	flatBackupZone = "flat-backup-relay.net"

	// Abuse-family domains carry look-alike names under this pattern
	// instead of the canonical d%09d.com, sharing one long digit-stripped
	// stem.
	flatAbusePrefix = "bulk-pharma-dealz-"
	flatAbuseSuffix = ".xyz"

	// flatForged is the company the hijack relays impersonate.
	flatForged       = "Google"
	flatForgedBanner = "mx.google.com"

	flatBulkCompany   = "Flat Bulk Mail"
	flatBackupCompany = "Flat Backup Relay"
)

// flatFamilies orders the band's equal slices.
var flatFamilies = []ScenarioFamily{
	FamilyDanglingNX, FamilyDanglingParked, FamilyHijack,
	FamilyLame, FamilyAbuse, FamilyBLBFO,
}

// flatTopologies cycles BLBFO failover shapes by domain index.
var flatTopologies = []string{TopologyTiered, TopologySkewed, TopologyBackupOnly}

// flatAdversary holds the materialized hostile fixtures.
type flatAdversary struct {
	// hosts maps adversary exchange names to their addresses (glue or
	// served, depending on the zone's registry state).
	hosts map[string][]netip.Addr
	// parked marks the parking sinkhole addresses.
	parked map[netip.Addr]bool
}

// buildFlatAdversary registers the hostile infrastructure: address
// blocks and ASNs per fixture, serving identities for reachable hosts,
// directory entries for the operators that legitimately exist.
func (fw *FlatWorld) buildFlatAdversary() error {
	adv := &flatAdversary{
		hosts:  make(map[string][]netip.Addr),
		parked: make(map[netip.Addr]bool),
	}
	blocks := []struct {
		number asn.ASN
		name   string
		octet  byte
	}{
		{64990, "Flat Parking Lot", 126},
		{64991, "Flat Hijack Relay", 125},
		{64992, flatBulkCompany, 124},
		{64993, flatBackupCompany, 123},
	}
	for _, b := range blocks {
		fw.ASRegistry.Register(asn.AS{
			Number: b.number, Name: b.name, Org: b.name, CountryCode: "US",
		})
		prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{100, b.octet, 0, 0}), 24)
		if err := fw.Prefixes.Insert(prefix, b.number); err != nil {
			return err
		}
	}

	// Parking sinkholes: resolvable, never listening. Deliberately
	// absent from byAddr, so dials see connection-refused.
	parked := []netip.Addr{
		netip.AddrFrom4([4]byte{100, 126, 0, 1}),
		netip.AddrFrom4([4]byte{100, 126, 0, 2}),
	}
	adv.hosts["mx."+flatParkedZone] = parked
	for _, a := range parked {
		adv.parked[a] = true
	}

	// Hijack relays: the zone is gone from the registry (ZoneGone), yet
	// glue still resolves, and the listener claims the forged provider's
	// identity with no certificate to back it.
	for k, host := range []string{"mx0." + flatRelayZone, "mx1." + flatRelayZone} {
		a := netip.AddrFrom4([4]byte{100, 125, 0, byte(1 + k)})
		adv.hosts[host] = []netip.Addr{a}
		fw.byAddr[a] = &flatHost{hostname: flatForgedBanner}
	}

	// The bulk operator and the backup-MX business are real (registered,
	// honest banners) — their trouble is structural, not forged.
	abuseAddr := netip.AddrFrom4([4]byte{100, 124, 0, 1})
	adv.hosts["mx."+flatAbuseZone] = []netip.Addr{abuseAddr}
	fw.byAddr[abuseAddr] = &flatHost{hostname: "mx." + flatAbuseZone}
	fw.Directory.Register(companies.Company{
		Name: flatBulkCompany, Kind: companies.KindOther, Country: "US",
		ProviderIDs: []string{flatAbuseZone},
	})
	for k, host := range []string{"mx1." + flatBackupZone, "mx2." + flatBackupZone} {
		a := netip.AddrFrom4([4]byte{100, 123, 0, byte(1 + k)})
		adv.hosts[host] = []netip.Addr{a}
		fw.byAddr[a] = &flatHost{hostname: host}
	}
	fw.Directory.Register(companies.Company{
		Name: flatBackupCompany, Kind: companies.KindOther, Country: "US",
		ProviderIDs: []string{flatBackupZone},
	})

	fw.adv = adv
	return nil
}

// familyOf returns domain i's scenario family; FamilyHonest outside the
// adversarial band.
func (fw *FlatWorld) familyOf(i int) ScenarioFamily {
	if fw.adv == nil {
		return FamilyHonest
	}
	u := fw.draw(i)
	if u < fw.noMXCut || u >= fw.advCut {
		return FamilyHonest
	}
	slice := int((u - fw.noMXCut) / (fw.advCut - fw.noMXCut) * float64(len(flatFamilies)))
	if slice >= len(flatFamilies) {
		slice = len(flatFamilies) - 1
	}
	return flatFamilies[slice]
}

// blbfoProvider picks the primary-tier provider of a flat BLBFO domain.
func (fw *FlatWorld) blbfoProvider(i int) *flatProvider {
	h := hash64(fmt.Sprintf("flat/%d/blbfo/%d", fw.Cfg.Seed, i))
	return fw.providers[h%uint64(len(fw.providers))]
}

// blbfoTopology names the failover shape of a flat BLBFO domain.
func (fw *FlatWorld) blbfoTopology(i int) string {
	return flatTopologies[i%len(flatTopologies)]
}

// advFlatMX computes the MX answer for an adversarial domain.
func (fw *FlatWorld) advFlatMX(i int, fam ScenarioFamily) ([]dns.MXData, error) {
	switch fam {
	case FamilyDanglingNX:
		return []dns.MXData{{Preference: 10, Exchange: "mx." + flatGoneZone}}, nil
	case FamilyDanglingParked:
		return []dns.MXData{{Preference: 10, Exchange: "mx." + flatParkedZone}}, nil
	case FamilyHijack:
		return []dns.MXData{
			{Preference: 10, Exchange: "mx0." + flatRelayZone},
			{Preference: 20, Exchange: "mx1." + flatRelayZone},
		}, nil
	case FamilyLame:
		return nil, fmt.Errorf("dns: lame delegation for %s: %w", fw.DomainName(i), dns.ErrLame)
	case FamilyAbuse:
		return []dns.MXData{{Preference: 10, Exchange: "mx." + flatAbuseZone}}, nil
	case FamilyBLBFO:
		p := fw.blbfoProvider(i)
		switch fw.blbfoTopology(i) {
		case TopologyTiered:
			return []dns.MXData{
				{Preference: 10, Exchange: p.hosts[0]},
				{Preference: 20, Exchange: p.hosts[1]},
				{Preference: 30, Exchange: "mx1." + flatBackupZone},
			}, nil
		case TopologySkewed:
			return []dns.MXData{
				{Preference: 10, Exchange: p.hosts[0]},
				{Preference: 10, Exchange: p.hosts[1]},
				{Preference: 20, Exchange: "mx2." + flatBackupZone},
			}, nil
		default: // backup-only: no primary of its own at all
			return []dns.MXData{
				{Preference: 10, Exchange: "mx1." + flatBackupZone},
				{Preference: 20, Exchange: "mx2." + flatBackupZone},
			}, nil
		}
	}
	return nil, dns.ErrNoData
}

// advTruthFlat is the ground-truth operator of an adversarial domain.
func (fw *FlatWorld) advTruthFlat(i int, fam ScenarioFamily) string {
	switch fam {
	case FamilyHijack:
		// The registrant lost control; no legitimate operator exists.
		return flatRelayZone
	case FamilyAbuse:
		return flatBulkCompany
	case FamilyBLBFO:
		if fw.blbfoTopology(i) == TopologyBackupOnly {
			return flatBackupCompany
		}
		return fw.blbfoProvider(i).company
	default:
		// Dangling, parked, lame: the mail service is gone.
		return ""
	}
}

// Parked reports whether addr is one of the world's parking sinkholes.
// Safe on honest worlds (always false), so collectors can wire it
// unconditionally.
func (fw *FlatWorld) Parked(addr netip.Addr) bool {
	return fw.adv != nil && fw.adv.parked[addr]
}

// DelegationStale implements dns.ProvenanceChecker: in a flat world the
// registry-vs-serving mismatch is exactly the hijack family.
func (r flatResolver) DelegationStale(_ context.Context, domain string) bool {
	if r.fw.adv == nil {
		return false
	}
	i, ok := r.fw.domainIndex(domain)
	return ok && r.fw.familyOf(i) == FamilyHijack
}

// ZoneGone implements dns.ProvenanceChecker: the dangling and hijack
// fixtures are the zones lapsed from the registry.
func (r flatResolver) ZoneGone(_ context.Context, host string) bool {
	if r.fw.adv == nil {
		return false
	}
	h := strings.TrimSuffix(host, ".")
	for _, zone := range []string{flatGoneZone, flatRelayZone} {
		if h == zone || strings.HasSuffix(h, "."+zone) {
			return true
		}
	}
	return false
}

// OracleAt returns domain i's machine-readable ground truth, the flat
// counterpart of World.Oracle — per index rather than materialized,
// matching how everything else in a flat world is computed.
func (fw *FlatWorld) OracleAt(i int) OracleEntry {
	fam := fw.familyOf(i)
	e := OracleEntry{Domain: fw.DomainName(i), Family: fam, Truth: fw.TruthCompany(i)}
	switch fam {
	case FamilyDanglingNX, FamilyDanglingParked:
		e.ExpectFlagged = true
	case FamilyHijack:
		e.ExpectFlagged = true
		e.Forged = flatForged
		e.Detail = flatRelayZone
	case FamilyAbuse:
		e.ExpectFlagged = true
		e.Detail = flatAbuseZone
	case FamilyBLBFO:
		e.Detail = fw.blbfoTopology(i)
	}
	return e
}
