package world

import (
	"fmt"
	"net/netip"

	"mxmap/internal/asn"
	"mxmap/internal/certs"
	"mxmap/internal/companies"
)

// MXRec is one concrete MX record for a domain at a snapshot, together
// with the A-record data its exchange resolves to.
type MXRec struct {
	// Pref is the MX preference.
	Pref uint16
	// Host is the exchange name.
	Host string
	// Addrs is what Host resolves to. For in-bailiwick hosts (OwnA) the
	// A records live in the domain's zone; otherwise the provider's zone
	// is authoritative and Addrs mirrors it.
	Addrs []netip.Addr
	// OwnA marks exchanges inside the domain's own zone.
	OwnA bool
}

// materializeHosts walks a corpus after assignment and creates the
// dedicated endpoints the domains' stints require: self-hosted servers,
// rented VPSes, and SMTP-less web frontends.
func (w *World) materializeHosts(c *Corpus) error {
	webhosts := w.webHostingProviders()
	if len(webhosts) == 0 {
		return fmt.Errorf("world: no web-hosting providers in roster")
	}
	for _, d := range c.Domains {
		for si := range d.Stints {
			st := &d.Stints[si]
			switch st.Mode {
			case ModeSelfGood, ModeSelfSigned, ModeSelfJunk, ModeFalseClaim:
				if !d.OwnIP.IsValid() {
					if err := w.createSelfHost(d, st.Mode, &w.selfNext); err != nil {
						return err
					}
				}
			case ModeVPS:
				if !d.VPSIP.IsValid() {
					wh := webhosts[int(st.Variant)%len(webhosts)]
					if err := w.createVPSHost(d, wh, st.Variant); err != nil {
						return err
					}
				}
			case ModeNoSMTP:
				// Most SMTP-less MX records point at a provider's shared
				// web frontend; only the customer-named minority needs a
				// dedicated web address.
				if st.Variant%20 == 0 && !d.WebIP.IsValid() {
					cloud := w.cloudOwnerFor(st, webhosts)
					addr, err := cloud.cloudAddr()
					if err != nil {
						return err
					}
					d.WebIP = addr
					w.Hosts[addr] = &Host{Addr: addr, ASN: cloud.ASN, SMTP: nil}
				}
			}
		}
	}
	return nil
}

// cloudOwnerFor picks whose web infrastructure an SMTP-less MX points at:
// the assigned provider when it rents cloud space (the jeniustoto.net
// case on Google), otherwise a web host chosen by variant.
func (w *World) cloudOwnerFor(st *Stint, webhosts []*Provider) *Provider {
	if st.Provider >= 0 {
		if p := w.Providers[st.Provider]; p.CloudPrefix.IsValid() {
			return p
		}
	}
	return webhosts[int(st.Variant)%len(webhosts)]
}

// createSelfHost allocates the domain's own mail server in ISP space and
// configures its SMTP personality per the mode.
func (w *World) createSelfHost(d *Domain, mode Mode, next *uint32) error {
	*next++
	n := *next
	isp := int(hash64(d.Name) % uint64(w.Cfg.SelfISPs))
	if n >= 250*250 {
		return fmt.Errorf("world: ISP space exhausted")
	}
	addr := netip.AddrFrom4([4]byte{100, byte(64 + isp), byte(1 + n/250), byte(1 + n%250)})
	d.OwnIP = addr

	hostname := "mx." + d.Name
	spec := &SMTPSpec{Hostname: hostname}
	switch mode {
	case ModeSelfGood:
		leaf, err := w.CA.Issue(certs.LeafSpec{CommonName: hostname}, w.rng)
		if err != nil {
			return err
		}
		spec.Leaf = leaf
		if hash64(d.Name+"/banner")%5 == 0 {
			// Some otherwise well-run servers still ship a placeholder
			// banner: a valid certificate with no usable Banner/EHLO.
			spec.Banner = "localhost ESMTP ready"
			spec.EHLOName = "localhost"
		}
	case ModeSelfSigned:
		leaf, err := certs.SelfSigned(certs.LeafSpec{CommonName: hostname}, w.rng)
		if err != nil {
			return err
		}
		spec.Leaf = leaf
	case ModeSelfJunk:
		a4 := addr.As4()
		junk := fmt.Sprintf("ip-%d-%d-%d-%d", a4[0], a4[1], a4[2], a4[3])
		if hash64(d.Name)%4 == 0 {
			junk = "localhost"
		}
		spec.Banner = junk + " ESMTP service ready"
		spec.EHLOName = junk
	case ModeFalseClaim:
		spec.Banner = "mx.google.com ESMTP gmail-like ready"
		spec.EHLOName = "mx.google.com"
	}
	censys := CensysAlways
	if hash64(d.Name+"/censys")%100 < 12 {
		censys = CensysNever
	}
	w.Hosts[addr] = &Host{Addr: addr, ASN: asn.ASN(65000 + isp), SMTP: spec, CensysMode: censys}
	return nil
}

// createVPSHost allocates a rented VPS at the web host and gives it the
// hosting company's subdomain identity — the configuration step 4 of the
// methodology has to unwind.
func (w *World) createVPSHost(d *Domain, wh *Provider, variant uint32) error {
	addr, err := wh.cloudAddr()
	if err != nil {
		return err
	}
	d.VPSIP = addr
	var vpsName string
	if variant%2 == 0 {
		vpsName = fmt.Sprintf("vps%d.%s", 1000+variant%9000, wh.ID)
	} else {
		a4 := addr.As4()
		vpsName = fmt.Sprintf("s%d-%d-%d.%s", a4[1], a4[2], a4[3], wh.ID)
	}
	spec := &SMTPSpec{Hostname: vpsName}
	if variant%5 != 0 {
		// Hosting companies let VPS tenants obtain certificates under
		// these names (the secureserver.net behavior in §3.1.4).
		leaf, err := w.CA.Issue(certs.LeafSpec{CommonName: vpsName}, w.rng)
		if err != nil {
			return err
		}
		spec.Leaf = leaf
	} else {
		leaf, err := certs.SelfSigned(certs.LeafSpec{CommonName: vpsName}, w.rng)
		if err != nil {
			return err
		}
		spec.Leaf = leaf
	}
	w.Hosts[addr] = &Host{Addr: addr, ASN: wh.ASN, SMTP: spec}
	return nil
}

// webHostingProviders lists roster members that rent out infrastructure.
func (w *World) webHostingProviders() []*Provider {
	var out []*Provider
	for _, p := range w.Providers {
		if p.Company.Kind == companies.KindWebHosting {
			out = append(out, p)
		}
	}
	return out
}

// MXRecords derives the concrete MX configuration of a domain during a
// stint. The derivation is deterministic in (domain, stint).
func (w *World) MXRecords(d *Domain, st *Stint) []MXRec {
	v := uint64(st.Variant)
	switch st.Mode {
	case ModeExplicit:
		p := w.Providers[st.Provider]
		first := int(v) % len(p.MailHosts)
		recs := []MXRec{providerMX(p, first, 10)}
		if v%3 != 0 && len(p.MailHosts) > 1 {
			second := (first + 1) % len(p.MailHosts)
			recs = append(recs, providerMX(p, second, 20))
		}
		return recs
	case ModeHidden:
		p := w.Providers[st.Provider]
		host := "mailhost." + d.Name
		if v%2 == 0 {
			host = "mx." + d.Name
		}
		addrs := []netip.Addr{p.MailIPs[int(v)%len(p.MailIPs)]}
		if v%4 == 0 && len(p.MailIPs) > 1 {
			addrs = append(addrs, p.MailIPs[(int(v)+1)%len(p.MailIPs)])
		}
		return []MXRec{{Pref: 10, Host: host, Addrs: addrs, OwnA: true}}
	case ModeSharedHosting:
		p := w.Providers[st.Provider]
		return []MXRec{{
			Pref: 10, Host: "mx." + d.Name, OwnA: true,
			Addrs: []netip.Addr{p.SharedIPs[int(v)%len(p.SharedIPs)]},
		}}
	case ModeVPS:
		return []MXRec{{Pref: 10, Host: "mx." + d.Name, Addrs: []netip.Addr{d.VPSIP}, OwnA: true}}
	case ModeSelfGood, ModeSelfSigned, ModeSelfJunk, ModeFalseClaim:
		return []MXRec{{Pref: 10, Host: "mx." + d.Name, Addrs: []netip.Addr{d.OwnIP}, OwnA: true}}
	case ModeNoSMTP:
		if v%20 == 0 {
			// Customer-named MX to a dedicated web address.
			return []MXRec{{Pref: 10, Host: "web." + d.Name, Addrs: []netip.Addr{d.WebIP}, OwnA: true}}
		}
		// Provider-named web frontend (ghs.google.com style). The name
		// resolves to every frontend address.
		owner := w.cloudOwnerFor(st, w.webHostingProviders())
		return []MXRec{{
			Pref: 10, Host: "ghs." + owner.ID,
			Addrs: append([]netip.Addr(nil), owner.WebFrontIPs...),
		}}
	case ModeAdversarial:
		return w.advMXRecords(d, st)
	case ModeNoMXIP:
		if st.Provider >= 0 {
			// A dangling provider-named MX: the name's zone exists but the
			// host was retired, so it no longer resolves.
			p := w.Providers[st.Provider]
			return []MXRec{{Pref: 10, Host: fmt.Sprintf("retired-mx%d.%s", v%4, p.ID)}}
		}
		return []MXRec{{Pref: 10, Host: "mx." + d.Name, OwnA: true}}
	default:
		return nil
	}
}

// SPFRecord derives the domain's published SPF policy during a stint, or
// "" when the domain publishes none. Provider customers include their
// provider's _spf zone; customers of filtering services usually also
// include their real mailbox provider — the paper's §3.4 observation
// that SPF can reveal the eventual provider behind the first MX hop.
func (w *World) SPFRecord(d *Domain, st *Stint) string {
	h := hash64(d.Name + "/spf")
	switch st.Mode {
	case ModeExplicit, ModeHidden:
		p := w.Providers[st.Provider]
		if p.Company.Kind == companies.KindEmailSecurity {
			if h%100 >= 90 {
				return ""
			}
			rec := "v=spf1 include:_spf." + p.ID
			if mb := w.mailboxProvider(st); mb != nil {
				rec += " include:_spf." + mb.ID
			}
			return rec + " ~all"
		}
		if h%100 >= 85 {
			return ""
		}
		return "v=spf1 include:_spf." + p.ID + " ~all"
	case ModeSharedHosting:
		if h%100 >= 70 {
			return ""
		}
		return "v=spf1 include:_spf." + w.Providers[st.Provider].ID + " -all"
	case ModeSelfGood, ModeSelfSigned, ModeSelfJunk, ModeFalseClaim:
		if h%100 >= 60 {
			return ""
		}
		return fmt.Sprintf("v=spf1 a mx ip4:%s -all", d.OwnIP)
	case ModeVPS:
		if h%100 >= 60 {
			return ""
		}
		return fmt.Sprintf("v=spf1 ip4:%s -all", d.VPSIP)
	default:
		return ""
	}
}

// mailboxProvider picks the eventual mailbox provider behind a filtering
// service, or nil when the customer runs its own store.
func (w *World) mailboxProvider(st *Stint) *Provider {
	switch st.Variant % 10 {
	case 0, 1, 2, 3, 4:
		if p, ok := w.providerByID["google.com"]; ok {
			return p
		}
	case 5, 6, 7:
		if p, ok := w.providerByID["outlook.com"]; ok {
			return p
		}
	}
	return nil
}

// TruthMailbox is the ground-truth eventual mailbox operator at a
// snapshot: behind a filtering service it is the mailbox provider (or
// the domain itself when self-managed); for direct mail hosting it is
// the provider; for self-hosting the domain; "" when there is no mail
// service.
func (w *World) TruthMailbox(d *Domain, dateIdx int) string {
	st := d.StintAt(dateIdx)
	if st == nil || st.Mode == ModeNoSMTP || st.Mode == ModeNoMXIP {
		return ""
	}
	if st.Provider < 0 || st.Mode.SelfHosted() {
		return d.Name
	}
	p := w.Providers[st.Provider]
	if p.Company.Kind == companies.KindEmailSecurity {
		if mb := w.mailboxProvider(st); mb != nil {
			return mb.Company.Name
		}
		return d.Name
	}
	return p.Company.Name
}

func providerMX(p *Provider, hostIdx int, pref uint16) MXRec {
	rec := MXRec{
		Pref:  pref,
		Host:  p.MailHosts[hostIdx],
		Addrs: []netip.Addr{p.MailIPs[hostIdx%len(p.MailIPs)]},
	}
	if hostIdx < len(p.MailIPv6s) {
		rec.Addrs = append(rec.Addrs, p.MailIPv6s[hostIdx])
	}
	return rec
}
