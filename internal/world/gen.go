package world

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"mxmap/internal/asn"
	"mxmap/internal/certs"
	"mxmap/internal/companies"
)

// Generate builds a complete world from the configuration.
func Generate(cfg Config) (*World, error) {
	cfg = cfg.withDefaults()
	w := &World{
		Cfg:        cfg,
		Prefixes:   asn.NewTable(),
		ASRegistry: asn.NewRegistry(),
		Corpora:    make(map[string]*Corpus),
		rng:        rand.New(rand.NewPCG(cfg.Seed, 0x6d78)),
	}
	ca, err := certs.NewCA("Simulated Global Root CA", w.rng)
	if err != nil {
		return nil, err
	}
	w.CA = ca
	w.Trust = certs.NewTrustStore(ca)
	if err := w.buildRoster(); err != nil {
		return nil, err
	}
	if cfg.Adversarial > 0 {
		if err := w.ensureAdversary(); err != nil {
			return nil, err
		}
	}
	for _, spec := range []struct {
		name  string
		size  int
		dates []string
	}{
		{CorpusAlexa, scaled(paperAlexaSize, cfg.Scale, 100), AllDates},
		{CorpusCOM, scaled(paperCOMSize, cfg.Scale, 100), AllDates},
		// The .gov corpus is small to begin with (3,496 domains); keep
		// enough of it at low scales that the few-percent security
		// providers of Figure 6h remain resolvable.
		{CorpusGOV, scaled(paperGOVSize, cfg.Scale, 800), GovDates},
	} {
		c, err := w.generateCorpus(spec.name, spec.size, spec.dates)
		if err != nil {
			return nil, err
		}
		w.Corpora[spec.name] = c
	}
	return w, nil
}

func scaled(n int, scale float64, minSize int) int {
	v := int(float64(n) * scale)
	if v < minSize {
		v = minSize
	}
	if v > n {
		v = n
	}
	return v
}

// assignCtx carries the per-corpus assignment machinery.
type assignCtx struct {
	w       *World
	corpus  *Corpus
	rng     *rand.Rand
	anchors []shareAnchor
	// options[i] describes one assignable bucket: a named provider, the
	// self-hosted pseudo-provider, or one tail provider.
	options []assignOption
	// cur[di] is the option index currently assigned to domain di.
	cur []int
}

// assignOption is one destination in the assignment distribution.
type assignOption struct {
	// provider index into World.Providers, or -1 for self-hosted.
	provider int
	// anchorIdx indexes assignCtx.anchors, or -1 for tail providers.
	anchorIdx int
	// tailWeight is the option's share of the tail bucket (0 for
	// anchored options).
	tailWeight float64
	// company is nil for self-hosted.
	company *companies.Company
}

// generateCorpus creates the domain list and its full longitudinal
// assignment.
func (w *World) generateCorpus(name string, size int, dates []string) (*Corpus, error) {
	c := &Corpus{Name: name, Dates: dates}
	rng := rand.New(rand.NewPCG(w.Cfg.Seed, hash64(name)))
	c.Domains = w.generateDomainNames(name, size, rng)

	ctx := &assignCtx{w: w, corpus: c, rng: rng, anchors: anchorsFor(name)}
	if err := ctx.buildOptions(); err != nil {
		return nil, err
	}
	ctx.assignInitial()
	for t := 1; t < len(dates); t++ {
		ctx.step(t)
	}
	ctx.closeStints(len(dates) - 1)
	if w.Cfg.Adversarial > 0 {
		w.applyAdversarial(c)
	}
	if err := w.materializeHosts(c); err != nil {
		return nil, err
	}
	return c, nil
}

// generateDomainNames synthesizes the corpus member names with corpus-
// appropriate TLDs, ranks and country codes. Names are unique across the
// whole world — the paper likewise makes its three corpora disjoint.
func (w *World) generateDomainNames(corpus string, size int, rng *rand.Rand) []*Domain {
	out := make([]*Domain, 0, size)
	if w.usedNames == nil {
		w.usedNames = make(map[string]bool)
	}
	uniqueName := func(tld string) string {
		for {
			n := lowerWord(rng)
			if rng.IntN(3) == 0 {
				n += "-" + lowerWord(rng)
			}
			if rng.IntN(4) == 0 {
				n += fmt.Sprintf("%d", rng.IntN(100))
			}
			name := n + "." + tld
			if !w.usedNames[name] {
				w.usedNames[name] = true
				return name
			}
		}
	}
	switch corpus {
	case CorpusAlexa:
		for i := 0; i < size; i++ {
			tld, country := drawAlexaTLD(rng)
			out = append(out, &Domain{Name: uniqueName(tld), Rank: i + 1, Country: country})
		}
	case CorpusCOM:
		for i := 0; i < size; i++ {
			out = append(out, &Domain{Name: uniqueName("com")})
		}
	case CorpusGOV:
		for i := 0; i < size; i++ {
			d := &Domain{Name: uniqueName("gov"), Federal: rng.Float64() < 0.15}
			out = append(out, d)
		}
	}
	return out
}

func drawAlexaTLD(rng *rand.Rand) (tld, country string) {
	r := rng.Float64()
	for _, cc := range ccTLDs {
		if r < cc.weight {
			return cc.tld, cc.country
		}
		r -= cc.weight
	}
	// Remainder: generic TLDs by weight.
	r = rng.Float64()
	for _, g := range gTLDs {
		if r < g.weight {
			return g.tld, ""
		}
		r -= g.weight
	}
	return "com", ""
}

// buildOptions resolves the anchor table and tail roster into assignable
// options.
func (ctx *assignCtx) buildOptions() error {
	byName := make(map[string]*Provider)
	for _, p := range ctx.w.Providers {
		byName[p.Company.Name] = p
	}
	for ai, a := range ctx.anchors {
		if a.company == selfHostedKey {
			ctx.options = append(ctx.options, assignOption{provider: -1, anchorIdx: ai})
			continue
		}
		p, ok := byName[a.company]
		if !ok {
			return fmt.Errorf("world: anchor company %q not in roster", a.company)
		}
		ctx.options = append(ctx.options, assignOption{provider: p.index, anchorIdx: ai, company: p.Company})
	}
	// Tail providers share the residual market with zipf-ish weights.
	var tails []*Provider
	for _, p := range ctx.w.Providers {
		if isTail(p) {
			tails = append(tails, p)
		}
	}
	totalW := 0.0
	weights := make([]float64, len(tails))
	for j := range tails {
		// Flattened zipf: the largest unnamed provider stays well below
		// the named companies, as in the paper's Table 6 long tail.
		weights[j] = 1.0 / float64(j+12)
		totalW += weights[j]
	}
	for j, p := range tails {
		ctx.options = append(ctx.options, assignOption{
			provider:   p.index,
			anchorIdx:  -1,
			tailWeight: weights[j] / totalW,
			company:    p.Company,
		})
	}
	return nil
}

// isTail reports whether the provider is a generated long-tail provider.
func isTail(p *Provider) bool {
	return p.ASN >= 64512 && p.ASN < 65000
}

// shareOf returns an option's target share (fraction, not percent) at a
// snapshot.
func (ctx *assignCtx) shareOf(opt assignOption, dateIdx int) float64 {
	n := len(ctx.corpus.Dates)
	if opt.anchorIdx >= 0 {
		return shareAt(ctx.anchors[opt.anchorIdx], dateIdx, n) / 100
	}
	anchored := 0.0
	for _, a := range ctx.anchors {
		anchored += shareAt(a, dateIdx, n)
	}
	tailShare := (100 - anchored) / 100
	if tailShare < 0 {
		tailShare = 0
	}
	return tailShare * opt.tailWeight
}

// weightFor computes the per-domain assignment weight of an option,
// applying national and rank preferences.
func (ctx *assignCtx) weightFor(d *Domain, opt assignOption, dateIdx int) float64 {
	wt := ctx.shareOf(opt, dateIdx)
	if wt <= 0 {
		return 0
	}
	name := ""
	kind := companies.KindOther
	if opt.company != nil {
		name = opt.company.Name
		kind = opt.company.Kind
	}
	// Government agency providers serve only federal .gov domains.
	if kind == companies.KindGovAgency && !d.Federal {
		return 0
	}
	// National preferences (Figure 8): multipliers for the big four in
	// each ccTLD, plus suppression of the home-market providers abroad.
	if d.Country != "" {
		if cc := ccTLDByCountry(d.Country); cc != nil {
			switch name {
			case "Google":
				wt *= cc.google
			case "Microsoft":
				wt *= cc.microsoft
			case "Tencent":
				wt *= cc.tencent
			case "Yandex":
				wt *= cc.yandex
			case "Mail.Ru", "Beget":
				if d.Country != "RU" {
					wt *= 0.05
				} else {
					wt *= 6
				}
			case "Ukraine.ua":
				if d.Country != "RU" {
					wt *= 0.05
				}
			}
		}
	} else {
		switch name {
		case "Tencent":
			wt *= 0.25 // mostly .cn + some gTLD Chinese businesses
		case "Yandex":
			wt *= 0.45
		}
	}
	// Rank preferences (Figure 5): popular domains skew to the majors
	// and security services; the long tail skews to regional hosts.
	if d.Rank > 0 && len(ctx.corpus.Domains) > 1 {
		p := float64(d.Rank-1) / float64(len(ctx.corpus.Domains)-1) // 0=top
		switch {
		case kind == companies.KindEmailSecurity:
			wt *= 2.8 - 2.3*p
		case name == "Yandex" || name == "Tencent" || name == "Mail.Ru" || name == "Beget" || name == "Ukraine.ua":
			wt *= 0.25 + 1.5*p
		case opt.anchorIdx < 0: // tail
			wt *= 0.5 + 1.0*p
		case opt.provider == -1: // self-hosted: slightly head-heavy
			wt *= 1.2 - 0.4*p
		}
	}
	return wt
}

// draw samples an option index for a domain from the weighted
// distribution at a snapshot; restrict (when non-nil) filters candidates.
func (ctx *assignCtx) draw(d *Domain, dateIdx int, restrict map[int]float64) int {
	total := 0.0
	for oi, opt := range ctx.options {
		wt := ctx.weightFor(d, opt, dateIdx)
		if restrict != nil {
			deficit, ok := restrict[oi]
			if !ok || deficit <= 0 {
				continue
			}
			wt *= deficit
		}
		total += wt
	}
	if total <= 0 {
		// Nothing eligible: fall back to self-hosting.
		return ctx.selfOption()
	}
	r := ctx.rng.Float64() * total
	for oi, opt := range ctx.options {
		wt := ctx.weightFor(d, opt, dateIdx)
		if restrict != nil {
			deficit, ok := restrict[oi]
			if !ok || deficit <= 0 {
				continue
			}
			wt *= deficit
		}
		if r < wt {
			return oi
		}
		r -= wt
	}
	return ctx.selfOption()
}

func (ctx *assignCtx) selfOption() int {
	for oi, opt := range ctx.options {
		if opt.provider == -1 {
			return oi
		}
	}
	return 0
}

// assignInitial draws the first-snapshot assignment and opens stints.
func (ctx *assignCtx) assignInitial() {
	ctx.cur = make([]int, len(ctx.corpus.Domains))
	for di, d := range ctx.corpus.Domains {
		oi := ctx.draw(d, 0, nil)
		ctx.cur[di] = oi
		mode := ctx.drawMode(d, ctx.options[oi])
		d.Stints = []Stint{{
			From: 0, To: 0,
			Provider: ctx.options[oi].provider,
			Mode:     mode,
			Variant:  ctx.rng.Uint32(),
		}}
	}
}

// step advances the assignment from snapshot t-1 to t: a small amount of
// organic churn plus count rebalancing toward the interpolated targets.
func (ctx *assignCtx) step(t int) {
	n := len(ctx.corpus.Domains)

	// Organic churn: domains reconsider their provider independent of
	// market drift, producing the bidirectional flows of Figure 7.
	const churnRate = 0.015
	for di, d := range ctx.corpus.Domains {
		if ctx.rng.Float64() < churnRate {
			ctx.moveDomain(di, ctx.draw(d, t, nil), t)
		}
	}

	// Rebalance: move each option's count by the absolute drift of its
	// target trajectory between the two steps, then shuffle surplus
	// domains to deficits. Using the current count as the base preserves
	// the national and rank structure while trends track the anchors;
	// the additive form lets an option that drew zero members recover.
	counts := make([]int, len(ctx.options))
	for _, oi := range ctx.cur {
		counts[oi]++
	}
	targets := make([]float64, len(ctx.options))
	for oi, opt := range ctx.options {
		drift := ctx.shareOf(opt, t) - ctx.shareOf(opt, t-1)
		targets[oi] = float64(counts[oi]) + drift*float64(n)
	}
	// Collect surplus domains.
	deficit := make(map[int]float64)
	var pool []int
	for oi := range ctx.options {
		diff := float64(counts[oi]) - targets[oi]
		if diff >= 1 {
			pool = append(pool, ctx.takeMembers(oi, int(diff))...)
		} else if diff < 0 {
			// Fractional deficits still register so that, at small corpus
			// sizes, slowly-growing providers can pick up domains.
			deficit[oi] = -diff
		}
	}
	ctx.rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	for _, di := range pool {
		oi := ctx.draw(ctx.corpus.Domains[di], t, deficit)
		ctx.moveDomain(di, oi, t)
		if deficit[oi] > 0 {
			deficit[oi]--
		}
	}
}

// takeMembers removes up to k random members from option oi's current
// holders and returns their indexes.
func (ctx *assignCtx) takeMembers(oi, k int) []int {
	var members []int
	for di, cur := range ctx.cur {
		if cur == oi {
			members = append(members, di)
		}
	}
	ctx.rng.Shuffle(len(members), func(i, j int) { members[i], members[j] = members[j], members[i] })
	if k > len(members) {
		k = len(members)
	}
	return members[:k]
}

// moveDomain reassigns a domain at snapshot t, closing its current stint.
func (ctx *assignCtx) moveDomain(di, oi, t int) {
	if ctx.cur[di] == oi {
		return
	}
	d := ctx.corpus.Domains[di]
	last := &d.Stints[len(d.Stints)-1]
	if last.From == t {
		// Already moved this step (churn + rebalance): overwrite.
		last.Provider = ctx.options[oi].provider
		last.Mode = ctx.drawMode(d, ctx.options[oi])
		last.Variant = ctx.rng.Uint32()
		ctx.cur[di] = oi
		return
	}
	last.To = t - 1
	d.Stints = append(d.Stints, Stint{
		From: t, To: t,
		Provider: ctx.options[oi].provider,
		Mode:     ctx.drawMode(d, ctx.options[oi]),
		Variant:  ctx.rng.Uint32(),
	})
	ctx.cur[di] = oi
}

// closeStints extends every open stint to the final snapshot.
func (ctx *assignCtx) closeStints(lastIdx int) {
	for _, d := range ctx.corpus.Domains {
		d.Stints[len(d.Stints)-1].To = lastIdx
	}
}

// drawMode picks the provisioning idiom for a new stint.
func (ctx *assignCtx) drawMode(d *Domain, opt assignOption) Mode {
	r := ctx.rng.Float64()
	pick := func(table []struct {
		m Mode
		p float64
	}) Mode {
		for _, e := range table {
			if r < e.p {
				return e.m
			}
			r -= e.p
		}
		return table[0].m
	}
	if opt.provider == -1 {
		// A domain returning to self-hosting keeps its original setup so
		// its dedicated server retains one stable personality.
		for i := len(d.Stints) - 1; i >= 0; i-- {
			if d.Stints[i].Provider == -1 && d.Stints[i].Mode.SelfHosted() {
				return d.Stints[i].Mode
			}
		}
		return pick(selfModes)
	}
	switch opt.company.Kind {
	case companies.KindWebHosting:
		return pick(webHostModes)
	case companies.KindEmailSecurity:
		return pick(securityModes)
	case companies.KindGovAgency:
		return pick(govAgencyModes)
	default:
		return pick(mailHostModes)
	}
}

// Mode mixes per provider class. Probabilities sum to 1; they drive the
// Table 4 availability ladder and the Figure 4 approach-accuracy gaps.
var (
	mailHostModes = []struct {
		m Mode
		p float64
	}{
		{ModeExplicit, 0.855}, {ModeHidden, 0.08}, {ModeNoSMTP, 0.04}, {ModeNoMXIP, 0.025},
	}
	securityModes = []struct {
		m Mode
		p float64
	}{
		{ModeExplicit, 0.70}, {ModeHidden, 0.28}, {ModeNoMXIP, 0.02},
	}
	webHostModes = []struct {
		m Mode
		p float64
	}{
		{ModeExplicit, 0.52}, {ModeSharedHosting, 0.33}, {ModeNoSMTP, 0.10}, {ModeNoMXIP, 0.05},
	}
	govAgencyModes = []struct {
		m Mode
		p float64
	}{
		{ModeExplicit, 0.6}, {ModeHidden, 0.4},
	}
	selfModes = []struct {
		m Mode
		p float64
	}{
		{ModeSelfGood, 0.30}, {ModeSelfSigned, 0.28}, {ModeSelfJunk, 0.24},
		{ModeVPS, 0.14}, {ModeFalseClaim, 0.02}, {ModeNoMXIP, 0.02},
	}
)

func ccTLDByCountry(country string) *ccTLD {
	for i := range ccTLDs {
		if ccTLDs[i].country == country {
			return &ccTLDs[i]
		}
	}
	return nil
}

// hash64 derives a stable sub-seed from a string (FNV-1a).
func hash64(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// sortedProviderIDs lists every provider ID, for deterministic zone
// building.
func (w *World) sortedProviderIDs() []string {
	ids := make([]string, 0, len(w.providerByID))
	for id := range w.providerByID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
