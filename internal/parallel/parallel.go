// Package parallel provides the bounded worker-pool primitives shared by
// the measurement pipeline (network-bound fan-out) and the inference
// engine (CPU-bound sharding). Both helpers guarantee that every index is
// processed exactly once and that all work has completed before they
// return, so callers can merge worker output after the barrier without
// further synchronization.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a parallelism knob: values <= 0 select
// runtime.GOMAXPROCS(0), anything else is returned unchanged.
func Workers(p int) int {
	if p <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p
}

// Run executes fn(i) for every i in [0,n) on up to `workers` goroutines
// and returns once all calls have finished. Indices are handed out
// dynamically (work stealing via a shared counter), so uneven per-item
// cost — a slow DNS resolution, a huge MX fan-in — does not idle the
// pool. With workers <= 1 (or n == 1) it runs inline on the caller's
// goroutine.
func Run(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// RunChunks partitions [0,n) into at most `workers` contiguous chunks and
// executes fn(lo,hi) for each on its own goroutine, returning after all
// chunks complete. It suits uniform CPU-bound loops where per-index
// dispatch overhead would dominate, and lets each worker accumulate into
// a private structure merged after the barrier. With workers <= 1 it runs
// fn(0,n) inline.
func RunChunks(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn(lo, hi)
		}()
	}
	wg.Wait()
}
