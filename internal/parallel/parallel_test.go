package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d", got)
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d", got)
	}
}

func TestRunVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		const n = 1000
		counts := make([]atomic.Int32, n)
		Run(n, workers, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestRunZeroAndNegative(t *testing.T) {
	called := false
	Run(0, 4, func(int) { called = true })
	Run(-5, 4, func(int) { called = true })
	if called {
		t.Error("fn called for empty range")
	}
}

func TestRunInlineSingleWorker(t *testing.T) {
	// workers <= 1 must run on the calling goroutine, in order.
	var order []int
	Run(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("inline order = %v", order)
		}
	}
}

func TestRunChunksCoversRange(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 64} {
		const n = 997 // prime: uneven chunk boundaries
		counts := make([]atomic.Int32, n)
		RunChunks(n, workers, func(lo, hi int) {
			if lo >= hi {
				t.Errorf("empty chunk [%d,%d)", lo, hi)
			}
			for i := lo; i < hi; i++ {
				counts[i].Add(1)
			}
		})
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d covered %d times", workers, i, c)
			}
		}
	}
}

func TestRunChunksEmpty(t *testing.T) {
	called := false
	RunChunks(0, 4, func(lo, hi int) { called = true })
	if called {
		t.Error("fn called for empty range")
	}
}
