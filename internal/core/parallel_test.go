package core

import (
	"reflect"
	"testing"

	"mxmap/internal/asn"
	"mxmap/internal/benchdata"
	"mxmap/internal/dataset"
)

// benchdataProfiles builds step-4 profiles matching benchdata snapshots.
func benchdataProfiles() []ProviderProfile {
	var out []ProviderProfile
	for _, id := range benchdata.ProfileIDs() {
		out = append(out, ProviderProfile{
			ID:   id,
			ASNs: []asn.ASN{asn.ASN(benchdata.ProfileASN(id))},
			VPSPatterns: []string{
				"vps*." + id, "s*-*-*." + id,
			},
			DedicatedPatterns: []string{
				"mx*." + id, "mailstore*." + id,
			},
		})
	}
	return out
}

// equalResults compares two inference runs field by field, reporting the
// first divergence found.
func equalResults(t *testing.T, serial, par *Result) {
	t.Helper()
	if serial.Approach != par.Approach {
		t.Fatalf("approach: %v vs %v", serial.Approach, par.Approach)
	}
	if serial.NumExamined != par.NumExamined || serial.NumCorrected != par.NumCorrected {
		t.Errorf("step-4 counters: examined %d/%d corrected %d/%d",
			serial.NumExamined, par.NumExamined, serial.NumCorrected, par.NumCorrected)
	}
	if len(serial.MX) != len(par.MX) {
		t.Fatalf("MX count: %d vs %d", len(serial.MX), len(par.MX))
	}
	for ex, sa := range serial.MX {
		pa, ok := par.MX[ex]
		if !ok {
			t.Fatalf("parallel run missing exchange %q", ex)
		}
		if !reflect.DeepEqual(*sa, *pa) {
			t.Fatalf("assignment for %q diverged:\nserial:   %+v\nparallel: %+v", ex, *sa, *pa)
		}
	}
	if len(serial.Domains) != len(par.Domains) {
		t.Fatalf("domain count: %d vs %d", len(serial.Domains), len(par.Domains))
	}
	for i := range serial.Domains {
		if !reflect.DeepEqual(serial.Domains[i], par.Domains[i]) {
			t.Fatalf("attribution %d (%s) diverged:\nserial:   %+v\nparallel: %+v",
				i, serial.Domains[i].Domain, serial.Domains[i], par.Domains[i])
		}
	}
}

// TestParallelInferEquivalence asserts that a parallel run produces
// byte-for-byte the same output as a serial run, for every approach, on
// each test snapshot — the determinism guarantee behind
// Config.Parallelism.
func TestParallelInferEquivalence(t *testing.T) {
	snapshots := map[string]struct {
		snap     *dataset.Snapshot
		profiles []ProviderProfile
	}{
		"table3":    {table3Snapshot(), providerProfiles()},
		"table12":   {table12Snapshot(), nil},
		"benchdata": {benchdata.Snapshot(600), benchdataProfiles()},
	}
	for name, tc := range snapshots {
		for _, approach := range Approaches() {
			base := Config{Profiles: tc.profiles, ConfidenceThreshold: 2}
			serialCfg, parCfg := base, base
			serialCfg.Parallelism = 1
			parCfg.Parallelism = 8
			serial := Infer(tc.snap, approach, serialCfg)
			for run := 0; run < 3; run++ { // repeated runs shake out scheduling races
				par := Infer(tc.snap, approach, parCfg)
				t.Run(name+"/"+approach.String(), func(t *testing.T) {
					equalResults(t, serial, par)
				})
			}
		}
	}
}

// TestParallelInferExercisesStep4 guards the equivalence test's power:
// the benchdata snapshot must actually trigger examinations and
// corrections, otherwise step 4 equivalence is vacuous.
func TestParallelInferExercisesStep4(t *testing.T) {
	snap := benchdata.Snapshot(600)
	res := Infer(snap, ApproachPriority, Config{Profiles: benchdataProfiles(), ConfidenceThreshold: 2, Parallelism: 4})
	if res.NumExamined == 0 {
		t.Error("benchdata snapshot triggered no step-4 examinations")
	}
	if res.NumCorrected == 0 {
		t.Error("benchdata snapshot triggered no step-4 corrections")
	}
}

// TestParallelismDefault asserts that the zero Config still works (the
// knob defaults to GOMAXPROCS) and matches an explicit serial run.
func TestParallelismDefault(t *testing.T) {
	snap := benchdata.Snapshot(200)
	def := Infer(snap, ApproachPriority, Config{})
	serial := Infer(snap, ApproachPriority, Config{Parallelism: 1})
	equalResults(t, serial, def)
}
