package core

import (
	"fmt"
	"net/netip"
	"strings"

	"mxmap/internal/dataset"
	"mxmap/internal/psl"
)

// Sentinel credit buckets for assignments the trust pass refuses to
// attribute at face value. They are deliberately not valid registered
// domains, so they can never collide with a real provider ID.
const (
	// CreditUntrusted replaces a credit whose answers arrived through
	// infrastructure the registrant no longer controls (stale-glue
	// hijack) or whose identity claim cannot be trusted.
	CreditUntrusted = "(untrusted)"
	// CreditDangling replaces a credit derived from an exchange whose
	// enclosing registered zone has lapsed — takeover-ready namespace.
	CreditDangling = "(dangling)"
	// CreditParked replaces a credit for an exchange that resolves only
	// onto parking sinkholes with port 25 closed.
	CreditParked = "(parked)"
)

// maxStemsPerExchange bounds the per-exchange stem table so the
// streaming path's memory stays proportional to the exchange inventory;
// overflow stems collapse into one anonymous bucket. The batch path
// applies the identical cap, keeping the two paths byte-equivalent.
const maxStemsPerExchange = 16

// abuseStemMinLen is the shortest digit-stripped stem the abuse rule
// accepts. Generic short names ("d.com", "mx.net") strip to stems far
// below this, so organically popular exchanges never qualify.
const abuseStemMinLen = 12

// trustStats accumulates, per exchange and in domain order, the
// delegation-provenance and naming evidence the trust pass consumes.
// Both Infer and InferStream feed it from the serialized record fields
// only (Delegation, Dangling, Parked), so batch and streaming runs see
// identical inputs.
type trustStats struct {
	// staleGlue marks exchanges referenced by any domain whose delegation
	// provenance was flagged stale.
	staleGlue map[string]bool
	// domains counts referring domains per exchange.
	domains map[string]int
	// stems counts digit-stripped registered-domain stems of referring
	// domains per exchange; "" is the overflow bucket.
	stems map[string]map[string]int
}

func newTrustStats() *trustStats {
	return &trustStats{
		staleGlue: make(map[string]bool),
		domains:   make(map[string]int),
		stems:     make(map[string]map[string]int),
	}
}

// observe folds one domain's primary MX set into the statistics.
func (t *trustStats) observe(d *dataset.DomainRecord, primary []dataset.MXObs, memo *psl.Memo) {
	if len(primary) == 0 {
		return
	}
	stale := d.Delegation == dataset.DelegationStaleGlue
	stem := abuseStem(d.Domain, memo)
	for i := range primary {
		ex := primary[i].Exchange
		if stale {
			t.staleGlue[ex] = true
		}
		t.domains[ex]++
		m := t.stems[ex]
		if m == nil {
			m = make(map[string]int)
			t.stems[ex] = m
		}
		if _, ok := m[stem]; !ok && len(m) >= maxStemsPerExchange {
			m[""]++
			continue
		}
		m[stem]++
	}
}

// topStem returns the most common stem behind an exchange with its count
// and the total referring-domain count.
func (t *trustStats) topStem(exchange string) (stem string, count, total int) {
	total = t.domains[exchange]
	for s, n := range t.stems[exchange] {
		if s == "" {
			continue
		}
		if n > count || (n == count && s < stem) {
			stem, count = s, n
		}
	}
	return stem, count, total
}

// abuseStem is the look-alike naming key of a domain: its registered
// domain with every ASCII digit removed. Members of a throwaway cluster
// ("bargain-pharma-dealz-001.xyz", "-002", ...) collapse onto one stem.
func abuseStem(domain string, memo *psl.Memo) string {
	h := normalizeHost(domain)
	if reg, ok := memo.RegisteredDomain(h); ok {
		h = reg
	}
	var b strings.Builder
	for i := 0; i < len(h); i++ {
		if h[i] < '0' || h[i] > '9' {
			b.WriteByte(h[i])
		}
	}
	return b.String()
}

// checkTrust is the hijack/abuse-aware pass: it cross-checks every
// assignment against delegation provenance and cluster structure, and
// downgrades forgeable attributions to sentinel credits instead of
// crediting the claimed provider. It runs after the step 4
// misidentification check and never revisits assignments that check
// already marked untrusted.
func checkTrust(res *Result, exchanges []dataset.MXObs, ips map[string]dataset.IPInfo, t *trustStats, cfg Config) {
	for i := range exchanges {
		mx := &exchanges[i]
		a := res.MX[mx.Exchange]
		if a.Untrusted {
			continue
		}
		switch {
		case t.staleGlue[mx.Exchange]:
			flagUntrusted(res, a, CreditUntrusted,
				"stale-glue delegation: answers come from infrastructure the registrant no longer controls")
		case mx.Dangling:
			flagUntrusted(res, a, CreditDangling,
				"exchange zone lapsed from the registry; resolution rides leftover glue")
		case allParked(mx.Addrs, ips):
			flagUntrusted(res, a, CreditParked,
				"every exchange address is a parking sinkhole with port 25 closed")
		default:
			if cfg.AbuseClusterMinDomains <= 0 {
				continue
			}
			stem, n, total := t.topStem(mx.Exchange)
			if total >= cfg.AbuseClusterMinDomains && len(stem) >= abuseStemMinLen && n*4 >= total*3 {
				// Attribution stands — the bulk operator really runs the
				// exchange — but the cluster is surfaced as low-trust.
				a.Untrusted = true
				a.Reason = fmt.Sprintf("abuse cluster: %d/%d referring domains share look-alike stem %q", n, total, stem)
				res.NumUntrusted++
			}
		}
	}
}

// flagUntrusted downgrades an assignment to a sentinel credit.
func flagUntrusted(res *Result, a *MXAssignment, credit, reason string) {
	a.Untrusted = true
	a.CreditAs = credit
	a.Reason = reason
	res.NumUntrusted++
}

// allParked reports whether the exchange resolves exclusively onto
// parking addresses where port 25 never answers.
func allParked(addrs []netip.Addr, ips map[string]dataset.IPInfo) bool {
	if len(addrs) == 0 {
		return false
	}
	for _, addr := range addrs {
		info, ok := ips[addr.String()]
		if !ok || !info.Parked || info.Port25Open {
			return false
		}
	}
	return true
}
