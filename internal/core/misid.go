package core

import (
	"net/netip"
	"strings"

	"mxmap/internal/asn"
	"mxmap/internal/dataset"
	"mxmap/internal/psl"
)

// checkMisidentifications implements step 4. It examines MX assignments
// that credit a profiled (large) provider with low confidence — the
// signature of the corner cases §3.1 describes: VPS machines certifying
// under their hosting company's name, servers falsely claiming a big
// provider's identity in Banner/EHLO, and third-party providers
// presenting their customers' certificates.
//
// Heuristics applied to each flagged assignment, in order:
//
//  1. AS-membership: a banner-sourced claim of a provider whose known
//     ASes do not announce any of the MX's addresses is a false claim —
//     revert to the MX record's own registered domain.
//  2. VPS naming: a certificate- or banner-sourced identity whose
//     underlying host name matches the provider's VPS naming patterns is
//     a customer machine — revert to the MX registered domain
//     (self-hosting on rented infrastructure).
//  3. Dedicated naming: a host name matching the provider's dedicated
//     patterns is genuinely provider-operated — keep, mark examined.
//  4. Customer certificate: a certificate-sourced identity served from
//     an address inside a *different* profiled provider's AS whose
//     Banner/EHLO agrees with that provider (the utexas.edu/Ironport
//     case) — correct to the hosting provider's ID.
func checkMisidentifications(res *Result, exchanges []dataset.MXObs, ips map[string]dataset.IPInfo, ipIDs map[string]ipIdentity, cfg Config, memo *psl.Memo) {
	profiles := make(map[string]*ProviderProfile, len(cfg.Profiles))
	asnOwner := make(map[asn.ASN]string)
	for i := range cfg.Profiles {
		p := &cfg.Profiles[i]
		profiles[p.ID] = p
		for _, a := range p.ASNs {
			asnOwner[a] = p.ID
		}
	}

	// Walk the exchange inventory (first-appearance order) rather than
	// the assignment map, so examinations happen in a deterministic order
	// and the per-exchange sample observation needs no rescan of the
	// domain list.
	for _, mx := range exchanges {
		a := res.MX[mx.Exchange]
		prof, isProfiled := profiles[a.ProviderID]
		if !isProfiled || a.Source == SourceMX {
			continue
		}
		if a.Confidence >= cfg.ConfidenceThreshold {
			continue
		}
		a.Examined = true
		res.NumExamined++

		switch a.Source {
		case SourceBanner:
			if !anyAddrInASNs(ips, mx.Addrs, prof.ASNs) {
				if mx.Dangling {
					// The banner claim fails the AS check AND the exchange's
					// registered zone has lapsed: reverting to the MX
					// registered domain would credit a nonexistent
					// registrant. Surface the assignment as untrusted
					// instead.
					flagUntrusted(res, a, CreditUntrusted,
						"banner claims "+prof.ID+" outside its AS; MX registered domain dangling")
					continue
				}
				correct(res, a, mxFallbackID(a.Exchange, memo), "banner claims "+prof.ID+" outside its AS")
				continue
			}
			if host, ok := matchingHost(ips, mx.Addrs, prof.VPSPatterns); ok {
				correct(res, a, mxFallbackID(a.Exchange, memo), "VPS naming pattern "+host)
				continue
			}
			a.Reason = "verified: banner claim inside provider AS"
		case SourceCert:
			if host, ok := matchingHost(ips, mx.Addrs, prof.VPSPatterns); ok {
				correct(res, a, mxFallbackID(a.Exchange, memo), "VPS naming pattern "+host)
				continue
			}
			if host, ok := matchingHost(ips, mx.Addrs, prof.DedicatedPatterns); ok {
				a.Reason = "verified: dedicated host pattern " + host
				continue
			}
			if owner, ok := hostingOwner(ips, mx.Addrs, asnOwner, ipIDs, a.ProviderID); ok {
				correct(res, a, owner, "customer certificate on "+owner+" infrastructure")
				continue
			}
			a.Reason = "verified: no contrary evidence"
		}
	}
}

func correct(res *Result, a *MXAssignment, id, reason string) {
	a.ProviderID = id
	a.Corrected = true
	a.Reason = reason
	res.NumCorrected++
}

// anyAddrInASNs reports whether any address originates from one of the
// ASes.
func anyAddrInASNs(ips map[string]dataset.IPInfo, addrs []netip.Addr, asns []asn.ASN) bool {
	for _, addr := range addrs {
		info, ok := ips[addr.String()]
		if !ok {
			continue
		}
		for _, a := range asns {
			if info.ASN == a {
				return true
			}
		}
	}
	return false
}

// matchingHost scans the certificate names and Banner/EHLO hosts behind
// the addresses for any host matching one of the glob patterns.
func matchingHost(ips map[string]dataset.IPInfo, addrs []netip.Addr, patterns []string) (string, bool) {
	if len(patterns) == 0 {
		return "", false
	}
	for _, addr := range addrs {
		info, ok := ips[addr.String()]
		if !ok || info.Scan == nil {
			continue
		}
		var hosts []string
		hosts = append(hosts, info.Scan.CertNames...)
		hosts = append(hosts, info.Scan.BannerHost, info.Scan.EHLOHost)
		for _, h := range hosts {
			h = normalizeHost(h)
			if h == "" {
				continue
			}
			for _, pat := range patterns {
				if GlobMatch(pat, h) {
					return h, true
				}
			}
		}
	}
	return "", false
}

// hostingOwner detects the customer-certificate case: every address sits
// in some other profiled provider's AS and the Banner/EHLO identity
// agrees with that provider rather than with the certificate.
func hostingOwner(ips map[string]dataset.IPInfo, addrs []netip.Addr, asnOwner map[asn.ASN]string, ipIDs map[string]ipIdentity, certID string) (string, bool) {
	owner := ""
	for _, addr := range addrs {
		info, ok := ips[addr.String()]
		if !ok {
			return "", false
		}
		o, ok := asnOwner[info.ASN]
		if !ok || o == certID {
			return "", false
		}
		if owner == "" {
			owner = o
		} else if owner != o {
			return "", false
		}
		// The banner must corroborate the hosting provider.
		if ipIDs[addr.String()].bannerID != o {
			return "", false
		}
	}
	return owner, owner != ""
}

// GlobMatch matches host names against a simple glob pattern where '*'
// matches any run of characters other than '.', and '?' matches exactly
// one such character. Matching is case-insensitive over the whole string.
// Examples: "vps*.secureserver.net" matches "vps123.secureserver.net";
// "s*-*-*.secureserver.net" matches "s1-2-3.secureserver.net".
func GlobMatch(pattern, host string) bool {
	return globMatch(strings.ToLower(pattern), strings.ToLower(host))
}

func globMatch(p, s string) bool {
	// Iterative matching with single-star backtracking per segment.
	var starP, starS = -1, 0
	i, j := 0, 0
	for j < len(s) {
		switch {
		case i < len(p) && (p[i] == s[j] || (p[i] == '?' && s[j] != '.')):
			i++
			j++
		case i < len(p) && p[i] == '*':
			starP, starS = i, j
			i++
		case starP >= 0 && s[starS] != '.':
			// Backtrack: let the star consume one more character (never a
			// dot).
			starS++
			i = starP + 1
			j = starS
		default:
			return false
		}
	}
	for i < len(p) && p[i] == '*' {
		i++
	}
	return i == len(p)
}
