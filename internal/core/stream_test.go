package core

import (
	"path/filepath"
	"reflect"
	"testing"

	"mxmap/internal/benchdata"
	"mxmap/internal/dataset"
)

// TestInferStreamEquivalence asserts the streaming path's core promise:
// for every approach, InferStream over the serialized snapshot produces
// exactly the MX assignments and per-domain attributions of Infer over
// the materialized snapshot.
func TestInferStreamEquivalence(t *testing.T) {
	snapshots := map[string]struct {
		snap     *dataset.Snapshot
		profiles []ProviderProfile
		abuseMin int
	}{
		"table3":    {table3Snapshot(), providerProfiles(), 0},
		"table12":   {table12Snapshot(), nil, 0},
		"benchdata": {benchdata.Snapshot(600), benchdataProfiles(), 0},
		// The hostile families: stale-glue hijack, dangling and parked
		// exchanges, an abuse cluster — the trust pass must stay
		// byte-equivalent across both paths too.
		"adversarial": {adversarialSnapshot(), adversarialProfiles(), 4},
	}
	dir := t.TempDir()
	for name, tc := range snapshots {
		tc.snap.SortDomains()
		path := filepath.Join(dir, name+".jsonl.gz")
		if err := dataset.WriteFile(path, tc.snap); err != nil {
			t.Fatal(err)
		}
		// Compare disk-to-disk: serialization strips in-memory failure
		// classes on both sides (inference never reads them).
		loaded, err := dataset.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		st, err := dataset.OpenStream(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, approach := range Approaches() {
			cfg := Config{Profiles: tc.profiles, ConfidenceThreshold: 2, Parallelism: 4,
				AbuseClusterMinDomains: tc.abuseMin}
			want := Infer(loaded, approach, cfg)
			var streamed []DomainAttribution
			got, err := InferStream(st, approach, cfg, func(att DomainAttribution) {
				streamed = append(streamed, att)
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Run(name+"/"+approach.String(), func(t *testing.T) {
				if got.NumDomains != want.NumDomains || got.NumDomains != len(streamed) {
					t.Fatalf("NumDomains = %d (emitted %d), want %d", got.NumDomains, len(streamed), want.NumDomains)
				}
				if got.NumExamined != want.NumExamined || got.NumCorrected != want.NumCorrected {
					t.Errorf("step-4 counters: examined %d/%d corrected %d/%d",
						got.NumExamined, want.NumExamined, got.NumCorrected, want.NumCorrected)
				}
				if len(got.MX) != len(want.MX) {
					t.Fatalf("MX count: %d vs %d", len(got.MX), len(want.MX))
				}
				for ex, wa := range want.MX {
					ga, ok := got.MX[ex]
					if !ok {
						t.Fatalf("stream run missing exchange %q", ex)
					}
					if !reflect.DeepEqual(*wa, *ga) {
						t.Fatalf("assignment for %q diverged:\nin-memory: %+v\nstreamed:  %+v", ex, *wa, *ga)
					}
				}
				if got.Domains != nil {
					t.Error("InferStream retained a Domains slice")
				}
				for i := range want.Domains {
					if !reflect.DeepEqual(want.Domains[i], streamed[i]) {
						t.Fatalf("attribution %d (%s) diverged:\nin-memory: %+v\nstreamed:  %+v",
							i, want.Domains[i].Domain, want.Domains[i], streamed[i])
					}
				}
			})
		}
	}
}
