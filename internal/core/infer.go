package core

import (
	"fmt"
	"net/netip"
	"strings"
	"sync"

	"mxmap/internal/asn"
	"mxmap/internal/dataset"
	"mxmap/internal/parallel"
	"mxmap/internal/psl"
)

// Approach selects which signals an inference run uses, matching the four
// approaches compared in the paper's Section 3.3.
type Approach int

// Approaches.
const (
	// ApproachMXOnly uses only the registered domain of the MX record.
	ApproachMXOnly Approach = iota
	// ApproachCertBased uses certificate consensus, falling back to MX.
	ApproachCertBased
	// ApproachBannerBased uses Banner/EHLO consensus, falling back to MX.
	ApproachBannerBased
	// ApproachPriority uses certificates, then Banner/EHLO, then MX, and
	// runs the misidentification check (the paper's full methodology).
	ApproachPriority
)

// String names the approach as in the paper's Figure 4 legend.
func (a Approach) String() string {
	switch a {
	case ApproachMXOnly:
		return "MX-only"
	case ApproachCertBased:
		return "cert-based"
	case ApproachBannerBased:
		return "banner-based"
	case ApproachPriority:
		return "priority-based"
	default:
		return fmt.Sprintf("Approach(%d)", int(a))
	}
}

// Approaches returns all approaches in evaluation order.
func Approaches() []Approach {
	return []Approach{ApproachMXOnly, ApproachCertBased, ApproachBannerBased, ApproachPriority}
}

// Source records which signal produced a provider ID.
type Source int

// Sources, in increasing reliability order.
const (
	// SourceNone marks an MX with no assignment (no MX data at all).
	SourceNone Source = iota
	// SourceMX means the registered domain of the MX record itself.
	SourceMX
	// SourceBanner means Banner/EHLO consensus across the MX's addresses.
	SourceBanner
	// SourceCert means certificate-group consensus across the addresses.
	SourceCert
)

// String names the source.
func (s Source) String() string {
	switch s {
	case SourceMX:
		return "mx"
	case SourceBanner:
		return "banner"
	case SourceCert:
		return "cert"
	default:
		return "none"
	}
}

// ProviderProfile carries the prior knowledge used by the
// misidentification check (step 4) for one large provider.
type ProviderProfile struct {
	// ID is the provider ID the profile covers, e.g. "google.com".
	ID string
	// ASNs lists autonomous systems on which the provider genuinely
	// operates its own mail infrastructure.
	ASNs []asn.ASN
	// DedicatedPatterns are host globs for provider-operated servers
	// (e.g. "mailstore*.secureserver.net"); matches are legitimate.
	DedicatedPatterns []string
	// VPSPatterns are host globs for customer-rented machines (e.g.
	// "s*-*-*.secureserver.net", "vps*.secureserver.net"); a low-count
	// certificate or banner matching these means the customer self-hosts
	// on the provider's infrastructure.
	VPSPatterns []string
}

// Config parameterizes an inference run.
type Config struct {
	// PSL supplies registered-domain extraction (default psl.Default).
	PSL *psl.List
	// Profiles enables step 4 for these large providers.
	Profiles []ProviderProfile
	// ConfidenceThreshold is the per-assignment popularity below which an
	// assignment to a profiled provider is examined (default 5 domains).
	ConfidenceThreshold int
	// Parallelism bounds the worker pool sharding steps 2, 3 and 5
	// across cores. Zero or negative selects runtime.GOMAXPROCS(0); 1
	// forces a fully serial run. Output is byte-for-byte identical at
	// every setting: workers write into index-addressed slices and maps
	// are assembled only after each pool drains.
	Parallelism int
	// RequireBannerEHLOAgreement, when set, derives a Banner/EHLO ID only
	// when both messages carry the same registered domain (the strict
	// reading of Figure 3 step 2.2). The default accepts a valid FQDN
	// from either message when the other is absent, and rejects only
	// active disagreement.
	RequireBannerEHLOAgreement bool
	// DisableCertGrouping ablates step 1: every certificate forms its own
	// group, so providers with multiple disjoint certificates fragment
	// into multiple identities. Exists for the DESIGN.md ablation bench.
	DisableCertGrouping bool
	// PreferBannerOverCert ablates the priority order: Banner/EHLO
	// consensus is consulted before certificate consensus. Exists for the
	// DESIGN.md ablation bench.
	PreferBannerOverCert bool
	// AbuseClusterMinDomains enables the trust pass's look-alike abuse
	// detection: an exchange referenced by at least this many domains,
	// three quarters of which share one long digit-stripped naming stem,
	// is surfaced as a low-trust abuse cluster. Zero (the default)
	// disables the rule.
	AbuseClusterMinDomains int
}

func (c Config) pslOrDefault() *psl.List {
	if c.PSL != nil {
		return c.PSL
	}
	return psl.Default
}

// MXAssignment is the provider conclusion for one MX exchange name.
type MXAssignment struct {
	// Exchange is the MX target host.
	Exchange string
	// ProviderID is the inferred provider (a registered domain).
	ProviderID string
	// Source is the signal that produced ProviderID.
	Source Source
	// Confidence is the popularity score backing the assignment:
	// max(domains pointing at the busiest address, domains pointing at
	// the busiest certificate).
	Confidence int
	// Examined reports that step 4 flagged this assignment for review.
	Examined bool
	// Corrected reports that step 4 changed ProviderID.
	Corrected bool
	// Untrusted reports that the trust pass (or step 4's dangling rule)
	// refused to take the assignment at face value.
	Untrusted bool
	// CreditAs, when non-empty, is the sentinel bucket domains pointing
	// at this exchange are credited to instead of ProviderID. ProviderID
	// is retained for reporting what was claimed.
	CreditAs string
	// Reason explains a correction or why an examined assignment stood.
	Reason string
}

// DomainAttribution is the final per-domain outcome.
type DomainAttribution struct {
	// Domain is the measured domain.
	Domain string
	// Rank carries the corpus rank through to analysis (0 outside Alexa).
	Rank int
	// Credits maps provider ID to this domain's credit share; shares sum
	// to 1 when any MX exists.
	Credits map[string]float64
	// HasSMTP reports whether any primary-MX address accepted SMTP.
	HasSMTP bool
	// Untrusted reports that at least one credited assignment was
	// downgraded by the trust pass — the attribution is low-trust.
	Untrusted bool
}

// Primary returns the provider with the largest credit share, or "" when
// the domain has none.
func (d *DomainAttribution) Primary() string {
	best, bestCredit := "", 0.0
	for id, c := range d.Credits {
		if c > bestCredit || (c == bestCredit && (best == "" || id < best)) {
			best, bestCredit = id, c
		}
	}
	return best
}

// Result is a full inference run over one snapshot.
type Result struct {
	// Approach that produced the result.
	Approach Approach
	// MX maps exchange name to its assignment.
	MX map[string]*MXAssignment
	// Domains holds one attribution per input domain, in input order.
	// Nil for InferStream runs, which hand each attribution to the emit
	// callback instead of retaining it; NumDomains still counts them.
	Domains []DomainAttribution
	// NumDomains counts the attributed input domains.
	NumDomains int
	// NumExamined counts assignments flagged in step 4.
	NumExamined int
	// NumCorrected counts assignments changed in step 4.
	NumCorrected int
	// NumUntrusted counts assignments the trust pass downgraded.
	NumUntrusted int
}

// Infer runs the selected approach over a snapshot.
//
// The run is sharded across cfg.Parallelism workers but remains fully
// deterministic: steps 2, 3 and 5 fan out over the snapshot's
// precomputed index (sorted IP keys, deduplicated exchange inventory,
// domain positions) with every worker writing only its own
// index-addressed slot, and the result maps are assembled after the pool
// drains. Steps 1 and 4 are serial — cert grouping is a union-find over
// a small cert population and the misidentification pass touches only
// flagged assignments.
func Infer(s *dataset.Snapshot, approach Approach, cfg Config) *Result {
	memo := psl.NewMemo(cfg.pslOrDefault())
	if cfg.ConfidenceThreshold == 0 {
		cfg.ConfidenceThreshold = 5
	}
	workers := parallel.Workers(cfg.Parallelism)
	idx := s.Index()
	res := inferAssignments(s, idx, approach, cfg, memo, workers)

	// Step 5 — per-domain attribution, sharded over domain positions.
	// res.MX is read-only from here on, so concurrent map reads are safe.
	res.Domains = make([]DomainAttribution, len(s.Domains))
	res.NumDomains = len(s.Domains)
	parallel.Run(len(s.Domains), workers, func(i int) {
		res.Domains[i] = attributeDomain(&s.Domains[i], idx.PrimaryMX[i], res.MX, s.IPs)
	})
	return res
}

// inferAssignments runs steps 1-4 plus the trust pass over a
// materialized snapshot: everything up to (but excluding) per-domain
// attribution. Shared by Infer and InferDelta — the assignment side is
// always recomputed in full because its cost is bounded by the
// distinct-IP and distinct-exchange populations, not the domain count.
func inferAssignments(s *dataset.Snapshot, idx *dataset.Index, approach Approach, cfg Config, memo *psl.Memo, workers int) *Result {
	// Step 1 — certificate preprocessing (cert-based and priority only).
	var groups *CertGroups
	if approach == ApproachCertBased || approach == ApproachPriority {
		certList := collectCerts(s.IPs, idx.SortedIPKeys)
		if cfg.DisableCertGrouping {
			groups = singletonGroups(certList, memo)
		} else {
			groups = groupCertificates(certList, memo)
		}
	}

	// Step 2 — per-IP identities, sharded over the sorted key list.
	ipIDs := computeIPIDs(s.IPs, idx.SortedIPKeys, groups, memo, cfg, workers)

	// Popularity counters for confidence scores: how many domains' primary
	// MX sets point at each address and at each certificate.
	numIP, numCert := popularity(s, idx, workers)

	// Step 3 — per-MX provider IDs, sharded over the deduplicated
	// exchange inventory (one assignment per distinct exchange).
	res := &Result{Approach: approach, MX: make(map[string]*MXAssignment, len(idx.Exchanges))}
	assigns := make([]*MXAssignment, len(idx.Exchanges))
	parallel.Run(len(idx.Exchanges), workers, func(i int) {
		assigns[i] = assignMX(idx.Exchanges[i], approach, ipIDs, numIP, numCert, s.IPs, memo, cfg.PreferBannerOverCert)
	})
	for _, a := range assigns {
		res.MX[a.Exchange] = a
	}

	// Step 4 — misidentification check (priority approach only).
	if approach == ApproachPriority && len(cfg.Profiles) > 0 {
		checkMisidentifications(res, idx.Exchanges, s.IPs, ipIDs, cfg, memo)
	}

	// Trust pass — hijack/abuse-aware provenance cross-check (priority
	// approach only). Statistics accumulate in domain order from the
	// serialized record fields, mirroring InferStream's pass A exactly.
	if approach == ApproachPriority {
		tstats := newTrustStats()
		for i := range s.Domains {
			tstats.observe(&s.Domains[i], idx.PrimaryMX[i], memo)
		}
		checkTrust(res, idx.Exchanges, s.IPs, tstats, cfg)
	}
	return res
}

// collectCerts gathers every captured certificate in the IP
// observations, walking the presorted key list for deterministic order.
func collectCerts(ips map[string]dataset.IPInfo, sortedKeys []string) []Cert {
	seen := make(map[string]bool)
	var out []Cert
	for _, k := range sortedKeys {
		info := ips[k]
		sc := info.Scan
		if sc == nil || !sc.CertPresent || sc.CertFingerprint == "" || seen[sc.CertFingerprint] {
			continue
		}
		seen[sc.CertFingerprint] = true
		out = append(out, Cert{
			Fingerprint: sc.CertFingerprint,
			Names:       sc.CertNames,
			Valid:       sc.CertValid,
		})
	}
	return out
}

// ipIdentity is the step 2 outcome for one address.
type ipIdentity struct {
	certID   string // "" when unavailable
	bannerID string // "" when unavailable
	scanned  bool   // port 25 produced a session
}

// computeIPIDs derives step 2 identities for every scanned address.
// Workers fill an index-addressed slice over the sorted key list; the
// map is assembled after the barrier so the outcome is independent of
// scheduling.
func computeIPIDs(ips map[string]dataset.IPInfo, sortedKeys []string, groups *CertGroups, memo *psl.Memo, cfg Config, workers int) map[string]ipIdentity {
	ids := make([]ipIdentity, len(sortedKeys))
	parallel.Run(len(sortedKeys), workers, func(i int) {
		info := ips[sortedKeys[i]]
		sc := info.Scan
		if sc == nil {
			return
		}
		id := ipIdentity{scanned: true}
		// 2.1 — ID from certificate: only valid certificates count.
		if groups != nil && sc.CertPresent && sc.CertValid {
			if rep, ok := groups.Representative(sc.CertFingerprint); ok {
				id.certID = rep
			}
		}
		// 2.2 — ID from Banner/EHLO.
		id.bannerID = bannerIdentity(sc, memo, cfg.RequireBannerEHLOAgreement)
		ids[i] = id
	})
	out := make(map[string]ipIdentity, len(sortedKeys))
	for i, k := range sortedKeys {
		out[k] = ids[i]
	}
	return out
}

// bannerIdentity derives the registered-domain identity from the banner
// and EHLO hosts.
func bannerIdentity(sc *dataset.ScanInfo, memo *psl.Memo, strict bool) string {
	bannerReg := regOf(sc.BannerHost, memo)
	ehloReg := regOf(sc.EHLOHost, memo)
	switch {
	case bannerReg != "" && ehloReg != "":
		if bannerReg == ehloReg {
			return bannerReg
		}
		return "" // active disagreement: unreliable
	case strict:
		return ""
	case bannerReg != "":
		return bannerReg
	default:
		return ehloReg
	}
}

// regOf extracts the registered domain of a host string when it is a
// plausible FQDN.
func regOf(host string, memo *psl.Memo) string {
	host = normalizeHost(host)
	if !dataset.ValidFQDN(host) {
		return ""
	}
	reg, ok := memo.RegisteredDomain(host)
	if !ok {
		return ""
	}
	return reg
}

// normalizeHost lower-cases and strips the trailing dot from a host name.
func normalizeHost(h string) string {
	return strings.TrimSuffix(strings.ToLower(strings.TrimSpace(h)), ".")
}

// popularity counts, per address and per certificate, how many domains'
// primary MX sets lead there. Workers accumulate into private counter
// maps over disjoint domain ranges; the merge after the barrier sums
// per-key, so the totals are order-independent.
func popularity(s *dataset.Snapshot, idx *dataset.Index, workers int) (numIP, numCert map[string]int) {
	type counters struct {
		ip, cert map[string]int
	}
	parts := make([]counters, 0, workers)
	var mu sync.Mutex
	parallel.RunChunks(len(s.Domains), workers, func(lo, hi int) {
		c := counters{ip: make(map[string]int), cert: make(map[string]int)}
		var seenIP, seenCert []string // tiny per-domain sets: linear scan beats a map
		for i := lo; i < hi; i++ {
			seenIP, seenCert = seenIP[:0], seenCert[:0]
			for _, mx := range idx.PrimaryMX[i] {
				for _, a := range mx.Addrs {
					key := a.String()
					if containsStr(seenIP, key) {
						continue
					}
					seenIP = append(seenIP, key)
					c.ip[key]++
					if info, ok := s.IPs[key]; ok && info.Scan != nil && info.Scan.CertFingerprint != "" {
						if fp := info.Scan.CertFingerprint; !containsStr(seenCert, fp) {
							seenCert = append(seenCert, fp)
							c.cert[fp]++
						}
					}
				}
			}
		}
		mu.Lock()
		parts = append(parts, c)
		mu.Unlock()
	})
	numIP = make(map[string]int)
	numCert = make(map[string]int)
	for _, c := range parts {
		for k, v := range c.ip {
			numIP[k] += v
		}
		for k, v := range c.cert {
			numCert[k] += v
		}
	}
	return numIP, numCert
}

func containsStr(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// assignMX performs step 3 for one MX record under the chosen approach.
func assignMX(mx dataset.MXObs, approach Approach, ipIDs map[string]ipIdentity, numIP, numCert map[string]int, ips map[string]dataset.IPInfo, memo *psl.Memo, bannerFirst bool) *MXAssignment {
	a := &MXAssignment{Exchange: mx.Exchange}

	// Confidence: the busiest signal backing this MX.
	for _, addr := range mx.Addrs {
		key := addr.String()
		if c := numIP[key]; c > a.Confidence {
			a.Confidence = c
		}
		if info, ok := ips[key]; ok && info.Scan != nil {
			if c := numCert[info.Scan.CertFingerprint]; c > a.Confidence {
				a.Confidence = c
			}
		}
	}

	useCert := approach == ApproachCertBased || approach == ApproachPriority
	useBanner := approach == ApproachBannerBased || approach == ApproachPriority

	tryCert := func() bool {
		if !useCert {
			return false
		}
		id, ok := consensus(mx.Addrs, ipIDs, func(i ipIdentity) string { return i.certID })
		if ok {
			a.ProviderID, a.Source = id, SourceCert
		}
		return ok
	}
	tryBanner := func() bool {
		if !useBanner {
			return false
		}
		id, ok := consensus(mx.Addrs, ipIDs, func(i ipIdentity) string { return i.bannerID })
		if ok {
			a.ProviderID, a.Source = id, SourceBanner
		}
		return ok
	}
	if bannerFirst {
		if tryBanner() || tryCert() {
			return a
		}
	} else if tryCert() || tryBanner() {
		return a
	}
	a.ProviderID, a.Source = mxFallbackID(mx.Exchange, memo), SourceMX
	return a
}

// consensus returns the shared non-empty identity across every address,
// requiring each address to carry one.
func consensus(addrs []netip.Addr, ipIDs map[string]ipIdentity, pick func(ipIdentity) string) (string, bool) {
	if len(addrs) == 0 {
		return "", false
	}
	var id string
	for _, a := range addrs {
		v := pick(ipIDs[a.String()])
		if v == "" {
			return "", false
		}
		if id == "" {
			id = v
		} else if id != v {
			return "", false
		}
	}
	return id, true
}

// mxFallbackID is the registered domain of the MX name, or the
// (normalized) name itself when no registered domain can be derived.
func mxFallbackID(exchange string, memo *psl.Memo) string {
	h := normalizeHost(exchange)
	if reg, ok := memo.RegisteredDomain(h); ok {
		return reg
	}
	return h
}

// attributeDomain performs step 5 for one domain, using the index's
// cached primary MX set.
func attributeDomain(d *dataset.DomainRecord, primary []dataset.MXObs, mxAssign map[string]*MXAssignment, ips map[string]dataset.IPInfo) DomainAttribution {
	out := DomainAttribution{Domain: d.Domain, Rank: d.Rank, Credits: make(map[string]float64)}
	if len(primary) == 0 {
		return out
	}
	share := 1.0 / float64(len(primary))
	for _, mx := range primary {
		if a, ok := mxAssign[mx.Exchange]; ok {
			if a.Untrusted {
				out.Untrusted = true
			}
			switch {
			case a.CreditAs != "":
				out.Credits[a.CreditAs] += share
			case a.ProviderID != "":
				out.Credits[a.ProviderID] += share
			}
		}
		for _, addr := range mx.Addrs {
			if info, ok := ips[addr.String()]; ok && info.Port25Open {
				out.HasSMTP = true
			}
		}
	}
	return out
}
